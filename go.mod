module serpentine

go 1.22
