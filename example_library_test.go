package serpentine_test

import (
	"fmt"

	"serpentine"
)

// ExampleNewLibrary serves two object reads from a one-cartridge
// library with the paper's Auto scheduling policy.
func ExampleNewLibrary() {
	profile := serpentine.DLT4000()
	tape, _ := serpentine.NewTape(profile, 77)

	catalog := serpentine.NewCatalog()
	catalog.Put(serpentine.Object{ID: "invoices-1996", Tape: 77, Start: 120_000, Segments: 64})
	catalog.Put(serpentine.Object{ID: "invoices-1995", Tape: 77, Start: 450_000, Segments: 64})

	lib, _ := serpentine.NewLibrary(serpentine.LibraryConfig{
		Profile: profile,
		Tapes:   []int64{tape.Serial()},
	}, catalog)

	done, metrics, _ := lib.Run([]serpentine.ObjectRequest{
		{ObjectID: "invoices-1995"},
		{ObjectID: "invoices-1996"},
	})
	fmt.Println(len(done), "objects served in", metrics.Batches, "batch")
	// Output: 2 objects served in 1 batch
}

// ExampleProblem compares an unscheduled batch against the paper's
// LOSS algorithm.
func ExampleProblem() {
	tape, _ := serpentine.NewTape(serpentine.DLT4000(), 1)
	model, _ := serpentine.ExactModel(tape)
	batch := serpentine.NewUniformWorkload(tape.Segments(), 4).Batch(32)
	p := &serpentine.Problem{Start: 0, Requests: batch, Cost: model}

	fifo, _ := serpentine.NewScheduler("FIFO")
	loss, _ := serpentine.NewScheduler("LOSS")
	f, _ := fifo.Schedule(p)
	l, _ := loss.Schedule(p)

	fmt.Println("LOSS at least halves the batch time:",
		l.Estimate(p).Total() < 0.5*f.Estimate(p).Total())
	// Output: LOSS at least halves the batch time: true
}
