// Benchmarks regenerating every table and figure of Hillyer &
// Silberschatz (SIGMOD 1996), plus ablations for the design choices
// DESIGN.md calls out. Each BenchmarkFigN runs a reduced-trial
// version of the corresponding experiment per iteration and reports
// the headline reproduced metric via b.ReportMetric; the cmd/
// binaries run the same experiments at full size and print the
// complete tables (see EXPERIMENTS.md for paper-vs-measured values).
package serpentine_test

import (
	"sync"
	"testing"

	"serpentine"
	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/sim"
	"serpentine/internal/workload"
)

// Shared fixtures, built once.
var bench struct {
	once   sync.Once
	tapeA  *geometry.Tape // the model-development cartridge
	tapeB  *geometry.Tape
	modelA *locate.Model
	modelB *locate.Model
}

func fixtures(b *testing.B) (*geometry.Tape, *geometry.Tape, *locate.Model, *locate.Model) {
	b.Helper()
	bench.once.Do(func() {
		pa := geometry.DLT4000()
		pa.PersonalityFrac = 0
		bench.tapeA = geometry.MustGenerate(pa, 1)
		bench.tapeB = geometry.MustGenerate(geometry.DLT4000(), 2)
		var err error
		if bench.modelA, err = locate.FromKeyPoints(bench.tapeA.KeyPoints()); err != nil {
			panic(err)
		}
		if bench.modelB, err = locate.FromKeyPoints(bench.tapeB.KeyPoints()); err != nil {
			panic(err)
		}
	})
	return bench.tapeA, bench.tapeB, bench.modelA, bench.modelB
}

// BenchmarkFig1LocateCurve regenerates Figure 1: the locate and
// rewind time curves from segment 0 across the tape (one sample per
// section).
func BenchmarkFig1LocateCurve(b *testing.B) {
	_, _, m, _ := fixtures(b)
	step := 701
	var last float64
	for i := 0; i < b.N; i++ {
		for dst := 0; dst < m.Segments(); dst += step {
			last = m.LocateTime(0, dst) + m.RewindTime(dst)
		}
	}
	_ = last
	b.ReportMetric(float64(m.Segments()/step), "points")
}

// figConfig is a reduced-trial Figure 4/5 configuration.
func figConfig(m *locate.Model, start sim.StartMode) sim.Config {
	return sim.Config{
		Model: m,
		Schedulers: []core.Scheduler{
			core.Read{}, core.FIFO{}, core.NewOPT(12), core.Sort{},
			core.NewSLTF(), core.Scan{}, core.Weave{}, core.NewLOSS(),
		},
		Lengths: []int{1, 10, 96, 512},
		Trials:  func(n int) int { return 3 },
		Start:   start,
		Seed:    12345,
	}
}

// BenchmarkFig4RandomStart regenerates Figure 4 (mean time per
// locate, random starting point) on a reduced grid and reports LOSS's
// per-locate seconds at batch 96 (paper: ~29 s => 124 I/Os per hour).
func BenchmarkFig4RandomStart(b *testing.B) {
	_, _, m, _ := fixtures(b)
	var per float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(figConfig(m, sim.RandomStart))
		if err != nil {
			b.Fatal(err)
		}
		per, _ = res.MeanPerLocate("LOSS", 96)
	}
	b.ReportMetric(per, "s/locate@LOSS-96")
}

// BenchmarkFig5BOTStart regenerates Figure 5 (start at the beginning
// of tape) and reports FIFO's per-locate seconds at batch 1 (paper:
// the 96.5 s mean locate from BOT).
func BenchmarkFig5BOTStart(b *testing.B) {
	_, _, m, _ := fixtures(b)
	var per float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(figConfig(m, sim.BOTStart))
		if err != nil {
			b.Fatal(err)
		}
		per, _ = res.MeanPerLocate("FIFO", 1)
	}
	b.ReportMetric(per, "s/locate@FIFO-1")
}

// BenchmarkFig6SchedulingCPU regenerates Figure 6: the CPU cost of
// generating one schedule, per algorithm and batch size. The ns/op of
// each sub-benchmark IS the figure's data point on this host.
func BenchmarkFig6SchedulingCPU(b *testing.B) {
	_, _, m, _ := fixtures(b)
	sizes := []int{96, 512, 2048}
	algs := []core.Scheduler{
		core.FIFO{}, core.Sort{}, core.NewSLTF(), core.Scan{},
		core.Weave{}, core.NewLOSS(), core.NewLOSSCoalesced(core.DefaultCoalesceThreshold),
		core.NewSparseLOSS(),
	}
	for _, alg := range algs {
		for _, n := range sizes {
			if alg.Name() == "LOSS" && n > 2048 {
				continue
			}
			b.Run(alg.Name()+"/n="+itoa(n), func(b *testing.B) {
				p := benchProblem(b, m, n, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := alg.Schedule(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// OPT's exponential curve, up to the paper's 12.
	for _, n := range []int{8, 10, 12} {
		b.Run("OPT/n="+itoa(n), func(b *testing.B) {
			p := benchProblem(b, m, n, 2)
			opt := core.NewOPT(12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Schedule(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Utilization regenerates Figure 7 (utilization contours
// by schedule length and transfer size) and reports the transfer size
// at which a 10-request schedule reaches 50% of the sequential rate.
func BenchmarkFig7Utilization(b *testing.B) {
	tapeA, _, m, _ := fixtures(b)
	var mb float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Model:      m,
			Schedulers: []core.Scheduler{core.NewLOSS()},
			Lengths:    []int{1, 10, 96},
			Trials:     func(int) int { return 5 },
			Start:      sim.RandomStart,
			Seed:       7,
		})
		if err != nil {
			b.Fatal(err)
		}
		curves, err := sim.UtilizationCurves(res, "LOSS", tapeA.Params().TransferRateBytesPerSec(), []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		mb = curves[0].TransferMB[1]
	}
	b.ReportMetric(mb, "MB@50%-n10")
}

// BenchmarkFig8Validation regenerates Figure 8 (estimate vs measured
// execution on the emulated drive, correct key points) and reports
// the absolute percent error at batch 96 (paper: well under 1%).
func BenchmarkFig8Validation(b *testing.B) {
	tapeA, _, m, _ := fixtures(b)
	var err96 float64
	for i := 0; i < b.N; i++ {
		points, err := sim.Validate(sim.ValidationConfig{
			Drive:   drive.New(tapeA, drive.WithNoiseSeed(int64(i))),
			Model:   m,
			Lengths: []int{96},
			Trials:  2,
			Seed:    3,
		})
		if err != nil {
			b.Fatal(err)
		}
		err96 = abs(points[0].PctError())
	}
	b.ReportMetric(err96, "abs-err%@96")
}

// BenchmarkFig9WrongKeyPoints regenerates Figure 9 (tape A executed
// with tape B's key points) and reports the percent error magnitude
// (paper: ~20%, "disastrous").
func BenchmarkFig9WrongKeyPoints(b *testing.B) {
	tapeA, _, _, mb := fixtures(b)
	var err96 float64
	for i := 0; i < b.N; i++ {
		points, err := sim.Validate(sim.ValidationConfig{
			Drive:   drive.New(tapeA, drive.WithNoiseSeed(int64(i))),
			Model:   mb,
			Lengths: []int{96},
			Trials:  2,
			Seed:    3,
		})
		if err != nil {
			b.Fatal(err)
		}
		err96 = abs(points[0].PctError())
	}
	b.ReportMetric(err96, "abs-err%@96")
}

// BenchmarkFig10Perturbed regenerates Figure 10 (schedule quality
// under a systematically perturbed locate model) and reports the mean
// percent execution-time increase at E=10 s (paper: 1-2%).
func BenchmarkFig10Perturbed(b *testing.B) {
	_, _, m, _ := fixtures(b)
	var incr float64
	for i := 0; i < b.N; i++ {
		points, err := sim.PerturbStudy(sim.PerturbConfig{
			Model:   m,
			Errors:  []float64{2, 10},
			Lengths: []int{96},
			Trials:  func(int) int { return 4 },
			Start:   sim.BOTStart,
			Seed:    11,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.E == 10 {
				incr = p.MeanPctIncr
			}
		}
	}
	b.ReportMetric(incr, "incr%@E10-n96")
}

// BenchmarkSec3ModelAccuracy regenerates the Section 3 accuracy test
// (random locates, measured vs modeled) and reports the fraction of
// locates off by more than 2 s, in percent (paper: 7/3000 = 0.23%).
func BenchmarkSec3ModelAccuracy(b *testing.B) {
	tapeA, _, m, _ := fixtures(b)
	var pct float64
	for i := 0; i < b.N; i++ {
		acc, err := sim.LocateAccuracy(drive.New(tapeA, drive.WithNoiseSeed(int64(i))), m, 500, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pct = 100 * float64(acc.Over2s) / float64(acc.Locates)
	}
	b.ReportMetric(pct, "over2s%")
}

// BenchmarkSec8Summary regenerates the Section 8 retrieval-rate
// summary and reports LOSS's I/Os per hour at batch 96 (paper: 124).
func BenchmarkSec8Summary(b *testing.B) {
	_, _, m, _ := fixtures(b)
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Model:      m,
			Schedulers: []core.Scheduler{core.FIFO{}, core.NewOPT(12), core.NewLOSS(), core.Read{}},
			Lengths:    []int{10, 96, 192, 1024, 1536},
			Trials: func(n int) int {
				if n >= 1024 {
					return 1
				}
				return 5
			},
			Start: sim.RandomStart,
			Seed:  2,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows, err := sim.Summary(res)
		if err != nil {
			b.Fatal(err)
		}
		rate = rows[2].IOsPerHour
	}
	b.ReportMetric(rate, "IO/h@LOSS-96")
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationCoalescing compares LOSS with and without the
// paper's segment coalescing at batch 512: quality is nearly
// identical while the coalesced instance is far smaller.
func BenchmarkAblationCoalescing(b *testing.B) {
	_, _, m, _ := fixtures(b)
	for _, s := range []core.Scheduler{core.NewLOSS(), core.NewLOSSCoalesced(core.DefaultCoalesceThreshold)} {
		b.Run(s.Name(), func(b *testing.B) {
			p := benchProblem(b, m, 512, 5)
			var total float64
			for i := 0; i < b.N; i++ {
				plan, err := s.Schedule(p)
				if err != nil {
					b.Fatal(err)
				}
				total = plan.Estimate(p).Total()
			}
			b.ReportMetric(total, "sched-s")
		})
	}
}

// BenchmarkAblationSparseLOSS compares the paper's future-work sparse
// LOSS against dense coalesced LOSS at batch 1024.
func BenchmarkAblationSparseLOSS(b *testing.B) {
	_, _, m, _ := fixtures(b)
	for _, s := range []core.Scheduler{core.NewLOSSCoalesced(core.DefaultCoalesceThreshold), core.NewSparseLOSS()} {
		b.Run(s.Name(), func(b *testing.B) {
			p := benchProblem(b, m, 1024, 6)
			var total float64
			for i := 0; i < b.N; i++ {
				plan, err := s.Schedule(p)
				if err != nil {
					b.Fatal(err)
				}
				total = plan.Estimate(p).Total()
			}
			b.ReportMetric(total, "sched-s")
		})
	}
}

// BenchmarkAblationOrOpt measures what the or-opt improvement pass
// buys over plain SLTF at batch 96.
func BenchmarkAblationOrOpt(b *testing.B) {
	_, _, m, _ := fixtures(b)
	for _, s := range []core.Scheduler{core.NewSLTF(), core.Improved{Base: core.NewSLTF()}} {
		b.Run(s.Name(), func(b *testing.B) {
			p := benchProblem(b, m, 96, 7)
			var total float64
			for i := 0; i < b.N; i++ {
				plan, err := s.Schedule(p)
				if err != nil {
					b.Fatal(err)
				}
				total = plan.Estimate(p).Total()
			}
			b.ReportMetric(total, "sched-s")
		})
	}
}

// BenchmarkProfiles runs the core comparison on the extension device
// profiles: the scheduling win carries over to faster serpentine
// drives.
func BenchmarkProfiles(b *testing.B) {
	for _, profile := range []geometry.Params{geometry.DLT7000(), geometry.IBM3590()} {
		b.Run(profile.Name, func(b *testing.B) {
			tape := geometry.MustGenerate(profile, 1)
			m, err := locate.FromKeyPoints(tape.KeyPoints())
			if err != nil {
				b.Fatal(err)
			}
			var speedup float64
			for i := 0; i < b.N; i++ {
				p := benchProblem(b, m, 96, int64(i))
				fifo, err := core.FIFO{}.Schedule(p)
				if err != nil {
					b.Fatal(err)
				}
				loss, err := core.NewLOSS().Schedule(p)
				if err != nil {
					b.Fatal(err)
				}
				speedup = fifo.Estimate(p).Total() / loss.Estimate(p).Total()
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkDriveExecute measures the emulated drive's operation rate.
func BenchmarkDriveExecute(b *testing.B) {
	tapeA, _, _, _ := fixtures(b)
	d := drive.New(tapeA)
	gen := workload.NewUniform(tapeA.Segments(), 3)
	order := gen.Batch(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ExecuteOrder(order, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocateTime measures the model evaluation itself; every
// scheduler's inner loop is made of these.
func BenchmarkLocateTime(b *testing.B) {
	_, _, m, _ := fixtures(b)
	gen := workload.NewUniform(m.Segments(), 5)
	pairs := gen.Batch(2048)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.LocateTime(pairs[i%2047], pairs[(i+1)%2048])
	}
	_ = sink
}

// BenchmarkLibraryDay runs a full multi-tape library day per
// iteration: the end-to-end system path.
func BenchmarkLibraryDay(b *testing.B) {
	profile := geometry.Tiny()
	cat := serpentine.NewCatalog()
	tape := geometry.MustGenerate(profile, 101)
	for i := 0; i < 32; i++ {
		if err := cat.Put(serpentine.Object{ID: itoa(i), Tape: 101, Start: i * tape.Segments() / 32}); err != nil {
			b.Fatal(err)
		}
	}
	var reqs []serpentine.ObjectRequest
	for i := 0; i < 32; i++ {
		reqs = append(reqs, serpentine.ObjectRequest{ObjectID: itoa((i * 7) % 32)})
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		lib, err := serpentine.NewLibrary(serpentine.LibraryConfig{Profile: profile, Tapes: []int64{101}}, cat)
		if err != nil {
			b.Fatal(err)
		}
		_, m, err := lib.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		rate = m.IOsPerHour()
	}
	b.ReportMetric(rate, "IO/h")
}

// --- helpers ---------------------------------------------------------

func benchProblem(b *testing.B, m *locate.Model, n int, seed int64) *core.Problem {
	b.Helper()
	gen := workload.NewUniform(m.Segments(), seed)
	set := gen.Batch(n + 1)
	return &core.Problem{Start: set[0], Requests: set[1:], Cost: m}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
