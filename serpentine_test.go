package serpentine_test

import (
	"fmt"
	"math"
	"testing"

	"serpentine"
)

// The full public-API workflow: synthesize a cartridge, build a
// model, schedule a batch, execute it on the emulated drive.
func TestPublicAPIEndToEnd(t *testing.T) {
	tape, err := serpentine.NewTape(serpentine.DLT4000(), 42)
	if err != nil {
		t.Fatal(err)
	}
	model, err := serpentine.ExactModel(tape)
	if err != nil {
		t.Fatal(err)
	}
	batch := serpentine.NewUniformWorkload(tape.Segments(), 9).Batch(48)
	sched, err := serpentine.NewScheduler("LOSS")
	if err != nil {
		t.Fatal(err)
	}
	p := &serpentine.Problem{Start: 0, Requests: batch, Cost: model}
	plan, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := serpentine.CheckPermutation(batch, plan.Order); err != nil {
		t.Fatal(err)
	}
	est := plan.Estimate(p).Total()

	dev := serpentine.NewDrive(tape)
	meas, err := dev.ExecuteOrder(plan.Order, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(est-meas) / meas; e > 0.03 {
		t.Fatalf("estimate %.0f vs measured %.0f: %.1f%% off", est, meas, e*100)
	}
}

func TestPublicProfiles(t *testing.T) {
	for _, p := range []serpentine.Profile{serpentine.DLT4000(), serpentine.DLT7000(), serpentine.IBM3590()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if _, err := serpentine.NewTape(p, 1); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPublicSchedulers(t *testing.T) {
	if len(serpentine.Schedulers(10)) != 8 {
		t.Fatal("Schedulers should return the paper's eight algorithms")
	}
	if _, err := serpentine.NewScheduler("BOGUS"); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	if serpentine.Auto().Name() != "AUTO" {
		t.Fatal("Auto name wrong")
	}
}

func TestPublicWorkloads(t *testing.T) {
	const total = 100000
	for _, g := range []serpentine.Generator{
		serpentine.NewUniformWorkload(total, 1),
		serpentine.NewZipfWorkload(total, 1, 0.9, 1024),
		serpentine.NewClusteredWorkload(total, 1, 4, 512),
	} {
		b := g.Batch(32)
		if len(b) != 32 {
			t.Fatalf("%s: bad batch", g.Name())
		}
	}
}

func TestPublicLibrary(t *testing.T) {
	profile := serpentine.DLT4000()
	cat := serpentine.NewCatalog()
	tape, err := serpentine.NewTape(profile, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := cat.Put(serpentine.Object{
			ID:    fmt.Sprintf("obj%d", i),
			Tape:  500,
			Start: i * tape.Segments() / 8,
		}); err != nil {
			t.Fatal(err)
		}
	}
	lib, err := serpentine.NewLibrary(serpentine.LibraryConfig{
		Profile: profile,
		Tapes:   []int64{500},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []serpentine.ObjectRequest
	for i := 0; i < 8; i++ {
		reqs = append(reqs, serpentine.ObjectRequest{ObjectID: fmt.Sprintf("obj%d", i)})
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 8 || m.Served != 8 {
		t.Fatalf("served %d of 8", len(done))
	}
}

// Characterize is the expensive path; exercise it on a smaller
// profile via the drive directly to keep the test quick.
func TestPublicCharacterize(t *testing.T) {
	profile := serpentine.IBM3590()
	tape, err := serpentine.NewTape(profile, 3)
	if err != nil {
		t.Fatal(err)
	}
	dev := serpentine.NewDrive(tape, serpentine.WithoutNoise())
	cal, err := serpentine.Characterize(dev)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Locates == 0 || cal.TapeSeconds <= 0 {
		t.Fatal("calibration accounting empty")
	}
	model, err := serpentine.NewModel(cal.KeyPoints)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := serpentine.ExactModel(tape)
	if err != nil {
		t.Fatal(err)
	}
	gen := serpentine.NewUniformWorkload(tape.Segments(), 2)
	for i := 0; i < 200; i++ {
		pair := gen.Batch(2)
		d := math.Abs(model.LocateTime(pair[0], pair[1]) - exact.LocateTime(pair[0], pair[1]))
		if d > 1.5 {
			t.Fatalf("discovered model off by %.2f s", d)
		}
	}
}

// Example-style documentation test.
func ExampleNewScheduler() {
	tape, _ := serpentine.NewTape(serpentine.DLT4000(), 7)
	model, _ := serpentine.ExactModel(tape)
	sched, _ := serpentine.NewScheduler("AUTO")
	p := &serpentine.Problem{
		Start:    0,
		Requests: []int{400000, 100, 250000},
		Cost:     model,
	}
	plan, _ := sched.Schedule(p)
	fmt.Println(plan.Order)
	// Output: [100 250000 400000]
}
