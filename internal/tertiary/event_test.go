package tertiary

import (
	"math"
	"reflect"
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/obs"
)

// eventCfg is a faulted, capped, deadlined configuration that drives
// every terminal outcome: cartridge loss fails requests, the queue cap
// rejects, the deadline sheds, and the rest serve.
func eventCfg(t *testing.T, drives int) (Config, *Catalog) {
	t.Helper()
	cfg := smallCfg(drives)
	cfg.QueueCap = 6
	cfg.DeadlineSec = 150
	cfg.Lifecycle = fault.LifecycleConfig{
		CartridgeLossRate: 0.1,
		Seed:              3,
	}
	return cfg, smallCatalog(t, cfg, 4)
}

// TestWideEventsTimingNeutral pins the nil-handle promise: arming the
// event ring must not change a single completion or metric — events
// are pure accounting, never actors in the simulation.
func TestWideEventsTimingNeutral(t *testing.T) {
	run := func(ring *obs.EventRing) ([]Completion, Metrics) {
		cfg, cat := eventCfg(t, 1)
		cfg.Events = ring
		lib, err := New(cfg, cat)
		if err != nil {
			t.Fatal(err)
		}
		done, m, err := lib.Run(lifecycleStream(100, 30))
		if err != nil {
			t.Fatal(err)
		}
		return done, m
	}
	d0, m0 := run(nil)
	ring := obs.NewEventRing(256)
	d1, m1 := run(ring)
	if !reflect.DeepEqual(m0, m1) {
		t.Fatalf("arming events changed metrics:\n%+v\n%+v", m0, m1)
	}
	if !reflect.DeepEqual(d0, d1) {
		t.Fatal("arming events changed completions")
	}
	if ring.Total() == 0 {
		t.Fatal("armed ring recorded nothing")
	}
}

// TestWideEventConservation checks that every offered request emits
// exactly one terminal event and the per-outcome counts reconcile with
// the metrics partition.
func TestWideEventConservation(t *testing.T) {
	cfg, cat := eventCfg(t, 1)
	ring := obs.NewEventRing(1024)
	cfg.Events = ring
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	reqs := lifecycleStream(150, 12) // fast enough to trip the cap and deadline
	_, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Total() != int64(len(reqs)) {
		t.Fatalf("%d events for %d offered requests", ring.Total(), len(reqs))
	}
	counts := map[string]int{}
	for _, ev := range ring.Events() {
		counts[ev.Outcome]++
	}
	want := map[string]int{
		obs.OutcomeServed:   m.Served,
		obs.OutcomeFailed:   m.Failed,
		obs.OutcomeRejected: m.Rejected,
		obs.OutcomeShed:     m.Shed,
	}
	for k, v := range want {
		if v == 0 {
			delete(want, k)
		}
	}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("event outcome counts %v != metrics partition %v", counts, want)
	}
	// The workload must actually exercise every outcome for this test
	// to mean anything.
	if len(counts) != 4 {
		t.Fatalf("workload produced only outcomes %v — tighten the config", counts)
	}
}

// TestWideEventAttribution checks the telescoping invariant on every
// event, served or not: the attribution components sum to the sojourn
// within 1e-9, and a served event matches its completion's vector.
func TestWideEventAttribution(t *testing.T) {
	cfg, cat := eventCfg(t, 2)
	ring := obs.NewEventRing(1024)
	cfg.Events = ring
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, _, err := lib.Run(lifecycleStream(150, 12))
	if err != nil {
		t.Fatal(err)
	}
	byArrival := map[float64]Completion{}
	for _, c := range done {
		byArrival[c.Arrival] = c
	}
	for _, ev := range ring.Events() {
		if e := math.Abs(ev.SojournSec() - ev.AttributionSum()); e > 1e-9 {
			t.Fatalf("%s %s@%.3f attribution off by %g (sojourn %.9f, sum %.9f)",
				ev.Outcome, ev.Object, ev.ArrivalSec, e, ev.SojournSec(), ev.AttributionSum())
		}
		if ev.DoneSec < ev.ArrivalSec {
			t.Fatalf("%s %s terminal at %.3f before arrival %.3f", ev.Outcome, ev.Object, ev.DoneSec, ev.ArrivalSec)
		}
		if ev.Outcome != obs.OutcomeServed {
			continue
		}
		c, ok := byArrival[ev.ArrivalSec]
		if !ok || c.ObjectID != ev.Object {
			t.Fatalf("served event %s@%.3f has no matching completion", ev.Object, ev.ArrivalSec)
		}
		if ev.QueueSec != c.Attribution.QueueSec || ev.TransferSec != c.Attribution.TransferSec ||
			ev.RescueSec != c.Attribution.RescueSec || ev.RetrySec != c.Attribution.RetrySec {
			t.Fatalf("served event %s@%.3f attribution diverges from its completion", ev.Object, ev.ArrivalSec)
		}
		if ev.DoneSec != c.Done {
			t.Fatalf("served event done %.6f != completion done %.6f", ev.DoneSec, c.Done)
		}
	}
}

// TestWideEventOutcomeShape spot-checks the non-served event fields:
// rejected and shed events carry no drive, book their whole wait as
// queue time, and stamp the configured shard.
func TestWideEventOutcomeShape(t *testing.T) {
	cfg, cat := eventCfg(t, 1)
	ring := obs.NewEventRing(1024)
	cfg.Events = ring
	cfg.Shard = 3
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lib.Run(lifecycleStream(150, 12)); err != nil {
		t.Fatal(err)
	}
	for _, ev := range ring.Events() {
		if ev.Shard != 3 {
			t.Fatalf("event stamped shard %d, want 3", ev.Shard)
		}
		switch ev.Outcome {
		case obs.OutcomeRejected:
			if ev.Drive != obs.EventNoDrive {
				t.Fatalf("rejected event carries drive %d", ev.Drive)
			}
			if ev.DoneSec != ev.ArrivalSec {
				t.Fatalf("rejection at %.3f not instantaneous (arrival %.3f)", ev.DoneSec, ev.ArrivalSec)
			}
		case obs.OutcomeShed:
			if ev.Drive != obs.EventNoDrive {
				t.Fatalf("shed event carries drive %d", ev.Drive)
			}
			if ev.QueueSec+ev.RescueSec == 0 && ev.DoneSec != ev.ArrivalSec {
				t.Fatalf("shed event books no wait for a %.3fs sojourn", ev.SojournSec())
			}
		case obs.OutcomeServed:
			if ev.Drive < 0 {
				t.Fatalf("served event carries drive %d", ev.Drive)
			}
		}
	}
}

// TestWideEventDeterminism pins the event log as a pure function of
// the run.
func TestWideEventDeterminism(t *testing.T) {
	run := func() []obs.Event {
		cfg, cat := eventCfg(t, 2)
		ring := obs.NewEventRing(1024)
		cfg.Events = ring
		lib, err := New(cfg, cat)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := lib.Run(lifecycleStream(120, 20)); err != nil {
			t.Fatal(err)
		}
		return ring.Events()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical runs produced different event logs")
	}
}
