package tertiary

// Event kinds on the shared heap. evIdle (the zero value, so every
// pre-existing literal keeps its meaning) is the common case: a drive
// finished its batch and is idle again. The lifecycle-fault paths add
// two more: evFail marks a drive dying mid-batch — its cartridge must
// be unloaded and the unfinished requests rescued — and evRequeue
// returns rescued or replica-redirected requests to the backlog once
// the robot has put the cartridge back (or the failed read has been
// decided).
const (
	evIdle uint8 = iota
	evFail
	evRequeue
)

// driveEvent is one event on the virtual clock: a drive going idle,
// a drive dying mid-batch, or a rescued batch re-entering the queue.
// ref indexes the run's requeue payload table for evRequeue events.
type driveEvent struct {
	at    float64
	drive int
	kind  uint8
	ref   int32
}

// eventLess is the heap order: virtual time, ties broken by drive id,
// then kind, then payload ref. The order is a strict total order over
// the events a run produces (a drive has at most one idle-or-fail
// event pending, and requeue refs are unique), so the pop sequence —
// and everything downstream of it — is unique, independent of how the
// heap arranges equal-priority siblings internally.
func eventLess(a, b driveEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.drive != b.drive {
		return a.drive < b.drive
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.ref < b.ref
}

// eventHeap is a hand-rolled binary min-heap over a flat slice. The
// central dispatch loop pops and pushes one event per drive
// completion, millions of times per sweep; going through
// container/heap boxed every event into an interface value on both
// sides (ISSUE 6). The flat implementation moves concrete values
// only: push/pop are allocation-free in steady state (the backing
// array is sized to the drive count up front), pinned by
// TestDispatchLoopAllocs.
type eventHeap struct {
	ev []driveEvent
}

func (h *eventHeap) len() int { return len(h.ev) }

// min returns the earliest event without removing it. It must not be
// called on an empty heap.
func (h *eventHeap) min() driveEvent { return h.ev[0] }

// push inserts one event.
func (h *eventHeap) push(e driveEvent) {
	h.ev = append(h.ev, e)
	// Sift up.
	ev := h.ev
	i := len(ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(ev[i], ev[p]) {
			break
		}
		ev[i], ev[p] = ev[p], ev[i]
		i = p
	}
}

// popMin removes and returns the earliest event. It must not be
// called on an empty heap.
func (h *eventHeap) popMin() driveEvent {
	ev := h.ev
	top := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	h.ev = ev[:n]
	h.siftDown(0)
	return top
}

// popLE removes and returns the earliest event if it is at or before
// t. This is the dispatch loop's batched wake: calling it until it
// reports false drains everything due without re-deriving the cutoff
// per element.
func (h *eventHeap) popLE(t float64) (driveEvent, bool) {
	if len(h.ev) == 0 || h.ev[0].at > t {
		return driveEvent{}, false
	}
	return h.popMin(), true
}

func (h *eventHeap) siftDown(i int) {
	ev := h.ev
	n := len(ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && eventLess(ev[r], ev[l]) {
			m = r
		}
		if !eventLess(ev[m], ev[i]) {
			return
		}
		ev[i], ev[m] = ev[m], ev[i]
		i = m
	}
}
