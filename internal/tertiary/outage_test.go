package tertiary

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// acceptanceGrid is the (MTTF, MTTR) coordinate the PR's acceptance
// pins: finite drive MTTF with cartridge loss armed, swept at R=1 and
// R=2. Matches the defaults behind results/availability.txt.
func acceptanceGrid(workers int) OutageConfig {
	return OutageConfig{
		MTTFsSec:          []float64{14400},
		MTTRsSec:          []float64{1800},
		Replicas:          []int{1, 2},
		CartridgeLossRate: 0.02,
		BadSpotRate:       0.05,
		RobotStallRate:    0.02,
		Seed:              1,
		Workers:           workers,
	}
}

// TestOutageReplicaAvailability pins the headline result: at the same
// workload and the same component-failure history, R=1 loses a
// cartridge and fails its requests while R=2 completes every request
// through rescue and remote-replica reads.
func TestOutageReplicaAvailability(t *testing.T) {
	cells, err := OutageSweep(acceptanceGrid(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	var r1, r2 *OutageCell
	for i := range cells {
		switch cells[i].Replicas {
		case 1:
			r1 = &cells[i]
		case 2:
			r2 = &cells[i]
		}
	}
	if r1 == nil || r2 == nil {
		t.Fatal("missing a replication cell")
	}
	if r1.Metrics.LostCartridges == 0 || r1.Metrics.Failed == 0 {
		t.Fatalf("R=1 cell lost %d cartridges, failed %d — acceptance scenario did not fire",
			r1.Metrics.LostCartridges, r1.Metrics.Failed)
	}
	if r2.Availability != 1 || r2.Metrics.Failed != 0 {
		t.Fatalf("R=2 cell availability %.4f with %d failed, want 1.0 and 0",
			r2.Availability, r2.Metrics.Failed)
	}
	if r2.Metrics.Rescued == 0 || r2.Metrics.ReplicaReads == 0 {
		t.Fatalf("R=2 cell rescued %d, replica reads %d — want both positive",
			r2.Metrics.Rescued, r2.Metrics.ReplicaReads)
	}
	// Both cells face the same hazard processes (shared workload and
	// per-drive outage streams; cartridge loss is a per-mount-attempt
	// hazard so the count may differ once the runs diverge), and both
	// must see loss fire.
	if r2.Metrics.LostCartridges == 0 {
		t.Fatal("R=2 cell lost no cartridges — replica reads untested against loss")
	}
	for _, c := range cells {
		m := c.Metrics
		if got := m.Served + m.Failed + m.Rejected + m.Shed; got != c.Offered {
			t.Fatalf("R=%d conservation broken: %d != %d offered", c.Replicas, got, c.Offered)
		}
		if m.RobotMoves != m.Mounts+m.Unmounts+m.LostCartridges {
			t.Fatalf("R=%d robot ledger broken", c.Replicas)
		}
	}
}

// TestOutageSweepWorkerDeterminism runs the same grid serially and
// with 8 workers and requires deeply equal cells, and a deterministic
// WriteAvailability rendering.
func TestOutageSweepWorkerDeterminism(t *testing.T) {
	c1, err := OutageSweep(acceptanceGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	c8, err := OutageSweep(acceptanceGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c8) {
		t.Fatalf("cells differ between 1 and 8 workers:\n%+v\n%+v", c1, c8)
	}
	var b1, b8 bytes.Buffer
	if err := WriteAvailability(&b1, c1); err != nil {
		t.Fatal(err)
	}
	if err := WriteAvailability(&b8, c8); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b8.String() {
		t.Fatal("WriteAvailability output differs between worker counts")
	}
	if !strings.Contains(b1.String(), "drive MTTF 14400 s") {
		t.Fatalf("table missing MTTF block header:\n%s", b1.String())
	}
}

// TestOutageSweepRejectsBadReplication covers the grid validation.
func TestOutageSweepRejectsBadReplication(t *testing.T) {
	cfg := acceptanceGrid(0)
	cfg.Replicas = []int{5} // exceeds the 4-tape store
	if _, err := OutageSweep(cfg); err == nil {
		t.Fatal("replication factor above the cartridge count was accepted")
	}
	cfg.Replicas = []int{0}
	if _, err := OutageSweep(cfg); err == nil {
		t.Fatal("replication factor 0 was accepted")
	}
}
