package tertiary

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/fault"
	"serpentine/internal/server"
)

// driveRunner feeds the stream through the incremental Runner exactly
// as the fleet's routing tier does: advance to each arrival timestamp,
// offer every request carrying it, repeat, then drain.
func driveRunner(t *testing.T, lib *Library, stream []Request) ([]Completion, Metrics) {
	t.Helper()
	r, err := lib.StartRun()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(stream); {
		at := stream[i].Arrival
		if err := r.AdvanceTo(at); err != nil {
			t.Fatal(err)
		}
		for ; i < len(stream) && stream[i].Arrival == at; i++ {
			if err := r.Offer(stream[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	comps, m, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return comps, m
}

// TestRunnerMatchesRun pins the Runner contract: a runner fed a Run
// call's requests between AdvanceTo calls at their own timestamps
// produces bit-identical completions and metrics to that Run call,
// across batch policies and under lifecycle faults. This is the
// equivalence the fleet's single-shard test builds on.
func TestRunnerMatchesRun(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(serials []int64) Config
	}{
		{"quiesce", func(serials []int64) Config {
			return Config{Tapes: serials, Drives: 2, BatchLimit: 8, Scheduler: core.NewLOSS()}
		}},
		{"fixed-window", func(serials []int64) Config {
			return Config{Tapes: serials, Drives: 2, BatchLimit: 8,
				Policy: server.FixedWindow, WindowSec: 120}
		}},
		{"replan-on-arrival", func(serials []int64) Config {
			return Config{Tapes: serials, Drives: 1, Policy: server.ReplanOnArrival}
		}},
		{"lifecycle", func(serials []int64) Config {
			return Config{Tapes: serials, Drives: 2, BatchLimit: 8,
				QueueCap: 16, DeadlineSec: 4000,
				Lifecycle: fault.LifecycleConfig{
					DriveMTTFSec:      3000,
					DriveMTTRSec:      600,
					RobotStallRate:    0.05,
					CartridgeLossRate: 0.02,
					Seed:              99,
				}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lib, stream := buildTwinLibrary(t, 2, 8)
			lib = lib.Clone(tc.cfg(lib.Tapes()))
			wantComps, wantM, err := lib.Run(stream)
			if err != nil {
				t.Fatal(err)
			}
			gotComps, gotM := driveRunner(t, lib, stream)
			if gotM != wantM {
				t.Errorf("metrics diverge:\nrunner: %+v\nrun:    %+v", gotM, wantM)
			}
			if !reflect.DeepEqual(gotComps, wantComps) {
				t.Errorf("completions diverge: runner %d vs run %d", len(gotComps), len(wantComps))
			}
		})
	}
}

// TestRunnerProbes exercises the routing probes mid-run: the queue
// depth counts an offered request until it dispatches, and a mounted
// cartridge shows up in both Mounted and MountedSerials.
func TestRunnerProbes(t *testing.T) {
	lib, stream := buildTwinLibrary(t, 1, 4)
	r, err := lib.StartRun()
	if err != nil {
		t.Fatal(err)
	}
	if d := r.QueueDepth(); d != 0 {
		t.Fatalf("fresh runner queue depth %d", d)
	}
	if h := r.Headroom(); h != 1 {
		t.Fatalf("fresh runner headroom %g", h)
	}
	req := stream[0]
	if err := r.Offer(req); err != nil {
		t.Fatal(err)
	}
	if d := r.QueueDepth(); d != 1 {
		t.Fatalf("queue depth after offer %d, want 1", d)
	}
	// Advance far enough that the request mounted and completed.
	if err := r.AdvanceTo(req.Arrival + 7200); err != nil {
		t.Fatal(err)
	}
	if d := r.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after drain %d, want 0", d)
	}
	o, _ := lib.catalog.Get(req.ObjectID)
	if !r.Mounted(o.Tape) {
		t.Errorf("cartridge %d not reported mounted after serving", o.Tape)
	}
	serials := r.MountedSerials()
	found := false
	for _, s := range serials {
		if s == o.Tape {
			found = true
		}
	}
	if !found {
		t.Errorf("MountedSerials %v misses %d", serials, o.Tape)
	}
	if r.CartridgeLost(o.Tape) {
		t.Errorf("fault-free run reports cartridge %d lost", o.Tape)
	}
	if _, _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestRunnerErrors pins the misuse surface: offers behind the clock,
// unknown objects, use after Finish.
func TestRunnerErrors(t *testing.T) {
	lib, stream := buildTwinLibrary(t, 1, 4)
	r, err := lib.StartRun()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Offer(Request{ObjectID: "no-such", Arrival: 1}); err == nil {
		t.Error("unknown object accepted")
	}
	if err := r.Offer(Request{ObjectID: stream[0].ObjectID, Arrival: 100}); err != nil {
		t.Fatal(err)
	}
	if err := r.Offer(Request{ObjectID: stream[0].ObjectID, Arrival: 50}); err == nil ||
		!strings.Contains(err.Error(), "behind the clock") {
		t.Errorf("out-of-order offer error = %v", err)
	}
	if err := r.AdvanceTo(math.NaN()); err == nil {
		t.Error("AdvanceTo(NaN) accepted")
	}
	if err := r.AdvanceTo(5000); err != nil {
		t.Fatal(err)
	}
	// Serving the offered request moved the clock past its arrival;
	// an offer just behind the clock must be refused.
	if now := r.Now(); now > 101 {
		if err := r.Offer(Request{ObjectID: stream[0].ObjectID, Arrival: now - 1}); err == nil {
			t.Error("offer behind the advanced clock accepted")
		}
	} else {
		t.Fatalf("clock did not advance past the served request (now %g)", now)
	}
	if _, _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := r.Offer(Request{ObjectID: stream[0].ObjectID, Arrival: 9999}); err == nil {
		t.Error("offer after Finish accepted")
	}
	if err := r.AdvanceTo(9999); err == nil {
		t.Error("advance after Finish accepted")
	}
	if _, _, err := r.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
}
