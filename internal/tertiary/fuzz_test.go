package tertiary

import (
	"fmt"
	"testing"

	"serpentine/internal/geometry"
	"serpentine/internal/server"
)

// FuzzLibraryBatcher drives the library event loop with arbitrary
// request streams, batch limits, policies and queue caps, and checks
// conservation: every admitted request completes exactly once, and the
// robot/mount ledgers stay consistent. The catalog includes a
// serial-0 cartridge so the sentinel regression (bug 3) stays covered.
func FuzzLibraryBatcher(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x12, 0xa3, 0x34, 0xc5}, byte(0), byte(0), byte(0))
	f.Add([]byte{0x01, 0x01, 0x01, 0x01}, byte(1), byte(1), byte(0))
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x3c}, byte(5), byte(2), byte(2))
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80}, byte(3), byte(0), byte(4))

	profile := geometry.Tiny()
	serials := []int64{0, 101}
	cfg := Config{Profile: profile, Tapes: serials, Drives: 2}
	cat := NewCatalog()
	const perTape = 8
	for _, serial := range serials {
		tape := geometry.MustGenerate(profile, serial)
		stride := tape.Segments() / perTape
		for i := 0; i < perTape; i++ {
			segs := 1
			if i%3 == 0 {
				segs = 4
			}
			if err := cat.Put(Object{
				ID:       fmt.Sprintf("t%d/o%d", serial, i),
				Tape:     serial,
				Start:    i * stride,
				Segments: segs,
			}); err != nil {
				f.Fatal(err)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, limit, policy, queueCap byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		var (
			reqs    []Request
			arrival float64
		)
		for _, b := range data {
			arrival += float64(b >> 4)
			reqs = append(reqs, Request{
				ObjectID: fmt.Sprintf("t%d/o%d", serials[b&1], int(b>>1)%perTape),
				Arrival:  arrival,
			})
		}

		c := cfg
		c.BatchLimit = int(limit % 20)
		c.Policy = server.BatchPolicy(policy % 3)
		c.QueueCap = int(queueCap)
		lib, err := New(c, cat)
		if err != nil {
			t.Fatal(err)
		}
		done, m, err := lib.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}

		// Conservation: admitted or rejected, never lost or duplicated.
		if m.Served+m.Failed+m.Rejected != len(reqs) {
			t.Fatalf("conservation broken: served %d + failed %d + rejected %d != %d requests",
				m.Served, m.Failed, m.Rejected, len(reqs))
		}
		if m.Failed != 0 {
			t.Fatalf("fault-free run failed %d requests", m.Failed)
		}
		if c.QueueCap == 0 && m.Rejected != 0 {
			t.Fatalf("unbounded queue rejected %d requests", m.Rejected)
		}
		if len(done) != m.Served {
			t.Fatalf("%d completions for %d served", len(done), m.Served)
		}
		// Duplicate stream entries are legal and each copy completes,
		// so compare completion multiplicity per (object, arrival)
		// against the stream rather than demanding uniqueness.
		offered := make(map[Request]int)
		for _, r := range reqs {
			offered[r]++
		}
		var prev float64
		for i, comp := range done {
			if comp.Done < prev {
				t.Fatalf("completions out of order at %d: %.3f after %.3f", i, comp.Done, prev)
			}
			prev = comp.Done
			if comp.Done < comp.Arrival {
				t.Fatalf("%s completed at %.3f before arriving at %.3f", comp.ObjectID, comp.Done, comp.Arrival)
			}
			if offered[comp.Request] == 0 {
				t.Fatalf("%s@%.3f completed more often than requested", comp.ObjectID, comp.Arrival)
			}
			offered[comp.Request]--
		}
		// Robot ledger: every mount and unmount is one arm move.
		if m.RobotMoves != m.Mounts+m.Unmounts {
			t.Fatalf("robot moves %d != mounts %d + unmounts %d", m.RobotMoves, m.Mounts, m.Unmounts)
		}
		if m.Unmounts > m.Mounts {
			t.Fatalf("unmounts %d exceed mounts %d", m.Unmounts, m.Mounts)
		}
		if m.Served > 0 && m.Mounts == 0 {
			t.Fatal("served requests without mounting a cartridge")
		}
	})
}
