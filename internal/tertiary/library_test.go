package tertiary

import (
	"fmt"
	"sort"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/fault"
	"serpentine/internal/obs"
	"serpentine/internal/server"
)

// mergingScheduler coalesces duplicate segments into one visit — the
// behaviour that exposed seed bug 1: the seed handed schedulers a
// request list with duplicates and silently dropped the requests a
// merging plan no longer visited.
type mergingScheduler struct{}

func (mergingScheduler) Name() string { return "MERGE" }

func (mergingScheduler) Schedule(p *core.Problem) (core.Plan, error) {
	seen := make(map[int]bool)
	var order []int
	for _, r := range p.Requests {
		if !seen[r] {
			seen[r] = true
			order = append(order, r)
		}
	}
	sort.Ints(order)
	return core.Plan{Order: order}, nil
}

// duplicatingScheduler visits its first segment twice — the shape
// that made the seed panic on ps[0].
type duplicatingScheduler struct{}

func (duplicatingScheduler) Name() string { return "DUP" }

func (duplicatingScheduler) Schedule(p *core.Problem) (core.Plan, error) {
	if len(p.Requests) == 0 {
		return core.Plan{}, nil
	}
	order := []int{p.Requests[0], p.Requests[0]}
	return core.Plan{Order: order}, nil
}

// Regression for seed bug 1: two requests for the same object must
// both complete even when the scheduler merges the duplicate
// segments. The seed implementation loses one of them silently.
func TestDuplicateRequestsCompleteWithMergingScheduler(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Scheduler = mergingScheduler{}
	cat := smallCatalog(t, cfg, 4)
	reqs := []Request{
		{ObjectID: "t101/o1"},
		{ObjectID: "t101/o1"}, // duplicate of the same object
		{ObjectID: "t101/o2"},
	}

	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 || m.Served != 3 {
		t.Fatalf("served %d of 3 with a merging scheduler", len(done))
	}
	// The two duplicates share one physical read, so they complete at
	// the same instant.
	var dupDone []float64
	for _, c := range done {
		if c.ObjectID == "t101/o1" {
			dupDone = append(dupDone, c.Done)
		}
	}
	if len(dupDone) != 2 || dupDone[0] != dupDone[1] {
		t.Fatalf("duplicate completions %v, want two at the same time", dupDone)
	}

	// The seed implementation drops one of the three.
	refLib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	refDone, _, err := refRun(refLib, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(refDone) >= 3 {
		t.Fatalf("seed implementation now serves all %d duplicates; drop this guard", len(refDone))
	}
}

// Regression for the seed's ps[0] panic: a plan that visits a segment
// more often than requested must surface as a clean error.
func TestOverVisitingPlanIsError(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Scheduler = duplicatingScheduler{}
	cat := smallCatalog(t, cfg, 4)
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = lib.Run([]Request{{ObjectID: "t101/o1"}, {ObjectID: "t101/o2"}})
	if err == nil {
		t.Fatal("over-visiting plan accepted")
	}
}

// Regression for seed bug 2: Mounts counted batches, not cartridge
// exchanges. Two consecutive batches from one cartridge are one
// mount.
func TestMountsCountExchangesNotBatches(t *testing.T) {
	cfg := smallCfg(1)
	cfg.BatchLimit = 5
	cat := smallCatalog(t, cfg, 10)
	var reqs []Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", i)})
	}

	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batches != 2 {
		t.Fatalf("10 requests at limit 5 ran in %d batches, want 2", m.Batches)
	}
	if m.Mounts != 1 || m.Unmounts != 0 {
		t.Fatalf("one cartridge mounted %d times, unmounted %d times; want 1 and 0", m.Mounts, m.Unmounts)
	}

	// The seed counts a mount per batch.
	refLib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	_, refM, err := refRun(refLib, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if refM.Mounts != refM.Batches {
		t.Fatal("seed implementation no longer conflates mounts with batches; drop this guard")
	}
}

// Regression for seed bug 3: serial 0 collided with both the "no
// candidate yet" sentinel in pickTape and the "drive empty" sentinel
// in driveState.mounted. A cartridge with serial 0 must behave like
// any other.
func TestSerialZeroCartridge(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Tapes = []int64{0, 101}
	cat := NewCatalog()
	for _, serial := range cfg.Tapes {
		for i := 0; i < 4; i++ {
			if err := cat.Put(Object{ID: fmt.Sprintf("t%d/o%d", serial, i), Tape: serial, Start: i * 10}); err != nil {
				t.Fatal(err)
			}
		}
	}
	reqs := []Request{
		{ObjectID: "t0/o0"},
		{ObjectID: "t0/o1"},
		{ObjectID: "t101/o0"},
	}

	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 || m.Served != 3 {
		t.Fatalf("served %d of 3 with a serial-0 cartridge", len(done))
	}
	// Tape 0 has the most pending work, so it is picked first, and
	// switching to tape 101 afterwards is a real exchange.
	if m.Mounts != 2 || m.Unmounts != 1 {
		t.Fatalf("mounts %d unmounts %d, want 2 and 1", m.Mounts, m.Unmounts)
	}
	for _, c := range done {
		if c.Object.Tape == 0 && c.Done >= done[len(done)-1].Done && c.ObjectID != done[len(done)-1].ObjectID {
			t.Fatalf("tape 0 not served first: %+v", done)
		}
	}

	// The seed implementation treats "mounted == 0" as empty and
	// never loads the serial-0 cartridge at all: it nil-derefs.
	refLib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("seed implementation no longer breaks on serial 0; drop this guard")
			}
		}()
		_, _, _ = refRun(refLib, []Request{{ObjectID: "t0/o0"}})
	}()
}

// The robot arm is a serialized resource: two drives mounting at the
// same instant queue for it.
func TestRobotArmSerializesExchanges(t *testing.T) {
	cfg := smallCfg(2)
	cat := smallCatalog(t, cfg, 4)
	reqs := []Request{
		{ObjectID: "t101/o0"},
		{ObjectID: "t102/o0"},
	}
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || m.Mounts != 2 || m.RobotMoves != 2 {
		t.Fatalf("bad exchange accounting: %+v", m)
	}
	// Both drives want the arm at t=0; the second waits out the
	// first's 30 s mount.
	if m.RobotWaitSec != 30 {
		t.Fatalf("robot wait %.1f s, want 30", m.RobotWaitSec)
	}
	if m.RobotBusySec != 60 {
		t.Fatalf("robot busy %.1f s, want 60", m.RobotBusySec)
	}
}

// At QueueCap the library sheds load at admission instead of queueing
// without bound.
func TestLoadSheddingAtCapacity(t *testing.T) {
	cfg := smallCfg(1)
	cfg.QueueCap = 4
	cat := smallCatalog(t, cfg, 20)
	var reqs []Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", i)})
	}
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 4 || m.Rejected != 16 || len(done) != 4 {
		t.Fatalf("served %d rejected %d, want 4 and 16", m.Served, m.Rejected)
	}
	if m.MaxQueueDepth > 4 {
		t.Fatalf("queue depth %d exceeded cap 4", m.MaxQueueDepth)
	}
}

// Fault recovery composes with mounting: transient faults are retried
// inside the mounted batch and every request still completes.
func TestFaultRecoveryComposesWithMounting(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Faults = fault.Config{TransientRate: 0.2, Seed: 5}
	cat := smallCatalog(t, cfg, 40)
	var reqs []Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", i)})
	}
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Failed != 40 {
		t.Fatalf("conservation broken: served %d + failed %d != 40", m.Served, m.Failed)
	}
	if len(done) != m.Served {
		t.Fatalf("%d completions for %d served", len(done), m.Served)
	}
	if m.Retries == 0 {
		t.Fatal("a 20% transient rate over 40 reads injected no retries")
	}
	if m.RecoverySec <= 0 {
		t.Fatal("recovery consumed no virtual time")
	}
}

// FixedWindow holds dispatch until the window boundary.
func TestFixedWindowDelaysDispatch(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Policy = server.FixedWindow
	cfg.WindowSec = 100
	cat := smallCatalog(t, cfg, 4)
	reqs := []Request{
		{ObjectID: "t101/o0", Arrival: 5},
		{ObjectID: "t101/o1", Arrival: 50},
	}
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batches != 1 {
		t.Fatalf("both arrivals inside one window ran in %d batches", m.Batches)
	}
	for _, c := range done {
		if c.Done < 100 {
			t.Fatalf("completion at %.1f s before the 100 s boundary", c.Done)
		}
	}
}

// ReplanOnArrival serves one request per dispatch so every decision
// sees the freshest queue — without churning the mounted cartridge.
func TestReplanOnArrivalServesOneAtATime(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Policy = server.ReplanOnArrival
	cat := smallCatalog(t, cfg, 6)
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", i)})
	}
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batches != 6 {
		t.Fatalf("6 requests ran in %d batches, want one each", m.Batches)
	}
	if m.Mounts != 1 {
		t.Fatalf("one cartridge mounted %d times", m.Mounts)
	}
	if m.Served != 6 {
		t.Fatalf("served %d of 6", m.Served)
	}
}

// The registry sees what the metrics report, and the drive trace
// captures operations.
func TestObservabilityCounters(t *testing.T) {
	cfg := smallCfg(1)
	cfg.QueueCap = 6
	cfg.TraceCap = 64
	reg := obs.NewRegistry()
	cfg.Reg = reg
	cat := smallCatalog(t, cfg, 10)
	var reqs []Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", i)})
	}
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("served_total").Value(); got != int64(m.Served) {
		t.Fatalf("served_total %d, metrics %d", got, m.Served)
	}
	if got := reg.Counter("batches_total").Value(); got != int64(m.Batches) {
		t.Fatalf("batches_total %d, metrics %d", got, m.Batches)
	}
	if got := reg.Counter("rejected_total").Value(); got != int64(m.Rejected) {
		t.Fatalf("rejected_total %d, metrics %d", got, m.Rejected)
	}
	if got := reg.Counter("mounts_total", obs.L("tape", "101")).Value(); got != int64(m.Mounts) {
		t.Fatalf("mounts_total{tape=101} %d, metrics %d", got, m.Mounts)
	}
	if tr := reg.Trace(); tr == nil || len(tr.Events()) == 0 {
		t.Fatal("drive trace captured nothing")
	}
	if got := reg.Gauge("makespan_seconds").Value(); got != m.Makespan {
		t.Fatalf("makespan gauge %g, metrics %g", got, m.Makespan)
	}
}
