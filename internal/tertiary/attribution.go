package tertiary

import (
	"fmt"
	"io"
	"math"
)

// Attribution decomposes one served request's sojourn — completion
// minus arrival — into the phases of its journey through the library.
// Every component is a difference of virtual-clock readings, so they
// telescope: Sum() equals Latency() up to floating-point rounding
// (around 1e-10 on multi-day clocks), an invariant the tests pin at
// 1e-9.
type Attribution struct {
	// QueueSec is all waiting: in the pending backlog until the
	// request's batch dispatched, then inside the batch behind
	// earlier size classes, earlier requests, and any abandoned
	// serve attempts or replans of its own.
	QueueSec float64
	// RobotSec is time spent queued for the busy robot arm.
	RobotSec float64
	// MountSec is the cartridge exchange itself: rewinding the
	// outgoing cartridge plus unmount and mount handling.
	MountSec float64
	// LocateSec is the successful locate to the request's extent.
	LocateSec float64
	// TransferSec is the successful read of the extent.
	TransferSec float64
	// RetrySec is fault recovery inside the request's final serve
	// loop: failed attempts and backoff waits.
	RetrySec float64
	// RescueSec is virtual time lost to aborted serve attempts before
	// the final one: sitting in a batch cut short by a drive death
	// until the drive died, or in a read that hit a permanent media
	// defect until the failure redirected it to a replica. 0 on a
	// fault-free run.
	RescueSec float64
}

// Sum returns the total of the components — the reconstructed sojourn.
func (a Attribution) Sum() float64 {
	return a.QueueSec + a.RobotSec + a.MountSec + a.LocateSec + a.TransferSec + a.RetrySec + a.RescueSec
}

// AttributionError is the conservation defect: how far the attribution
// components are from summing to the request's measured latency.
func (c Completion) AttributionError() float64 {
	return math.Abs(c.Latency() - c.Attribution.Sum())
}

// WriteAttribution renders the per-request latency attribution table:
// one row per completion in the given order, the seven phase columns,
// and a trailer with the worst conservation error. All values are
// virtual seconds with fixed six-decimal formatting, so the table is
// byte-deterministic for a deterministic run.
func WriteAttribution(w io.Writer, comps []Completion) error {
	if _, err := fmt.Fprintf(w, "%-12s %5s %12s %12s %12s %10s %10s %10s %10s %10s %10s %10s\n",
		"object", "drive", "arrival", "done", "sojourn",
		"queue", "robot", "mount", "locate", "transfer", "retry", "rescue"); err != nil {
		return err
	}
	maxErr := 0.0
	for _, c := range comps {
		a := c.Attribution
		if e := c.AttributionError(); e > maxErr {
			maxErr = e
		}
		if _, err := fmt.Fprintf(w, "%-12s %5d %12.3f %12.3f %12.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			c.ObjectID, c.DriveID, c.Arrival, c.Done, c.Latency(),
			a.QueueSec, a.RobotSec, a.MountSec, a.LocateSec, a.TransferSec, a.RetrySec, a.RescueSec); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# %d requests, max |sojourn - sum(components)| = %.3g s\n", len(comps), maxErr)
	return err
}
