package tertiary

import "fmt"

// SweepPoint is the outcome of serving one request stream under one
// batch limit.
type SweepPoint struct {
	// BatchLimit is the cap on requests served per mount (0 = no
	// cap).
	BatchLimit int
	// Metrics summarizes the run.
	Metrics Metrics
}

// Sweep serves the same request stream repeatedly under different
// batch limits and reports the resulting metrics, exposing the
// central trade-off of online tertiary storage: larger batches cut
// the per-retrieval positioning cost (the paper's whole point) but
// make early requests wait for late ones. Each point rebuilds the
// library so runs are independent.
func Sweep(cfg Config, catalog *Catalog, requests []Request, batchLimits []int) ([]SweepPoint, error) {
	if len(batchLimits) == 0 {
		return nil, fmt.Errorf("tertiary: sweep needs at least one batch limit")
	}
	points := make([]SweepPoint, 0, len(batchLimits))
	for _, limit := range batchLimits {
		c := cfg
		c.BatchLimit = limit
		lib, err := New(c, catalog)
		if err != nil {
			return nil, fmt.Errorf("tertiary: sweep limit %d: %w", limit, err)
		}
		_, m, err := lib.Run(requests)
		if err != nil {
			return nil, fmt.Errorf("tertiary: sweep limit %d: %w", limit, err)
		}
		points = append(points, SweepPoint{BatchLimit: limit, Metrics: m})
	}
	return points, nil
}
