package tertiary

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"serpentine/internal/core"
	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/obs"
	"serpentine/internal/server"
	"serpentine/internal/sim"
	"serpentine/internal/workload"
)

// SweepConfig describes the library experiment: the same synthetic
// store (tapes × objects, Zipf object popularity) served at every
// (arrival rate, drive count, batch limit) cell, exposing the central
// trade-off of online tertiary storage — larger batches cut the
// per-retrieval positioning cost (the paper's whole point) but make
// early requests wait for late ones, and more drives buy concurrency
// at the price of robot-arm contention.
type SweepConfig struct {
	// Profile is the drive/cartridge format; zero value selects the
	// DLT4000.
	Profile geometry.Params
	// TapeCount and Objects shape the store; 0 select 4 cartridges
	// of 512 objects. ObjectSegments is the extent length per object;
	// 0 selects 32 (1 MB on a DLT4000).
	TapeCount      int
	Objects        int
	ObjectSegments int
	// RatesPerHour are the Poisson arrival rates to sweep; nil
	// selects {60, 120, 240}.
	RatesPerHour []float64
	// DriveCounts are the transport pool sizes; nil selects {1, 2}.
	DriveCounts []int
	// BatchLimits caps requests served per mount; nil selects
	// {1, 16, 0} (0 = unlimited).
	BatchLimits []int
	// Requests is the stream length per cell; 0 selects 400.
	Requests int
	// MountSec, UnmountSec, Scheduler, Policy, WindowSec, QueueCap
	// and Retry pass through to every cell's Config.
	MountSec   float64
	UnmountSec float64
	Scheduler  core.Scheduler
	Policy     server.BatchPolicy
	WindowSec  float64
	QueueCap   int
	Retry      sim.RetryPolicy
	// Faults arms every cell when any rate is non-zero. Its Seed is
	// ignored: each cell derives an injector base seed from Seed and
	// the cell coordinates.
	Faults fault.Config
	// Lifecycle arms component lifecycle faults in every cell when
	// any rate is non-zero. Its Seed is likewise ignored: each cell
	// derives one from Seed and the cell coordinates, so lifecycle
	// fault sequences do not depend on sweep order or worker count.
	Lifecycle fault.LifecycleConfig
	// Seed seeds each cell's arrival stream and object picks,
	// derived per cell so results do not depend on sweep order or
	// worker count.
	Seed int64
	// Workers bounds concurrent cells; 0 selects GOMAXPROCS.
	Workers int
	// Reg, when non-nil, receives every cell's metrics, merged in
	// spec order after the parallel phase so the dump is identical
	// at any worker count.
	Reg *obs.Registry
	// SpanCap, when positive, gives every cell its own span tracer of
	// that capacity and returns the recorded spans and completions on
	// the Cell. Per-cell capture keeps the spans — like the metrics —
	// byte-identical at any worker count.
	SpanCap int
	// Analytical replaces each cell's event-driven run with the
	// closed-form twin (Library.Estimate): same admission, batching,
	// robot and scheduling decisions, model-based costs instead of
	// drive emulation. Faults, metrics registries and spans are not
	// produced in this mode; use it for coarse grid scans. See
	// Estimate for the accuracy envelope.
	Analytical bool
}

// Cell is one (rate, drives, batch limit) outcome.
type Cell struct {
	RatePerHour float64
	Drives      int
	BatchLimit  int
	Metrics     Metrics
	// Spans holds the cell's recorded spans when SweepConfig.SpanCap
	// was set; Completions the cell's served requests with latency
	// attribution, in completion order.
	Spans       []obs.Span
	Completions []Completion
}

// Sweep runs every cell of the library experiment. Cells run
// concurrently up to cfg.Workers, sharing the read-only store (tapes,
// locate models, catalog), but each cell is fully deterministic — its
// arrival stream, object picks and injector seeds depend only on the
// config and the cell coordinates — so the sweep's output is
// identical at any worker count.
func Sweep(cfg SweepConfig) ([]Cell, error) {
	tapeCount := cfg.TapeCount
	if tapeCount <= 0 {
		tapeCount = 4
	}
	objects := cfg.Objects
	if objects <= 0 {
		objects = 512
	}
	objSegs := cfg.ObjectSegments
	if objSegs <= 0 {
		objSegs = 32
	}
	rates := cfg.RatesPerHour
	if rates == nil {
		rates = []float64{60, 120, 240}
	}
	driveCounts := cfg.DriveCounts
	if driveCounts == nil {
		driveCounts = []int{1, 2}
	}
	limits := cfg.BatchLimits
	if limits == nil {
		limits = []int{1, 16, 0}
	}
	n := cfg.Requests
	if n <= 0 {
		n = 400
	}

	// Build the store once: the base library owns the tapes, locate
	// models and catalog every cell shares read-only.
	profile := cfg.Profile
	if profile.Tracks == 0 {
		profile = geometry.DLT4000()
	}
	base, err := SweepStore(profile, tapeCount, objects, objSegs, cfg.MountSec, cfg.UnmountSec)
	if err != nil {
		return nil, err
	}
	serials := base.Tapes()

	type cellSpec struct {
		rateIdx, driveIdx, limitIdx int
	}
	var specs []cellSpec
	for ri := range rates {
		for di := range driveCounts {
			for bi := range limits {
				specs = append(specs, cellSpec{ri, di, bi})
			}
		}
	}
	cells := make([]Cell, len(specs))
	regs := make([]*obs.Registry, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				rate := rates[sp.rateIdx]
				drives := driveCounts[sp.driveIdx]
				limit := limits[sp.limitIdx]
				// One seed per cell coordinate: stable under
				// sweep-order and worker-count changes.
				seed := cfg.Seed*1000003 + int64(sp.rateIdx)*8191 + int64(sp.driveIdx)*521 + int64(sp.limitIdx)*131 + 7
				stream, err := sweepStream(rate, n, seed, tapeCount, objects)
				if err != nil {
					reportErr(errs, fmt.Errorf("tertiary: sweep arrivals %g/h: %w", rate, err))
					return
				}
				faults := cfg.Faults
				if faults.Enabled() {
					faults.Seed = seed + 3
				}
				lifecycle := cfg.Lifecycle
				if lifecycle.Enabled() {
					lifecycle.Seed = seed + 5
				}
				reg := obs.NewRegistry()
				var spans *obs.Tracer
				if cfg.SpanCap > 0 {
					spans = obs.NewTracer(cfg.SpanCap)
				}
				lib := base.Clone(Config{
					Profile:    profile,
					Tapes:      serials,
					Drives:     drives,
					MountSec:   cfg.MountSec,
					UnmountSec: cfg.UnmountSec,
					BatchLimit: limit,
					Scheduler:  cfg.Scheduler,
					Policy:     cfg.Policy,
					WindowSec:  cfg.WindowSec,
					QueueCap:   cfg.QueueCap,
					Retry:      cfg.Retry,
					Faults:     faults,
					Lifecycle:  lifecycle,
					Reg:        reg,
					Spans:      spans,
					Labels: []obs.Label{
						obs.L("rate", fmt.Sprintf("%g", rate)),
						obs.L("drives", strconv.Itoa(drives)),
						obs.L("batch", strconv.Itoa(limit)),
					},
				})
				run := lib.Run
				if cfg.Analytical {
					run = lib.Estimate
				}
				comps, m, err := run(stream)
				if err != nil {
					reportErr(errs, fmt.Errorf("tertiary: sweep cell %g/h %dd limit %d: %w", rate, drives, limit, err))
					return
				}
				cell := Cell{RatePerHour: rate, Drives: drives, BatchLimit: limit, Metrics: m}
				if spans != nil {
					cell.Spans = spans.Spans()
					cell.Completions = comps
				}
				cells[i] = cell
				regs[i] = reg
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if cfg.Reg != nil {
		// Merge in spec order so the aggregated dump is independent
		// of which worker ran which cell.
		for _, r := range regs {
			cfg.Reg.Merge(r)
		}
	}
	return cells, nil
}

// Clone returns a library sharing this library's read-only store —
// tapes, locate models, catalog — under a different configuration.
// The sweeps use it to give every cell its own registry, tracer and
// knobs without regenerating the tapes; the fleet uses it to give
// every cell's shards their own labels and span lanes. The
// configuration's Profile and Tapes must describe the shared store:
// they are not revalidated.
func (l *Library) Clone(cfg Config) *Library {
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewAuto()
	}
	return &Library{
		cfg:     cfg.withDefaults(),
		catalog: l.catalog,
		tapes:   l.tapes,
		models:  l.models,
		sched:   sched,
	}
}

// SweepStore builds the sweeps' shared synthetic store: tapeCount
// cartridges (serials 3000+t, matching the sweeps' t<N>/o<M> object
// naming) each holding `objects` extents of objSegs segments laid out
// stride-aligned along the tape. The returned base library owns the
// tapes, locate models and catalog; sweep cells Clone it with their
// own knobs, registries and tracers. A zero profile selects the
// DLT4000; mountSec/unmountSec pass through to the base Config (cells
// normally override them in their Clone anyway). Exported so the
// staging-tier sweep (hsm) can serve the exact store a library sweep
// cell serves.
func SweepStore(profile geometry.Params, tapeCount, objects, objSegs int, mountSec, unmountSec float64) (*Library, error) {
	if profile.Tracks == 0 {
		profile = geometry.DLT4000()
	}
	catalog := NewCatalog()
	serials := make([]int64, tapeCount)
	for t := 0; t < tapeCount; t++ {
		serial := int64(3000 + t)
		serials[t] = serial
		tape, err := geometry.Generate(profile, serial)
		if err != nil {
			return nil, fmt.Errorf("tertiary: sweep tape %d: %w", serial, err)
		}
		stride := tape.Segments() / objects
		if stride < objSegs {
			return nil, fmt.Errorf("tertiary: sweep: %d objects of %d segments overflow tape %d", objects, objSegs, serial)
		}
		for o := 0; o < objects; o++ {
			if err := catalog.Put(Object{
				ID:       sweepObjectID(t, o),
				Tape:     serial,
				Start:    o * stride,
				Segments: objSegs,
			}); err != nil {
				return nil, err
			}
		}
	}
	base, err := New(Config{Profile: profile, Tapes: serials, MountSec: mountSec, UnmountSec: unmountSec}, catalog)
	if err != nil {
		return nil, fmt.Errorf("tertiary: sweep store: %w", err)
	}
	return base, nil
}

// SweepStream builds one sweep cell's request stream — Poisson
// arrivals at ratePerHour, Zipf(0.8)-popular objects over the sweeps'
// t<N>/o<M> naming — exported so the staging-tier sweep (hsm) can
// replay the exact stream a library sweep cell serves.
func SweepStream(ratePerHour float64, n int, seed int64, tapeCount, objects int) ([]Request, error) {
	return sweepStream(ratePerHour, n, seed, tapeCount, objects)
}

// sweepStream builds one cell's request stream: Poisson arrivals,
// Zipf-popular objects.
func sweepStream(ratePerHour float64, n int, seed int64, tapeCount, objects int) ([]Request, error) {
	arrivals, err := workload.PoissonArrivals(ratePerHour/3600, n, seed)
	if err != nil {
		return nil, err
	}
	pick := workload.NewZipf(tapeCount*objects, seed+1, 0.8, 1)
	stream := make([]Request, n)
	for i := range stream {
		flat := pick.Batch(1)[0]
		stream[i] = Request{ObjectID: sweepObjectID(flat/objects, flat%objects), Arrival: arrivals[i]}
	}
	return stream, nil
}

func sweepObjectID(tape, obj int) string {
	return "t" + strconv.Itoa(tape) + "/o" + strconv.Itoa(obj)
}

func reportErr(errs chan<- error, err error) {
	select {
	case errs <- err:
	default:
	}
}

// WriteLibrary prints the sweep: one block per arrival rate, one row
// per (drives, batch limit), with delivered throughput, latency,
// exchange and robot-contention counters, and drive utilization.
func WriteLibrary(w io.Writer, cells []Cell) error {
	var rates []float64
	seen := make(map[float64]bool)
	for _, c := range cells {
		if !seen[c.RatePerHour] {
			seen[c.RatePerHour] = true
			rates = append(rates, c.RatePerHour)
		}
	}
	for _, rate := range rates {
		if _, err := fmt.Fprintf(w, "# arrival rate %g/h\n%6s %9s %8s %12s %12s %7s %8s %11s %9s %7s %6s\n",
			rate, "drives", "batch", "IO/h", "mean lat (s)", "max lat (s)", "mounts", "batches", "robot-wait", "rejected", "failed", "util%"); err != nil {
			return err
		}
		for _, c := range cells {
			if c.RatePerHour != rate {
				continue
			}
			m := c.Metrics
			label := strconv.Itoa(c.BatchLimit)
			if c.BatchLimit == 0 {
				label = "unlim"
			}
			util := 0.0
			if m.Makespan > 0 && c.Drives > 0 {
				util = m.DriveBusySec / (float64(c.Drives) * m.Makespan) * 100
			}
			if _, err := fmt.Fprintf(w, "%6d %9s %8.1f %12.0f %12.0f %7d %8d %11.0f %9d %7d %6.2f\n",
				c.Drives, label, m.IOsPerHour(), m.MeanLatency, m.MaxLatency,
				m.Mounts, m.Batches, m.RobotWaitSec, m.Rejected, m.Failed, util); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
