package tertiary

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"serpentine/internal/obs"
)

// TestDispatchLoopAllocs pins the dispatch loop's zero-allocation
// contract: once the event heap has grown to the drive count,
// steady-state push/popMin/popLE cycles allocate nothing. The
// interface-boxing container/heap implementation this heap replaced
// allocated twice per event.
func TestDispatchLoopAllocs(t *testing.T) {
	var events eventHeap
	// Warm the backing array to its steady-state footprint; growth
	// allocations are setup, not dispatch.
	for i := 0; i < 8; i++ {
		events.push(driveEvent{at: float64(i), drive: i})
	}
	for events.len() > 0 {
		events.popMin()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		events.push(driveEvent{at: 3, drive: 0})
		events.push(driveEvent{at: 1, drive: 1})
		events.push(driveEvent{at: 2, drive: 2})
		if ev := events.popMin(); ev.drive != 1 {
			t.Fatalf("popMin returned drive %d, want 1", ev.drive)
		}
		for {
			if _, ok := events.popLE(10); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("dispatch loop allocates %.2f times per cycle, want 0", allocs)
	}
}

// TestEventHeapOrdering exercises the strict (at, drive) total order
// the determinism argument rests on: ties on time pop in drive order.
func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	in := []driveEvent{
		{at: 5, drive: 2}, {at: 1, drive: 1}, {at: 5, drive: 0},
		{at: 1, drive: 0}, {at: 3, drive: 7}, {at: 5, drive: 1},
	}
	for _, ev := range in {
		h.push(ev)
	}
	want := append([]driveEvent(nil), in...)
	sort.Slice(want, func(i, j int) bool { return eventLess(want[i], want[j]) })
	for i, w := range want {
		got := h.popMin()
		if got != w {
			t.Fatalf("pop %d: got %+v, want %+v", i, got, w)
		}
	}
}

// TestConcurrentSweepsSharePools runs the same sweep solo and then
// twice concurrently, and asserts all three produce byte-identical
// metrics and identical spans. The sync.Pool-backed scratch (OPT
// arena, scheduler arenas, span handles) is shared process-wide, so
// this is the regression test for pool reuse under -race: any state
// leaking through a pooled object across concurrent runs shows up as
// a diff (or as a race report).
func TestConcurrentSweepsSharePools(t *testing.T) {
	t.Parallel()
	run := func() (string, []Cell) {
		reg := obs.NewRegistry()
		cells, err := Sweep(SweepConfig{
			TapeCount:    2,
			Objects:      128,
			RatesPerHour: []float64{240},
			DriveCounts:  []int{2},
			BatchLimits:  []int{8},
			Requests:     120,
			Seed:         99,
			Workers:      2,
			Reg:          reg,
			SpanCap:      4096,
		})
		if err != nil {
			t.Error(err)
			return "", nil
		}
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Error(err)
			return "", nil
		}
		return buf.String(), cells
	}

	soloMetrics, soloCells := run()
	if t.Failed() {
		t.FailNow()
	}

	const concurrent = 2
	results := make([]string, concurrent)
	cellsOut := make([][]Cell, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], cellsOut[i] = run()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := 0; i < concurrent; i++ {
		if results[i] != soloMetrics {
			t.Errorf("concurrent sweep %d metrics differ from solo run", i)
		}
		if len(cellsOut[i]) != len(soloCells) {
			t.Fatalf("concurrent sweep %d returned %d cells, solo %d", i, len(cellsOut[i]), len(soloCells))
		}
		for c := range soloCells {
			if len(cellsOut[i][c].Spans) != len(soloCells[c].Spans) {
				t.Errorf("concurrent sweep %d cell %d recorded %d spans, solo %d",
					i, c, len(cellsOut[i][c].Spans), len(soloCells[c].Spans))
				continue
			}
			for j, sp := range soloCells[c].Spans {
				got := cellsOut[i][c].Spans[j]
				if got.Trace != sp.Trace || got.ID != sp.ID || got.Parent != sp.Parent ||
					got.Name != sp.Name || got.StartSec != sp.StartSec || got.EndSec != sp.EndSec ||
					got.Lane != sp.Lane || len(got.Attrs) != len(sp.Attrs) {
					t.Fatalf("concurrent sweep %d cell %d span %d differs: got %+v, want %+v", i, c, j, got, sp)
				}
				for a := range sp.Attrs {
					if got.Attrs[a] != sp.Attrs[a] {
						t.Fatalf("concurrent sweep %d cell %d span %d attr %d differs", i, c, j, a)
					}
				}
			}
		}
	}
}
