package tertiary

import (
	"fmt"
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
)

// FuzzLibraryRescue drives the library event loop through arbitrary
// request streams while component-lifecycle faults — drive deaths,
// robot stalls, cartridge loss, bad spots — fire at fuzzed rates, with
// and without replica placement, and checks the failure-domain
// invariants: the offered stream partitions exactly into
// served/failed/rejected/shed, the robot ledger balances including
// lost-cartridge trips, attribution still telescopes to the sojourn
// with rescue time included, and drive outages alone never fail a
// request.
func FuzzLibraryRescue(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x12, 0xa3, 0x34, 0xc5}, byte(1), byte(0), byte(0), byte(7), false)
	f.Add([]byte{0x01, 0x01, 0x01, 0x01}, byte(3), byte(4), byte(0), byte(1), true)
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x3c}, byte(0), byte(8), byte(0xf1), byte(74), true)
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80}, byte(0x1f), byte(2), byte(0x13), byte(5), false)

	profile := geometry.Tiny()
	serials := []int64{101, 102}
	cfg := Config{Profile: profile, Tapes: serials, Drives: 2}
	cat := NewCatalog()
	pl := NewPlacement()
	const perTape = 8
	for ti, serial := range serials {
		tape := geometry.MustGenerate(profile, serial)
		stride := tape.Segments() / perTape
		for i := 0; i < perTape; i++ {
			segs := 1
			if i%3 == 0 {
				segs = 4
			}
			id := fmt.Sprintf("t%d/o%d", serial, i)
			if err := cat.Put(Object{ID: id, Tape: serial, Start: i * stride, Segments: segs}); err != nil {
				f.Fatal(err)
			}
			other := serials[(ti+1)%len(serials)]
			if err := pl.Put(id, Object{Tape: other, Start: i*stride + stride/2, Segments: segs}); err != nil {
				f.Fatal(err)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, mttf, loss, spot, seed byte, withReplicas bool) {
		if len(data) > 64 {
			data = data[:64]
		}
		var (
			reqs    []Request
			arrival float64
		)
		for _, b := range data {
			arrival += float64(b>>4) * 20
			reqs = append(reqs, Request{
				ObjectID: fmt.Sprintf("t%d/o%d", serials[b&1], int(b>>1)%perTape),
				Arrival:  arrival,
			})
		}

		c := cfg
		c.Lifecycle = fault.LifecycleConfig{
			DriveMTTFSec:      float64(mttf&7) * 600,
			DriveMTTRSec:      300 + float64(mttf>>3)*100,
			CartridgeLossRate: float64(loss&15) / 32,
			BadSpotRate:       float64(spot&15) / 16,
			RobotStallRate:    float64(spot>>4) / 16,
			Seed:              int64(seed),
		}
		if c.Lifecycle.DriveMTTFSec == 0 {
			c.Lifecycle.DriveMTTRSec = 0
		}
		if withReplicas {
			c.Placement = pl
		}
		lib, err := New(c, cat)
		if err != nil {
			t.Fatal(err)
		}
		done, m, err := lib.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}

		if got := m.Served + m.Failed + m.Rejected + m.Shed; got != len(reqs) {
			t.Fatalf("conservation broken: served %d + failed %d + rejected %d + shed %d != %d requests",
				m.Served, m.Failed, m.Rejected, m.Shed, len(reqs))
		}
		if c.Lifecycle.CartridgeLossRate == 0 && c.Lifecycle.BadSpotRate == 0 && m.Failed != 0 {
			t.Fatalf("drive outages and stalls alone failed %d requests", m.Failed)
		}
		if len(done) != m.Served {
			t.Fatalf("%d completions for %d served", len(done), m.Served)
		}
		if m.RobotMoves != m.Mounts+m.Unmounts+m.LostCartridges {
			t.Fatalf("robot ledger broken: moves %d != mounts %d + unmounts %d + lost %d",
				m.RobotMoves, m.Mounts, m.Unmounts, m.LostCartridges)
		}
		if m.Unmounts > m.Mounts {
			t.Fatalf("unmounts %d exceed mounts %d", m.Unmounts, m.Mounts)
		}
		if !withReplicas && m.ReplicaReads != 0 {
			t.Fatalf("%d replica reads without a placement", m.ReplicaReads)
		}
		offered := make(map[Request]int)
		for _, r := range reqs {
			offered[r]++
		}
		var prev float64
		for i, comp := range done {
			if comp.Done < prev {
				t.Fatalf("completions out of order at %d: %.3f after %.3f", i, comp.Done, prev)
			}
			prev = comp.Done
			if comp.Done < comp.Arrival {
				t.Fatalf("%s completed at %.3f before arriving at %.3f", comp.ObjectID, comp.Done, comp.Arrival)
			}
			if offered[comp.Request] == 0 {
				t.Fatalf("%s@%.3f completed more often than requested", comp.ObjectID, comp.Arrival)
			}
			offered[comp.Request]--
			if e := comp.AttributionError(); e > 1e-9 {
				t.Fatalf("%s@%.3f attribution off by %g s", comp.ObjectID, comp.Arrival, e)
			}
			if comp.Attribution.RescueSec < 0 {
				t.Fatalf("%s@%.3f negative rescue time %g", comp.ObjectID, comp.Arrival, comp.Attribution.RescueSec)
			}
		}
	})
}
