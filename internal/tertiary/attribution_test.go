package tertiary

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/obs"
)

// attributionFixture is a fault-injected multi-drive run with enough
// arrival pressure that batches queue behind the robot arm and the
// executor exercises retries, replans and recalibrations.
func attributionFixture(t *testing.T, spans *obs.Tracer) ([]Completion, Metrics) {
	t.Helper()
	cfg := smallCfg(2)
	cfg.BatchLimit = 6
	cfg.Faults = fault.Config{TransientRate: 0.15, OvershootRate: 0.05, LostRate: 0.01, MediaRate: 0.005, Seed: 13}
	cfg.Spans = spans
	cat := smallCatalog(t, cfg, 12)
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 40; i++ {
		serial := cfg.Tapes[i%len(cfg.Tapes)]
		reqs = append(reqs, Request{
			ObjectID: fmt.Sprintf("t%d/o%d", serial, (i*5)%12),
			Arrival:  float64(i) * 3,
		})
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return done, m
}

// The attribution invariant: for every served request the six phase
// components sum back to the measured sojourn, within floating-point
// telescoping error.
func TestAttributionConservation(t *testing.T) {
	done, m := attributionFixture(t, nil)
	if m.Served == 0 || m.Retries == 0 {
		t.Fatalf("fixture too tame: served=%d retries=%d", m.Served, m.Retries)
	}
	mounted := false
	for _, c := range done {
		if e := c.AttributionError(); e > 1e-9 {
			t.Fatalf("request %s: sojourn %.12f but components sum %.12f (off by %g)",
				c.ObjectID, c.Latency(), c.Attribution.Sum(), e)
		}
		a := c.Attribution
		for _, v := range []float64{a.QueueSec, a.RobotSec, a.MountSec, a.LocateSec, a.TransferSec, a.RetrySec} {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("request %s: bad component in %+v", c.ObjectID, a)
			}
		}
		if a.MountSec > 0 {
			mounted = true
		}
		if a.TransferSec <= 0 {
			t.Fatalf("request %s: non-positive transfer %g", c.ObjectID, a.TransferSec)
		}
	}
	if !mounted {
		t.Fatal("no request carries mount cost; fixture never exchanged a cartridge")
	}
}

// Span tracing is pure accounting: a traced run must produce exactly
// the completions (including attributions) and metrics of an untraced
// one.
func TestLibrarySpansDoNotPerturbRun(t *testing.T) {
	bareDone, bareM := attributionFixture(t, nil)
	tr := obs.NewTracer(1 << 16)
	tracedDone, tracedM := attributionFixture(t, tr)
	if !reflect.DeepEqual(bareDone, tracedDone) || bareM != tracedM {
		t.Fatal("span tracing perturbed the run")
	}
	// And the trace must cover the whole hierarchy.
	want := map[string]bool{"run": false, "batch": false, "exchange": false,
		"serve": false, "request": false, "locate": false, "read": false}
	for _, s := range tr.Spans() {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("no %q span recorded", name)
		}
	}
}

// The attribution table renders deterministically and reports the
// conservation defect.
func TestWriteAttribution(t *testing.T) {
	done, _ := attributionFixture(t, nil)
	var a, b bytes.Buffer
	if err := WriteAttribution(&a, done); err != nil {
		t.Fatal(err)
	}
	if err := WriteAttribution(&b, done); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("attribution table is not byte-deterministic")
	}
	out := a.String()
	if !strings.Contains(out, "object") || !strings.Contains(out, "max |sojourn - sum(components)|") {
		t.Fatalf("attribution table malformed:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != len(done)+2 {
		t.Fatalf("table has %d lines for %d completions", lines, len(done))
	}
}

// Per-cell span capture in the sweep is deterministic: the same sweep
// at 1 and 8 workers yields identical spans, completions and exports.
func TestSweepSpanDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) []Cell {
		cells, err := Sweep(SweepConfig{
			RatesPerHour: []float64{120, 480},
			DriveCounts:  []int{2},
			BatchLimits:  []int{8},
			Requests:     24,
			Objects:      64,
			TapeCount:    2,
			Faults:       fault.Config{TransientRate: 0.05, LostRate: 0.01},
			Seed:         5,
			Workers:      workers,
			SpanCap:      8192,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	one, eight := run(1), run(8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("sweep cells (spans, completions) differ across worker counts")
	}
	export := func(cells []Cell) []byte {
		var sets []obs.TraceSet
		for i, c := range cells {
			sets = append(sets, obs.TraceSet{Name: fmt.Sprintf("cell %d", i), Spans: c.Spans})
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, sets); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(export(one), export(eight)) {
		t.Fatal("chrome trace export differs across worker counts")
	}
	for _, c := range one {
		if len(c.Spans) == 0 || len(c.Completions) == 0 {
			t.Fatalf("cell %+v captured no spans/completions", c.Metrics.Served)
		}
	}
}
