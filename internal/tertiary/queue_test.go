package tertiary

import (
	"testing"
)

func qpending(serial int64, start int, arrival float64) pending {
	return pending{
		req: Request{ObjectID: "x", Arrival: arrival},
		obj: Object{Tape: serial, Start: start},
	}
}

func TestBatchQueueTakePreservesArrivalOrder(t *testing.T) {
	q := newBatchQueue()
	// Interleave two tapes; within a tape, pushes are arrival order.
	for i := 0; i < 6; i++ {
		q.push(qpending(int64(100+i%2), i*10, float64(i)))
	}
	if q.len() != 6 {
		t.Fatalf("len %d, want 6", q.len())
	}
	got := q.take(100, 2)
	if len(got) != 2 || got[0].obj.Start != 0 || got[1].obj.Start != 20 {
		t.Fatalf("take(100, 2) = %+v", got)
	}
	if q.len() != 4 {
		t.Fatalf("len %d after take, want 4", q.len())
	}
	// limit 0 drains the rest of the tape.
	rest := q.take(100, 0)
	if len(rest) != 1 || rest[0].obj.Start != 40 {
		t.Fatalf("take(100, 0) = %+v", rest)
	}
	if _, ok := q.perTape[100]; ok {
		t.Fatal("drained tape still present in perTape")
	}
	if q.take(999, 0) != nil {
		t.Fatal("take on unknown tape returned a batch")
	}
}

func TestBatchQueuePickSerialZero(t *testing.T) {
	q := newBatchQueue()
	// Serial 0 has the most pending work: it must win the pick even
	// though 0 doubled as the seed's "no candidate" sentinel.
	q.push(qpending(0, 0, 0))
	q.push(qpending(0, 10, 1))
	q.push(qpending(7, 0, 0))
	serial, ok := q.pick(nil)
	if !ok || serial != 0 {
		t.Fatalf("pick = %d, %v; want 0, true", serial, ok)
	}
	// With serial 0 excluded (loaded elsewhere), 7 is next.
	serial, ok = q.pick(map[int64]bool{0: true})
	if !ok || serial != 7 {
		t.Fatalf("pick excluding 0 = %d, %v; want 7, true", serial, ok)
	}
	// Everything excluded: no candidate, reported explicitly rather
	// than through a sentinel value.
	if _, ok := q.pick(map[int64]bool{0: true, 7: true}); ok {
		t.Fatal("pick found a tape with all tapes excluded")
	}
}

func TestBatchQueuePickTieBreaks(t *testing.T) {
	q := newBatchQueue()
	q.push(qpending(5, 0, 2))
	q.push(qpending(3, 0, 2))
	// Equal counts and equal oldest arrival: lowest serial wins.
	if serial, _ := q.pick(nil); serial != 3 {
		t.Fatalf("equal-count equal-age pick = %d, want 3", serial)
	}
	// Older work wins over serial order.
	q.push(qpending(9, 0, 1))
	if serial, _ := q.pick(nil); serial != 9 {
		t.Fatalf("oldest-work pick = %d, want 9", serial)
	}
}

func TestBatchQueueCompaction(t *testing.T) {
	q := newBatchQueue()
	for i := 0; i < 100; i++ {
		q.push(qpending(1, i, float64(i)))
	}
	// Consume past the halfway mark in small bites; the backing slice
	// must compact instead of retaining every served entry.
	for i := 0; i < 6; i++ {
		q.take(1, 10)
	}
	tq := q.perTape[1]
	if tq.head != 0 {
		t.Fatalf("head %d after compaction threshold, want 0", tq.head)
	}
	if len(tq.reqs) != 40 {
		t.Fatalf("backing slice holds %d entries, want the 40 live ones", len(tq.reqs))
	}
	if got := q.take(1, 0); len(got) != 40 || got[0].obj.Start != 60 {
		t.Fatalf("post-compaction drain = %d entries starting %d", len(got), got[0].obj.Start)
	}
}

// The seed's splitBatch rebuilt the whole queue on every batch —
// O(queue) per take, O(n²) per run. The benchmark pair documents the
// win from head-index compaction.
func benchPendings(n int) []pending {
	ps := make([]pending, n)
	for i := range ps {
		ps[i] = qpending(int64(100+i%8), i, float64(i))
	}
	return ps
}

func BenchmarkBatchQueueTake(b *testing.B) {
	src := benchPendings(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := newBatchQueue()
		for _, p := range src {
			q.push(p)
		}
		for q.len() > 0 {
			serial, ok := q.pick(nil)
			if !ok {
				b.Fatal("pick failed with work pending")
			}
			if len(q.take(serial, 16)) == 0 {
				b.Fatal("empty take")
			}
		}
	}
}

func BenchmarkBatchQueueSeedSplit(b *testing.B) {
	src := benchPendings(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		queue := append([]pending(nil), src...)
		for len(queue) > 0 {
			serial := refPickTape(queue)
			batch, rest := refSplitBatch(queue, len(queue), serial, 16)
			if len(batch) == 0 {
				b.Fatal("empty batch")
			}
			queue = rest
		}
	}
}
