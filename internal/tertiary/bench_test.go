package tertiary

import (
	"testing"

	"serpentine/internal/geometry"
)

// benchStore builds the shared read-only store and a representative
// request stream once: a 4-cartridge library under a 240/h Poisson
// stream of 400 Zipf-popular object reads — the same shape as the
// committed results/library.txt sweep's densest cell.
type benchCell struct {
	lib    *Library
	stream []Request
}

func buildBenchCell(b *testing.B, drives, batchLimit, requests int) benchCell {
	b.Helper()
	const (
		tapeCount = 4
		objects   = 512
		objSegs   = 32
	)
	profile := geometry.DLT4000()
	catalog := NewCatalog()
	serials := make([]int64, tapeCount)
	for t := 0; t < tapeCount; t++ {
		serial := int64(3000 + t)
		serials[t] = serial
		tape, err := geometry.Generate(profile, serial)
		if err != nil {
			b.Fatal(err)
		}
		stride := tape.Segments() / objects
		for o := 0; o < objects; o++ {
			if err := catalog.Put(Object{
				ID:       sweepObjectID(t, o),
				Tape:     serial,
				Start:    o * stride,
				Segments: objSegs,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	lib, err := New(Config{
		Profile:    profile,
		Tapes:      serials,
		Drives:     drives,
		BatchLimit: batchLimit,
	}, catalog)
	if err != nil {
		b.Fatal(err)
	}
	stream, err := sweepStream(240, requests, 12345, tapeCount, objects)
	if err != nil {
		b.Fatal(err)
	}
	return benchCell{lib: lib, stream: stream}
}

// BenchmarkLibrarySweepCell runs one representative library-sweep
// cell end to end — admission, batching, robot exchanges, scheduling
// and execution through the recovering executor — and reports the
// simulated-request throughput the sweep machinery sustains. This is
// the headline end-to-end number BENCH_PR6.json tracks.
func BenchmarkLibrarySweepCell(b *testing.B) {
	c := buildBenchCell(b, 2, 16, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.lib.Run(c.stream); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(c.stream))*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
}

// BenchmarkLibrarySweepCellUnlimited is the dense-batch variant: no
// batch cap, so whole backlogs are scheduled per mount.
func BenchmarkLibrarySweepCellUnlimited(b *testing.B) {
	c := buildBenchCell(b, 2, 0, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.lib.Run(c.stream); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(c.stream))*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
}

// BenchmarkEventLoopDispatch measures the central dispatch loop's
// event-heap steady state: a pool of drives completing and being
// rescheduled in virtual-time order, the pattern Run's wake/serve
// cycle drives millions of times in a fleet sweep.
func BenchmarkEventLoopDispatch(b *testing.B) {
	const drives = 16
	var events eventHeap
	for d := 0; d < drives; d++ {
		events.push(driveEvent{at: float64(d) * 1.7, drive: d})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events.popMin()
		events.push(driveEvent{at: ev.at + 40 + float64(ev.drive), drive: ev.drive})
	}
}
