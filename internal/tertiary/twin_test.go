package tertiary

import (
	"math"
	"testing"

	"serpentine/internal/core"
)

// buildTwinLibrary builds a 4-tape store shaped like the sweep's, and
// a request stream over it.
func buildTwinLibrary(t *testing.T, drives, batchLimit int) (*Library, []Request) {
	t.Helper()
	const tapes, objects, objSegs = 4, 256, 32
	catalog := NewCatalog()
	serials := make([]int64, tapes)
	for tp := 0; tp < tapes; tp++ {
		serials[tp] = int64(4000 + tp)
	}
	lib0, err := New(Config{Tapes: serials}, mustSweepCatalog(t, catalog, serials, objects, objSegs))
	if err != nil {
		t.Fatal(err)
	}
	lib := lib0.Clone(Config{
		Tapes:      serials,
		Drives:     drives,
		BatchLimit: batchLimit,
		Scheduler:  core.NewLOSS(),
	})
	stream, err := sweepStream(240, 200, 424242, tapes, objects)
	if err != nil {
		t.Fatal(err)
	}
	return lib, stream
}

func mustSweepCatalog(t *testing.T, catalog *Catalog, serials []int64, objects, objSegs int) *Catalog {
	t.Helper()
	for ti, serial := range serials {
		for o := 0; o < objects; o++ {
			if err := catalog.Put(Object{
				ID:       sweepObjectID(ti, o),
				Tape:     serial,
				Start:    o * 2048,
				Segments: objSegs,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return catalog
}

// TestEstimateMatchesRunClosedBatch pins the library twin on a closed
// workload: every request arrives at time zero, so the twin makes the
// identical admission, batching, robot and scheduling decisions as the
// event-driven run and differs only by the locate model's
// interpolation error — within the documented 5% envelope, and with
// identical discrete decision counts.
func TestEstimateMatchesRunClosedBatch(t *testing.T) {
	t.Parallel()
	lib, stream := buildTwinLibrary(t, 2, 16)
	for i := range stream {
		stream[i].Arrival = 0
	}
	simComps, simM, err := lib.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	twinComps, twinM, err := lib.Estimate(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(twinComps) != len(simComps) || twinM.Served != simM.Served {
		t.Fatalf("twin served %d, sim %d", twinM.Served, simM.Served)
	}
	if twinM.Mounts != simM.Mounts || twinM.Batches != simM.Batches || twinM.Unmounts != simM.Unmounts {
		t.Fatalf("twin decisions diverged: mounts %d/%d, unmounts %d/%d, batches %d/%d",
			twinM.Mounts, simM.Mounts, twinM.Unmounts, simM.Unmounts, twinM.Batches, simM.Batches)
	}
	relErr := math.Abs(twinM.MeanLatency-simM.MeanLatency) / simM.MeanLatency
	t.Logf("sim mean latency %.2fs, twin %.2fs, error %.2f%%", simM.MeanLatency, twinM.MeanLatency, relErr*100)
	if relErr > 0.05 {
		t.Errorf("twin mean latency %.2fs vs sim %.2fs: %.1f%% error exceeds the 5%% envelope",
			twinM.MeanLatency, simM.MeanLatency, relErr*100)
	}
	if busyErr := math.Abs(twinM.DriveBusySec-simM.DriveBusySec) / simM.DriveBusySec; busyErr > 0.05 {
		t.Errorf("twin drive busy %.2fs vs sim %.2fs: %.1f%% error exceeds the 5%% envelope",
			twinM.DriveBusySec, simM.DriveBusySec, busyErr*100)
	}
}

// TestEstimateOpenStream sanity-checks the twin on the sweep's own
// Poisson/Zipf workload, where service-time differences can shift
// dispatch decisions: the estimate still lands near the sim.
func TestEstimateOpenStream(t *testing.T) {
	t.Parallel()
	lib, stream := buildTwinLibrary(t, 2, 16)
	_, simM, err := lib.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	_, twinM, err := lib.Estimate(stream)
	if err != nil {
		t.Fatal(err)
	}
	if twinM.Served != simM.Served {
		t.Fatalf("twin served %d, sim %d", twinM.Served, simM.Served)
	}
	relErr := math.Abs(twinM.MeanLatency-simM.MeanLatency) / simM.MeanLatency
	t.Logf("sim mean latency %.2fs, twin %.2fs, error %.2f%%", simM.MeanLatency, twinM.MeanLatency, relErr*100)
	if relErr > 0.10 {
		t.Errorf("twin mean latency %.2fs vs sim %.2fs: %.1f%% error exceeds 10%%",
			twinM.MeanLatency, simM.MeanLatency, relErr*100)
	}
}

// TestSweepAnalytical exercises the sweep-level selection: the
// analytical sweep covers the same grid and serves every cell's
// stream.
func TestSweepAnalytical(t *testing.T) {
	t.Parallel()
	cells, err := Sweep(SweepConfig{
		TapeCount:    2,
		Objects:      128,
		RatesPerHour: []float64{120},
		DriveCounts:  []int{1, 2},
		BatchLimits:  []int{8},
		Requests:     60,
		Seed:         5,
		Analytical:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Metrics.Served != 60 {
			t.Errorf("cell drives=%d served %d of 60", c.Drives, c.Metrics.Served)
		}
		if c.Metrics.MeanLatency <= 0 {
			t.Errorf("cell drives=%d has non-positive mean latency", c.Drives)
		}
	}
}
