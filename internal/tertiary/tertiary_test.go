package tertiary

import (
	"fmt"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/geometry"
)

// smallCfg keeps library tests fast: the Tiny geometry.
func smallCfg(drives int) Config {
	return Config{
		Profile: geometry.Tiny(),
		Tapes:   []int64{101, 102},
		Drives:  drives,
	}
}

func smallCatalog(t testing.TB, cfg Config, perTape int) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, serial := range cfg.Tapes {
		tape := geometry.MustGenerate(cfg.Profile, serial)
		stride := tape.Segments() / perTape
		for i := 0; i < perTape; i++ {
			if err := c.Put(Object{
				ID:    fmt.Sprintf("t%d/o%d", serial, i),
				Tape:  serial,
				Start: i * stride,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if err := c.Put(Object{}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := c.Put(Object{ID: "x", Tape: 1, Start: 5}); err != nil {
		t.Fatal(err)
	}
	if o, ok := c.Get("x"); !ok || o.Start != 5 {
		t.Fatal("Get failed")
	}
	if _, ok := c.Get("y"); ok {
		t.Fatal("phantom object")
	}
	if c.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestNewLibraryValidation(t *testing.T) {
	cfg := smallCfg(1)
	cat := smallCatalog(t, cfg, 10)

	if _, err := New(Config{Profile: cfg.Profile}, cat); err == nil {
		t.Fatal("no tapes accepted")
	}
	if _, err := New(cfg, NewCatalog()); err == nil {
		t.Fatal("empty catalog accepted")
	}

	badTape := smallCatalog(t, cfg, 2)
	badTape.Put(Object{ID: "bad", Tape: 999, Start: 0})
	if _, err := New(cfg, badTape); err == nil {
		t.Fatal("object on unknown tape accepted")
	}

	badExtent := smallCatalog(t, cfg, 2)
	badExtent.Put(Object{ID: "bad", Tape: 101, Start: 1 << 30})
	if _, err := New(cfg, badExtent); err == nil {
		t.Fatal("out-of-range extent accepted")
	}
}

func TestRunServesEverything(t *testing.T) {
	cfg := smallCfg(1)
	cat := smallCatalog(t, cfg, 20)
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for _, serial := range cfg.Tapes {
		for i := 0; i < 10; i++ {
			reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t%d/o%d", serial, i)})
		}
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != len(reqs) || m.Served != len(reqs) {
		t.Fatalf("served %d of %d", len(done), len(reqs))
	}
	if m.Makespan <= 0 || m.Mounts < 2 || m.BytesRead <= 0 {
		t.Fatalf("bad metrics: %+v", m)
	}
	// Completions are sorted by completion time, each after arrival.
	for i, c := range done {
		if c.Latency() < 0 {
			t.Fatalf("negative latency: %+v", c)
		}
		if i > 0 && c.Done < done[i-1].Done {
			t.Fatal("completions out of order")
		}
	}
	if m.IOsPerHour() <= 0 {
		t.Fatal("IOsPerHour should be positive")
	}
}

func TestRunRejectsUnknownObject(t *testing.T) {
	cfg := smallCfg(1)
	lib, err := New(cfg, smallCatalog(t, cfg, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lib.Run([]Request{{ObjectID: "nope"}}); err == nil {
		t.Fatal("unknown object accepted")
	}
}

// Two drives should beat one on a two-tape workload.
func TestMultipleDrivesReduceMakespan(t *testing.T) {
	var spans [2]float64
	for i, drives := range []int{1, 2} {
		cfg := smallCfg(drives)
		lib, err := New(cfg, smallCatalog(t, cfg, 30))
		if err != nil {
			t.Fatal(err)
		}
		var reqs []Request
		for _, serial := range cfg.Tapes {
			for j := 0; j < 30; j++ {
				reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t%d/o%d", serial, j)})
			}
		}
		_, m, err := lib.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = m.Makespan
	}
	if spans[1] >= spans[0] {
		t.Fatalf("2 drives (%.0f s) not faster than 1 (%.0f s)", spans[1], spans[0])
	}
}

// The scheduled policy must beat FIFO service order on a random
// batch: the library exists to batch and schedule.
func TestSchedulingBeatsFIFOInLibrary(t *testing.T) {
	var spans [2]float64
	for i, sched := range []core.Scheduler{core.FIFO{}, core.NewAuto()} {
		cfg := smallCfg(1)
		cfg.Scheduler = sched
		lib, err := New(cfg, smallCatalog(t, cfg, 40))
		if err != nil {
			t.Fatal(err)
		}
		var reqs []Request
		for j := 0; j < 40; j++ {
			// Scatter request order so FIFO is genuinely random.
			reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", (j*17)%40)})
		}
		_, m, err := lib.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = m.Makespan
	}
	if spans[1] >= spans[0] {
		t.Fatalf("Auto (%.0f s) not faster than FIFO (%.0f s)", spans[1], spans[0])
	}
}

func TestBatchLimitRespected(t *testing.T) {
	cfg := smallCfg(1)
	cfg.BatchLimit = 5
	lib, err := New(cfg, smallCatalog(t, cfg, 20))
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for j := 0; j < 20; j++ {
		reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", j)})
	}
	_, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batches < 4 {
		t.Fatalf("20 requests with batch limit 5 ran in %d batches", m.Batches)
	}
}

// Arrivals matter: a request that arrives late cannot complete early.
func TestArrivalsRespected(t *testing.T) {
	cfg := smallCfg(1)
	lib, err := New(cfg, smallCatalog(t, cfg, 10))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{ObjectID: "t101/o1", Arrival: 0},
		{ObjectID: "t101/o2", Arrival: 50000},
	}
	done, _, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range done {
		if c.Done < c.Arrival {
			t.Fatalf("completed before arrival: %+v", c)
		}
	}
}

func TestMultiSegmentObjects(t *testing.T) {
	cfg := smallCfg(1)
	cat := NewCatalog()
	tape := geometry.MustGenerate(cfg.Profile, 101)
	cat.Put(Object{ID: "big", Tape: 101, Start: 0, Segments: 50})
	cat.Put(Object{ID: "small", Tape: 101, Start: tape.Segments() / 2})
	lib, err := New(Config{Profile: cfg.Profile, Tapes: []int64{101}}, cat)
	if err != nil {
		t.Fatal(err)
	}
	done, m, err := lib.Run([]Request{{ObjectID: "big"}, {ObjectID: "small"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("served %d", len(done))
	}
	wantBytes := int64(51) * cfg.Profile.SegmentBytes
	if m.BytesRead != wantBytes {
		t.Fatalf("bytes read %d, want %d", m.BytesRead, wantBytes)
	}
}

func TestTapesAccessor(t *testing.T) {
	cfg := smallCfg(1)
	lib, err := New(cfg, smallCatalog(t, cfg, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := lib.Tapes()
	if len(got) != 2 || got[0] != 101 || got[1] != 102 {
		t.Fatalf("Tapes() = %v", got)
	}
}
