package tertiary

import (
	"fmt"
	"math"
	"sort"

	"serpentine/internal/core"
	"serpentine/internal/server"
)

// Estimate is the closed-form twin of Run: the same admission,
// batching, robot-arm and dispatch logic, with every drive operation
// charged the characterized locate model's analytical cost instead of
// stepping the emulated drive. A cell estimate costs one Schedule
// call per batch plus arithmetic per request, an order of magnitude
// less than the event-driven run, which makes it the right tool for
// coarse grid scans that don't need per-request fidelity.
//
// The estimate differs from Run only where the model differs from the
// emulated mechanism: the per-cartridge timing personality the model
// interpolates over, head-pass wear accounting (HeadPasses stays 0),
// and fault recovery — the twin is fault-free and ignores cfg.Faults,
// cfg.Reg, cfg.TraceCap and cfg.Spans. On fault-free runs the error
// is the model's interpolation error: about 1% mean latency error,
// ≤5% across the paper's Fig. 6/7 operating points (enforced by
// TestAnalyticalTwinAccuracy).
func (l *Library) Estimate(requests []Request) ([]Completion, Metrics, error) {
	arrivals := make([]pending, 0, len(requests))
	for i, r := range requests {
		o, ok := l.catalog.Get(r.ObjectID)
		if !ok {
			return nil, Metrics{}, fmt.Errorf("tertiary: request for unknown object %q", r.ObjectID)
		}
		if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
			return nil, Metrics{}, fmt.Errorf("tertiary: request %d arrives at %g", i, r.Arrival)
		}
		arrivals = append(arrivals, pending{req: r, obj: o})
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].req.Arrival < arrivals[j].req.Arrival })

	queueCap := l.cfg.QueueCap
	admCap := queueCap
	if queueCap <= 0 {
		queueCap = math.MaxInt / 2
		admCap = math.MaxInt / 2
	}
	s := &twinState{
		l:        l,
		cfg:      l.cfg,
		arrivals: arrivals,
		queueCap: queueCap,
		adm:      server.NewAdmissionQueue(admCap),
		q:        newBatchQueue(),
		drives:   make([]twinDrive, l.cfg.Drives),
		loadedBy: make(map[int64]int, l.cfg.Drives),
		done:     make([]Completion, 0, len(arrivals)),
	}
	for i := range s.drives {
		s.drives[i].id = i
		s.drives[i].idle = true
	}

	now, boundary := 0.0, true
	s.admit(now)
	for {
		if err := s.dispatch(now, boundary); err != nil {
			return nil, Metrics{}, err
		}
		t, atBoundary, ok := s.nextTime(now)
		if !ok {
			break
		}
		now, boundary = t, atBoundary
		for {
			ev, popped := s.events.popLE(now)
			if !popped {
				break
			}
			s.drives[ev.drive].idle = true
		}
		s.admit(now)
	}
	if stranded := s.q.len() + s.adm.Len(); stranded > 0 || s.next < len(s.arrivals) {
		return nil, Metrics{}, fmt.Errorf("tertiary: internal: %d requests stranded at end of estimate",
			stranded+len(s.arrivals)-s.next)
	}
	s.finish()
	return s.done, s.m, nil
}

// twinDrive is the analytical image of a transport: just a head
// position on a mounted serial, no emulated mechanism.
type twinDrive struct {
	id     int
	serial int64
	loaded bool
	idle   bool
	busy   float64
	pos    int
}

// twinState is one Estimate's event loop, mirroring runState's
// control flow on closed-form costs.
type twinState struct {
	l         *Library
	cfg       Config
	arrivals  []pending
	next      int
	queueCap  int
	adm       *server.AdmissionQueue
	q         *batchQueue
	drives    []twinDrive
	loadedBy  map[int64]int
	events    eventHeap
	robotFree float64
	done      []Completion
	m         Metrics
}

func (s *twinState) admit(until float64) {
	for s.next < len(s.arrivals) && s.arrivals[s.next].req.Arrival <= until {
		p := s.arrivals[s.next]
		id := s.next
		s.next++
		if s.q.len()+s.adm.Len() >= s.queueCap ||
			!s.adm.Offer(server.Request{ID: id, Segment: p.obj.Start, ArrivalSec: p.req.Arrival}) {
			s.m.Rejected++
		}
	}
	for _, r := range s.adm.PopNAppend(nil, 0) {
		s.q.push(s.arrivals[r.ID])
	}
	if d := s.q.len(); d > s.m.MaxQueueDepth {
		s.m.MaxQueueDepth = d
	}
}

func (s *twinState) dispatch(now float64, boundary bool) error {
	if s.cfg.Policy == server.FixedWindow && !boundary {
		return nil
	}
	if s.cfg.Policy == server.ReplanOnArrival {
		for i := range s.drives {
			d := &s.drives[i]
			if d.idle && d.loaded && s.q.perTape[d.serial] != nil {
				if err := s.serve(d, d.serial, now); err != nil {
					return err
				}
			}
		}
	}
	for i := range s.drives {
		d := &s.drives[i]
		if !d.idle {
			continue
		}
		serial, ok := s.q.pickFor(s.loadedBy, d.id)
		if !ok {
			continue
		}
		if err := s.serve(d, serial, now); err != nil {
			return err
		}
	}
	return nil
}

func (s *twinState) nextTime(now float64) (t float64, boundary, ok bool) {
	t = math.Inf(1)
	if s.events.len() > 0 {
		t, ok = s.events.min().at, true
	}
	if s.next < len(s.arrivals) {
		if a := s.arrivals[s.next].req.Arrival; a < t {
			t = a
		}
		ok = true
	}
	if s.cfg.Policy == server.FixedWindow && s.q.len() > 0 && s.anyIdle() {
		b := s.cfg.WindowSec * math.Ceil(now/s.cfg.WindowSec)
		for b <= now {
			b += s.cfg.WindowSec
		}
		if b <= t {
			t, boundary = b, true
		}
		ok = true
	}
	return t, boundary, ok
}

func (s *twinState) anyIdle() bool {
	for i := range s.drives {
		if s.drives[i].idle {
			return true
		}
	}
	return false
}

// exchange mirrors runState.exchange on model costs: the outgoing
// cartridge's modeled rewind, the robot-arm queueing discipline, and
// the mount/unmount handling times.
func (s *twinState) exchange(d *twinDrive, serial int64, now float64) (rewind, wait, exDur float64) {
	if d.loaded {
		rewind = s.l.models[d.serial].RewindTime(d.pos)
		exDur += s.cfg.UnmountSec
		s.m.Unmounts++
		s.m.RobotMoves++
		delete(s.loadedBy, d.serial)
	}
	exDur += s.cfg.MountSec
	s.m.Mounts++
	s.m.RobotMoves++

	exStart := now + rewind
	if s.robotFree > exStart {
		wait = s.robotFree - exStart
		s.m.RobotWaitSec += wait
	}
	s.robotFree = exStart + wait + exDur
	s.m.RobotBusySec += exDur
	d.serial = serial
	d.loaded = true
	d.pos = 0
	s.loadedBy[serial] = d.id
	return rewind, wait, exDur
}

func (s *twinState) serve(d *twinDrive, serial int64, now float64) error {
	limit := s.cfg.BatchLimit
	if s.cfg.Policy == server.ReplanOnArrival {
		limit = 1
	}
	batch := s.q.take(serial, limit)
	if len(batch) == 0 {
		return fmt.Errorf("tertiary: internal: dispatched empty batch for tape %d", serial)
	}
	d.idle = false

	var rewind, wait, exDur float64
	if !d.loaded || d.serial != serial {
		rewind, wait, exDur = s.exchange(d, serial, now)
	}
	serveStart := now + rewind + wait + exDur

	// Size classes in the same deterministic order as Run.
	rl0 := batch[0].obj.segments()
	single := true
	for i := 1; i < len(batch); i++ {
		if batch[i].obj.segments() != rl0 {
			single = false
			break
		}
	}
	elapsed := 0.0
	var err error
	if single {
		elapsed, err = s.serveClass(d, serial, now, serveStart, elapsed, wait, rewind+exDur, rl0, batch)
	} else {
		byLen := make(map[int][]pending)
		for _, p := range batch {
			byLen[p.obj.segments()] = append(byLen[p.obj.segments()], p)
		}
		lens := make([]int, 0, len(byLen))
		for k := range byLen {
			lens = append(lens, k)
		}
		sort.Slice(lens, func(i, j int) bool {
			if len(byLen[lens[i]]) != len(byLen[lens[j]]) {
				return len(byLen[lens[i]]) > len(byLen[lens[j]])
			}
			return lens[i] < lens[j]
		})
		for _, rl := range lens {
			if elapsed, err = s.serveClass(d, serial, now, serveStart, elapsed, wait, rewind+exDur, rl, byLen[rl]); err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}

	end := serveStart + elapsed
	d.busy += rewind + wait + exDur + elapsed
	s.events.push(driveEvent{at: end, drive: d.id})
	if end > s.m.Makespan {
		s.m.Makespan = end
	}
	s.m.Batches++
	return nil
}

// serveClass plans one size class with the run's scheduler and charges
// each leg's closed-form locate and read times. elapsed is the class's
// starting offset within the batch; the advanced offset is returned.
func (s *twinState) serveClass(d *twinDrive, serial int64, now, serveStart, elapsed, robotSec, mountSec float64, rl int, group []pending) (float64, error) {
	model := s.l.models[serial]
	bySeg := make(map[int][]pending, len(group))
	uniq := make([]int, 0, len(group))
	for _, p := range group {
		if _, dup := bySeg[p.obj.Start]; !dup {
			uniq = append(uniq, p.obj.Start)
		}
		bySeg[p.obj.Start] = append(bySeg[p.obj.Start], p)
	}
	prob := core.Problem{Start: d.pos, Requests: uniq, ReadLen: rl, Cost: model}
	plan, err := s.l.sched.Schedule(&prob)
	if err != nil {
		return 0, fmt.Errorf("tertiary: estimate scheduling %d requests on tape %d: %w", len(uniq), serial, err)
	}
	for _, seg := range plan.Order {
		begin := elapsed
		loc := model.LocateTime(d.pos, seg)
		read := 0.0
		for k := 0; k < rl; k++ {
			read += model.ReadTime(seg + k)
		}
		d.pos = seg + rl
		elapsed += loc + read
		waiters, ok := bySeg[seg]
		if !ok {
			return 0, fmt.Errorf("tertiary: estimate plan visits segment %d on tape %d more often than requested", seg, serial)
		}
		delete(bySeg, seg)
		done := serveStart + elapsed
		for _, p := range waiters {
			s.done = append(s.done, Completion{
				Request: p.req, Object: p.obj,
				Done:    done,
				DriveID: d.id,
				Attribution: Attribution{
					QueueSec:    (now - p.req.Arrival) + begin,
					RobotSec:    robotSec,
					MountSec:    mountSec,
					LocateSec:   loc,
					TransferSec: read,
				},
			})
		}
	}
	if len(bySeg) > 0 {
		return 0, fmt.Errorf("tertiary: estimate plan for tape %d left %d segments unvisited", serial, len(bySeg))
	}
	return elapsed, nil
}

func (s *twinState) finish() {
	for i := range s.drives {
		s.m.DriveBusySec += s.drives[i].busy
	}
	var latSum float64
	for _, c := range s.done {
		s.m.Served++
		lat := c.Latency()
		latSum += lat
		if lat > s.m.MaxLatency {
			s.m.MaxLatency = lat
		}
		s.m.BytesRead += int64(c.Object.segments()) * s.cfg.Profile.SegmentBytes
	}
	if s.m.Served > 0 {
		s.m.MeanLatency = latSum / float64(s.m.Served)
	}
	sort.SliceStable(s.done, func(i, j int) bool { return s.done[i].Done < s.done[j].Done })
}
