package tertiary

// batchQueue holds the admitted-but-undispatched requests grouped by
// cartridge, each group in arrival order. Groups consume from the
// head with index compaction — the server.AdmissionQueue.PopN
// technique — so taking a batch costs O(batch), not O(remaining).
// The seed implementation rebuilt the whole remaining queue on every
// mount decision, which is quadratic under sustained load; see
// BenchmarkBatchQueue for the comparison.
type batchQueue struct {
	perTape map[int64]*tapeQueue
	total   int
}

// tapeQueue is one cartridge's pending requests in arrival order.
type tapeQueue struct {
	reqs []pending
	head int
}

func newBatchQueue() *batchQueue {
	return &batchQueue{perTape: make(map[int64]*tapeQueue)}
}

// push appends one admitted request to its cartridge's group.
// Requests must be pushed in arrival order.
func (q *batchQueue) push(p pending) {
	tq := q.perTape[p.obj.Tape]
	if tq == nil {
		tq = &tapeQueue{}
		q.perTape[p.obj.Tape] = tq
	}
	tq.reqs = append(tq.reqs, p)
	q.total++
}

// len returns the number of queued requests across all cartridges.
func (q *batchQueue) len() int { return q.total }

func (tq *tapeQueue) len() int { return len(tq.reqs) - tq.head }

// oldest returns the arrival time of the longest-waiting request in a
// non-empty group.
func (tq *tapeQueue) oldest() float64 { return tq.reqs[tq.head].req.Arrival }

// take removes up to limit requests for the cartridge in arrival
// order (limit <= 0 drains the group). The dead prefix is compacted
// once it dominates the backing array, keeping push amortized O(1)
// without unbounded growth.
func (q *batchQueue) take(serial int64, limit int) []pending {
	tq := q.perTape[serial]
	if tq == nil {
		return nil
	}
	n := tq.len()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]pending, n)
	copy(out, tq.reqs[tq.head:tq.head+n])
	tq.head += n
	q.total -= n
	if tq.len() == 0 {
		delete(q.perTape, serial)
	} else if tq.head > len(tq.reqs)/2 {
		tq.reqs = append(tq.reqs[:0], tq.reqs[tq.head:]...)
		tq.head = 0
	}
	return out
}

// pick chooses the next cartridge to mount among those not excluded:
// the one with the most pending requests, ties broken by the oldest
// waiting request and then by the smaller serial, which bounds
// starvation while keeping batches dense and makes the choice
// deterministic despite map iteration. "No candidate yet" is tracked
// with an explicit boolean rather than a serial-0 sentinel, so a
// legal cartridge serial 0 behaves like any other.
func (q *batchQueue) pick(excluded map[int64]bool) (int64, bool) {
	var (
		best  int64
		found bool
	)
	for serial, tq := range q.perTape {
		if excluded[serial] {
			continue
		}
		if !found {
			best, found = serial, true
			continue
		}
		bq := q.perTape[best]
		switch {
		case tq.len() > bq.len():
			best = serial
		case tq.len() == bq.len() && tq.oldest() < bq.oldest():
			best = serial
		case tq.len() == bq.len() && tq.oldest() == bq.oldest() && serial < best:
			best = serial
		}
	}
	return best, found
}

// pickFor is pick for the dispatch loop's hot path: instead of a
// freshly built exclusion map it takes the run's standing
// cartridge-location index (serial -> drive holding it) and the asking
// drive, excluding exactly the cartridges loaded in *other* drives.
// Same candidates, same tie-breaks, no per-dispatch allocation.
func (q *batchQueue) pickFor(loadedBy map[int64]int, self int) (int64, bool) {
	var (
		best  int64
		found bool
	)
	for serial, tq := range q.perTape {
		if owner, loaded := loadedBy[serial]; loaded && owner != self {
			continue
		}
		if !found {
			best, found = serial, true
			continue
		}
		bq := q.perTape[best]
		switch {
		case tq.len() > bq.len():
			best = serial
		case tq.len() == bq.len() && tq.oldest() < bq.oldest():
			best = serial
		case tq.len() == bq.len() && tq.oldest() == bq.oldest() && serial < best:
			best = serial
		}
	}
	return best, found
}
