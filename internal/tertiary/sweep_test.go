package tertiary

import (
	"bytes"
	"testing"

	"serpentine/internal/geometry"
	"serpentine/internal/obs"
)

// tinySweep keeps sweep tests fast: the Tiny geometry, a small store,
// a short stream.
func tinySweep() SweepConfig {
	return SweepConfig{
		Profile:        geometry.Tiny(),
		TapeCount:      2,
		Objects:        8,
		ObjectSegments: 1,
		RatesPerHour:   []float64{3600},
		DriveCounts:    []int{1},
		BatchLimits:    []int{1, 8, 0},
		Requests:       40,
		Seed:           7,
	}
}

func TestSweepTradeoff(t *testing.T) {
	cells, err := Sweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Metrics.Served != 40 {
			t.Fatalf("limit %d served %d of 40", c.BatchLimit, c.Metrics.Served)
		}
	}
	// Under saturation, throughput must grow with the batch limit:
	// that is the scheduling gain the system exists for.
	if !(cells[0].Metrics.IOsPerHour() < cells[1].Metrics.IOsPerHour() &&
		cells[1].Metrics.IOsPerHour() <= cells[2].Metrics.IOsPerHour()+1) {
		t.Fatalf("throughput not improving with batch limit: %.1f, %.1f, %.1f",
			cells[0].Metrics.IOsPerHour(), cells[1].Metrics.IOsPerHour(), cells[2].Metrics.IOsPerHour())
	}
	// And mount traffic must fall: batching exists to amortize the
	// robot exchange.
	if cells[0].Metrics.Mounts < cells[2].Metrics.Mounts {
		t.Fatalf("mounts not improving with batching: %d vs %d",
			cells[0].Metrics.Mounts, cells[2].Metrics.Mounts)
	}
}

// TestSweepMoreDrivesHelp pins the drive-pool dimension: under a
// saturating stream over two cartridges, two transports finish sooner
// than one.
func TestSweepMoreDrivesHelp(t *testing.T) {
	cfg := tinySweep()
	cfg.DriveCounts = []int{1, 2}
	cfg.BatchLimits = []int{0}
	cells, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	if cells[1].Metrics.Makespan >= cells[0].Metrics.Makespan {
		t.Fatalf("2 drives (%.0f s) not faster than 1 (%.0f s)",
			cells[1].Metrics.Makespan, cells[0].Metrics.Makespan)
	}
}

// TestSweepDeterministicAcrossWorkers is the byte-determinism
// contract cmd/library and the CI determinism job rely on: the
// rendered table and the merged metrics dump are identical at any
// worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) (string, string) {
		cfg := tinySweep()
		cfg.DriveCounts = []int{1, 2}
		cfg.Workers = workers
		reg := obs.NewRegistry()
		cfg.Reg = reg
		cells, err := Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var table, prom bytes.Buffer
		if err := WriteLibrary(&table, cells); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteProm(&prom); err != nil {
			t.Fatal(err)
		}
		return table.String(), prom.String()
	}
	t1, p1 := render(1)
	t3, p3 := render(3)
	if t1 != t3 {
		t.Fatalf("table differs between 1 and 3 workers:\n--- 1 worker\n%s\n--- 3 workers\n%s", t1, t3)
	}
	if p1 != p3 {
		t.Fatal("merged metrics dump differs between 1 and 3 workers")
	}
}

func TestSweepValidates(t *testing.T) {
	cfg := tinySweep()
	// 8 objects of 200 segments cannot fit a Tiny tape.
	cfg.ObjectSegments = 200
	if _, err := Sweep(cfg); err == nil {
		t.Fatal("overflowing store accepted")
	}
}
