package tertiary

import (
	"fmt"
	"testing"
)

func TestSweepTradeoff(t *testing.T) {
	cfg := smallCfg(1)
	cat := smallCatalog(t, cfg, 40)
	var reqs []Request
	// A heavily loaded stream: everything arrives at once.
	for j := 0; j < 40; j++ {
		reqs = append(reqs, Request{ObjectID: fmt.Sprintf("t101/o%d", (j*23)%40)})
	}
	points, err := Sweep(cfg, cat, reqs, []int{1, 8, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Metrics.Served != 40 {
			t.Fatalf("limit %d served %d of 40", p.BatchLimit, p.Metrics.Served)
		}
	}
	// Under saturation, throughput must grow with the batch limit:
	// that is the scheduling gain the system exists for.
	if !(points[0].Metrics.IOsPerHour() < points[1].Metrics.IOsPerHour() &&
		points[1].Metrics.IOsPerHour() <= points[2].Metrics.IOsPerHour()+1) {
		t.Fatalf("throughput not improving with batch limit: %.1f, %.1f, %.1f",
			points[0].Metrics.IOsPerHour(), points[1].Metrics.IOsPerHour(), points[2].Metrics.IOsPerHour())
	}
	// And so must media wear improve (fewer passes).
	if points[0].Metrics.HeadPasses <= points[2].Metrics.HeadPasses {
		t.Fatalf("wear not improving with batching: %.1f vs %.1f",
			points[0].Metrics.HeadPasses, points[2].Metrics.HeadPasses)
	}
}

func TestSweepValidates(t *testing.T) {
	cfg := smallCfg(1)
	cat := smallCatalog(t, cfg, 4)
	if _, err := Sweep(cfg, cat, nil, nil); err == nil {
		t.Fatal("empty limits accepted")
	}
	if _, err := Sweep(cfg, NewCatalog(), nil, []int{1}); err == nil {
		t.Fatal("empty catalog accepted")
	}
}
