package tertiary

import (
	"errors"
	"fmt"
)

// Placement maps objects to additional replica extents on distinct
// cartridges. The catalog entry stays the primary (replica 0); the
// placement lists replicas 1..n in failover order. When a cartridge is
// lost by the robot or a read hits a permanent media defect, the run
// degrades the request to a remote-replica read — an extra mount on a
// surviving cartridge — instead of failing it. k-of-n placement is
// expressed directly: register n-1 extra replicas and any k surviving
// cartridges can serve the object.
//
// A Placement is immutable once the library is built and is shared
// read-only across runs, like the catalog.
type Placement struct {
	extra map[string][]Object
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{extra: make(map[string][]Object)}
}

// Put appends replica extents for the object, in failover order. The
// replicas are validated against the catalog and the library's tapes
// when the library is built: every replica must live on a tape
// distinct from the primary's and from the object's other replicas.
func (p *Placement) Put(id string, replicas ...Object) error {
	if id == "" {
		return errors.New("tertiary: placement for empty object ID")
	}
	if len(replicas) == 0 {
		return fmt.Errorf("tertiary: placement for %s without replicas", id)
	}
	for i := range replicas {
		if replicas[i].ID == "" {
			replicas[i].ID = id
		}
	}
	p.extra[id] = append(p.extra[id], replicas...)
	return nil
}

// Get returns the object's extra replicas in failover order, nil when
// it has none. The returned slice is the placement's own storage; do
// not mutate it.
func (p *Placement) Get(id string) []Object {
	if p == nil {
		return nil
	}
	return p.extra[id]
}

// Len returns the number of objects with extra replicas.
func (p *Placement) Len() int {
	if p == nil {
		return 0
	}
	return len(p.extra)
}

// validate checks every replica against the library's tapes and the
// catalog: known object, known tape, in-range extent, and cartridge
// diversity (the whole point of a replica is surviving the loss of a
// cartridge, so two copies on one tape are a configuration error).
func (p *Placement) validate(l *Library) error {
	if p == nil {
		return nil
	}
	for id, reps := range p.extra {
		primary, ok := l.catalog.Get(id)
		if !ok {
			return fmt.Errorf("tertiary: placement for uncataloged object %s", id)
		}
		seen := map[int64]bool{primary.Tape: true}
		for i, r := range reps {
			tape, ok := l.tapes[r.Tape]
			if !ok {
				return fmt.Errorf("tertiary: replica %d of %s on unknown tape %d", i+1, id, r.Tape)
			}
			if r.Start < 0 || r.Start+r.segments() > tape.Segments() {
				return fmt.Errorf("tertiary: replica %d of %s extent [%d,%d) outside tape %d",
					i+1, id, r.Start, r.Start+r.segments(), r.Tape)
			}
			if r.segments() != primary.segments() {
				return fmt.Errorf("tertiary: replica %d of %s is %d segments, primary is %d",
					i+1, id, r.segments(), primary.segments())
			}
			if seen[r.Tape] {
				return fmt.Errorf("tertiary: replica %d of %s shares tape %d with another copy", i+1, id, r.Tape)
			}
			seen[r.Tape] = true
		}
	}
	return nil
}
