package tertiary

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/obs"
)

// checkLifecycleInvariants asserts the conservation laws every
// lifecycle-fault run must obey: the offered stream partitions into
// served/failed/rejected/shed, the robot ledger balances (a failed
// fetch of a lost cartridge is an arm move with no mount), and every
// completion's attribution — now including rescue time — telescopes
// back to its sojourn.
func checkLifecycleInvariants(t *testing.T, offered int, done []Completion, m Metrics) {
	t.Helper()
	if got := m.Served + m.Failed + m.Rejected + m.Shed; got != offered {
		t.Fatalf("conservation broken: served %d + failed %d + rejected %d + shed %d = %d != %d offered",
			m.Served, m.Failed, m.Rejected, m.Shed, got, offered)
	}
	if len(done) != m.Served {
		t.Fatalf("%d completions for %d served", len(done), m.Served)
	}
	if m.RobotMoves != m.Mounts+m.Unmounts+m.LostCartridges {
		t.Fatalf("robot ledger broken: moves %d != mounts %d + unmounts %d + lost %d",
			m.RobotMoves, m.Mounts, m.Unmounts, m.LostCartridges)
	}
	for _, c := range done {
		if e := c.AttributionError(); e > 1e-9 {
			t.Fatalf("%s@%.3f attribution off by %g s (sojourn %.6f, sum %.6f, rescue %.6f)",
				c.ObjectID, c.Arrival, e, c.Latency(), c.Attribution.Sum(), c.Attribution.RescueSec)
		}
		if c.Attribution.RescueSec < 0 || c.Attribution.QueueSec < -1e-9 {
			t.Fatalf("%s@%.3f negative attribution: queue %g rescue %g",
				c.ObjectID, c.Arrival, c.Attribution.QueueSec, c.Attribution.RescueSec)
		}
	}
}

// lifecycleStream builds a steady request stream over the small
// two-tape catalog.
func lifecycleStream(n int, gapSec float64) []Request {
	reqs := make([]Request, n)
	serials := []int64{101, 102}
	for i := range reqs {
		reqs[i] = Request{
			ObjectID: fmt.Sprintf("t%d/o%d", serials[i%2], i%4),
			Arrival:  float64(i) * gapSec,
		}
	}
	return reqs
}

// TestDriveRescue kills drives mid-batch with a short MTTF and checks
// that every stranded request is rescued and eventually served: with
// no cartridge loss and no media faults, nothing may fail.
func TestDriveRescue(t *testing.T) {
	cfg := smallCfg(2)
	cfg.Lifecycle = fault.LifecycleConfig{
		DriveMTTFSec: 1200,
		DriveMTTRSec: 300,
		Seed:         7,
	}
	cat := smallCatalog(t, cfg, 4)
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	reqs := lifecycleStream(120, 45)
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycleInvariants(t, len(reqs), done, m)
	if m.Failed != 0 {
		t.Fatalf("drive outages alone failed %d requests", m.Failed)
	}
	if m.DriveFailures == 0 {
		t.Fatal("short MTTF produced no drive failures — lifecycle not armed?")
	}
	if m.Rescued == 0 {
		t.Fatal("drive deaths rescued no requests — truncation path never ran")
	}
	rescued := 0
	for _, c := range done {
		if c.Attribution.RescueSec > 0 {
			rescued++
		}
	}
	if rescued == 0 {
		t.Fatal("no completion carries rescue time")
	}
}

// TestLifecycleRunDeterminism pins the rescue machinery to be a pure
// function of its configuration: two identical runs produce deeply
// equal completions and metrics.
func TestLifecycleRunDeterminism(t *testing.T) {
	run := func() ([]Completion, Metrics) {
		cfg := smallCfg(2)
		cfg.Lifecycle = fault.LifecycleConfig{
			DriveMTTFSec:      900,
			DriveMTTRSec:      240,
			RobotStallRate:    0.2,
			CartridgeLossRate: 0.1,
			BadSpotRate:       0.5,
			Seed:              11,
		}
		pl := NewPlacement()
		cat := NewCatalog()
		serials := cfg.Tapes
		for ti, serial := range serials {
			tape := geometry.MustGenerate(cfg.Profile, serial)
			stride := tape.Segments() / 4
			for i := 0; i < 4; i++ {
				id := fmt.Sprintf("t%d/o%d", serial, i)
				if err := cat.Put(Object{ID: id, Tape: serial, Start: i * stride}); err != nil {
					t.Fatal(err)
				}
				other := serials[(ti+1)%len(serials)]
				if err := pl.Put(id, Object{Tape: other, Start: i*stride + stride/2}); err != nil {
					t.Fatal(err)
				}
			}
		}
		cfg.Placement = pl
		lib, err := New(cfg, cat)
		if err != nil {
			t.Fatal(err)
		}
		done, m, err := lib.Run(lifecycleStream(100, 60))
		if err != nil {
			t.Fatal(err)
		}
		return done, m
	}
	d1, m1 := run()
	d2, m2 := run()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("metrics differ between identical runs:\n%+v\n%+v", m1, m2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("completions differ between identical runs")
	}
	checkLifecycleInvariants(t, 100, d1, m1)
}

// TestReplicaFailover loses cartridges aggressively and checks the
// k-of-n degradation: with a replica on the other tape, requests whose
// primary cartridge is gone complete as remote-replica reads; without
// one, the same configuration reports lost-cartridge failures.
func TestReplicaFailover(t *testing.T) {
	// Seed 74 at rate 0.05 is a probed asymmetric outcome: tape 101 is
	// discovered destroyed at its very first mount attempt while tape
	// 102 survives at least 30 mounts — so a replica on 102 rescues
	// what R=1 must fail.
	build := func(withReplicas bool) (*Library, int) {
		cfg := smallCfg(2)
		cfg.Lifecycle = fault.LifecycleConfig{
			CartridgeLossRate: 0.05,
			Seed:              74,
		}
		cat := NewCatalog()
		pl := NewPlacement()
		serials := cfg.Tapes
		for ti, serial := range serials {
			tape := geometry.MustGenerate(cfg.Profile, serial)
			stride := tape.Segments() / 4
			for i := 0; i < 4; i++ {
				id := fmt.Sprintf("t%d/o%d", serial, i)
				if err := cat.Put(Object{ID: id, Tape: serial, Start: i * stride}); err != nil {
					t.Fatal(err)
				}
				other := serials[(ti+1)%len(serials)]
				if err := pl.Put(id, Object{Tape: other, Start: i*stride + stride/2}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if withReplicas {
			cfg.Placement = pl
		}
		lib, err := New(cfg, cat)
		if err != nil {
			t.Fatal(err)
		}
		return lib, 4
	}

	reqs := lifecycleStream(60, 30)

	noRep, _ := build(false)
	_, m0, err := noRep.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m0.LostCartridges == 0 || m0.Failed == 0 {
		t.Fatalf("R=1 lost %d cartridges, failed %d requests — loss path never ran",
			m0.LostCartridges, m0.Failed)
	}

	rep, _ := build(true)
	done, m1, err := rep.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycleInvariants(t, len(reqs), done, m1)
	if m1.Failed >= m0.Failed {
		t.Fatalf("replicas did not reduce failures: %d with vs %d without", m1.Failed, m0.Failed)
	}
	if m1.ReplicaReads == 0 && m1.LostCartridges > 0 {
		t.Fatal("cartridges lost but no replica reads recorded")
	}
	for _, c := range done {
		if c.Object.Tape != 0 && c.Object.ID == "" {
			t.Fatalf("completion for %s carries an unnamed replica object", c.ObjectID)
		}
	}
}

// TestBadSpotReplicaRedirect places one object deliberately inside
// tape 101's permanently unreadable region (computed from the same
// lifecycle hashes the run will use) with its replica in a clean part
// of tape 102, and checks the read degrades to a replica read rather
// than failing — while R=1 fails it.
func TestBadSpotReplicaRedirect(t *testing.T) {
	lcCfg := fault.LifecycleConfig{
		BadSpotRate:     1,
		BadSpotSegments: 64,
		Seed:            5,
	}
	probe := fault.NewLifecycle(lcCfg)

	build := func(withReplicas bool) *Library {
		cfg := smallCfg(2)
		cfg.Lifecycle = lcCfg
		segs101 := geometry.MustGenerate(cfg.Profile, 101).Segments()
		segs102 := geometry.MustGenerate(cfg.Profile, 102).Segments()
		b101, n101, ok := probe.BadSpot(101, segs101)
		if !ok {
			t.Fatal("BadSpotRate 1 produced no region on tape 101")
		}
		b102, n102, ok := probe.BadSpot(102, segs102)
		if !ok {
			t.Fatal("BadSpotRate 1 produced no region on tape 102")
		}
		// cleanOn returns an extent of len segments on the tape that
		// avoids [bad, bad+badLen).
		cleanOn := func(segs, bad, badLen, length int) int {
			if bad >= length {
				return 0
			}
			start := bad + badLen
			if start+length > segs {
				t.Fatalf("no clean extent of %d segments on a %d-segment tape", length, segs)
			}
			return start
		}
		cat := NewCatalog()
		pl := NewPlacement()
		// The victim sits squarely in 101's bad region; its replica is
		// clean on 102.
		if err := cat.Put(Object{ID: "victim", Tape: 101, Start: b101, Segments: n101}); err != nil {
			t.Fatal(err)
		}
		if err := pl.Put("victim", Object{Tape: 102, Start: cleanOn(segs102, b102, n102, n101), Segments: n101}); err != nil {
			t.Fatal(err)
		}
		// A control object readable on 101 keeps the run healthy.
		if err := cat.Put(Object{ID: "control", Tape: 101, Start: cleanOn(segs101, b101, n101, 1)}); err != nil {
			t.Fatal(err)
		}
		if withReplicas {
			cfg.Placement = pl
		}
		lib, err := New(cfg, cat)
		if err != nil {
			t.Fatal(err)
		}
		return lib
	}
	reqs := []Request{
		{ObjectID: "control", Arrival: 0},
		{ObjectID: "victim", Arrival: 10},
	}

	_, m0, err := build(false).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Failed != 1 {
		t.Fatalf("R=1 read inside the bad region failed %d requests, want 1", m0.Failed)
	}
	done, m1, err := build(true).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycleInvariants(t, len(reqs), done, m1)
	if m1.Failed != 0 {
		t.Fatalf("R=2 still failed %d requests", m1.Failed)
	}
	if m1.ReplicaReads != 1 {
		t.Fatalf("want exactly 1 replica read, got %d", m1.ReplicaReads)
	}
	var victim *Completion
	for i := range done {
		if done[i].ObjectID == "victim" {
			victim = &done[i]
		}
	}
	if victim == nil {
		t.Fatal("victim never completed")
	}
	if victim.Object.Tape != 102 {
		t.Fatalf("victim served from tape %d, want replica tape 102", victim.Object.Tape)
	}
	if victim.Attribution.RescueSec <= 0 {
		t.Fatal("replica read carries no rescue time for the aborted primary attempt")
	}
}

// TestBrownoutShedding checks the admission breaker: while the only
// drive is down, best-effort arrivals are shed and re-admitted after
// the repair.
func TestBrownoutShedding(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Lifecycle = fault.LifecycleConfig{
		DriveMTTFSec: 400,
		DriveMTTRSec: 2000,
		Seed:         1,
	}
	cat := smallCatalog(t, cfg, 4)
	lib, err := New(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	reqs := lifecycleStream(200, 30)
	for i := range reqs {
		reqs[i].BestEffort = true
	}
	done, m, err := lib.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycleInvariants(t, len(reqs), done, m)
	if m.Shed == 0 {
		t.Fatal("single drive with long outages shed no best-effort work")
	}
	if m.Served == 0 {
		t.Fatal("breaker never re-admitted after repair")
	}
}

// TestDeadlineShedding gives every request a budget too small for a
// mount and checks requests queued past it are shed, not dispatched,
// while a generous budget sheds nothing.
func TestDeadlineShedding(t *testing.T) {
	run := func(budget float64) Metrics {
		cfg := smallCfg(1)
		cfg.DeadlineSec = budget
		cat := smallCatalog(t, cfg, 4)
		lib, err := New(cfg, cat)
		if err != nil {
			t.Fatal(err)
		}
		reqs := lifecycleStream(40, 5) // far faster than one drive can serve
		_, m, err := lib.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Served + m.Failed + m.Rejected + m.Shed; got != len(reqs) {
			t.Fatalf("conservation broken at budget %g: %d != %d", budget, got, len(reqs))
		}
		return m
	}
	tight := run(60)
	if tight.Shed == 0 {
		t.Fatal("60-second budget shed nothing under a saturated drive")
	}
	loose := run(1e9)
	if loose.Shed != 0 {
		t.Fatalf("effectively infinite budget shed %d requests", loose.Shed)
	}
}

// TestZeroRateLifecycleEquivalence pins the bit-identity promise: a
// sweep with an all-zero Lifecycle config produces deeply equal cells,
// spans and metrics dumps to one without the field at any worker
// count.
func TestZeroRateLifecycleEquivalence(t *testing.T) {
	sweep := func(withZeroLifecycle bool, workers int) ([]Cell, string) {
		cfg := SweepConfig{
			Profile:        geometry.Tiny(),
			TapeCount:      2,
			Objects:        8,
			ObjectSegments: 4,
			RatesPerHour:   []float64{120},
			DriveCounts:    []int{1, 2},
			BatchLimits:    []int{4},
			Requests:       60,
			Seed:           42,
			Workers:        workers,
			SpanCap:        4096,
			Reg:            obs.NewRegistry(),
		}
		if withZeroLifecycle {
			cfg.Lifecycle = fault.LifecycleConfig{} // all rates zero
		}
		cells, err := Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var dump bytes.Buffer
		if err := cfg.Reg.WriteProm(&dump); err != nil {
			t.Fatal(err)
		}
		return cells, dump.String()
	}

	base, baseDump := sweep(false, 1)
	zero, zeroDump := sweep(true, 1)
	if !reflect.DeepEqual(base, zero) {
		t.Fatal("zero-rate lifecycle changed sweep cells (metrics, spans or completions)")
	}
	if baseDump != zeroDump {
		t.Fatal("zero-rate lifecycle changed the metrics dump")
	}
	_, dump8 := sweep(true, 8)
	if zeroDump != dump8 {
		t.Fatal("metrics dump differs between 1 and 8 workers")
	}
}

// TestPlacementValidate covers the build-time replica checks: every
// way a placement can be misconfigured must be rejected by New.
func TestPlacementValidate(t *testing.T) {
	mk := func(reps ...Object) error {
		cfg := smallCfg(1)
		cat := smallCatalog(t, cfg, 2)
		pl := NewPlacement()
		if len(reps) > 0 {
			if err := pl.Put("t101/o0", reps...); err != nil {
				return err
			}
		} else {
			if err := pl.Put("nosuch", Object{Tape: 102}); err != nil {
				return err
			}
		}
		cfg.Placement = pl
		_, err := New(cfg, cat)
		return err
	}
	cases := []struct {
		name string
		reps []Object
	}{
		{"uncataloged object", nil},
		{"unknown tape", []Object{{Tape: 999}}},
		{"negative start", []Object{{Tape: 102, Start: -1}}},
		{"extent past tape end", []Object{{Tape: 102, Start: 1 << 30}}},
		{"segment-count mismatch", []Object{{Tape: 102, Segments: 7}}},
		{"replica on primary's tape", []Object{{Tape: 101, Start: 500}}},
		{"two replicas share a tape", []Object{{Tape: 102}, {Tape: 102, Start: 600}}},
	}
	for _, tc := range cases {
		if err := mk(tc.reps...); err == nil {
			t.Errorf("%s: New accepted an invalid placement", tc.name)
		}
	}
	if err := NewPlacement().Put("", Object{Tape: 102}); err == nil {
		t.Error("Put accepted an empty object ID")
	}
	if err := NewPlacement().Put("x"); err == nil {
		t.Error("Put accepted zero replicas")
	}
}
