package tertiary

import (
	"math"
	"testing"
)

// FuzzEventHeap drives the hand-rolled dispatch heap with an
// arbitrary push/popMin/popLE program and checks its two invariants:
// ordering (pops come out in strict (at, drive) order, and popLE
// never returns an event after its cutoff) and conservation (every
// pushed event is popped exactly once or still in the heap at the
// end).
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{10, 3, 200, 7, 1, 0, 42, 5, 2})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2, 255})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var h eventHeap
		pushed := make(map[driveEvent]int)

		last := driveEvent{at: math.Inf(-1)}
		check := func(ev driveEvent, viaLE bool, cutoff float64) {
			if viaLE && ev.at > cutoff {
				t.Fatalf("popLE(%g) returned event at %g", cutoff, ev.at)
			}
			// Drained runs must come out non-decreasing; duplicates
			// are legal and compare equal.
			if eventLess(ev, last) {
				t.Fatalf("pop order violated: %+v after %+v", ev, last)
			}
			if pushed[ev] == 0 {
				t.Fatalf("popped %+v more often than pushed", ev)
			}
			pushed[ev]--
			last = ev
		}
		for i := 0; i < len(ops); i++ {
			op := ops[i]
			switch {
			case op < 180 && i+2 < len(ops):
				ev := driveEvent{at: float64(ops[i+1]), drive: int(ops[i+2] % 16)}
				h.push(ev)
				pushed[ev]++
				// A push can legally precede earlier pops; reset the
				// order watermark, which only constrains drain runs.
				last = driveEvent{at: math.Inf(-1)}
				i += 2
			case op < 220:
				if h.len() > 0 {
					check(h.popMin(), false, 0)
				}
			default:
				cutoff := float64(op - 220)
				for {
					ev, ok := h.popLE(cutoff)
					if !ok {
						break
					}
					check(ev, true, cutoff)
				}
			}
		}
		for h.len() > 0 {
			check(h.popMin(), false, 0)
		}
		for ev, n := range pushed {
			if n != 0 {
				t.Fatalf("event %+v pushed but never popped (count %d)", ev, n)
			}
		}
	})
}
