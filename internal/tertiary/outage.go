package tertiary

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
)

// OutageConfig describes the availability experiment: one synthetic
// store served under component-lifecycle faults across a grid of
// (drive MTTF, drive MTTR, replication factor) cells. Every cell at
// the same (MTTF, MTTR) coordinate shares one workload and one
// component-failure history — the replica axis changes only how much
// redundancy the store brings to the same disaster, which is the
// comparison the sweep exists to make.
type OutageConfig struct {
	// Profile is the drive/cartridge format; zero value selects the
	// DLT4000.
	Profile geometry.Params
	// TapeCount and Objects shape the store; 0 select 4 cartridges of
	// 64 objects. ObjectSegments is the extent length per object; 0
	// selects 32.
	TapeCount      int
	Objects        int
	ObjectSegments int
	// MTTFsSec are the drive mean-time-to-failure values to sweep; 0
	// in the list means drives never fail. Nil selects {0, 14400,
	// 3600}.
	MTTFsSec []float64
	// MTTRsSec are the drive mean repair durations; nil selects
	// {600, 1800}. Ignored by cells whose MTTF is 0.
	MTTRsSec []float64
	// Replicas are the replication factors to sweep; nil selects
	// {1, 2}. Factor R places R-1 extra copies of every object on the
	// R-1 cartridges following its primary's, so R must not exceed
	// TapeCount, and the catalog stride must fit R copies.
	Replicas []int
	// CartridgeLossRate, BadSpotRate and RobotStallRate arm the
	// non-drive lifecycle classes in every cell.
	CartridgeLossRate float64
	BadSpotRate       float64
	RobotStallRate    float64
	// RatePerHour, Drives, BatchLimit and Requests fix the workload:
	// 0 select 120/h, 2 drives, 16 per batch, 400 requests.
	RatePerHour float64
	Drives      int
	BatchLimit  int
	Requests    int
	// DeadlineSec, when positive, gives every request that latency
	// budget; requests queued past it are shed.
	DeadlineSec float64
	// Seed seeds each cell's arrival stream and failure processes,
	// derived per (MTTF, MTTR) coordinate — not per replica — so the
	// replica axis is a controlled comparison and the output is
	// identical at any worker count.
	Seed int64
	// Workers bounds concurrent cells; 0 selects GOMAXPROCS.
	Workers int
}

// OutageCell is one (MTTF, MTTR, replicas) outcome.
type OutageCell struct {
	MTTFSec  float64
	MTTRSec  float64
	Replicas int
	Metrics  Metrics
	// Offered is the cell's request count; Availability is the
	// fraction of it served.
	Offered      int
	Availability float64
	// P50Sec and P99Sec are sojourn percentiles over the served
	// requests (nearest-rank), 0 when nothing was served.
	P50Sec float64
	P99Sec float64
}

// OutageSweep runs every cell of the availability experiment. Cells
// run concurrently up to cfg.Workers sharing the read-only store, but
// each is fully deterministic, so the sweep's output is identical at
// any worker count.
func OutageSweep(cfg OutageConfig) ([]OutageCell, error) {
	tapeCount := cfg.TapeCount
	if tapeCount <= 0 {
		tapeCount = 4
	}
	objects := cfg.Objects
	if objects <= 0 {
		objects = 64
	}
	objSegs := cfg.ObjectSegments
	if objSegs <= 0 {
		objSegs = 32
	}
	mttfs := cfg.MTTFsSec
	if mttfs == nil {
		mttfs = []float64{0, 14400, 3600}
	}
	mttrs := cfg.MTTRsSec
	if mttrs == nil {
		mttrs = []float64{600, 1800}
	}
	replicas := cfg.Replicas
	if replicas == nil {
		replicas = []int{1, 2}
	}
	rate := cfg.RatePerHour
	if rate <= 0 {
		rate = 120
	}
	drives := cfg.Drives
	if drives <= 0 {
		drives = 2
	}
	limit := cfg.BatchLimit
	if limit == 0 {
		limit = 16
	}
	n := cfg.Requests
	if n <= 0 {
		n = 400
	}
	maxR := 0
	for _, r := range replicas {
		if r < 1 {
			return nil, fmt.Errorf("tertiary: outage replication factor %d < 1", r)
		}
		if r > tapeCount {
			return nil, fmt.Errorf("tertiary: replication factor %d exceeds %d cartridges", r, tapeCount)
		}
		if r > maxR {
			maxR = r
		}
	}

	// Build the store once. Replica r of object (t, o) lives on tape
	// (t+r) mod T at the same stride slot, offset r extents in — so
	// every copy of an object occupies a distinct cartridge and no two
	// objects' copies collide.
	profile := cfg.Profile
	if profile.Tracks == 0 {
		profile = geometry.DLT4000()
	}
	catalog := NewCatalog()
	serials := make([]int64, tapeCount)
	for t := 0; t < tapeCount; t++ {
		serial := int64(3000 + t)
		serials[t] = serial
		tape, err := geometry.Generate(profile, serial)
		if err != nil {
			return nil, fmt.Errorf("tertiary: outage tape %d: %w", serial, err)
		}
		stride := tape.Segments() / objects
		if stride < maxR*objSegs {
			return nil, fmt.Errorf("tertiary: outage: %d objects × %d copies of %d segments overflow tape %d",
				objects, maxR, objSegs, serial)
		}
		for o := 0; o < objects; o++ {
			if err := catalog.Put(Object{
				ID:       sweepObjectID(t, o),
				Tape:     serial,
				Start:    o * stride,
				Segments: objSegs,
			}); err != nil {
				return nil, err
			}
		}
	}
	base, err := New(Config{Profile: profile, Tapes: serials}, catalog)
	if err != nil {
		return nil, fmt.Errorf("tertiary: outage store: %w", err)
	}
	// One placement per distinct replication factor, validated against
	// the shared store.
	placements := make(map[int]*Placement)
	for _, r := range replicas {
		if r == 1 || placements[r] != nil {
			continue
		}
		pl := NewPlacement()
		for t := 0; t < tapeCount; t++ {
			stride := base.tapes[serials[t]].Segments() / objects
			for o := 0; o < objects; o++ {
				reps := make([]Object, r-1)
				for k := 1; k < r; k++ {
					reps[k-1] = Object{
						Tape:     serials[(t+k)%tapeCount],
						Start:    o*stride + k*objSegs,
						Segments: objSegs,
					}
				}
				if err := pl.Put(sweepObjectID(t, o), reps...); err != nil {
					return nil, err
				}
			}
		}
		if err := pl.validate(base); err != nil {
			return nil, fmt.Errorf("tertiary: outage placement R=%d: %w", r, err)
		}
		placements[r] = pl
	}

	type cellSpec struct {
		mttfIdx, mttrIdx, repIdx int
	}
	var specs []cellSpec
	for mi := range mttfs {
		for ri := range mttrs {
			for pi := range replicas {
				specs = append(specs, cellSpec{mi, ri, pi})
			}
		}
	}
	cells := make([]OutageCell, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				mttf := mttfs[sp.mttfIdx]
				mttr := mttrs[sp.mttrIdx]
				r := replicas[sp.repIdx]
				// The seed deliberately excludes the replica index:
				// all R cells at one (MTTF, MTTR) coordinate replay
				// the same arrivals and the same component-failure
				// history.
				seed := cfg.Seed*1000003 + int64(sp.mttfIdx)*8191 + int64(sp.mttrIdx)*521 + 7
				stream, err := sweepStream(rate, n, seed, tapeCount, objects)
				if err != nil {
					reportErr(errs, fmt.Errorf("tertiary: outage arrivals: %w", err))
					return
				}
				lc := fault.LifecycleConfig{
					DriveMTTFSec:      mttf,
					RobotStallRate:    cfg.RobotStallRate,
					CartridgeLossRate: cfg.CartridgeLossRate,
					BadSpotRate:       cfg.BadSpotRate,
					Seed:              seed + 5,
				}
				if mttf > 0 {
					lc.DriveMTTRSec = mttr
				}
				lib := base.Clone(Config{
					Profile:     profile,
					Tapes:       serials,
					Drives:      drives,
					BatchLimit:  limit,
					Lifecycle:   lc,
					Placement:   placements[r],
					DeadlineSec: cfg.DeadlineSec,
				})
				comps, m, err := lib.Run(stream)
				if err != nil {
					reportErr(errs, fmt.Errorf("tertiary: outage cell mttf=%g mttr=%g R=%d: %w", mttf, mttr, r, err))
					return
				}
				cell := OutageCell{
					MTTFSec: mttf, MTTRSec: mttr, Replicas: r,
					Metrics: m, Offered: len(stream),
					Availability: float64(m.Served) / float64(len(stream)),
				}
				cell.P50Sec, cell.P99Sec = sojournPercentiles(comps)
				cells[i] = cell
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return cells, nil
}

// sojournPercentiles returns the nearest-rank p50 and p99 of the
// completions' latencies.
func sojournPercentiles(comps []Completion) (p50, p99 float64) {
	if len(comps) == 0 {
		return 0, 0
	}
	lats := make([]float64, len(comps))
	for i, c := range comps {
		lats[i] = c.Latency()
	}
	sort.Float64s(lats)
	rank := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(lats)))) - 1
		if idx < 0 {
			idx = 0
		}
		return lats[idx]
	}
	return rank(0.50), rank(0.99)
}

// WriteAvailability renders the availability sweep: one block per
// drive MTTF, one row per (MTTR, replicas), with the served fraction,
// the failure-handling counters, and sojourn percentiles. Fixed
// formatting keeps the table byte-deterministic.
func WriteAvailability(w io.Writer, cells []OutageCell) error {
	var mttfs []float64
	seen := make(map[float64]bool)
	for _, c := range cells {
		if !seen[c.MTTFSec] {
			seen[c.MTTFSec] = true
			mttfs = append(mttfs, c.MTTFSec)
		}
	}
	for _, mttf := range mttfs {
		label := "none (drives never fail)"
		if mttf > 0 {
			label = fmt.Sprintf("%g s", mttf)
		}
		if _, err := fmt.Fprintf(w, "# drive MTTF %s\n%8s %3s %8s %7s %7s %8s %8s %6s %9s %9s %10s %10s\n",
			label, "mttr", "R", "avail", "served", "failed", "rescued", "replica", "shed", "lost-cart", "drive-dn", "p50 (s)", "p99 (s)"); err != nil {
			return err
		}
		for _, c := range cells {
			if c.MTTFSec != mttf {
				continue
			}
			m := c.Metrics
			if _, err := fmt.Fprintf(w, "%8.0f %3d %8.4f %7d %7d %8d %8d %6d %9d %9d %10.1f %10.1f\n",
				c.MTTRSec, c.Replicas, c.Availability, m.Served, m.Failed,
				m.Rescued, m.ReplicaReads, m.Shed, m.LostCartridges, m.DriveFailures,
				c.P50Sec, c.P99Sec); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
