package tertiary

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/obs"
	"serpentine/internal/server"
	"serpentine/internal/sim"
)

// driveState tracks one transport through the simulation. Emptiness
// is an explicit flag, not a sentinel serial: cartridge serial 0 is
// as legal as any other. The states live in one flat slice on the
// runState so the dispatch loop walks contiguous memory.
type driveState struct {
	id     int
	dev    *drive.Drive
	serial int64
	loaded bool
	idle   bool
	busy   float64
	passes float64
	mounts int // exchanges into this drive, for fault-seed derivation

	// base maps the mounted device's clock (restarting at zero on
	// every exchange) onto the run's absolute virtual time: a drive
	// op at device time t happened at base + t. curBatch is the span
	// of the batch the drive is executing; leaf spans nest there.
	base     float64
	curBatch *obs.SpanHandle

	// dl is the drive's metric label; opsC caches the per-op counters
	// so the trace hook's fast path renders no metric keys. traceFn is
	// the hook itself, built once and re-attached on every exchange.
	dl      obs.Label
	opsC    [drive.NumOps]*obs.Counter
	traceFn drive.TraceFunc
}

// runState is one Run's event loop.
type runState struct {
	l         *Library
	cfg       Config
	arrivals  []pending // in arrival order; index is the request ID
	next      int       // next un-admitted arrival
	queueCap  int
	adm       *server.AdmissionQueue
	q         *batchQueue
	drives    []driveState
	loadedBy  map[int64]int // cartridge serial -> drive holding it
	events    eventHeap
	robotFree float64 // virtual time the robot arm finishes its last exchange
	reg       *obs.Registry
	tr        *obs.Trace
	trace     *obs.TraceHandle
	root      *obs.SpanHandle
	done      []Completion
	m         Metrics

	// ex is the run's one recovering executor, re-pointed at the
	// mounted drive per size class; prob is the reusable scheduling
	// problem handed to it.
	ex   sim.Executor
	prob core.Problem

	// Cached metric handles. Registry lookups render and hash the full
	// label set per call; the hot path resolves each series once and
	// holds the handle. Resolution stays lazy so the set of series a
	// run creates — and therefore every committed metrics dump — is
	// unchanged.
	cRejected *obs.Counter
	cUnmounts *obs.Counter
	cBatches  *obs.Counter
	cServed   *obs.Counter
	cFailed   *obs.Counter
	cMounts   map[int64]*obs.Counter
	hLatency  map[int64]*obs.Histogram
	hRobotW   *obs.Histogram
	hBatchSz  *obs.Histogram
	hBatchSec *obs.Histogram
	hOpSec    [drive.NumOps]*obs.Histogram

	// Per-batch scratch, reused across batches: the distinct extent
	// starts of one size class (uniq becomes the scheduling problem's
	// request list) and the start -> requests multimap (slotOf indexes
	// into slots, whose per-slot slices keep their backing arrays).
	// Both maps drain back to empty by the end of each batch.
	uniq   []int
	slotOf map[int]int32
	slots  [][]pending
	admBuf []server.Request
}

func (s *runState) counter(name string, extra ...obs.Label) *obs.Counter {
	return s.reg.Counter(name, append(extra, s.cfg.Labels...)...)
}

func (s *runState) histogram(name string, extra ...obs.Label) *obs.Histogram {
	return s.reg.Histogram(name, append(extra, s.cfg.Labels...)...)
}

func (s *runState) gauge(name string, extra ...obs.Label) *obs.Gauge {
	return s.reg.Gauge(name, append(extra, s.cfg.Labels...)...)
}

func (s *runState) mountsCounter(serial int64) *obs.Counter {
	c := s.cMounts[serial]
	if c == nil {
		c = s.counter("mounts_total", obs.L("tape", strconv.FormatInt(serial, 10)))
		s.cMounts[serial] = c
	}
	return c
}

func (s *runState) latencyHist(serial int64) *obs.Histogram {
	h := s.hLatency[serial]
	if h == nil {
		h = s.histogram("latency_seconds", obs.L("tape", strconv.FormatInt(serial, 10)))
		s.hLatency[serial] = h
	}
	return h
}

// Run serves every request and returns the completions (in completion
// order) and run metrics. Requests may arrive at any time; the
// simulation admits them through a bounded queue, groups the backlog
// by cartridge, and dispatches idle drives per the batching policy,
// preferring the cartridge with the oldest waiting request among
// those with the most work, which bounds starvation while keeping
// batches dense. A cartridge mounted in one drive is never picked by
// another.
func (l *Library) Run(requests []Request) ([]Completion, Metrics, error) {
	s, err := l.newRun(requests)
	if err != nil {
		return nil, Metrics{}, err
	}

	// Central dispatch over the shared event heap: admit arrivals up
	// to now, hand work to every idle drive, then advance the clock
	// to the next drive completion, arrival, or window boundary.
	now, boundary := 0.0, true
	s.admit(now)
	for {
		if err := s.dispatch(now, boundary); err != nil {
			return nil, Metrics{}, err
		}
		t, atBoundary, ok := s.nextTime(now)
		if !ok {
			break
		}
		now, boundary = t, atBoundary
		s.wake(now)
		s.admit(now)
	}
	if stranded := s.q.len() + s.adm.Len(); stranded > 0 || s.next < len(s.arrivals) {
		return nil, Metrics{}, fmt.Errorf("tertiary: internal: %d requests stranded at end of run",
			stranded+len(s.arrivals)-s.next)
	}
	s.finish()
	return s.done, s.m, nil
}

// newRun resolves and validates the request stream and sets up the
// event-loop state.
func (l *Library) newRun(requests []Request) (*runState, error) {
	arrivals := make([]pending, 0, len(requests))
	for i, r := range requests {
		o, ok := l.catalog.Get(r.ObjectID)
		if !ok {
			return nil, fmt.Errorf("tertiary: request for unknown object %q", r.ObjectID)
		}
		if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
			return nil, fmt.Errorf("tertiary: request %d arrives at %g", i, r.Arrival)
		}
		arrivals = append(arrivals, pending{req: r, obj: o})
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].req.Arrival < arrivals[j].req.Arrival })

	queueCap := l.cfg.QueueCap
	admCap := queueCap
	if queueCap <= 0 {
		queueCap = math.MaxInt / 2
		admCap = math.MaxInt / 2
	}
	reg := l.cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &runState{
		l:        l,
		cfg:      l.cfg,
		arrivals: arrivals,
		queueCap: queueCap,
		adm:      server.NewAdmissionQueue(admCap),
		q:        newBatchQueue(),
		drives:   make([]driveState, l.cfg.Drives),
		loadedBy: make(map[int64]int, l.cfg.Drives),
		reg:      reg,
		done:     make([]Completion, 0, len(arrivals)),
		cMounts:  make(map[int64]*obs.Counter),
		hLatency: make(map[int64]*obs.Histogram),
	}
	s.events.ev = make([]driveEvent, 0, l.cfg.Drives)
	for i := range s.drives {
		d := &s.drives[i]
		d.id = i
		d.idle = true
		d.dl = obs.L("drive", strconv.Itoa(i))
		d.traceFn = s.driveTraceFn(d)
	}
	if l.cfg.TraceCap > 0 {
		s.tr = reg.AttachTrace(l.cfg.TraceCap)
	} else {
		s.tr = reg.Trace()
	}
	if l.cfg.Spans != nil {
		s.trace = l.cfg.Spans.StartTrace()
		s.root = s.trace.Start("run", nil, 0).
			Attr("scheduler", l.sched.Name()).Attr("policy", l.cfg.Policy.String()).
			AttrInt("drives", l.cfg.Drives)
	}
	return s, nil
}

// admit moves every arrival with Arrival <= until through the bounded
// admission queue into the per-cartridge backlog, shedding load once
// the pending backlog reaches QueueCap.
func (s *runState) admit(until float64) {
	for s.next < len(s.arrivals) && s.arrivals[s.next].req.Arrival <= until {
		p := s.arrivals[s.next]
		id := s.next
		s.next++
		if s.q.len()+s.adm.Len() >= s.queueCap ||
			!s.adm.Offer(server.Request{ID: id, Segment: p.obj.Start, ArrivalSec: p.req.Arrival}) {
			s.m.Rejected++
			if s.cRejected == nil {
				s.cRejected = s.counter("rejected_total")
			}
			s.cRejected.Inc()
		}
	}
	// Drain the admission queue into the robot's per-cartridge view.
	s.admBuf = s.adm.PopNAppend(s.admBuf[:0], 0)
	for _, r := range s.admBuf {
		s.q.push(s.arrivals[r.ID])
	}
	if d := s.q.len(); d > s.m.MaxQueueDepth {
		s.m.MaxQueueDepth = d
	}
}

// dispatch hands work to every idle drive, in drive-id order. Under
// ReplanOnArrival a drive with work pending for its own mounted
// cartridge keeps it (one request per dispatch, so every decision
// sees the freshest queue); under FixedWindow nothing dispatches off
// a window boundary. A cartridge is physically in one place, so a
// drive never picks a cartridge loaded elsewhere: the standing
// loadedBy index carries the exclusion, with no per-dispatch set
// building.
func (s *runState) dispatch(now float64, boundary bool) error {
	if s.cfg.Policy == server.FixedWindow && !boundary {
		return nil
	}
	if s.cfg.Policy == server.ReplanOnArrival {
		for i := range s.drives {
			d := &s.drives[i]
			if d.idle && d.loaded && s.q.perTape[d.serial] != nil {
				if err := s.serve(d, d.serial, now); err != nil {
					return err
				}
			}
		}
	}
	for i := range s.drives {
		d := &s.drives[i]
		if !d.idle {
			continue
		}
		serial, ok := s.q.pickFor(s.loadedBy, d.id)
		if !ok {
			continue
		}
		if err := s.serve(d, serial, now); err != nil {
			return err
		}
	}
	return nil
}

// nextTime returns the next virtual time anything can happen: a drive
// completing, an arrival landing, or (FixedWindow, with work queued
// and a drive to take it) the next window boundary. Every candidate
// is strictly after now, so the loop always progresses.
func (s *runState) nextTime(now float64) (t float64, boundary, ok bool) {
	t = math.Inf(1)
	if s.events.len() > 0 {
		t, ok = s.events.min().at, true
	}
	if s.next < len(s.arrivals) {
		if a := s.arrivals[s.next].req.Arrival; a < t {
			t = a
		}
		ok = true
	}
	if s.cfg.Policy == server.FixedWindow && s.q.len() > 0 && s.anyIdle() {
		b := s.cfg.WindowSec * math.Ceil(now/s.cfg.WindowSec)
		for b <= now {
			b += s.cfg.WindowSec
		}
		if b <= t {
			t, boundary = b, true
		}
		ok = true
	}
	return t, boundary, ok
}

func (s *runState) anyIdle() bool {
	for i := range s.drives {
		if s.drives[i].idle {
			return true
		}
	}
	return false
}

// wake pops every event at or before now, marking its drive idle.
func (s *runState) wake(now float64) {
	for {
		ev, ok := s.events.popLE(now)
		if !ok {
			return
		}
		s.drives[ev.drive].idle = true
	}
}

// deriveFaultSeed gives every (cartridge, drive, mount) its own
// injector stream, so fault sequences do not depend on dispatch
// interleaving across drives.
func deriveFaultSeed(base, serial int64, driveID, mount int) int64 {
	return base*1000003 + serial*8191 + int64(driveID)*131 + int64(mount)*17 + 3
}

// exchange swaps the chosen cartridge into the drive through the
// robot arm (one exchange at a time: a busy arm queues the swap) and
// returns the rewind time charged to the outgoing cartridge, the time
// spent queued for the arm, and the exchange handling time itself.
func (s *runState) exchange(d *driveState, serial int64, now float64) (rewind, wait, exDur float64) {
	if d.loaded {
		// The outgoing device's clock keeps running through the
		// rewind; re-anchor its span base so the rewind leaf span
		// lands at the current virtual time.
		d.base = now - d.dev.Clock()
		rewind = d.dev.Rewind()
		d.passes += d.dev.Stats().HeadPasses(s.cfg.Profile)
		exDur += s.cfg.UnmountSec
		s.m.Unmounts++
		s.m.RobotMoves++
		if s.cUnmounts == nil {
			s.cUnmounts = s.counter("unmounts_total")
		}
		s.cUnmounts.Inc()
		delete(s.loadedBy, d.serial)
	}
	exDur += s.cfg.MountSec
	s.m.Mounts++
	s.m.RobotMoves++
	s.mountsCounter(serial).Inc()

	wait = 0.0
	exStart := now + rewind
	if s.robotFree > exStart {
		wait = s.robotFree - exStart
		s.m.RobotWaitSec += wait
		if s.hRobotW == nil {
			s.hRobotW = s.histogram("robot_wait_seconds")
		}
		s.hRobotW.Observe(wait)
		if s.trace != nil {
			s.trace.Start("robot-wait", d.curBatch, exStart).End(exStart + wait)
		}
	}
	s.robotFree = exStart + wait + exDur
	s.m.RobotBusySec += exDur
	if s.trace != nil {
		s.trace.Start("exchange", d.curBatch, exStart+wait).
			Attr("tape", strconv.FormatInt(serial, 10)).End(exStart + wait + exDur)
	}

	dev := drive.New(s.l.tapes[serial])
	if s.cfg.Faults.Enabled() {
		f := s.cfg.Faults
		f.Seed = deriveFaultSeed(s.cfg.Faults.Seed, serial, d.id, d.mounts)
		dev.AttachFaults(fault.New(f))
	}
	dev.AttachTrace(d.traceFn)
	d.dev = dev
	d.serial = serial
	d.loaded = true
	d.mounts++
	s.loadedBy[serial] = d.id
	return rewind, wait, exDur
}

// driveTraceFn builds the drive's trace hook: every operation feeds
// the per-op counters and histograms, the bounded trace ring when one
// is attached, and a leaf span under the drive's executing batch.
// Tracing never perturbs drive timing. The hook is built once per
// drive and re-attached on every exchange; its metric handles are
// cached in flat arrays, so with spans and the ring disabled the per
// operation cost is two handle increments — no key rendering, no map
// lookups, no allocation.
func (s *runState) driveTraceFn(d *driveState) drive.TraceFunc {
	return func(ev obs.TraceEvent) {
		if oi := drive.OpIndex(ev.Op); oi >= 0 {
			c := d.opsC[oi]
			if c == nil {
				c = s.counter("drive_ops_total", obs.L("op", ev.Op), d.dl)
				d.opsC[oi] = c
			}
			c.Inc()
			h := s.hOpSec[oi]
			if h == nil {
				h = s.histogram("drive_op_seconds", obs.L("op", ev.Op))
				s.hOpSec[oi] = h
			}
			h.Observe(ev.ElapsedSec)
		} else {
			s.counter("drive_ops_total", obs.L("op", ev.Op), d.dl).Inc()
			s.histogram("drive_op_seconds", obs.L("op", ev.Op)).Observe(ev.ElapsedSec)
		}
		if ev.Err != "" {
			s.counter("drive_errors_total", obs.L("class", ev.Err), d.dl).Inc()
		}
		if s.tr != nil {
			s.tr.Add(ev)
		}
		if s.trace != nil {
			sp := s.trace.Start(ev.Op, d.curBatch, d.base+ev.ClockSec)
			if ev.Segment >= 0 {
				sp.AttrInt("segment", ev.Segment)
			}
			if ev.Err != "" {
				sp.Attr("err", ev.Err)
			}
			sp.End(d.base + ev.ClockSec + ev.ElapsedSec)
		}
	}
}

// serve cuts a batch for the cartridge off the backlog and executes
// it on the drive: exchange if needed, then one scheduling problem
// per distinct extent length (the paper's model schedules fixed-size
// requests; mixed sizes are served size class by size class, largest
// class first), each executed through the recovering executor.
func (s *runState) serve(d *driveState, serial int64, now float64) error {
	limit := s.cfg.BatchLimit
	if s.cfg.Policy == server.ReplanOnArrival {
		limit = 1
	}
	batch := s.q.take(serial, limit)
	if len(batch) == 0 {
		return fmt.Errorf("tertiary: internal: dispatched empty batch for tape %d", serial)
	}
	d.idle = false
	if s.trace != nil {
		d.curBatch = s.trace.Start("batch", s.root, now).Lane(1+d.id).
			Attr("tape", strconv.FormatInt(serial, 10)).AttrInt("size", len(batch))
	}

	var rewind, wait, exDur float64
	if !d.loaded || d.serial != serial {
		rewind, wait, exDur = s.exchange(d, serial, now)
	}
	serveStart := now + rewind + wait + exDur
	c0 := d.dev.Clock()
	// Anchor the mounted device's clock to absolute time for this
	// batch's leaf and executor spans.
	d.base = serveStart - c0

	// Group the batch into size classes, biggest class first (count
	// desc, then extent length asc — a deterministic order despite
	// map iteration). Nearly every real batch is a single class —
	// catalogs store fixed-size objects — so that case skips the
	// grouping machinery entirely.
	rl0 := batch[0].obj.segments()
	single := true
	for i := 1; i < len(batch); i++ {
		if batch[i].obj.segments() != rl0 {
			single = false
			break
		}
	}
	if single {
		if err := s.serveClass(d, serial, now, serveStart, c0, wait, rewind+exDur, rl0, batch); err != nil {
			return err
		}
	} else {
		byLen := make(map[int][]pending)
		for _, p := range batch {
			byLen[p.obj.segments()] = append(byLen[p.obj.segments()], p)
		}
		lens := make([]int, 0, len(byLen))
		for k := range byLen {
			lens = append(lens, k)
		}
		sort.Slice(lens, func(i, j int) bool {
			if len(byLen[lens[i]]) != len(byLen[lens[j]]) {
				return len(byLen[lens[i]]) > len(byLen[lens[j]])
			}
			return lens[i] < lens[j]
		})
		for _, rl := range lens {
			if err := s.serveClass(d, serial, now, serveStart, c0, wait, rewind+exDur, rl, byLen[rl]); err != nil {
				return err
			}
		}
	}

	elapsed := d.dev.Clock() - c0
	end := serveStart + elapsed
	d.busy += rewind + wait + exDur + elapsed
	s.events.push(driveEvent{at: end, drive: d.id})
	if end > s.m.Makespan {
		s.m.Makespan = end
	}
	s.m.Batches++
	if s.cBatches == nil {
		s.cBatches = s.counter("batches_total")
	}
	s.cBatches.Inc()
	if s.hBatchSz == nil {
		s.hBatchSz = s.histogram("batch_size")
		s.hBatchSec = s.histogram("batch_seconds")
	}
	s.hBatchSz.Observe(float64(len(batch)))
	s.hBatchSec.Observe(rewind + wait + exDur + elapsed)
	d.curBatch.End(end)
	d.curBatch = nil
	return nil
}

// serveClass schedules and executes one size class of the batch.
// Duplicate extents are deduplicated before scheduling — one physical
// read satisfies every pending request for the segment — and every
// pending sharing a served segment completes at that read's time.
// now is the batch's dispatch time; robotSec and mountSec are the
// exchange costs every request in the batch sat through, attributed
// to each.
func (s *runState) serveClass(d *driveState, serial int64, now, serveStart, c0, robotSec, mountSec float64, rl int, group []pending) error {
	// The start -> pending-requests multimap lives in run-lifetime
	// scratch: slotOf indexes into slots, whose per-slot slices keep
	// their backing arrays across batches. Every entry is deleted as
	// its segment is served or failed below, so the map is empty again
	// by the time the class is done.
	uniq := s.uniq[:0]
	if s.slotOf == nil {
		s.slotOf = make(map[int]int32, len(group))
	}
	nSlots := 0
	for _, p := range group {
		if si, dup := s.slotOf[p.obj.Start]; dup {
			s.slots[si] = append(s.slots[si], p)
			continue
		}
		if nSlots == len(s.slots) {
			s.slots = append(s.slots, nil)
		}
		s.slots[nSlots] = append(s.slots[nSlots][:0], p)
		s.slotOf[p.obj.Start] = int32(nSlots)
		uniq = append(uniq, p.obj.Start)
		nSlots++
	}
	s.uniq = uniq

	s.prob = core.Problem{Start: d.dev.Position(), Requests: uniq, ReadLen: rl, Cost: s.l.models[serial]}
	plan, err := s.l.sched.Schedule(&s.prob)
	if err != nil {
		return fmt.Errorf("tertiary: scheduling %d requests on tape %d: %w", len(uniq), serial, err)
	}

	s.ex.Drive, s.ex.Scheduler, s.ex.Policy = d.dev, s.l.sched, s.cfg.Retry
	s.ex.Trace, s.ex.Parent, s.ex.TraceBase = s.trace, d.curBatch, d.base
	base := d.dev.Clock()
	er, err := s.ex.Execute(&s.prob, plan)
	if err != nil {
		return fmt.Errorf("tertiary: executing %d requests on tape %d: %w", len(uniq), serial, err)
	}

	offset := base - c0
	for i, seg := range er.Served {
		si, ok := s.slotOf[seg]
		if !ok {
			return fmt.Errorf("tertiary: schedule visits segment %d on tape %d more often than requested", seg, serial)
		}
		det := er.Detail[i]
		for _, p := range s.slots[si] {
			done := serveStart + offset + er.Completions[i]
			attr := Attribution{
				QueueSec:    (now - p.req.Arrival) + offset + det.BeginSec,
				RobotSec:    robotSec,
				MountSec:    mountSec,
				LocateSec:   det.LocateSec,
				TransferSec: det.ReadSec,
				RetrySec:    det.RetrySec,
			}
			s.done = append(s.done, Completion{
				Request: p.req, Object: p.obj,
				Done:        done,
				DriveID:     d.id,
				Attribution: attr,
			})
			if s.trace != nil {
				s.trace.Start("request", s.root, p.req.Arrival).
					Attr("object", p.obj.ID).AttrInt("drive", d.id).
					AttrFloat("queue_sec", attr.QueueSec).
					AttrFloat("robot_sec", attr.RobotSec).
					AttrFloat("mount_sec", attr.MountSec).
					AttrFloat("locate_sec", attr.LocateSec).
					AttrFloat("transfer_sec", attr.TransferSec).
					AttrFloat("retry_sec", attr.RetrySec).
					End(done)
			}
			if s.cServed == nil {
				s.cServed = s.counter("served_total")
			}
			s.cServed.Inc()
			s.latencyHist(serial).Observe(serveStart + offset + er.Completions[i] - p.req.Arrival)
		}
		delete(s.slotOf, seg)
	}
	for _, seg := range er.Failed {
		si, ok := s.slotOf[seg]
		if !ok {
			return fmt.Errorf("tertiary: schedule visits segment %d on tape %d more often than requested", seg, serial)
		}
		s.m.Failed += len(s.slots[si])
		if s.cFailed == nil {
			s.cFailed = s.counter("failed_total")
		}
		s.cFailed.Add(int64(len(s.slots[si])))
		delete(s.slotOf, seg)
	}
	if len(s.slotOf) > 0 {
		return fmt.Errorf("tertiary: schedule for tape %d left %d segments unvisited", serial, len(s.slotOf))
	}
	s.m.Retries += er.Retries
	s.m.Replans += er.Replans
	s.m.Recalibrations += er.Recalibrations
	s.m.Fallbacks += er.Fallbacks
	s.m.RecoverySec += er.RecoverySec
	return nil
}

// finish retires the wear of still-loaded cartridges and folds the
// completions into the summary metrics.
func (s *runState) finish() {
	for i := range s.drives {
		d := &s.drives[i]
		if d.loaded {
			d.passes += d.dev.Stats().HeadPasses(s.cfg.Profile)
		}
		s.m.DriveBusySec += d.busy
		s.m.HeadPasses += d.passes
		s.gauge("drive_busy_seconds", d.dl).Set(d.busy)
	}
	var latSum float64
	for _, c := range s.done {
		s.m.Served++
		lat := c.Latency()
		latSum += lat
		if lat > s.m.MaxLatency {
			s.m.MaxLatency = lat
		}
		s.m.BytesRead += int64(c.Object.segments()) * s.cfg.Profile.SegmentBytes
	}
	if s.m.Served > 0 {
		s.m.MeanLatency = latSum / float64(s.m.Served)
	}
	sort.SliceStable(s.done, func(i, j int) bool { return s.done[i].Done < s.done[j].Done })
	s.gauge("makespan_seconds").Set(s.m.Makespan)
	s.gauge("queue_depth_max").Max(float64(s.m.MaxQueueDepth))
	s.gauge("robot_busy_seconds").Set(s.m.RobotBusySec)
	s.root.AttrInt("served", s.m.Served).AttrInt("failed", s.m.Failed).
		AttrInt("rejected", s.m.Rejected).End(s.m.Makespan)
}
