package tertiary

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/obs"
	"serpentine/internal/server"
	"serpentine/internal/sim"
)

// driveState tracks one transport through the simulation. Emptiness
// is an explicit flag, not a sentinel serial: cartridge serial 0 is
// as legal as any other. The states live in one flat slice on the
// runState so the dispatch loop walks contiguous memory.
type driveState struct {
	id     int
	dev    *drive.Drive
	serial int64
	loaded bool
	idle   bool
	busy   float64
	passes float64
	mounts int // exchanges into this drive, for fault-seed derivation

	// base maps the mounted device's clock (restarting at zero on
	// every exchange) onto the run's absolute virtual time: a drive
	// op at device time t happened at base + t. curBatch is the span
	// of the batch the drive is executing; leaf spans nest there.
	base     float64
	curBatch *obs.SpanHandle

	// Lifecycle outage window (only advanced when lifecycle faults
	// are armed): the drive is down on [downAt, repairedAt). Windows
	// are drawn lazily from the drive's private MTTF/MTTR stream as
	// the virtual clock passes them — the heap never carries failure
	// events for the idle future, so a zero-rate run pushes exactly
	// the events it always did. outCounted dedups the DriveFailures
	// count (one per window however often the window is observed);
	// rescue holds the requests stranded by a mid-batch death between
	// the death and the robot unloading the cartridge.
	downAt     float64
	repairedAt float64
	outCounted float64
	rescue     []pending

	// dl is the drive's metric label; opsC caches the per-op counters
	// so the trace hook's fast path renders no metric keys. traceFn is
	// the hook itself, built once and re-attached on every exchange.
	dl      obs.Label
	opsC    [drive.NumOps]*obs.Counter
	traceFn drive.TraceFunc
}

// runState is one Run's event loop.
type runState struct {
	l         *Library
	cfg       Config
	arrivals  []pending // in arrival order; index is the request ID
	next      int       // next un-admitted arrival
	queueCap  int
	adm       *server.AdmissionQueue
	q         *batchQueue
	drives    []driveState
	loadedBy  map[int64]int // cartridge serial -> drive holding it (robotHeld while in transit)
	events    eventHeap
	robotFree float64 // virtual time the robot arm finishes its last exchange

	// Lifecycle-fault state, all nil/empty unless Config.Lifecycle is
	// armed: the lifecycle generator, the brownout admission breaker,
	// the permanently lost cartridges, and the per-cartridge fetch
	// ordinals feeding the loss draws. requeues holds the payloads of
	// pending evRequeue events (rescued batches and replica
	// redirects), indexed by the event's ref. hasDeadlines short-
	// circuits the per-batch expiry scan when no request carries one.
	lc           *fault.Lifecycle
	breaker      *server.Breaker
	dead         map[int64]bool
	fetches      map[int64]int
	requeues     []requeueBatch
	hasDeadlines bool

	// Event-loop clock. now is the current virtual time; boundary
	// reports whether now is a FixedWindow boundary. Keeping the clock
	// on the state (instead of locals in Run) lets stepTo advance the
	// loop incrementally, which is how a fleet Runner embeds the shard
	// between externally routed arrivals.
	now      float64
	boundary bool
	finished bool
	reg      *obs.Registry
	tr       *obs.Trace
	trace    *obs.TraceHandle
	root     *obs.SpanHandle
	done     []Completion
	m        Metrics

	// ex is the run's one recovering executor, re-pointed at the
	// mounted drive per size class; prob is the reusable scheduling
	// problem handed to it.
	ex   sim.Executor
	prob core.Problem

	// Cached metric handles. Registry lookups render and hash the full
	// label set per call; the hot path resolves each series once and
	// holds the handle. Resolution stays lazy so the set of series a
	// run creates — and therefore every committed metrics dump — is
	// unchanged.
	cRejected *obs.Counter
	cUnmounts *obs.Counter
	cBatches  *obs.Counter
	cServed   *obs.Counter
	cFailed   *obs.Counter
	cShed     *obs.Counter
	cRescued  *obs.Counter
	cReplica  *obs.Counter
	cLostCart *obs.Counter
	cDriveDn  *obs.Counter
	cStalls   *obs.Counter
	cMounts   map[int64]*obs.Counter
	hLatency  map[int64]*obs.Histogram
	hRobotW   *obs.Histogram
	hBatchSz  *obs.Histogram
	hBatchSec *obs.Histogram
	hOpSec    [drive.NumOps]*obs.Histogram

	// Per-batch scratch, reused across batches: the distinct extent
	// starts of one size class (uniq becomes the scheduling problem's
	// request list) and the start -> requests multimap (slotOf indexes
	// into slots, whose per-slot slices keep their backing arrays).
	// Both maps drain back to empty by the end of each batch.
	uniq   []int
	slotOf map[int]int32
	slots  [][]pending
	admBuf []server.Request
}

// robotHeld is the loadedBy sentinel for a cartridge in the robot's
// gripper (being unloaded from a dead drive): no drive may pick it
// until the requeue event puts it back on the shelf.
const robotHeld = -1

// requeueBatch is the payload of one evRequeue event: requests going
// back to the backlog once the robot has shelved a dead drive's
// cartridge (release set, serial identifying it) or a failed read has
// redirected to a replica (release false).
type requeueBatch struct {
	serial  int64
	release bool
	ps      []pending
}

func (s *runState) counter(name string, extra ...obs.Label) *obs.Counter {
	return s.reg.Counter(name, append(extra, s.cfg.Labels...)...)
}

func (s *runState) histogram(name string, extra ...obs.Label) *obs.Histogram {
	return s.reg.Histogram(name, append(extra, s.cfg.Labels...)...)
}

func (s *runState) gauge(name string, extra ...obs.Label) *obs.Gauge {
	return s.reg.Gauge(name, append(extra, s.cfg.Labels...)...)
}

func (s *runState) mountsCounter(serial int64) *obs.Counter {
	c := s.cMounts[serial]
	if c == nil {
		c = s.counter("mounts_total", obs.L("tape", strconv.FormatInt(serial, 10)))
		s.cMounts[serial] = c
	}
	return c
}

func (s *runState) latencyHist(serial int64) *obs.Histogram {
	h := s.hLatency[serial]
	if h == nil {
		h = s.histogram("latency_seconds", obs.L("tape", strconv.FormatInt(serial, 10)))
		s.hLatency[serial] = h
	}
	return h
}

// Run serves every request and returns the completions (in completion
// order) and run metrics. Requests may arrive at any time; the
// simulation admits them through a bounded queue, groups the backlog
// by cartridge, and dispatches idle drives per the batching policy,
// preferring the cartridge with the oldest waiting request among
// those with the most work, which bounds starvation while keeping
// batches dense. A cartridge mounted in one drive is never picked by
// another.
func (l *Library) Run(requests []Request) ([]Completion, Metrics, error) {
	s, err := l.newRun(requests)
	if err != nil {
		return nil, Metrics{}, err
	}
	if err := s.stepTo(math.Inf(1)); err != nil {
		return nil, Metrics{}, err
	}
	return s.close()
}

// stepTo is the central dispatch over the shared event heap: wake
// events due at the current clock, admit arrivals up to it, hand work
// to every idle drive, then advance to the next drive completion,
// arrival, or window boundary — stopping once the next step would land
// after until. Each pass is idempotent at a fixed clock, so calling
// stepTo repeatedly (the incremental Runner does, with new arrivals
// offered in between) replays the exact event sequence one monolithic
// stepTo(+Inf) produces.
func (s *runState) stepTo(until float64) error {
	for {
		s.wake(s.now)
		s.admit(s.now)
		if err := s.dispatch(s.now, s.boundary); err != nil {
			return err
		}
		t, boundary, ok := s.nextTime(s.now)
		if !ok || t > until {
			return nil
		}
		s.now, s.boundary = t, boundary
	}
}

// close checks no request was stranded and folds up the run summary.
func (s *runState) close() ([]Completion, Metrics, error) {
	s.finished = true
	if stranded := s.q.len() + s.adm.Len(); stranded > 0 || s.next < len(s.arrivals) {
		return nil, Metrics{}, fmt.Errorf("tertiary: internal: %d requests stranded at end of run",
			stranded+len(s.arrivals)-s.next)
	}
	s.finish()
	return s.done, s.m, nil
}

// resolve validates one request against the catalog and the library's
// deadline policy, returning it as a pending entry.
func (l *Library) resolve(i int, r Request) (pending, bool, error) {
	o, ok := l.catalog.Get(r.ObjectID)
	if !ok {
		return pending{}, false, fmt.Errorf("tertiary: request for unknown object %q", r.ObjectID)
	}
	if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
		return pending{}, false, fmt.Errorf("tertiary: request %d arrives at %g", i, r.Arrival)
	}
	if r.Deadline < 0 || math.IsNaN(r.Deadline) || math.IsInf(r.Deadline, 0) {
		return pending{}, false, fmt.Errorf("tertiary: request %d with deadline %g", i, r.Deadline)
	}
	if r.Deadline == 0 && l.cfg.DeadlineSec > 0 {
		r.Deadline = r.Arrival + l.cfg.DeadlineSec
	}
	return pending{req: r, obj: o}, r.Deadline > 0, nil
}

// newRun resolves and validates the request stream and sets up the
// event-loop state.
func (l *Library) newRun(requests []Request) (*runState, error) {
	arrivals := make([]pending, 0, len(requests))
	hasDeadlines := false
	for i, r := range requests {
		p, dl, err := l.resolve(i, r)
		if err != nil {
			return nil, err
		}
		hasDeadlines = hasDeadlines || dl
		arrivals = append(arrivals, p)
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].req.Arrival < arrivals[j].req.Arrival })

	queueCap := l.cfg.QueueCap
	admCap := queueCap
	if queueCap <= 0 {
		queueCap = math.MaxInt / 2
		admCap = math.MaxInt / 2
	}
	reg := l.cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &runState{
		l:        l,
		cfg:      l.cfg,
		arrivals: arrivals,
		queueCap: queueCap,
		adm:      server.NewAdmissionQueue(admCap),
		q:        newBatchQueue(),
		drives:   make([]driveState, l.cfg.Drives),
		loadedBy: make(map[int64]int, l.cfg.Drives),
		reg:      reg,
		done:     make([]Completion, 0, len(arrivals)),
		cMounts:  make(map[int64]*obs.Counter),
		hLatency: make(map[int64]*obs.Histogram),
	}
	s.hasDeadlines = hasDeadlines
	s.now, s.boundary = 0, true
	s.events.ev = make([]driveEvent, 0, l.cfg.Drives)
	for i := range s.drives {
		d := &s.drives[i]
		d.id = i
		d.idle = true
		d.dl = obs.L("drive", strconv.Itoa(i))
		d.traceFn = s.driveTraceFn(d)
	}
	if l.cfg.Lifecycle.Enabled() {
		s.lc = fault.NewLifecycle(l.cfg.Lifecycle)
		s.breaker = server.NewBreaker(l.cfg.Drives)
		s.dead = make(map[int64]bool)
		s.fetches = make(map[int64]int)
		for i := range s.drives {
			s.drives[i].outCounted = -1
		}
	}
	if l.cfg.TraceCap > 0 {
		s.tr = reg.AttachTrace(l.cfg.TraceCap)
	} else {
		s.tr = reg.Trace()
	}
	if l.cfg.SpanTrace != nil {
		s.trace = l.cfg.SpanTrace
	} else if l.cfg.Spans != nil {
		s.trace = l.cfg.Spans.StartTrace()
	}
	if s.trace != nil {
		s.root = s.trace.Start("run", l.cfg.SpanParent, 0).Lane(l.cfg.Lane).
			Attr("scheduler", l.sched.Name()).Attr("policy", l.cfg.Policy.String()).
			AttrInt("drives", l.cfg.Drives)
	}
	return s, nil
}

// laneFor is the drive's span-export lane: drives render on rows above
// the run's own lane, offset by Config.Lane so fleet shards occupy
// disjoint row blocks.
func (s *runState) laneFor(d *driveState) int { return s.cfg.Lane + 1 + d.id }

// admit moves every arrival with Arrival <= until through the bounded
// admission queue into the per-cartridge backlog, shedding load once
// the pending backlog reaches QueueCap. With lifecycle faults armed
// the brownout breaker sits in front: it learns the live-drive count,
// sheds best-effort work while any drive is down (everything while
// all are down), and shrinks a bounded backlog to the live fraction
// of its configured capacity. Arrivals whose primary cartridge has
// been lost are redirected to a surviving replica at admission — or
// failed outright when none remains.
func (s *runState) admit(until float64) {
	depthCap := s.queueCap
	if s.breaker != nil {
		live := 0
		for i := range s.drives {
			if !s.driveDown(&s.drives[i], until) {
				live++
			}
		}
		s.breaker.SetLive(live)
		if s.cfg.QueueCap > 0 {
			depthCap = s.breaker.EffectiveCap(depthCap)
		}
	}
	for s.next < len(s.arrivals) && s.arrivals[s.next].req.Arrival <= until {
		p := s.arrivals[s.next]
		id := s.next
		s.next++
		if s.breaker != nil && !s.breaker.Admits(p.req.BestEffort) {
			s.shedRequests(1)
			s.emitTerminal(p, obs.OutcomeShed, obs.EventNoDrive, p.req.Arrival)
			continue
		}
		if s.dead != nil && s.dead[p.obj.Tape] {
			if !s.redirect(&p) {
				s.failRequests(1)
				s.emitTerminal(p, obs.OutcomeFailed, obs.EventNoDrive, p.req.Arrival)
				continue
			}
			s.arrivals[id] = p // the drain below re-reads by ID
		}
		if s.q.len()+s.adm.Len() >= depthCap ||
			!s.adm.Offer(server.Request{ID: id, Segment: p.obj.Start, ArrivalSec: p.req.Arrival}) {
			s.m.Rejected++
			if s.cRejected == nil {
				s.cRejected = s.counter("rejected_total")
			}
			s.cRejected.Inc()
			s.emitTerminal(p, obs.OutcomeRejected, obs.EventNoDrive, p.req.Arrival)
		}
	}
	// Drain the admission queue into the robot's per-cartridge view.
	s.admBuf = s.adm.PopNAppend(s.admBuf[:0], 0)
	for _, r := range s.admBuf {
		s.q.push(s.arrivals[r.ID])
	}
	if d := s.q.len(); d > s.m.MaxQueueDepth {
		s.m.MaxQueueDepth = d
	}
}

// dispatch hands work to every idle drive, in drive-id order. Under
// ReplanOnArrival a drive with work pending for its own mounted
// cartridge keeps it (one request per dispatch, so every decision
// sees the freshest queue); under FixedWindow nothing dispatches off
// a window boundary. A cartridge is physically in one place, so a
// drive never picks a cartridge loaded elsewhere: the standing
// loadedBy index carries the exclusion, with no per-dispatch set
// building.
func (s *runState) dispatch(now float64, boundary bool) error {
	if s.cfg.Policy == server.FixedWindow && !boundary {
		return nil
	}
	if s.cfg.Policy == server.ReplanOnArrival {
		for i := range s.drives {
			d := &s.drives[i]
			if d.idle && d.loaded && s.q.perTape[d.serial] != nil && !s.driveDown(d, now) {
				if _, err := s.serve(d, d.serial, now); err != nil {
					return err
				}
			}
		}
	}
	for i := range s.drives {
		d := &s.drives[i]
		// A pick that does not dispatch — the whole batch shed past
		// its deadline, or the cartridge lost by the robot — leaves
		// the drive idle with a changed queue, so re-pick: each
		// failed pick removes its cartridge's group (shed, or
		// drained for replica redirect), so the loop terminates.
		for d.idle && !s.driveDown(d, now) {
			serial, ok := s.q.pickFor(s.loadedBy, d.id)
			if !ok {
				break
			}
			dispatched, err := s.serve(d, serial, now)
			if err != nil {
				return err
			}
			if dispatched {
				break
			}
		}
	}
	return nil
}

// advanceOutage draws the drive's outage windows forward until the
// current one ends after now. Windows come lazily from the drive's
// private MTTF/MTTR stream — drawn only as the virtual clock passes
// them and always in time order, so the draw sequence is a pure
// function of the config however the event loop interleaves drives.
func (s *runState) advanceOutage(d *driveState, now float64) {
	for d.repairedAt <= now {
		gap, repair, ok := s.lc.NextOutage(d.id)
		if !ok {
			d.downAt, d.repairedAt = math.Inf(1), math.Inf(1)
			return
		}
		d.downAt = d.repairedAt + gap
		d.repairedAt = d.downAt + repair
	}
}

// driveDown reports whether the drive is inside an outage window at
// now. Always false without lifecycle faults.
func (s *runState) driveDown(d *driveState, now float64) bool {
	if s.lc == nil {
		return false
	}
	s.advanceOutage(d, now)
	if d.downAt <= now {
		s.noteOutage(d)
		return true
	}
	return false
}

// noteOutage counts the drive's current outage window once, however
// often it is observed, and emits its "down" span on the drive's lane.
func (s *runState) noteOutage(d *driveState) {
	if d.outCounted == d.downAt {
		return
	}
	d.outCounted = d.downAt
	s.m.DriveFailures++
	if s.cDriveDn == nil {
		s.cDriveDn = s.counter("drive_failures_total")
	}
	s.cDriveDn.Inc()
	if s.trace != nil {
		s.trace.Start("down", s.root, d.downAt).Lane(s.laneFor(d)).End(d.repairedAt)
	}
}

// redirect advances p to its next replica on a surviving cartridge,
// reporting false when none remains.
func (s *runState) redirect(p *pending) bool {
	reps := s.cfg.Placement.Get(p.req.ObjectID)
	for {
		p.replica++
		if p.replica > len(reps) {
			return false
		}
		if o := reps[p.replica-1]; !s.dead[o.Tape] {
			p.obj = o
			return true
		}
	}
}

// emitTerminal records the wide event for a request ending in a
// non-served terminal state at virtual time at: the whole wait since
// arrival books as queue time (minus any rescue time already accrued,
// which keeps its own column), so the attribution vector telescopes
// to the sojourn for every outcome. driveID is the drive involved in
// the final decision, or obs.EventNoDrive when none was.
func (s *runState) emitTerminal(p pending, outcome string, driveID int, at float64) {
	if s.cfg.Events == nil {
		return
	}
	s.cfg.Events.Add(obs.Event{
		Shard:      s.cfg.Shard,
		Object:     p.req.ObjectID,
		Tape:       p.obj.Tape,
		Drive:      driveID,
		Class:      p.req.Class(),
		Outcome:    outcome,
		Route:      p.route,
		Replica:    p.replica,
		ArrivalSec: p.req.Arrival,
		DoneSec:    at,
		QueueSec:   at - p.req.Arrival - p.rescueSec,
		RescueSec:  p.rescueSec,
	})
}

// emitServed records the wide event for one completion, copying the
// attribution vector the completion carries.
func (s *runState) emitServed(p pending, driveID int, done float64, attr Attribution) {
	if s.cfg.Events == nil {
		return
	}
	s.cfg.Events.Add(obs.Event{
		Shard:       s.cfg.Shard,
		Object:      p.req.ObjectID,
		Tape:        p.obj.Tape,
		Drive:       driveID,
		Class:       p.req.Class(),
		Outcome:     obs.OutcomeServed,
		Route:       p.route,
		Replica:     p.replica,
		ArrivalSec:  p.req.Arrival,
		DoneSec:     done,
		QueueSec:    attr.QueueSec,
		RobotSec:    attr.RobotSec,
		MountSec:    attr.MountSec,
		LocateSec:   attr.LocateSec,
		TransferSec: attr.TransferSec,
		RetrySec:    attr.RetrySec,
		RescueSec:   attr.RescueSec,
	})
}

// failRequests counts n requests abandoned permanently.
func (s *runState) failRequests(n int) {
	s.m.Failed += n
	if s.cFailed == nil {
		s.cFailed = s.counter("failed_total")
	}
	s.cFailed.Add(int64(n))
}

// shedRequests counts n requests dropped deliberately: refused by the
// brownout breaker or expired past their deadline.
func (s *runState) shedRequests(n int) {
	s.m.Shed += n
	if s.cShed == nil {
		s.cShed = s.counter("shed_total")
	}
	s.cShed.Add(int64(n))
}

// nextTime returns the next virtual time anything can happen: a drive
// completing, an arrival landing, or (FixedWindow, with work queued
// and a drive to take it) the next window boundary. Every candidate
// is strictly after now, so the loop always progresses.
func (s *runState) nextTime(now float64) (t float64, boundary, ok bool) {
	t = math.Inf(1)
	if s.events.len() > 0 {
		t, ok = s.events.min().at, true
	}
	if s.next < len(s.arrivals) {
		if a := s.arrivals[s.next].req.Arrival; a < t {
			t = a
		}
		ok = true
	}
	if s.lc != nil && s.q.len() > 0 {
		// Work is queued but may be waiting on a repair: every idle
		// drive inside an outage window becomes available at its
		// repairedAt (including the drive holding a captive cartridge,
		// and the all-drives-down case, where no other event would
		// ever wake the loop).
		for i := range s.drives {
			d := &s.drives[i]
			if d.idle && s.driveDown(d, now) {
				if d.repairedAt < t {
					t = d.repairedAt
				}
				ok = true
			}
		}
	}
	if s.cfg.Policy == server.FixedWindow && s.q.len() > 0 && s.anyAvailable(now) {
		b := s.cfg.WindowSec * math.Ceil(now/s.cfg.WindowSec)
		for b <= now {
			b += s.cfg.WindowSec
		}
		if b <= t {
			t, boundary = b, true
		}
		ok = true
	}
	return t, boundary, ok
}

// anyAvailable reports whether any drive is idle and outside an
// outage window at now (plain idleness without lifecycle faults).
func (s *runState) anyAvailable(now float64) bool {
	for i := range s.drives {
		d := &s.drives[i]
		if d.idle && !s.driveDown(d, now) {
			return true
		}
	}
	return false
}

// wake pops every event at or before now: drives going idle, drives
// dying mid-batch (the robot unloads them and their stranded requests
// are scheduled for requeue), and rescued or redirected requests
// re-entering the backlog. Handlers may push further events at the
// same instant (a free robot books an immediate unload); the loop
// drains those too.
func (s *runState) wake(now float64) {
	for {
		ev, ok := s.events.popLE(now)
		if !ok {
			return
		}
		switch ev.kind {
		case evIdle:
			s.drives[ev.drive].idle = true
		case evFail:
			s.handleDriveFail(&s.drives[ev.drive], ev.at)
		case evRequeue:
			s.handleRequeue(&s.requeues[ev.ref])
		}
	}
}

// handleDriveFail books the rescue of a drive that died mid-batch at
// time t: the robot unloads the captive cartridge as soon as the arm
// is free (the cartridge stays unavailable while in the gripper), the
// stranded requests requeue once it is shelved, and the drive itself
// stays unavailable until its outage window ends.
func (s *runState) handleDriveFail(d *driveState, t float64) {
	wait := 0.0
	if s.robotFree > t {
		wait = s.robotFree - t
		s.m.RobotWaitSec += wait
		if s.hRobotW == nil {
			s.hRobotW = s.histogram("robot_wait_seconds")
		}
		s.hRobotW.Observe(wait)
	}
	unloadEnd := t + wait + s.cfg.UnmountSec
	s.robotFree = unloadEnd
	s.m.Unmounts++
	s.m.RobotMoves++
	s.m.RobotBusySec += s.cfg.UnmountSec
	if s.cUnmounts == nil {
		s.cUnmounts = s.counter("unmounts_total")
	}
	s.cUnmounts.Inc()

	s.m.Rescued += len(d.rescue)
	if s.cRescued == nil {
		s.cRescued = s.counter("rescued_total")
	}
	s.cRescued.Add(int64(len(d.rescue)))
	if s.trace != nil {
		s.trace.Start("rescue", s.root, t).Lane(s.laneFor(d)).
			Attr("tape", strconv.FormatInt(d.serial, 10)).
			AttrInt("count", len(d.rescue)).End(unloadEnd)
	}

	// Wear is retired at unload like a normal exchange; the cartridge
	// rides the gripper (robotHeld) until the requeue shelves it.
	d.passes += d.dev.Stats().HeadPasses(s.cfg.Profile)
	s.loadedBy[d.serial] = robotHeld
	serial := d.serial
	d.loaded = false
	d.idle = true

	s.requeues = append(s.requeues, requeueBatch{serial: serial, release: true, ps: d.rescue})
	d.rescue = nil
	s.events.push(driveEvent{at: unloadEnd, drive: d.id, kind: evRequeue, ref: int32(len(s.requeues) - 1)})
	if unloadEnd > s.m.Makespan {
		s.m.Makespan = unloadEnd
	}
}

// handleRequeue returns a rescue or replica-redirect payload to the
// backlog, shelving the carried cartridge first when there is one. A
// target cartridge that died while the batch was in flight redirects
// again (or fails the request when its replicas are exhausted).
func (s *runState) handleRequeue(rq *requeueBatch) {
	if rq.release && s.loadedBy[rq.serial] == robotHeld {
		delete(s.loadedBy, rq.serial)
	}
	for _, p := range rq.ps {
		if s.dead != nil && s.dead[p.obj.Tape] && !s.redirect(&p) {
			s.failRequests(1)
			s.emitTerminal(p, obs.OutcomeFailed, obs.EventNoDrive, s.now)
			continue
		}
		s.q.push(p)
	}
	rq.ps = nil
	if depth := s.q.len(); depth > s.m.MaxQueueDepth {
		s.m.MaxQueueDepth = depth
	}
}

// deriveFaultSeed gives every (cartridge, drive, mount) its own
// injector stream, so fault sequences do not depend on dispatch
// interleaving across drives.
func deriveFaultSeed(base, serial int64, driveID, mount int) int64 {
	return base*1000003 + serial*8191 + int64(driveID)*131 + int64(mount)*17 + 3
}

// exchange swaps the chosen cartridge into the drive through the
// robot arm (one exchange at a time: a busy arm queues the swap) and
// returns the rewind time charged to the outgoing cartridge, the time
// spent queued for the arm, and the exchange handling time itself.
func (s *runState) exchange(d *driveState, serial int64, now float64) (rewind, wait, exDur float64) {
	if d.loaded {
		// The outgoing device's clock keeps running through the
		// rewind; re-anchor its span base so the rewind leaf span
		// lands at the current virtual time.
		d.base = now - d.dev.Clock()
		rewind = d.dev.Rewind()
		d.passes += d.dev.Stats().HeadPasses(s.cfg.Profile)
		exDur += s.cfg.UnmountSec
		s.m.Unmounts++
		s.m.RobotMoves++
		if s.cUnmounts == nil {
			s.cUnmounts = s.counter("unmounts_total")
		}
		s.cUnmounts.Inc()
		delete(s.loadedBy, d.serial)
	}
	exDur += s.cfg.MountSec
	s.m.Mounts++
	s.m.RobotMoves++
	s.mountsCounter(serial).Inc()
	if s.lc != nil {
		// Robot stalls extend the exchange handling time; the draw is
		// a pure hash of the arm-trip ordinal, so it does not depend
		// on which drive asked.
		if stall := s.lc.RobotStall(s.m.RobotMoves); stall > 0 {
			exDur += stall
			s.m.RobotStalls++
			if s.cStalls == nil {
				s.cStalls = s.counter("robot_stalls_total")
			}
			s.cStalls.Inc()
			if s.trace != nil {
				s.trace.Start("robot-stall", d.curBatch, now+rewind).End(now + rewind + stall)
			}
		}
	}

	wait = 0.0
	exStart := now + rewind
	if s.robotFree > exStart {
		wait = s.robotFree - exStart
		s.m.RobotWaitSec += wait
		if s.hRobotW == nil {
			s.hRobotW = s.histogram("robot_wait_seconds")
		}
		s.hRobotW.Observe(wait)
		if s.trace != nil {
			s.trace.Start("robot-wait", d.curBatch, exStart).End(exStart + wait)
		}
	}
	s.robotFree = exStart + wait + exDur
	s.m.RobotBusySec += exDur
	if s.trace != nil {
		s.trace.Start("exchange", d.curBatch, exStart+wait).
			Attr("tape", strconv.FormatInt(serial, 10)).End(exStart + wait + exDur)
	}

	dev := drive.New(s.l.tapes[serial])
	f := s.cfg.Faults
	armed := f.Enabled()
	if s.lc != nil {
		// A cartridge's bad-spot region is a permanent media defect:
		// a pure hash of the serial, so every mount of the cartridge
		// sees the same region.
		if start, n, bad := s.lc.BadSpot(serial, s.l.tapes[serial].Segments()); bad {
			f.BadSpotStart, f.BadSpotLen = start, n
			armed = true
		}
	}
	if armed {
		f.Seed = deriveFaultSeed(s.cfg.Faults.Seed, serial, d.id, d.mounts)
		dev.AttachFaults(fault.New(f))
	}
	dev.AttachTrace(d.traceFn)
	d.dev = dev
	d.serial = serial
	d.loaded = true
	d.mounts++
	s.loadedBy[serial] = d.id
	return rewind, wait, exDur
}

// driveTraceFn builds the drive's trace hook: every operation feeds
// the per-op counters and histograms, the bounded trace ring when one
// is attached, and a leaf span under the drive's executing batch.
// Tracing never perturbs drive timing. The hook is built once per
// drive and re-attached on every exchange; its metric handles are
// cached in flat arrays, so with spans and the ring disabled the per
// operation cost is two handle increments — no key rendering, no map
// lookups, no allocation.
func (s *runState) driveTraceFn(d *driveState) drive.TraceFunc {
	return func(ev obs.TraceEvent) {
		if oi := drive.OpIndex(ev.Op); oi >= 0 {
			c := d.opsC[oi]
			if c == nil {
				c = s.counter("drive_ops_total", obs.L("op", ev.Op), d.dl)
				d.opsC[oi] = c
			}
			c.Inc()
			h := s.hOpSec[oi]
			if h == nil {
				h = s.histogram("drive_op_seconds", obs.L("op", ev.Op))
				s.hOpSec[oi] = h
			}
			h.Observe(ev.ElapsedSec)
		} else {
			s.counter("drive_ops_total", obs.L("op", ev.Op), d.dl).Inc()
			s.histogram("drive_op_seconds", obs.L("op", ev.Op)).Observe(ev.ElapsedSec)
		}
		if ev.Err != "" {
			s.counter("drive_errors_total", obs.L("class", ev.Err), d.dl).Inc()
		}
		if s.tr != nil {
			s.tr.Add(ev)
		}
		if s.trace != nil {
			sp := s.trace.Start(ev.Op, d.curBatch, d.base+ev.ClockSec)
			if ev.Segment >= 0 {
				sp.AttrInt("segment", ev.Segment)
			}
			if ev.Err != "" {
				sp.Attr("err", ev.Err)
			}
			sp.End(d.base + ev.ClockSec + ev.ElapsedSec)
		}
	}
}

// serve cuts a batch for the cartridge off the backlog and executes
// it on the drive: exchange if needed, then one scheduling problem
// per distinct extent length (the paper's model schedules fixed-size
// requests; mixed sizes are served size class by size class, largest
// class first), each executed through the recovering executor. It
// reports whether the drive actually dispatched: a batch entirely
// shed past its deadline, or a cartridge the robot loses on the
// fetch, leaves the drive idle (and the queue changed) for the
// dispatch loop to re-pick.
func (s *runState) serve(d *driveState, serial int64, now float64) (bool, error) {
	limit := s.cfg.BatchLimit
	if s.cfg.Policy == server.ReplanOnArrival {
		limit = 1
	}
	batch := s.q.take(serial, limit)
	if len(batch) == 0 {
		return false, fmt.Errorf("tertiary: internal: dispatched empty batch for tape %d", serial)
	}
	// Deadline enforcement happens at batch-cut time: a request that
	// expired while queued is shed, never dispatched.
	if s.hasDeadlines {
		kept := batch[:0]
		for _, p := range batch {
			if p.req.Deadline > 0 && now > p.req.Deadline {
				s.shedRequests(1)
				s.emitTerminal(p, obs.OutcomeShed, obs.EventNoDrive, now)
				continue
			}
			kept = append(kept, p)
		}
		if batch = kept; len(batch) == 0 {
			return false, nil
		}
	}
	// A fetch of an unmounted cartridge can lose it permanently: the
	// arm trip happens (one robot move) but no mount does, and the
	// batch degrades to surviving replicas or fails.
	if s.lc != nil && (!d.loaded || d.serial != serial) {
		ord := s.fetches[serial]
		s.fetches[serial] = ord + 1
		if s.lc.CartridgeLost(serial, ord) {
			s.loseCartridge(d, serial, now, batch)
			return false, nil
		}
	}
	d.idle = false
	if s.trace != nil {
		d.curBatch = s.trace.Start("batch", s.root, now).Lane(s.laneFor(d)).
			Attr("tape", strconv.FormatInt(serial, 10)).AttrInt("size", len(batch))
	}

	var rewind, wait, exDur float64
	if !d.loaded || d.serial != serial {
		rewind, wait, exDur = s.exchange(d, serial, now)
	}
	// cut is the time the drive's next outage begins: completions and
	// failures past it never happen — the batch is truncated there
	// and its unfinished requests rescued. Infinite without lifecycle
	// faults, and strictly after now (dispatch only serves drives
	// outside an outage window).
	cut := math.Inf(1)
	if s.lc != nil {
		s.advanceOutage(d, now)
		cut = d.downAt
	}
	serveStart := now + rewind + wait + exDur
	c0 := d.dev.Clock()
	// Anchor the mounted device's clock to absolute time for this
	// batch's leaf and executor spans.
	d.base = serveStart - c0

	// Group the batch into size classes, biggest class first (count
	// desc, then extent length asc — a deterministic order despite
	// map iteration). Nearly every real batch is a single class —
	// catalogs store fixed-size objects — so that case skips the
	// grouping machinery entirely.
	rl0 := batch[0].obj.segments()
	single := true
	for i := 1; i < len(batch); i++ {
		if batch[i].obj.segments() != rl0 {
			single = false
			break
		}
	}
	if single {
		if err := s.serveClass(d, serial, now, serveStart, c0, wait, rewind+exDur, cut, rl0, batch); err != nil {
			return false, err
		}
	} else {
		byLen := make(map[int][]pending)
		for _, p := range batch {
			byLen[p.obj.segments()] = append(byLen[p.obj.segments()], p)
		}
		lens := make([]int, 0, len(byLen))
		for k := range byLen {
			lens = append(lens, k)
		}
		sort.Slice(lens, func(i, j int) bool {
			if len(byLen[lens[i]]) != len(byLen[lens[j]]) {
				return len(byLen[lens[i]]) > len(byLen[lens[j]])
			}
			return lens[i] < lens[j]
		})
		for _, rl := range lens {
			if err := s.serveClass(d, serial, now, serveStart, c0, wait, rewind+exDur, cut, rl, byLen[rl]); err != nil {
				return false, err
			}
		}
	}

	elapsed := d.dev.Clock() - c0
	end := serveStart + elapsed
	dur := rewind + wait + exDur + elapsed
	if end > cut {
		// The drive died mid-batch: its unfinished requests are
		// already collected on d.rescue; the robot unload is booked
		// when the evFail event fires, so arm contention is accounted
		// in virtual-time order. The drive stays unavailable until
		// its outage window ends.
		s.noteOutage(d)
		end, dur = cut, cut-now
		s.events.push(driveEvent{at: cut, drive: d.id, kind: evFail})
	} else {
		s.events.push(driveEvent{at: end, drive: d.id})
	}
	d.busy += dur
	if end > s.m.Makespan {
		s.m.Makespan = end
	}
	s.m.Batches++
	if s.cBatches == nil {
		s.cBatches = s.counter("batches_total")
	}
	s.cBatches.Inc()
	if s.hBatchSz == nil {
		s.hBatchSz = s.histogram("batch_size")
		s.hBatchSec = s.histogram("batch_seconds")
	}
	s.hBatchSz.Observe(float64(len(batch)))
	s.hBatchSec.Observe(dur)
	if d.curBatch != nil && len(d.rescue) > 0 {
		d.curBatch.AttrInt("rescued", len(d.rescue))
	}
	d.curBatch.End(end)
	d.curBatch = nil
	return true, nil
}

// loseCartridge handles a failed fetch: the cartridge is permanently
// gone. The taken batch plus the tape's remaining backlog redirect to
// surviving replicas once the arm trip returns empty-handed, or fail
// when no replica remains.
func (s *runState) loseCartridge(d *driveState, serial int64, now float64, batch []pending) {
	s.dead[serial] = true
	s.m.LostCartridges++
	if s.cLostCart == nil {
		s.cLostCart = s.counter("lost_cartridges_total")
	}
	s.cLostCart.Inc()
	wait := 0.0
	if s.robotFree > now {
		wait = s.robotFree - now
		s.m.RobotWaitSec += wait
		if s.hRobotW == nil {
			s.hRobotW = s.histogram("robot_wait_seconds")
		}
		s.hRobotW.Observe(wait)
	}
	tripEnd := now + wait + s.cfg.MountSec
	s.robotFree = tripEnd
	s.m.RobotMoves++
	s.m.RobotBusySec += s.cfg.MountSec
	if s.trace != nil {
		s.trace.Start("lost-cartridge", s.root, now).
			Attr("tape", strconv.FormatInt(serial, 10)).End(tripEnd)
	}
	batch = append(batch, s.q.take(serial, 0)...)
	redirected := make([]pending, 0, len(batch))
	for _, p := range batch {
		if s.redirect(&p) {
			redirected = append(redirected, p)
		} else {
			s.failRequests(1)
			s.emitTerminal(p, obs.OutcomeFailed, obs.EventNoDrive, tripEnd)
		}
	}
	if len(redirected) > 0 {
		s.requeues = append(s.requeues, requeueBatch{ps: redirected})
		s.events.push(driveEvent{at: tripEnd, drive: d.id, kind: evRequeue, ref: int32(len(s.requeues) - 1)})
	}
	if tripEnd > s.m.Makespan {
		s.m.Makespan = tripEnd
	}
}

// serveClass schedules and executes one size class of the batch.
// Duplicate extents are deduplicated before scheduling — one physical
// read satisfies every pending request for the segment — and every
// pending sharing a served segment completes at that read's time.
// now is the batch's dispatch time; robotSec and mountSec are the
// exchange costs every request in the batch sat through, attributed
// to each. cut is the time the drive's next outage begins: outcomes
// past it never happen — those requests are rescued onto d.rescue
// with the doomed attempt's duration charged to their RescueSec.
func (s *runState) serveClass(d *driveState, serial int64, now, serveStart, c0, robotSec, mountSec, cut float64, rl int, group []pending) error {
	// The start -> pending-requests multimap lives in run-lifetime
	// scratch: slotOf indexes into slots, whose per-slot slices keep
	// their backing arrays across batches. Every entry is deleted as
	// its segment is served or failed below, so the map is empty again
	// by the time the class is done.
	uniq := s.uniq[:0]
	if s.slotOf == nil {
		s.slotOf = make(map[int]int32, len(group))
	}
	nSlots := 0
	for _, p := range group {
		if si, dup := s.slotOf[p.obj.Start]; dup {
			s.slots[si] = append(s.slots[si], p)
			continue
		}
		if nSlots == len(s.slots) {
			s.slots = append(s.slots, nil)
		}
		s.slots[nSlots] = append(s.slots[nSlots][:0], p)
		s.slotOf[p.obj.Start] = int32(nSlots)
		uniq = append(uniq, p.obj.Start)
		nSlots++
	}
	s.uniq = uniq

	s.prob = core.Problem{Start: d.dev.Position(), Requests: uniq, ReadLen: rl, Cost: s.l.models[serial]}
	plan, err := s.l.sched.Schedule(&s.prob)
	if err != nil {
		return fmt.Errorf("tertiary: scheduling %d requests on tape %d: %w", len(uniq), serial, err)
	}

	s.ex.Drive, s.ex.Scheduler, s.ex.Policy = d.dev, s.l.sched, s.cfg.Retry
	s.ex.Trace, s.ex.Parent, s.ex.TraceBase = s.trace, d.curBatch, d.base
	base := d.dev.Clock()
	er, err := s.ex.Execute(&s.prob, plan)
	if err != nil {
		return fmt.Errorf("tertiary: executing %d requests on tape %d: %w", len(uniq), serial, err)
	}

	offset := base - c0
	for i, seg := range er.Served {
		si, ok := s.slotOf[seg]
		if !ok {
			return fmt.Errorf("tertiary: schedule visits segment %d on tape %d more often than requested", seg, serial)
		}
		det := er.Detail[i]
		if serveStart+offset+er.Completions[i] > cut {
			// The drive dies before this read completes: rescue every
			// pending on the segment. Time since dispatch becomes
			// rescue time, not queueing, when they finally complete.
			for _, p := range s.slots[si] {
				p.rescueSec += cut - now
				d.rescue = append(d.rescue, p)
			}
			delete(s.slotOf, seg)
			continue
		}
		for _, p := range s.slots[si] {
			done := serveStart + offset + er.Completions[i]
			attr := Attribution{
				QueueSec:    (now - p.req.Arrival) + offset + det.BeginSec - p.rescueSec,
				RobotSec:    robotSec,
				MountSec:    mountSec,
				LocateSec:   det.LocateSec,
				TransferSec: det.ReadSec,
				RetrySec:    det.RetrySec,
				RescueSec:   p.rescueSec,
			}
			s.done = append(s.done, Completion{
				Request: p.req, Object: p.obj,
				Done:        done,
				DriveID:     d.id,
				Attribution: attr,
			})
			s.emitServed(p, d.id, done, attr)
			if p.replica > 0 {
				s.m.ReplicaReads++
				if s.cReplica == nil {
					s.cReplica = s.counter("replica_reads_total")
				}
				s.cReplica.Inc()
			}
			if s.trace != nil {
				rs := s.trace.Start("request", s.root, p.req.Arrival).
					Attr("object", p.obj.ID).AttrInt("drive", d.id).
					AttrFloat("queue_sec", attr.QueueSec).
					AttrFloat("robot_sec", attr.RobotSec).
					AttrFloat("mount_sec", attr.MountSec).
					AttrFloat("locate_sec", attr.LocateSec).
					AttrFloat("transfer_sec", attr.TransferSec).
					AttrFloat("retry_sec", attr.RetrySec)
				if p.replica > 0 {
					rs.AttrInt("replica", p.replica)
					s.trace.Start("replica-read", rs, now).AttrInt("replica", p.replica).End(done)
				}
				rs.End(done)
			}
			if s.cServed == nil {
				s.cServed = s.counter("served_total")
			}
			s.cServed.Inc()
			s.latencyHist(serial).Observe(serveStart + offset + er.Completions[i] - p.req.Arrival)
		}
		delete(s.slotOf, seg)
	}
	for i, seg := range er.Failed {
		si, ok := s.slotOf[seg]
		if !ok {
			return fmt.Errorf("tertiary: schedule visits segment %d on tape %d more often than requested", seg, serial)
		}
		failAbs := serveStart + offset + er.FailedAt[i]
		switch {
		case failAbs > cut:
			// The drive dies before the failure is decided: rescued,
			// like an unfinished read.
			for _, p := range s.slots[si] {
				p.rescueSec += cut - now
				d.rescue = append(d.rescue, p)
			}
		case s.cfg.Placement != nil:
			// A permanent failure with replicas configured degrades
			// to a remote-replica read: each pending redirects to its
			// next surviving copy at the moment the failure was
			// decided, re-entering the backlog then.
			var redirected []pending
			for _, p := range s.slots[si] {
				p.rescueSec += failAbs - now
				if s.redirect(&p) {
					redirected = append(redirected, p)
				} else {
					s.failRequests(1)
					s.emitTerminal(p, obs.OutcomeFailed, d.id, failAbs)
				}
			}
			if len(redirected) > 0 {
				s.requeues = append(s.requeues, requeueBatch{ps: redirected})
				s.events.push(driveEvent{at: failAbs, drive: d.id, kind: evRequeue, ref: int32(len(s.requeues) - 1)})
			}
		default:
			s.failRequests(len(s.slots[si]))
			for _, p := range s.slots[si] {
				s.emitTerminal(p, obs.OutcomeFailed, d.id, failAbs)
			}
		}
		delete(s.slotOf, seg)
	}
	if len(s.slotOf) > 0 {
		return fmt.Errorf("tertiary: schedule for tape %d left %d segments unvisited", serial, len(s.slotOf))
	}
	s.m.Retries += er.Retries
	s.m.Replans += er.Replans
	s.m.Recalibrations += er.Recalibrations
	s.m.Fallbacks += er.Fallbacks
	s.m.RecoverySec += er.RecoverySec
	return nil
}

// finish retires the wear of still-loaded cartridges and folds the
// completions into the summary metrics.
func (s *runState) finish() {
	for i := range s.drives {
		d := &s.drives[i]
		if d.loaded {
			d.passes += d.dev.Stats().HeadPasses(s.cfg.Profile)
		}
		s.m.DriveBusySec += d.busy
		s.m.HeadPasses += d.passes
		s.gauge("drive_busy_seconds", d.dl).Set(d.busy)
	}
	var latSum float64
	for _, c := range s.done {
		s.m.Served++
		lat := c.Latency()
		latSum += lat
		if lat > s.m.MaxLatency {
			s.m.MaxLatency = lat
		}
		s.m.BytesRead += int64(c.Object.segments()) * s.cfg.Profile.SegmentBytes
	}
	if s.m.Served > 0 {
		s.m.MeanLatency = latSum / float64(s.m.Served)
	}
	sort.SliceStable(s.done, func(i, j int) bool { return s.done[i].Done < s.done[j].Done })
	s.gauge("makespan_seconds").Set(s.m.Makespan)
	s.gauge("queue_depth_max").Max(float64(s.m.MaxQueueDepth))
	s.gauge("robot_busy_seconds").Set(s.m.RobotBusySec)
	if s.lc != nil {
		// Lifecycle-only attributes, so a zero-rate run's spans are
		// identical to one without the Lifecycle field.
		s.root.AttrInt("shed", s.m.Shed).AttrInt("rescued", s.m.Rescued).
			AttrInt("replica_reads", s.m.ReplicaReads).
			AttrInt("drive_failures", s.m.DriveFailures).
			AttrInt("lost_cartridges", s.m.LostCartridges)
	}
	s.root.AttrInt("served", s.m.Served).AttrInt("failed", s.m.Failed).
		AttrInt("rejected", s.m.Rejected).End(s.m.Makespan)
}
