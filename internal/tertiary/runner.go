package tertiary

import (
	"fmt"
	"math"
)

// Runner is the library's event loop opened for external driving: the
// same state machine Run advances to completion in one call, exposed
// step by step so a routing tier can interleave many libraries on one
// virtual clock. The contract is strict alternation with virtual time:
// advance every shard to an arrival's timestamp, inspect the probes
// (queue depth, mounted cartridges, lost cartridges, headroom), offer
// the request to the shard the router chose, and repeat; Finish drains
// the loop and returns the completions and metrics.
//
// A Runner fed the requests of a Run call in arrival order — offered
// between AdvanceTo calls at their own timestamps — produces
// bit-identical completions and metrics to that Run call:
// TestRunnerMatchesRun and the fleet's single-shard equivalence test
// pin exactly this.
//
// A Runner belongs to one goroutine, like the run loop it wraps.
type Runner struct {
	s    *runState
	last float64 // latest offered arrival, for monotonicity checks
}

// StartRun opens the library's event loop with an empty arrival
// stream. Requests are fed in with Offer; Finish closes the loop.
func (l *Library) StartRun() (*Runner, error) {
	s, err := l.newRun(nil)
	if err != nil {
		return nil, err
	}
	return &Runner{s: s}, nil
}

// Offer appends one request to the arrival stream. Offers must be
// nondecreasing in arrival time and never earlier than the clock the
// runner has already advanced to — the event loop, like time, does not
// rewind. The request is admitted (or rejected, shed, redirected) when
// the loop next advances to its arrival time.
func (r *Runner) Offer(req Request) error {
	return r.OfferRouted(req, "")
}

// OfferRouted is Offer carrying the routing tier's decision for the
// request ("affinity", "cross-shard", ...): pure annotation, stamped
// onto the request's wide event and nothing else.
func (r *Runner) OfferRouted(req Request, route string) error {
	s := r.s
	if s.finished {
		return fmt.Errorf("tertiary: offer after Finish")
	}
	p, dl, err := s.l.resolve(len(s.arrivals), req)
	if err != nil {
		return err
	}
	if req.Arrival < r.last || req.Arrival < s.now {
		return fmt.Errorf("tertiary: request offered at %g behind the clock (last offer %g, now %g)",
			req.Arrival, r.last, s.now)
	}
	r.last = req.Arrival
	p.route = route
	s.hasDeadlines = s.hasDeadlines || dl
	s.arrivals = append(s.arrivals, p)
	return nil
}

// AdvanceTo runs the event loop until nothing more can happen at or
// before t: offered arrivals are admitted and dispatched, drives
// complete and fail, rescues requeue. Times before the current clock
// are a no-op, never a rewind.
func (r *Runner) AdvanceTo(t float64) error {
	if r.s.finished {
		return fmt.Errorf("tertiary: advance after Finish")
	}
	if math.IsNaN(t) {
		return fmt.Errorf("tertiary: advance to NaN")
	}
	if t < r.s.now {
		t = r.s.now
	}
	return r.s.stepTo(t)
}

// Finish drains the loop to quiescence and returns the completions (in
// completion order) and the run metrics, exactly as Run would.
func (r *Runner) Finish() ([]Completion, Metrics, error) {
	if r.s.finished {
		return nil, Metrics{}, fmt.Errorf("tertiary: double Finish")
	}
	if err := r.s.stepTo(math.Inf(1)); err != nil {
		return nil, Metrics{}, err
	}
	return r.s.close()
}

// Now returns the runner's current virtual time.
func (r *Runner) Now() float64 { return r.s.now }

// Completed returns the completions recorded so far, in record order:
// the deterministic order the event loop appended them at dispatch
// time, not completion order, and with Done timestamps that may still
// lie ahead of the clock (a batch's completions are priced when it
// dispatches). The slice is the loop's own backing store — read-only,
// growing across AdvanceTo calls, and re-sorted into completion order
// by Finish, so incremental consumers (the staging tier harvesting
// fetch returns) must drain it by index before calling Finish.
func (r *Runner) Completed() []Completion { return r.s.done }

// QueueDepth is the pending backlog: requests offered or admitted but
// not yet dispatched to a drive. Offered-but-unadmitted arrivals count
// so that a router scoring several same-timestamp requests sees each
// earlier decision reflected in the load it scores the next one by. It
// is the signal a least-loaded router ranks shards with.
func (r *Runner) QueueDepth() int {
	return r.s.q.len() + r.s.adm.Len() + len(r.s.arrivals) - r.s.next
}

// Mounted reports whether the cartridge is currently loaded in one of
// the library's drives (a cartridge riding the robot's gripper after a
// rescue is not). It is the affinity signal: a request routed to the
// shard already holding its cartridge joins that cartridge's next
// batch without an exchange.
func (r *Runner) Mounted(serial int64) bool {
	owner, ok := r.s.loadedBy[serial]
	return ok && owner != robotHeld
}

// MountedSerials returns the cartridges currently loaded in drives, in
// drive-ID order (loaded drives only).
func (r *Runner) MountedSerials() []int64 {
	out := make([]int64, 0, len(r.s.drives))
	for i := range r.s.drives {
		if d := &r.s.drives[i]; d.loaded {
			out = append(out, d.serial)
		}
	}
	return out
}

// CartridgeLost reports whether the robot has permanently lost the
// cartridge. A router consults it to steer requests at shards that
// still hold a live copy.
func (r *Runner) CartridgeLost(serial int64) bool { return r.s.dead[serial] }

// Headroom is the library's live capacity fraction — live drives over
// configured drives, 1 without lifecycle faults. It is the brownout
// admission state exposed to the routing tier: a router that divides a
// shard's load score by its headroom steers traffic away from degraded
// shards before their breakers start shedding it.
func (r *Runner) Headroom() float64 {
	if r.s.breaker == nil {
		return 1
	}
	return r.s.breaker.Headroom()
}
