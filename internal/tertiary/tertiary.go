// Package tertiary assembles the pieces into the system the paper's
// title promises: an online tertiary storage component that serves
// random object reads from a library of serpentine tapes. It supplies
// the context the scheduling algorithms run in — a volume catalog
// mapping objects to (cartridge, segment extent), a request queue, a
// batcher that groups pending requests by cartridge, a robot that
// mounts cartridges into a pool of emulated drives, and the paper's
// recommended scheduling policy (OPT for tiny batches, LOSS for
// medium, whole-tape READ for dense ones) applied to each mounted
// batch.
//
// The simulation is event-driven over virtual time: nothing sleeps,
// and a multi-hour workload evaluates in milliseconds.
package tertiary

import (
	"errors"
	"fmt"
	"sort"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
)

// Object is one catalog entry: a named extent on one cartridge.
type Object struct {
	// ID names the object.
	ID string
	// Tape is the cartridge serial holding the object.
	Tape int64
	// Start is the first segment of the extent.
	Start int
	// Segments is the extent length; 0 means 1.
	Segments int
}

func (o Object) segments() int {
	if o.Segments <= 0 {
		return 1
	}
	return o.Segments
}

// Catalog maps object IDs to extents.
type Catalog struct {
	objects map[string]Object
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{objects: make(map[string]Object)}
}

// Put registers or replaces an object.
func (c *Catalog) Put(o Object) error {
	if o.ID == "" {
		return errors.New("tertiary: object with empty ID")
	}
	c.objects[o.ID] = o
	return nil
}

// Get looks an object up.
func (c *Catalog) Get(id string) (Object, bool) {
	o, ok := c.objects[id]
	return o, ok
}

// Len returns the number of cataloged objects.
func (c *Catalog) Len() int { return len(c.objects) }

// Request is one read of a cataloged object.
type Request struct {
	// ObjectID names the object to read.
	ObjectID string
	// Arrival is the request's arrival time in virtual seconds.
	Arrival float64
}

// Completion reports one served request.
type Completion struct {
	Request
	// Object is the resolved catalog entry.
	Object Object
	// Done is the virtual time the transfer finished.
	Done float64
	// DriveID identifies the drive that served it.
	DriveID int
}

// Latency is the request's response time.
func (c Completion) Latency() float64 { return c.Done - c.Arrival }

// Metrics summarizes a library run.
type Metrics struct {
	// Served is the number of completed requests.
	Served int
	// Makespan is the virtual time the last drive went idle.
	Makespan float64
	// MeanLatency and MaxLatency summarize response times.
	MeanLatency float64
	MaxLatency  float64
	// Mounts is the number of cartridge mounts performed.
	Mounts int
	// Batches is the number of schedules executed.
	Batches int
	// BytesRead is the total data transferred.
	BytesRead int64
	// DriveBusySec is the summed busy time across drives.
	DriveBusySec float64
	// HeadPasses estimates total media wear in full-length passes.
	HeadPasses float64
}

// IOsPerHour is the delivered random-retrieval rate.
func (m Metrics) IOsPerHour() float64 {
	if m.Makespan == 0 {
		return 0
	}
	return float64(m.Served) / m.Makespan * 3600
}

// Config describes a library.
type Config struct {
	// Profile is the drive/cartridge format; zero value selects the
	// DLT4000.
	Profile geometry.Params
	// Tapes are the cartridge serials in the library.
	Tapes []int64
	// Drives is the transport count; 0 selects 1.
	Drives int
	// MountSec and UnmountSec are the robot exchange times around a
	// cartridge swap (load+thread, and rewind is charged separately
	// by the drive); defaults 30 s and 15 s, typical for mid-90s
	// libraries.
	MountSec   float64
	UnmountSec float64
	// BatchLimit caps how many pending requests are served per
	// mount; 0 means no cap.
	BatchLimit int
	// Scheduler orders each batch; nil selects the paper's Auto
	// policy.
	Scheduler core.Scheduler
}

// Library is an online tertiary store: a robot, a drive pool, tapes,
// and a catalog.
type Library struct {
	cfg     Config
	catalog *Catalog
	tapes   map[int64]*geometry.Tape
	models  map[int64]*locate.Model
	sched   core.Scheduler
}

// New builds the library, generating (standing in for "loading") every
// cartridge and characterizing it: each tape's locate model is built
// from its own key points, as the paper's Figure 9 shows it must be.
func New(cfg Config, catalog *Catalog) (*Library, error) {
	if cfg.Profile.Tracks == 0 {
		cfg.Profile = geometry.DLT4000()
	}
	if cfg.Drives <= 0 {
		cfg.Drives = 1
	}
	if cfg.MountSec == 0 {
		cfg.MountSec = 30
	}
	if cfg.UnmountSec == 0 {
		cfg.UnmountSec = 15
	}
	if len(cfg.Tapes) == 0 {
		return nil, errors.New("tertiary: library needs at least one tape")
	}
	if catalog == nil || catalog.Len() == 0 {
		return nil, errors.New("tertiary: library needs a non-empty catalog")
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewAuto()
	}
	l := &Library{
		cfg:     cfg,
		catalog: catalog,
		tapes:   make(map[int64]*geometry.Tape, len(cfg.Tapes)),
		models:  make(map[int64]*locate.Model, len(cfg.Tapes)),
		sched:   sched,
	}
	for _, serial := range cfg.Tapes {
		tape, err := geometry.Generate(cfg.Profile, serial)
		if err != nil {
			return nil, err
		}
		model, err := locate.FromKeyPoints(tape.KeyPoints())
		if err != nil {
			return nil, err
		}
		l.tapes[serial] = tape
		l.models[serial] = model
	}
	// Validate the catalog against the tapes.
	for id, o := range catalog.objects {
		tape, ok := l.tapes[o.Tape]
		if !ok {
			return nil, fmt.Errorf("tertiary: object %s on unknown tape %d", id, o.Tape)
		}
		if o.Start < 0 || o.Start+o.segments() > tape.Segments() {
			return nil, fmt.Errorf("tertiary: object %s extent [%d,%d) outside tape %d",
				id, o.Start, o.Start+o.segments(), o.Tape)
		}
	}
	return l, nil
}

// Tapes returns the cartridge serials in the library.
func (l *Library) Tapes() []int64 {
	out := make([]int64, 0, len(l.tapes))
	for s := range l.tapes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// driveState tracks one transport through the simulation.
type driveState struct {
	id      int
	clock   float64 // virtual time the drive becomes free
	mounted int64   // cartridge serial, 0 if empty
	dev     *drive.Drive
	passes  float64
	busy    float64
}

// pending is one unserved request resolved against the catalog.
type pending struct {
	req Request
	obj Object
}

// Run serves every request and returns the completions (in completion
// order) and run metrics. Requests may arrive at any time; the
// simulation processes them in batches grouped by cartridge,
// preferring the cartridge with the oldest waiting request among
// those with the most work, which bounds starvation while keeping
// batches dense.
func (l *Library) Run(requests []Request) ([]Completion, Metrics, error) {
	queue := make([]pending, 0, len(requests))
	for _, r := range requests {
		o, ok := l.catalog.Get(r.ObjectID)
		if !ok {
			return nil, Metrics{}, fmt.Errorf("tertiary: request for unknown object %q", r.ObjectID)
		}
		queue = append(queue, pending{req: r, obj: o})
	}
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].req.Arrival < queue[j].req.Arrival })

	drives := make([]*driveState, l.cfg.Drives)
	for i := range drives {
		drives[i] = &driveState{id: i}
	}

	var (
		done    []Completion
		metrics Metrics
	)
	for len(queue) > 0 {
		// The next drive to become free takes the next batch.
		d := drives[0]
		for _, cand := range drives[1:] {
			if cand.clock < d.clock {
				d = cand
			}
		}
		// Requests visible to this mount decision: those that have
		// arrived by the time the drive is free; if none, the drive
		// waits for the next arrival.
		now := d.clock
		if queue[0].req.Arrival > now {
			now = queue[0].req.Arrival
		}
		visible := 0
		for visible < len(queue) && queue[visible].req.Arrival <= now {
			visible++
		}

		serial := l.pickTape(queue[:visible])
		batch, rest := splitBatch(queue, visible, serial, l.cfg.BatchLimit)
		queue = rest

		completions, busy, passes, err := l.serveBatch(d, serial, now, batch)
		if err != nil {
			return nil, Metrics{}, err
		}
		done = append(done, completions...)
		d.clock = now + busy
		d.busy += busy
		d.passes += passes
		metrics.Mounts++
		metrics.Batches++
	}

	for _, d := range drives {
		if d.clock > metrics.Makespan {
			metrics.Makespan = d.clock
		}
		metrics.DriveBusySec += d.busy
		metrics.HeadPasses += d.passes
	}
	var latSum float64
	for _, c := range done {
		metrics.Served++
		lat := c.Latency()
		latSum += lat
		if lat > metrics.MaxLatency {
			metrics.MaxLatency = lat
		}
		metrics.BytesRead += int64(c.Object.segments()) * l.cfg.Profile.SegmentBytes
	}
	if metrics.Served > 0 {
		metrics.MeanLatency = latSum / float64(metrics.Served)
	}
	sort.SliceStable(done, func(i, j int) bool { return done[i].Done < done[j].Done })
	return done, metrics, nil
}

// pickTape chooses the cartridge to mount next: the one with the most
// visible pending requests, ties broken by the oldest waiting request
// so no cartridge starves.
func (l *Library) pickTape(visible []pending) int64 {
	count := make(map[int64]int)
	oldest := make(map[int64]float64)
	for _, p := range visible {
		count[p.obj.Tape]++
		if t, ok := oldest[p.obj.Tape]; !ok || p.req.Arrival < t {
			oldest[p.obj.Tape] = p.req.Arrival
		}
	}
	best := int64(0)
	for serial := range count {
		if best == 0 {
			best = serial
			continue
		}
		switch {
		case count[serial] > count[best]:
			best = serial
		case count[serial] == count[best] && oldest[serial] < oldest[best]:
			best = serial
		case count[serial] == count[best] && oldest[serial] == oldest[best] && serial < best:
			best = serial
		}
	}
	return best
}

// splitBatch removes up to limit visible requests for the chosen
// cartridge from the queue head region.
func splitBatch(queue []pending, visible int, serial int64, limit int) (batch, rest []pending) {
	for i, p := range queue {
		if i < visible && p.obj.Tape == serial && (limit <= 0 || len(batch) < limit) {
			batch = append(batch, p)
		} else {
			rest = append(rest, p)
		}
	}
	return batch, rest
}

// serveBatch mounts the cartridge (if needed), schedules the batch
// with the policy, executes it on the emulated drive, rewinds and
// keeps the cartridge mounted for a possible next batch. It returns
// the completions and the busy time consumed.
func (l *Library) serveBatch(d *driveState, serial int64, start float64, batch []pending) ([]Completion, float64, float64, error) {
	busy := 0.0
	if d.mounted != serial {
		if d.mounted != 0 {
			// Rewind (the drive charges it) and unload.
			busy += d.dev.Rewind() + l.cfg.UnmountSec
		}
		busy += l.cfg.MountSec
		d.dev = drive.New(l.tapes[serial])
		d.mounted = serial
	}
	d.dev.ResetClock()

	// One scheduling problem per distinct extent length: the paper's
	// model schedules fixed-size requests; mixed sizes are served
	// size class by size class, largest batch first.
	byLen := make(map[int][]pending)
	for _, p := range batch {
		byLen[p.obj.segments()] = append(byLen[p.obj.segments()], p)
	}
	var lens []int
	for k := range byLen {
		lens = append(lens, k)
	}
	sort.Slice(lens, func(i, j int) bool { return len(byLen[lens[i]]) > len(byLen[lens[j]]) })

	model := l.models[serial]
	var completions []Completion
	for _, rl := range lens {
		group := byLen[rl]
		reqs := make([]int, len(group))
		byStart := make(map[int][]pending)
		for i, p := range group {
			reqs[i] = p.obj.Start
			byStart[p.obj.Start] = append(byStart[p.obj.Start], p)
		}
		prob := &core.Problem{Start: d.dev.Position(), Requests: reqs, ReadLen: rl, Cost: model}
		plan, err := l.sched.Schedule(prob)
		if err != nil {
			return nil, 0, 0, err
		}
		if plan.WholeTape {
			elapsed, err := d.dev.ReadEntireTape()
			if err != nil {
				return nil, 0, 0, err
			}
			// Every request in this size class completes by the end
			// of the pass.
			for _, p := range group {
				completions = append(completions, Completion{
					Request: p.req, Object: p.obj, Done: start + busy + elapsed, DriveID: d.id,
				})
			}
			busy += elapsed
			continue
		}
		for _, lbn := range plan.Order {
			lt, err := d.dev.Locate(lbn)
			if err != nil {
				return nil, 0, 0, err
			}
			rt, err := d.dev.Read(rl)
			if err != nil {
				return nil, 0, 0, err
			}
			busy += lt + rt
			ps := byStart[lbn]
			p := ps[0]
			byStart[lbn] = ps[1:]
			completions = append(completions, Completion{
				Request: p.req, Object: p.obj, Done: start + busy, DriveID: d.id,
			})
		}
	}
	passes := d.dev.Stats().HeadPasses(l.cfg.Profile)
	return completions, busy, passes, nil
}
