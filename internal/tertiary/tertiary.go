// Package tertiary assembles the pieces into the system the paper's
// title promises: an online tertiary storage component that serves
// random object reads from a library of serpentine tapes. It supplies
// the context the scheduling algorithms run in — a volume catalog
// mapping objects to (cartridge, segment extent), a bounded admission
// queue, a batcher that groups pending requests by cartridge, a robot
// arm that exchanges cartridges into a pool of emulated drives one at
// a time, and the paper's recommended scheduling policy (OPT for tiny
// batches, LOSS for medium, whole-tape READ for dense ones) applied
// to each mounted batch through the recovering executor, so fault
// retries, replans and scheduler degradation compose with mounting.
//
// The simulation is event-driven over virtual time: per-drive state
// machines advance over a shared event heap, nothing sleeps, and a
// multi-hour workload evaluates in milliseconds.
package tertiary

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"serpentine/internal/core"
	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/obs"
	"serpentine/internal/server"
	"serpentine/internal/sim"
)

// Object is one catalog entry: a named extent on one cartridge.
type Object struct {
	// ID names the object.
	ID string
	// Tape is the cartridge serial holding the object.
	Tape int64
	// Start is the first segment of the extent.
	Start int
	// Segments is the extent length; 0 means 1.
	Segments int
}

func (o Object) segments() int {
	if o.Segments <= 0 {
		return 1
	}
	return o.Segments
}

// Catalog maps object IDs to extents.
type Catalog struct {
	objects map[string]Object
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{objects: make(map[string]Object)}
}

// Put registers or replaces an object.
func (c *Catalog) Put(o Object) error {
	if o.ID == "" {
		return errors.New("tertiary: object with empty ID")
	}
	c.objects[o.ID] = o
	return nil
}

// Get looks an object up.
func (c *Catalog) Get(id string) (Object, bool) {
	o, ok := c.objects[id]
	return o, ok
}

// Len returns the number of cataloged objects.
func (c *Catalog) Len() int { return len(c.objects) }

// All returns every cataloged object sorted by (Tape, Start, ID) —
// physical layout order, the order a staging tier prefetches along.
func (c *Catalog) All() []Object {
	out := make([]Object, 0, len(c.objects))
	for _, o := range c.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Tape != b.Tape {
			return a.Tape < b.Tape
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
	return out
}

// Request is one read of a cataloged object.
type Request struct {
	// ObjectID names the object to read.
	ObjectID string
	// Arrival is the request's arrival time in virtual seconds.
	Arrival float64
	// Deadline is the absolute virtual time after which serving the
	// request is pointless; a request still queued past it is shed at
	// batch-cut time rather than dispatched. 0 means no deadline (the
	// default; see Config.DeadlineSec for a stream-wide budget).
	Deadline float64
	// BestEffort marks work the library may shed first under degraded
	// capacity: while any drive is down the brownout admission state
	// sheds best-effort arrivals, and while every drive is down it
	// sheds everything (see Config.Lifecycle).
	BestEffort bool
}

// Class names the request's service class for wide events and SLO
// objectives: "best-effort" or "standard".
func (r Request) Class() string {
	if r.BestEffort {
		return "best-effort"
	}
	return "standard"
}

// Completion reports one served request.
type Completion struct {
	Request
	// Object is the resolved catalog entry.
	Object Object
	// Done is the virtual time the transfer finished.
	Done float64
	// DriveID identifies the drive that served it.
	DriveID int
	// Attribution decomposes the request's sojourn into phases; the
	// components sum back to Latency() (see AttributionError).
	Attribution Attribution
}

// Latency is the request's response time.
func (c Completion) Latency() float64 { return c.Done - c.Arrival }

// Metrics summarizes a library run.
type Metrics struct {
	// Served is the number of completed requests.
	Served int
	// Failed is the number of requests abandoned permanently by the
	// executor (media errors, retry exhaustion past the replan
	// budget); 0 on a fault-free run.
	Failed int
	// Rejected is the number of requests shed at admission because
	// the library's pending backlog was at QueueCap.
	Rejected int
	// Shed is the number of requests dropped deliberately: refused by
	// the brownout admission breaker while drives were down, or
	// expired past their deadline while still queued. Served + Failed
	// + Rejected + Shed partitions the offered stream.
	Shed int
	// Rescued counts requests stranded by a drive dying mid-batch and
	// returned to the backlog (a request rescued twice counts twice);
	// every rescued request is eventually served, shed or failed and
	// is counted there too.
	Rescued int
	// ReplicaReads counts requests served from a non-primary replica
	// after their primary cartridge was lost or its extent hit a
	// permanent media defect.
	ReplicaReads int
	// LostCartridges counts cartridges the robot permanently lost
	// (failed fetches); DriveFailures counts drive outages that
	// affected operation; RobotStalls counts arm stalls that extended
	// an exchange.
	LostCartridges int
	DriveFailures  int
	RobotStalls    int
	// Makespan is the virtual time the last drive went idle.
	Makespan float64
	// MeanLatency and MaxLatency summarize response times.
	MeanLatency float64
	MaxLatency  float64
	// Mounts counts cartridge exchanges into a drive; Unmounts the
	// exchanges out. A cartridge that stays mounted across
	// consecutive batches counts one mount, however many batches it
	// serves.
	Mounts   int
	Unmounts int
	// Batches is the number of schedules executed.
	Batches int
	// RobotMoves counts robot arm trips (one per mount and one per
	// unmount); RobotBusySec is the arm's total exchange time and
	// RobotWaitSec the time drives spent queued for the busy arm.
	RobotMoves   int
	RobotBusySec float64
	RobotWaitSec float64
	// Retries, Replans, Recalibrations and Fallbacks total the
	// executor's recovery work across every batch; RecoverySec is the
	// virtual time it consumed.
	Retries        int
	Replans        int
	Recalibrations int
	Fallbacks      int
	RecoverySec    float64
	// MaxQueueDepth is the pending backlog's high-water mark.
	MaxQueueDepth int
	// BytesRead is the total data transferred.
	BytesRead int64
	// DriveBusySec is the summed busy time across drives (service
	// plus exchange overhead).
	DriveBusySec float64
	// HeadPasses estimates total media wear in full-length passes.
	HeadPasses float64
}

// IOsPerHour is the delivered random-retrieval rate.
func (m Metrics) IOsPerHour() float64 {
	if m.Makespan == 0 {
		return 0
	}
	return float64(m.Served) / m.Makespan * 3600
}

// Config describes a library.
type Config struct {
	// Profile is the drive/cartridge format; zero value selects the
	// DLT4000.
	Profile geometry.Params
	// Tapes are the cartridge serials in the library.
	Tapes []int64
	// Drives is the transport count; 0 selects 1.
	Drives int
	// MountSec and UnmountSec are the robot exchange times around a
	// cartridge swap (load+thread, and rewind is charged separately
	// by the drive); defaults 30 s and 15 s, typical for mid-90s
	// libraries. The robot arm performs one exchange at a time:
	// concurrent swaps queue for it.
	MountSec   float64
	UnmountSec float64
	// BatchLimit caps how many pending requests are served per
	// mount; 0 means no cap.
	BatchLimit int
	// Scheduler orders each batch; nil selects the paper's Auto
	// policy.
	Scheduler core.Scheduler
	// Policy selects when batches are cut: QuiesceThenReplan (the
	// default) dispatches an idle drive as soon as work is queued,
	// ReplanOnArrival serves one request per dispatch so every
	// service decision sees the freshest queue, and FixedWindow only
	// dispatches at multiples of WindowSec.
	Policy server.BatchPolicy
	// WindowSec is the FixedWindow period; 0 selects 600.
	WindowSec float64
	// QueueCap bounds the library's pending backlog (admitted but
	// not yet dispatched); arrivals beyond it are rejected. 0 means
	// unbounded.
	QueueCap int
	// Retry bounds the executor's fault recovery per batch.
	Retry sim.RetryPolicy
	// Faults arms every mounted drive with an injector when any rate
	// is non-zero; each mount derives its own injector seed from
	// Faults.Seed, the cartridge serial, the drive and the mount
	// ordinal.
	Faults fault.Config
	// Lifecycle arms component lifecycle faults when any rate is
	// non-zero: drives fail and repair on seeded MTTF/MTTR processes
	// (unfinished batch requests are unloaded and rescued onto
	// surviving drives), the robot arm stalls, cartridges are
	// permanently lost by failed fetches, and cartridges carry
	// permanent bad-spot regions. The zero value changes nothing: a
	// run with all rates zero is bit-identical to one without the
	// field. The analytical twin (Estimate) ignores lifecycle faults.
	Lifecycle fault.LifecycleConfig
	// Placement maps objects to extra replicas on distinct
	// cartridges; with it, a lost cartridge or permanent media defect
	// degrades the read to a surviving replica (an extra mount)
	// instead of failing the request. nil means no replicas.
	Placement *Placement
	// DeadlineSec, when positive, gives every request without an
	// explicit Deadline a budget of Arrival + DeadlineSec; a request
	// still queued past its deadline is shed at batch-cut time. 0
	// disables the default — only explicit per-request deadlines are
	// enforced. The recommended budget is sim.DefaultRequestTimeoutSec,
	// the same constant bounding the executor's per-request drive time.
	DeadlineSec float64
	// Reg receives the run's metrics; nil creates a fresh registry.
	Reg *obs.Registry
	// Labels are added to every metric series the run emits; the
	// sweep passes the cell coordinates here.
	Labels []obs.Label
	// TraceCap, when positive, attaches a bounded trace of the most
	// recent drive operations to the registry.
	TraceCap int
	// Spans, when non-nil, records the run as hierarchical
	// virtual-time spans: the run, per-drive batches on their own
	// lanes, robot waits and exchanges, the executor's recovery
	// phases, every drive primitive as a leaf, and one span per
	// request from arrival to completion carrying its latency
	// attribution. Tracing is pure accounting and changes no
	// simulated timing bit.
	Spans *obs.Tracer
	// SpanTrace, when non-nil, records the run's spans into this
	// existing trace instead of starting a new one on Spans: the fleet
	// layer passes its own trace handle so every shard's run span nests
	// under the fleet span. SpanParent, when non-nil, becomes the run
	// root span's parent — it must outlive the run. Zero values leave
	// single-library tracing exactly as before.
	SpanTrace  *obs.TraceHandle
	SpanParent *obs.SpanHandle
	// Lane offsets every span lane the run assigns: the run span lands
	// on Lane, drive i on Lane+1+i. The fleet gives each shard a
	// disjoint lane block so parallel shards render as parallel row
	// groups; 0 (the default) keeps the historical lane numbering.
	Lane int
	// Events, when non-nil, receives one wide event per request
	// reaching a terminal state (served, failed, rejected, shed) —
	// the canonical per-request record carrying identity, placement,
	// outcome and the full latency attribution vector. Like spans,
	// emission is pure accounting: it changes no simulated timing
	// bit, and a nil ring costs nothing.
	Events *obs.EventRing
	// Shard stamps every emitted wide event with the library's fleet
	// shard; 0 outside a fleet.
	Shard int
}

// withDefaults resolves the zero-value fields.
func (cfg Config) withDefaults() Config {
	if cfg.Profile.Tracks == 0 {
		cfg.Profile = geometry.DLT4000()
	}
	if cfg.Drives <= 0 {
		cfg.Drives = 1
	}
	if cfg.MountSec == 0 {
		cfg.MountSec = 30
	}
	if cfg.UnmountSec == 0 {
		cfg.UnmountSec = 15
	}
	if cfg.WindowSec == 0 {
		cfg.WindowSec = 600
	}
	return cfg
}

// Library is an online tertiary store: a robot, a drive pool, tapes,
// and a catalog.
type Library struct {
	cfg     Config
	catalog *Catalog
	tapes   map[int64]*geometry.Tape
	models  map[int64]*locate.Model
	sched   core.Scheduler
}

// New builds the library, generating (standing in for "loading") every
// cartridge and characterizing it: each tape's locate model is built
// from its own key points, as the paper's Figure 9 shows it must be.
func New(cfg Config, catalog *Catalog) (*Library, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Tapes) == 0 {
		return nil, errors.New("tertiary: library needs at least one tape")
	}
	if catalog == nil || catalog.Len() == 0 {
		return nil, errors.New("tertiary: library needs a non-empty catalog")
	}
	if cfg.MountSec < 0 || cfg.UnmountSec < 0 ||
		math.IsNaN(cfg.MountSec) || math.IsNaN(cfg.UnmountSec) ||
		math.IsInf(cfg.MountSec, 0) || math.IsInf(cfg.UnmountSec, 0) {
		return nil, fmt.Errorf("tertiary: exchange times %g/%g s", cfg.MountSec, cfg.UnmountSec)
	}
	if cfg.WindowSec < 0 || math.IsNaN(cfg.WindowSec) || math.IsInf(cfg.WindowSec, 0) {
		return nil, fmt.Errorf("tertiary: window of %g seconds", cfg.WindowSec)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("tertiary: faults: %w", err)
	}
	if err := cfg.Lifecycle.Validate(); err != nil {
		return nil, fmt.Errorf("tertiary: lifecycle: %w", err)
	}
	if cfg.DeadlineSec < 0 || math.IsNaN(cfg.DeadlineSec) || math.IsInf(cfg.DeadlineSec, 0) {
		return nil, fmt.Errorf("tertiary: deadline budget of %g seconds", cfg.DeadlineSec)
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewAuto()
	}
	l := &Library{
		cfg:     cfg,
		catalog: catalog,
		tapes:   make(map[int64]*geometry.Tape, len(cfg.Tapes)),
		models:  make(map[int64]*locate.Model, len(cfg.Tapes)),
		sched:   sched,
	}
	for _, serial := range cfg.Tapes {
		if _, dup := l.tapes[serial]; dup {
			return nil, fmt.Errorf("tertiary: duplicate tape serial %d", serial)
		}
		tape, err := geometry.Generate(cfg.Profile, serial)
		if err != nil {
			return nil, err
		}
		model, err := locate.FromKeyPoints(tape.KeyPoints())
		if err != nil {
			return nil, err
		}
		l.tapes[serial] = tape
		l.models[serial] = model
	}
	// Validate the catalog against the tapes.
	for id, o := range catalog.objects {
		tape, ok := l.tapes[o.Tape]
		if !ok {
			return nil, fmt.Errorf("tertiary: object %s on unknown tape %d", id, o.Tape)
		}
		if o.Start < 0 || o.Start+o.segments() > tape.Segments() {
			return nil, fmt.Errorf("tertiary: object %s extent [%d,%d) outside tape %d",
				id, o.Start, o.Start+o.segments(), o.Tape)
		}
	}
	if err := cfg.Placement.validate(l); err != nil {
		return nil, err
	}
	return l, nil
}

// Config returns a copy of the library's resolved configuration (zero
// values replaced by defaults). The staging tier reads it to inherit
// the library's registry, labels and span wiring, and to re-Clone the
// library with the cache span as the run span's parent.
func (l *Library) Config() Config { return l.cfg }

// Objects returns the catalog's entries in layout order (see
// Catalog.All).
func (l *Library) Objects() []Object { return l.catalog.All() }

// RefetchSec is the modeled cost of fetching the object from tape
// again: a locate from the load point to the extent plus the extent's
// streaming transfer, priced on the tape's own cost model — the same
// model the analytical twin (Estimate) prices reads with. It is the
// cost-aware eviction policy's currency: evicting an object that is
// cheap to re-fetch risks little, evicting one far down the tape
// risks a long locate. The mount exchange is deliberately excluded —
// it amortizes over whatever batch the re-fetch would join. Objects
// on unknown tapes cost 0.
func (l *Library) RefetchSec(o Object) float64 {
	model, ok := l.models[o.Tape]
	if !ok {
		return 0
	}
	cost := model.LocateTime(0, o.Start)
	for k := 0; k < o.segments(); k++ {
		cost += model.ReadTime(o.Start + k)
	}
	return cost
}

// Tapes returns the cartridge serials in the library.
func (l *Library) Tapes() []int64 {
	out := make([]int64, 0, len(l.tapes))
	for s := range l.tapes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pending is one unserved request resolved against the catalog.
// replica is the copy currently targeted: 0 is the catalog primary,
// k > 0 the k-th placement replica (obj is kept in sync). rescueSec
// accumulates virtual time lost to aborted serve attempts — batches
// cut short by a drive death, reads redirected to a replica after a
// media failure — attributed separately from queueing when the
// request finally completes.
type pending struct {
	req       Request
	obj       Object
	replica   int
	rescueSec float64
	// route is the routing tier's decision for the request
	// ("affinity", "cross-shard", ...), carried through to the wide
	// event; "" outside a fleet.
	route string
}
