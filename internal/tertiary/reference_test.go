package tertiary

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/geometry"
	"serpentine/internal/workload"
)

// This file carries a copy of the seed implementation's run loop, so
// the rebuilt event-driven library can be pinned to it: on a
// fault-free single-drive run with a duplicate-free stream, the new
// loop must produce the same served set, completion times, makespan
// and byte counts. Two deliberate deviations from the seed are NOT
// replicated here: the size-class service order breaks ties
// deterministically (count desc, then extent length asc — the seed
// left ties to map iteration order), and completion-time sums may
// differ by float association, which is why times are compared within
// 1e-6 rather than bit-exactly.

// refDriveState mirrors the seed's driveState, sentinel and all.
type refDriveState struct {
	id      int
	clock   float64
	mounted int64
	dev     *drive.Drive
	busy    float64
}

// refRun is the seed implementation's Run.
func refRun(l *Library, requests []Request) ([]Completion, Metrics, error) {
	queue := make([]pending, 0, len(requests))
	for _, r := range requests {
		o, ok := l.catalog.Get(r.ObjectID)
		if !ok {
			return nil, Metrics{}, fmt.Errorf("tertiary: request for unknown object %q", r.ObjectID)
		}
		queue = append(queue, pending{req: r, obj: o})
	}
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].req.Arrival < queue[j].req.Arrival })

	drives := make([]*refDriveState, l.cfg.Drives)
	for i := range drives {
		drives[i] = &refDriveState{id: i}
	}

	var (
		done    []Completion
		metrics Metrics
	)
	for len(queue) > 0 {
		d := drives[0]
		for _, cand := range drives[1:] {
			if cand.clock < d.clock {
				d = cand
			}
		}
		now := d.clock
		if queue[0].req.Arrival > now {
			now = queue[0].req.Arrival
		}
		visible := 0
		for visible < len(queue) && queue[visible].req.Arrival <= now {
			visible++
		}

		serial := refPickTape(queue[:visible])
		batch, rest := refSplitBatch(queue, visible, serial, l.cfg.BatchLimit)
		queue = rest

		completions, busy, err := refServeBatch(l, d, serial, now, batch)
		if err != nil {
			return nil, Metrics{}, err
		}
		done = append(done, completions...)
		d.clock = now + busy
		d.busy += busy
		metrics.Mounts++
		metrics.Batches++
	}

	for _, d := range drives {
		if d.clock > metrics.Makespan {
			metrics.Makespan = d.clock
		}
		metrics.DriveBusySec += d.busy
	}
	var latSum float64
	for _, c := range done {
		metrics.Served++
		lat := c.Latency()
		latSum += lat
		if lat > metrics.MaxLatency {
			metrics.MaxLatency = lat
		}
		metrics.BytesRead += int64(c.Object.segments()) * l.cfg.Profile.SegmentBytes
	}
	if metrics.Served > 0 {
		metrics.MeanLatency = latSum / float64(metrics.Served)
	}
	sort.SliceStable(done, func(i, j int) bool { return done[i].Done < done[j].Done })
	return done, metrics, nil
}

func refPickTape(visible []pending) int64 {
	count := make(map[int64]int)
	oldest := make(map[int64]float64)
	for _, p := range visible {
		count[p.obj.Tape]++
		if t, ok := oldest[p.obj.Tape]; !ok || p.req.Arrival < t {
			oldest[p.obj.Tape] = p.req.Arrival
		}
	}
	best := int64(0)
	for serial := range count {
		if best == 0 {
			best = serial
			continue
		}
		switch {
		case count[serial] > count[best]:
			best = serial
		case count[serial] == count[best] && oldest[serial] < oldest[best]:
			best = serial
		case count[serial] == count[best] && oldest[serial] == oldest[best] && serial < best:
			best = serial
		}
	}
	return best
}

func refSplitBatch(queue []pending, visible int, serial int64, limit int) (batch, rest []pending) {
	for i, p := range queue {
		if i < visible && p.obj.Tape == serial && (limit <= 0 || len(batch) < limit) {
			batch = append(batch, p)
		} else {
			rest = append(rest, p)
		}
	}
	return batch, rest
}

func refServeBatch(l *Library, d *refDriveState, serial int64, start float64, batch []pending) ([]Completion, float64, error) {
	busy := 0.0
	if d.mounted != serial {
		if d.mounted != 0 {
			busy += d.dev.Rewind() + l.cfg.UnmountSec
		}
		busy += l.cfg.MountSec
		d.dev = drive.New(l.tapes[serial])
		d.mounted = serial
	}
	d.dev.ResetClock()

	byLen := make(map[int][]pending)
	for _, p := range batch {
		byLen[p.obj.segments()] = append(byLen[p.obj.segments()], p)
	}
	var lens []int
	for k := range byLen {
		lens = append(lens, k)
	}
	// Deterministic deviation from the seed: ties sorted by length.
	sort.Slice(lens, func(i, j int) bool {
		if len(byLen[lens[i]]) != len(byLen[lens[j]]) {
			return len(byLen[lens[i]]) > len(byLen[lens[j]])
		}
		return lens[i] < lens[j]
	})

	model := l.models[serial]
	var completions []Completion
	for _, rl := range lens {
		group := byLen[rl]
		reqs := make([]int, len(group))
		byStart := make(map[int][]pending)
		for i, p := range group {
			reqs[i] = p.obj.Start
			byStart[p.obj.Start] = append(byStart[p.obj.Start], p)
		}
		prob := &core.Problem{Start: d.dev.Position(), Requests: reqs, ReadLen: rl, Cost: model}
		plan, err := l.sched.Schedule(prob)
		if err != nil {
			return nil, 0, err
		}
		if plan.WholeTape {
			elapsed, err := d.dev.ReadEntireTape()
			if err != nil {
				return nil, 0, err
			}
			for _, p := range group {
				completions = append(completions, Completion{
					Request: p.req, Object: p.obj, Done: start + busy + elapsed, DriveID: d.id,
				})
			}
			busy += elapsed
			continue
		}
		for _, lbn := range plan.Order {
			lt, err := d.dev.Locate(lbn)
			if err != nil {
				return nil, 0, err
			}
			rt, err := d.dev.Read(rl)
			if err != nil {
				return nil, 0, err
			}
			busy += lt + rt
			ps := byStart[lbn]
			p := ps[0]
			byStart[lbn] = ps[1:]
			completions = append(completions, Completion{
				Request: p.req, Object: p.obj, Done: start + busy, DriveID: d.id,
			})
		}
	}
	return completions, busy, nil
}

// equivStream builds a duplicate-free request stream over the catalog
// (duplicates are the seed's bug 1; with them the physical op
// sequences legitimately differ).
func equivStream(cfg Config, perTape, n int, spreadSec float64, seed int64) []Request {
	var ids []string
	for _, serial := range cfg.Tapes {
		for i := 0; i < perTape; i++ {
			ids = append(ids, fmt.Sprintf("t%d/o%d", serial, i))
		}
	}
	if n > len(ids) {
		n = len(ids)
	}
	arr, err := workload.PoissonArrivals(1, n, seed)
	if err != nil {
		panic(err)
	}
	reqs := make([]Request, n)
	for i := 0; i < n; i++ {
		reqs[i] = Request{
			ObjectID: ids[(i*13)%len(ids)],
			Arrival:  arr[i] / 1 * spreadSec / float64(n),
		}
	}
	return reqs
}

// TestEquivalenceWithSeedImplementation pins the rebuilt fault-free
// single-drive library to the seed implementation: same catalog,
// requests and seed give the same served set, completion times and
// makespan. (Mount counts intentionally differ — counting them per
// batch was bug 2.)
func TestEquivalenceWithSeedImplementation(t *testing.T) {
	cases := []struct {
		name    string
		perTape int
		limit   int
		spread  float64
		mixed   bool
	}{
		{"all-at-once-unlimited", 24, 0, 0, false},
		{"all-at-once-limit-5", 24, 5, 0, false},
		{"spread-arrivals", 24, 8, 5000, false},
		{"mixed-sizes", 12, 0, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg(1)
			cfg.BatchLimit = tc.limit
			var cat *Catalog
			if tc.mixed {
				cat = NewCatalog()
				for _, serial := range cfg.Tapes {
					tape := geometry.MustGenerate(cfg.Profile, serial)
					stride := tape.Segments() / tc.perTape
					for i := 0; i < tc.perTape; i++ {
						segs := 1
						if i%3 == 0 {
							segs = 4
						}
						if err := cat.Put(Object{
							ID:       fmt.Sprintf("t%d/o%d", serial, i),
							Tape:     serial,
							Start:    i * stride,
							Segments: segs,
						}); err != nil {
							t.Fatal(err)
						}
					}
				}
			} else {
				cat = smallCatalog(t, cfg, tc.perTape)
			}
			reqs := equivStream(cfg, tc.perTape, 2*tc.perTape, tc.spread, 42)

			refLib, err := New(cfg, cat)
			if err != nil {
				t.Fatal(err)
			}
			wantDone, wantM, err := refRun(refLib, reqs)
			if err != nil {
				t.Fatal(err)
			}

			newLib, err := New(cfg, cat)
			if err != nil {
				t.Fatal(err)
			}
			gotDone, gotM, err := newLib.Run(reqs)
			if err != nil {
				t.Fatal(err)
			}

			if len(gotDone) != len(wantDone) {
				t.Fatalf("served %d, seed served %d", len(gotDone), len(wantDone))
			}
			for i := range gotDone {
				g, w := gotDone[i], wantDone[i]
				if g.ObjectID != w.ObjectID || g.Arrival != w.Arrival || g.DriveID != w.DriveID {
					t.Fatalf("completion %d: got %+v, seed %+v", i, g, w)
				}
				if math.Abs(g.Done-w.Done) > 1e-6 {
					t.Fatalf("completion %d (%s): done %.9f, seed %.9f", i, g.ObjectID, g.Done, w.Done)
				}
			}
			if gotM.Served != wantM.Served || gotM.Batches != wantM.Batches || gotM.BytesRead != wantM.BytesRead {
				t.Fatalf("metrics diverge: got %+v\nseed %+v", gotM, wantM)
			}
			if math.Abs(gotM.Makespan-wantM.Makespan) > 1e-6 {
				t.Fatalf("makespan %.9f, seed %.9f", gotM.Makespan, wantM.Makespan)
			}
			if gotM.Failed != 0 || gotM.Rejected != 0 {
				t.Fatalf("fault-free unbounded run lost requests: %+v", gotM)
			}
		})
	}
}
