// Package rand48 reimplements the Solaris/SVID lrand48 family of
// pseudorandom number generators. The paper's simulation experiments
// (Section 5, Figure 3) seed lrand48 and draw uniformly distributed
// segment numbers from it; reproducing the generator bit-for-bit keeps
// our experiment loop faithful to the original.
//
// The generator is the 48-bit linear congruential generator
//
//	X(n+1) = (a*X(n) + c) mod 2^48
//
// with a = 0x5DEECE66D and c = 0xB. lrand48 returns the high 31 bits,
// drand48 converts all 48 bits to a float in [0,1).
package rand48

const (
	multiplier = 0x5DEECE66D
	increment  = 0xB
	mask48     = 1<<48 - 1

	// seedLow is the constant low 16 bits installed by srand48.
	seedLow = 0x330E
)

// Source is a drop-in for the Solaris lrand48 generator. The zero
// value behaves like a generator seeded with srand48(0).
//
// Source is not safe for concurrent use; each goroutine in the
// simulator owns its own Source.
type Source struct {
	state  uint64
	seeded bool
}

// New returns a Source seeded as if by srand48(seed): the high 32 bits
// of the state are the low 32 bits of the seed and the low 16 bits are
// the constant 0x330E.
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator state exactly as srand48 does.
func (s *Source) Seed(seed int64) {
	s.state = (uint64(uint32(seed))<<16 | seedLow) & mask48
	s.seeded = true
}

func (s *Source) step() uint64 {
	if !s.seeded {
		s.Seed(0)
	}
	s.state = (s.state*multiplier + increment) & mask48
	return s.state
}

// Lrand48 returns a non-negative long integer uniformly distributed
// over [0, 2^31), exactly as lrand48(3C).
func (s *Source) Lrand48() int64 {
	return int64(s.step() >> 17)
}

// Mrand48 returns a signed long integer uniformly distributed over
// [-2^31, 2^31), exactly as mrand48(3C).
func (s *Source) Mrand48() int64 {
	return int64(int32(s.step() >> 16))
}

// Drand48 returns a float64 uniformly distributed over [0, 1),
// exactly as drand48(3C).
func (s *Source) Drand48() float64 {
	return float64(s.step()) / (1 << 48)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. The paper's experiment draws segment numbers in
// [0, 622058); this helper applies the classic modulo reduction that a
// 1996 C program would have used (lrand48() % n). For n far below
// 2^31 the modulo bias is negligible (< 3e-4 for the tape sizes here),
// and matching the original arithmetic matters more than removing it.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rand48: Intn with non-positive n")
	}
	return int(s.Lrand48() % int64(n))
}

// Perm returns a pseudorandom permutation of [0, n) using the
// Fisher-Yates shuffle driven by this source.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Int63 makes Source satisfy the shape of math/rand.Source64 users
// that only need 63 uniform bits; it concatenates two generator steps.
func (s *Source) Int63() int64 {
	hi := s.step() >> 17 // 31 bits
	lo := s.step() >> 16 // 32 bits
	return int64(hi<<32 | lo)
}
