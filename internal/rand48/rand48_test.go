package rand48

import (
	"testing"
	"testing/quick"
)

// step48 is an independent reimplementation of the SVID generator
// used to cross-check Source.
func step48(state uint64) uint64 {
	return (state*0x5DEECE66D + 0xB) & (1<<48 - 1)
}

func TestLrand48MatchesDefinition(t *testing.T) {
	s := New(0)
	state := uint64(0x330E) // srand48(0)
	for i := 0; i < 1000; i++ {
		state = step48(state)
		want := int64(state >> 17)
		if got := s.Lrand48(); got != want {
			t.Fatalf("step %d: Lrand48() = %d, want %d", i, got, want)
		}
	}
}

func TestSeedInstallsSrand48State(t *testing.T) {
	s := New(12345)
	state := uint64(12345)<<16 | 0x330E
	state = step48(state)
	if got, want := s.Lrand48(), int64(state>>17); got != want {
		t.Fatalf("first draw after seed = %d, want %d", got, want)
	}
}

func TestSeedUsesLow32BitsOfSeed(t *testing.T) {
	// srand48 takes a long but installs only 32 bits.
	a := New(1)
	b := New(1 + (1 << 32))
	for i := 0; i < 10; i++ {
		if a.Lrand48() != b.Lrand48() {
			t.Fatal("seeds equal mod 2^32 must generate identical streams")
		}
	}
}

func TestZeroValueBehavesAsSeedZero(t *testing.T) {
	var zero Source
	seeded := New(0)
	for i := 0; i < 10; i++ {
		if zero.Lrand48() != seeded.Lrand48() {
			t.Fatal("zero-value Source must behave like New(0)")
		}
	}
}

func TestLrand48Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		v := s.Lrand48()
		if v < 0 || v >= 1<<31 {
			t.Fatalf("Lrand48() = %d out of [0, 2^31)", v)
		}
	}
}

func TestMrand48Range(t *testing.T) {
	s := New(99)
	sawNeg, sawPos := false, false
	for i := 0; i < 10000; i++ {
		v := s.Mrand48()
		if v < -(1<<31) || v >= 1<<31 {
			t.Fatalf("Mrand48() = %d out of [-2^31, 2^31)", v)
		}
		if v < 0 {
			sawNeg = true
		}
		if v > 0 {
			sawPos = true
		}
	}
	if !sawNeg || !sawPos {
		t.Fatal("Mrand48 should produce both signs")
	}
}

func TestDrand48RangeAndMean(t *testing.T) {
	s := New(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Drand48()
		if v < 0 || v >= 1 {
			t.Fatalf("Drand48() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Drand48 mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has %d entries", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestStreamsAreReproducible(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Drand48() != b.Drand48() {
			t.Fatal("same seed must yield the same stream")
		}
	}
}

func TestInt63Positive(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63() = %d negative", v)
		}
	}
}

func BenchmarkLrand48(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Lrand48()
	}
}
