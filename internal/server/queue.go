package server

// AdmissionQueue is the server's bounded FIFO admission queue.
// Arrivals that find the queue full are rejected permanently — an
// online tape service sheds load at admission rather than queueing
// without bound, because a request queued behind hours of tape motion
// is worse than an immediate "try later". The queue tracks its
// admission counters and high-water depth for the metrics dump.
//
// The queue is not safe for concurrent use: the server is a
// single-goroutine event loop per drive, like the drive itself.
type AdmissionQueue struct {
	capacity int
	reqs     []Request
	head     int
	admitted int
	rejected int
	maxDepth int
}

// NewAdmissionQueue returns a queue admitting at most capacity
// requests at a time; capacity < 1 selects 1.
func NewAdmissionQueue(capacity int) *AdmissionQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &AdmissionQueue{capacity: capacity}
}

// Cap returns the admission capacity.
func (q *AdmissionQueue) Cap() int { return q.capacity }

// Len returns the number of queued requests.
func (q *AdmissionQueue) Len() int { return len(q.reqs) - q.head }

// Offer admits one request, or rejects it when the queue is full.
func (q *AdmissionQueue) Offer(r Request) bool {
	if q.Len() >= q.capacity {
		q.rejected++
		return false
	}
	q.reqs = append(q.reqs, r)
	q.admitted++
	if d := q.Len(); d > q.maxDepth {
		q.maxDepth = d
	}
	return true
}

// PopN removes and returns up to n requests in arrival order; n <= 0
// drains the whole queue. The returned slice is owned by the caller.
func (q *AdmissionQueue) PopN(n int) []Request {
	depth := q.Len()
	if n <= 0 || n > depth {
		n = depth
	}
	if n == 0 {
		return nil
	}
	out := make([]Request, n)
	copy(out, q.reqs[q.head:q.head+n])
	q.head += n
	q.compact()
	return out
}

// compact shifts the live tail down once the dead prefix dominates,
// keeping Offer amortized O(1) without unbounded growth. The vacated
// tail is zeroed: popped requests must not be retained by the backing
// array, where their payloads would stay pinned until the next
// compaction or growth overwrote them.
func (q *AdmissionQueue) compact() {
	if q.head <= len(q.reqs)/2 {
		return
	}
	n := copy(q.reqs, q.reqs[q.head:])
	clear(q.reqs[n:])
	q.reqs = q.reqs[:n]
	q.head = 0
}

// PopNAppend is PopN into a caller-owned buffer: up to n requests
// (n <= 0 drains the queue) are appended to dst and the extended
// slice returned. Event loops that drain the queue on every tick use
// it with a reused buffer, making the steady-state drain
// allocation-free where PopN allocated per call.
func (q *AdmissionQueue) PopNAppend(dst []Request, n int) []Request {
	depth := q.Len()
	if n <= 0 || n > depth {
		n = depth
	}
	if n == 0 {
		return dst
	}
	dst = append(dst, q.reqs[q.head:q.head+n]...)
	q.head += n
	q.compact()
	return dst
}

// Admitted returns the number of requests ever admitted.
func (q *AdmissionQueue) Admitted() int { return q.admitted }

// Rejected returns the number of requests turned away at admission.
func (q *AdmissionQueue) Rejected() int { return q.rejected }

// MaxDepth returns the high-water queue depth.
func (q *AdmissionQueue) MaxDepth() int { return q.maxDepth }
