package server

import "testing"

func TestAdmissionQueueFIFO(t *testing.T) {
	q := NewAdmissionQueue(4)
	for i := 0; i < 4; i++ {
		if !q.Offer(Request{ID: i}) {
			t.Fatalf("offer %d rejected below capacity", i)
		}
	}
	if q.Offer(Request{ID: 4}) {
		t.Fatal("offer accepted at capacity")
	}
	got := q.PopN(2)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("PopN(2) = %v, want IDs 0,1", got)
	}
	if !q.Offer(Request{ID: 5}) {
		t.Fatal("offer rejected after pops freed space")
	}
	rest := q.PopN(0) // drain
	if len(rest) != 3 || rest[0].ID != 2 || rest[2].ID != 5 {
		t.Fatalf("drain = %v, want IDs 2,3,5", rest)
	}
	if q.Len() != 0 {
		t.Fatalf("len=%d after drain", q.Len())
	}
	if q.Admitted() != 5 || q.Rejected() != 1 || q.MaxDepth() != 4 {
		t.Fatalf("admitted=%d rejected=%d maxDepth=%d, want 5/1/4",
			q.Admitted(), q.Rejected(), q.MaxDepth())
	}
}

func TestAdmissionQueueMinimumCapacity(t *testing.T) {
	q := NewAdmissionQueue(0)
	if q.Cap() != 1 {
		t.Fatalf("cap=%d, want clamp to 1", q.Cap())
	}
	if !q.Offer(Request{}) || q.Offer(Request{}) {
		t.Fatal("capacity-1 queue admitted wrong count")
	}
}

func TestAdmissionQueueCompaction(t *testing.T) {
	// Many offer/pop cycles on a small queue must not grow the backing
	// slice without bound; Len/ordering stay correct throughout.
	q := NewAdmissionQueue(8)
	id := 0
	for cycle := 0; cycle < 1000; cycle++ {
		for q.Len() < 8 {
			if !q.Offer(Request{ID: id}) {
				t.Fatalf("cycle %d: offer rejected below capacity", cycle)
			}
			id++
		}
		got := q.PopN(5)
		for i := 1; i < len(got); i++ {
			if got[i].ID != got[i-1].ID+1 {
				t.Fatalf("cycle %d: out-of-order pop %v", cycle, got)
			}
		}
	}
}

func TestAdmissionQueueCompactionClearsTail(t *testing.T) {
	// Compaction copies the live tail down; the vacated half of the
	// backing array must be zeroed so popped requests are not pinned
	// by the queue's storage.
	q := NewAdmissionQueue(16)
	for i := 0; i < 16; i++ {
		if !q.Offer(Request{ID: i + 1, Segment: 7, ArrivalSec: 3.5, Deadline: 9, BestEffort: true}) {
			t.Fatalf("offer %d rejected below capacity", i+1)
		}
	}
	if got := q.PopN(12); len(got) != 12 {
		t.Fatalf("PopN(12) returned %d requests", len(got))
	}
	for i, r := range q.reqs[q.Len():cap(q.reqs)] {
		if r != (Request{}) {
			t.Fatalf("stale request %+v at vacated backing slot %d after compaction", r, i)
		}
	}
	rest := q.PopN(-1)
	if len(rest) != 4 {
		t.Fatalf("drain returned %d requests, want 4", len(rest))
	}
	for i, r := range rest {
		if r.ID != 13+i {
			t.Fatalf("drain order: got ID %d at %d, want %d", r.ID, i, 13+i)
		}
	}
}
