package server

import (
	"fmt"
	"math"

	"serpentine/internal/core"
	"serpentine/internal/locate"
)

// AnalyticalRun is the closed-form twin of Run: it estimates the same
// Result — sojourn and service times, batch durations, utilization —
// without emulating the drive. Batches are cut by the same admission
// and batching logic and planned by the same scheduler, but each
// request is charged the characterized locate model's closed-form
// locate and read times instead of stepping the drive, so a run costs
// one Schedule call per batch and arithmetic per request.
//
// The estimate differs from the discrete-event sim only where the
// model differs from the emulated mechanism: the drive's per-cartridge
// timing personality (the model interpolates between characterized key
// points) and fault recovery (the twin is fault-free; cfg.Faults is
// ignored). On fault-free runs the error is the model's interpolation
// error — about 1% mean, ≤5% across the paper's Fig. 6/7 operating
// points (enforced by TestAnalyticalTwinAccuracy). Metrics, traces and
// spans are not emitted: cfg.Reg, cfg.TraceCap and cfg.Spans are
// ignored. Result.Reg is nil.
func AnalyticalRun(cfg Config, arrivals []Request) (*Result, error) {
	serial := cfg.Serial
	if serial == 0 {
		serial = 1
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewLOSS()
	}
	readLen := cfg.ReadLen
	if readLen < 1 {
		readLen = 1
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 1024
	}
	if cfg.WindowSec == 0 {
		cfg.WindowSec = 600
	}
	if cfg.WindowSec < 0 || math.IsNaN(cfg.WindowSec) || math.IsInf(cfg.WindowSec, 0) {
		return nil, fmt.Errorf("server: window of %g seconds", cfg.WindowSec)
	}
	cart, err := cartridgeFor(serial)
	if err != nil {
		return nil, err
	}
	model := cart.model
	last := model.Segments() - readLen
	prev := 0.0
	for i, r := range arrivals {
		if r.Segment < 0 || r.Segment > last {
			return nil, fmt.Errorf("server: arrival %d (segment %d) out of range [0,%d]", i, r.Segment, last)
		}
		if math.IsNaN(r.ArrivalSec) || math.IsInf(r.ArrivalSec, 0) || r.ArrivalSec < prev {
			return nil, fmt.Errorf("server: arrival %d at %g violates time order (previous %g)", i, r.ArrivalSec, prev)
		}
		prev = r.ArrivalSec
	}

	t := &twin{
		cfg:      cfg,
		model:    model,
		sched:    sched,
		readLen:  readLen,
		queue:    NewAdmissionQueue(queueCap),
		arrivals: arrivals,
	}
	t.res.Alg = sched.Name()
	t.res.Policy = cfg.Policy
	if err := t.run(); err != nil {
		return nil, err
	}
	return &t.res, nil
}

// twin is AnalyticalRun's event loop: the same admit/cut/serve cycle
// as state, on closed-form service times.
type twin struct {
	cfg      Config
	model    *locate.Model
	sched    core.Scheduler
	readLen  int
	queue    *AdmissionQueue
	arrivals []Request
	next     int
	clock    float64
	busy     float64
	pos      int
	res      Result
}

func (t *twin) admit(until float64) int {
	n := 0
	for t.next < len(t.arrivals) && t.arrivals[t.next].ArrivalSec <= until {
		r := t.arrivals[t.next]
		t.next++
		if t.queue.Offer(r) {
			n++
		} else {
			t.res.Rejected++
		}
	}
	return n
}

func (t *twin) run() error {
	for t.next < len(t.arrivals) || t.queue.Len() > 0 {
		t.admit(t.clock)
		if t.queue.Len() == 0 {
			if a := t.arrivals[t.next].ArrivalSec; a > t.clock {
				t.clock = a
			}
			t.admit(t.clock)
			continue
		}
		if t.cfg.Policy == FixedWindow {
			boundary := t.cfg.WindowSec * math.Ceil(t.clock/t.cfg.WindowSec)
			if boundary > t.clock {
				t.clock = boundary
			}
			t.admit(boundary)
		}
		batch := t.queue.PopN(t.cfg.MaxBatch)
		var err error
		if t.cfg.Policy == ReplanOnArrival {
			err = t.serveIncremental(batch)
		} else {
			err = t.serveBatch(batch)
		}
		if err != nil {
			return err
		}
	}
	t.res.MakespanSec = t.clock
	t.res.BusySec = t.busy
	t.res.IdleSec = t.clock - t.busy
	t.res.FinalHead = t.pos
	t.res.MaxQueueDepth = t.queue.MaxDepth()
	return nil
}

// serveOne charges one request's closed-form cost from the current
// head position and advances the head past its transfer.
func (t *twin) serveOne(seg int) float64 {
	cost := t.model.LocateTime(t.pos, seg)
	for k := 0; k < t.readLen; k++ {
		cost += t.model.ReadTime(seg + k)
	}
	t.pos = seg + t.readLen
	return cost
}

// record folds one served request into the result. completion and
// dispatch are absolute virtual times.
func (t *twin) record(r Request, completion, dispatch float64) {
	sojourn := completion - r.ArrivalSec
	service := completion - dispatch
	t.res.Served++
	t.res.Sojourn.Add(sojourn)
	t.res.SojournTimes = append(t.res.SojournTimes, sojourn)
	t.res.Service.Add(service)
	t.res.ServiceTimes = append(t.res.ServiceTimes, service)
}

func (t *twin) plan(pending []Request) ([]int, error) {
	segs := make([]int, len(pending))
	for i, r := range pending {
		segs[i] = r.Segment
	}
	prob := core.Problem{Start: t.pos, Requests: segs, ReadLen: t.readLen, Cost: t.model}
	plan, err := t.sched.Schedule(&prob)
	if err != nil {
		return nil, fmt.Errorf("server: twin scheduling %d pending: %w", len(pending), err)
	}
	if err := core.CheckPermutation(segs, plan.Order); err != nil {
		return nil, fmt.Errorf("server: twin %s plan: %w", t.sched.Name(), err)
	}
	return plan.Order, nil
}

func (t *twin) serveBatch(batch []Request) error {
	if len(batch) == 0 {
		return nil
	}
	order, err := t.plan(batch)
	if err != nil {
		return err
	}
	dispatch := t.clock
	// Requests are matched to plan positions FIFO per segment, exactly
	// like state.recordExec.
	taken := make([]bool, len(batch))
	for _, seg := range order {
		cost := t.serveOne(seg)
		t.clock += cost
		t.busy += cost
		for i, r := range batch {
			if !taken[i] && r.Segment == seg {
				taken[i] = true
				t.record(r, t.clock, dispatch)
				break
			}
		}
	}
	t.res.Batches++
	t.res.BatchDurations = append(t.res.BatchDurations, t.clock-dispatch)
	return nil
}

func (t *twin) serveIncremental(batch []Request) error {
	pending := append([]Request(nil), batch...)
	order, err := t.plan(pending)
	if err != nil {
		return err
	}
	cutStart := t.clock
	size := len(batch)
	for len(pending) > 0 {
		seg := order[0]
		order = order[1:]
		idx := indexOfSegment(pending, seg)
		if idx < 0 {
			return fmt.Errorf("server: twin plan serves segment %d not in the pending set", seg)
		}
		req := pending[idx]
		pending = append(pending[:idx], pending[idx+1:]...)

		dispatch := t.clock
		cost := t.serveOne(seg)
		t.clock += cost
		t.busy += cost
		t.record(req, t.clock, dispatch)

		merged := 0
		if t.admit(t.clock) > 0 {
			fresh := t.queue.PopN(0)
			merged = len(fresh)
			size += merged
			pending = append(pending, fresh...)
		}
		if len(pending) == 0 {
			continue
		}
		if merged > 0 || len(order) == 0 {
			if merged > 0 {
				t.res.IncrementalReplans++
			}
			if order, err = t.plan(pending); err != nil {
				return err
			}
		}
	}
	t.res.Batches++
	t.res.BatchDurations = append(t.res.BatchDurations, t.clock-cutStart)
	return nil
}
