package server

import (
	"bytes"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/obs"
)

// smallSweep is a sweep config small enough for the test suite but
// still covering multiple rates, policies and schedulers.
func smallSweep(workers int, reg *obs.Registry) SweepConfig {
	return SweepConfig{
		RatesPerHour: []float64{60, 120},
		Policies:     AllPolicies(),
		Schedulers:   []core.Scheduler{core.Sort{}, core.NewLOSS()},
		Requests:     30,
		Seed:         42,
		Workers:      workers,
		Reg:          reg,
	}
}

// TestSweepDeterministicAcrossWorkers is the determinism contract:
// the rendered table and the merged metrics dump are byte-identical
// whether the cells run on one worker or eight.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) (table, prom string) {
		t.Helper()
		reg := obs.NewRegistry()
		cells, err := Sweep(smallSweep(workers, reg))
		if err != nil {
			t.Fatal(err)
		}
		var tb, pb bytes.Buffer
		if err := WriteOnline(&tb, cells); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteProm(&pb); err != nil {
			t.Fatal(err)
		}
		return tb.String(), pb.String()
	}
	t1, p1 := render(1)
	t8, p8 := render(8)
	if t1 != t8 {
		t.Fatalf("sweep table differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", t1, t8)
	}
	if p1 != p8 {
		t.Fatalf("merged metrics dump differs between 1 and 8 workers")
	}
	// And a rerun at the same worker count reproduces itself.
	t8b, p8b := render(8)
	if t8 != t8b || p8 != p8b {
		t.Fatal("sweep is not reproducible across reruns")
	}
}

func TestSweepCellOrderMatchesSpec(t *testing.T) {
	cells, err := Sweep(smallSweep(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 3 * 2 // rates x policies x schedulers
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	i := 0
	for _, rate := range []float64{60, 120} {
		for _, pol := range AllPolicies() {
			for _, alg := range []string{"SORT", "LOSS"} {
				c := cells[i]
				if c.RatePerHour != rate || c.Policy != pol || c.Alg != alg {
					t.Fatalf("cell %d = (%g,%s,%s), want (%g,%s,%s)",
						i, c.RatePerHour, c.Policy, c.Alg, rate, pol, alg)
				}
				if c.Result == nil || c.Result.Served+c.Result.Failed+c.Result.Rejected != 30 {
					t.Fatalf("cell %d did not account for all 30 requests: %+v", i, c.Result)
				}
				i++
			}
		}
	}
}
