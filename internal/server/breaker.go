package server

import "fmt"

// BreakerState is the admission circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed is normal service: every drive is live, all
	// traffic is admitted up to the queue capacity.
	BreakerClosed BreakerState = iota
	// BreakerBrownout is degraded service: some drives are down.
	// Best-effort arrivals are shed immediately and the effective
	// queue capacity shrinks to the live fraction of the configured
	// capacity, so the backlog a crippled drive pool can actually
	// drain is the only backlog allowed to build.
	BreakerBrownout
	// BreakerOpen is no service: every drive is down. All arrivals
	// are shed until a repair brings capacity back.
	BreakerOpen
)

// String names the state for tables and metric labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerBrownout:
		return "brownout"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// Breaker is the brownout admission controller: it learns the
// service's effective capacity — live drives over configured drives —
// and turns it into an admission decision per arrival. It is a pure
// state machine on the virtual clock (no wall time, no randomness):
// the serving layer reports drive deaths and repairs via SetLive, and
// admission consults State, Admits and EffectiveCap. Re-admission on
// repair is automatic — SetLive back to the configured count closes
// the breaker and the next arrival is admitted normally.
//
// Like the rest of the serving layer it belongs to one goroutine.
type Breaker struct {
	configured int
	live       int
}

// NewBreaker returns a closed breaker for a pool of the given size;
// sizes below 1 select 1.
func NewBreaker(configured int) *Breaker {
	if configured < 1 {
		configured = 1
	}
	return &Breaker{configured: configured, live: configured}
}

// SetLive reports the current number of live drives, clamped to
// [0, configured].
func (b *Breaker) SetLive(n int) {
	if n < 0 {
		n = 0
	}
	if n > b.configured {
		n = b.configured
	}
	b.live = n
}

// Live returns the last reported live-drive count.
func (b *Breaker) Live() int { return b.live }

// Headroom returns the live capacity fraction — live drives over
// configured drives, in [0, 1]. It is the admission state rendered as
// a routing signal: a fleet router that scales a shard's load score by
// 1/Headroom sends less work to a shard whose breaker is browning out
// and none to one that is open, so cluster admission and per-shard
// admission act on the same capacity picture.
func (b *Breaker) Headroom() float64 {
	return float64(b.live) / float64(b.configured)
}

// State derives the breaker position from the live fraction.
func (b *Breaker) State() BreakerState {
	switch {
	case b.live == 0:
		return BreakerOpen
	case b.live < b.configured:
		return BreakerBrownout
	}
	return BreakerClosed
}

// Admits reports whether an arrival of the given class passes the
// breaker: everything when closed, only non-best-effort traffic in
// brownout, nothing when open.
func (b *Breaker) Admits(bestEffort bool) bool {
	switch b.State() {
	case BreakerOpen:
		return false
	case BreakerBrownout:
		return !bestEffort
	}
	return true
}

// EffectiveCap scales a configured queue capacity by the live
// fraction, rounding up, never below 1 while any drive lives: with
// half the pool down, admitting a full queue only builds sojourn the
// surviving drives cannot serve. A negative configured capacity is
// nonsense and clamps to 0 (unbounded, matching how callers treat a
// zero capacity) rather than leaking through as a cap every depth
// comparison trivially exceeds.
func (b *Breaker) EffectiveCap(cap int) int {
	if cap < 0 {
		return 0
	}
	if b.live >= b.configured || cap == 0 {
		return cap
	}
	scaled := (cap*b.live + b.configured - 1) / b.configured
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}
