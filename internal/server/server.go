// Package server is the online serving layer: the paper's scheduling
// algorithms put behind an arrival stream. Requests arrive on the
// virtual clock (Poisson or trace-driven), pass a bounded admission
// queue, are cut into batches by a configurable batching policy, and
// execute on the emulated drive through the recovering executor —
// re-scheduled incrementally from the current head position, so any
// of LOSS/SLTF/SCAN/WEAVE serves an open-ended stream rather than a
// closed trial.
//
// Everything runs on the virtual clock: the drive charges busy time,
// the server account idles between arrivals and window boundaries,
// and a request's sojourn is completion time minus arrival time. A
// run is a pure function of its configuration — no wall clock, no
// global state — which is what lets the arrival-rate sweeps promise
// byte-identical output at any worker count.
package server

import (
	"fmt"
	"math"
	"sync"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/obs"
	"serpentine/internal/sim"
	"serpentine/internal/stats"
)

// cartridges caches the generated tape and its characterized locate
// model per serial. Both are pure functions of the serial (the server
// always uses the DLT4000 format), immutable, and shared safely
// across runs — while the sweeps spin up hundreds of runs that would
// otherwise regenerate the same multi-megabyte tables per cell.
var cartridges sync.Map // int64 -> *cartridge

type cartridge struct {
	tape  *geometry.Tape
	model *locate.Model
}

func cartridgeFor(serial int64) (*cartridge, error) {
	if c, ok := cartridges.Load(serial); ok {
		return c.(*cartridge), nil
	}
	tape, err := geometry.Generate(geometry.DLT4000(), serial)
	if err != nil {
		return nil, fmt.Errorf("server: tape: %w", err)
	}
	model, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		return nil, fmt.Errorf("server: model: %w", err)
	}
	c, _ := cartridges.LoadOrStore(serial, &cartridge{tape: tape, model: model})
	return c.(*cartridge), nil
}

// Config describes one online serving run.
type Config struct {
	// Serial selects the cartridge; 0 selects 1.
	Serial int64
	// Scheduler plans each batch; nil selects LOSS.
	Scheduler core.Scheduler
	// Policy selects the batching policy.
	Policy BatchPolicy
	// WindowSec is the FixedWindow period; 0 selects 600.
	WindowSec float64
	// QueueCap bounds the admission queue; 0 selects 1024.
	QueueCap int
	// MaxBatch caps the requests per cut batch; 0 means unbounded.
	MaxBatch int
	// ReadLen is the per-request transfer length; 0 means 1.
	ReadLen int
	// DeadlineSec enables per-request deadline enforcement: arrivals
	// without an explicit Request.Deadline get ArrivalSec +
	// DeadlineSec, and a request still queued past its deadline is
	// shed at batch-cut time instead of dispatched. 0 (the default)
	// disables enforcement for requests without explicit deadlines —
	// existing configurations behave exactly as before. The
	// recommended budget is sim.DefaultRequestTimeoutSec, the same
	// constant bounding the executor's per-request drive time.
	DeadlineSec float64
	// Retry bounds the executor's recovery.
	Retry sim.RetryPolicy
	// Faults arms the drive with an injector when any rate is
	// non-zero.
	Faults fault.Config
	// Reg receives the run's metrics; nil creates a fresh registry
	// (exposed in the Result either way).
	Reg *obs.Registry
	// Labels are added to every metric series the run emits; the
	// sweeps pass the cell coordinates here.
	Labels []obs.Label
	// TraceCap, when positive, attaches a bounded trace of the most
	// recent drive operations to the registry.
	TraceCap int
	// Spans, when non-nil, records the run's lifecycle as hierarchical
	// virtual-time spans: the run, each batch, each request from
	// arrival to completion with its queue wait, the executor's
	// serve/retry/replan phases, and every drive primitive as a leaf.
	// Tracing is pure accounting and changes no simulated timing.
	Spans *obs.Tracer
}

// Result summarizes one run.
type Result struct {
	// Alg and Policy identify the cell.
	Alg    string
	Policy BatchPolicy

	// Served, Failed, Rejected and Shed partition the stream:
	// completed retrievals, permanent drive-level failures,
	// admissions turned away at a full queue, and queued requests
	// dropped because their deadline passed before dispatch.
	Served, Failed, Rejected, Shed int

	// Sojourn accumulates completion − arrival per served request;
	// SojournTimes retains the samples for percentiles.
	Sojourn      stats.Accumulator
	SojournTimes []float64
	// Service accumulates completion − dispatch per served request,
	// where dispatch is the start of the batch execution that served
	// it (for ReplanOnArrival: the start of the request's own
	// single-request execution).
	Service      stats.Accumulator
	ServiceTimes []float64

	// Batches counts cut batches; BatchDurations their executed
	// virtual durations, in order.
	Batches        int
	BatchDurations []float64

	// IncrementalReplans counts re-schedules forced by arrivals
	// landing during service (ReplanOnArrival only). The executor's
	// own fault-recovery work is totalled alongside.
	IncrementalReplans int
	Retries            int
	Replans            int
	Recalibrations     int
	Fallbacks          int
	RecoverySec        float64

	// MakespanSec is the virtual time from zero to the last
	// completion; BusySec the drive's share of it; IdleSec the rest.
	MakespanSec float64
	BusySec     float64
	IdleSec     float64
	// FinalHead is the head position after the last batch.
	FinalHead int
	// MaxQueueDepth is the admission queue's high-water mark.
	MaxQueueDepth int

	// Reg is the registry the run's metrics went to.
	Reg *obs.Registry
}

// SojournP returns the p-th percentile sojourn time, or 0 when
// nothing was served (an idle stream reports NaN-free zeros).
func (r *Result) SojournP(p float64) float64 {
	return stats.PercentileOrZero(r.SojournTimes, p)
}

// ServiceP returns the p-th percentile service time, or 0 when
// nothing was served.
func (r *Result) ServiceP(p float64) float64 {
	return stats.PercentileOrZero(r.ServiceTimes, p)
}

// ThroughputPerHour is completed retrievals per hour of virtual time,
// 0 for an empty or degenerate run.
func (r *Result) ThroughputPerHour() float64 {
	if r.Served <= 0 || !(r.MakespanSec > 0) || math.IsInf(r.MakespanSec, 0) {
		return 0
	}
	return float64(r.Served) / r.MakespanSec * 3600
}

// state is one run's event loop.
type state struct {
	cfg     Config
	model   locate.Cost
	drv     *drive.Drive
	exec    *sim.Executor
	sched   core.Scheduler
	queue   *AdmissionQueue
	reg     *obs.Registry
	labels  []obs.Label
	readLen int

	arrivals []Request
	next     int     // next un-admitted arrival
	idle     float64 // accumulated idle time on top of the drive clock

	// Span tracing state: the run's trace, its root span, and the span
	// of the batch currently executing (drive leaf spans nest there).
	trace    *obs.TraceHandle
	root     *obs.SpanHandle
	curBatch *obs.SpanHandle

	// Cached metric handles, resolved lazily so the set of series a
	// run creates is unchanged while the hot path renders no keys.
	cRejected *obs.Counter
	cServed   *obs.Counter
	cFailed   *obs.Counter
	cShed     *obs.Counter
	hSojourn  *obs.Histogram
	hService  *obs.Histogram
	hBatchSec *obs.Histogram
	hBatchSz  *obs.Histogram
	opsC      [drive.NumOps]*obs.Counter
	opsH      [drive.NumOps]*obs.Histogram

	cIncRepl *obs.Counter

	// Per-batch scratch, reused across batches so the steady-state
	// loop allocates nothing: the cut batch, the incremental pending
	// set, the drained-arrivals buffer, the segment list handed to the
	// scheduler, the hoisted Problem, and the slot table recordExec
	// uses to map served segments back to requests.
	segsBuf  []int
	batchBuf []Request
	pendBuf  []Request
	freshBuf []Request
	prob     core.Problem
	bySeg    map[int]int32
	slots    [][]Request
	slotHead []int
	oneSeg   [1]int
	onePlan  [1]int
	oneReq   [1]Request

	res Result
}

// now is the server's virtual clock: drive busy time plus accounted
// idle.
func (s *state) now() float64 { return s.drv.Clock() + s.idle }

// idleUntil advances the virtual clock to t by accounting idle time.
func (s *state) idleUntil(t float64) {
	if d := t - s.now(); d > 0 {
		s.idle += d
	}
}

// admit moves every arrival with ArrivalSec <= until into the queue,
// rejecting at capacity. It returns how many were admitted.
func (s *state) admit(until float64) int {
	n := 0
	for s.next < len(s.arrivals) && s.arrivals[s.next].ArrivalSec <= until {
		r := s.arrivals[s.next]
		s.next++
		if r.Deadline == 0 && s.cfg.DeadlineSec > 0 {
			r.Deadline = r.ArrivalSec + s.cfg.DeadlineSec
		}
		if s.queue.Offer(r) {
			n++
		} else {
			s.res.Rejected++
			if s.cRejected == nil {
				s.cRejected = s.counter("rejected_total")
			}
			s.cRejected.Inc()
		}
	}
	return n
}

func (s *state) counter(name string, extra ...obs.Label) *obs.Counter {
	return s.reg.Counter(name, append(extra, s.labels...)...)
}

func (s *state) histogram(name string, extra ...obs.Label) *obs.Histogram {
	return s.reg.Histogram(name, append(extra, s.labels...)...)
}

func (s *state) gauge(name string, extra ...obs.Label) *obs.Gauge {
	return s.reg.Gauge(name, append(extra, s.labels...)...)
}

// Run serves the arrival stream to completion and returns the run's
// summary. The arrivals must be in non-decreasing time order with
// non-negative times and in-range segments; a malformed stream is an
// error, not a partial run.
func Run(cfg Config, arrivals []Request) (*Result, error) {
	serial := cfg.Serial
	if serial == 0 {
		serial = 1
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewLOSS()
	}
	readLen := cfg.ReadLen
	if readLen < 1 {
		readLen = 1
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 1024
	}
	if cfg.WindowSec == 0 {
		cfg.WindowSec = 600
	}
	if cfg.WindowSec < 0 || math.IsNaN(cfg.WindowSec) || math.IsInf(cfg.WindowSec, 0) {
		return nil, fmt.Errorf("server: window of %g seconds", cfg.WindowSec)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("server: faults: %w", err)
	}

	cart, err := cartridgeFor(serial)
	if err != nil {
		return nil, err
	}
	tape, model := cart.tape, cart.model
	last := model.Segments() - readLen
	prev := 0.0
	for i, r := range arrivals {
		if r.Segment < 0 || r.Segment > last {
			return nil, fmt.Errorf("server: arrival %d (segment %d) out of range [0,%d]", i, r.Segment, last)
		}
		if math.IsNaN(r.ArrivalSec) || math.IsInf(r.ArrivalSec, 0) || r.ArrivalSec < prev {
			return nil, fmt.Errorf("server: arrival %d at %g violates time order (previous %g)", i, r.ArrivalSec, prev)
		}
		prev = r.ArrivalSec
	}

	reg := cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	drv := drive.New(tape)
	if cfg.Faults.Enabled() {
		drv.AttachFaults(fault.New(cfg.Faults))
	}

	s := &state{
		cfg:      cfg,
		model:    model,
		drv:      drv,
		exec:     &sim.Executor{Drive: drv, Scheduler: sched, Policy: cfg.Retry},
		sched:    sched,
		queue:    NewAdmissionQueue(queueCap),
		reg:      reg,
		labels:   cfg.Labels,
		readLen:  readLen,
		arrivals: arrivals,
	}
	s.res.Alg = sched.Name()
	s.res.Policy = cfg.Policy
	s.res.Reg = reg
	if cfg.Spans != nil {
		s.trace = cfg.Spans.StartTrace()
		s.root = s.trace.Start("run", nil, 0).
			Attr("alg", sched.Name()).Attr("policy", cfg.Policy.String())
	}

	// Observability: every drive operation feeds per-op counters and
	// latency histograms, plus the bounded trace when asked for and a
	// leaf span under the executing batch. The drive's clock excludes
	// accounted idle, so s.idle maps it onto the run's virtual time.
	tr := reg.Trace()
	if cfg.TraceCap > 0 {
		tr = reg.AttachTrace(cfg.TraceCap)
	}
	drv.AttachTrace(func(ev obs.TraceEvent) {
		if oi := drive.OpIndex(ev.Op); oi >= 0 {
			c := s.opsC[oi]
			if c == nil {
				c = s.counter("drive_ops_total", obs.L("op", ev.Op))
				s.opsC[oi] = c
			}
			c.Inc()
			h := s.opsH[oi]
			if h == nil {
				h = s.histogram("drive_op_seconds", obs.L("op", ev.Op))
				s.opsH[oi] = h
			}
			h.Observe(ev.ElapsedSec)
		} else {
			s.counter("drive_ops_total", obs.L("op", ev.Op)).Inc()
			s.histogram("drive_op_seconds", obs.L("op", ev.Op)).Observe(ev.ElapsedSec)
		}
		if ev.Err != "" {
			s.counter("drive_errors_total", obs.L("class", ev.Err)).Inc()
		}
		if tr != nil {
			tr.Add(ev)
		}
		if s.trace != nil {
			sp := s.trace.Start(ev.Op, s.curBatch, ev.ClockSec+s.idle)
			if ev.Segment >= 0 {
				sp.AttrInt("segment", ev.Segment)
			}
			if ev.Err != "" {
				sp.Attr("err", ev.Err)
			}
			sp.End(ev.ClockSec + ev.ElapsedSec + s.idle)
		}
	})

	if err := s.run(); err != nil {
		return nil, err
	}
	return &s.res, nil
}

// run is the event loop: admit, idle to the next event, cut a batch
// per the policy, serve it, repeat until the stream drains.
func (s *state) run() error {
	for s.next < len(s.arrivals) || s.queue.Len() > 0 {
		s.admit(s.now())
		if s.queue.Len() == 0 {
			// Nothing admitted and nothing queued: idle to the next
			// arrival. (The loop condition guarantees one exists —
			// everything before now() was already admitted.)
			s.idleUntil(s.arrivals[s.next].ArrivalSec)
			s.admit(s.now())
			continue
		}
		if s.cfg.Policy == FixedWindow {
			// Cut at the next multiple of the window (possibly now,
			// when now() is exactly on a boundary). An arrival at
			// exactly the boundary joins this batch.
			boundary := s.cfg.WindowSec * math.Ceil(s.now()/s.cfg.WindowSec)
			s.idleUntil(boundary)
			s.admit(boundary)
		}
		batch := s.queue.PopNAppend(s.batchBuf[:0], s.cfg.MaxBatch)
		s.batchBuf = batch
		if batch = s.shedExpired(batch, s.now()); len(batch) == 0 {
			continue
		}
		var err error
		if s.cfg.Policy == ReplanOnArrival {
			err = s.serveIncremental(batch)
		} else {
			err = s.serveBatch(batch)
		}
		if err != nil {
			return err
		}
	}
	s.res.MakespanSec = s.now()
	s.res.BusySec = s.drv.Clock()
	s.res.IdleSec = s.idle
	s.res.FinalHead = s.drv.Position()
	s.res.MaxQueueDepth = s.queue.MaxDepth()
	if s.res.Shed > 0 {
		s.root.AttrInt("shed", s.res.Shed)
	}
	s.root.AttrInt("served", s.res.Served).AttrInt("failed", s.res.Failed).
		AttrInt("rejected", s.res.Rejected).End(s.res.MakespanSec)
	s.gauge("queue_depth_max").Max(float64(s.queue.MaxDepth()))
	s.gauge("clock_seconds").Set(s.res.MakespanSec)
	s.gauge("busy_seconds").Set(s.res.BusySec)
	return nil
}

// serveBatch plans and executes one batch as a unit (QuiesceThenReplan
// and FixedWindow).
func (s *state) serveBatch(batch []Request) error {
	if len(batch) == 0 {
		return nil
	}
	segs := s.segsBuf[:0]
	for _, r := range batch {
		segs = append(segs, r.Segment)
	}
	s.segsBuf = segs
	s.prob = core.Problem{Start: s.drv.Position(), Requests: segs, ReadLen: s.readLen, Cost: s.model}
	plan, err := s.sched.Schedule(&s.prob)
	if err != nil {
		return fmt.Errorf("server: scheduling batch of %d: %w", len(batch), err)
	}
	dispatch := s.now()
	s.curBatch = s.trace.Start("batch", s.root, dispatch).
		AttrInt("size", len(batch)).Attr("mode", "batch")
	s.exec.Trace = s.trace
	s.exec.Parent = s.curBatch
	s.exec.TraceBase = s.idle
	er, err := s.exec.Execute(&s.prob, plan)
	if err != nil {
		return fmt.Errorf("server: executing batch of %d: %w", len(batch), err)
	}
	s.recordExec(batch, &er, dispatch)
	s.recordCut(len(batch), er.ElapsedSec)
	s.curBatch.End(s.now())
	s.curBatch = nil
	return nil
}

// serveIncremental serves a batch one request at a time off the
// current plan, re-scheduling the remainder from the current head
// whenever arrivals landed during the last service (and after any
// recalibration disturbed the head position).
func (s *state) serveIncremental(batch []Request) error {
	pending := append(s.pendBuf[:0], batch...)
	order, err := s.planOrder(pending)
	if err != nil {
		return err
	}
	cutStart := s.now()
	s.curBatch = s.trace.Start("batch", s.root, cutStart).Attr("mode", "incremental")
	size := len(batch)
	for len(pending) > 0 {
		seg := order[0]
		order = order[1:]
		idx := indexOfSegment(pending, seg)
		if idx < 0 {
			return fmt.Errorf("server: plan serves segment %d not in the pending set", seg)
		}
		req := pending[idx]
		pending = append(pending[:idx], pending[idx+1:]...)

		s.oneSeg[0], s.onePlan[0] = seg, seg
		s.prob = core.Problem{Start: s.drv.Position(), Requests: s.oneSeg[:], ReadLen: s.readLen, Cost: s.model}
		dispatch := s.now()
		s.exec.Trace = s.trace
		s.exec.Parent = s.curBatch
		s.exec.TraceBase = s.idle
		er, err := s.exec.Execute(&s.prob, core.Plan{Order: s.onePlan[:]})
		if err != nil {
			return fmt.Errorf("server: executing request %d: %w", req.ID, err)
		}
		s.oneReq[0] = req
		s.recordExec(s.oneReq[:], &er, dispatch)

		// Admit what arrived while the drive was busy; new work (or a
		// recovery that moved the head) invalidates the remaining
		// order, so re-plan from the current position.
		merged := 0
		if s.admit(s.now()) > 0 {
			fresh := s.queue.PopNAppend(s.freshBuf[:0], 0)
			s.freshBuf = fresh
			fresh = s.shedExpired(fresh, s.now())
			merged = len(fresh)
			size += merged
			pending = append(pending, fresh...)
		}
		if len(pending) == 0 {
			continue
		}
		if merged > 0 || er.Recalibrations > 0 || len(order) == 0 {
			if merged > 0 {
				s.res.IncrementalReplans++
				if s.cIncRepl == nil {
					s.cIncRepl = s.counter("incremental_replans_total")
				}
				s.cIncRepl.Inc()
			}
			if order, err = s.planOrder(pending); err != nil {
				return err
			}
		}
	}
	s.pendBuf = pending
	s.recordCut(size, s.now()-cutStart)
	s.curBatch.AttrInt("size", size).End(s.now())
	s.curBatch = nil
	return nil
}

// recordCut accounts one cut batch: how many requests it grew to and
// how long its service span took.
func (s *state) recordCut(size int, elapsed float64) {
	s.res.Batches++
	s.res.BatchDurations = append(s.res.BatchDurations, elapsed)
	if s.hBatchSec == nil {
		s.hBatchSec = s.histogram("batch_seconds")
		s.hBatchSz = s.histogram("batch_size")
	}
	s.hBatchSec.Observe(elapsed)
	s.hBatchSz.Observe(float64(size))
}

// shedExpired drops the requests whose deadline passed before now,
// compacting in place and counting each drop. With no deadlines in
// play (the default) nothing matches, no series is created, and the
// run is byte-identical to one without deadline support.
func (s *state) shedExpired(batch []Request, now float64) []Request {
	kept := batch[:0]
	for _, r := range batch {
		if r.Expired(now) {
			s.res.Shed++
			if s.cShed == nil {
				s.cShed = s.counter("shed_total")
			}
			s.cShed.Inc()
			continue
		}
		kept = append(kept, r)
	}
	return kept
}

// planOrder schedules the pending requests from the current head.
func (s *state) planOrder(pending []Request) ([]int, error) {
	segs := s.segsBuf[:0]
	for _, r := range pending {
		segs = append(segs, r.Segment)
	}
	s.segsBuf = segs
	s.prob = core.Problem{Start: s.drv.Position(), Requests: segs, ReadLen: s.readLen, Cost: s.model}
	plan, err := s.sched.Schedule(&s.prob)
	if err != nil {
		return nil, fmt.Errorf("server: scheduling %d pending: %w", len(pending), err)
	}
	if err := core.CheckPermutation(segs, plan.Order); err != nil {
		return nil, fmt.Errorf("server: %s plan: %w", s.sched.Name(), err)
	}
	return plan.Order, nil
}

// indexOfSegment returns the first pending request for seg, or -1.
func indexOfSegment(pending []Request, seg int) int {
	for i, r := range pending {
		if r.Segment == seg {
			return i
		}
	}
	return -1
}

// recordExec folds one execution's outcomes into the result and the
// metrics: per-request sojourn and service times for the served, the
// failure split, and the executor's recovery counters.
func (s *state) recordExec(batch []Request, er *sim.ExecResult, dispatch float64) {
	// Map each served/failed segment occurrence back to its request,
	// FIFO per segment (duplicates are legal in a stream). The map
	// only holds slot indices into reusable per-segment slices, so
	// the steady-state loop touches no fresh allocations.
	if s.bySeg == nil {
		s.bySeg = make(map[int]int32, len(batch))
	}
	nSlots := 0
	for _, r := range batch {
		if si, dup := s.bySeg[r.Segment]; dup {
			s.slots[si] = append(s.slots[si], r)
			continue
		}
		if nSlots == len(s.slots) {
			s.slots = append(s.slots, nil)
			s.slotHead = append(s.slotHead, 0)
		}
		s.slots[nSlots] = append(s.slots[nSlots][:0], r)
		s.slotHead[nSlots] = 0
		s.bySeg[r.Segment] = int32(nSlots)
		nSlots++
	}
	for i, seg := range er.Served {
		si, ok := s.bySeg[seg]
		if !ok || s.slotHead[si] >= len(s.slots[si]) {
			continue
		}
		req := s.slots[si][s.slotHead[si]]
		s.slotHead[si]++
		completion := dispatch + er.Completions[i]
		sojourn := completion - req.ArrivalSec
		service := er.Completions[i]
		if s.trace != nil {
			rs := s.trace.Start("request", s.root, req.ArrivalSec).
				AttrInt("id", req.ID).AttrInt("segment", seg).
				AttrFloat("queue_sec", dispatch-req.ArrivalSec)
			s.trace.Start("queue", rs, req.ArrivalSec).End(dispatch)
			rs.End(completion)
		}
		s.res.Served++
		s.res.Sojourn.Add(sojourn)
		s.res.SojournTimes = append(s.res.SojournTimes, sojourn)
		s.res.Service.Add(service)
		s.res.ServiceTimes = append(s.res.ServiceTimes, service)
		if s.cServed == nil {
			s.cServed = s.counter("served_total")
			s.hSojourn = s.histogram("sojourn_seconds")
			s.hService = s.histogram("service_seconds")
		}
		s.cServed.Inc()
		s.hSojourn.Observe(sojourn)
		s.hService.Observe(service)
	}
	for range er.Failed {
		s.res.Failed++
		if s.cFailed == nil {
			s.cFailed = s.counter("failed_total")
		}
		s.cFailed.Inc()
	}
	s.res.Retries += er.Retries
	s.res.Replans += er.Replans
	s.res.Recalibrations += er.Recalibrations
	s.res.Fallbacks += er.Fallbacks
	s.res.RecoverySec += er.RecoverySec
	clear(s.bySeg)
}
