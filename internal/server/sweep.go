package server

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"serpentine/internal/core"
	"serpentine/internal/fault"
	"serpentine/internal/obs"
	"serpentine/internal/sim"
	"serpentine/internal/workload"
)

// SweepConfig describes the online experiment: the server run at
// every (arrival rate, batching policy, scheduler) cell, measuring
// how sojourn time and throughput respond to arrival pressure under
// each batching regime — the online analogue of the paper's
// batch-size sensitivity study.
type SweepConfig struct {
	// Serial selects the cartridge; 0 selects 1.
	Serial int64
	// RatesPerHour are the Poisson arrival rates to sweep; nil
	// selects {30, 60, 120}. A DLT4000-class drive serves roughly
	// 100-120 random retrievals per hour under LOSS, so the default
	// grid spans light load to saturation.
	RatesPerHour []float64
	// Policies are the batching policies; nil selects all three.
	Policies []BatchPolicy
	// Schedulers to compare; nil selects SORT, SLTF, SCAN, WEAVE and
	// LOSS (the paper's contenders that stay tractable at any batch
	// size an open queue can reach).
	Schedulers []core.Scheduler
	// Requests is the stream length per cell; 0 selects 300.
	Requests int
	// WindowSec is the FixedWindow period; 0 selects 600.
	WindowSec float64
	// QueueCap bounds the admission queue; 0 selects 1024.
	QueueCap int
	// MaxBatch caps each cut batch; 0 means unbounded.
	MaxBatch int
	// ReadLen is the per-request transfer length; 0 means 1.
	ReadLen int
	// Retry bounds the executor's recovery.
	Retry sim.RetryPolicy
	// Faults arms every cell's drive when any rate is non-zero. Its
	// Seed is ignored: each cell derives an injector seed from Seed
	// and the cell coordinates.
	Faults fault.Config
	// Seed seeds each cell's arrival stream (times and segments),
	// derived per cell so results do not depend on sweep order or
	// worker count.
	Seed int64
	// Workers bounds concurrent cells; 0 selects GOMAXPROCS.
	Workers int
	// Reg, when non-nil, receives every cell's metrics, merged in
	// spec order after the parallel phase so the dump is identical
	// at any worker count.
	Reg *obs.Registry
	// Spans, when non-nil, receives every cell's lifecycle spans. The
	// tracer is shared live across workers (it exists for the -listen
	// introspection endpoints), so span arrival order — unlike the
	// merged metrics — depends on scheduling; use tertiary.Sweep's
	// per-cell span capture when byte-determinism matters.
	Spans *obs.Tracer
	// Analytical replaces each cell's event-driven run with the
	// closed-form twin (AnalyticalRun): same admission, batching and
	// scheduling decisions, model-based costs instead of drive
	// emulation. Faults, metrics and spans are not produced in this
	// mode; use it for coarse grid scans. See AnalyticalRun for the
	// accuracy envelope.
	Analytical bool
}

// SweepCell is one (rate, policy, scheduler) outcome.
type SweepCell struct {
	RatePerHour float64
	Policy      BatchPolicy
	Alg         string
	Result      *Result
}

// Sweep runs every cell of the online experiment. Cells run
// concurrently up to cfg.Workers, but each cell is fully
// deterministic — its arrival stream, drive and injector seed depend
// only on the config and the cell coordinates — so the sweep's output
// is identical at any worker count.
func Sweep(cfg SweepConfig) ([]SweepCell, error) {
	rates := cfg.RatesPerHour
	if rates == nil {
		rates = []float64{30, 60, 120}
	}
	policies := cfg.Policies
	if policies == nil {
		policies = AllPolicies()
	}
	scheds := cfg.Schedulers
	if scheds == nil {
		scheds = []core.Scheduler{core.Sort{}, core.NewSLTF(), core.Scan{}, core.Weave{}, core.NewLOSS()}
	}
	n := cfg.Requests
	if n <= 0 {
		n = 300
	}

	type cellSpec struct {
		rateIdx, polIdx, algIdx int
	}
	var specs []cellSpec
	for ri := range rates {
		for pi := range policies {
			for ai := range scheds {
				specs = append(specs, cellSpec{ri, pi, ai})
			}
		}
	}
	cells := make([]SweepCell, len(specs))
	regs := make([]*obs.Registry, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				rate := rates[sp.rateIdx]
				policy := policies[sp.polIdx]
				sched := scheds[sp.algIdx]
				// One seed per cell coordinate: stable under sweep-order
				// and worker-count changes.
				seed := cfg.Seed*1000003 + int64(sp.rateIdx)*8191 + int64(sp.polIdx)*521 + int64(sp.algIdx)*131 + 7
				gen := workload.NewUniform(segmentSpace, seed+1)
				arrivals, err := PoissonStream(rate/3600, n, seed, gen)
				if err != nil {
					reportErr(errs, fmt.Errorf("server: sweep arrivals %g/h: %w", rate, err))
					return
				}
				faults := cfg.Faults
				if faults.Enabled() {
					faults.Seed = seed + 3
				}
				reg := obs.NewRegistry()
				run := Run
				if cfg.Analytical {
					run = AnalyticalRun
				}
				res, err := run(Config{
					Serial:    cfg.Serial,
					Scheduler: sched,
					Policy:    policy,
					WindowSec: cfg.WindowSec,
					QueueCap:  cfg.QueueCap,
					MaxBatch:  cfg.MaxBatch,
					ReadLen:   cfg.ReadLen,
					Retry:     cfg.Retry,
					Faults:    faults,
					Reg:       reg,
					Spans:     cfg.Spans,
					Labels: []obs.Label{
						obs.L("rate", fmt.Sprintf("%g", rate)),
						obs.L("policy", policy.String()),
						obs.L("alg", sched.Name()),
					},
				}, arrivals)
				if err != nil {
					reportErr(errs, fmt.Errorf("server: sweep cell %g/h %s %s: %w", rate, policy, sched.Name(), err))
					return
				}
				cells[i] = SweepCell{RatePerHour: rate, Policy: policy, Alg: sched.Name(), Result: res}
				regs[i] = reg
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if cfg.Reg != nil {
		// Merge in spec order so the aggregated dump is independent
		// of which worker ran which cell.
		for _, r := range regs {
			cfg.Reg.Merge(r)
		}
	}
	return cells, nil
}

// segmentSpace is the DLT4000 cartridge's segment count, the address
// space the sweep's uniform streams draw from. The paper's tape
// ("segment numbers range from 0 to 622057") has 622058 segments;
// generating a tape just to read its size would cost more than the
// constant, and Run re-validates every segment against the real
// model.
const segmentSpace = 622058

func reportErr(errs chan<- error, err error) {
	select {
	case errs <- err:
	default:
	}
}

// WriteOnline prints the sweep: one block per arrival rate, one row
// per (policy, scheduler), with sojourn-time percentiles, mean
// service time, delivered throughput and the recovery/rejection
// counters.
func WriteOnline(w io.Writer, cells []SweepCell) error {
	var rates []float64
	seen := make(map[float64]bool)
	for _, c := range cells {
		if !seen[c.RatePerHour] {
			seen[c.RatePerHour] = true
			rates = append(rates, c.RatePerHour)
		}
	}
	for _, rate := range rates {
		if _, err := fmt.Fprintf(w, "# arrival rate %g/h\n%-18s %-6s %9s %9s %9s %8s %6s %7s %6s %6s %7s %8s\n",
			rate, "policy", "alg", "p50 soj", "p95 soj", "p99 soj", "mean svc", "batch", "IO/h", "served", "rej", "replan", "util%"); err != nil {
			return err
		}
		for _, c := range cells {
			if c.RatePerHour != rate {
				continue
			}
			r := c.Result
			util := 0.0
			if r.MakespanSec > 0 {
				util = r.BusySec / r.MakespanSec * 100
			}
			meanBatch := 0.0
			if r.Batches > 0 {
				meanBatch = float64(r.Served+r.Failed) / float64(r.Batches)
			}
			if _, err := fmt.Fprintf(w, "%-18s %-6s %9.1f %9.1f %9.1f %8.1f %6.1f %7.1f %6d %6d %7d %8.2f\n",
				c.Policy, c.Alg, r.SojournP(50), r.SojournP(95), r.SojournP(99),
				r.Service.Mean(), meanBatch, r.ThroughputPerHour(),
				r.Served, r.Rejected, r.Replans+r.IncrementalReplans, util); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
