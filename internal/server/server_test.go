package server

import (
	"math"
	"reflect"
	"strconv"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/obs"
	"serpentine/internal/sim"
	"serpentine/internal/workload"
)

// run is the test harness: serve the stream, failing the test on any
// configuration error.
func run(t *testing.T, cfg Config, arrivals []Request) *Result {
	t.Helper()
	res, err := Run(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBatchingWindowEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		arrivals []Request
		check    func(t *testing.T, r *Result)
	}{
		{
			name:     "empty window: no arrivals at all",
			cfg:      Config{Policy: FixedWindow, WindowSec: 600},
			arrivals: nil,
			check: func(t *testing.T, r *Result) {
				if r.Served != 0 || r.Batches != 0 || r.MakespanSec != 0 {
					t.Fatalf("idle server did work: %+v", r)
				}
				// The idle summary is NaN-free zeros.
				for name, v := range map[string]float64{
					"p50": r.SojournP(50), "p99": r.SojournP(99),
					"throughput": r.ThroughputPerHour(), "mean svc": r.Service.Mean(),
				} {
					if v != 0 || math.IsNaN(v) {
						t.Fatalf("idle %s = %g, want 0", name, v)
					}
				}
			},
		},
		{
			name: "single request",
			cfg:  Config{Policy: FixedWindow, WindowSec: 600},
			arrivals: []Request{
				{ID: 0, Segment: 100000, ArrivalSec: 10},
			},
			check: func(t *testing.T, r *Result) {
				if r.Served != 1 || r.Batches != 1 {
					t.Fatalf("served=%d batches=%d, want 1/1", r.Served, r.Batches)
				}
				// The request waits from t=10 to the t=600 boundary
				// before dispatch, so its sojourn exceeds 590 s.
				if got := r.SojournP(50); got < 590 {
					t.Fatalf("sojourn %g s, want >= 590 (window wait)", got)
				}
			},
		},
		{
			name: "arrival exactly at the window boundary joins that batch",
			cfg:  Config{Policy: FixedWindow, WindowSec: 600},
			arrivals: []Request{
				{ID: 0, Segment: 100000, ArrivalSec: 10},
				{ID: 1, Segment: 200000, ArrivalSec: 600}, // exactly on the boundary
			},
			check: func(t *testing.T, r *Result) {
				if r.Served != 2 {
					t.Fatalf("served=%d, want 2", r.Served)
				}
				if r.Batches != 1 {
					t.Fatalf("batches=%d, want 1 — the boundary arrival must join the t=600 cut", r.Batches)
				}
			},
		},
		{
			name: "arrival just past the boundary waits for the next window",
			cfg:  Config{Policy: FixedWindow, WindowSec: 600},
			arrivals: []Request{
				{ID: 0, Segment: 100000, ArrivalSec: 10},
				{ID: 1, Segment: 200000, ArrivalSec: 600.001},
			},
			check: func(t *testing.T, r *Result) {
				if r.Served != 2 || r.Batches != 2 {
					t.Fatalf("served=%d batches=%d, want 2 served in 2 batches", r.Served, r.Batches)
				}
			},
		},
		{
			name: "queue-full rejection",
			cfg:  Config{Policy: QuiesceThenReplan, QueueCap: 2},
			arrivals: []Request{
				{ID: 0, Segment: 100000, ArrivalSec: 0},
				{ID: 1, Segment: 200000, ArrivalSec: 0},
				{ID: 2, Segment: 300000, ArrivalSec: 0},
				{ID: 3, Segment: 400000, ArrivalSec: 0},
			},
			check: func(t *testing.T, r *Result) {
				if r.Rejected != 2 {
					t.Fatalf("rejected=%d, want 2 (cap 2 at simultaneous arrival)", r.Rejected)
				}
				if r.Served != 2 {
					t.Fatalf("served=%d, want 2", r.Served)
				}
				if r.MaxQueueDepth != 2 {
					t.Fatalf("max depth=%d, want 2", r.MaxQueueDepth)
				}
				if got := r.Reg.Counter("rejected_total").Value(); got != 2 {
					t.Fatalf("rejected_total metric = %d, want 2", got)
				}
			},
		},
		{
			name: "quiesce batches whatever queued during service",
			cfg:  Config{Policy: QuiesceThenReplan},
			arrivals: []Request{
				{ID: 0, Segment: 100000, ArrivalSec: 0},
				// These three land while the first request is being
				// served (a random locate takes tens of seconds) and
				// must form one batch, not three.
				{ID: 1, Segment: 200000, ArrivalSec: 1},
				{ID: 2, Segment: 300000, ArrivalSec: 2},
				{ID: 3, Segment: 400000, ArrivalSec: 3},
			},
			check: func(t *testing.T, r *Result) {
				if r.Served != 4 {
					t.Fatalf("served=%d, want 4", r.Served)
				}
				if r.Batches != 2 {
					t.Fatalf("batches=%d, want 2 (singleton, then the quiesced three)", r.Batches)
				}
			},
		},
		{
			name: "max batch splits a cut",
			cfg:  Config{Policy: QuiesceThenReplan, MaxBatch: 2},
			arrivals: []Request{
				{ID: 0, Segment: 100000, ArrivalSec: 0},
				{ID: 1, Segment: 200000, ArrivalSec: 0},
				{ID: 2, Segment: 300000, ArrivalSec: 0},
			},
			check: func(t *testing.T, r *Result) {
				if r.Served != 3 || r.Batches != 2 {
					t.Fatalf("served=%d batches=%d, want 3 served in 2 batches", r.Served, r.Batches)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.check(t, run(t, c.cfg, c.arrivals))
		})
	}
}

func TestRunRejectsMalformedStreams(t *testing.T) {
	cases := []struct {
		name     string
		arrivals []Request
	}{
		{"out-of-range segment", []Request{{Segment: 1 << 30, ArrivalSec: 0}}},
		{"negative segment", []Request{{Segment: -1, ArrivalSec: 0}}},
		{"negative time", []Request{{Segment: 1, ArrivalSec: -1}}},
		{"time going backwards", []Request{{Segment: 1, ArrivalSec: 5}, {Segment: 2, ArrivalSec: 4}}},
		{"NaN time", []Request{{Segment: 1, ArrivalSec: math.NaN()}}},
		{"Inf time", []Request{{Segment: 1, ArrivalSec: math.Inf(1)}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Run(Config{}, c.arrivals); err == nil {
				t.Fatal("malformed stream accepted")
			}
		})
	}
}

// TestZeroArrivalEquivalentToBatchChain pins the serving layer to the
// closed-batch experiment it generalizes: with every request already
// queued at time zero and batches cut at the chain's batch size, the
// server must reproduce BatchChain's executed-mode run bit for bit —
// same per-batch durations, same total, same final head position.
func TestZeroArrivalEquivalentToBatchChain(t *testing.T) {
	const (
		serial    = int64(1)
		batchSize = 24
		batches   = 4
		seed      = int64(7)
	)
	tape, err := geometry.Generate(geometry.DLT4000(), serial)
	if err != nil {
		t.Fatal(err)
	}
	model, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}

	chain, err := sim.BatchChain(sim.ChainConfig{
		Model:     model,
		Scheduler: core.NewLOSS(),
		BatchSize: batchSize,
		Batches:   batches,
		Warmup:    1,
		Seed:      seed,
		Drive:     drive.New(tape),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The same request stream, all arrived at t=0: the generator
	// draws per batch exactly as the chain does.
	gen := workload.NewUniform(model.Segments(), seed)
	var arrivals []Request
	for b := 0; b < batches; b++ {
		for _, seg := range gen.Batch(batchSize) {
			arrivals = append(arrivals, Request{ID: len(arrivals), Segment: seg})
		}
	}
	res := run(t, Config{
		Serial:    serial,
		Scheduler: core.NewLOSS(),
		Policy:    QuiesceThenReplan,
		QueueCap:  len(arrivals),
		MaxBatch:  batchSize,
	}, arrivals)

	if res.Served != batchSize*batches {
		t.Fatalf("served=%d, want %d", res.Served, batchSize*batches)
	}
	if res.Batches != batches {
		t.Fatalf("batches=%d, want %d", res.Batches, batches)
	}
	if res.FinalHead != chain.FinalHead {
		t.Fatalf("final head %d, chain %d", res.FinalHead, chain.FinalHead)
	}
	// BatchChain's TotalSec covers the post-warmup batches; the
	// server's per-batch durations must match it exactly (same float
	// operations in the same order — byte-identical, not approximate).
	var total float64
	for _, d := range res.BatchDurations[1:] {
		total += d
	}
	if total != chain.TotalSec {
		t.Fatalf("measured batch time %v, chain %v — executed paths diverged", total, chain.TotalSec)
	}
	if res.IdleSec != 0 {
		t.Fatalf("zero-arrival run accounted %g s idle", res.IdleSec)
	}
}

// TestReplanOnArrivalReplansIncrementally drives the incremental
// policy with arrivals timed to land mid-service and checks the
// re-scheduling actually happens.
func TestReplanOnArrivalReplansIncrementally(t *testing.T) {
	arrivals := []Request{
		{ID: 0, Segment: 100000, ArrivalSec: 0},
		{ID: 1, Segment: 500000, ArrivalSec: 0},
		// Land while the first two are in service.
		{ID: 2, Segment: 120000, ArrivalSec: 5},
		{ID: 3, Segment: 510000, ArrivalSec: 6},
	}
	res := run(t, Config{Policy: ReplanOnArrival, Scheduler: core.NewSLTF()}, arrivals)
	if res.Served != 4 {
		t.Fatalf("served=%d, want 4", res.Served)
	}
	if res.IncrementalReplans == 0 {
		t.Fatal("mid-service arrivals never triggered an incremental replan")
	}
	if got := res.Reg.Counter("incremental_replans_total").Value(); got != int64(res.IncrementalReplans) {
		t.Fatalf("metric says %d incremental replans, result says %d", got, res.IncrementalReplans)
	}
}

// TestServerEmitsObservability checks the metric surface: drive-op
// counters and histograms, sojourn/service histograms, and the trace.
func TestServerEmitsObservability(t *testing.T) {
	reg := obs.NewRegistry()
	arrivals := []Request{
		{ID: 0, Segment: 100000, ArrivalSec: 0},
		{ID: 1, Segment: 300000, ArrivalSec: 0},
	}
	res := run(t, Config{
		Policy:   QuiesceThenReplan,
		Reg:      reg,
		Labels:   []obs.Label{obs.L("cell", "test")},
		TraceCap: 16,
	}, arrivals)
	if res.Reg != reg {
		t.Fatal("result does not expose the provided registry")
	}
	if got := reg.Counter("served_total", obs.L("cell", "test")).Value(); got != 2 {
		t.Fatalf("served_total = %d, want 2", got)
	}
	locates := reg.Counter("drive_ops_total", obs.L("op", "locate"), obs.L("cell", "test")).Value()
	if locates < 2 {
		t.Fatalf("drive_ops_total{op=locate} = %d, want >= 2", locates)
	}
	h := reg.Histogram("sojourn_seconds", obs.L("cell", "test"))
	if h.Count() != 2 || h.Quantile(99) <= 0 {
		t.Fatalf("sojourn histogram count=%d p99=%g", h.Count(), h.Quantile(99))
	}
	tr := reg.Trace()
	if tr == nil || tr.Total() == 0 {
		t.Fatal("trace did not record drive operations")
	}
	ev := tr.Events()[0]
	if ev.Op == "" || ev.ElapsedSec < 0 {
		t.Fatalf("malformed trace event %+v", ev)
	}
}

// TestSojournAccounting pins the metric definitions: sojourn is
// completion minus arrival, service is completion minus dispatch, so
// for a request that waits w seconds before its batch starts,
// sojourn = w + service.
func TestSojournAccounting(t *testing.T) {
	res := run(t, Config{Policy: FixedWindow, WindowSec: 100}, []Request{
		{ID: 0, Segment: 250000, ArrivalSec: 40},
	})
	if res.Served != 1 {
		t.Fatalf("served=%d, want 1", res.Served)
	}
	wait := 100.0 - 40.0 // arrival to window boundary
	got := res.SojournTimes[0] - res.ServiceTimes[0]
	if math.Abs(got-wait) > 1e-9 {
		t.Fatalf("sojourn-service = %g, want %g (the admission wait)", got, wait)
	}
}

// Attaching span tracing must not change one bit of a run: batching
// decisions, completions and recovery accounting are all clock-driven,
// and spans only read the clock.
func TestSpanTracingDoesNotPerturbTiming(t *testing.T) {
	gen := workload.NewUniform(segmentSpace, 42)
	arrivals, err := PoissonStream(120.0/3600, 60, 7, gen)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range AllPolicies() {
		cfg := Config{
			Policy:    policy,
			Scheduler: core.NewSLTF(),
			Faults:    fault.Config{TransientRate: 0.05, OvershootRate: 0.02, LostRate: 0.005, Seed: 9},
		}
		bare := run(t, cfg, arrivals)
		cfg.Spans = obs.NewTracer(1 << 16)
		traced := run(t, cfg, arrivals)

		bare.Reg, traced.Reg = nil, nil // registries hold pointers, compared via the dumps elsewhere
		if !reflect.DeepEqual(bare, traced) {
			t.Fatalf("%s: span tracing perturbed the run:\nbare:   %+v\ntraced: %+v", policy, bare, traced)
		}

		// The trace must describe the run: a root span covering the
		// makespan, request spans whose queue child matches the
		// queue_sec attribute.
		spans := cfg.Spans.Spans()
		requests, queues := 0, 0
		byID := make(map[uint64]obs.Span)
		for _, s := range spans {
			byID[s.ID] = s
		}
		for _, s := range spans {
			switch s.Name {
			case "run":
				if s.StartSec != 0 || math.Abs(s.EndSec-traced.MakespanSec) > 1e-9 {
					t.Fatalf("%s: run span [%g,%g], want [0,%g]", policy, s.StartSec, s.EndSec, traced.MakespanSec)
				}
			case "request":
				requests++
			case "queue":
				queues++
				parent := byID[s.Parent]
				want := ""
				for _, a := range parent.Attrs {
					if a.Key == "queue_sec" {
						want = a.Value
					}
				}
				if got := strconv.FormatFloat(s.DurationSec(), 'g', -1, 64); want != "" && got != want {
					t.Fatalf("%s: queue span duration %s, parent queue_sec attr %s", policy, got, want)
				}
			}
		}
		if requests != traced.Served || queues != requests {
			t.Fatalf("%s: %d request spans, %d queue spans, served %d", policy, requests, queues, traced.Served)
		}
	}
}
