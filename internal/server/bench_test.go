package server

import (
	"testing"

	"serpentine/internal/workload"
)

// BenchmarkServerSteadyState runs the single-drive online server end
// to end over a representative Poisson stream — the arrival loop,
// admission queue, batch cutting, scheduling and execution — and
// reports the simulated-request throughput. Tracked in
// BENCH_PR6.json alongside the library-sweep cell.
func BenchmarkServerSteadyState(b *testing.B) {
	const n = 300
	gen := workload.NewUniform(segmentSpace, 12346)
	arrivals, err := PoissonStream(120.0/3600, n, 12345, gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{}, arrivals)
		if err != nil {
			b.Fatal(err)
		}
		if res.Served != n {
			b.Fatalf("served %d of %d", res.Served, n)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
}
