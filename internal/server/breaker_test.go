package server

import "testing"

func TestBreakerStates(t *testing.T) {
	b := NewBreaker(4)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("fresh breaker state %v, want closed", got)
	}
	if !b.Admits(true) || !b.Admits(false) {
		t.Fatal("closed breaker rejected traffic")
	}
	if got := b.EffectiveCap(100); got != 100 {
		t.Fatalf("closed EffectiveCap(100) = %d", got)
	}

	b.SetLive(2)
	if got := b.State(); got != BreakerBrownout {
		t.Fatalf("state at 2/4 live %v, want brownout", got)
	}
	if b.Admits(true) {
		t.Fatal("brownout admitted best-effort work")
	}
	if !b.Admits(false) {
		t.Fatal("brownout shed non-best-effort work")
	}
	if got := b.EffectiveCap(100); got != 50 {
		t.Fatalf("brownout EffectiveCap(100) = %d, want 50", got)
	}
	if got := b.EffectiveCap(0); got != 0 {
		t.Fatalf("unbounded cap scaled to %d, want 0 (still unbounded)", got)
	}

	b.SetLive(0)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state at 0/4 live %v, want open", got)
	}
	if b.Admits(false) {
		t.Fatal("open breaker admitted work")
	}

	// Repair re-admits automatically.
	b.SetLive(4)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after repair %v, want closed", got)
	}
	if !b.Admits(true) {
		t.Fatal("repaired breaker still shedding")
	}
}

func TestBreakerClamps(t *testing.T) {
	b := NewBreaker(0) // below 1 selects 1
	if b.Live() != 1 {
		t.Fatalf("live %d, want 1", b.Live())
	}
	b.SetLive(-3)
	if b.Live() != 0 || b.State() != BreakerOpen {
		t.Fatalf("negative SetLive: live %d state %v", b.Live(), b.State())
	}
	b.SetLive(99)
	if b.Live() != 1 || b.State() != BreakerClosed {
		t.Fatalf("oversized SetLive: live %d state %v", b.Live(), b.State())
	}
}

func TestBreakerEffectiveCapRounding(t *testing.T) {
	b := NewBreaker(3)
	b.SetLive(1)
	// ceil(10 * 1/3) = 4; never below 1 while a drive lives.
	if got := b.EffectiveCap(10); got != 4 {
		t.Fatalf("EffectiveCap(10) at 1/3 = %d, want 4", got)
	}
	if got := b.EffectiveCap(1); got != 1 {
		t.Fatalf("EffectiveCap(1) at 1/3 = %d, want 1", got)
	}
}

func TestRequestExpired(t *testing.T) {
	r := Request{Deadline: 100}
	if r.Expired(99) || r.Expired(100) {
		t.Fatal("request expired before its deadline")
	}
	if !r.Expired(100.5) {
		t.Fatal("request not expired past its deadline")
	}
	if (Request{}).Expired(1e12) {
		t.Fatal("zero deadline expired")
	}
}

func TestBreakerEffectiveCapDegenerate(t *testing.T) {
	// cap ∈ {-1, 0, 1} × live ∈ {0, 1, configured}: a negative
	// configured capacity is nonsense and clamps to 0 (unbounded, as
	// callers treat 0); 0 passes through; a positive capacity never
	// scales below 1.
	cases := []struct {
		cap, live, want int
	}{
		{-1, 0, 0}, {-1, 1, 0}, {-1, 2, 0},
		{0, 0, 0}, {0, 1, 0}, {0, 2, 0},
		{1, 0, 1}, {1, 1, 1}, {1, 2, 1},
	}
	for _, c := range cases {
		b := NewBreaker(2)
		b.SetLive(c.live)
		if got := b.EffectiveCap(c.cap); got != c.want {
			t.Errorf("EffectiveCap(%d) at live %d/2 = %d, want %d", c.cap, c.live, got, c.want)
		}
	}
}
