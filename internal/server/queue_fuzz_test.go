package server

import "testing"

// FuzzAdmissionQueue drives the queue with an arbitrary op sequence
// and checks its invariants against a naive slice model: FIFO order,
// the capacity bound, and counter consistency. Each byte of the input
// is one op: even values offer, odd values pop (value/2 + 1 items).
func FuzzAdmissionQueue(f *testing.F) {
	f.Add(uint8(4), []byte{0, 2, 4, 1, 0, 0, 0, 3, 255})
	f.Add(uint8(1), []byte{0, 0, 0, 1, 0, 1})
	f.Add(uint8(0), []byte{0, 1})
	f.Add(uint8(16), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 31})
	f.Fuzz(func(t *testing.T, capacity uint8, ops []byte) {
		q := NewAdmissionQueue(int(capacity))
		wantCap := int(capacity)
		if wantCap < 1 {
			wantCap = 1
		}
		if q.Cap() != wantCap {
			t.Fatalf("cap=%d, want %d", q.Cap(), wantCap)
		}
		var (
			model              []int
			next               int
			admitted, rejected int
			maxDepth           int
		)
		for _, op := range ops {
			if op%2 == 0 { // offer
				ok := q.Offer(Request{ID: next})
				wantOK := len(model) < wantCap
				if ok != wantOK {
					t.Fatalf("offer(%d) = %v with depth %d/%d", next, ok, len(model), wantCap)
				}
				if ok {
					model = append(model, next)
					admitted++
					if len(model) > maxDepth {
						maxDepth = len(model)
					}
				} else {
					rejected++
				}
				next++
			} else { // pop
				n := int(op)/2 + 1
				got := q.PopN(n)
				want := n
				if want > len(model) {
					want = len(model)
				}
				if len(got) != want {
					t.Fatalf("PopN(%d) returned %d items, want %d", n, len(got), want)
				}
				for i, r := range got {
					if r.ID != model[i] {
						t.Fatalf("PopN order: got ID %d at %d, want %d", r.ID, i, model[i])
					}
				}
				model = model[want:]
			}
			if q.Len() != len(model) {
				t.Fatalf("Len=%d, model %d", q.Len(), len(model))
			}
		}
		if q.Admitted() != admitted || q.Rejected() != rejected || q.MaxDepth() != maxDepth {
			t.Fatalf("counters admitted=%d/%d rejected=%d/%d maxDepth=%d/%d",
				q.Admitted(), admitted, q.Rejected(), rejected, q.MaxDepth(), maxDepth)
		}
	})
}
