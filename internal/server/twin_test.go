package server

import (
	"math"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/workload"
)

// TestAnalyticalTwinAccuracy pins the analytical twin's documented
// accuracy envelope: on the paper's Fig. 6/7 operating points — closed
// batches of N random retrievals under LOSS, N spanning solitary I/O
// to the paper's 96-request schedules, at transfer lengths from one
// segment to the ~MB class — the twin's mean sojourn is within 5% of
// the discrete-event sim's. The residual is the locate model's
// interpolation error against the emulated drive's per-cartridge
// personality, the same residual the paper's Figure 8 measures.
func TestAnalyticalTwinAccuracy(t *testing.T) {
	t.Parallel()
	points := []struct {
		n, readLen int
	}{
		{1, 1},
		{1, 32},
		{10, 1},
		{10, 32},
		{96, 1},
		{96, 32},
	}
	for _, pt := range points {
		gen := workload.NewUniform(segmentSpace-pt.readLen, int64(9000+pt.n*64+pt.readLen))
		arrivals := make([]Request, pt.n)
		for i := range arrivals {
			arrivals[i] = Request{ID: i, Segment: gen.Next()}
		}
		cfg := Config{
			Scheduler: core.NewLOSS(),
			ReadLen:   pt.readLen,
		}
		sim, err := Run(cfg, arrivals)
		if err != nil {
			t.Fatalf("N=%d L=%d: sim: %v", pt.n, pt.readLen, err)
		}
		twin, err := AnalyticalRun(cfg, arrivals)
		if err != nil {
			t.Fatalf("N=%d L=%d: twin: %v", pt.n, pt.readLen, err)
		}
		if twin.Served != sim.Served || twin.Batches != sim.Batches {
			t.Fatalf("N=%d L=%d: twin served %d in %d batches, sim %d in %d",
				pt.n, pt.readLen, twin.Served, twin.Batches, sim.Served, sim.Batches)
		}
		simMean, twinMean := sim.Sojourn.Mean(), twin.Sojourn.Mean()
		relErr := math.Abs(twinMean-simMean) / simMean
		t.Logf("N=%d L=%d: sim mean sojourn %.2fs, twin %.2fs, error %.2f%%",
			pt.n, pt.readLen, simMean, twinMean, relErr*100)
		if relErr > 0.05 {
			t.Errorf("N=%d L=%d: twin mean sojourn %.2fs vs sim %.2fs: %.1f%% error exceeds the 5%% envelope",
				pt.n, pt.readLen, twinMean, simMean, relErr*100)
		}
		if busyErr := math.Abs(twin.BusySec-sim.BusySec) / sim.BusySec; busyErr > 0.05 {
			t.Errorf("N=%d L=%d: twin busy %.2fs vs sim %.2fs: %.1f%% error exceeds the 5%% envelope",
				pt.n, pt.readLen, twin.BusySec, sim.BusySec, busyErr*100)
		}
	}
}

// TestAnalyticalTwinOpenStream sanity-checks the twin off the closed
// operating points: a Poisson stream through each batching policy
// still lands near the sim (decisions can diverge once service-time
// differences shift batch boundaries, so the bound is looser than the
// closed-batch envelope).
func TestAnalyticalTwinOpenStream(t *testing.T) {
	t.Parallel()
	for _, policy := range AllPolicies() {
		gen := workload.NewUniform(segmentSpace, 7301)
		arrivals, err := PoissonStream(60.0/3600, 120, 7300, gen)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Scheduler: core.NewLOSS(), Policy: policy, WindowSec: 300}
		sim, err := Run(cfg, arrivals)
		if err != nil {
			t.Fatalf("%s: sim: %v", policy, err)
		}
		twin, err := AnalyticalRun(cfg, arrivals)
		if err != nil {
			t.Fatalf("%s: twin: %v", policy, err)
		}
		if twin.Served != sim.Served {
			t.Fatalf("%s: twin served %d, sim %d", policy, twin.Served, sim.Served)
		}
		simMean, twinMean := sim.Sojourn.Mean(), twin.Sojourn.Mean()
		relErr := math.Abs(twinMean-simMean) / simMean
		t.Logf("%s: sim mean sojourn %.2fs, twin %.2fs, error %.2f%%", policy, simMean, twinMean, relErr*100)
		if relErr > 0.10 {
			t.Errorf("%s: twin mean sojourn %.2fs vs sim %.2fs: %.1f%% error exceeds 10%%",
				policy, twinMean, simMean, relErr*100)
		}
	}
}
