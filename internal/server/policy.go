package server

import "fmt"

// BatchPolicy selects when the server cuts a batch from the admission
// queue and hands it to the scheduler. The paper's batch-size study
// (Sections 5 and 7) is the closed-batch limit of this trade: bigger
// batches give the scheduler more to optimize but hold early arrivals
// hostage to later ones. The three policies span the spectrum.
type BatchPolicy int

const (
	// QuiesceThenReplan serves the current batch to completion, then
	// cuts everything that queued while the drive was busy as the
	// next batch. Batch size adapts to load: light traffic degrades
	// to one-at-a-time service, heavy traffic grows batches until the
	// scheduler's gains catch up with the arrival rate.
	QuiesceThenReplan BatchPolicy = iota
	// ReplanOnArrival serves one request at a time off the current
	// plan and re-schedules the remaining work from the current head
	// position whenever new requests arrived during the last service
	// — the incremental re-scheduling regime, maximum schedule
	// freshness for a planning cost on every arrival burst.
	ReplanOnArrival
	// FixedWindow cuts a batch at every multiple of the window
	// length, serving everything that arrived up to and including the
	// boundary. Arrival exactly at a boundary joins that window's
	// batch. The schedule-quality/startup-latency trade becomes an
	// explicit knob: the window.
	FixedWindow
)

// String names the policy for tables and metric labels.
func (p BatchPolicy) String() string {
	switch p {
	case QuiesceThenReplan:
		return "quiesce"
	case ReplanOnArrival:
		return "replan-on-arrival"
	case FixedWindow:
		return "fixed-window"
	}
	return fmt.Sprintf("BatchPolicy(%d)", int(p))
}

// PolicyByName returns the named policy, or an error listing the
// valid names.
func PolicyByName(name string) (BatchPolicy, error) {
	for _, p := range AllPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("server: unknown batch policy %q (want quiesce, replan-on-arrival or fixed-window)", name)
}

// AllPolicies returns every batching policy, in sweep order.
func AllPolicies() []BatchPolicy {
	return []BatchPolicy{QuiesceThenReplan, ReplanOnArrival, FixedWindow}
}
