package server

import (
	"fmt"
	"sort"

	"serpentine/internal/workload"
)

// Request is one retrieval arriving at the service: which segment,
// and when on the virtual clock it showed up.
type Request struct {
	// ID numbers the request within its stream, in arrival order.
	ID int
	// Segment is the tape segment to retrieve.
	Segment int
	// ArrivalSec is the arrival time on the virtual clock.
	ArrivalSec float64
	// Deadline is the absolute virtual time after which serving the
	// request is pointless; a still-queued request past it is shed
	// rather than dispatched. 0 means no deadline. The recommended
	// default budget is sim.DefaultRequestTimeoutSec past arrival —
	// the same constant that bounds the executor's per-request drive
	// time, so the admission and execution timeout paths cannot
	// silently diverge (see Config.DeadlineSec).
	Deadline float64
	// BestEffort marks work the service may shed first under
	// degraded capacity: the brownout admission state (Breaker)
	// rejects best-effort arrivals while any drive is down and all
	// arrivals while every drive is down.
	BestEffort bool
}

// Expired reports whether the request's deadline (if any) has passed
// at virtual time now.
func (r Request) Expired(now float64) bool {
	return r.Deadline > 0 && now > r.Deadline
}

// PoissonStream builds n requests with Poisson arrival times at
// ratePerSec and segments drawn from gen — the online analogue of the
// paper's uniformly random batches. Times and segments come from two
// independent lrand48 streams derived from seed, so the same seed
// reproduces the same trace regardless of how it is consumed.
func PoissonStream(ratePerSec float64, n int, seed int64, gen workload.Generator) ([]Request, error) {
	if gen == nil {
		return nil, fmt.Errorf("server: PoissonStream needs a segment generator")
	}
	times, err := workload.PoissonArrivals(ratePerSec, n, seed)
	if err != nil {
		return nil, err
	}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: i, Segment: gen.Batch(1)[0], ArrivalSec: times[i]}
	}
	return reqs, nil
}

// TraceStream builds a request stream from explicit (time, segment)
// pairs, for replaying recorded workloads. The pairs are sorted by
// arrival time (stably, preserving the given order of simultaneous
// arrivals) and re-numbered in that order.
func TraceStream(times []float64, segments []int) ([]Request, error) {
	if len(times) != len(segments) {
		return nil, fmt.Errorf("server: trace has %d times but %d segments", len(times), len(segments))
	}
	reqs := make([]Request, len(times))
	for i := range reqs {
		if times[i] < 0 {
			return nil, fmt.Errorf("server: trace arrival %d at negative time %g", i, times[i])
		}
		reqs[i] = Request{ID: i, Segment: segments[i], ArrivalSec: times[i]}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ArrivalSec < reqs[j].ArrivalSec })
	for i := range reqs {
		reqs[i].ID = i
	}
	return reqs, nil
}
