package drive

import (
	"errors"
	"fmt"

	"serpentine/internal/fault"
)

// Sentinel errors. Every failure the drive returns wraps exactly one
// of these, so callers dispatch with errors.Is rather than string
// matching. The injected-fault sentinels (ErrTransient, ErrOvershoot,
// ErrLostPosition, ErrMedia) additionally arrive wrapped in a
// *FaultError carrying the operation context; plain usage errors
// (ErrOutOfRange, ErrEndOfTape) do not.
var (
	// ErrOutOfRange marks a request for a segment the cartridge does
	// not have, or a non-positive transfer length: caller bugs, not
	// drive faults. Retrying cannot help.
	ErrOutOfRange = errors.New("drive: segment out of range")

	// ErrTransient is a retryable read failure: the transfer
	// completed mechanically but the data failed its check. The time
	// of the failed attempt has been charged to the clock and the
	// head has moved past the read range; retry by locating back.
	ErrTransient = errors.New("drive: transient read error")

	// ErrOvershoot is a locate that landed past its target after a
	// servo retry. The head position in the FaultError is where the
	// transport actually stopped; re-locate from there.
	ErrOvershoot = errors.New("drive: locate overshoot")

	// ErrLostPosition means the servo lost its absolute position.
	// Every subsequent operation fails the same way until Recalibrate
	// rewinds to the beginning of tape.
	ErrLostPosition = errors.New("drive: lost servo position")

	// ErrMedia is a permanently unreadable segment. Retries fail
	// deterministically; the request must be abandoned.
	ErrMedia = errors.New("drive: hard media error")
)

// FaultError carries the context of an injected drive fault: which
// operation failed, the segment it was addressing, where the head
// ended up, and the time the failed attempt cost. It wraps one of the
// fault sentinels, so errors.Is(err, drive.ErrTransient) etc. work
// through it.
type FaultError struct {
	// Op is the failed operation: "locate" or "read".
	Op string
	// Segment is the segment the operation was addressing (the locate
	// target, or the unreadable segment for media errors).
	Segment int
	// Pos is the head position after the failed attempt. Meaningless
	// when Err is ErrLostPosition.
	Pos int
	// Elapsed is the virtual time the failed attempt consumed.
	Elapsed float64
	// Class is the injected failure class.
	Class fault.Class
	// Err is the matching sentinel.
	Err error
}

// Error formats the fault with its context.
func (e *FaultError) Error() string {
	return fmt.Sprintf("%v: %s of segment %d (head at %d, %.2fs lost)",
		e.Err, e.Op, e.Segment, e.Pos, e.Elapsed)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *FaultError) Unwrap() error { return e.Err }
