package drive

import (
	"errors"
	"strings"
	"testing"

	"serpentine/internal/fault"
)

// Every failure path of the drive must wrap exactly one sentinel so
// that callers dispatch with errors.Is; injected faults must
// additionally expose a *FaultError through errors.As.
func TestErrorPathsWrapSentinels(t *testing.T) {
	segs := func(d *Drive) int { return d.Tape().Segments() }

	cases := []struct {
		name      string
		op        func(d *Drive) error
		drive     func(t *testing.T) *Drive
		sentinel  error
		wantFault bool        // a *FaultError must be exposed via errors.As
		class     fault.Class // its Class, when wantFault
	}{
		{
			name:     "locate below range",
			op:       func(d *Drive) error { _, err := d.Locate(-1); return err },
			sentinel: ErrOutOfRange,
		},
		{
			name:     "locate past end",
			op:       func(d *Drive) error { _, err := d.Locate(segs(d)); return err },
			sentinel: ErrOutOfRange,
		},
		{
			name:     "read of zero segments",
			op:       func(d *Drive) error { _, err := d.Read(0); return err },
			sentinel: ErrOutOfRange,
		},
		{
			name:     "read of negative segments",
			op:       func(d *Drive) error { _, err := d.Read(-3); return err },
			sentinel: ErrOutOfRange,
		},
		{
			name: "read past end of tape",
			op: func(d *Drive) error {
				if _, err := d.Locate(segs(d) - 2); err != nil {
					t.Fatal(err)
				}
				_, err := d.Read(10)
				return err
			},
			sentinel: ErrEndOfTape,
		},
		{
			name:  "transient read",
			drive: faultyDrive(fault.Config{TransientRate: 1, Seed: 1}),
			op: func(d *Drive) error {
				if _, err := d.Locate(1000); err != nil {
					t.Fatal(err)
				}
				_, err := d.Read(1)
				return err
			},
			sentinel:  ErrTransient,
			wantFault: true,
			class:     fault.Transient,
		},
		{
			name:      "locate overshoot",
			drive:     faultyDrive(fault.Config{OvershootRate: 1, Seed: 1}),
			op:        func(d *Drive) error { _, err := d.Locate(1000); return err },
			sentinel:  ErrOvershoot,
			wantFault: true,
			class:     fault.Overshoot,
		},
		{
			name:      "lost servo position",
			drive:     faultyDrive(fault.Config{LostRate: 1, Seed: 1}),
			op:        func(d *Drive) error { _, err := d.Locate(1000); return err },
			sentinel:  ErrLostPosition,
			wantFault: true,
			class:     fault.LostPosition,
		},
		{
			name:      "hard media error",
			drive:     faultyDrive(fault.Config{MediaRate: 1, Seed: 1}),
			op:        func(d *Drive) error { _, err := d.Read(1); return err },
			sentinel:  ErrMedia,
			wantFault: true,
			class:     fault.Media,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d *Drive
			if tc.drive != nil {
				d = tc.drive(t)
			} else {
				d = New(newTape(t, 1))
			}
			err := tc.op(d)
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			// Each failure wraps exactly one sentinel.
			for _, other := range []error{ErrOutOfRange, ErrEndOfTape, ErrTransient, ErrOvershoot, ErrLostPosition, ErrMedia} {
				if other != tc.sentinel && errors.Is(err, other) {
					t.Fatalf("%v also matches %v", err, other)
				}
			}
			var fe *FaultError
			if got := errors.As(err, &fe); got != tc.wantFault {
				t.Fatalf("errors.As(*FaultError) = %v, want %v", got, tc.wantFault)
			}
			if tc.wantFault {
				if fe.Class != tc.class {
					t.Fatalf("fault class %v, want %v", fe.Class, tc.class)
				}
				if fe.Op != "locate" && fe.Op != "read" {
					t.Fatalf("fault op %q", fe.Op)
				}
				if !strings.Contains(fe.Error(), "segment") {
					t.Fatalf("uninformative fault message %q", fe.Error())
				}
			}
		})
	}
}

// faultyDrive returns a drive constructor with the given fault mix.
func faultyDrive(cfg fault.Config) func(t *testing.T) *Drive {
	return func(t *testing.T) *Drive {
		t.Helper()
		return New(newTape(t, 1), WithFaults(fault.New(cfg)))
	}
}
