// Package drive emulates a DLT4000-class serpentine tape drive. It is
// the stand-in for the physical hardware of the paper's validation
// and sensitivity experiments (Sections 3, 6 and 7): a device whose
// true positioning behaviour deviates from the host-side locate model
// in the same structured ways a real drive does, so that comparing
// estimated against "measured" schedule execution times exercises the
// same code paths and reproduces the same error shapes.
//
// Ground truth diverges from the host model through four mechanisms:
//
//   - exact geometry: the drive positions over the cartridge's true
//     physical layout, while the host model works from key points and
//     a uniform-density assumption;
//   - cartridge personality: hidden per-tape skews of the transport
//     speeds (geometry.Tape.Personality) that the model's nominal
//     constants cannot capture;
//   - end-zone error: positioning near the physical ends of a track
//     takes systematically longer than the model predicts — the
//     region the paper calls out as "less accurate", responsible for
//     the error growth on large schedules (Figure 8);
//   - measurement noise: small per-operation jitter plus rare
//     multi-second outliers (servo retries), matching the paper's
//     report of 7 locates in 3000 off by more than 2 s on the
//     model-development tape.
//
// The drive keeps a virtual clock: every operation returns its
// elapsed time and advances Clock. Nothing sleeps.
package drive

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/rand48"
)

// Tunables of the emulator's divergence from the host model; see the
// package comment. They are exported for the sensitivity experiments.
const (
	// EndZoneWidth is the physical distance (in section units) from
	// a track end within which positioning accrues extra time.
	EndZoneWidth = 1.0
	// EndZoneMaxSec is the largest end-zone penalty, at the very
	// edge of a track.
	EndZoneMaxSec = 1.4
	// NoiseSigmaSec is the approximate standard deviation of the
	// per-locate measurement noise.
	NoiseSigmaSec = 0.35
	// OutlierProb is the probability that a locate hits a servo
	// retry outlier.
	OutlierProb = 0.002
	// OutlierMinSec and OutlierMaxSec bound the outlier penalty.
	OutlierMinSec = 5.0
	OutlierMaxSec = 20.0
	// BackhitchMaxSec is the largest extra settle cost of a short
	// same-track repositioning (a backhitch: the transport stops,
	// reverses a fraction of a section, and reacquires the track
	// without a fresh head-step reference). The host model misses
	// this cost. Backhitches are nearly absent between random
	// segment pairs (they need the same track and a sub-section scan)
	// but dominate dense schedules, which is what makes the model's
	// error grow with schedule size (Figure 8) while staying tiny on
	// random locates (Section 3).
	BackhitchMaxSec = 1.3
	// BackhitchScanSections is the scan distance below which the
	// backhitch cost applies.
	BackhitchScanSections = 1.5
	// ReacquireSec scales the extra cost of a short forward skip (a
	// case-1 move that jumps over data instead of streaming to the
	// next segment): the transport breaks streaming and must
	// reacquire it. The model, calibrated on long locates, misses
	// this region — the paper's explanation for the error growth on
	// large schedules, "numerous short locates ... less accurate".
	// Between uniformly random segment pairs a case-1 move needs the
	// same track and a small forward distance (~0.03% of pairs), so
	// raw locate accuracy (Section 3) is unaffected.
	ReacquireSec = 0.6
	// ReacquireSkipSections is the case-1 distance above which a
	// move is a skip rather than a continuation of streaming.
	ReacquireSkipSections = 0.03
	// OvershootSettleSec is the settle cost of an overshooting locate
	// on top of the travel to its (wrong) landing point.
	OvershootSettleSec = 2.5
	// RecalibrateSec is the servo-reacquisition cost at the beginning
	// of tape after a lost position, on top of the rewind itself.
	RecalibrateSec = 4.0
)

// ErrEndOfTape is returned when a read would run past the last
// segment. The remaining sentinels live in errors.go.
var ErrEndOfTape = errors.New("drive: end of tape")

// Stats accumulates operation counts and wear indicators.
type Stats struct {
	// Locates is the number of locate operations executed.
	Locates int
	// SegmentsRead is the number of segments transferred.
	SegmentsRead int
	// Rewinds is the number of rewind operations.
	Rewinds int
	// LocateSec, ReadSec and RewindSec partition the busy time.
	LocateSec float64
	ReadSec   float64
	RewindSec float64
	// WaitSec is host-imposed idle time (retry backoff) charged via
	// Wait.
	WaitSec float64
	// Recalibrations counts rewind-to-BOT recoveries from lost servo
	// position; each also counts as a Rewind.
	Recalibrations int
	// FaultsInjected counts injected failures surfaced as errors
	// (transient, overshoot, lost position, media).
	FaultsInjected int
	// DistanceSections is the total physical distance the tape moved
	// under the head, in section units. Dividing by the track length
	// approximates head passes, the tape-wear unit of the paper's
	// Section 2 (DLT media is rated for 500,000 passes).
	DistanceSections float64
}

// HeadPasses estimates full-length head passes from the distance
// moved.
func (s Stats) HeadPasses(p geometry.Params) float64 {
	return s.DistanceSections / p.NominalTrackLength()
}

// Drive is one emulated transport with one loaded cartridge. It is
// not safe for concurrent use; a real SCSI device serializes
// commands, and so do we.
type Drive struct {
	tape    *geometry.Tape
	truth   *locate.Model // exact geometry, personality-adjusted constants
	nominal geometry.Params
	rng     *rand48.Source
	noisy   bool
	inj     *fault.Injector
	trace   TraceFunc

	pos   int
	lost  bool
	clock float64
	stats Stats
}

// Option configures a Drive.
type Option func(*Drive)

// WithNoiseSeed seeds the measurement-noise generator; the default
// seed derives from the cartridge serial so repeated runs repeat.
func WithNoiseSeed(seed int64) Option {
	return func(d *Drive) { d.rng = rand48.New(seed) }
}

// WithoutNoise disables measurement noise and outliers (end-zone
// error and personality remain: they are properties of the physics,
// not of measurement).
func WithoutNoise() Option {
	return func(d *Drive) { d.noisy = false }
}

// WithFaults attaches a fault injector: operations then fail with the
// typed errors of errors.go at the injector's configured rates, with
// the virtual clock still charged for each failed attempt. A nil
// injector (the default) means no injected faults, and the drive's
// behaviour — including its noise stream — is bit-identical to a
// drive constructed without this option.
func WithFaults(inj *fault.Injector) Option {
	return func(d *Drive) { d.inj = inj }
}

// truthModels caches the personality-adjusted ground-truth model per
// cartridge. The model is a pure function of the immutable tape
// (layout plus hidden personality), costs milliseconds and megabytes
// to build, and is itself immutable and safe to share — while the
// event-driven library exchanges cartridges in and out of drives
// thousands of times per run. The cache is keyed by tape identity and
// lives for the process, bounded by the number of distinct cartridges
// an experiment generates.
var truthModels sync.Map // *geometry.Tape -> *locate.Model

func truthModel(tape *geometry.Tape) *locate.Model {
	if m, ok := truthModels.Load(tape); ok {
		return m.(*locate.Model)
	}
	nominal := tape.Params()
	rs, ss, oh := tape.Personality()
	truthParams := nominal
	truthParams.ReadSecPerSection *= 1 + rs
	truthParams.ScanSecPerSection *= 1 + ss
	truthParams.OverheadSec += oh
	if truthParams.OverheadSec < 0 {
		truthParams.OverheadSec = 0
	}
	m, _ := truthModels.LoadOrStore(tape, locate.NewModel(tape.View().WithParams(truthParams)))
	return m.(*locate.Model)
}

// New loads a cartridge into a fresh drive. The head starts at the
// beginning of tape (segment 0).
func New(tape *geometry.Tape, opts ...Option) *Drive {
	d := &Drive{
		tape:    tape,
		truth:   truthModel(tape),
		nominal: tape.Params(),
		rng:     rand48.New(tape.Serial()*7919 + 17),
		noisy:   true,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Tape returns the loaded cartridge.
func (d *Drive) Tape() *geometry.Tape { return d.tape }

// Params returns the nominal (data sheet) profile of the drive.
func (d *Drive) Params() geometry.Params { return d.nominal }

// Position returns the segment number the head is positioned to read.
func (d *Drive) Position() int { return d.pos }

// Clock returns the accumulated busy time in seconds.
func (d *Drive) Clock() float64 { return d.clock }

// Stats returns the operation counters so far.
func (d *Drive) Stats() Stats { return d.stats }

// ResetClock zeroes the clock and counters (the head stays put).
func (d *Drive) ResetClock() {
	d.clock = 0
	d.stats = Stats{}
}

// severity is a deterministic per-(track, section) factor in
// [0.4, 1.0]: different regions of the tape misbehave by different,
// repeatable amounts.
func severity(track, section int) float64 {
	h := uint64(track*31+section)*0x9E3779B9 + 0x7F4A7C15
	h ^= h >> 13
	return 0.4 + 0.6*float64(h%1024)/1023
}

// backhitchError is the structured model deficiency on short
// same-track repositionings; see BackhitchMaxSec.
func (d *Drive) backhitchError(mo locate.Maneuver, pl geometry.Placement) float64 {
	if mo.TrackSwap || mo.ScanSections >= BackhitchScanSections {
		return 0
	}
	if mo.Case != locate.Case2 && mo.Case != locate.Case3 {
		return 0
	}
	return BackhitchMaxSec * severity(pl.Track, pl.Section)
}

// endZoneError is the structured model deficiency near track ends:
// deterministic per destination (it is physics, not noise), largest
// at the physical edge of the track, zero beyond EndZoneWidth.
func (d *Drive) endZoneError(pl geometry.Placement) float64 {
	tv := d.tape.View().Track(pl.Track)
	s := tv.Sections()
	lo := math.Min(tv.BoundPos[0], tv.BoundPos[s])
	hi := math.Max(tv.BoundPos[0], tv.BoundPos[s])
	dist := math.Min(pl.Pos-lo, hi-pl.Pos)
	if dist >= EndZoneWidth || dist < 0 {
		return 0
	}
	return EndZoneMaxSec * severity(pl.Track, pl.Section) * (1 - dist/EndZoneWidth)
}

// noise draws the per-operation measurement jitter: approximately
// Gaussian (sum of three uniforms), plus a rare servo-retry outlier.
func (d *Drive) noise() float64 {
	if !d.noisy {
		return 0
	}
	u := d.rng.Drand48() + d.rng.Drand48() + d.rng.Drand48() - 1.5
	n := u * NoiseSigmaSec * 2 // sum of 3 uniforms has sigma = sqrt(3/12)*2
	if d.rng.Drand48() < OutlierProb {
		n += OutlierMinSec + (OutlierMaxSec-OutlierMinSec)*d.rng.Drand48()
	}
	return n
}

// Locate positions the head to the reading start of segment lbn and
// returns the elapsed time. It is the paper's locate primitive (the
// tape analogue of a disk seek).
//
// With a fault injector attached, a locate may overshoot (the head
// lands past the target; the returned *FaultError records where, and
// the caller re-locates from there) or lose servo position (every
// further operation fails with ErrLostPosition until Recalibrate).
// Either way the failed attempt's travel is charged to the clock.
func (d *Drive) Locate(lbn int) (float64, error) {
	start := d.clock
	t, err := d.locate(lbn)
	d.emit("locate", lbn, start, err)
	return t, err
}

func (d *Drive) locate(lbn int) (float64, error) {
	if lbn < 0 || lbn >= d.tape.Segments() {
		return 0, fmt.Errorf("%w: locate to segment %d outside [0,%d)", ErrOutOfRange, lbn, d.tape.Segments())
	}
	if d.lost {
		return 0, &FaultError{Op: "locate", Segment: lbn, Pos: d.pos, Class: fault.LostPosition, Err: ErrLostPosition}
	}
	switch d.inj.OnLocate() {
	case fault.Overshoot:
		landing := lbn + d.inj.OvershootSegments()
		if max := d.tape.Segments() - 1; landing > max {
			landing = max
		}
		t := d.move(landing) + OvershootSettleSec
		d.clock += OvershootSettleSec
		d.stats.LocateSec += OvershootSettleSec
		d.stats.FaultsInjected++
		return t, &FaultError{Op: "locate", Segment: lbn, Pos: d.pos, Elapsed: t, Class: fault.Overshoot, Err: ErrOvershoot}
	case fault.LostPosition:
		// The transport travels for the intended locate, then the
		// servo gives up: the attempt costs its full time and the
		// head position stops being trustworthy.
		t := d.move(lbn)
		d.lost = true
		d.stats.FaultsInjected++
		return t, &FaultError{Op: "locate", Segment: lbn, Pos: d.pos, Elapsed: t, Class: fault.LostPosition, Err: ErrLostPosition}
	}
	return d.move(lbn), nil
}

// move executes the physical positioning to lbn — the fault-free
// locate — charging the clock and stats.
func (d *Drive) move(lbn int) float64 {
	t := d.truth.LocateTime(d.pos, lbn)
	if lbn != d.pos {
		pl := d.tape.View().Place(lbn)
		from := d.tape.View().Place(d.pos)
		mo := d.truth.Maneuver(d.pos, lbn)
		if mo.Case == locate.Case1 {
			// A short forward motion is mostly just reading: no
			// landing maneuver, no end-zone error, only slight speed
			// jitter — plus the streaming-reacquisition cost when
			// the move skips over data.
			if mo.ReadSections > ReacquireSkipSections {
				t += ReacquireSec * severity(pl.Track, pl.Section)
			}
			if d.noisy {
				t *= 1 + 0.02*(2*d.rng.Drand48()-1)
			}
			d.stats.DistanceSections += math.Abs(pl.Pos - from.Pos)
		} else {
			t += d.endZoneError(pl)
			t += d.backhitchError(mo, pl)
			t += d.noise()
			if t < 0 {
				t = 0
			}
			// Distance moved: the direct span plus the overshoot to
			// the landing key point and back, up to ~2 sections.
			d.stats.DistanceSections += math.Abs(pl.Pos-from.Pos) + 2
		}
	}
	d.pos = lbn
	d.clock += t
	d.stats.Locates++
	d.stats.LocateSec += t
	return t
}

// Read transfers n segments starting at the current position and
// leaves the head after the last segment read. It returns the
// elapsed time.
//
// With a fault injector attached, a read may fail transiently (the
// transfer streamed and is charged in full, but the data failed its
// check — locate back and retry) or hit a permanently unreadable
// segment (ErrMedia: the head parks at the bad segment and every
// retry fails the same way).
func (d *Drive) Read(n int) (float64, error) {
	start := d.clock
	seg := d.pos
	t, err := d.read(n)
	d.emit("read", seg, start, err)
	return t, err
}

func (d *Drive) read(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: read of %d segments", ErrOutOfRange, n)
	}
	if d.pos+n > d.tape.Segments() {
		return 0, fmt.Errorf("%w: read of %d segments at %d exceeds %d", ErrEndOfTape, n, d.pos, d.tape.Segments())
	}
	if d.lost {
		return 0, &FaultError{Op: "read", Segment: d.pos, Pos: d.pos, Class: fault.LostPosition, Err: ErrLostPosition}
	}
	if d.inj != nil {
		// Media membership is position-deterministic and permanent,
		// so it preempts the per-attempt transient draw.
		for i := 0; i < n; i++ {
			if d.inj.MediaBad(d.pos + i) {
				return d.readMedia(i)
			}
		}
		if d.inj.OnRead() == fault.Transient {
			start := d.pos
			t := d.doRead(n)
			d.stats.FaultsInjected++
			return t, &FaultError{Op: "read", Segment: start, Pos: d.pos, Elapsed: t, Class: fault.Transient, Err: ErrTransient}
		}
	}
	return d.doRead(n), nil
}

// doRead executes the physical transfer of n validated segments.
func (d *Drive) doRead(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += d.truth.ReadTime(d.pos + i)
	}
	if d.pos+n < d.tape.Segments() {
		d.pos += n
	} else {
		d.pos = d.tape.Segments() - 1
	}
	d.clock += t
	d.stats.SegmentsRead += n
	d.stats.ReadSec += t
	d.stats.DistanceSections += t / d.truth.View().Params().ReadSecPerSection
	return t
}

// readMedia fails a read on the unreadable segment good segments past
// the head: the good prefix transfers, the attempt on the bad segment
// is charged, and the head parks at the bad segment so a retry fails
// deterministically.
func (d *Drive) readMedia(good int) (float64, error) {
	bad := d.pos + good
	t := 0.0
	for k := 0; k < good; k++ {
		t += d.truth.ReadTime(d.pos + k)
	}
	t += d.truth.ReadTime(bad)
	d.pos = bad
	d.clock += t
	d.stats.SegmentsRead += good
	d.stats.ReadSec += t
	d.stats.DistanceSections += t / d.truth.View().Params().ReadSecPerSection
	d.stats.FaultsInjected++
	return t, &FaultError{Op: "read", Segment: bad, Pos: d.pos, Elapsed: t, Class: fault.Media, Err: ErrMedia}
}

// Rewind returns the head to the beginning of tape (segment 0), as
// required before ejecting a single-reel cartridge.
func (d *Drive) Rewind() float64 {
	start := d.clock
	t := d.truth.RewindTime(d.pos) + d.noise()
	if t < 0 {
		t = 0
	}
	d.stats.DistanceSections += d.tape.View().Place(d.pos).Pos
	d.pos = 0
	d.clock += t
	d.stats.Rewinds++
	d.stats.RewindSec += t
	d.emit("rewind", 0, start, nil)
	return t
}

// AttachFaults attaches a fault injector to an existing drive, or
// removes it with nil; equivalent to constructing with WithFaults.
// The chained-batch experiments use it to arm a drive per scenario.
func (d *Drive) AttachFaults(inj *fault.Injector) { d.inj = inj }

// FaultsEnabled reports whether a fault injector with at least one
// non-zero rate is attached; recovery-aware callers use it to choose
// between fast fault-free paths and recoverable execution.
func (d *Drive) FaultsEnabled() bool {
	return d.inj != nil && d.inj.Config().Enabled()
}

// Lost reports whether the drive has lost servo position; while true,
// Locate and Read fail with ErrLostPosition and Position is not
// trustworthy. Recalibrate clears it.
func (d *Drive) Lost() bool { return d.lost }

// Recalibrate recovers from a lost servo position: the transport
// rewinds to the beginning of tape, where the servo reacquires its
// absolute reference, and settles for RecalibrateSec. It returns the
// elapsed time and is harmless (a plain rewind plus settle) when
// position is not lost.
func (d *Drive) Recalibrate() float64 {
	start := d.clock
	t := d.Rewind() + RecalibrateSec
	d.clock += RecalibrateSec
	d.stats.RewindSec += RecalibrateSec
	d.stats.Recalibrations++
	d.lost = false
	d.emit("recalibrate", 0, start, nil)
	return t
}

// Wait charges host-imposed idle time — retry backoff between attempts
// — to the virtual clock. Non-positive and non-finite durations are
// ignored. The drive does nothing during a Wait; it exists so that
// recovery policies account for the time they cost the request stream.
func (d *Drive) Wait(sec float64) {
	if math.IsNaN(sec) || math.IsInf(sec, 0) || sec <= 0 {
		return
	}
	start := d.clock
	d.clock += sec
	d.stats.WaitSec += sec
	d.emit("wait", -1, start, nil)
}

// ExecuteOrder runs a retrieval schedule: locate to and read each
// entry in turn, transferring readLen segments per request (1 if
// readLen < 1). It returns the total elapsed time. This is the
// "measured" side of the paper's validation experiments.
func (d *Drive) ExecuteOrder(order []int, readLen int) (float64, error) {
	if readLen < 1 {
		readLen = 1
	}
	total := 0.0
	for _, lbn := range order {
		lt, err := d.Locate(lbn)
		if err != nil {
			return total, err
		}
		rt, err := d.Read(readLen)
		if err != nil {
			return total, err
		}
		total += lt + rt
	}
	return total, nil
}

// ReadEntireTape executes the READ algorithm: rewind, one sequential
// pass over every segment, and a final rewind. It returns the
// elapsed time.
func (d *Drive) ReadEntireTape() (float64, error) {
	total := 0.0
	if d.pos != 0 {
		total += d.Rewind()
	}
	// One pass: sequential read of every segment; the per-track
	// switches are part of the truth model's full-read time, so
	// charge them explicitly here via locate-free accounting.
	start := d.clock
	t := d.truth.FullReadTime()
	d.stats.SegmentsRead += d.tape.Segments()
	d.stats.ReadSec += t
	d.stats.DistanceSections += float64(d.tape.View().Tracks()) * d.nominal.NominalTrackLength()
	d.clock += t
	d.pos = 0
	total += t
	d.emit("fullread", 0, start, nil)
	return total, nil
}
