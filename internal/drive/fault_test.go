package drive

import (
	"errors"
	"testing"

	"serpentine/internal/fault"
)

// With no injector attached the drive must behave bit-identically to
// a drive built before faults existed: same times, same noise stream,
// same stats. This is the acceptance gate that keeps every existing
// experiment's output byte-identical.
func TestNoInjectorIsBitIdentical(t *testing.T) {
	tape := newTape(t, 1)
	a := New(tape)
	b := New(tape, WithFaults(nil))
	order := []int{100000, 5000, 400000, 399999, 123, 600000}
	ta, errA := a.ExecuteOrder(order, 2)
	tb, errB := b.ExecuteOrder(order, 2)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if ta != tb || a.Clock() != b.Clock() || a.Stats() != b.Stats() || a.Position() != b.Position() {
		t.Fatalf("WithFaults(nil) diverged: %.6f vs %.6f", ta, tb)
	}
}

func TestOvershootLandsPastTargetAndCharges(t *testing.T) {
	d := New(newTape(t, 1), WithFaults(fault.New(fault.Config{OvershootRate: 1, Seed: 2})))
	el, err := d.Locate(200000)
	if !errors.Is(err, ErrOvershoot) {
		t.Fatalf("err = %v, want overshoot", err)
	}
	if d.Position() <= 200000 {
		t.Fatalf("head at %d, want past 200000", d.Position())
	}
	if d.Position() >= 200000+576 {
		t.Fatalf("head at %d, overshoot too large", d.Position())
	}
	if el <= 0 || d.Clock() != el {
		t.Fatalf("elapsed %.2f not charged to clock %.2f", el, d.Clock())
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Pos != d.Position() || fe.Segment != 200000 {
		t.Fatalf("fault context %+v inconsistent with drive", fe)
	}
}

func TestLostPositionGatesEverythingUntilRecalibrate(t *testing.T) {
	d := New(newTape(t, 1), WithFaults(fault.New(fault.Config{LostRate: 1, Seed: 3})))
	if _, err := d.Locate(300000); !errors.Is(err, ErrLostPosition) {
		t.Fatalf("err = %v, want lost position", err)
	}
	if !d.Lost() {
		t.Fatal("drive not marked lost")
	}
	attemptCost := d.Clock()
	if attemptCost <= 0 {
		t.Fatal("failed locate attempt not charged")
	}
	if _, err := d.Locate(100); !errors.Is(err, ErrLostPosition) {
		t.Fatalf("locate while lost: %v", err)
	}
	if _, err := d.Read(1); !errors.Is(err, ErrLostPosition) {
		t.Fatalf("read while lost: %v", err)
	}
	if d.Clock() != attemptCost {
		t.Fatal("gated operations charged time")
	}
	rt := d.Recalibrate()
	if d.Lost() || d.Position() != 0 {
		t.Fatal("recalibrate did not restore the drive to BOT")
	}
	if rt < RecalibrateSec {
		t.Fatalf("recalibration cost %.2f below the settle floor", rt)
	}
	st := d.Stats()
	if st.Recalibrations != 1 || st.Rewinds != 1 {
		t.Fatalf("stats %+v: want 1 recalibration counting as 1 rewind", st)
	}
}

func TestTransientReadChargesAndMoves(t *testing.T) {
	// All reads fail transiently; retrying forever keeps failing but
	// each attempt costs time and tape motion.
	d := New(newTape(t, 1), WithFaults(fault.New(fault.Config{TransientRate: 1, Seed: 4})))
	if _, err := d.Locate(1000); err != nil {
		t.Fatal(err)
	}
	before := d.Clock()
	el, err := d.Read(4)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want transient", err)
	}
	if el <= 0 || d.Clock() != before+el {
		t.Fatal("failed read attempt not charged")
	}
	if d.Position() != 1004 {
		t.Fatalf("head at %d after streaming 4 segments from 1000", d.Position())
	}
	if d.Stats().FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", d.Stats().FaultsInjected)
	}
}

func TestMediaErrorIsPermanentAndDeterministic(t *testing.T) {
	inj := fault.New(fault.Config{MediaRate: 0.01, Seed: 5})
	// Find a bad segment away from BOT.
	bad := -1
	for s := 1000; s < 200000; s++ {
		if inj.MediaBad(s) {
			bad = s
			break
		}
	}
	if bad < 0 {
		t.Fatal("no media-bad segment found at rate 0.01")
	}
	d := New(newTape(t, 1), WithFaults(inj))
	if _, err := d.Locate(bad - 2); err != nil {
		t.Fatal(err)
	}
	_, err := d.Read(5)
	if !errors.Is(err, ErrMedia) {
		t.Fatalf("err = %v, want media", err)
	}
	if d.Position() != bad {
		t.Fatalf("head parked at %d, want the bad segment %d", d.Position(), bad)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Segment != bad {
		t.Fatalf("fault names segment %d, want %d", fe.Segment, bad)
	}
	// Retry fails identically: media errors never clear.
	if _, err := d.Read(1); !errors.Is(err, ErrMedia) {
		t.Fatalf("retry err = %v, want media", err)
	}
}

func TestWaitChargesOnlyFiniteDurations(t *testing.T) {
	d := New(newTape(t, 1))
	d.Wait(2.5)
	if d.Clock() != 2.5 || d.Stats().WaitSec != 2.5 {
		t.Fatalf("wait not charged: clock %.2f", d.Clock())
	}
	for _, bad := range []float64{0, -1, nan(), inf()} {
		d.Wait(bad)
	}
	if d.Clock() != 2.5 {
		t.Fatalf("degenerate waits charged: clock %.2f", d.Clock())
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// Injected faults must be reproducible: the same seed gives the same
// fault sequence, clock and stats.
func TestFaultedRunReproducible(t *testing.T) {
	run := func() (float64, Stats) {
		d := New(newTape(t, 1), WithFaults(fault.New(fault.Default(9))))
		for _, lbn := range []int{50000, 300000, 120000, 7, 611111} {
			d.Locate(lbn)
			d.Read(1)
			if d.Lost() {
				d.Recalibrate()
			}
		}
		return d.Clock(), d.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("faulted run not reproducible: %.6f vs %.6f", c1, c2)
	}
}
