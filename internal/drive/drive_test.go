package drive

import (
	"errors"
	"math"
	"testing"

	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/rand48"
)

func newTape(t testing.TB, serial int64) *geometry.Tape {
	t.Helper()
	return geometry.MustGenerate(geometry.DLT4000(), serial)
}

// tapeA is the model-development cartridge: zero personality.
func tapeA(t testing.TB) *geometry.Tape {
	t.Helper()
	p := geometry.DLT4000()
	p.PersonalityFrac = 0
	return geometry.MustGenerate(p, 1)
}

func TestNewDriveStartsAtBOT(t *testing.T) {
	d := New(newTape(t, 1))
	if d.Position() != 0 || d.Clock() != 0 {
		t.Fatal("fresh drive should be at segment 0 with a zero clock")
	}
}

func TestLocateMovesAndCharges(t *testing.T) {
	d := New(newTape(t, 1))
	el, err := d.Locate(300000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Position() != 300000 {
		t.Fatalf("position = %d, want 300000", d.Position())
	}
	if el <= 0 || math.Abs(d.Clock()-el) > 1e-9 {
		t.Fatalf("elapsed %g, clock %g", el, d.Clock())
	}
	s := d.Stats()
	if s.Locates != 1 || s.LocateSec != el || s.DistanceSections <= 0 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestLocateRejectsOutOfRange(t *testing.T) {
	d := New(newTape(t, 1))
	if _, err := d.Locate(-1); err == nil {
		t.Fatal("negative locate accepted")
	}
	if _, err := d.Locate(d.Tape().Segments()); err == nil {
		t.Fatal("past-end locate accepted")
	}
}

func TestLocateInPlaceIsFree(t *testing.T) {
	d := New(newTape(t, 1))
	if _, err := d.Locate(500); err != nil {
		t.Fatal(err)
	}
	before := d.Clock()
	el, err := d.Locate(500)
	if err != nil {
		t.Fatal(err)
	}
	if el != 0 || d.Clock() != before {
		t.Fatalf("in-place locate charged %g", el)
	}
}

// Measured locate times must track the host model closely on the
// model-development tape: this is the paper's Section 3 agreement.
func TestMeasuredTimesTrackModel(t *testing.T) {
	tape := tapeA(t)
	d := New(tape)
	model, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand48.New(19)
	over2 := 0
	const trials = 1500
	for i := 0; i < trials; i++ {
		src := rng.Intn(tape.Segments())
		dst := rng.Intn(tape.Segments())
		if _, err := d.Locate(src); err != nil {
			t.Fatal(err)
		}
		meas, err := d.Locate(dst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(meas-model.LocateTime(src, dst)) > 2 {
			over2++
		}
	}
	// The paper saw 7 in 3000 (~0.23%); allow up to 1%.
	if over2 > trials/100 {
		t.Fatalf("%d/%d locates off by more than 2 s", over2, trials)
	}
}

func TestReadAdvancesHead(t *testing.T) {
	d := New(newTape(t, 1))
	if _, err := d.Locate(1000); err != nil {
		t.Fatal(err)
	}
	el, err := d.Read(64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Position() != 1064 {
		t.Fatalf("position after read = %d, want 1064", d.Position())
	}
	// 64 segments of 32 KB at ~1.5 MB/s is ~1.4 s.
	if el < 1.0 || el > 2.0 {
		t.Fatalf("64-segment read took %g s", el)
	}
	if s := d.Stats(); s.SegmentsRead != 64 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReadPastEnd(t *testing.T) {
	d := New(newTape(t, 1))
	last := d.Tape().Segments() - 1
	if _, err := d.Locate(last); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(2); !errors.Is(err, ErrEndOfTape) {
		t.Fatalf("want ErrEndOfTape, got %v", err)
	}
	if _, err := d.Read(0); err == nil {
		t.Fatal("zero-length read accepted")
	}
	// Reading the final segment clamps the head at the last segment.
	if _, err := d.Read(1); err != nil {
		t.Fatal(err)
	}
	if d.Position() != last {
		t.Fatalf("position after final read = %d, want %d", d.Position(), last)
	}
}

func TestRewind(t *testing.T) {
	d := New(newTape(t, 1))
	if _, err := d.Locate(400000); err != nil {
		t.Fatal(err)
	}
	el := d.Rewind()
	if d.Position() != 0 {
		t.Fatal("rewind should return to segment 0")
	}
	if el <= 0 || el > 180 {
		t.Fatalf("rewind took %g s", el)
	}
	if s := d.Stats(); s.Rewinds != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestExecuteOrderSumsOperations(t *testing.T) {
	d := New(newTape(t, 1), WithoutNoise())
	order := []int{100000, 250000, 50000}
	total, err := d.ExecuteOrder(order, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-d.Clock()) > 1e-9 {
		t.Fatalf("ExecuteOrder total %g != clock %g", total, d.Clock())
	}
	if s := d.Stats(); s.Locates != 3 || s.SegmentsRead != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if d.Position() != 50001 {
		t.Fatalf("final position %d, want 50001", d.Position())
	}
}

func TestReadEntireTapeNearPaper(t *testing.T) {
	d := New(tapeA(t))
	if _, err := d.Locate(123456); err != nil {
		t.Fatal(err)
	}
	total, err := d.ReadEntireTape()
	if err != nil {
		t.Fatal(err)
	}
	// Includes the initial rewind; the paper quotes ~14,000 s.
	if total < 13000 || total > 15000 {
		t.Fatalf("whole-tape read = %.0f s, want ~14,000", total)
	}
	if d.Position() != 0 {
		t.Fatal("whole-tape read should end rewound")
	}
	if got := d.Stats().SegmentsRead; got != d.Tape().Segments() {
		t.Fatalf("read %d segments, want all %d", got, d.Tape().Segments())
	}
}

func TestNoiseSeedDeterminism(t *testing.T) {
	run := func(seed int64) float64 {
		d := New(newTape(t, 2), WithNoiseSeed(seed))
		total, err := d.ExecuteOrder([]int{5000, 400000, 123456, 9999}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	if run(1) != run(1) {
		t.Fatal("same noise seed must reproduce")
	}
	if run(1) == run(2) {
		t.Fatal("different noise seeds should differ")
	}
}

func TestWithoutNoiseDeterministicAndCloseToModel(t *testing.T) {
	tape := tapeA(t)
	a := New(tape, WithoutNoise())
	b := New(tape, WithoutNoise())
	order := []int{100, 500000, 20000, 350000}
	ta, err := a.ExecuteOrder(order, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.ExecuteOrder(order, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Fatal("noise-free drives must agree exactly")
	}
}

// Case-1 motions (short forward skips) must stay cheap: reading
// ahead is not a seek.
func TestShortForwardSkipCheap(t *testing.T) {
	d := New(newTape(t, 1))
	if _, err := d.Locate(10000); err != nil {
		t.Fatal(err)
	}
	el, err := d.Locate(10050)
	if err != nil {
		t.Fatal(err)
	}
	if el > 3 {
		t.Fatalf("50-segment forward skip took %g s", el)
	}
}

func TestResetClock(t *testing.T) {
	d := New(newTape(t, 1))
	if _, err := d.Locate(1000); err != nil {
		t.Fatal(err)
	}
	d.ResetClock()
	if d.Clock() != 0 || d.Stats().Locates != 0 {
		t.Fatal("ResetClock should zero clock and stats")
	}
	if d.Position() != 1000 {
		t.Fatal("ResetClock must not move the head")
	}
}

func TestHeadPassesAccumulate(t *testing.T) {
	tape := newTape(t, 1)
	d := New(tape)
	if _, err := d.ReadEntireTape(); err != nil {
		t.Fatal(err)
	}
	passes := d.Stats().HeadPasses(tape.Params())
	// One full sequential read passes the head over every track:
	// ~64 track lengths.
	if passes < 60 || passes > 70 {
		t.Fatalf("full read = %.1f head passes, want ~64", passes)
	}
}

// The drive's hidden personality must shift measurements consistently
// on a non-reference cartridge.
func TestPersonalityShiftsMeasurements(t *testing.T) {
	tape := newTape(t, 3) // default profile: non-zero personality
	d := New(tape, WithoutNoise())
	model, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand48.New(8)
	var bias float64
	const trials = 300
	for i := 0; i < trials; i++ {
		src := rng.Intn(tape.Segments())
		dst := rng.Intn(tape.Segments())
		if _, err := d.Locate(src); err != nil {
			t.Fatal(err)
		}
		meas, err := d.Locate(dst)
		if err != nil {
			t.Fatal(err)
		}
		bias += meas - model.LocateTime(src, dst)
	}
	if math.Abs(bias/trials) < 0.05 {
		t.Fatalf("personality bias %.4f s/locate suspiciously small", bias/trials)
	}
}
