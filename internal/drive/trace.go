package drive

import (
	"errors"

	"serpentine/internal/fault"
	"serpentine/internal/obs"
)

// TraceFunc observes completed drive operations for the observability
// subsystem: one obs.TraceEvent per public primitive (locate, read,
// rewind, recalibrate, wait, fullread), stamped with the virtual
// clock at the start of the operation, its virtual duration, and an
// error class for failed attempts. Recalibrate emits both its inner
// rewind's event and its own, in that order, mirroring the physical
// sequence.
//
// The hook runs synchronously on the drive's (single) operating
// goroutine, so it must not call back into the drive.
type TraceFunc func(obs.TraceEvent)

// NumOps is the number of distinct operation names TraceFunc can
// observe; OpIndex maps each onto a dense index so observers can keep
// per-op state in flat arrays instead of keying maps by name on every
// event.
const NumOps = 6

// OpIndex returns the dense index of a primitive's trace name, or -1
// for a name outside the fixed set.
func OpIndex(op string) int {
	switch op {
	case "locate":
		return 0
	case "read":
		return 1
	case "rewind":
		return 2
	case "recalibrate":
		return 3
	case "wait":
		return 4
	case "fullread":
		return 5
	}
	return -1
}

// WithTrace attaches a trace hook at construction; nil disables
// tracing (the default) at zero cost on the hot path.
func WithTrace(fn TraceFunc) Option {
	return func(d *Drive) { d.trace = fn }
}

// AttachTrace attaches or (with nil) removes the trace hook on an
// existing drive; equivalent to constructing with WithTrace.
func (d *Drive) AttachTrace(fn TraceFunc) { d.trace = fn }

// emit reports one completed operation to the hook, if any. start is
// the clock reading at the operation's beginning; the elapsed time is
// whatever the operation charged since.
func (d *Drive) emit(op string, segment int, start float64, err error) {
	if d.trace == nil {
		return
	}
	d.trace(obs.TraceEvent{
		ClockSec:   start,
		Op:         op,
		Segment:    segment,
		ElapsedSec: d.clock - start,
		Err:        errClass(err),
	})
}

// errClass renders an operation error as a stable short label: the
// injected-fault class when there is one, a coarse sentinel name
// otherwise.
func errClass(err error) string {
	if err == nil {
		return ""
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe.Class.String()
	}
	switch {
	case errors.Is(err, ErrOutOfRange):
		return "out-of-range"
	case errors.Is(err, ErrEndOfTape):
		return "end-of-tape"
	case errors.Is(err, ErrLostPosition):
		return fault.LostPosition.String()
	default:
		return "error"
	}
}
