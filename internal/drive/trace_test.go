package drive

import (
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/obs"
)

func traceTape(t *testing.T) *geometry.Tape {
	t.Helper()
	tape, err := geometry.Generate(geometry.DLT4000(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return tape
}

func TestTraceEmitsEveryOp(t *testing.T) {
	tape := traceTape(t)
	var evs []obs.TraceEvent
	d := New(tape, WithTrace(func(ev obs.TraceEvent) { evs = append(evs, ev) }))

	if _, err := d.Locate(5000); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(1); err != nil {
		t.Fatal(err)
	}
	d.Wait(2.5)
	d.Rewind()
	d.Recalibrate()

	var ops []string
	for _, ev := range evs {
		ops = append(ops, ev.Op)
	}
	// Recalibrate emits its inner rewind first, then itself.
	want := []string{"locate", "read", "wait", "rewind", "rewind", "recalibrate"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	// Events carry the virtual clock and charge, monotonically.
	if evs[0].ClockSec != 0 {
		t.Fatalf("first event starts at %g, want 0", evs[0].ClockSec)
	}
	if evs[0].ElapsedSec <= 0 {
		t.Fatal("locate event has no elapsed time")
	}
	if evs[2].ElapsedSec != 2.5 {
		t.Fatalf("wait event elapsed %g, want 2.5", evs[2].ElapsedSec)
	}
	for _, ev := range evs {
		if ev.Err != "" {
			t.Fatalf("unexpected error class %q on %s", ev.Err, ev.Op)
		}
	}
}

func TestTraceClassifiesFaults(t *testing.T) {
	tape := traceTape(t)
	var evs []obs.TraceEvent
	d := New(tape,
		WithFaults(fault.New(fault.Config{TransientRate: 1, Seed: 3})),
		WithTrace(func(ev obs.TraceEvent) { evs = append(evs, ev) }))
	if _, err := d.Locate(100); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(1); err == nil {
		t.Fatal("expected an injected transient error")
	}
	last := evs[len(evs)-1]
	if last.Op != "read" || last.Err != fault.Transient.String() {
		t.Fatalf("trace event = %+v, want read/%s", last, fault.Transient)
	}
	// Out-of-range usage errors classify too.
	if _, err := d.Locate(-1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	last = evs[len(evs)-1]
	if last.Err != "out-of-range" || last.ElapsedSec != 0 {
		t.Fatalf("out-of-range event = %+v", last)
	}
}

// TestTraceDoesNotPerturbTiming pins the observability layer's core
// guarantee: attaching a trace hook changes nothing about the drive's
// behaviour — clock, position and stats are bit-identical to an
// untraced drive over the same operation sequence.
func TestTraceDoesNotPerturbTiming(t *testing.T) {
	run := func(fn TraceFunc) *Drive {
		d := New(traceTape(t), WithTrace(fn))
		for _, seg := range []int{9000, 42, 300000, 77} {
			if _, err := d.Locate(seg); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Read(2); err != nil {
				t.Fatal(err)
			}
		}
		d.Rewind()
		return d
	}
	traced := run(func(obs.TraceEvent) {})
	plain := run(nil)
	if traced.Clock() != plain.Clock() {
		t.Fatalf("trace hook changed the clock: %g vs %g", traced.Clock(), plain.Clock())
	}
	if traced.Position() != plain.Position() || traced.Stats() != plain.Stats() {
		t.Fatal("trace hook changed drive state")
	}
}
