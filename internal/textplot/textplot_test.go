package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func render(t *testing.T, p *Plot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRenderBasics(t *testing.T) {
	p := &Plot{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "up", Mark: 'u', X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", Mark: 'd', X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
	}
	out := render(t, p)
	for _, want := range []string{"demo", "u=up", "d=down", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Rising series: 'u' should appear in both the top and bottom rows.
	lines := strings.Split(out, "\n")
	grid := lines[1 : len(lines)-4]
	if !strings.Contains(grid[0], "u") || !strings.Contains(grid[len(grid)-1], "u") {
		t.Fatalf("rising series should span the grid:\n%s", out)
	}
	// And 'd' too, mirrored.
	if !strings.Contains(grid[0], "d") || !strings.Contains(grid[len(grid)-1], "d") {
		t.Fatalf("falling series should span the grid:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if err := (&Plot{}).Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty plot accepted")
	}
	bad := &Plot{Series: []Series{{X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("mismatched series accepted")
	}
	logBad := &Plot{LogX: true, Series: []Series{{X: []float64{0}, Y: []float64{1}}}}
	if err := logBad.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("non-positive x with LogX accepted")
	}
	empty := &Plot{Series: []Series{{Name: "e"}}}
	if err := empty.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// A single point and constant series must not divide by zero.
	p := &Plot{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}}
	out := render(t, p)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
	flat := &Plot{Series: []Series{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{4, 4, 4}}}}
	render(t, flat)
}

func TestLogXCompressesDecades(t *testing.T) {
	p := &Plot{
		Width: 60, LogX: true,
		Series: []Series{{Name: "s", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 2, 3, 4}}},
	}
	out := render(t, p)
	// On a log axis the four decade points are evenly spaced: the
	// mark columns in consecutive rows should step by ~width/3.
	var cols []int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "+--") {
			break // grid ends at the axis; the legend also holds a '*'
		}
		if i := strings.IndexByte(line, '*'); i >= 0 {
			cols = append(cols, i)
		}
	}
	if len(cols) != 4 {
		t.Fatalf("want 4 marks, got %d:\n%s", len(cols), out)
	}
	d1 := cols[1] - cols[0]
	d2 := cols[2] - cols[1]
	// Rows print top (largest y) first, so columns descend; spacing
	// magnitude should be roughly equal.
	if absInt(absInt(d1)-absInt(d2)) > 3 {
		t.Fatalf("log spacing uneven: %v", cols)
	}
}

func TestConnectDrawsBetweenSamples(t *testing.T) {
	p := &Plot{
		Width: 40, Height: 11, Connect: true,
		Series: []Series{{Name: "line", X: []float64{0, 1}, Y: []float64{0, 10}}},
	}
	out := render(t, p)
	marks := strings.Count(out, "*")
	if marks < 10 {
		t.Fatalf("connected line drew only %d cells:\n%s", marks, out)
	}
}

func TestFormatAxis(t *testing.T) {
	cases := map[float64]string{
		123456: "1.23e+05",
		250:    "250",
		7.25:   "7.2",
		0.031:  "0.03",
	}
	for in, want := range cases {
		if got := formatAxis(in); got != want {
			t.Errorf("formatAxis(%g) = %q, want %q", in, got, want)
		}
	}
}
