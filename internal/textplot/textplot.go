// Package textplot renders small ASCII line/scatter charts for the
// experiment binaries: the paper's figures are plots, and a
// reproduction that can only print tables makes the shapes (the
// Figure 1 sawtooth, the Figure 4 crossovers) hard to eyeball. The
// output is deliberately plain: a fixed-size character grid, linear
// or log-x axes, one mark character per series.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Mark is the character drawn for the series' points.
	Mark byte
	// X and Y are the sample coordinates; lengths must match.
	X, Y []float64
}

// Plot describes one chart.
type Plot struct {
	// Title is printed above the grid.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the grid dimensions in characters;
	// defaults 72x20.
	Width, Height int
	// LogX plots the x axis on a log10 scale (schedule lengths).
	LogX bool
	// Connect draws crude vertical interpolation between adjacent
	// samples of a series, making sawtooths and curves readable.
	Connect bool
	// Series are the curves.
	Series []Series
}

// Render writes the chart.
func (p *Plot) Render(w io.Writer) error {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	if len(p.Series) == 0 {
		return fmt.Errorf("textplot: no series")
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("textplot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x := p.xval(s.X[i])
			if math.IsNaN(x) {
				return fmt.Errorf("textplot: series %q: non-positive x with LogX", s.Name)
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("textplot: no data points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for _, s := range p.Series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		prevC, prevR := -1, -1
		for i := range s.X {
			c := col(p.xval(s.X[i]))
			r := row(s.Y[i])
			if p.Connect && prevC >= 0 {
				connect(grid, prevC, prevR, c, r, mark)
			}

			grid[r][c] = mark
			prevC, prevR = c, r
		}
	}

	if p.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", p.Title); err != nil {
			return err
		}
	}
	yLo, yHi := formatAxis(ymin), formatAxis(ymax)
	for r, line := range grid {
		label := strings.Repeat(" ", 10)
		switch r {
		case 0:
			label = fmt.Sprintf("%10s", yHi)
		case height - 1:
			label = fmt.Sprintf("%10s", yLo)
		case height / 2:
			if p.YLabel != "" {
				l := p.YLabel
				if len(l) > 10 {
					l = l[:10]
				}
				label = fmt.Sprintf("%10s", l)
			}
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	xl := formatAxis(p.unxval(xmin))
	xr := formatAxis(p.unxval(xmax))
	mid := p.XLabel
	pad := width - len(xl) - len(xr) - len(mid)
	if pad < 2 {
		mid = ""
		pad = width - len(xl) - len(xr)
		if pad < 0 {
			pad = 0
		}
	}
	if _, err := fmt.Fprintf(w, "%10s  %s%s%s%s%s\n", "",
		xl, strings.Repeat(" ", pad/2), mid, strings.Repeat(" ", pad-pad/2), xr); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for _, s := range p.Series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Name))
	}
	_, err := fmt.Fprintf(w, "%10s  %s\n", "", strings.Join(legend, "  "))
	return err
}

// xval maps an x coordinate onto the plotting scale.
func (p *Plot) xval(x float64) float64 {
	if !p.LogX {
		return x
	}
	if x <= 0 {
		return math.NaN()
	}
	return math.Log10(x)
}

// unxval inverts xval for axis labels.
func (p *Plot) unxval(x float64) float64 {
	if !p.LogX {
		return x
	}
	return math.Pow(10, x)
}

// connect draws a crude line between two grid cells: step along the
// longer axis, interpolating the other, so adjacent samples read as a
// curve rather than isolated dots. Cells already holding another mark
// are not overwritten.
func connect(grid [][]byte, c0, r0, c1, r1 int, mark byte) {
	dc, dr := c1-c0, r1-r0
	steps := max(absInt(dc), absInt(dr))
	if steps == 0 {
		return
	}
	for i := 1; i < steps; i++ {
		c := c0 + dc*i/steps
		r := r0 + dr*i/steps
		if grid[r][c] == ' ' {
			grid[r][c] = mark
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// formatAxis prints an axis value compactly.
func formatAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
