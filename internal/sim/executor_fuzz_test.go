package sim

import (
	"sort"
	"sync"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/rand48"
)

// The fuzz substrate: one small cartridge and its host model, built
// once per process. Each fuzz iteration gets its own drive, so the
// shared tape is only ever read.
var fuzzTape = struct {
	once  sync.Once
	tape  *geometry.Tape
	model *locate.Model
}{}

func fuzzFixture(t testing.TB) (*geometry.Tape, *locate.Model) {
	t.Helper()
	fuzzTape.once.Do(func() {
		fuzzTape.tape = geometry.MustGenerate(geometry.Tiny(), 3)
		m, err := locate.FromKeyPoints(fuzzTape.tape.KeyPoints())
		if err != nil {
			panic(err)
		}
		fuzzTape.model = m
	})
	return fuzzTape.tape, fuzzTape.model
}

// FuzzExecutorReplan drives the executor through random fault
// schedules and asserts its conservation invariant: whatever faults
// fire and however often the remaining work is replanned, every
// request ends up in exactly one of Served or Failed — none lost,
// none duplicated — and the accounting stays finite.
//
// Run with `go test -fuzz FuzzExecutorReplan ./internal/sim`; the
// seeded corpus in testdata/fuzz covers each failure class alone,
// saturated mixes, the planning-budget fallback path and the
// fault-free baseline.
func FuzzExecutorReplan(f *testing.F) {
	// seed, nRequests, transient, overshoot, lost, media, start, tinyBudget
	f.Add(int64(1), byte(8), byte(0), byte(0), byte(0), byte(0), uint16(0), false)           // fault-free
	f.Add(int64(2), byte(12), byte(128), byte(0), byte(0), byte(0), uint16(100), false)      // transient storm
	f.Add(int64(3), byte(12), byte(0), byte(128), byte(0), byte(0), uint16(200), false)      // overshoot storm
	f.Add(int64(4), byte(12), byte(0), byte(0), byte(128), byte(0), uint16(300), false)      // lost-position storm
	f.Add(int64(5), byte(12), byte(0), byte(0), byte(0), byte(128), uint16(400), false)      // media storm
	f.Add(int64(6), byte(24), byte(64), byte(32), byte(32), byte(16), uint16(500), true)     // mixed + tiny budget
	f.Add(int64(7), byte(31), byte(255), byte(255), byte(255), byte(255), uint16(999), true) // saturated

	f.Fuzz(func(t *testing.T, seed int64, n, tr, ov, lost, media byte, start uint16, tinyBudget bool) {
		tape, model := fuzzFixture(t)
		total := model.Segments()

		nReq := 1 + int(n)%32
		rng := rand48.New(seed)
		seen := make(map[int]bool, nReq)
		reqs := make([]int, 0, nReq)
		for len(reqs) < nReq {
			s := rng.Intn(total)
			if !seen[s] {
				seen[s] = true
				reqs = append(reqs, s)
			}
		}

		cfg := fault.Config{
			TransientRate: float64(tr) / 255 * 0.6,
			OvershootRate: float64(ov) / 255 * 0.5,
			LostRate:      float64(lost) / 255 * 0.5,
			MediaRate:     float64(media) / 255 * 0.2,
			Seed:          seed,
		}
		var opts []drive.Option
		if cfg.Enabled() {
			opts = append(opts, drive.WithFaults(fault.New(cfg)))
		}
		d := drive.New(tape, opts...)

		p := &core.Problem{Start: int(start) % total, Requests: reqs, Cost: model}
		plan, err := core.NewLOSS().Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		pol := RetryPolicy{MaxRetries: 2, MaxReplans: 4}
		if tinyBudget {
			pol.PlanningBudgetOps = 1 // every tier over budget: exercises the full fallback chain
		}
		res, err := (&Executor{Drive: d, Scheduler: core.NewLOSS(), Policy: pol}).Execute(p, plan)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}

		got := append(append([]int(nil), res.Served...), res.Failed...)
		want := append([]int(nil), reqs...)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("conservation violated: %d in, %d out (served %d, failed %d, retries %d, replans %d)",
				len(want), len(got), len(res.Served), len(res.Failed), res.Retries, res.Replans)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("request set changed at rank %d: got %d want %d", i, got[i], want[i])
			}
		}
		// Recovery is a subset of elapsed time, up to float summation
		// order (the two are accumulated separately).
		slack := 1e-9 * (1 + res.ElapsedSec)
		if !(res.ElapsedSec >= 0) || !(res.RecoverySec >= 0) || res.RecoverySec > res.ElapsedSec+slack {
			t.Fatalf("accounting broken: elapsed %v recovery %v", res.ElapsedSec, res.RecoverySec)
		}
		if d.Lost() {
			t.Fatal("executor returned with the drive still lost")
		}
		if len(res.Completions) != len(res.Served) {
			t.Fatalf("%d completion samples for %d served requests", len(res.Completions), len(res.Served))
		}
	})
}
