package sim

import (
	"math"
	"runtime"
	"testing"

	"serpentine/internal/core"
)

// Workers <= 0 must resolve to GOMAXPROCS; positive values are taken
// literally.
func TestEffectiveWorkers(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{-2, runtime.GOMAXPROCS(0)},
		{1, 1},
		{7, 7},
	} {
		cfg := Config{Workers: c.in}
		if got := cfg.effectiveWorkers(); got != c.want {
			t.Errorf("effectiveWorkers(Workers=%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// A single-worker run is the clean Figure 6 timing configuration: one
// goroutine reuses its Problem and the pooled scheduler arenas across
// every trial, the CPU stopwatch covers schedule generation only, and
// the accumulated counts must come out exact. Its statistics must
// agree with a parallel run of the same seed.
func TestSingleWorkerCPUTiming(t *testing.T) {
	run := func(workers int) *Result {
		res, err := Run(Config{
			Model:      dltModel(t),
			Schedulers: []core.Scheduler{core.NewSLTF(), core.NewLOSS(), core.Scan{}, core.Weave{}},
			Lengths:    []int{16, 64},
			Trials:     func(int) int { return 20 },
			Seed:       9,
			Workers:    workers,
			Verify:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(1)
	for _, lr := range single.Lengths {
		for name, a := range lr.Alg {
			if a.Schedules != 20 {
				t.Errorf("%s n=%d: %d schedules, want 20", name, lr.N, a.Schedules)
			}
			if a.CPU <= 0 {
				t.Errorf("%s n=%d: no CPU time accumulated", name, lr.N)
			}
			if a.CPUPerSchedule() <= 0 {
				t.Errorf("%s n=%d: CPUPerSchedule not positive", name, lr.N)
			}
		}
	}
	parallel := run(4)
	for _, n := range []int{16, 64} {
		for _, name := range []string{"SLTF", "LOSS", "SCAN", "WEAVE"} {
			a, okA := single.MeanPerLocate(name, n)
			b, okB := parallel.MeanPerLocate(name, n)
			if !okA || !okB {
				t.Fatalf("%s n=%d missing from a run", name, n)
			}
			// The trials are seeded per (length, trial) pair, so only
			// floating-point merge order can differ across worker
			// counts.
			if math.Abs(a-b) > 1e-9*math.Abs(a) {
				t.Errorf("%s n=%d: single-worker mean %.12f differs from parallel %.12f", name, n, a, b)
			}
		}
	}
}
