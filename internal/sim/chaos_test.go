package sim

import (
	"bytes"
	"strings"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/fault"
)

// Executed-mode chains with zero fault rates must serve everything
// with no recovery activity.
func TestBatchChainExecutedFaultFree(t *testing.T) {
	m, d := execFixture(t, 1, fault.Config{})
	res, err := BatchChain(ChainConfig{
		Model:     m,
		BatchSize: 8,
		Batches:   4,
		Warmup:    1,
		Seed:      3,
		Drive:     d,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Executed {
		t.Fatal("drive-backed run not marked executed")
	}
	if res.Served != 24 || res.FailedRequests != 0 {
		t.Fatalf("served %d failed %d, want 24/0", res.Served, res.FailedRequests)
	}
	if res.Retries+res.Replans+res.Recalibrations != 0 || res.RecoverySec != 0 {
		t.Fatalf("recovery activity without faults: %+v", res)
	}
	if len(res.Completions) != 24 {
		t.Fatalf("%d completion samples, want 24", len(res.Completions))
	}
	if res.P99CompletionSec() <= 0 {
		t.Fatal("p99 completion not positive")
	}
	if res.FinalHead != d.Position() {
		t.Fatal("final head does not track the drive")
	}
}

// The chained scenario under faults must recover and account for it,
// and identical configs must reproduce identical counts.
func TestBatchChainExecutedWithFaultsReproducible(t *testing.T) {
	run := func() ChainResult {
		m, d := execFixture(t, 1, fault.Config{})
		res, err := BatchChain(ChainConfig{
			Model:     m,
			BatchSize: 8,
			Batches:   5,
			Warmup:    1,
			Seed:      3,
			Drive:     d,
			Faults: fault.Config{
				TransientRate: 0.2,
				OvershootRate: 0.1,
				LostRate:      0.05,
				MediaRate:     0.001,
				Seed:          17,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Retries == 0 {
		t.Fatal("heavy fault mix produced no retries")
	}
	if a.Served+a.FailedRequests != a.Requests {
		t.Fatalf("outcome partition broken: %d served + %d failed != %d requests",
			a.Served, a.FailedRequests, a.Requests)
	}
	if a.Retries != b.Retries || a.Replans != b.Replans || a.Recalibrations != b.Recalibrations ||
		a.FailedRequests != b.FailedRequests || a.TotalSec != b.TotalSec {
		t.Fatalf("chained fault runs diverged:\n%+v\n%+v", a, b)
	}
	if a.RecoverySec <= 0 || a.RecoverySec >= a.TotalSec {
		t.Fatalf("recovery accounting %f of %f implausible", a.RecoverySec, a.TotalSec)
	}
}

func TestBatchChainRejectsInvalidFaultConfig(t *testing.T) {
	m, d := execFixture(t, 1, fault.Config{})
	_, err := BatchChain(ChainConfig{
		Model: m, BatchSize: 4, Batches: 2, Drive: d,
		Faults: fault.Config{TransientRate: 1.5},
	})
	if err == nil {
		t.Fatal("invalid fault rate accepted")
	}
}

// chaosDefaults shrinks the sweep for tests.
func chaosDefaults(workers int) ChaosConfig {
	return ChaosConfig{
		Schedulers: []core.Scheduler{core.NewLOSS(), core.Scan{}},
		Rates:      []float64{0, 4},
		BatchSize:  8,
		Batches:    3,
		Warmup:     1,
		Seed:       5,
		Workers:    workers,
	}
}

// The acceptance criterion: a seeded chaos run is reproducible — the
// same seed and fault config give identical retry/replan/failure
// counts across runs and across worker counts.
func TestChaosSweepReproducibleAcrossWorkerCounts(t *testing.T) {
	one, err := ChaosSweep(chaosDefaults(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := ChaosSweep(chaosDefaults(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 4 || len(four) != 4 {
		t.Fatalf("cell counts %d/%d, want 4 (2 schedulers x 2 rates)", len(one), len(four))
	}
	for i := range one {
		a, b := one[i], four[i]
		if a.Alg != b.Alg || a.Rate != b.Rate {
			t.Fatalf("cell %d coordinates diverged: %s/%g vs %s/%g", i, a.Alg, a.Rate, b.Alg, b.Rate)
		}
		ra, rb := a.Result, b.Result
		if ra.Retries != rb.Retries || ra.Replans != rb.Replans ||
			ra.Recalibrations != rb.Recalibrations || ra.FailedRequests != rb.FailedRequests ||
			ra.TotalSec != rb.TotalSec {
			t.Fatalf("cell %s x%g differs between 1 and 4 workers:\n%+v\n%+v", a.Alg, a.Rate, ra, rb)
		}
	}
	// The faulted column must show recovery activity somewhere.
	activity := 0
	for _, c := range one {
		if c.Rate > 0 {
			activity += c.Result.Retries + c.Result.Replans + c.Result.FailedRequests
		}
	}
	if activity == 0 {
		t.Fatal("rate x4 produced no recovery activity in any cell")
	}
	// And the baseline column must show none.
	for _, c := range one {
		if c.Rate == 0 && (c.Result.Retries != 0 || c.Result.FailedRequests != 0) {
			t.Fatalf("fault-free baseline shows recovery: %+v", c.Result)
		}
	}
}

func TestChaosSkipsOPTBeyondItsLimit(t *testing.T) {
	cfg := chaosDefaults(1)
	cfg.Schedulers = []core.Scheduler{core.NewOPT(12), core.Scan{}}
	cfg.BatchSize = 16 // beyond OPT's limit
	cells, err := ChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Alg == "OPT" {
			t.Fatal("OPT not skipped at batch 16")
		}
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2 (SCAN only)", len(cells))
	}
}

func TestWriteChaosFormats(t *testing.T) {
	cells, err := ChaosSweep(chaosDefaults(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChaos(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# fault rate x0", "# fault rate x4", "LOSS", "SCAN", "IO/h", "p99 s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos table missing %q:\n%s", want, out)
		}
	}
}
