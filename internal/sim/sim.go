// Package sim drives the paper's model-driven simulation experiments
// (Section 5, Figure 3): generate many random request sets, schedule
// each with every algorithm, estimate the schedule execution times
// with the locate model, and report means and standard deviations per
// schedule length — the data behind Figures 4, 5 and 6 — plus the
// utilization study of Figure 7 and the Section 8 summary rates.
package sim

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"serpentine/internal/core"
	"serpentine/internal/locate"
	"serpentine/internal/stats"
	"serpentine/internal/workload"
)

// StartMode selects the initial head position scenario of the
// experiments.
type StartMode int

const (
	// RandomStart models a tape scheduled repeatedly in batches: the
	// head starts wherever the previous batch left it, drawn
	// uniformly (Figure 4).
	RandomStart StartMode = iota
	// BOTStart models a robot that has just loaded the tape: the
	// head starts at segment 0 (Figure 5).
	BOTStart
)

// String names the mode.
func (m StartMode) String() string {
	if m == BOTStart {
		return "beginning-of-tape"
	}
	return "random"
}

// PaperLengths is the schedule-length grid of the paper's Figure 3
// pseudocode.
var PaperLengths = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 24, 32, 48, 64, 96, 128,
	192, 256, 384, 512, 768, 1024, 1536, 2048,
}

// PaperTrials returns the paper's trial count for schedule length n:
// 100,000 up to 192, then 25,000, 12,000, 7,000, 3,000, 1,600, 800
// and 400 for the larger sizes.
func PaperTrials(n int) int {
	switch {
	case n <= 192:
		return 100000
	case n <= 256:
		return 25000
	case n <= 384:
		return 12000
	case n <= 512:
		return 7000
	case n <= 768:
		return 3000
	case n <= 1024:
		return 1600
	case n <= 1536:
		return 800
	default:
		return 400
	}
}

// ScaledTrials returns a trial function dividing the paper's counts
// by divisor (at least floor trials each). The default experiment
// binaries use divisor 500 so a full figure regenerates in seconds;
// pass 1 to match the paper exactly.
func ScaledTrials(divisor, floor int) func(int) int {
	if divisor < 1 {
		divisor = 1
	}
	if floor < 1 {
		floor = 1
	}
	return func(n int) int {
		t := PaperTrials(n) / divisor
		if t < floor {
			t = floor
		}
		return t
	}
}

// PaperOptTrials returns the paper's reduced trial counts for OPT
// (100,000 up to 9 requests, 10,000 at 10, 100 at 12, nothing above).
func PaperOptTrials(n int) int {
	switch {
	case n <= 9:
		return 100000
	case n == 10:
		return 10000
	case n <= 12:
		return 100
	default:
		return 0
	}
}

// Config describes one simulation experiment.
type Config struct {
	// Model is the cost model schedules are generated and estimated
	// against.
	Model locate.Cost
	// Schedulers are the algorithms to compare.
	Schedulers []core.Scheduler
	// Lengths is the schedule-length grid; nil selects PaperLengths.
	Lengths []int
	// Trials returns the trial count per schedule length; nil
	// selects ScaledTrials(500, 8).
	Trials func(n int) int
	// OptMax caps the lengths handed to the exponential OPT
	// scheduler; 0 selects 12, as in the paper.
	OptMax int
	// Start selects the initial head position scenario.
	Start StartMode
	// Seed seeds the request generation; experiments repeated with
	// different seeds vary by well under 1% (the paper reports
	// <0.5% over 5 seeds).
	Seed int64
	// ReadLen is the transfer length per request in segments; 0
	// means 1.
	ReadLen int
	// Workload builds the request generator for a trial seed; nil
	// selects the paper's uniform distribution over the model's
	// segment space.
	Workload func(seed int64) workload.Generator
	// Workers bounds the parallel trial runners; 0 selects
	// GOMAXPROCS. Use 1 for clean CPU timing (Figure 6).
	Workers int
	// Verify re-checks that every schedule is a permutation of its
	// requests (slower; used by tests).
	Verify bool
}

// AlgResult accumulates one algorithm's outcomes at one schedule
// length.
type AlgResult struct {
	// Total accumulates estimated schedule execution times (s).
	Total stats.Accumulator
	// PerLocate accumulates estimated time per locate (s).
	PerLocate stats.Accumulator
	// CPU is the total wall time spent generating schedules.
	CPU time.Duration
	// Schedules is the number of schedules generated.
	Schedules int
}

// CPUPerSchedule is the Figure 6 metric.
func (a *AlgResult) CPUPerSchedule() time.Duration {
	if a.Schedules == 0 {
		return 0
	}
	return a.CPU / time.Duration(a.Schedules)
}

// LengthResult holds all algorithms' outcomes at one schedule length.
type LengthResult struct {
	N   int
	Alg map[string]*AlgResult
}

// Result is a completed experiment.
type Result struct {
	Config  Config
	Lengths []LengthResult
	Elapsed time.Duration
}

// Run executes the experiment of Figure 3.
func Run(cfg Config) (*Result, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: Config.Model is nil")
	}
	if len(cfg.Schedulers) == 0 {
		return nil, fmt.Errorf("sim: no schedulers configured")
	}
	lengths := cfg.Lengths
	if lengths == nil {
		lengths = PaperLengths
	}
	trials := cfg.Trials
	if trials == nil {
		trials = ScaledTrials(500, 8)
	}
	optMax := cfg.OptMax
	if optMax == 0 {
		optMax = 12
	}
	workers := cfg.effectiveWorkers()
	gen := cfg.Workload
	if gen == nil {
		total := cfg.Model.Segments()
		gen = func(seed int64) workload.Generator { return workload.NewUniform(total, seed) }
	}

	begin := time.Now()
	res := &Result{Config: cfg}
	for _, n := range lengths {
		lr, err := runLength(cfg, gen, n, trials(n), optMax, workers)
		if err != nil {
			return nil, err
		}
		res.Lengths = append(res.Lengths, lr)
	}
	res.Elapsed = time.Since(begin)
	return res, nil
}

// effectiveWorkers resolves the configured worker count: positive
// values are taken as given, anything else selects GOMAXPROCS.
func (cfg *Config) effectiveWorkers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runLength runs all trials at one schedule length, fanning trials
// out over workers. Each worker keeps its working state — the Problem
// value handed to schedulers and a dense slice of per-algorithm
// partial accumulators — alive across all of its trials, claims
// trials off a shared atomic counter, and merges its partials into
// the shared result exactly once at the end, so the accumulator lock
// is touched once per worker rather than once per trial.
func runLength(cfg Config, gen func(int64) workload.Generator, n, trials, optMax, workers int) (LengthResult, error) {
	// The schedulers active at this length, in configuration order;
	// worker partials index this slice directly instead of hashing
	// names per trial.
	active := make([]core.Scheduler, 0, len(cfg.Schedulers))
	lr := LengthResult{N: n, Alg: make(map[string]*AlgResult)}
	for _, s := range cfg.Schedulers {
		if skipAtLength(s, n, optMax) {
			continue
		}
		active = append(active, s)
		lr.Alg[s.Name()] = &AlgResult{}
	}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]AlgResult, len(active))
			// One Problem per worker, reused across trials and
			// schedulers; only Start and Requests change per trial.
			p := &core.Problem{ReadLen: cfg.ReadLen, Cost: cfg.Model}
			for {
				trial := int(next.Add(1)) - 1
				if trial >= trials {
					break
				}
				if err := runTrial(cfg, gen, n, trial, active, local, p); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
			mu.Lock()
			for i := range local {
				dst := lr.Alg[active[i].Name()]
				dst.Total.Merge(&local[i].Total)
				dst.PerLocate.Merge(&local[i].PerLocate)
				dst.CPU += local[i].CPU
				dst.Schedules += local[i].Schedules
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return lr, err
	default:
	}
	return lr, nil
}

// skipAtLength reports whether scheduler s is excluded at schedule
// length n (only the exponential OPT is, beyond optMax, as in the
// paper).
func skipAtLength(s core.Scheduler, n, optMax int) bool {
	_, isOpt := s.(core.OPT)
	return isOpt && n > optMax
}

// runTrial generates one request set and runs every active scheduler
// on it, reusing the worker's Problem and accumulating into its
// partials. The t0/cpu stopwatch brackets only the Schedule call, so
// the Figure 6 CPU-per-schedule metric excludes request generation,
// verification and estimation.
func runTrial(cfg Config, gen func(int64) workload.Generator, n, trial int, active []core.Scheduler, local []AlgResult, p *core.Problem) error {
	// A distinct, deterministic seed per (length, trial) pair keeps
	// the experiment reproducible regardless of worker count.
	seed := cfg.Seed*1000003 + int64(n)*1000003607 + int64(trial)
	g := gen(seed)
	set := g.Batch(n + 1)
	start := set[0]
	if cfg.Start == BOTStart {
		start = 0
	}
	p.Start = start
	p.Requests = set[1:]

	for i, s := range active {
		t0 := time.Now()
		plan, err := s.Schedule(p)
		cpu := time.Since(t0)
		if err != nil {
			return fmt.Errorf("sim: %s at n=%d: %w", s.Name(), n, err)
		}
		if cfg.Verify {
			if err := core.CheckPermutation(p.Requests, plan.Order); err != nil {
				return fmt.Errorf("sim: %s at n=%d: %w", s.Name(), n, err)
			}
		}
		est := plan.Estimate(p)
		a := &local[i]
		a.Total.Add(est.Total())
		a.PerLocate.Add(est.Total() / float64(n))
		a.CPU += cpu
		a.Schedules++
	}
	return nil
}

// AlgNames returns the algorithm names present in the result, in the
// configured scheduler order.
func (r *Result) AlgNames() []string {
	var names []string
	seen := make(map[string]bool)
	for _, s := range r.Config.Schedulers {
		if !seen[s.Name()] {
			names = append(names, s.Name())
			seen[s.Name()] = true
		}
	}
	return names
}

// WritePerLocateTable prints the Figure 4/5 data: mean estimated time
// per locate (s) per algorithm and schedule length.
func (r *Result) WritePerLocateTable(w io.Writer) error {
	return r.writeTable(w, "mean s/locate", func(a *AlgResult) (float64, bool) {
		return a.PerLocate.Mean(), a.Schedules > 0
	})
}

// WriteTotalTable prints mean total schedule execution times (s).
func (r *Result) WriteTotalTable(w io.Writer) error {
	return r.writeTable(w, "mean total s", func(a *AlgResult) (float64, bool) {
		return a.Total.Mean(), a.Schedules > 0
	})
}

// WriteStdDevTable prints the standard deviation of the total
// schedule execution time (s).
func (r *Result) WriteStdDevTable(w io.Writer) error {
	return r.writeTable(w, "stddev total s", func(a *AlgResult) (float64, bool) {
		return a.Total.StdDev(), a.Schedules > 1
	})
}

// WriteCPUTable prints the Figure 6 data: mean seconds of CPU time to
// generate one schedule.
func (r *Result) WriteCPUTable(w io.Writer) error {
	return r.writeTable(w, "CPU s/schedule", func(a *AlgResult) (float64, bool) {
		return a.CPUPerSchedule().Seconds(), a.Schedules > 0
	})
}

func (r *Result) writeTable(w io.Writer, title string, metric func(*AlgResult) (float64, bool)) error {
	names := r.AlgNames()
	if _, err := fmt.Fprintf(w, "# %s, start=%s\n", title, r.Config.Start); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s", "N"); err != nil {
		return err
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, " %12s", name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, lr := range r.Lengths {
		if _, err := fmt.Fprintf(w, "%8d", lr.N); err != nil {
			return err
		}
		for _, name := range names {
			a := lr.Alg[name]
			if a == nil {
				if _, err := fmt.Fprintf(w, " %12s", "-"); err != nil {
					return err
				}
				continue
			}
			v, ok := metric(a)
			if !ok {
				if _, err := fmt.Fprintf(w, " %12s", "-"); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, " %12.4f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// MeanPerLocate returns the mean per-locate time of one algorithm at
// one length, or false if absent.
func (r *Result) MeanPerLocate(alg string, n int) (float64, bool) {
	i := sort.Search(len(r.Lengths), func(i int) bool { return r.Lengths[i].N >= n })
	if i == len(r.Lengths) || r.Lengths[i].N != n {
		return 0, false
	}
	a := r.Lengths[i].Alg[alg]
	if a == nil || a.Schedules == 0 {
		return 0, false
	}
	return a.PerLocate.Mean(), true
}
