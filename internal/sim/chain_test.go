package sim

import (
	"math"
	"testing"

	"serpentine/internal/core"
)

// The paper's Figure 3 pseudocode approximates steady-state batched
// service by drawing a fresh random starting position per trial. The
// chained experiment measures the steady state directly; the two must
// agree, which validates the paper's experimental design.
func TestChainedSteadyStateMatchesRandomStart(t *testing.T) {
	m := dltModel(t)
	chain, err := BatchChain(ChainConfig{
		Model:     m,
		BatchSize: 96,
		Batches:   30,
		Warmup:    2,
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Model:      m,
		Schedulers: []core.Scheduler{core.NewLOSS()},
		Lengths:    []int{96},
		Trials:     func(int) int { return 30 },
		Start:      RandomStart,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	indep, _ := res.MeanPerLocate("LOSS", 96)
	got := chain.PerLocate.Mean()
	if math.Abs(got-indep) > 0.1*indep {
		t.Fatalf("chained steady state %.2f s/locate vs random-start approximation %.2f: should agree within 10%%", got, indep)
	}
}

func TestBatchChainAccounting(t *testing.T) {
	m := dltModel(t)
	res, err := BatchChain(ChainConfig{
		Model:     m,
		Scheduler: core.NewSLTF(),
		BatchSize: 16,
		Batches:   5,
		Warmup:    1,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4*16 {
		t.Fatalf("measured %d requests, want 64", res.Requests)
	}
	if res.PerLocate.N() != 4 {
		t.Fatalf("measured %d batches, want 4", res.PerLocate.N())
	}
	if res.TotalSec <= 0 || res.IOsPerHour() <= 0 {
		t.Fatal("empty totals")
	}
	if res.FinalHead < 0 || res.FinalHead >= m.Segments() {
		t.Fatalf("final head %d out of range", res.FinalHead)
	}
}

func TestBatchChainValidates(t *testing.T) {
	if _, err := BatchChain(ChainConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := BatchChain(ChainConfig{Model: dltModel(t)}); err == nil {
		t.Fatal("zero batch size accepted")
	}
}

func TestBatchChainDeterministic(t *testing.T) {
	m := dltModel(t)
	run := func() float64 {
		r, err := BatchChain(ChainConfig{Model: m, BatchSize: 8, Batches: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalSec
	}
	if run() != run() {
		t.Fatal("chained run not deterministic")
	}
}

// Degenerate chained runs — nothing measured, everything failed, or a
// poisoned total — must yield a zero rate, never NaN or Inf.
func TestIOsPerHourGuardsDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		r    ChainResult
	}{
		{"zero value", ChainResult{}},
		{"requests but no time", ChainResult{Requests: 10}},
		{"time but no requests", ChainResult{TotalSec: 100}},
		{"all failed", ChainResult{Requests: 10, FailedRequests: 10, TotalSec: 100}},
		{"more failures than requests", ChainResult{Requests: 5, FailedRequests: 9, TotalSec: 100}},
		{"NaN total", ChainResult{Requests: 10, TotalSec: math.NaN()}},
		{"Inf total", ChainResult{Requests: 10, TotalSec: math.Inf(1)}},
		{"negative total", ChainResult{Requests: 10, TotalSec: -5}},
	}
	for _, c := range cases {
		got := c.r.IOsPerHour()
		if got != 0 {
			t.Errorf("%s: IOsPerHour() = %v, want 0", c.name, got)
		}
	}
	ok := ChainResult{Requests: 10, FailedRequests: 1, TotalSec: 3600}
	if got := ok.IOsPerHour(); got != 9 {
		t.Errorf("9 completed in an hour: IOsPerHour() = %v, want 9", got)
	}
}

// P99 over an empty completion set (an all-failed run) must not panic.
func TestP99CompletionGuardsEmpty(t *testing.T) {
	if got := (ChainResult{}).P99CompletionSec(); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
}
