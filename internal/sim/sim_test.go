package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
)

func dltModel(t testing.TB) *locate.Model {
	t.Helper()
	tape := geometry.MustGenerate(geometry.DLT4000(), 1)
	m, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func smallRun(t testing.TB, start StartMode, lengths []int, trials int) *Result {
	t.Helper()
	res, err := Run(Config{
		Model:      dltModel(t),
		Schedulers: []core.Scheduler{core.FIFO{}, core.Sort{}, core.NewSLTF(), core.NewLOSS(), core.NewOPT(12), core.Read{}},
		Lengths:    lengths,
		Trials:     func(int) int { return trials },
		Start:      start,
		Seed:       1,
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Run(Config{Model: dltModel(t)}); err == nil {
		t.Fatal("no schedulers accepted")
	}
}

// FIFO's mean per-locate time at a random start must reproduce the
// paper's 72.4 s mean random locate.
func TestFIFOMatchesRandomLocateMean(t *testing.T) {
	res := smallRun(t, RandomStart, []int{48}, 120)
	got, ok := res.MeanPerLocate("FIFO", 48)
	if !ok {
		t.Fatal("no FIFO data")
	}
	if math.Abs(got-72.4) > 5 {
		t.Fatalf("FIFO per-locate = %.2f s, paper 72.4", got)
	}
}

// The ordering the paper's Figures 4/5 show: LOSS <= SLTF <= SORT <=
// FIFO at moderate batch sizes.
func TestAlgorithmOrderingAtModerateN(t *testing.T) {
	res := smallRun(t, RandomStart, []int{96}, 40)
	get := func(alg string) float64 {
		v, ok := res.MeanPerLocate(alg, 96)
		if !ok {
			t.Fatalf("no %s data", alg)
		}
		return v
	}
	loss, sltf, sorted, fifo := get("LOSS"), get("SLTF"), get("SORT"), get("FIFO")
	if !(loss <= sltf+0.5 && sltf < sorted && sorted < fifo) {
		t.Fatalf("ordering violated: LOSS %.1f SLTF %.1f SORT %.1f FIFO %.1f", loss, sltf, sorted, fifo)
	}
}

// OPT is skipped beyond OptMax, exactly as the paper's experiments
// only run it to 12 requests.
func TestOPTSkippedBeyondLimit(t *testing.T) {
	res := smallRun(t, BOTStart, []int{10, 16}, 5)
	if _, ok := res.MeanPerLocate("OPT", 10); !ok {
		t.Fatal("OPT missing at n=10")
	}
	if _, ok := res.MeanPerLocate("OPT", 16); ok {
		t.Fatal("OPT present at n=16 despite the limit")
	}
}

// BOT starts cost more than random starts at n=1 (the head is
// farther from a random destination on average: 96.5 vs 72.4 s).
func TestStartModeMatters(t *testing.T) {
	bot := smallRun(t, BOTStart, []int{1}, 300)
	rnd := smallRun(t, RandomStart, []int{1}, 300)
	b, _ := bot.MeanPerLocate("FIFO", 1)
	r, _ := rnd.MeanPerLocate("FIFO", 1)
	if math.Abs(b-96.5) > 6 {
		t.Errorf("BOT n=1 per-locate %.1f, paper 96.5", b)
	}
	if b <= r {
		t.Errorf("BOT start (%.1f) should cost more than random start (%.1f) at n=1", b, r)
	}
}

func TestResultReproducibleAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) float64 {
		res, err := Run(Config{
			Model:      dltModel(t),
			Schedulers: []core.Scheduler{core.NewSLTF()},
			Lengths:    []int{32},
			Trials:     func(int) int { return 30 },
			Seed:       5,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.MeanPerLocate("SLTF", 32)
		return v
	}
	if a, b := run(1), run(4); math.Abs(a-b) > 1e-9 {
		t.Fatalf("results differ by worker count: %.6f vs %.6f", a, b)
	}
}

func TestWriteTables(t *testing.T) {
	res := smallRun(t, RandomStart, []int{4, 8}, 5)
	var buf bytes.Buffer
	for _, f := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return res.WritePerLocateTable(b) },
		func(b *bytes.Buffer) error { return res.WriteTotalTable(b) },
		func(b *bytes.Buffer) error { return res.WriteStdDevTable(b) },
		func(b *bytes.Buffer) error { return res.WriteCPUTable(b) },
	} {
		buf.Reset()
		if err := f(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "FIFO") || !strings.Contains(out, "LOSS") {
			t.Fatalf("table missing algorithms:\n%s", out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
			t.Fatalf("table should have header+2 rows:\n%s", out)
		}
	}
}

func TestPaperTrialTables(t *testing.T) {
	if PaperTrials(1) != 100000 || PaperTrials(192) != 100000 {
		t.Fatal("paper trials small-n wrong")
	}
	if PaperTrials(256) != 25000 || PaperTrials(2048) != 400 {
		t.Fatal("paper trials large-n wrong")
	}
	if PaperOptTrials(9) != 100000 || PaperOptTrials(10) != 10000 || PaperOptTrials(12) != 100 || PaperOptTrials(13) != 0 {
		t.Fatal("paper OPT trials wrong")
	}
	f := ScaledTrials(1000, 8)
	if f(1) != 100 || f(2048) != 8 {
		t.Fatal("scaled trials wrong")
	}
}

func TestSummaryAgainstPaper(t *testing.T) {
	res, err := Run(Config{
		Model:      dltModel(t),
		Schedulers: []core.Scheduler{core.FIFO{}, core.NewOPT(12), core.NewLOSS(), core.Read{}},
		Lengths:    []int{10, 96, 192, 1024, 1536},
		Trials: func(n int) int {
			if n >= 1024 {
				return 3
			}
			return 25
		},
		Start: RandomStart,
		Seed:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Summary(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("summary has %d rows", len(rows))
	}
	// Shape check against the paper's Section 8 rates, generous
	// tolerances for the reduced trial counts.
	want := []struct {
		paper, tol float64
	}{
		{50, 6}, {93, 10}, {124, 12}, {285, 40}, {391, 40},
	}
	for i, row := range rows {
		if math.Abs(row.IOsPerHour-want[i].paper) > want[i].tol {
			t.Errorf("%s: %.1f IO/h, paper %.0f", row.Label, row.IOsPerHour, want[i].paper)
		}
		if row.Paper != want[i].paper {
			t.Errorf("%s: recorded paper value %.0f, want %.0f", row.Label, row.Paper, want[i].paper)
		}
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LOSS, batch 96") {
		t.Fatal("summary output missing rows")
	}

	if _, err := Summary(smallRun(t, RandomStart, []int{4}, 2)); err == nil {
		t.Fatal("summary without required lengths should error")
	}
}

func TestUtilizationCurves(t *testing.T) {
	res := smallRun(t, RandomStart, []int{10, 96}, 30)
	curves, err := UtilizationCurves(res, "LOSS", 1.5e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != len(PaperUtilizationTargets) {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.N) != 2 {
			t.Fatalf("curve has %d points", len(c.N))
		}
		// Longer schedules need smaller transfers for the same
		// utilization.
		if c.TransferMB[1] >= c.TransferMB[0] {
			t.Fatalf("target %.0f%%: transfer size not decreasing with batch size: %v",
				c.Target*100, c.TransferMB)
		}
	}
	// Higher targets need bigger transfers at the same length.
	for i := 1; i < len(curves); i++ {
		if curves[i].TransferMB[0] <= curves[i-1].TransferMB[0] {
			t.Fatal("transfer size should grow with the utilization target")
		}
	}
	// The paper's headline: ~10 scheduled requests of ~30 MB give
	// disk-comparable behaviour (between the 33% and 75% contours).
	mid, err := UtilizationCurves(res, "LOSS", 1.5e6, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if b := mid[0].TransferMB[0]; b < 15 || b > 75 {
		t.Errorf("50%% utilization at n=10 needs %.0f MB, want tens of MB", b)
	}

	if _, err := UtilizationCurves(res, "NOPE", 1.5e6, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := UtilizationCurves(res, "LOSS", 1.5e6, []float64{1.5}); err == nil {
		t.Fatal("bad target accepted")
	}

	var buf bytes.Buffer
	if err := WriteUtilization(&buf, curves); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "90%") {
		t.Fatal("utilization output missing targets")
	}
}
