package sim

import (
	"fmt"
	"io"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/locate"
	"serpentine/internal/stats"
	"serpentine/internal/workload"
)

// ValidationConfig describes a schedule-execution validation run
// (the paper's Section 6 / Figure 8, and with a mismatched model,
// Section 7 / Figure 9): schedules are generated and estimated with
// the host Model, then executed on the emulated Drive, and the
// percent error between estimate and measurement is reported.
type ValidationConfig struct {
	// Drive executes the schedules ("measured" times). Its head
	// position carries over between trials, as on real hardware.
	Drive *drive.Drive
	// Model generates and estimates the schedules. Build it from the
	// executing tape's key points for Figure 8, or from a different
	// tape's key points for Figure 9.
	Model locate.Cost
	// Scheduler defaults to LOSS, as in the paper.
	Scheduler core.Scheduler
	// Lengths defaults to PaperLengths.
	Lengths []int
	// Trials is the number of request sets per length; the paper
	// uses 4. 0 selects 4.
	Trials int
	// Seed seeds request generation.
	Seed int64
	// ReadLen is the per-request transfer length in segments; 0
	// means 1.
	ReadLen int
}

// ValidationPoint is one schedule's estimate-versus-measurement
// comparison.
type ValidationPoint struct {
	N         int
	Trial     int
	Estimated float64
	Measured  float64
}

// PctError is the paper's metric: estimate less measurement, divided
// by measurement, in percent.
func (v ValidationPoint) PctError() float64 {
	return (v.Estimated - v.Measured) / v.Measured * 100
}

// Validate runs the experiment and returns one point per (length,
// trial).
func Validate(cfg ValidationConfig) ([]ValidationPoint, error) {
	if cfg.Drive == nil || cfg.Model == nil {
		return nil, fmt.Errorf("sim: Validate needs both a drive and a model")
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewLOSS()
	}
	lengths := cfg.Lengths
	if lengths == nil {
		lengths = PaperLengths
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 4
	}
	total := cfg.Drive.Tape().Segments()
	if m := cfg.Model.Segments(); m < total {
		total = m
	}

	var points []ValidationPoint
	for _, n := range lengths {
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed*1000003 + int64(n)*1000003607 + int64(trial)
			reqs := workload.NewUniform(total, seed).Batch(n)
			p := &core.Problem{
				Start:    cfg.Drive.Position(),
				Requests: reqs,
				ReadLen:  cfg.ReadLen,
				Cost:     cfg.Model,
			}
			plan, err := sched.Schedule(p)
			if err != nil {
				return nil, fmt.Errorf("sim: validate %s at n=%d: %w", sched.Name(), n, err)
			}
			est := plan.Estimate(p).Total()
			var meas float64
			if plan.WholeTape {
				meas, err = cfg.Drive.ReadEntireTape()
			} else {
				meas, err = cfg.Drive.ExecuteOrder(plan.Order, cfg.ReadLen)
			}
			if err != nil {
				return nil, fmt.Errorf("sim: executing schedule at n=%d: %w", n, err)
			}
			points = append(points, ValidationPoint{N: n, Trial: trial, Estimated: est, Measured: meas})
		}
	}
	return points, nil
}

// WriteValidation prints per-length mean and worst percent errors.
func WriteValidation(w io.Writer, points []ValidationPoint) error {
	if _, err := fmt.Fprintf(w, "# schedule estimate vs measured execution\n%8s %7s %12s %12s %10s %10s\n",
		"N", "trials", "est mean s", "meas mean s", "mean err%", "worst err%"); err != nil {
		return err
	}
	byN := make(map[int][]ValidationPoint)
	var order []int
	for _, p := range points {
		if _, ok := byN[p.N]; !ok {
			order = append(order, p.N)
		}
		byN[p.N] = append(byN[p.N], p)
	}
	for _, n := range order {
		var est, meas, errAcc stats.Accumulator
		worst := 0.0
		for _, p := range byN[n] {
			est.Add(p.Estimated)
			meas.Add(p.Measured)
			e := p.PctError()
			errAcc.Add(e)
			if abs(e) > abs(worst) {
				worst = e
			}
		}
		if _, err := fmt.Fprintf(w, "%8d %7d %12.1f %12.1f %10.3f %10.3f\n",
			n, est.N(), est.Mean(), meas.Mean(), errAcc.Mean(), worst); err != nil {
			return err
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PerturbConfig describes the Figure 10 sensitivity study: schedules
// are generated with a systematically perturbed locate model (+E
// seconds to even destinations, -E to odd) and their quality is
// measured under the true model, against the schedule the true model
// would have produced.
type PerturbConfig struct {
	// Model is the true cost model.
	Model locate.Cost
	// Scheduler defaults to LOSS.
	Scheduler core.Scheduler
	// Errors are the injected magnitudes; nil selects the paper's
	// {1, 2, 3, 5, 10} seconds.
	Errors []float64
	// Lengths defaults to PaperLengths.
	Lengths []int
	// Trials per length; nil selects ScaledTrials(500, 8).
	Trials func(int) int
	// Start selects the head-position scenario; the paper's Figure
	// 10 uses the beginning of tape.
	Start StartMode
	// Seed seeds request generation.
	Seed int64
}

// PerturbPoint is the mean execution-time increase at one (length,
// error) cell.
type PerturbPoint struct {
	N           int
	E           float64
	MeanPctIncr float64
	Trials      int
}

// PerturbStudy runs the Figure 10 experiment.
func PerturbStudy(cfg PerturbConfig) ([]PerturbPoint, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: PerturbStudy needs a model")
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewLOSS()
	}
	errorsE := cfg.Errors
	if errorsE == nil {
		errorsE = []float64{1, 2, 3, 5, 10}
	}
	lengths := cfg.Lengths
	if lengths == nil {
		lengths = PaperLengths
	}
	trials := cfg.Trials
	if trials == nil {
		trials = ScaledTrials(500, 8)
	}
	total := cfg.Model.Segments()

	var points []PerturbPoint
	for _, n := range lengths {
		accs := make([]stats.Accumulator, len(errorsE))
		nt := trials(n)
		for trial := 0; trial < nt; trial++ {
			seed := cfg.Seed*1000003 + int64(n)*1000003607 + int64(trial)
			set := workload.NewUniform(total, seed).Batch(n + 1)
			start := set[0]
			if cfg.Start == BOTStart {
				start = 0
			}
			reqs := set[1:]

			truth := &core.Problem{Start: start, Requests: reqs, Cost: cfg.Model}
			basePlan, err := sched.Schedule(truth)
			if err != nil {
				return nil, fmt.Errorf("sim: perturb baseline at n=%d: %w", n, err)
			}
			base := basePlan.Estimate(truth).Total()

			for i, e := range errorsE {
				perturbed := &core.Problem{
					Start:    start,
					Requests: reqs,
					Cost:     &locate.Perturbed{Base: cfg.Model, E: e},
				}
				plan, err := sched.Schedule(perturbed)
				if err != nil {
					return nil, fmt.Errorf("sim: perturb E=%g at n=%d: %w", e, n, err)
				}
				// The perturbed model chose the order; the true
				// model says what it really costs.
				got := plan.Estimate(truth).Total()
				accs[i].Add((got - base) / base * 100)
			}
		}
		for i, e := range errorsE {
			points = append(points, PerturbPoint{N: n, E: e, MeanPctIncr: accs[i].Mean(), Trials: nt})
		}
	}
	return points, nil
}

// WritePerturb prints the Figure 10 matrix: rows are schedule
// lengths, one column per injected error magnitude.
func WritePerturb(w io.Writer, points []PerturbPoint) error {
	var lengths []int
	var errorsE []float64
	cells := make(map[int]map[float64]float64)
	for _, p := range points {
		if cells[p.N] == nil {
			lengths = append(lengths, p.N)
			cells[p.N] = make(map[float64]float64)
		}
		if _, ok := cells[p.N][p.E]; !ok {
			cells[p.N][p.E] = p.MeanPctIncr
		}
	}
	for _, p := range points {
		found := false
		for _, e := range errorsE {
			if e == p.E {
				found = true
				break
			}
		}
		if !found {
			errorsE = append(errorsE, p.E)
		}
	}
	if _, err := fmt.Fprintf(w, "# mean %% execution-time increase, perturbed locate model\n%8s", "N"); err != nil {
		return err
	}
	for _, e := range errorsE {
		if _, err := fmt.Fprintf(w, "  LOSS-%-5.0f", e); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, n := range lengths {
		if _, err := fmt.Fprintf(w, "%8d", n); err != nil {
			return err
		}
		for _, e := range errorsE {
			if _, err := fmt.Fprintf(w, " %10.3f", cells[n][e]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// AccuracyResult summarizes a raw locate-time accuracy test (the
// paper's Section 3: 3000 locates on the model-development tape gave
// 7 errors over 2 seconds; 1000 on a different tape gave 24).
type AccuracyResult struct {
	Locates    int
	Over2s     int
	MeanAbsErr float64
	MaxAbsErr  float64
}

// LocateAccuracy executes random locates on the drive and compares
// each measured time with the model's estimate.
func LocateAccuracy(d *drive.Drive, model locate.Cost, locates int, seed int64) (AccuracyResult, error) {
	total := d.Tape().Segments()
	if m := model.Segments(); m < total {
		total = m
	}
	gen := workload.NewUniform(total, seed)
	res := AccuracyResult{Locates: locates}
	var sumAbs float64
	for i := 0; i < locates; i++ {
		pair := gen.Batch(2)
		src, dst := pair[0], pair[1]
		if _, err := d.Locate(src); err != nil {
			return res, err
		}
		meas, err := d.Locate(dst)
		if err != nil {
			return res, err
		}
		est := model.LocateTime(src, dst)
		e := abs(meas - est)
		sumAbs += e
		if e > res.MaxAbsErr {
			res.MaxAbsErr = e
		}
		if e > 2 {
			res.Over2s++
		}
	}
	res.MeanAbsErr = sumAbs / float64(locates)
	return res, nil
}
