package sim

import (
	"fmt"
	"io"
)

// UtilizationCurve is one constant-utilization contour of the paper's
// Figure 7: for each schedule length, the per-request transfer size
// that makes transfers the target fraction of the DLT4000's 1.5 MB/s
// sequential bandwidth.
type UtilizationCurve struct {
	// Target is the utilization fraction (0.25, 0.33, 0.5, ...).
	Target float64
	// N are the schedule lengths.
	N []int
	// TransferMB[i] is the per-request transfer size achieving
	// Target at schedule length N[i].
	TransferMB []float64
}

// PaperUtilizationTargets are the utilization levels of Figure 7.
var PaperUtilizationTargets = []float64{0.25, 0.33, 0.50, 0.75, 0.90}

// UtilizationCurves derives Figure 7 from a simulation result: with a
// mean positioning cost of L seconds per request at schedule length N
// (for the given algorithm), a transfer of B bytes occupies the drive
// for B/rate seconds, so utilization u = (B/rate) / (B/rate + L) and
// the required transfer size is B = rate * L * u/(1-u).
func UtilizationCurves(r *Result, alg string, rateBytesPerSec float64, targets []float64) ([]UtilizationCurve, error) {
	if targets == nil {
		targets = PaperUtilizationTargets
	}
	curves := make([]UtilizationCurve, 0, len(targets))
	for _, u := range targets {
		if u <= 0 || u >= 1 {
			return nil, fmt.Errorf("sim: utilization target %g out of (0,1)", u)
		}
		c := UtilizationCurve{Target: u}
		for _, lr := range r.Lengths {
			a := lr.Alg[alg]
			if a == nil || a.Schedules == 0 {
				continue
			}
			l := a.PerLocate.Mean()
			c.N = append(c.N, lr.N)
			c.TransferMB = append(c.TransferMB, rateBytesPerSec*l*u/(1-u)/1e6)
		}
		if len(c.N) == 0 {
			return nil, fmt.Errorf("sim: no data for algorithm %q", alg)
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// WriteUtilization prints the Figure 7 family: rows are schedule
// lengths, columns the transfer size (MB) required per utilization
// target.
func WriteUtilization(w io.Writer, curves []UtilizationCurve) error {
	if len(curves) == 0 {
		return fmt.Errorf("sim: no utilization curves")
	}
	if _, err := fmt.Fprintf(w, "# transfer size (MB/request) to reach target utilization\n%8s", "N"); err != nil {
		return err
	}
	for _, c := range curves {
		if _, err := fmt.Fprintf(w, " %9.0f%%", c.Target*100); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := range curves[0].N {
		if _, err := fmt.Fprintf(w, "%8d", curves[0].N[i]); err != nil {
			return err
		}
		for _, c := range curves {
			if _, err := fmt.Fprintf(w, " %10.2f", c.TransferMB[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
