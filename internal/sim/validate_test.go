package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
)

func tapeAB(t testing.TB) (*geometry.Tape, *geometry.Tape) {
	t.Helper()
	pa := geometry.DLT4000()
	pa.PersonalityFrac = 0 // the model-development cartridge
	a := geometry.MustGenerate(pa, 1)
	b := geometry.MustGenerate(geometry.DLT4000(), 2)
	return a, b
}

func model(t testing.TB, tape *geometry.Tape) *locate.Model {
	t.Helper()
	m, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Figure 8's shape: with correct key points, estimates are within ~1%
// of measurements for small schedules and degrade to around 5% at
// 2048 requests.
func TestValidationErrorShape(t *testing.T) {
	a, _ := tapeAB(t)
	points, err := Validate(ValidationConfig{
		Drive:   drive.New(a),
		Model:   model(t, a),
		Lengths: []int{16, 96, 2048},
		Trials:  2,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	byN := make(map[int][]float64)
	for _, p := range points {
		byN[p.N] = append(byN[p.N], math.Abs(p.PctError()))
	}
	small := (byN[16][0] + byN[16][1]) / 2
	mid := (byN[96][0] + byN[96][1]) / 2
	big := (byN[2048][0] + byN[2048][1]) / 2
	if small > 2 {
		t.Errorf("error at n=16 is %.2f%%, paper: well under 1%%", small)
	}
	if mid > 2 {
		t.Errorf("error at n=96 is %.2f%%, paper: under 1%%", mid)
	}
	if big < 2.5 || big > 8 {
		t.Errorf("error at n=2048 is %.2f%%, paper: ~5%%", big)
	}
	if big < mid {
		t.Error("error should grow with schedule size")
	}
}

// Figure 9: with the wrong tape's key points the errors become
// disastrous — an order of magnitude beyond Figure 8's.
func TestWrongKeyPointsDisastrous(t *testing.T) {
	a, b := tapeAB(t)
	points, err := Validate(ValidationConfig{
		Drive:   drive.New(a),
		Model:   model(t, b),
		Lengths: []int{96, 512},
		Trials:  2,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var worst, sum float64
	for _, p := range points {
		e := math.Abs(p.PctError())
		sum += e
		worst = math.Max(worst, e)
	}
	mean := sum / float64(len(points))
	if mean < 5 {
		t.Errorf("wrong-key-points mean error %.1f%%, paper reports ~20%% typical", mean)
	}
	if worst < 8 {
		t.Errorf("wrong-key-points worst error %.1f%%, should be large", worst)
	}
}

func TestValidateConfigChecks(t *testing.T) {
	if _, err := Validate(ValidationConfig{}); err == nil {
		t.Fatal("missing drive/model accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	a, _ := tapeAB(t)
	points, err := Validate(ValidationConfig{
		Drive:   drive.New(a),
		Model:   model(t, a),
		Lengths: []int{4},
		Trials:  3,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteValidation(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "worst err%") {
		t.Fatal("validation output malformed")
	}
}

// Figure 10's conclusions: errors of 2 s or less have little effect;
// 10 s degrades schedules by a percent or two at moderate-to-large
// sizes; tiny batches are nearly immune (requests are far apart).
func TestPerturbStudyShape(t *testing.T) {
	a, _ := tapeAB(t)
	points, err := PerturbStudy(PerturbConfig{
		Model:   model(t, a),
		Errors:  []float64{2, 10},
		Lengths: []int{2, 192},
		Trials:  func(int) int { return 25 },
		Start:   BOTStart,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(n int, e float64) float64 {
		for _, p := range points {
			if p.N == n && p.E == e {
				return p.MeanPctIncr
			}
		}
		t.Fatalf("missing cell (%d, %g)", n, e)
		return 0
	}
	if v := cell(2, 2); v > 0.6 {
		t.Errorf("n=2 E=2: %.2f%% increase, should be negligible", v)
	}
	if v := cell(192, 2); v > 1.5 {
		t.Errorf("n=192 E=2: %.2f%% increase, paper: little effect", v)
	}
	ten := cell(192, 10)
	if ten < 0.2 || ten > 6 {
		t.Errorf("n=192 E=10: %.2f%% increase, paper: 1-2%%", ten)
	}
	if ten <= cell(192, 2) {
		t.Error("larger model error should degrade schedules more")
	}

	var buf bytes.Buffer
	if err := WritePerturb(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LOSS-10") {
		t.Fatal("perturb output malformed")
	}
}

// OPT shows no degradation even at E=10: it judges whole schedules,
// and the alternating error averages out (the paper's Section 7
// observation).
func TestPerturbOPTImmune(t *testing.T) {
	a, _ := tapeAB(t)
	points, err := PerturbStudy(PerturbConfig{
		Model:     model(t, a),
		Scheduler: core.NewOPT(12),
		Errors:    []float64{10},
		Lengths:   []int{6},
		Trials:    func(int) int { return 20 },
		Start:     BOTStart,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := points[0].MeanPctIncr; v > 0.35 {
		t.Errorf("OPT with E=10 degraded %.2f%%, paper: no estimation errors", v)
	}
}

// Section 3's raw accuracy: ~7/3000 on the development tape, ~24/1000
// on another cartridge.
func TestLocateAccuracyPaperCounts(t *testing.T) {
	a, b := tapeAB(t)
	accA, err := LocateAccuracy(drive.New(a), model(t, a), 3000, 9001)
	if err != nil {
		t.Fatal(err)
	}
	if accA.Over2s > 20 {
		t.Errorf("tape A: %d/3000 over 2 s, paper 7", accA.Over2s)
	}
	if accA.MeanAbsErr > 0.8 {
		t.Errorf("tape A mean |err| %.3f s, want well under a second", accA.MeanAbsErr)
	}
	accB, err := LocateAccuracy(drive.New(b), model(t, b), 1000, 9001)
	if err != nil {
		t.Fatal(err)
	}
	if accB.Over2s < 5 || accB.Over2s > 60 {
		t.Errorf("tape B: %d/1000 over 2 s, paper 24", accB.Over2s)
	}
	if accB.Over2s*3 <= accA.Over2s {
		t.Error("a different tape should err more often than the development tape")
	}
}
