package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/obs"
)

// DefaultRequestTimeoutSec is the default drive-time budget one
// request may consume before the executor gives up on it — and, by
// design, the default per-request Deadline the serving layers apply
// when deadlines are enabled without an explicit value
// (server.Config.DeadlineSec, tertiary.Config.DeadlineSec). Sharing
// one named constant keeps the two timeout paths from silently
// diverging: a request the executor would abandon is also one the
// admission layer considers expired.
const DefaultRequestTimeoutSec = 900.0

// RetryPolicy bounds the executor's recovery behaviour. The zero
// value selects the defaults noted per field.
type RetryPolicy struct {
	// MaxRetries is how many failed attempts one request may consume
	// before the executor stops retrying in place and replans the
	// remaining work; 0 selects 3.
	MaxRetries int
	// BackoffBaseSec is the first transient-retry backoff, doubled on
	// every further retry of the same request and charged to the
	// drive's virtual clock; 0 selects 0.5.
	BackoffBaseSec float64
	// BackoffMaxSec caps the exponential backoff; 0 selects 30.
	BackoffMaxSec float64
	// RequestTimeoutSec is the drive-time budget one request may
	// consume (attempts plus backoff) before the executor abandons
	// the in-place retry loop and replans; 0 selects
	// DefaultRequestTimeoutSec.
	RequestTimeoutSec float64
	// MaxReplans bounds replanning per executed plan; when exhausted,
	// further unrecoverable requests are failed instead of replanned;
	// 0 selects 16.
	MaxReplans int
	// PlanningBudgetOps is the deterministic planning-cost budget per
	// replan, in modelled scheduler operations (see planningOps):
	// when the active scheduler's modelled cost for the remaining
	// batch exceeds it, the executor degrades along the LOSS → SLTF →
	// SCAN chain. The budget is deliberately a cost model rather than
	// a wall-clock stopwatch: scheduling decisions driven by measured
	// nanoseconds would make retry/replan counts depend on machine
	// load, destroying the reproducibility the chaos experiments
	// assert. 0 selects 4<<20 (~LOSS up to 2048 requests, matching
	// the Auto policy's crossover).
	PlanningBudgetOps int
}

// withDefaults resolves the zero-value fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBaseSec <= 0 {
		p.BackoffBaseSec = 0.5
	}
	if p.BackoffMaxSec <= 0 {
		p.BackoffMaxSec = 30
	}
	if p.RequestTimeoutSec <= 0 {
		p.RequestTimeoutSec = DefaultRequestTimeoutSec
	}
	if p.MaxReplans <= 0 {
		p.MaxReplans = 16
	}
	if p.PlanningBudgetOps <= 0 {
		p.PlanningBudgetOps = 4 << 20
	}
	return p
}

// backoff returns the wait before transient retry k (0-based):
// BackoffBaseSec * 2^k, capped at BackoffMaxSec.
func (p RetryPolicy) backoff(k int) float64 {
	b := p.BackoffBaseSec * math.Pow(2, float64(k))
	if b > p.BackoffMaxSec {
		return p.BackoffMaxSec
	}
	return b
}

// ExecResult accounts one plan execution on the drive.
type ExecResult struct {
	// Served lists the segments retrieved successfully, in service
	// order (the plan order, re-shuffled by any replans).
	Served []int
	// Failed lists the segments abandoned permanently (media errors,
	// retry exhaustion past the replan budget). FailedAt holds, index
	// aligned, the drive-time offset from the start of the execution
	// at which each abandonment was decided — the library's rescue
	// layer uses it to place a failure before or after a drive death.
	Failed   []int
	FailedAt []float64
	// Retries counts failed attempts that were retried in place
	// (transient reads, overshoot re-locates).
	Retries int
	// Replans counts mid-schedule replannings of the remaining
	// requests from the current head position.
	Replans int
	// Recalibrations counts rewind-to-BOT recoveries from lost servo
	// position.
	Recalibrations int
	// Fallbacks counts scheduler downgrades along the LOSS → SLTF →
	// SCAN chain when replanning exceeded the planning budget.
	Fallbacks int
	// ElapsedSec is the total virtual time the execution took,
	// including all recovery.
	ElapsedSec float64
	// RecoverySec is the share of ElapsedSec spent on recovery:
	// failed attempts, backoff waits and recalibrations.
	RecoverySec float64
	// Completions holds, for each served request in service order,
	// its completion time offset from the start of the execution; the
	// chaos experiments take p99 over these.
	Completions []float64
	// Detail decomposes each Completions entry into its phases; it is
	// index-aligned with Served.
	Detail []ServeDetail
}

// ServeDetail decomposes one served request's completion offset into
// phases. The four fields sum to the request's Completions entry (to
// floating-point telescoping error, well under a nanosecond): the
// attribution layer relies on that conservation.
type ServeDetail struct {
	// BeginSec is the time from the start of the execution until the
	// request's final (successful) serve loop began: serving the
	// requests ahead of it, plus any earlier abandoned serve loops,
	// replans and recalibrations of its own.
	BeginSec float64
	// RetrySec is the recovery spent inside the final serve loop —
	// failed attempts and backoff waits before the successful attempt.
	RetrySec float64
	// LocateSec is the successful locate.
	LocateSec float64
	// ReadSec is the successful transfer.
	ReadSec float64
}

// Executor runs retrieval plans against an emulated drive, recovering
// from injected faults: transient failures are retried in place with
// exponential backoff, overshoots re-locate from where the head
// landed, lost servo position triggers recalibration, and both lost
// position and retry exhaustion replan the remaining requests from
// the current head position with the active scheduler. When the
// modelled planning cost of a replan exceeds the policy's budget the
// executor degrades along the LOSS → SLTF → SCAN chain (the cheaper
// schedulers reuse the same pooled arenas, so a degraded replan costs
// one allocation). The degradation is sticky across replans of the
// same execution and resets on the next Execute call.
//
// Like the drive it wraps, an Executor is not safe for concurrent
// use.
type Executor struct {
	// Drive executes the schedules.
	Drive *drive.Drive
	// Scheduler replans after failures; nil selects LOSS. Chain
	// position 0; SLTF and SCAN complete the degradation chain.
	Scheduler core.Scheduler
	// Policy bounds the recovery behaviour.
	Policy RetryPolicy

	// Trace, when non-nil, records this execution's serve, backoff,
	// recalibrate and replan phases as spans. Tracing is pure
	// accounting: it never touches the drive, so timing is
	// bit-identical with and without it.
	Trace *obs.TraceHandle
	// Parent is the span the execution's spans nest under (may be
	// nil for top-level spans).
	Parent *obs.SpanHandle
	// TraceBase maps the drive's clock, which starts at zero on every
	// mount, onto the trace's absolute virtual time: a span at drive
	// time t is recorded at TraceBase + t.
	TraceBase float64

	level int         // current degradation tier for this execution
	pol   RetryPolicy // Policy with defaults resolved, set per Execute
	rem   []int       // reusable remaining-requests buffer
}

// serve verdicts.
type verdict int

const (
	vServed verdict = iota
	vFailed
	vReplan
)

func (v verdict) String() string {
	switch v {
	case vServed:
		return "served"
	case vFailed:
		return "failed"
	default:
		return "replan"
	}
}

// Execute runs the plan's order against the drive. The problem
// supplies the cost model and read length replanning needs; plan must
// be a plan for that problem. Requests that fail permanently are
// recorded in the result, not returned as an error: an error return
// means the execution itself was invalid (nil drive, out-of-range
// request), after which the drive state is unspecified.
//
// With no enabled fault injector on the drive, Execute performs
// exactly the locate/read sequence of drive.ExecuteOrder — or
// drive.ReadEntireTape for whole-tape plans — and its timing is
// bit-identical to those primitives.
func (ex *Executor) Execute(p *core.Problem, plan core.Plan) (ExecResult, error) {
	var res ExecResult
	if ex.Drive == nil {
		return res, fmt.Errorf("sim: Executor needs a drive")
	}
	if p == nil || p.Cost == nil {
		return res, fmt.Errorf("sim: Executor needs a problem with a cost model")
	}
	ex.level = 0
	ex.pol = ex.Policy.withDefaults()
	readLen := p.ReadLen
	if readLen < 1 {
		readLen = 1
	}
	start := ex.Drive.Clock()

	// A whole-tape READ plan on a fault-free drive is a streaming
	// pass, not a locate sequence; keep that execution path so READ
	// timing matches the validation experiments. Under injected
	// faults the pass is executed request by request (the plan's
	// order is ascending, so the locates degenerate to short forward
	// skips) because recovery needs per-request granularity.
	if plan.WholeTape && !ex.Drive.FaultsEnabled() {
		sp := ex.Trace.Start("read-tape", ex.Parent, ex.TraceBase+start).
			AttrInt("requests", len(plan.Order))
		el, err := ex.Drive.ReadEntireTape()
		sp.End(ex.TraceBase + ex.Drive.Clock())
		if err != nil {
			return res, err
		}
		res.Served = append(res.Served, plan.Order...)
		for range plan.Order {
			res.Completions = append(res.Completions, el)
			res.Detail = append(res.Detail, ServeDetail{ReadSec: el})
		}
		res.ElapsedSec = ex.Drive.Clock() - start
		return res, nil
	}

	if cap(ex.rem) < len(plan.Order) {
		ex.rem = make([]int, len(plan.Order))
	}
	remaining := ex.rem[:len(plan.Order)]
	copy(remaining, plan.Order)
	// The served/completion slices are returned to the caller, so they
	// are freshly allocated — but at final size, so the loop below
	// never regrows them.
	res.Served = make([]int, 0, len(plan.Order))
	res.Completions = make([]float64, 0, len(plan.Order))
	res.Detail = make([]ServeDetail, 0, len(plan.Order))
	// strikes counts replan-triggering failures per segment: a
	// segment that survives a replan and again exhausts its retries
	// is abandoned rather than replanned forever.
	var strikes map[int]int

	for len(remaining) > 0 {
		seg := remaining[0]
		v, clk, err := ex.serve(seg, readLen, &res)
		if err != nil {
			res.ElapsedSec = ex.Drive.Clock() - start
			return res, err
		}
		switch v {
		case vServed:
			res.Served = append(res.Served, seg)
			res.Completions = append(res.Completions, ex.Drive.Clock()-start)
			res.Detail = append(res.Detail, ServeDetail{
				BeginSec:  clk.begin - start,
				RetrySec:  clk.retryEnd - clk.begin,
				LocateSec: clk.locateEnd - clk.retryEnd,
				ReadSec:   clk.end - clk.locateEnd,
			})
			remaining = remaining[1:]
		case vFailed:
			res.Failed = append(res.Failed, seg)
			res.FailedAt = append(res.FailedAt, ex.Drive.Clock()-start)
			remaining = remaining[1:]
		case vReplan:
			reason := "retry-exhausted"
			if ex.Drive.Lost() {
				reason = "lost-position"
				rsp := ex.Trace.Start("recalibrate", ex.Parent, ex.TraceBase+ex.Drive.Clock())
				t := ex.Drive.Recalibrate()
				res.Recalibrations++
				res.RecoverySec += t
				rsp.End(ex.TraceBase + ex.Drive.Clock())
			}
			if strikes == nil {
				strikes = make(map[int]int)
			}
			strikes[seg]++
			if strikes[seg] >= 2 || res.Replans >= ex.pol.MaxReplans {
				res.Failed = append(res.Failed, seg)
				res.FailedAt = append(res.FailedAt, ex.Drive.Clock()-start)
				remaining = remaining[1:]
				continue
			}
			res.Replans++
			rp := ex.Trace.Start("replan", ex.Parent, ex.TraceBase+ex.Drive.Clock()).
				Attr("reason", reason).AttrInt("remaining", len(remaining))
			remaining = ex.replan(p, remaining, &res, rp)
			rp.End(ex.TraceBase + ex.Drive.Clock())
		}
	}
	res.ElapsedSec = ex.Drive.Clock() - start
	return res, nil
}

// serveClocks marks the absolute drive-clock milestones of one serve
// loop: when it began, when in-place recovery ended (the successful
// attempt's start), when the successful locate finished, and when the
// transfer finished. Only a vServed loop fills the last three.
type serveClocks struct {
	begin, retryEnd, locateEnd, end float64
}

// serve retrieves one request, retrying in place per the policy. It
// returns vServed on success, vFailed on a permanent per-request
// failure (media error, read past end of tape), vReplan when in-place
// retry is exhausted or position was lost, and a non-nil error only
// for invalid executions.
func (ex *Executor) serve(seg, readLen int, res *ExecResult) (verdict, serveClocks, error) {
	// The serve span brackets the whole loop. Closing it in a deferred
	// closure would allocate the closure on every serve, traced or
	// not; serveLoop returns normally on every path, so the span is
	// closed inline instead.
	sp := ex.Trace.Start("serve", ex.Parent, ex.TraceBase+ex.Drive.Clock()).AttrInt("segment", seg)
	v, clk, err := ex.serveLoop(seg, readLen, res, sp)
	if sp != nil {
		sp.Attr("verdict", v.String()).End(ex.TraceBase + ex.Drive.Clock())
	}
	return v, clk, err
}

// serveLoop is serve's retry loop, span handling factored out. sp is
// the enclosing serve span backoff spans nest under (nil untraced).
func (ex *Executor) serveLoop(seg, readLen int, res *ExecResult, sp *obs.SpanHandle) (v verdict, clk serveClocks, err error) {
	d := ex.Drive
	pol := ex.pol
	begin := d.Clock()
	clk.begin = begin
	fails := 0
	for {
		if d.Lost() {
			return vReplan, clk, nil
		}
		if fails > pol.MaxRetries {
			return vReplan, clk, nil
		}
		if d.Clock()-begin > pol.RequestTimeoutSec {
			return vReplan, clk, nil
		}
		attemptStart := d.Clock()
		if _, err := d.Locate(seg); err != nil {
			switch {
			case errors.Is(err, drive.ErrOvershoot):
				// The head is past the target; re-locate from where
				// it stopped. No backoff: the failure is positional,
				// not load-related.
				fails++
				res.Retries++
				res.RecoverySec += d.Clock() - attemptStart
				continue
			case errors.Is(err, drive.ErrLostPosition):
				res.RecoverySec += d.Clock() - attemptStart
				return vReplan, clk, nil
			default:
				return vFailed, clk, err
			}
		}
		locateEnd := d.Clock()
		_, err := d.Read(readLen)
		if err == nil {
			clk.retryEnd = attemptStart
			clk.locateEnd = locateEnd
			clk.end = d.Clock()
			return vServed, clk, nil
		}
		res.RecoverySec += d.Clock() - attemptStart
		switch {
		case errors.Is(err, drive.ErrMedia):
			return vFailed, clk, nil
		case errors.Is(err, drive.ErrTransient):
			res.Retries++
			wait := pol.backoff(fails)
			fails++
			bs := ex.Trace.Start("backoff", sp, ex.TraceBase+d.Clock()).
				AttrFloat("wait_sec", wait)
			d.Wait(wait)
			bs.End(ex.TraceBase + d.Clock())
			res.RecoverySec += wait
			continue
		case errors.Is(err, drive.ErrLostPosition):
			return vReplan, clk, nil
		case errors.Is(err, drive.ErrEndOfTape):
			// The request cannot be transferred at this read length;
			// a plan/problem mismatch rather than a drive fault.
			return vFailed, clk, nil
		default:
			return vFailed, clk, err
		}
	}
}

// replan reorders the remaining requests from the drive's current
// head position. The active scheduler is tried first; when its
// modelled planning cost exceeds the budget, or it fails, the
// executor degrades to the next tier of the LOSS → SLTF → SCAN chain
// and stays there for the rest of this execution. Replanning never
// loses or invents a request: a schedule that is not a permutation of
// the remaining set is rejected, and if every tier fails the current
// order is kept.
func (ex *Executor) replan(p *core.Problem, remaining []int, res *ExecResult, sp *obs.SpanHandle) []int {
	pol := ex.pol
	prob := &core.Problem{
		Start:    ex.Drive.Position(),
		Requests: remaining,
		ReadLen:  p.ReadLen,
		Cost:     p.Cost,
	}
	chain := ex.chain()
	var skipped []string
	for ; ex.level < len(chain); ex.level++ {
		s := chain[ex.level]
		if planningOps(s.Name(), len(remaining)) > pol.PlanningBudgetOps {
			res.Fallbacks++
			skipped = append(skipped, s.Name())
			continue
		}
		plan, err := s.Schedule(prob)
		if err != nil || core.CheckPermutation(remaining, plan.Order) != nil {
			res.Fallbacks++
			skipped = append(skipped, s.Name())
			continue
		}
		if len(skipped) > 0 {
			sp.Attr("skipped", strings.Join(skipped, ","))
		}
		sp.Attr("scheduler", s.Name())
		return plan.Order
	}
	// Every tier was over budget or failed: keep the current order.
	ex.level = len(chain) - 1
	if len(skipped) > 0 {
		sp.Attr("skipped", strings.Join(skipped, ","))
	}
	sp.Attr("scheduler", "none")
	return remaining
}

// chain returns the degradation chain: the configured scheduler (LOSS
// when nil), then SLTF, then SCAN, deduplicated by name.
func (ex *Executor) chain() []core.Scheduler {
	first := ex.Scheduler
	if first == nil {
		first = core.NewLOSS()
	}
	chain := []core.Scheduler{first}
	for _, s := range []core.Scheduler{core.NewSLTF(), core.Scan{}} {
		if s.Name() != first.Name() {
			chain = append(chain, s)
		}
	}
	return chain
}

// planningOps models the planning cost of scheduling n requests, in
// abstract operations, from each algorithm's asymptotic shape (LOSS
// builds a dense n-squared matrix; SLTF scans section buckets; the
// rest are linearithmic). It exists so the planning-budget decision
// is a pure function of (scheduler, n) — see
// RetryPolicy.PlanningBudgetOps for why wall-clock time would be
// wrong.
func planningOps(name string, n int) int {
	switch name {
	case "OPT":
		if n > 12 {
			return math.MaxInt
		}
		return n * (1 << n)
	case "LOSS", "LOSS-C":
		return n * n
	case "LOSS-SPARSE":
		return 64 * n
	case "SLTF", "SLTF-C":
		return 40 * n
	default: // FIFO, SORT, SCAN, WEAVE, READ: (near-)linear
		return 8 * n
	}
}
