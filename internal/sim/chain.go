package sim

import (
	"fmt"

	"serpentine/internal/core"
	"serpentine/internal/locate"
	"serpentine/internal/stats"
	"serpentine/internal/workload"
)

// ChainConfig describes the paper's first scenario made literal: "a
// tape is scheduled repeatedly, executing retrievals in batches. In
// this case, at the beginning of each schedule execution the tape
// head is in the position of the last read in the previous batch."
// Instead of approximating that steady state by drawing a random
// starting position per trial (as the Figure 3 pseudocode does),
// BatchChain actually chains the batches and measures the steady
// state directly.
type ChainConfig struct {
	// Model is the cost model.
	Model locate.Cost
	// Scheduler orders each batch; nil selects LOSS.
	Scheduler core.Scheduler
	// BatchSize is the number of requests per batch.
	BatchSize int
	// Batches is how many batches to chain.
	Batches int
	// Warmup batches are executed but excluded from the statistics
	// (the first batch starts at the beginning of tape); 0 selects 1.
	Warmup int
	// ReadLen is the per-request transfer length; 0 means 1.
	ReadLen int
	// Seed seeds request generation.
	Seed int64
	// Workload generates batches; nil selects uniform.
	Workload workload.Generator
}

// ChainResult summarizes a chained run.
type ChainResult struct {
	// PerLocate accumulates each measured batch's per-request time.
	PerLocate stats.Accumulator
	// TotalSec is the summed estimated execution time of the
	// measured batches.
	TotalSec float64
	// Requests is the number of requests in the measured batches.
	Requests int
	// FinalHead is the head position after the last batch.
	FinalHead int
}

// IOsPerHour is the steady-state retrieval rate.
func (r ChainResult) IOsPerHour() float64 {
	if r.TotalSec == 0 {
		return 0
	}
	return float64(r.Requests) / r.TotalSec * 3600
}

// BatchChain runs the chained-batch experiment.
func BatchChain(cfg ChainConfig) (ChainResult, error) {
	if cfg.Model == nil {
		return ChainResult{}, fmt.Errorf("sim: BatchChain needs a model")
	}
	if cfg.BatchSize < 1 || cfg.Batches < 1 {
		return ChainResult{}, fmt.Errorf("sim: BatchChain needs positive batch size and count")
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewLOSS()
	}
	warmup := cfg.Warmup
	if warmup <= 0 {
		warmup = 1
	}
	gen := cfg.Workload
	if gen == nil {
		gen = workload.NewUniform(cfg.Model.Segments(), cfg.Seed)
	}

	var res ChainResult
	head := 0
	for b := 0; b < cfg.Batches; b++ {
		p := &core.Problem{
			Start:    head,
			Requests: gen.Batch(cfg.BatchSize),
			ReadLen:  cfg.ReadLen,
			Cost:     cfg.Model,
		}
		plan, err := sched.Schedule(p)
		if err != nil {
			return res, fmt.Errorf("sim: chained batch %d: %w", b, err)
		}
		est := plan.Estimate(p)
		head = plan.FinalHead(p)
		if b < warmup {
			continue
		}
		res.PerLocate.Add(est.Total() / float64(cfg.BatchSize))
		res.TotalSec += est.Total()
		res.Requests += cfg.BatchSize
	}
	res.FinalHead = head
	return res, nil
}
