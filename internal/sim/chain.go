package sim

import (
	"fmt"
	"math"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/locate"
	"serpentine/internal/stats"
	"serpentine/internal/workload"
)

// ChainConfig describes the paper's first scenario made literal: "a
// tape is scheduled repeatedly, executing retrievals in batches. In
// this case, at the beginning of each schedule execution the tape
// head is in the position of the last read in the previous batch."
// Instead of approximating that steady state by drawing a random
// starting position per trial (as the Figure 3 pseudocode does),
// BatchChain actually chains the batches and measures the steady
// state directly.
//
// The chain runs in one of two modes. With Drive nil (the default),
// batches are estimated under the cost model, exactly as before. With
// Drive set, every batch is *executed* on the emulated drive through
// the recovering Executor, the head position chains through the
// drive's real (possibly fault-perturbed) position, and Faults
// optionally arms the drive with an injector so the steady-state
// scenario exercises retry, replanning and recalibration.
type ChainConfig struct {
	// Model is the cost model.
	Model locate.Cost
	// Scheduler orders each batch; nil selects LOSS.
	Scheduler core.Scheduler
	// BatchSize is the number of requests per batch.
	BatchSize int
	// Batches is how many batches to chain.
	Batches int
	// Warmup batches are executed but excluded from the statistics
	// (the first batch starts at the beginning of tape); 0 selects 1.
	Warmup int
	// ReadLen is the per-request transfer length; 0 means 1.
	ReadLen int
	// Seed seeds request generation.
	Seed int64
	// Workload generates batches; nil selects uniform.
	Workload workload.Generator

	// Drive, when non-nil, switches the chain to executed mode: each
	// batch runs on this drive via the Executor.
	Drive *drive.Drive
	// Faults arms Drive with a fault injector when any rate is
	// non-zero. Ignored in estimate mode.
	Faults fault.Config
	// Policy bounds the Executor's recovery in executed mode.
	Policy RetryPolicy
}

// ChainResult summarizes a chained run. The recovery fields are only
// non-zero for executed-mode runs with faults armed; they cover the
// measured (post-warmup) batches.
type ChainResult struct {
	// PerLocate accumulates each measured batch's per-request time.
	PerLocate stats.Accumulator
	// TotalSec is the summed execution time of the measured batches:
	// estimated in estimate mode, measured on the drive in executed
	// mode.
	TotalSec float64
	// Requests is the number of requests in the measured batches.
	Requests int
	// FinalHead is the head position after the last batch.
	FinalHead int

	// Executed reports whether the run executed on a drive.
	Executed bool
	// Served and FailedRequests partition the measured requests by
	// outcome; estimate mode serves everything by definition.
	Served         int
	FailedRequests int
	// Retries, Replans, Recalibrations and Fallbacks total the
	// executor's recovery actions over the measured batches.
	Retries        int
	Replans        int
	Recalibrations int
	Fallbacks      int
	// RecoverySec is the measured time spent on recovery: failed
	// attempts, backoff waits and recalibrations.
	RecoverySec float64
	// Completions holds every served request's completion offset from
	// its batch start, for tail-latency percentiles.
	Completions []float64
}

// IOsPerHour is the steady-state retrieval rate over *completed*
// retrievals. It is guarded against degenerate inputs: an empty
// measurement window, an all-failed run, or a non-finite total yields
// 0 rather than NaN or Inf.
func (r ChainResult) IOsPerHour() float64 {
	done := r.Requests - r.FailedRequests
	if done <= 0 || !(r.TotalSec > 0) || math.IsInf(r.TotalSec, 0) {
		return 0
	}
	return float64(done) / r.TotalSec * 3600
}

// P99CompletionSec is the 99th-percentile per-request completion time
// of the measured batches, or 0 when nothing completed.
func (r ChainResult) P99CompletionSec() float64 {
	return stats.PercentileOrZero(r.Completions, 99)
}

// BatchChain runs the chained-batch experiment.
func BatchChain(cfg ChainConfig) (ChainResult, error) {
	if cfg.Model == nil {
		return ChainResult{}, fmt.Errorf("sim: BatchChain needs a model")
	}
	if cfg.BatchSize < 1 || cfg.Batches < 1 {
		return ChainResult{}, fmt.Errorf("sim: BatchChain needs positive batch size and count")
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = core.NewLOSS()
	}
	warmup := cfg.Warmup
	if warmup <= 0 {
		warmup = 1
	}
	gen := cfg.Workload
	if gen == nil {
		gen = workload.NewUniform(cfg.Model.Segments(), cfg.Seed)
	}
	var exec *Executor
	if cfg.Drive != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return ChainResult{}, fmt.Errorf("sim: BatchChain faults: %w", err)
		}
		if cfg.Faults.Enabled() {
			cfg.Drive.AttachFaults(fault.New(cfg.Faults))
		}
		exec = &Executor{Drive: cfg.Drive, Scheduler: sched, Policy: cfg.Policy}
	}

	var res ChainResult
	res.Executed = exec != nil
	head := 0
	if exec != nil {
		head = cfg.Drive.Position()
	}
	for b := 0; b < cfg.Batches; b++ {
		p := &core.Problem{
			Start:    head,
			Requests: gen.Batch(cfg.BatchSize),
			ReadLen:  cfg.ReadLen,
			Cost:     cfg.Model,
		}
		plan, err := sched.Schedule(p)
		if err != nil {
			return res, fmt.Errorf("sim: chained batch %d: %w", b, err)
		}
		if exec == nil {
			est := plan.Estimate(p)
			head = plan.FinalHead(p)
			if b < warmup {
				continue
			}
			res.PerLocate.Add(est.Total() / float64(cfg.BatchSize))
			res.TotalSec += est.Total()
			res.Requests += cfg.BatchSize
			res.Served += cfg.BatchSize
			continue
		}
		er, err := exec.Execute(p, plan)
		if err != nil {
			return res, fmt.Errorf("sim: executing chained batch %d: %w", b, err)
		}
		head = cfg.Drive.Position()
		if b < warmup {
			continue
		}
		res.PerLocate.Add(er.ElapsedSec / float64(cfg.BatchSize))
		res.TotalSec += er.ElapsedSec
		res.Requests += cfg.BatchSize
		res.Served += len(er.Served)
		res.FailedRequests += len(er.Failed)
		res.Retries += er.Retries
		res.Replans += er.Replans
		res.Recalibrations += er.Recalibrations
		res.Fallbacks += er.Fallbacks
		res.RecoverySec += er.RecoverySec
		res.Completions = append(res.Completions, er.Completions...)
	}
	res.FinalHead = head
	return res, nil
}
