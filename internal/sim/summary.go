package sim

import (
	"fmt"
	"io"
)

// SummaryRow is one line of the paper's Section 8 bottom line: the
// random-retrieval rate a DLT4000 achieves under each regime.
type SummaryRow struct {
	// Label names the regime ("FIFO (no scheduling)", "OPT, batch
	// 10", ...).
	Label string
	// Alg and N identify the data point.
	Alg string
	N   int
	// SecPerIO is the mean schedule time per retrieval.
	SecPerIO float64
	// IOsPerHour is 3600/SecPerIO.
	IOsPerHour float64
	// Paper is the rate the paper reports for this regime.
	Paper float64
}

// Summary extracts the Section 8 headline rates from a simulation
// result: FIFO unscheduled, OPT at batch 10, LOSS at batches 96 and
// 1024, and whole-tape READ amortized over 1536 requests. The paper's
// numbers are 50, 93, 124, 285 and 391 I/Os per hour.
func Summary(r *Result) ([]SummaryRow, error) {
	want := []struct {
		label string
		alg   string
		n     int
		paper float64
	}{
		{"FIFO (no scheduling), batch 192", "FIFO", 192, 50},
		{"OPT, batch 10", "OPT", 10, 93},
		{"LOSS, batch 96", "LOSS", 96, 124},
		{"LOSS, batch 1024", "LOSS", 1024, 285},
		{"READ entire tape, batch 1536", "READ", 1536, 391},
	}
	rows := make([]SummaryRow, 0, len(want))
	for _, w := range want {
		per, ok := r.MeanPerLocate(w.alg, w.n)
		if !ok {
			return nil, fmt.Errorf("sim: summary needs %s at n=%d in the result", w.alg, w.n)
		}
		rows = append(rows, SummaryRow{
			Label:      w.label,
			Alg:        w.alg,
			N:          w.n,
			SecPerIO:   per,
			IOsPerHour: 3600 / per,
			Paper:      w.paper,
		})
	}
	return rows, nil
}

// WriteSummary prints the Section 8 comparison against the paper.
func WriteSummary(w io.Writer, rows []SummaryRow) error {
	if _, err := fmt.Fprintf(w, "# random retrieval rates (Section 8)\n%-36s %10s %10s %10s\n",
		"regime", "s/IO", "IO/hour", "paper"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%-36s %10.2f %10.1f %10.0f\n",
			row.Label, row.SecPerIO, row.IOsPerHour, row.Paper); err != nil {
			return err
		}
	}
	return nil
}
