package sim

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/obs"
)

// execFixture builds a tape, a host model from its key points, and a
// drive with the given fault mix (zero mix = no injector).
func execFixture(t testing.TB, serial int64, cfg fault.Config) (*locate.Model, *drive.Drive) {
	t.Helper()
	tape := geometry.MustGenerate(geometry.DLT4000(), serial)
	m, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	var opts []drive.Option
	if cfg.Enabled() {
		opts = append(opts, drive.WithFaults(fault.New(cfg)))
	}
	return m, drive.New(tape, opts...)
}

func schedulePlan(t testing.TB, m *locate.Model, sched core.Scheduler, start int, reqs []int) (*core.Problem, core.Plan) {
	t.Helper()
	p := &core.Problem{Start: start, Requests: reqs, Cost: m}
	plan, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, plan
}

// The acceptance gate: with fault injection disabled, the executor's
// timing, head movement and stats are bit-identical to the plain
// drive.ExecuteOrder path used by every existing experiment.
func TestExecutorEquivalentToExecuteOrderWithoutFaults(t *testing.T) {
	m, d1 := execFixture(t, 1, fault.Config{})
	_, d2 := execFixture(t, 1, fault.Config{})
	p, plan := schedulePlan(t, m, core.NewLOSS(), 0, []int{100000, 5000, 400000, 250123, 611111, 42})

	want, err := d1.ExecuteOrder(plan.Order, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Drive: d2}
	res, err := ex.Execute(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.ElapsedSec != want {
		t.Fatalf("executor elapsed %.9f, ExecuteOrder %.9f: must be bit-identical", res.ElapsedSec, want)
	}
	if d1.Clock() != d2.Clock() || d1.Position() != d2.Position() || d1.Stats() != d2.Stats() {
		t.Fatal("drive state diverged between executor and ExecuteOrder")
	}
	if len(res.Served) != len(plan.Order) || len(res.Failed) != 0 {
		t.Fatalf("served %d failed %d, want all %d served", len(res.Served), len(res.Failed), len(plan.Order))
	}
	if res.Retries != 0 || res.Replans != 0 || res.Recalibrations != 0 || res.RecoverySec != 0 {
		t.Fatalf("recovery accounting non-zero without faults: %+v", res)
	}
}

// Whole-tape READ plans on a fault-free drive must keep using the
// streaming pass.
func TestExecutorWholeTapeEquivalentToReadEntireTape(t *testing.T) {
	m, d1 := execFixture(t, 1, fault.Config{})
	_, d2 := execFixture(t, 1, fault.Config{})
	p, plan := schedulePlan(t, m, core.Read{}, 0, []int{9, 100, 5})
	if !plan.WholeTape {
		t.Fatal("READ plan not whole-tape")
	}
	want, err := d1.ReadEntireTape()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Executor{Drive: d2}).Execute(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.ElapsedSec != want || d1.Clock() != d2.Clock() {
		t.Fatalf("whole-tape executor %.6f, ReadEntireTape %.6f", res.ElapsedSec, want)
	}
	if len(res.Served) != 3 {
		t.Fatalf("served %d, want 3", len(res.Served))
	}
}

// sortedEqual reports whether a and b are equal as multisets.
func sortedEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// checkConservation asserts the executor's core invariant: every
// request is either served or failed, exactly once.
func checkConservation(t *testing.T, reqs []int, res ExecResult) {
	t.Helper()
	got := append(append([]int(nil), res.Served...), res.Failed...)
	if !sortedEqual(got, reqs) {
		t.Fatalf("request conservation violated: %d requests in, %d served + %d failed out",
			len(reqs), len(res.Served), len(res.Failed))
	}
}

func TestExecutorRetriesTransientFaults(t *testing.T) {
	m, d := execFixture(t, 1, fault.Config{TransientRate: 0.5, Seed: 7})
	reqs := []int{100000, 5000, 400000, 250123, 611111, 42, 33333, 98765}
	p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
	res, err := (&Executor{Drive: d}).Execute(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, reqs, res)
	if res.Retries == 0 {
		t.Fatal("30% transient rate produced no retries")
	}
	if res.RecoverySec <= 0 {
		t.Fatal("retries cost no recovery time")
	}
	if d.Stats().WaitSec <= 0 {
		t.Fatal("no backoff charged to the virtual clock")
	}
	if res.ElapsedSec <= 0 || res.RecoverySec >= res.ElapsedSec {
		t.Fatalf("accounting inconsistent: elapsed %.1f recovery %.1f", res.ElapsedSec, res.RecoverySec)
	}
}

func TestExecutorRecoversLostPositionByReplanning(t *testing.T) {
	m, d := execFixture(t, 1, fault.Config{LostRate: 0.15, Seed: 5})
	reqs := []int{100000, 5000, 400000, 250123, 611111, 42, 33333, 98765, 77777, 1234}
	p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
	res, err := (&Executor{Drive: d, Scheduler: core.NewLOSS()}).Execute(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, reqs, res)
	if res.Recalibrations == 0 || res.Replans == 0 {
		t.Fatalf("15%% lost rate on 10 requests: recalibrations=%d replans=%d, want both > 0",
			res.Recalibrations, res.Replans)
	}
	if d.Lost() {
		t.Fatal("execution finished with the drive still lost")
	}
	if d.Stats().Recalibrations != res.Recalibrations {
		t.Fatal("executor and drive disagree on recalibration count")
	}
}

func TestExecutorFailsMediaErrorsPermanently(t *testing.T) {
	cfg := fault.Config{MediaRate: 0.001, Seed: 11}
	inj := fault.New(cfg)
	// Build a request set with a known-bad segment in the middle.
	reqs := []int{100000, 5000, 400000}
	for s := 200000; s < 622000; s++ {
		if inj.MediaBad(s) {
			reqs = append(reqs, s)
			break
		}
	}
	if len(reqs) != 4 {
		t.Fatal("no media-bad segment found")
	}
	m, d := execFixture(t, 1, cfg)
	p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
	res, err := (&Executor{Drive: d}).Execute(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, reqs, res)
	if len(res.Failed) == 0 {
		t.Fatal("known media-bad request not failed")
	}
	found := false
	for _, f := range res.Failed {
		if f == reqs[3] {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed set %v misses the media-bad segment %d", res.Failed, reqs[3])
	}
	if len(res.Served) != 3 {
		t.Fatalf("served %d of the 3 good requests", len(res.Served))
	}
}

// A tiny planning budget must degrade the replanner along LOSS → SLTF
// → SCAN instead of refusing to replan.
func TestExecutorDegradesSchedulerOnPlanningBudget(t *testing.T) {
	m, d := execFixture(t, 1, fault.Config{LostRate: 0.3, Seed: 13})
	reqs := make([]int, 0, 64)
	gen := locateSpread(m.Segments())
	for i := 0; i < 64; i++ {
		reqs = append(reqs, gen(i))
	}
	p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
	ex := &Executor{
		Drive:     d,
		Scheduler: core.NewLOSS(),
		// Budget below LOSS's 64*64 but above SLTF's 40*64.
		Policy: RetryPolicy{PlanningBudgetOps: 3000},
	}
	res, err := ex.Execute(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, reqs, res)
	if res.Replans == 0 {
		t.Skip("fault draw produced no replans at this seed")
	}
	if res.Fallbacks == 0 {
		t.Fatal("replans happened but the over-budget LOSS tier was never skipped")
	}
}

// locateSpread returns a deterministic spread of segments.
func locateSpread(total int) func(int) int {
	return func(i int) int { return (i*total/97 + 13) % total }
}

// Executions under the same fault seed are exactly reproducible.
func TestExecutorReproducible(t *testing.T) {
	run := func() ExecResult {
		m, d := execFixture(t, 1, fault.Default(21))
		reqs := []int{100000, 5000, 400000, 250123, 611111, 42, 33333, 98765}
		p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
		res, err := (&Executor{Drive: d}).Execute(p, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ElapsedSec != b.ElapsedSec || a.Retries != b.Retries || a.Replans != b.Replans ||
		a.Recalibrations != b.Recalibrations || len(a.Failed) != len(b.Failed) {
		t.Fatalf("executor runs diverged: %+v vs %+v", a, b)
	}
}

// Saturated fault rates must terminate: every request ends up served
// or failed, never looped forever.
func TestExecutorTerminatesUnderSaturatedFaults(t *testing.T) {
	for _, cfg := range []fault.Config{
		{TransientRate: 1, Seed: 1},
		{OvershootRate: 1, Seed: 2},
		{LostRate: 1, Seed: 3},
		{MediaRate: 1, Seed: 4},
		{TransientRate: 0.9, OvershootRate: 0.05, LostRate: 0.05, MediaRate: 0.5, Seed: 5},
	} {
		m, d := execFixture(t, 1, cfg)
		reqs := []int{100000, 5000, 400000, 250123}
		p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
		res, err := (&Executor{Drive: d, Policy: RetryPolicy{MaxRetries: 2, MaxReplans: 4}}).Execute(p, plan)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkConservation(t, reqs, res)
	}
}

func TestExecutorRejectsInvalidSetup(t *testing.T) {
	if _, err := (&Executor{}).Execute(&core.Problem{}, core.Plan{}); err == nil {
		t.Fatal("nil drive accepted")
	}
	m, d := execFixture(t, 1, fault.Config{})
	_ = m
	if _, err := (&Executor{Drive: d}).Execute(nil, core.Plan{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := (&Executor{Drive: d}).Execute(&core.Problem{}, core.Plan{}); err == nil {
		t.Fatal("nil cost model accepted")
	}
}

// Every served request's completion offset must decompose exactly into
// its ServeDetail phases — the latency attribution layer sums them
// back and asserts conservation against the sojourn.
func TestExecutorDetailSumsToCompletion(t *testing.T) {
	for _, cfg := range []fault.Config{
		{}, // fault-free
		fault.Default(7),
		{TransientRate: 0.3, OvershootRate: 0.1, LostRate: 0.02, MediaRate: 0.01, Seed: 11},
	} {
		m, d := execFixture(t, 1, cfg)
		reqs := []int{100000, 5000, 400000, 250123, 611111, 42, 33333, 98765}
		p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
		res, err := (&Executor{Drive: d}).Execute(p, plan)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if len(res.Detail) != len(res.Served) || len(res.Detail) != len(res.Completions) {
			t.Fatalf("%+v: detail misaligned: %d details, %d served, %d completions",
				cfg, len(res.Detail), len(res.Served), len(res.Completions))
		}
		for i, det := range res.Detail {
			sum := det.BeginSec + det.RetrySec + det.LocateSec + det.ReadSec
			if diff := math.Abs(sum - res.Completions[i]); diff > 1e-9 {
				t.Fatalf("%+v: request %d: detail sum %.12f vs completion %.12f (off by %g)",
					cfg, res.Served[i], sum, res.Completions[i], diff)
			}
			if det.BeginSec < 0 || det.RetrySec < 0 || det.LocateSec < 0 || det.ReadSec < 0 {
				t.Fatalf("%+v: request %d: negative phase: %+v", cfg, res.Served[i], det)
			}
		}
	}
}

// Attaching a span trace must not change one bit of the execution:
// same result, same drive clock, same head position.
func TestExecutorSpansDoNotPerturbTiming(t *testing.T) {
	run := func(tr *obs.Tracer) (ExecResult, float64, int) {
		m, d := execFixture(t, 1, fault.Default(21))
		reqs := []int{100000, 5000, 400000, 250123, 611111, 42, 33333, 98765}
		p, plan := schedulePlan(t, m, core.NewLOSS(), 0, reqs)
		ex := &Executor{Drive: d}
		if tr != nil {
			h := tr.StartTrace()
			ex.Trace = h
			ex.Parent = h.Start("exec", nil, 0)
		}
		res, err := ex.Execute(p, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res, d.Clock(), d.Position()
	}
	bare, clk1, pos1 := run(nil)
	tr := obs.NewTracer(4096)
	traced, clk2, pos2 := run(tr)
	if !reflect.DeepEqual(bare, traced) || clk1 != clk2 || pos1 != pos2 {
		t.Fatalf("span tracing perturbed the execution:\nbare:   %+v clk=%v pos=%d\ntraced: %+v clk=%v pos=%d",
			bare, clk1, pos1, traced, clk2, pos2)
	}
	// The trace must actually contain serve spans with verdicts.
	spans := tr.Spans()
	serves := 0
	for _, s := range spans {
		if s.Name == "serve" {
			serves++
		}
	}
	if serves == 0 {
		t.Fatalf("no serve spans recorded among %d spans", len(spans))
	}
}
