package sim

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"serpentine/internal/core"
	"serpentine/internal/drive"
	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/obs"
)

// ChaosConfig describes a chaos experiment: the chained steady-state
// scenario executed on the emulated drive under an increasing fault
// rate, for every scheduler, measuring how throughput and tail
// latency degrade and how much recovery work each policy induces.
type ChaosConfig struct {
	// Serial selects the cartridge; 0 selects 1.
	Serial int64
	// Schedulers to compare; nil selects core.All(12), the paper's
	// eight. Schedulers that cannot run at the batch size (OPT beyond
	// 12 requests) are skipped, as in the paper.
	Schedulers []core.Scheduler
	// Rates are multipliers applied to the Base fault mix, one sweep
	// column each; nil selects {0, 0.5, 1, 2, 4}. Rate 0 is the
	// fault-free baseline.
	Rates []float64
	// Base is the fault mix at multiplier 1; a zero value selects
	// fault.Default. Its Seed is ignored: each cell derives its own
	// injector seed from Seed and the cell coordinates, so results do
	// not depend on sweep order or worker count.
	Base fault.Config
	// BatchSize, Batches and Warmup shape each cell's chained run;
	// zero values select 96, 12 and 2.
	BatchSize, Batches, Warmup int
	// ReadLen is the per-request transfer length; 0 means 1.
	ReadLen int
	// Policy bounds recovery.
	Policy RetryPolicy
	// Seed seeds request generation (shared by every cell, so all
	// cells schedule the same request stream) and the per-cell
	// injector seeds.
	Seed int64
	// Workers bounds concurrent cells; 0 selects GOMAXPROCS.
	Workers int
	// Reg, when non-nil, receives per-cell outcome and recovery
	// metrics labeled by (alg, rate), recorded in spec order after the
	// parallel phase so the dump is identical at any worker count.
	Reg *obs.Registry
}

// ChaosCell is one (scheduler, fault rate) outcome.
type ChaosCell struct {
	Alg    string
	Rate   float64
	Result ChainResult
}

// ChaosSweep runs every (scheduler, rate) cell of the experiment.
// Cells run concurrently up to cfg.Workers, but each cell is fully
// deterministic — its drive, injector seed and request stream depend
// only on the config and the cell's coordinates — so the sweep's
// output is identical at any worker count.
func ChaosSweep(cfg ChaosConfig) ([]ChaosCell, error) {
	serial := cfg.Serial
	if serial == 0 {
		serial = 1
	}
	scheds := cfg.Schedulers
	if scheds == nil {
		scheds = core.All(12)
	}
	rates := cfg.Rates
	if rates == nil {
		rates = []float64{0, 0.5, 1, 2, 4}
	}
	base := cfg.Base
	if !base.Enabled() {
		base = fault.Default(0)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 96
	}
	batches := cfg.Batches
	if batches <= 0 {
		batches = 12
	}
	warmup := cfg.Warmup
	if warmup <= 0 {
		warmup = 2
	}

	tape, err := geometry.Generate(geometry.DLT4000(), serial)
	if err != nil {
		return nil, fmt.Errorf("sim: chaos tape: %w", err)
	}
	model, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		return nil, fmt.Errorf("sim: chaos model: %w", err)
	}

	type cellSpec struct {
		sched   core.Scheduler
		algIdx  int
		rateIdx int
	}
	var specs []cellSpec
	for si, s := range scheds {
		if skipAtLength(s, batch, 12) {
			continue
		}
		for ri := range rates {
			specs = append(specs, cellSpec{sched: s, algIdx: si, rateIdx: ri})
		}
	}
	cells := make([]ChaosCell, len(specs))
	workers := (&Config{Workers: cfg.Workers}).effectiveWorkers()
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				faults := base.Scale(rates[sp.rateIdx])
				// One injector seed per cell coordinate: stable under
				// sweep-order and worker-count changes.
				faults.Seed = cfg.Seed*1000003 + int64(sp.algIdx)*8191 + int64(sp.rateIdx)*131 + 7
				res, err := BatchChain(ChainConfig{
					Model:     model,
					Scheduler: sp.sched,
					BatchSize: batch,
					Batches:   batches,
					Warmup:    warmup,
					ReadLen:   cfg.ReadLen,
					Seed:      cfg.Seed,
					Drive:     drive.New(tape),
					Faults:    faults,
					Policy:    cfg.Policy,
				})
				if err != nil {
					select {
					case errs <- fmt.Errorf("sim: chaos %s rate %g: %w", sp.sched.Name(), rates[sp.rateIdx], err):
					default:
					}
					return
				}
				cells[i] = ChaosCell{Alg: sp.sched.Name(), Rate: rates[sp.rateIdx], Result: res}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if cfg.Reg != nil {
		// Record in spec order so the dump is independent of which
		// worker ran which cell.
		for _, c := range cells {
			ls := []obs.Label{obs.L("alg", c.Alg), obs.L("rate", fmt.Sprintf("%g", c.Rate))}
			r := c.Result
			cfg.Reg.Counter("served_total", ls...).Add(int64(r.Served))
			cfg.Reg.Counter("failed_total", ls...).Add(int64(r.FailedRequests))
			cfg.Reg.Counter("retries_total", ls...).Add(int64(r.Retries))
			cfg.Reg.Counter("replans_total", ls...).Add(int64(r.Replans))
			cfg.Reg.Counter("recalibrations_total", ls...).Add(int64(r.Recalibrations))
			cfg.Reg.Counter("fallbacks_total", ls...).Add(int64(r.Fallbacks))
			cfg.Reg.Gauge("recovery_seconds", ls...).Set(r.RecoverySec)
			h := cfg.Reg.Histogram("completion_seconds", ls...)
			for _, v := range r.Completions {
				h.Observe(v)
			}
		}
	}
	return cells, nil
}

// WriteChaos prints the sweep: one block per fault-rate multiplier,
// one row per scheduler, with throughput, tail latency and recovery
// counters.
func WriteChaos(w io.Writer, cells []ChaosCell) error {
	var rates []float64
	seen := make(map[float64]bool)
	for _, c := range cells {
		if !seen[c.Rate] {
			seen[c.Rate] = true
			rates = append(rates, c.Rate)
		}
	}
	for _, rate := range rates {
		if _, err := fmt.Fprintf(w, "# fault rate x%g\n%-8s %8s %9s %8s %8s %7s %7s %7s %9s\n",
			rate, "alg", "IO/h", "p99 s", "served", "failed", "retry", "replan", "recal", "recov%"); err != nil {
			return err
		}
		for _, c := range cells {
			if c.Rate != rate {
				continue
			}
			r := c.Result
			recovPct := 0.0
			if r.TotalSec > 0 {
				recovPct = r.RecoverySec / r.TotalSec * 100
			}
			if _, err := fmt.Fprintf(w, "%-8s %8.1f %9.1f %8d %8d %7d %7d %7d %9.2f\n",
				c.Alg, r.IOsPerHour(), r.P99CompletionSec(), r.Served, r.FailedRequests,
				r.Retries, r.Replans, r.Recalibrations, recovPct); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
