package calibrate

import (
	"testing"

	"serpentine/internal/drive"
	"serpentine/internal/geometry"
	"serpentine/internal/locate"
	"serpentine/internal/rand48"
)

// Without measurement noise, every boundary with a timing signature
// must be recovered exactly.
func TestExactRecoveryWithoutNoise(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 3)
	d := drive.New(tape, drive.WithoutNoise())
	res, err := Calibrate(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := tape.KeyPoints()
	for tr := range truth.Bound {
		for l := range truth.Bound[tr] {
			if l == 1 {
				continue // interpolated: no timing signature
			}
			if got, want := res.KeyPoints.Bound[tr][l], truth.Bound[tr][l]; got != want {
				t.Fatalf("track %d boundary %d: found %d, want %d", tr, l, got, want)
			}
		}
	}
	if res.Interpolated != truth.Params.Tracks {
		t.Fatalf("interpolated %d boundaries, want one per track", res.Interpolated)
	}
}

// With realistic noise, recovery must stay within a few segments.
func TestRecoveryWithNoise(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 5)
	d := drive.New(tape)
	res, err := Calibrate(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := tape.KeyPoints()
	off, big := 0, 0
	for tr := range truth.Bound {
		for l := 2; l < len(truth.Bound[tr]); l++ {
			diff := res.KeyPoints.Bound[tr][l] - truth.Bound[tr][l]
			if diff < 0 {
				diff = -diff
			}
			// Boundaries in the drive's end zones can slip by a few
			// tens of segments under noise (the paper's "less
			// accurate near the physical track ends"); the model
			// impact of 25 segments is ~0.3 s of scan time.
			if diff > 25 {
				t.Fatalf("track %d boundary %d off by %d segments", tr, l, diff)
			}
			if diff > 10 {
				big++
			}
			if diff > 0 {
				off++
			}
		}
	}
	if off > 25 || big > 5 {
		t.Fatalf("%d boundaries off (%d by >10) under noise, want mostly exact of 832", off, big)
	}
}

// The interpolated first boundary is bounded by the bad-spot loss a
// section can hide.
func TestInterpolatedBoundaryBounded(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 3)
	d := drive.New(tape, drive.WithoutNoise())
	res, err := Calibrate(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := tape.KeyPoints()
	p := tape.Params()
	bound := p.BadSpotMaxLoss + 2*p.SectionCountJitter
	for tr := range truth.Bound {
		diff := res.KeyPoints.Bound[tr][1] - truth.Bound[tr][1]
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			t.Fatalf("track %d: interpolated b1 off by %d, bound %d", tr, diff, bound)
		}
	}
}

// The discovered table must produce a model whose estimates agree
// with a true-key-point model.
func TestDiscoveredModelAgrees(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 7)
	d := drive.New(tape)
	res, err := Calibrate(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	discovered, err := locate.FromKeyPoints(res.KeyPoints)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := locate.FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand48.New(6)
	var worst float64
	for i := 0; i < 500; i++ {
		src := rng.Intn(tape.Segments())
		dst := rng.Intn(tape.Segments())
		diff := discovered.LocateTime(src, dst) - exact.LocateTime(src, dst)
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
	}
	// The only discrepancies come from the interpolated b1 (shifts a
	// landing estimate) and the rare noise-displaced boundary.
	if worst > 6 {
		t.Fatalf("worst model disagreement %.2f s", worst)
	}
}

// Characterization accounting must be plausible: tens of thousands of
// locates, a small number of simulated days, one interpolation per
// track.
func TestCalibrationCostAccounting(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 2)
	d := drive.New(tape)
	res, err := Calibrate(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Locates < 10000 || res.Locates > 120000 {
		t.Fatalf("locates = %d, implausible", res.Locates)
	}
	if res.TapeSeconds <= 0 || res.TapeSeconds > 3e6 {
		t.Fatalf("tape seconds = %g, implausible", res.TapeSeconds)
	}
	// The drive's clock must account for at least the measured time.
	if d.Clock() < res.TapeSeconds {
		t.Fatalf("drive clock %g < measured %g", d.Clock(), res.TapeSeconds)
	}
}

// Calibration also works on non-DLT geometries.
func TestCalibrateOtherProfiles(t *testing.T) {
	for _, p := range []geometry.Params{geometry.DLT7000(), geometry.IBM3590()} {
		tape := geometry.MustGenerate(p, 4)
		d := drive.New(tape, drive.WithoutNoise())
		res, err := Calibrate(d, Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		truth := tape.KeyPoints()
		for tr := range truth.Bound {
			for l := 2; l < len(truth.Bound[tr]); l++ {
				if got, want := res.KeyPoints.Bound[tr][l], truth.Bound[tr][l]; got != want {
					t.Fatalf("%s: track %d boundary %d: found %d, want %d", p.Name, tr, l, got, want)
				}
			}
		}
	}
}
