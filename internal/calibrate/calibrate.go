// Package calibrate discovers the key points of a serpentine tape —
// the per-track section boundaries that parameterize the locate-time
// model — by timing locate operations against a drive, following the
// approach of the paper's companion work [HS96]: "in essence, each
// dip is found by measuring locate times from the preceding dip."
//
// The discovery walks the tape in LBN order. Within a track, the
// locate time from a fixed co-directional source rises at read speed
// as the destination advances through a section and drops abruptly
// (by roughly the read/scan speed difference over one section, ~5 s)
// when the destination crosses into the next section, because the
// landing key point jumps forward one section. Each interior boundary
// is therefore found by a binary search for that drop inside the
// window where section-length jitter allows it to lie. Track ends are
// found by scanning for the adjacent-segment locate that suddenly
// costs several seconds instead of a few hundredths (the head must
// switch tracks and reverse). The boundary between a track's first
// and second sections produces no timing signature — destinations in
// either section scan to the beginning of the track — so it is
// interpolated under the uniform-density assumption; the resulting
// error is bounded by the section-length jitter and shifts the
// model's landing estimate by only milliseconds.
//
// Every timing probe takes the median of three measurements to shed
// the drive's rare multi-second servo-retry outliers.
package calibrate

import (
	"fmt"
	"sort"

	"serpentine/internal/drive"
	"serpentine/internal/geometry"
)

// Result is a completed characterization.
type Result struct {
	// KeyPoints is the discovered table, ready to build a locate
	// model from.
	KeyPoints *geometry.KeyPointTable
	// Locates is the number of locate operations spent measuring.
	Locates int
	// TapeSeconds is the drive busy time the characterization would
	// have consumed on real hardware.
	TapeSeconds float64
	// Interpolated counts the boundaries that had to be estimated by
	// interpolation rather than measured (one per track: the
	// signature-free first interior boundary).
	Interpolated int
}

// Options tune the discovery.
type Options struct {
	// Slack widens the search window around each boundary's nominal
	// position, in segments. It must be at least the tape's
	// section-count jitter; 0 selects SectionCountJitter + 4.
	Slack int
	// Repeats is the number of measurements per probe (median
	// taken); 0 selects 3.
	Repeats int
}

// Calibrate characterizes the cartridge loaded in d. The drive's
// clock keeps running; callers wanting the pure characterization cost
// should ResetClock first.
func Calibrate(d *drive.Drive, opts Options) (*Result, error) {
	p := d.Params()
	if opts.Slack <= 0 {
		opts.Slack = p.SectionCountJitter + 4
	}
	if opts.Repeats <= 0 {
		opts.Repeats = 3
	}
	c := &calibrator{
		d: d, p: p, opts: opts,
		total:  d.Tape().Segments(),
		starts: make([]int, 0, p.Tracks),
	}

	s := p.SectionsPerTrack
	table := &geometry.KeyPointTable{
		Params: p,
		Bound:  make([][]int, p.Tracks),
		Total:  c.total,
	}
	start := 0
	for t := 0; t < p.Tracks; t++ {
		c.starts = append(c.starts, start)
		bound, err := c.track(t, start)
		if err != nil {
			return nil, fmt.Errorf("calibrate: track %d: %w", t, err)
		}
		table.Bound[t] = bound
		start = bound[s]
	}
	if err := table.Validate(); err != nil {
		return nil, fmt.Errorf("calibrate: discovered table invalid: %w", err)
	}
	return &Result{
		KeyPoints:    table,
		Locates:      c.locates,
		TapeSeconds:  c.seconds,
		Interpolated: c.interpolated,
	}, nil
}

type calibrator struct {
	d            *drive.Drive
	p            geometry.Params
	opts         Options
	total        int
	starts       []int // discovered first segments of tracks 0..t
	locates      int
	seconds      float64
	interpolated int
}

// nominalCount returns the expected segment count of reading-order
// section l of track t: the short section is the physically last one
// (section 13 on the DLT4000), which is the FIRST section a reverse
// track reads.
func (c *calibrator) nominalCount(t, l int) int {
	short := int(float64(c.p.SegmentsPerSection)*c.p.LastSectionFrac + 0.5)
	s := c.p.SectionsPerTrack
	if c.p.TrackDirection(t) == geometry.Forward {
		if l == s-1 {
			return short
		}
		return c.p.SegmentsPerSection
	}
	if l == 0 {
		return short
	}
	return c.p.SegmentsPerSection
}

// measure returns the median locate time from src to dst over the
// configured repeats.
func (c *calibrator) measure(src, dst int) (float64, error) {
	times := make([]float64, 0, c.opts.Repeats)
	for i := 0; i < c.opts.Repeats; i++ {
		t, err := c.d.Locate(src)
		if err != nil {
			return 0, err
		}
		c.seconds += t
		t, err = c.d.Locate(dst)
		if err != nil {
			return 0, err
		}
		c.locates += 2
		c.seconds += t
		times = append(times, t)
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

// track discovers the s+1 reading-order boundaries of track t, whose
// first segment is start.
func (c *calibrator) track(t, start int) ([]int, error) {
	s := c.p.SectionsPerTrack
	bound := make([]int, s+1)
	bound[0] = start

	// The probe source: the start of the co-directional track two
	// back once one exists, otherwise this track's own start. From
	// there every destination in sections >= 2 of track t is a
	// case-2 locate whose landing point steps forward one section at
	// each boundary, dropping the locate time by the read/scan rate
	// difference over one section.
	src := start
	if t >= 2 {
		src = c.starts[t-2]
	}

	// Interior boundaries by drop search. With a same-track source
	// (tracks 0 and 1, before any co-directional track is known),
	// destinations within the first two sections ahead of the source
	// are plain forward reads with no landing maneuver, so the first
	// boundary with a timing signature is b3; b2 is probed afterward
	// from a discovered boundary ahead of it, where the backward
	// landing step gives a much larger (~25 s) drop.
	first := 2
	if src == start {
		first = 3
	}
	// Boundaries can arrive early by up to the track's bad-spot
	// loss, but late only by the per-section count jitter, so the
	// search windows are asymmetric.
	early := c.p.BadSpotMaxLoss
	prev, prevIdx := start, 0
	for l := first; l <= s-1; l++ {
		center := prev
		for j := prevIdx; j < l; j++ {
			center += c.nominalCount(t, j)
		}
		slack := c.opts.Slack * (l - prevIdx)
		// Once a boundary three sections back is known, probe from
		// it instead of the track-start source: the locates shrink
		// from near-full-tape scans to a few sections, an order of
		// magnitude less tape time ("each dip is found by measuring
		// locate times from the preceding dip", [HS96]).
		probeSrc := src
		if l-3 >= first {
			probeSrc = bound[l-3]
		}
		b, err := c.dropSearch(probeSrc, center-slack-early, center+slack)
		if err != nil {
			return nil, fmt.Errorf("boundary %d: %w", l, err)
		}
		bound[l] = b
		prev, prevIdx = b, l
	}
	// Track end by a forward segment walk over the final section.
	// The last track needs no probing: it ends at the tape capacity,
	// which the host knows from having written the tape.
	if t == c.p.Tracks-1 {
		bound[s] = c.total
	} else {
		center := prev + c.nominalCount(t, s-1)
		end, err := c.trackEndWalk(center-c.opts.Slack-early, center+c.opts.Slack)
		if err != nil {
			return nil, fmt.Errorf("track end: %w", err)
		}
		bound[s] = end
	}

	if first == 3 {
		center := start + c.nominalCount(t, 0) + c.nominalCount(t, 1)
		slack := 2 * c.opts.Slack
		b, err := c.dropSearch(bound[5], center-slack-early, center+slack)
		if err != nil {
			return nil, fmt.Errorf("boundary 2 (backward probe): %w", err)
		}
		bound[2] = b
	}

	// Interpolate b1 within the first two sections in proportion to
	// their nominal sizes (a reverse track's first reading-order
	// section is the short physical section 13); destinations in
	// either of the first two sections scan to the beginning of the
	// track, so this boundary has no timing signature anywhere, and
	// its residual error only shifts a landing-point estimate by
	// milliseconds.
	n0, n1 := c.nominalCount(t, 0), c.nominalCount(t, 1)
	bound[1] = bound[0] + (bound[2]-bound[0])*n0/(n0+n1)
	c.interpolated++
	return bound, nil
}

// dropSearch binary-searches [lo, hi] for the single destination
// segment at which the locate time from src drops abruptly (the
// reading-order section boundary). lo must lie strictly before the
// boundary and hi at or after it.
//
// Within either side of the boundary the locate time rises at read
// speed per segment, so over a window widened for bad-spot losses the
// raw values of the two sides overlap; the search therefore
// references every measurement to the before-boundary line through
// (lo, tLo): destinations before the boundary deviate by about zero,
// destinations after by the negative section-boundary drop (at least
// the ~5.5 s read/scan difference over one section).
func (c *calibrator) dropSearch(src, lo, hi int) (int, error) {
	if lo < 0 {
		lo = 0
	}
	if hi >= c.total {
		hi = c.total - 1
	}
	if lo >= hi {
		return 0, fmt.Errorf("empty search window [%d,%d]", lo, hi)
	}
	// Read-speed slope per segment: recording density is one segment
	// per 1/SegmentsPerSection of a section unit.
	slope := c.p.ReadSecPerSection / float64(c.p.SegmentsPerSection)
	tLo, err := c.measure(src, lo)
	if err != nil {
		return 0, err
	}
	anchor := lo // the binary search moves lo; the line must not
	line := func(y int) float64 { return tLo + slope*float64(y-anchor) }
	tHi, err := c.measure(src, hi)
	if err != nil {
		return 0, err
	}
	// The boundary drop size varies with the preceding section's
	// physical length (bad spots can halve it) and with the
	// profile's read/scan speed gap, so the decision threshold is
	// half the drop actually observed across the window. A window
	// with no credible drop (less than a third of the nominal
	// one-section read/scan difference) is an error.
	devHi := tHi - line(hi)
	minDrop := 0.35 * (c.p.ReadSecPerSection - c.p.ScanSecPerSection)
	if devHi > -minDrop {
		return 0, fmt.Errorf("no drop across window [%d,%d]: %.2fs -> %.2fs (line %.2fs)",
			lo, hi, tLo, tHi, line(hi))
	}
	threshold := devHi / 2
	for hi-lo > 1 {
		m := (lo + hi) / 2
		tm, err := c.probe(src, m, line(m)+threshold)
		if err != nil {
			return 0, err
		}
		if tm-line(m) > threshold {
			lo = m
		} else {
			hi = m
		}
	}
	return hi, nil
}

// probe measures src -> dst once, and only falls back to the median
// of three when the reading lands ambiguously close to the decision
// threshold (a rare servo-retry outlier). This cuts characterization
// tape time roughly in half versus always taking the median.
func (c *calibrator) probe(src, dst int, decision float64) (float64, error) {
	t, err := c.d.Locate(src)
	if err != nil {
		return 0, err
	}
	c.seconds += t
	t, err = c.d.Locate(dst)
	if err != nil {
		return 0, err
	}
	c.locates += 2
	c.seconds += t
	if diff := t - decision; diff > -2 && diff < 2 {
		return c.measure(src, dst)
	}
	return t, nil
}

// trackEndWalk finds the first segment of the next track: position
// the head just before the window, then step forward one segment at a
// time. Within a track each step is a sub-tenth-of-a-second forward
// read; the step that crosses into the next (anti-directional) track
// costs whole seconds of track switching and reversal. Walking
// forward keeps every probe a cheap case-1 motion.
func (c *calibrator) trackEndWalk(lo, hi int) (int, error) {
	if lo < 1 {
		lo = 1
	}
	if hi >= c.total {
		hi = c.total - 1
	}
	const crossingSec = 1.0
	t, err := c.d.Locate(lo - 1)
	if err != nil {
		return 0, err
	}
	c.locates++
	c.seconds += t
	for y := lo; y <= hi; y++ {
		t, err := c.d.Locate(y)
		if err != nil {
			return 0, err
		}
		c.locates++
		c.seconds += t
		if t > crossingSec {
			return y, nil
		}
	}
	return 0, fmt.Errorf("no track crossing in [%d,%d]", lo, hi)
}
