package fault

import (
	"fmt"
	"math"

	"serpentine/internal/rand48"
)

// LifecycleConfig sets the component-lifecycle failure rates: whole
// drives dying and being repaired, the robot arm stalling mid
// exchange, and cartridges being destroyed or developing a
// contiguous bad-spot region. The zero value disables every class.
//
// These are a severity tier above Config's per-operation faults: a
// per-operation fault costs one retry or one replan, a lifecycle
// fault takes a component out of service. The same determinism
// discipline applies — see the package comment's draw-stream
// alignment rule. Drive outages are drawn from one private stream
// per drive (two draws per outage: time-to-failure, then repair
// duration, both exponential), consumed strictly in virtual-time
// order, so outage schedules do not depend on how dispatch
// interleaves across drives. Robot stalls are a pure function of
// (Seed, exchange ordinal) and cartridge loss and bad spots are pure
// functions of (Seed, serial[, mount ordinal]), so they do not
// depend on visit order at all.
type LifecycleConfig struct {
	// DriveMTTFSec is the mean virtual time between failures of one
	// drive (exponentially distributed). 0 means drives never fail.
	DriveMTTFSec float64
	// DriveMTTRSec is the mean repair duration (exponentially
	// distributed). Required > 0 when DriveMTTFSec > 0.
	DriveMTTRSec float64
	// RobotStallRate is the probability that one cartridge exchange
	// stalls the arm (a dropped grip, a barcode re-scan, a shuttle
	// retry).
	RobotStallRate float64
	// RobotStallSec is the mean stall duration; 0 selects 120. The
	// actual stall is RobotStallSec scaled by a deterministic factor
	// in [0.5, 1.5) drawn from the exchange ordinal.
	RobotStallSec float64
	// CartridgeLossRate is the probability, per mount attempt, that
	// the cartridge is discovered destroyed (snapped leader, dropped
	// by the picker, shell cracked). A lost cartridge stays lost.
	CartridgeLossRate float64
	// BadSpotRate is the fraction of cartridges carrying one
	// contiguous permanently unreadable region (creased media,
	// delamination).
	BadSpotRate float64
	// BadSpotSegments is the bad region's length; 0 selects 64.
	BadSpotSegments int
	// Seed seeds every stream and hash above.
	Seed int64
}

// Enabled reports whether any lifecycle class can fire.
func (c LifecycleConfig) Enabled() bool {
	return c.DriveMTTFSec > 0 || c.RobotStallRate > 0 ||
		c.CartridgeLossRate > 0 || c.BadSpotRate > 0
}

// Validate rejects NaN or negative rates and times, probabilities
// outside [0,1], and an enabled drive-failure process without a
// positive MTTR.
func (c LifecycleConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"RobotStallRate", c.RobotStallRate},
		{"CartridgeLossRate", c.CartridgeLossRate},
		{"BadSpotRate", c.BadSpotRate},
	} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("fault: %s %v outside [0,1]", r.name, r.v)
		}
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DriveMTTFSec", c.DriveMTTFSec},
		{"DriveMTTRSec", c.DriveMTTRSec},
		{"RobotStallSec", c.RobotStallSec},
	} {
		if r.v < 0 || math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			return fmt.Errorf("fault: %s %v is negative or not finite", r.name, r.v)
		}
	}
	if c.DriveMTTFSec > 0 && c.DriveMTTRSec <= 0 {
		return fmt.Errorf("fault: DriveMTTFSec %g without a positive DriveMTTRSec", c.DriveMTTFSec)
	}
	if c.BadSpotSegments < 0 {
		return fmt.Errorf("fault: BadSpotSegments %d is negative", c.BadSpotSegments)
	}
	return nil
}

// withDefaults resolves the zero-value fields.
func (c LifecycleConfig) withDefaults() LifecycleConfig {
	if c.RobotStallSec == 0 {
		c.RobotStallSec = 120
	}
	if c.BadSpotSegments == 0 {
		c.BadSpotSegments = 64
	}
	return c
}

// Lifecycle draws component-lifecycle events for one run. Like the
// per-operation Injector it belongs to one goroutine: the event loop
// that owns the run.
type Lifecycle struct {
	cfg    LifecycleConfig
	drives map[int]*rand48.Source
}

// NewLifecycle returns a generator for the given config.
func NewLifecycle(cfg LifecycleConfig) *Lifecycle {
	return &Lifecycle{cfg: cfg.withDefaults(), drives: make(map[int]*rand48.Source)}
}

// Config returns the generator's configuration, defaults resolved.
func (lc *Lifecycle) Config() LifecycleConfig { return lc.cfg }

// driveStream returns drive's private outage stream, created on first
// use.
func (lc *Lifecycle) driveStream(drive int) *rand48.Source {
	s := lc.drives[drive]
	if s == nil {
		s = rand48.New(lc.cfg.Seed*48271 + int64(drive)*2654435761 + 1282)
		lc.drives[drive] = s
	}
	return s
}

// exp draws an exponential variate with the given mean from src. The
// uniform is taken from the open interval (0,1] so the logarithm is
// finite.
func exp(src *rand48.Source, mean float64) float64 {
	u := 1 - src.Drand48()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// NextOutage draws the next outage of one drive: the gap from the
// previous repair (or from time zero) until the failure, then the
// repair duration. Each call consumes exactly two variates from the
// drive's private stream; callers must consume outages in virtual
// time order per drive, which the event loop does naturally. ok is
// false when drive failures are disabled.
func (lc *Lifecycle) NextOutage(drive int) (gapSec, repairSec float64, ok bool) {
	if lc == nil || lc.cfg.DriveMTTFSec <= 0 {
		return 0, 0, false
	}
	src := lc.driveStream(drive)
	return exp(src, lc.cfg.DriveMTTFSec), exp(src, lc.cfg.DriveMTTRSec), true
}

// lifecycleHash mixes the seed with two coordinates, splitmix-style.
func lifecycleHash(seed int64, a, b int64) uint64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(a)*0xBF58476D1CE4E5B9 + uint64(b)*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h%(1<<24)) / float64(1<<24) }

// RobotStall returns the stall duration afflicting the ordinal-th
// robot exchange of the run (0 for no stall). It is a pure function
// of (Seed, ordinal): stable whichever drive's exchange it is.
func (lc *Lifecycle) RobotStall(ordinal int) float64 {
	if lc == nil || lc.cfg.RobotStallRate <= 0 {
		return 0
	}
	h := lifecycleHash(lc.cfg.Seed, 1, int64(ordinal))
	if unit(h) >= lc.cfg.RobotStallRate {
		return 0
	}
	// Scale the mean by [0.5, 1.5) from independent hash bits.
	return lc.cfg.RobotStallSec * (0.5 + unit(h>>24))
}

// CartridgeLost reports whether the cartridge is discovered destroyed
// at its mount-th mount attempt (0-based). A pure function of (Seed,
// serial, mount); once it reports true for some mount the caller
// marks the cartridge dead, so later ordinals are never asked.
func (lc *Lifecycle) CartridgeLost(serial int64, mount int) bool {
	if lc == nil || lc.cfg.CartridgeLossRate <= 0 {
		return false
	}
	return unit(lifecycleHash(lc.cfg.Seed, 2+serial*2, int64(mount))) < lc.cfg.CartridgeLossRate
}

// BadSpot returns the cartridge's permanently unreadable region, if
// it has one: a pure function of (Seed, serial) placing a
// BadSpotSegments-long window uniformly on the tape's segments. The
// region is clamped inside [0, segments).
func (lc *Lifecycle) BadSpot(serial int64, segments int) (start, n int, ok bool) {
	if lc == nil || lc.cfg.BadSpotRate <= 0 || segments <= 0 {
		return 0, 0, false
	}
	h := lifecycleHash(lc.cfg.Seed, 3+serial*2, 0)
	if unit(h) >= lc.cfg.BadSpotRate {
		return 0, 0, false
	}
	n = lc.cfg.BadSpotSegments
	if n > segments {
		n = segments
	}
	start = int((h >> 24) % uint64(segments-n+1))
	return start, n, true
}
