package fault

import (
	"math"
	"testing"
)

func TestZeroConfigDisabled(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	in := New(cfg)
	for i := 0; i < 1000; i++ {
		if c := in.OnLocate(); c != None {
			t.Fatalf("locate draw %d: %v from disabled injector", i, c)
		}
		if c := in.OnRead(); c != None {
			t.Fatalf("read draw %d: %v from disabled injector", i, c)
		}
		if in.MediaBad(i) {
			t.Fatalf("segment %d media-bad under zero MediaRate", i)
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.OnLocate() != None || in.OnRead() != None || in.MediaBad(7) {
		t.Fatal("nil injector fired")
	}
}

func TestDrawRatesApproximate(t *testing.T) {
	cfg := Config{TransientRate: 0.1, OvershootRate: 0.05, LostRate: 0.02, Seed: 3}
	in := New(cfg)
	const n = 200000
	var over, lost, trans int
	for i := 0; i < n; i++ {
		switch in.OnLocate() {
		case Overshoot:
			over++
		case LostPosition:
			lost++
		}
		if in.OnRead() == Transient {
			trans++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.2*want {
			t.Errorf("%s rate %.4f, want ~%.4f", name, frac, want)
		}
	}
	check("overshoot", over, cfg.OvershootRate)
	check("lost", lost, cfg.LostRate)
	check("transient", trans, cfg.TransientRate)
}

func TestDeterministicStreams(t *testing.T) {
	cfg := Default(11)
	a, b := New(cfg), New(cfg)
	for i := 0; i < 5000; i++ {
		if a.OnLocate() != b.OnLocate() || a.OnRead() != b.OnRead() {
			t.Fatalf("draw %d diverged between identically seeded injectors", i)
		}
	}
}

// Media membership must not depend on the draw stream: the same
// segment gives the same answer before and after arbitrary draws, and
// across injector instances.
func TestMediaBadIsPositionDeterministic(t *testing.T) {
	cfg := Config{MediaRate: 0.01, Seed: 5}
	a := New(cfg)
	before := make([]bool, 4096)
	for i := range before {
		before[i] = a.MediaBad(i)
	}
	for i := 0; i < 999; i++ {
		a.OnLocate()
		a.OnRead()
	}
	b := New(cfg)
	for i := range before {
		if a.MediaBad(i) != before[i] || b.MediaBad(i) != before[i] {
			t.Fatalf("segment %d media membership unstable", i)
		}
	}
	var bad int
	for i := 0; i < 200000; i++ {
		if b.MediaBad(i) {
			bad++
		}
	}
	frac := float64(bad) / 200000
	if math.Abs(frac-cfg.MediaRate) > 0.5*cfg.MediaRate {
		t.Fatalf("media-bad fraction %.5f, want ~%.5f", frac, cfg.MediaRate)
	}
}

func TestScaleAndValidate(t *testing.T) {
	base := Default(1)
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	zero := base.Scale(0)
	if zero.Enabled() {
		t.Fatal("Scale(0) still enabled")
	}
	big := base.Scale(1e9)
	if err := big.Validate(); err == nil {
		// Scale clamps each rate to [0,1]; the combined locate rates
		// may exceed 1, which Validate must reject.
		if big.OvershootRate+big.LostRate > 1 {
			t.Fatal("Validate accepted combined locate rates over 1")
		}
	}
	if (Config{TransientRate: -0.1}).Validate() == nil {
		t.Fatal("negative rate accepted")
	}
	if (Config{MediaRate: 1.5}).Validate() == nil {
		t.Fatal("rate above 1 accepted")
	}
	if (Config{MediaRate: math.NaN()}).Validate() == nil {
		t.Fatal("NaN rate accepted")
	}
}

func TestOvershootSegmentsRange(t *testing.T) {
	in := New(Default(2))
	for i := 0; i < 1000; i++ {
		o := in.OvershootSegments()
		if o < 64 || o >= 576 {
			t.Fatalf("overshoot %d outside [64,576)", o)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		None: "none", Transient: "transient", Overshoot: "overshoot",
		LostPosition: "lost-position", Media: "media", Class(99): "fault.Class(99)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}
