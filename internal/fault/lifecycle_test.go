package fault

import (
	"math"
	"testing"
)

// TestLifecycleValidate is the table-driven gate over the lifecycle
// rates: negatives, NaN, infinities and an enabled failure process
// without a repair time are all rejected.
func TestLifecycleValidate(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		cfg  LifecycleConfig
		ok   bool
	}{
		{"zero value", LifecycleConfig{}, true},
		{"full mix", LifecycleConfig{DriveMTTFSec: 3600, DriveMTTRSec: 600, RobotStallRate: 0.1, RobotStallSec: 60, CartridgeLossRate: 0.01, BadSpotRate: 0.2, BadSpotSegments: 32}, true},
		{"mttf without mttr", LifecycleConfig{DriveMTTFSec: 3600}, false},
		{"mttr alone is fine", LifecycleConfig{DriveMTTRSec: 600}, true},
		{"negative mttf", LifecycleConfig{DriveMTTFSec: -1, DriveMTTRSec: 1}, false},
		{"negative mttr", LifecycleConfig{DriveMTTFSec: 1, DriveMTTRSec: -1}, false},
		{"nan mttf", LifecycleConfig{DriveMTTFSec: nan, DriveMTTRSec: 1}, false},
		{"nan mttr", LifecycleConfig{DriveMTTFSec: 1, DriveMTTRSec: nan}, false},
		{"inf mttf", LifecycleConfig{DriveMTTFSec: inf, DriveMTTRSec: 1}, false},
		{"stall rate above one", LifecycleConfig{RobotStallRate: 1.5}, false},
		{"stall rate negative", LifecycleConfig{RobotStallRate: -0.1}, false},
		{"stall rate nan", LifecycleConfig{RobotStallRate: nan}, false},
		{"stall duration negative", LifecycleConfig{RobotStallRate: 0.1, RobotStallSec: -5}, false},
		{"stall duration nan", LifecycleConfig{RobotStallRate: 0.1, RobotStallSec: nan}, false},
		{"loss rate above one", LifecycleConfig{CartridgeLossRate: 2}, false},
		{"loss rate nan", LifecycleConfig{CartridgeLossRate: nan}, false},
		{"bad spot rate negative", LifecycleConfig{BadSpotRate: -0.5}, false},
		{"bad spot rate nan", LifecycleConfig{BadSpotRate: nan}, false},
		{"bad spot length negative", LifecycleConfig{BadSpotRate: 0.5, BadSpotSegments: -8}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.ok && err != nil {
				t.Fatalf("Validate(%+v) = %v, want nil", c.cfg, err)
			}
			if !c.ok && err == nil {
				t.Fatalf("Validate(%+v) = nil, want error", c.cfg)
			}
		})
	}
}

// TestConfigValidateBadSpot covers the per-operation config's new
// bad-spot region bounds.
func TestConfigValidateBadSpot(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"region ok", Config{BadSpotStart: 100, BadSpotLen: 64}, true},
		{"negative start", Config{BadSpotStart: -1, BadSpotLen: 64}, false},
		{"negative length", Config{BadSpotLen: -64}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.ok && err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
			if !c.ok && err == nil {
				t.Fatal("Validate = nil, want error")
			}
		})
	}
}

// TestLifecycleZeroDrawsNothing pins the zero-rate config to complete
// inertness: no outages, no stalls, no losses, no bad spots, and the
// Enabled gate is off so callers can skip the layer entirely.
func TestLifecycleZeroDrawsNothing(t *testing.T) {
	var cfg LifecycleConfig
	if cfg.Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	lc := NewLifecycle(cfg)
	if _, _, ok := lc.NextOutage(0); ok {
		t.Fatal("zero config drew an outage")
	}
	for i := 0; i < 100; i++ {
		if s := lc.RobotStall(i); s != 0 {
			t.Fatalf("zero config stalled exchange %d for %g s", i, s)
		}
		if lc.CartridgeLost(int64(i), i%4) {
			t.Fatalf("zero config lost cartridge %d", i)
		}
		if _, _, ok := lc.BadSpot(int64(i), 4096); ok {
			t.Fatalf("zero config put a bad spot on cartridge %d", i)
		}
	}
	var nilLC *Lifecycle
	if _, _, ok := nilLC.NextOutage(0); ok {
		t.Fatal("nil lifecycle drew an outage")
	}
	if nilLC.RobotStall(0) != 0 || nilLC.CartridgeLost(1, 0) {
		t.Fatal("nil lifecycle fired")
	}
}

// TestLifecycleDeterminism: two generators with the same config
// produce identical outage schedules per drive, and the pure-function
// classes are stable across generator instances and call orders.
func TestLifecycleDeterminism(t *testing.T) {
	cfg := LifecycleConfig{
		DriveMTTFSec: 7200, DriveMTTRSec: 900,
		RobotStallRate: 0.3, CartridgeLossRate: 0.2, BadSpotRate: 0.5,
		Seed: 42,
	}
	a, b := NewLifecycle(cfg), NewLifecycle(cfg)
	// Interleave drive queries differently on b: per-drive streams
	// must make the schedules identical anyway.
	type outage struct{ gap, repair float64 }
	seqA := make(map[int][]outage)
	for d := 0; d < 3; d++ {
		for i := 0; i < 5; i++ {
			g, r, ok := a.NextOutage(d)
			if !ok {
				t.Fatal("outage draw failed")
			}
			seqA[d] = append(seqA[d], outage{g, r})
		}
	}
	for i := 0; i < 5; i++ {
		for d := 2; d >= 0; d-- {
			g, r, ok := b.NextOutage(d)
			if !ok {
				t.Fatal("outage draw failed")
			}
			want := seqA[d][i]
			if g != want.gap || r != want.repair {
				t.Fatalf("drive %d outage %d: (%g,%g) != (%g,%g)", d, i, g, r, want.gap, want.repair)
			}
		}
	}
	for i := 0; i < 50; i++ {
		if a.RobotStall(i) != b.RobotStall(i) {
			t.Fatalf("stall %d differs across instances", i)
		}
		if a.CartridgeLost(int64(i), 1) != b.CartridgeLost(int64(i), 1) {
			t.Fatalf("loss %d differs across instances", i)
		}
		s1, n1, ok1 := a.BadSpot(int64(i), 8192)
		s2, n2, ok2 := b.BadSpot(int64(i), 8192)
		if s1 != s2 || n1 != n2 || ok1 != ok2 {
			t.Fatalf("bad spot %d differs across instances", i)
		}
	}
}

// TestLifecycleOutageMeans sanity-checks the exponential draws: over
// many outages the empirical means land near MTTF and MTTR, and every
// draw is positive.
func TestLifecycleOutageMeans(t *testing.T) {
	cfg := LifecycleConfig{DriveMTTFSec: 4000, DriveMTTRSec: 500, Seed: 7}
	lc := NewLifecycle(cfg)
	const n = 20000
	var gapSum, repSum float64
	for i := 0; i < n; i++ {
		g, r, ok := lc.NextOutage(0)
		if !ok || g <= 0 || r <= 0 {
			t.Fatalf("draw %d: gap %g repair %g ok %v", i, g, r, ok)
		}
		gapSum += g
		repSum += r
	}
	if m := gapSum / n; math.Abs(m-cfg.DriveMTTFSec) > 0.05*cfg.DriveMTTFSec {
		t.Fatalf("mean gap %g, want ~%g", m, cfg.DriveMTTFSec)
	}
	if m := repSum / n; math.Abs(m-cfg.DriveMTTRSec) > 0.05*cfg.DriveMTTRSec {
		t.Fatalf("mean repair %g, want ~%g", m, cfg.DriveMTTRSec)
	}
}

// TestLifecycleBadSpotBounds: the region always fits on the tape and
// the occurrence rate tracks BadSpotRate.
func TestLifecycleBadSpotBounds(t *testing.T) {
	lc := NewLifecycle(LifecycleConfig{BadSpotRate: 0.5, BadSpotSegments: 64, Seed: 3})
	hits := 0
	const tapes = 4000
	for serial := int64(0); serial < tapes; serial++ {
		start, n, ok := lc.BadSpot(serial, 1000)
		if !ok {
			continue
		}
		hits++
		if n != 64 || start < 0 || start+n > 1000 {
			t.Fatalf("serial %d: region [%d,+%d) out of bounds", serial, start, n)
		}
	}
	if frac := float64(hits) / tapes; math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("bad-spot fraction %g, want ~0.5", frac)
	}
	// A region longer than the tape is clamped to the whole tape.
	big := NewLifecycle(LifecycleConfig{BadSpotRate: 1, BadSpotSegments: 5000, Seed: 3})
	start, n, ok := big.BadSpot(1, 100)
	if !ok || start != 0 || n != 100 {
		t.Fatalf("clamped region = [%d,+%d) ok %v, want [0,+100) true", start, n, ok)
	}
}

// TestInjectorBadSpotRegion: an injector armed with only a region
// fails exactly the region's segments, and Enabled reflects it.
func TestInjectorBadSpotRegion(t *testing.T) {
	cfg := Config{BadSpotStart: 200, BadSpotLen: 16, Seed: 9}
	if !cfg.Enabled() {
		t.Fatal("region-only config reports disabled")
	}
	in := New(cfg)
	for lbn := 0; lbn < 400; lbn++ {
		want := lbn >= 200 && lbn < 216
		if got := in.MediaBad(lbn); got != want {
			t.Fatalf("MediaBad(%d) = %v, want %v", lbn, got, want)
		}
	}
}
