// Package fault injects drive failures into the emulated transport,
// deterministically. The paper's validation already observes real
// drives misbehaving — 7 of 3000 locates off by more than 2 s from
// servo retries — but an *online* tertiary storage system (the
// paper's setting) has to do more than absorb such events as noise:
// it must keep serving the request stream through read errors, lost
// head position and unreadable media. This package supplies the
// failure generator; internal/drive surfaces the failures as typed
// errors, and internal/sim's executor recovers from them.
//
// Four failure classes are modeled, in increasing severity:
//
//   - Transient: a read completes mechanically but the data fails its
//     check (dirty head, marginal servo tracking). A retry from the
//     same position usually succeeds.
//   - Overshoot: a locate lands past its target (servo retry during
//     the landing maneuver) and the host must re-locate from where
//     the head actually stopped.
//   - LostPosition: the drive loses confidence in its servo position
//     entirely and refuses further motion until the host recalibrates
//     by rewinding to the beginning of tape, where the servo can
//     reacquire its absolute reference.
//   - Media: a segment is physically unreadable (creased tape, oxide
//     dropout). Retries never help; the request must be failed.
//
// Determinism is load-bearing: chaos experiments must reproduce
// exactly — same seed and rates imply the same faults — regardless of
// how many worker goroutines run other cells of the sweep. The
// draw-stream alignment rule every generator here follows: a failure
// source either consumes exactly one variate per operation from a
// private stream owned by one component (so streams never interleave
// across components), or it is a pure function of the seed and stable
// coordinates (so it does not depend on visit order at all).
// Transient, overshoot and lost-position faults are drawn from a
// private rand48 stream consumed one draw per drive operation; media
// errors and bad-spot regions are pure functions of (seed, segment)
// and (seed, serial), so the set of bad segments does not depend on
// the order in which segments are visited.
//
// A second tier above these per-operation faults — whole components
// failing and recovering: drives dying mid-batch, the robot stalling,
// cartridges lost outright — lives in LifecycleConfig and Lifecycle
// (lifecycle.go), under the same alignment rule.
package fault

import (
	"fmt"

	"serpentine/internal/rand48"
)

// Class identifies one failure class.
type Class int

const (
	// None means the operation proceeds normally.
	None Class = iota
	// Transient is a retryable read failure.
	Transient
	// Overshoot is a locate that lands past its target.
	Overshoot
	// LostPosition invalidates the head position until recalibration.
	LostPosition
	// Media is a permanently unreadable segment.
	Media
)

// String names the class for experiment output.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Overshoot:
		return "overshoot"
	case LostPosition:
		return "lost-position"
	case Media:
		return "media"
	}
	return fmt.Sprintf("fault.Class(%d)", int(c))
}

// Config sets the per-operation fault probabilities. The zero value
// disables injection entirely.
type Config struct {
	// TransientRate is the probability that one read attempt fails
	// transiently.
	TransientRate float64
	// OvershootRate is the probability that one locate overshoots its
	// target.
	OvershootRate float64
	// LostRate is the probability that one locate loses servo
	// position.
	LostRate float64
	// MediaRate is the fraction of segments that are permanently
	// unreadable. Membership is a pure function of (Seed, segment).
	MediaRate float64
	// BadSpotStart and BadSpotLen describe one contiguous permanently
	// unreadable region — every segment in [BadSpotStart,
	// BadSpotStart+BadSpotLen) fails like a MediaRate segment. The
	// lifecycle layer computes the region per cartridge
	// (Lifecycle.BadSpot) and arms the mounted drive's injector with
	// it; BadSpotLen 0 (the default) means no region.
	BadSpotStart int
	BadSpotLen   int
	// Seed seeds the draw stream and the media-error hash.
	Seed int64
}

// Enabled reports whether any class can fire.
func (c Config) Enabled() bool {
	return c.TransientRate > 0 || c.OvershootRate > 0 || c.LostRate > 0 ||
		c.MediaRate > 0 || c.BadSpotLen > 0
}

// Scale returns the config with every rate multiplied by f (clamped
// to [0,1]); the chaos sweep uses it to turn one base mix into an
// increasing-fault-rate axis.
func (c Config) Scale(f float64) Config {
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	c.TransientRate = clamp(c.TransientRate * f)
	c.OvershootRate = clamp(c.OvershootRate * f)
	c.LostRate = clamp(c.LostRate * f)
	c.MediaRate = clamp(c.MediaRate * f)
	return c
}

// Validate reports an error if any rate is outside [0,1].
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"TransientRate", c.TransientRate},
		{"OvershootRate", c.OvershootRate},
		{"LostRate", c.LostRate},
		{"MediaRate", c.MediaRate},
	} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("fault: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if c.OvershootRate+c.LostRate > 1 {
		return fmt.Errorf("fault: OvershootRate+LostRate %v exceed 1",
			c.OvershootRate+c.LostRate)
	}
	if c.BadSpotStart < 0 || c.BadSpotLen < 0 {
		return fmt.Errorf("fault: bad-spot region [%d,+%d) has negative bounds",
			c.BadSpotStart, c.BadSpotLen)
	}
	return nil
}

// Default returns the base fault mix the chaos experiments scale:
// roughly one transient read failure per 50 reads, one overshoot per
// 100 locates, one lost position per 500 locates, and one permanently
// bad segment per 2000.
func Default(seed int64) Config {
	return Config{
		TransientRate: 0.02,
		OvershootRate: 0.01,
		LostRate:      0.002,
		MediaRate:     0.0005,
		Seed:          seed,
	}
}

// Injector draws faults for one drive. It is not safe for concurrent
// use; like the drive itself, it belongs to one goroutine.
type Injector struct {
	cfg Config
	rng *rand48.Source
}

// New returns an injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand48.New(cfg.Seed*2654435761 + 40503)}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// OnLocate draws the fault afflicting one locate attempt: Overshoot,
// LostPosition or None. Exactly one uniform variate is consumed per
// call so the draw stream stays aligned across fault mixes with the
// same operation sequence.
func (in *Injector) OnLocate() Class {
	if in == nil || (in.cfg.OvershootRate == 0 && in.cfg.LostRate == 0) {
		return None
	}
	u := in.rng.Drand48()
	switch {
	case u < in.cfg.OvershootRate:
		return Overshoot
	case u < in.cfg.OvershootRate+in.cfg.LostRate:
		return LostPosition
	default:
		return None
	}
}

// OnRead draws the fault afflicting one read attempt: Transient or
// None. Media errors are not drawn here — use MediaBad, which is
// position-deterministic.
func (in *Injector) OnRead() Class {
	if in == nil || in.cfg.TransientRate == 0 {
		return None
	}
	if in.rng.Drand48() < in.cfg.TransientRate {
		return Transient
	}
	return None
}

// OvershootSegments draws how far past the target an overshooting
// locate lands, in segments: uniformly 64..575, under a section of
// DLT4000 data — the scale of a servo landing retry.
func (in *Injector) OvershootSegments() int {
	return 64 + in.rng.Intn(512)
}

// MediaBad reports whether segment lbn is permanently unreadable —
// either inside the configured bad-spot region or hash-selected at
// MediaRate. It is a pure function of (Seed, lbn): stable across
// retries, visit order and runs, so a failed segment stays failed.
func (in *Injector) MediaBad(lbn int) bool {
	if in == nil {
		return false
	}
	if in.cfg.BadSpotLen > 0 && lbn >= in.cfg.BadSpotStart && lbn < in.cfg.BadSpotStart+in.cfg.BadSpotLen {
		return true
	}
	if in.cfg.MediaRate <= 0 {
		return false
	}
	h := uint64(in.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(lbn)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return float64(h%(1<<24))/float64(1<<24) < in.cfg.MediaRate
}
