package geometry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// A characterization is expensive — hundreds of simulated drive-hours
// of locate measurements — and is valid for the life of the cartridge,
// so systems persist key-point tables alongside their volume catalog.
// This file defines the on-disk format: a single versioned JSON
// document carrying the drive profile, the cartridge identity and the
// boundary table, with full structural validation on load (a corrupt
// table would silently produce Figure 9's disastrous schedules).

// keyFileVersion identifies the serialization format.
const keyFileVersion = 1

// keyFile is the on-disk envelope.
type keyFile struct {
	Version int     `json:"version"`
	Serial  int64   `json:"serial,omitempty"`
	Params  Params  `json:"profile"`
	Total   int     `json:"total_segments"`
	Bound   [][]int `json:"bound"`
}

// WriteKeyPoints serializes a key-point table. serial records which
// cartridge it characterizes (0 if unknown).
func WriteKeyPoints(w io.Writer, kp *KeyPointTable, serial int64) error {
	if err := kp.Validate(); err != nil {
		return fmt.Errorf("geometry: refusing to write invalid key points: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(keyFile{
		Version: keyFileVersion,
		Serial:  serial,
		Params:  kp.Params,
		Total:   kp.Total,
		Bound:   kp.Bound,
	})
}

// ReadKeyPoints deserializes and validates a key-point table,
// returning the table and the cartridge serial it was recorded for.
func ReadKeyPoints(r io.Reader) (*KeyPointTable, int64, error) {
	var kf keyFile
	dec := json.NewDecoder(bufio.NewReader(r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&kf); err != nil {
		return nil, 0, fmt.Errorf("geometry: reading key points: %w", err)
	}
	if kf.Version != keyFileVersion {
		return nil, 0, fmt.Errorf("geometry: key file version %d, want %d", kf.Version, keyFileVersion)
	}
	if err := kf.Params.Validate(); err != nil {
		return nil, 0, fmt.Errorf("geometry: key file profile: %w", err)
	}
	kp := &KeyPointTable{Params: kf.Params, Bound: kf.Bound, Total: kf.Total}
	if err := kp.Validate(); err != nil {
		return nil, 0, fmt.Errorf("geometry: key file table: %w", err)
	}
	return kp, kf.Serial, nil
}

// SaveKeyPointsFile writes a key-point table to path, atomically via
// a temporary file in the same directory.
func SaveKeyPointsFile(path string, kp *KeyPointTable, serial int64) error {
	tmp, err := os.CreateTemp(dirOf(path), ".keypoints-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteKeyPoints(tmp, kp, serial); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadKeyPointsFile reads a key-point table from path.
func LoadKeyPointsFile(path string) (*KeyPointTable, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadKeyPoints(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "."
}
