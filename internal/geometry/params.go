// Package geometry models the physical layout of serpentine tape: the
// back-and-forth track structure, the section subdivision of each
// track, the mapping between logical block numbers (absolute segment
// numbers) and physical tape positions, and the per-tape "key points"
// (track boundaries and interior dips) that parameterize the locate
// time model of Hillyer & Silberschatz (SIGMOD 1996).
//
// Two representations coexist:
//
//   - Tape is ground truth: a synthetic cartridge generated from a
//     seed, with per-section segment-count jitter, recording-density
//     variation and a short final section, standing in for the
//     physical DLT4000 cartridges the paper measured.
//   - View is the reading-order geometry used for locate-time
//     arithmetic. A View is obtained either exactly from a Tape (the
//     emulated drive's own knowledge of itself) or approximately from
//     a KeyPointTable (what a host can learn by characterizing a tape
//     through locate-time measurements, per [HS96]).
//
// Physical positions are expressed in section units: the nominal
// physical length of one section is 1.0, so a DLT4000 track spans
// about 13.85 units (13 full sections plus a short section 13).
package geometry

import "fmt"

// Direction is the reading direction of a serpentine track.
type Direction int8

const (
	// Forward tracks are read from the physical beginning of the
	// tape toward the end; even-numbered tracks on the DLT4000.
	Forward Direction = iota
	// Reverse tracks are read from the physical end of the tape
	// toward the beginning; odd-numbered tracks on the DLT4000.
	Reverse
)

// String returns "forward" or "reverse".
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "reverse"
}

// Co reports whether two directions are co-directional.
func (d Direction) Co(o Direction) bool { return d == o }

// Params describes a serpentine tape format: the fixed geometry of a
// drive/cartridge family. The DLT4000 profile reproduces the geometry
// the paper reports; the others are plausible scalings used by the
// extension benchmarks.
type Params struct {
	// Name identifies the profile in output.
	Name string

	// Tracks is the number of serpentine tracks (track groups).
	// 64 on the DLT4000. Track 0 is Forward; directions alternate.
	Tracks int

	// SectionsPerTrack is the number of sections per track; 14 on
	// the DLT4000 (numbered 0-13, 0 physically closest to the
	// beginning of tape).
	SectionsPerTrack int

	// SegmentsPerSection is the nominal segment count of a full
	// section; about 704 on the DLT4000 for 32 KB segments.
	SegmentsPerSection int

	// LastSectionFrac is the relative size of the final section of
	// each track, which the paper reports as "significantly
	// shorter"; 0.81 reproduces the ~568-segment section 13 and the
	// reported ~600 first-written segment index of reverse tracks.
	LastSectionFrac float64

	// SegmentBytes is the segment (chunk) size; 32 KB in the paper.
	SegmentBytes int64

	// ReadSecPerSection is the slower transport speed used for I/O
	// transfers and short motions: 15.5 s/section on the DLT4000.
	ReadSecPerSection float64

	// ScanSecPerSection is the fast transport speed used for rewind
	// and long motions: 10 s/section on the DLT4000.
	ScanSecPerSection float64

	// TrackSwitchSec is the head-step-and-settle time charged when a
	// locate changes tracks.
	TrackSwitchSec float64

	// ReverseSec is charged each time the tape transport must stop
	// and reverse its physical direction of motion during a locate.
	ReverseSec float64

	// OverheadSec is the fixed command/settle overhead of every
	// locate operation.
	OverheadSec float64

	// SectionCountJitter is the half-width of the uniform integer
	// jitter applied to each section's segment count when
	// synthesizing a tape (servo variation).
	SectionCountJitter int

	// BadSpotMaxLoss is the largest number of segments a track can
	// lose to bad spots (spread over a few sections), per the
	// paper's observation that "tracks have differing lengths,
	// perhaps reflecting differing amounts of space lost to bad
	// spots". Bad spots are what make two cartridges' key-point
	// tables diverge by substantial fractions of a section, so that
	// scheduling tape A with tape B's key points is disastrous
	// (Figure 9).
	BadSpotMaxLoss int

	// DensityJitterFrac is the half-width of the relative jitter
	// between a section's physical length and its segment count
	// when synthesizing a tape. It is what makes a characterized
	// model disagree slightly with the physical cartridge: the model
	// assumes uniform recording density, the cartridge does not.
	DensityJitterFrac float64

	// PersonalityFrac is the half-width of the per-cartridge skew of
	// the transport speed constants (tape tension, media thickness,
	// pack slip). The locate model always uses the nominal
	// constants, so a non-zero personality makes every estimate on
	// that cartridge slightly and systematically off — the effect
	// behind the paper's Section 3 observation that the model
	// developed on one tape shows more >2 s errors on a different
	// tape (24/1000 versus 7/3000). Experiments that need the
	// model-development tape itself ("tape A") generate it with
	// PersonalityFrac zeroed.
	PersonalityFrac float64
}

// DLT4000 returns the geometry and timing profile of the Quantum
// DLT4000 as reported in the paper: 64 tracks x 14 sections, ~704
// segments of 32 KB per section, 622k segments per cartridge, read
// speed 15.5 s/section, scan speed 10 s/section. The overhead
// constants are tuned (see the locate package tests) so that the
// model reproduces the paper's aggregate statistics: maximum locate
// ~180 s, mean locate from the beginning of tape ~96.5 s, mean locate
// between random segments ~72.4 s, full-tape read + rewind ~14,000 s.
func DLT4000() Params {
	return Params{
		Name:               "DLT4000",
		Tracks:             64,
		SectionsPerTrack:   14,
		SegmentsPerSection: 713, // ~704 on average after bad-spot losses
		LastSectionFrac:    0.81,
		BadSpotMaxLoss:     250,
		SegmentBytes:       32 << 10,
		ReadSecPerSection:  15.5,
		ScanSecPerSection:  10.0,
		TrackSwitchSec:     2.0,
		ReverseSec:         1.5,
		OverheadSec:        2.0,
		SectionCountJitter: 8,
		DensityJitterFrac:  0.004,
		PersonalityFrac:    0.012,
	}
}

// DLT7000 returns a plausible profile for the faster, denser DLT7000
// (5.2 MB/s, 35 GB) used by the extension benchmarks. The serpentine
// structure is the same; transport is faster and tracks denser.
func DLT7000() Params {
	p := DLT4000()
	p.Name = "DLT7000"
	p.Tracks = 52
	p.SegmentsPerSection = 1536
	p.ReadSecPerSection = 10.4 // 1536 segments * 32 KB / 5.2 MB/s / section
	p.ScanSecPerSection = 7.0
	return p
}

// IBM3590 returns a plausible profile for the IBM 3590 (9 MB/s,
// 10 GB): fewer, shorter tracks and a much faster transport.
func IBM3590() Params {
	p := DLT4000()
	p.Name = "IBM3590"
	p.Tracks = 32
	p.SectionsPerTrack = 10
	p.SegmentsPerSection = 1024
	p.ReadSecPerSection = 3.6
	p.ScanSecPerSection = 2.4
	p.TrackSwitchSec = 1.5
	p.ReverseSec = 2.0
	p.OverheadSec = 1.5
	return p
}

// Tiny returns a small profile (6 tracks x 5 sections x 40 segments)
// for exhaustive property tests; it is not a real device.
func Tiny() Params {
	p := DLT4000()
	p.Name = "Tiny"
	p.Tracks = 6
	p.SectionsPerTrack = 5
	p.SegmentsPerSection = 40
	p.SectionCountJitter = 2
	return p
}

// Validate reports an error describing the first invalid field, or
// nil if the profile is usable.
func (p Params) Validate() error {
	switch {
	case p.Tracks < 1:
		return fmt.Errorf("geometry: %s: Tracks must be >= 1, got %d", p.Name, p.Tracks)
	case p.SectionsPerTrack < 2:
		return fmt.Errorf("geometry: %s: SectionsPerTrack must be >= 2, got %d", p.Name, p.SectionsPerTrack)
	case p.SegmentsPerSection < 4:
		return fmt.Errorf("geometry: %s: SegmentsPerSection must be >= 4, got %d", p.Name, p.SegmentsPerSection)
	case p.LastSectionFrac <= 0 || p.LastSectionFrac > 1:
		return fmt.Errorf("geometry: %s: LastSectionFrac must be in (0,1], got %g", p.Name, p.LastSectionFrac)
	case p.SegmentBytes <= 0:
		return fmt.Errorf("geometry: %s: SegmentBytes must be positive, got %d", p.Name, p.SegmentBytes)
	case p.ReadSecPerSection <= 0:
		return fmt.Errorf("geometry: %s: ReadSecPerSection must be positive, got %g", p.Name, p.ReadSecPerSection)
	case p.ScanSecPerSection <= 0:
		return fmt.Errorf("geometry: %s: ScanSecPerSection must be positive, got %g", p.Name, p.ScanSecPerSection)
	case p.ScanSecPerSection > p.ReadSecPerSection:
		return fmt.Errorf("geometry: %s: scan speed must not be slower than read speed", p.Name)
	case p.SectionCountJitter < 0:
		return fmt.Errorf("geometry: %s: SectionCountJitter must be >= 0, got %d", p.Name, p.SectionCountJitter)
	case p.BadSpotMaxLoss < 0:
		return fmt.Errorf("geometry: %s: BadSpotMaxLoss must be >= 0, got %d", p.Name, p.BadSpotMaxLoss)
	case p.DensityJitterFrac < 0 || p.DensityJitterFrac >= 0.5:
		return fmt.Errorf("geometry: %s: DensityJitterFrac must be in [0,0.5), got %g", p.Name, p.DensityJitterFrac)
	case p.PersonalityFrac < 0 || p.PersonalityFrac >= 0.5:
		return fmt.Errorf("geometry: %s: PersonalityFrac must be in [0,0.5), got %g", p.Name, p.PersonalityFrac)
	}
	return nil
}

// TrackDirection returns the reading direction of track t: even
// tracks are forward, odd tracks reverse, per the DLT serpentine
// writing pattern.
func (p Params) TrackDirection(t int) Direction {
	if t%2 == 0 {
		return Forward
	}
	return Reverse
}

// NominalSegments returns the segment count of an ideal, jitter-free
// cartridge with this geometry.
func (p Params) NominalSegments() int {
	perTrack := (p.SectionsPerTrack-1)*p.SegmentsPerSection + p.lastSectionSegments()
	return p.Tracks * perTrack
}

func (p Params) lastSectionSegments() int {
	n := int(float64(p.SegmentsPerSection)*p.LastSectionFrac + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// NominalTrackLength returns the physical length of a track in
// section units: full sections count 1.0, the last section counts
// LastSectionFrac.
func (p Params) NominalTrackLength() float64 {
	return float64(p.SectionsPerTrack-1) + p.LastSectionFrac
}

// SequentialReadSec returns the time to read one full tape pass
// end-to-end: every track at read speed plus a track switch between
// consecutive tracks. On the DLT4000 profile this is ~14,000 s, the
// paper's quoted time to read an entire tape (the final head position
// is at the physical beginning of tape, so the trailing rewind is
// nearly free).
func (p Params) SequentialReadSec() float64 {
	return float64(p.Tracks)*p.NominalTrackLength()*p.ReadSecPerSection +
		float64(p.Tracks-1)*p.TrackSwitchSec
}

// TransferRateBytesPerSec returns the sustained sequential transfer
// rate implied by the geometry (segment bytes over per-segment read
// time). For the DLT4000 profile this is ~1.5 MB/s, matching the
// paper.
func (p Params) TransferRateBytesPerSec() float64 {
	secPerSegment := p.ReadSecPerSection / float64(p.SegmentsPerSection)
	return float64(p.SegmentBytes) / secPerSegment
}
