package geometry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKeyPointsRoundTrip(t *testing.T) {
	tape := MustGenerate(DLT4000(), 9)
	kp := tape.KeyPoints()
	var buf bytes.Buffer
	if err := WriteKeyPoints(&buf, kp, 9); err != nil {
		t.Fatal(err)
	}
	got, serial, err := ReadKeyPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 9 {
		t.Fatalf("serial = %d, want 9", serial)
	}
	if got.Total != kp.Total || got.Params.Name != kp.Params.Name {
		t.Fatal("metadata lost in round trip")
	}
	for tr := range kp.Bound {
		for l := range kp.Bound[tr] {
			if got.Bound[tr][l] != kp.Bound[tr][l] {
				t.Fatalf("boundary (%d,%d) changed", tr, l)
			}
		}
	}
	// The loaded table must build a working view.
	if _, err := got.View(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRefusesInvalidTable(t *testing.T) {
	tape := MustGenerate(Tiny(), 1)
	kp := tape.KeyPoints()
	kp.Bound[0][1] = kp.Bound[0][2] + 5 // corrupt
	var buf bytes.Buffer
	if err := WriteKeyPoints(&buf, kp, 1); err == nil {
		t.Fatal("invalid table written")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	tape := MustGenerate(Tiny(), 1)
	kp := tape.KeyPoints()
	var buf bytes.Buffer
	if err := WriteKeyPoints(&buf, kp, 1); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"not json":      "hello",
		"wrong version": strings.Replace(good, `"version": 1`, `"version": 99`, 1),
		"unknown field": strings.Replace(good, `"version": 1`, `"version": 1, "extra": true`, 1),
		"bad boundary":  strings.Replace(good, `"total_segments"`, `"total_segments_off"`, 1),
	}
	for name, text := range cases {
		if _, _, err := ReadKeyPoints(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Structural corruption that parses as JSON.
	tampered := strings.Replace(good, kpFirstBoundary(t, kp), "999999999", 1)
	if _, _, err := ReadKeyPoints(strings.NewReader(tampered)); err == nil {
		t.Error("tampered boundary accepted")
	}
}

// kpFirstBoundary returns the textual form of an interior boundary
// value for tampering.
func kpFirstBoundary(t *testing.T, kp *KeyPointTable) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteKeyPoints(&buf, kp, 1); err != nil {
		t.Fatal(err)
	}
	// The second boundary of track 0 appears in the bound array.
	return itoa(kp.Bound[0][1])
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestSaveLoadKeyPointsFile(t *testing.T) {
	tape := MustGenerate(DLT4000(), 4)
	path := filepath.Join(t.TempDir(), "tape4.keypoints")
	if err := SaveKeyPointsFile(path, tape.KeyPoints(), 4); err != nil {
		t.Fatal(err)
	}
	got, serial, err := LoadKeyPointsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 4 || got.Total != tape.Segments() {
		t.Fatal("file round trip lost data")
	}
	if _, _, err := LoadKeyPointsFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".keypoints-") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestDirOf(t *testing.T) {
	cases := map[string]string{
		"a/b/c":  "a/b",
		"/x":     "/",
		"plain":  ".",
		"./file": ".",
	}
	for in, want := range cases {
		if got := dirOf(in); got != want {
			t.Errorf("dirOf(%q) = %q, want %q", in, got, want)
		}
	}
}
