package geometry

import (
	"math"
	"strings"
	"testing"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Params{DLT4000(), DLT7000(), IBM3590(), Tiny()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		mutate func(*Params)
		want   string
	}{
		{func(p *Params) { p.Tracks = 0 }, "Tracks"},
		{func(p *Params) { p.SectionsPerTrack = 1 }, "SectionsPerTrack"},
		{func(p *Params) { p.SegmentsPerSection = 2 }, "SegmentsPerSection"},
		{func(p *Params) { p.LastSectionFrac = 0 }, "LastSectionFrac"},
		{func(p *Params) { p.LastSectionFrac = 1.5 }, "LastSectionFrac"},
		{func(p *Params) { p.SegmentBytes = 0 }, "SegmentBytes"},
		{func(p *Params) { p.ReadSecPerSection = 0 }, "ReadSecPerSection"},
		{func(p *Params) { p.ScanSecPerSection = -1 }, "ScanSecPerSection"},
		{func(p *Params) { p.ScanSecPerSection = p.ReadSecPerSection + 1 }, "scan speed"},
		{func(p *Params) { p.SectionCountJitter = -1 }, "SectionCountJitter"},
		{func(p *Params) { p.BadSpotMaxLoss = -1 }, "BadSpotMaxLoss"},
		{func(p *Params) { p.DensityJitterFrac = 0.6 }, "DensityJitterFrac"},
		{func(p *Params) { p.PersonalityFrac = -0.1 }, "PersonalityFrac"},
	}
	for _, c := range cases {
		p := DLT4000()
		c.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("mutation for %q: no error", c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not mention %q", err, c.want)
		}
	}
}

func TestTrackDirectionAlternates(t *testing.T) {
	p := DLT4000()
	for tr := 0; tr < p.Tracks; tr++ {
		want := Forward
		if tr%2 == 1 {
			want = Reverse
		}
		if got := p.TrackDirection(tr); got != want {
			t.Fatalf("track %d: direction %v, want %v", tr, got, want)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Reverse.String() != "reverse" {
		t.Fatal("Direction.String wrong")
	}
	if !Forward.Co(Forward) || Forward.Co(Reverse) {
		t.Fatal("Direction.Co wrong")
	}
}

// The DLT4000 profile must reproduce the paper's headline figures.
func TestDLT4000PaperFigures(t *testing.T) {
	p := DLT4000()

	// ~622k segments of 32 KB => ~20 GB cartridge.
	nominal := p.NominalSegments()
	if nominal < 610000 || nominal > 635000 {
		t.Errorf("nominal segments = %d, want ~622k", nominal)
	}
	gb := float64(nominal) * float64(p.SegmentBytes) / 1e9
	if gb < 19 || gb > 21 {
		t.Errorf("capacity = %.1f GB, want ~20", gb)
	}

	// Sustained transfer rate ~1.5 MB/s.
	if r := p.TransferRateBytesPerSec() / 1e6; math.Abs(r-1.5) > 0.1 {
		t.Errorf("transfer rate = %.3f MB/s, want ~1.5", r)
	}

	// Reading the whole tape takes ~14,000 s (just under 4 hours).
	if s := p.SequentialReadSec(); s < 13500 || s > 14500 {
		t.Errorf("sequential read = %.0f s, want ~14,000", s)
	}

	// Track length: 13 full sections plus a short final one.
	if l := p.NominalTrackLength(); l < 13.5 || l > 14 {
		t.Errorf("track length = %.2f sections, want ~13.8", l)
	}
}

func TestLastSectionIsSignificantlyShorter(t *testing.T) {
	p := DLT4000()
	last := p.lastSectionSegments()
	if last >= p.SegmentsPerSection || last < p.SegmentsPerSection/2 {
		t.Fatalf("last section = %d segments, full = %d", last, p.SegmentsPerSection)
	}
}
