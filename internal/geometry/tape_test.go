package geometry

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DLT4000(), 5)
	b := MustGenerate(DLT4000(), 5)
	if a.Segments() != b.Segments() {
		t.Fatal("same serial, different capacity")
	}
	ka, kb := a.KeyPoints(), b.KeyPoints()
	for tr := range ka.Bound {
		for l := range ka.Bound[tr] {
			if ka.Bound[tr][l] != kb.Bound[tr][l] {
				t.Fatalf("same serial, different key point at track %d, l %d", tr, l)
			}
		}
	}
	ra, sa, oa := a.Personality()
	rb, sb, ob := b.Personality()
	if ra != rb || sa != sb || oa != ob {
		t.Fatal("same serial, different personality")
	}
}

func TestGenerateDiffersBySerial(t *testing.T) {
	a := MustGenerate(DLT4000(), 1)
	b := MustGenerate(DLT4000(), 2)
	ka, kb := a.KeyPoints(), b.KeyPoints()
	diffs := 0
	for tr := range ka.Bound {
		for l := range ka.Bound[tr] {
			if l < len(kb.Bound[tr]) && ka.Bound[tr][l] != kb.Bound[tr][l] {
				diffs++
			}
		}
	}
	if diffs < 500 {
		t.Fatalf("tapes with different serials share too many key points (%d differ)", diffs)
	}
}

func TestGenerateRejectsBadProfile(t *testing.T) {
	p := DLT4000()
	p.Tracks = 0
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("expected error for invalid profile")
	}
}

func TestCapacityNearPaper(t *testing.T) {
	// The paper's two cartridges held 622,058 and 622,102 segments.
	for serial := int64(1); serial <= 8; serial++ {
		tape := MustGenerate(DLT4000(), serial)
		if n := tape.Segments(); n < 615000 || n > 630000 {
			t.Errorf("serial %d: %d segments, want ~622k", serial, n)
		}
	}
}

func TestReverseTrackFirstWrittenCoordinate(t *testing.T) {
	// "the first segment written on a reverse track t' is (t',13,k),
	// where k has a typical value of 600 or so."
	tape := MustGenerate(DLT4000(), 1)
	v := tape.View()
	p := tape.Params()
	for tr := 1; tr < p.Tracks; tr += 2 {
		first := v.Track(tr).StartLBN()
		c := v.Coord(first)
		if c.Track != tr || c.Section != p.SectionsPerTrack-1 {
			t.Fatalf("reverse track %d first segment at (%d,%d,%d), want section %d",
				tr, c.Track, c.Section, c.Segment, p.SectionsPerTrack-1)
		}
		if c.Segment < 250 || c.Segment > 700 {
			t.Fatalf("reverse track %d: first-written k = %d, want a few hundred", tr, c.Segment)
		}
	}
}

func TestTracksHaveDifferingLengths(t *testing.T) {
	// "Measurements indicate that tracks have differing lengths,
	// perhaps reflecting differing amounts of space lost to bad
	// spots."
	tape := MustGenerate(DLT4000(), 1)
	v := tape.View()
	min, max := math.Inf(1), math.Inf(-1)
	for tr := 0; tr < v.Tracks(); tr++ {
		tv := v.Track(tr)
		l := math.Abs(tv.BoundPos[tv.Sections()] - tv.BoundPos[0])
		min = math.Min(min, l)
		max = math.Max(max, l)
	}
	if max-min < 0.01 {
		t.Fatalf("track lengths suspiciously uniform: min %.4f max %.4f", min, max)
	}
	if max > tape.Params().NominalTrackLength()+0.1 {
		t.Fatalf("track longer than nominal: %.3f", max)
	}
}

func TestPersonalityBounds(t *testing.T) {
	p := DLT4000()
	for serial := int64(1); serial <= 20; serial++ {
		tape := MustGenerate(p, serial)
		r, s, o := tape.Personality()
		if math.Abs(r) > p.PersonalityFrac || math.Abs(s) > p.PersonalityFrac {
			t.Fatalf("serial %d: skews %g/%g exceed %g", serial, r, s, p.PersonalityFrac)
		}
		if math.Abs(r) < p.PersonalityFrac/2 || math.Abs(s) < p.PersonalityFrac/2 {
			t.Fatalf("serial %d: skews %g/%g below half-range (should be meaningfully non-zero)", serial, r, s)
		}
		if math.Abs(o) > p.PersonalityFrac*20 {
			t.Fatalf("serial %d: overhead %g out of range", serial, o)
		}
	}
}

func TestZeroPersonalityProfile(t *testing.T) {
	p := DLT4000()
	p.PersonalityFrac = 0
	tape := MustGenerate(p, 1)
	r, s, o := tape.Personality()
	if r != 0 || s != 0 || o != 0 {
		t.Fatalf("zero PersonalityFrac should yield zero personality, got %g/%g/%g", r, s, o)
	}
}

func TestTapeString(t *testing.T) {
	tape := MustGenerate(DLT4000(), 9)
	s := tape.String()
	if s == "" || tape.Serial() != 9 {
		t.Fatal("String/Serial broken")
	}
}

func TestSectionCountsWithinBounds(t *testing.T) {
	p := DLT4000()
	tape := MustGenerate(p, 4)
	v := tape.View()
	for tr := 0; tr < v.Tracks(); tr++ {
		tv := v.Track(tr)
		lost := 0
		for l := 0; l < tv.Sections(); l++ {
			c := tv.SectionCount(l)
			if c < p.SegmentsPerSection/2 {
				t.Fatalf("track %d section %d has %d segments, below floor", tr, l, c)
			}
			if c > p.SegmentsPerSection+p.SectionCountJitter {
				t.Fatalf("track %d section %d has %d segments, above max", tr, l, c)
			}
			nominal := p.SegmentsPerSection
			phys := l
			if tv.Dir == Reverse {
				phys = tv.Sections() - 1 - l
			}
			if phys == tv.Sections()-1 {
				nominal = int(float64(p.SegmentsPerSection)*p.LastSectionFrac + 0.5)
			}
			if d := nominal - c; d > 0 {
				lost += d - p.SectionCountJitter
			}
		}
		if lost > p.BadSpotMaxLoss+3*p.SectionCountJitter {
			t.Fatalf("track %d lost %d segments, exceeds bad-spot budget", tr, lost)
		}
	}
}
