package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: LBN -> Coord -> LBN is the identity, on both a tiny
// exhaustive geometry and the full DLT4000.
func TestCoordRoundTripExhaustiveTiny(t *testing.T) {
	tape := MustGenerate(Tiny(), 3)
	v := tape.View()
	for lbn := 0; lbn < v.Segments(); lbn++ {
		c := v.Coord(lbn)
		if got := v.LBN(c); got != lbn {
			t.Fatalf("roundtrip %d -> %+v -> %d", lbn, c, got)
		}
	}
}

func TestCoordRoundTripQuickDLT(t *testing.T) {
	tape := MustGenerate(DLT4000(), 1)
	v := tape.View()
	f := func(raw uint32) bool {
		lbn := int(raw) % v.Segments()
		return v.LBN(v.Coord(lbn)) == lbn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: placements are structurally consistent.
func TestPlacementInvariants(t *testing.T) {
	tape := MustGenerate(DLT4000(), 2)
	v := tape.View()
	p := tape.Params()
	f := func(raw uint32) bool {
		lbn := int(raw) % v.Segments()
		pl := v.Place(lbn)
		if pl.LBN != lbn {
			return false
		}
		if pl.Track < 0 || pl.Track >= p.Tracks {
			return false
		}
		if pl.Section < 0 || pl.Section >= p.SectionsPerTrack {
			return false
		}
		if pl.Frac < 0 || pl.Frac >= 1 {
			return false
		}
		if pl.Pos < 0 || pl.Pos > p.NominalTrackLength()+0.5 {
			return false
		}
		if pl.Dir != p.TrackDirection(pl.Track) {
			return false
		}
		// Physical section and logical section are mirror images on
		// reverse tracks.
		if pl.Dir == Forward && pl.PhysSection != pl.Section {
			return false
		}
		if pl.Dir == Reverse && pl.PhysSection != p.SectionsPerTrack-1-pl.Section {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Within a track, increasing LBN moves the head strictly in the
// track's reading direction.
func TestLBNOrderFollowsReadingDirection(t *testing.T) {
	tape := MustGenerate(DLT4000(), 1)
	v := tape.View()
	for _, tr := range []int{0, 1, 30, 31, 62, 63} {
		tv := v.Track(tr)
		prev := v.Place(tv.StartLBN())
		for lbn := tv.StartLBN() + 500; lbn < tv.EndLBN(); lbn += 500 {
			pl := v.Place(lbn)
			if tv.Dir == Forward && pl.Pos <= prev.Pos {
				t.Fatalf("forward track %d: pos not increasing at %d", tr, lbn)
			}
			if tv.Dir == Reverse && pl.Pos >= prev.Pos {
				t.Fatalf("reverse track %d: pos not decreasing at %d", tr, lbn)
			}
			prev = pl
		}
	}
}

func TestPlacePanicsOutOfRange(t *testing.T) {
	v := MustGenerate(Tiny(), 1).View()
	for _, lbn := range []int{-1, v.Segments()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Place(%d) should panic", lbn)
				}
			}()
			v.Place(lbn)
		}()
	}
}

func TestSectionIndexDense(t *testing.T) {
	tape := MustGenerate(Tiny(), 2)
	v := tape.View()
	p := tape.Params()
	seen := make(map[int]bool)
	for lbn := 0; lbn < v.Segments(); lbn++ {
		idx := v.SectionIndex(lbn)
		if idx < 0 || idx >= p.Tracks*p.SectionsPerTrack {
			t.Fatalf("SectionIndex(%d) = %d out of range", lbn, idx)
		}
		seen[idx] = true
	}
	if len(seen) != p.Tracks*p.SectionsPerTrack {
		t.Fatalf("only %d of %d section cells populated", len(seen), p.Tracks*p.SectionsPerTrack)
	}
}

func TestSectionStartLBNMatchesBoundaries(t *testing.T) {
	tape := MustGenerate(DLT4000(), 1)
	v := tape.View()
	for tr := 0; tr < v.Tracks(); tr++ {
		tv := v.Track(tr)
		for l := 0; l < tv.Sections(); l++ {
			start := v.SectionStartLBN(tr, l)
			pl := v.Place(start)
			if pl.Track != tr || pl.Section != l {
				t.Fatalf("SectionStartLBN(%d,%d) = %d places at (%d,%d)", tr, l, start, pl.Track, pl.Section)
			}
			if l > 0 {
				before := v.Place(start - 1)
				if before.Track == tr && before.Section == l {
					t.Fatalf("segment before boundary still in section %d", l)
				}
			}
		}
	}
}

func TestKeyPointTableValidate(t *testing.T) {
	tape := MustGenerate(Tiny(), 1)
	good := tape.KeyPoints()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tape.KeyPoints()
	bad.Bound[1][2] = bad.Bound[1][1] // empty section
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for inverted boundary")
	}
	bad2 := tape.KeyPoints()
	bad2.Total++
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected error for wrong total")
	}
	bad3 := tape.KeyPoints()
	bad3.Bound = bad3.Bound[:len(bad3.Bound)-1]
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected error for missing track")
	}
}

// The model view derived from key points must place every segment in
// the same (track, logical section) cell as ground truth, and at a
// physical position within a small tolerance of it.
func TestKeyPointViewMatchesTruth(t *testing.T) {
	tape := MustGenerate(DLT4000(), 3)
	truth := tape.View()
	model, err := tape.KeyPoints().View()
	if err != nil {
		t.Fatal(err)
	}
	if model.Segments() != truth.Segments() {
		t.Fatal("segment counts differ")
	}
	worst := 0.0
	for lbn := 0; lbn < truth.Segments(); lbn += 997 {
		tp := truth.Place(lbn)
		mp := model.Place(lbn)
		if tp.Track != mp.Track || tp.Section != mp.Section {
			t.Fatalf("segment %d: truth (%d,%d) vs model (%d,%d)",
				lbn, tp.Track, tp.Section, mp.Track, mp.Section)
		}
		worst = math.Max(worst, math.Abs(tp.Pos-mp.Pos))
	}
	// Density jitter is ±0.4% per section; cumulative position error
	// should stay a small fraction of a section.
	if worst > 0.1 {
		t.Fatalf("worst position error %.4f sections, want < 0.1", worst)
	}
}

func TestWithParamsSharesLayout(t *testing.T) {
	tape := MustGenerate(DLT4000(), 1)
	v := tape.View()
	p2 := tape.Params()
	p2.ReadSecPerSection *= 1.01
	v2 := v.WithParams(p2)
	if v2.Params().ReadSecPerSection == v.Params().ReadSecPerSection {
		t.Fatal("WithParams did not change params")
	}
	if v2.Segments() != v.Segments() || v2.Place(12345) != v.Place(12345) {
		t.Fatal("WithParams changed the layout")
	}
}

func TestLBNPanicsOnBadCoord(t *testing.T) {
	v := MustGenerate(Tiny(), 1).View()
	bad := []Coord{
		{Track: -1}, {Track: v.Tracks()},
		{Track: 0, Section: -1}, {Track: 0, Section: 99},
		{Track: 0, Section: 0, Segment: 99999},
	}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LBN(%+v) should panic", c)
				}
			}()
			v.LBN(c)
		}()
	}
}
