package geometry

import (
	"fmt"
	"sync"
)

// TrackView is the reading-order geometry of one track. Sections are
// indexed in reading order (logical index 0 is the first section the
// head crosses when reading the track); for forward tracks the
// logical index equals the physical section number, for reverse
// tracks logical index l corresponds to physical section S-1-l.
type TrackView struct {
	// Dir is the reading direction of the track.
	Dir Direction

	// BoundLBN[l] is the absolute segment number of the first
	// segment of logical section l; BoundLBN[S] is one past the last
	// segment of the track. Strictly increasing.
	BoundLBN []int

	// BoundPos[l] is the physical tape position (section units from
	// the beginning of tape) of the reading-order start of logical
	// section l; BoundPos[S] is the reading-order end of the track.
	// Increasing for forward tracks, decreasing for reverse tracks.
	BoundPos []float64
}

// Sections returns the number of sections in the track.
func (t *TrackView) Sections() int { return len(t.BoundLBN) - 1 }

// StartLBN returns the first absolute segment number of the track.
func (t *TrackView) StartLBN() int { return t.BoundLBN[0] }

// EndLBN returns one past the last absolute segment number.
func (t *TrackView) EndLBN() int { return t.BoundLBN[len(t.BoundLBN)-1] }

// Segments returns the number of segments recorded on the track.
func (t *TrackView) Segments() int { return t.EndLBN() - t.StartLBN() }

// SectionCount returns the number of segments in logical section l.
func (t *TrackView) SectionCount(l int) int {
	return t.BoundLBN[l+1] - t.BoundLBN[l]
}

// View is the reading-order geometry of a whole tape: what the locate
// time model needs to place any segment and find the key points
// around it. A View is immutable once built.
type View struct {
	params Params
	tracks []TrackView
	total  int

	// secIdx[lbn] is track*SectionsPerTrack + logical section, built
	// lazily once so Place and SectionIndex run without binary
	// searches. 4 bytes per segment (~2.4 MB for a DLT4000 view).
	idxOnce sync.Once
	secIdx  []int32
}

// Params returns the format profile the view was built with.
func (v *View) Params() Params { return v.params }

// WithParams returns a view sharing this view's layout but carrying
// different timing parameters. The drive emulator uses it to apply a
// cartridge's hidden personality (slightly skewed transport speeds)
// to the true geometry.
func (v *View) WithParams(p Params) *View {
	return &View{params: p, tracks: v.tracks, total: v.total}
}

// Segments returns the total number of segments on the tape.
func (v *View) Segments() int { return v.total }

// Tracks returns the number of tracks.
func (v *View) Tracks() int { return len(v.tracks) }

// Track returns the reading-order geometry of track t.
func (v *View) Track(t int) *TrackView { return &v.tracks[t] }

// Placement locates one segment in reading-order coordinates.
type Placement struct {
	// LBN is the absolute segment number.
	LBN int
	// Track is the track number.
	Track int
	// Dir is the reading direction of the track.
	Dir Direction
	// Section is the logical (reading-order) section index.
	Section int
	// PhysSection is the physical section number (0 closest to the
	// beginning of tape), as used by the paper's (track, section,
	// segment) coordinate system.
	PhysSection int
	// Frac is the fractional position of the segment within its
	// logical section, in [0, 1).
	Frac float64
	// Pos is the physical position of the segment on tape, in
	// section units from the beginning of tape.
	Pos float64
}

// sectionTable returns the dense segment -> (track, logical section)
// index, building it on first use. The table depends only on the
// track layout, which is immutable, so concurrent builds via the Once
// are safe and derived views (WithParams) simply rebuild their own.
func (v *View) sectionTable() []int32 {
	v.idxOnce.Do(func() {
		spt := v.params.SectionsPerTrack
		tab := make([]int32, v.total)
		for t := range v.tracks {
			tv := &v.tracks[t]
			for l := 0; l < tv.Sections(); l++ {
				idx := int32(t*spt + l)
				for lbn := tv.BoundLBN[l]; lbn < tv.BoundLBN[l+1]; lbn++ {
					tab[lbn] = idx
				}
			}
		}
		v.secIdx = tab
	})
	return v.secIdx
}

// Place returns the placement of segment lbn. It panics if lbn is out
// of range; schedulers validate requests before calling.
func (v *View) Place(lbn int) Placement {
	if lbn < 0 || lbn >= v.total {
		panic(fmt.Sprintf("geometry: segment %d out of range [0,%d)", lbn, v.total))
	}
	idx := int(v.sectionTable()[lbn])
	spt := v.params.SectionsPerTrack
	t, l := idx/spt, idx%spt
	tv := &v.tracks[t]
	count := tv.SectionCount(l)
	frac := (float64(lbn-tv.BoundLBN[l]) + 0.5) / float64(count)
	pos := tv.BoundPos[l] + frac*(tv.BoundPos[l+1]-tv.BoundPos[l])
	phys := l
	if tv.Dir == Reverse {
		phys = tv.Sections() - 1 - l
	}
	return Placement{
		LBN:         lbn,
		Track:       t,
		Dir:         tv.Dir,
		Section:     l,
		PhysSection: phys,
		Frac:        frac,
		Pos:         pos,
	}
}

// Coord is the paper's (track, section, segment) physical coordinate
// for a segment: section 0 and segment 0 within a section are the
// ones physically closest to the beginning of the tape.
type Coord struct {
	Track   int
	Section int // physical section number
	Segment int // physical index within the section
}

// Coord converts an absolute segment number to physical coordinates.
func (v *View) Coord(lbn int) Coord {
	p := v.Place(lbn)
	tv := &v.tracks[p.Track]
	off := lbn - tv.BoundLBN[p.Section]
	if tv.Dir == Reverse {
		// Within a logical section of a reverse track, increasing
		// LBN runs toward the beginning of tape, i.e. decreasing
		// physical segment index.
		off = tv.SectionCount(p.Section) - 1 - off
	}
	return Coord{Track: p.Track, Section: p.PhysSection, Segment: off}
}

// LBN converts physical coordinates back to an absolute segment
// number. It panics if the coordinate is out of range.
func (v *View) LBN(c Coord) int {
	if c.Track < 0 || c.Track >= len(v.tracks) {
		panic(fmt.Sprintf("geometry: track %d out of range", c.Track))
	}
	tv := &v.tracks[c.Track]
	s := tv.Sections()
	if c.Section < 0 || c.Section >= s {
		panic(fmt.Sprintf("geometry: section %d out of range", c.Section))
	}
	l := c.Section
	if tv.Dir == Reverse {
		l = s - 1 - c.Section
	}
	count := tv.SectionCount(l)
	if c.Segment < 0 || c.Segment >= count {
		panic(fmt.Sprintf("geometry: segment %d out of section range [0,%d)", c.Segment, count))
	}
	off := c.Segment
	if tv.Dir == Reverse {
		off = count - 1 - off
	}
	return tv.BoundLBN[l] + off
}

// TrackOf returns the track containing segment lbn.
func (v *View) TrackOf(lbn int) int { return v.Place(lbn).Track }

// SectionIndex returns a dense index identifying the (track, logical
// section) cell containing lbn, in [0, Tracks*SectionsPerTrack).
// Scheduling algorithms use it to bucket requests by section.
func (v *View) SectionIndex(lbn int) int {
	if lbn < 0 || lbn >= v.total {
		panic(fmt.Sprintf("geometry: segment %d out of range [0,%d)", lbn, v.total))
	}
	return int(v.sectionTable()[lbn])
}

// SectionStartLBN returns the first LBN of logical section l of track
// t: the key point at the reading-order start of that section.
func (v *View) SectionStartLBN(t, l int) int {
	return v.tracks[t].BoundLBN[l]
}

// KeyPointTable is the per-tape characterization data the paper's
// model is parameterized by: for each track, the absolute segment
// numbers of the reading-order section boundaries (the track
// beginning, the 13 interior dips, and the track end).
type KeyPointTable struct {
	// Params carries the format profile (section counts, speeds).
	Params Params
	// Bound[t][l] is the first LBN of logical section l of track t;
	// Bound[t][S] is one past the track's last LBN.
	Bound [][]int
	// Total is the number of segments on the tape.
	Total int
}

// Validate checks structural invariants of the table.
func (k *KeyPointTable) Validate() error {
	if len(k.Bound) != k.Params.Tracks {
		return fmt.Errorf("geometry: key point table has %d tracks, profile says %d", len(k.Bound), k.Params.Tracks)
	}
	prevEnd := 0
	for t, b := range k.Bound {
		if len(b) != k.Params.SectionsPerTrack+1 {
			return fmt.Errorf("geometry: track %d has %d boundaries, want %d", t, len(b), k.Params.SectionsPerTrack+1)
		}
		if b[0] != prevEnd {
			return fmt.Errorf("geometry: track %d starts at %d, want %d", t, b[0], prevEnd)
		}
		for l := 0; l < len(b)-1; l++ {
			if b[l+1] <= b[l] {
				return fmt.Errorf("geometry: track %d section %d empty or inverted", t, l)
			}
		}
		prevEnd = b[len(b)-1]
	}
	if prevEnd != k.Total {
		return fmt.Errorf("geometry: boundaries end at %d, total says %d", prevEnd, k.Total)
	}
	return nil
}

// View derives the reading-order geometry a host model can assume
// from key points alone: each track is taken to span the nominal
// physical track length, with each section's physical extent
// proportional to its segment count (uniform recording density). The
// physical cartridge deviates from uniform density, which is exactly
// the residual model error the paper's Sections 6-7 study.
func (k *KeyPointTable) View() (*View, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	v := &View{params: k.Params, total: k.Total}
	v.tracks = make([]TrackView, k.Params.Tracks)
	nominalSegs := float64(k.Params.NominalSegments()) / float64(k.Params.Tracks)
	for t := range v.tracks {
		b := k.Bound[t]
		// Tracks physically shrink with the segments they lose to
		// bad spots; the key points reveal each track's segment
		// count, so scale its assumed length accordingly.
		length := k.Params.NominalTrackLength() * float64(b[len(b)-1]-b[0]) / nominalSegs
		dir := k.Params.TrackDirection(t)
		tv := TrackView{
			Dir:      dir,
			BoundLBN: b,
			BoundPos: make([]float64, len(b)),
		}
		total := float64(b[len(b)-1] - b[0])
		pos := 0.0
		if dir == Reverse {
			pos = length
		}
		tv.BoundPos[0] = pos
		for l := 0; l < len(b)-1; l++ {
			span := length * float64(b[l+1]-b[l]) / total
			if dir == Reverse {
				pos -= span
			} else {
				pos += span
			}
			tv.BoundPos[l+1] = pos
		}
		v.tracks[t] = tv
	}
	return v, nil
}
