package geometry

import (
	"fmt"

	"serpentine/internal/rand48"
)

// Tape is the ground truth for one synthetic cartridge: exact
// per-section segment counts and exact physical positions, including
// the recording-density variation that a key-point characterization
// cannot see. It stands in for the physical DLT4000 cartridges the
// paper measured (tapes "A" and "B" in Sections 6-7).
//
// Tapes with the same profile but different serial numbers differ in
// their key points by realistic amounts, which is what makes the
// paper's wrong-key-points experiment (Figure 9) meaningful.
type Tape struct {
	params Params
	serial int64
	view   *View

	// Hidden cartridge personality: fractional skews of the read and
	// scan speeds and an additive locate overhead, drawn within
	// ±PersonalityFrac (±PersonalityFrac*20 s for the overhead).
	// Only the drive emulator consults these; the host-side model
	// cannot see them.
	readSkew float64
	scanSkew float64
	overhead float64
}

// Personality returns the cartridge's hidden deviation from the
// nominal profile: multiplicative skews on the read and scan speeds
// and an additive per-locate overhead in seconds. The drive emulator
// applies these to its ground truth; host models never see them.
func (t *Tape) Personality() (readSkew, scanSkew, overheadSec float64) {
	return t.readSkew, t.scanSkew, t.overhead
}

// Generate synthesizes a cartridge from a format profile and a serial
// number. The same (profile, serial) pair always yields the same
// tape. It returns an error if the profile is invalid.
func Generate(params Params, serial int64) (*Tape, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	// Mix the serial so nearby serial numbers give unrelated tapes;
	// the multiplier is an arbitrary odd 62-bit constant.
	rng := rand48.New(serial*0x3E3779B97F4A7C15 + 1)

	// Personality magnitudes are drawn from the upper half of the
	// configured range with a random sign, so every cartridge that
	// is supposed to deviate from nominal actually does.
	personality := func(scale float64) float64 {
		mag := scale * (0.5 + 0.5*rng.Drand48())
		if rng.Drand48() < 0.5 {
			mag = -mag
		}
		return mag
	}
	readSkew := personality(params.PersonalityFrac)
	scanSkew := personality(params.PersonalityFrac)
	overhead := personality(params.PersonalityFrac * 20)

	s := params.SectionsPerTrack
	v := &View{params: params}
	v.tracks = make([]TrackView, params.Tracks)
	lbn := 0
	for t := 0; t < params.Tracks; t++ {
		// Physical layout of the track, in writing/physical order:
		// counts[s] segments in physical section s, occupying
		// physLen[s] section units.
		counts := make([]int, s)
		physLen := make([]float64, s)
		for ps := 0; ps < s; ps++ {
			nominal := params.SegmentsPerSection
			if ps == s-1 {
				nominal = params.lastSectionSegments()
			}
			jitter := 0
			if params.SectionCountJitter > 0 {
				jitter = rng.Intn(2*params.SectionCountJitter+1) - params.SectionCountJitter
			}
			c := nominal + jitter
			if c < 1 {
				c = 1
			}
			counts[ps] = c
		}
		// Bad spots: the track loses up to BadSpotMaxLoss segments,
		// concentrated in a few sections. This is what makes tracks
		// differ in length and two cartridges' key points diverge.
		if params.BadSpotMaxLoss > 0 {
			loss := rng.Intn(params.BadSpotMaxLoss + 1)
			spots := 1 + rng.Intn(3)
			for i := 0; i < spots; i++ {
				sec := rng.Intn(s)
				l := loss / spots
				if counts[sec]-l < params.SegmentsPerSection/2 {
					l = counts[sec] - params.SegmentsPerSection/2
				}
				if l > 0 {
					counts[sec] -= l
				}
			}
		}
		for ps := 0; ps < s; ps++ {
			density := 1 + params.DensityJitterFrac*(2*rng.Drand48()-1)
			physLen[ps] = float64(counts[ps]) / float64(params.SegmentsPerSection) * density
		}
		// cum[ps] is the physical position of the start of physical
		// section ps; cum[s] is the physical end of the track.
		cum := make([]float64, s+1)
		for ps := 0; ps < s; ps++ {
			cum[ps+1] = cum[ps] + physLen[ps]
		}

		dir := params.TrackDirection(t)
		tv := TrackView{
			Dir:      dir,
			BoundLBN: make([]int, s+1),
			BoundPos: make([]float64, s+1),
		}
		for l := 0; l <= s; l++ {
			if dir == Forward {
				tv.BoundPos[l] = cum[l]
			} else {
				tv.BoundPos[l] = cum[s-l]
			}
		}
		tv.BoundLBN[0] = lbn
		for l := 0; l < s; l++ {
			ps := l
			if dir == Reverse {
				ps = s - 1 - l
			}
			lbn += counts[ps]
			tv.BoundLBN[l+1] = lbn
		}
		v.tracks[t] = tv
	}
	v.total = lbn
	return &Tape{
		params: params, serial: serial, view: v,
		readSkew: readSkew, scanSkew: scanSkew, overhead: overhead,
	}, nil
}

// MustGenerate is Generate for known-good profiles; it panics on
// error and is intended for tests and examples.
func MustGenerate(params Params, serial int64) *Tape {
	t, err := Generate(params, serial)
	if err != nil {
		panic(err)
	}
	return t
}

// Params returns the format profile of the tape.
func (t *Tape) Params() Params { return t.params }

// Serial returns the cartridge serial number used to generate it.
func (t *Tape) Serial() int64 { return t.serial }

// Segments returns the number of segments recorded on the tape.
func (t *Tape) Segments() int { return t.view.total }

// View returns the exact reading-order geometry of the tape: what the
// drive itself knows. Host software should characterize the tape and
// build its model from KeyPoints instead.
func (t *Tape) View() *View { return t.view }

// KeyPoints returns the true key-point table of the tape: the track
// boundaries and interior dips, as absolute segment numbers. A real
// system obtains this table by measurement (see the calibrate
// package); tests and experiments that assume a perfectly
// characterized tape use this directly.
func (t *Tape) KeyPoints() *KeyPointTable {
	k := &KeyPointTable{
		Params: t.params,
		Bound:  make([][]int, len(t.view.tracks)),
		Total:  t.view.total,
	}
	for i := range t.view.tracks {
		b := make([]int, len(t.view.tracks[i].BoundLBN))
		copy(b, t.view.tracks[i].BoundLBN)
		k.Bound[i] = b
	}
	return k
}

// String identifies the tape for log output.
func (t *Tape) String() string {
	return fmt.Sprintf("%s cartridge #%d (%d segments)", t.params.Name, t.serial, t.view.total)
}
