package workload

import (
	"fmt"
	"math"

	"serpentine/internal/rand48"
)

// PoissonProcess is an open-ended Poisson arrival stream: exponential
// inter-arrival gaps by inversion over the same lrand48 generator as
// everything else. The online server draws from it incrementally, so
// an arrival stream need not be materialized up front; PoissonArrivals
// remains the batch convenience over the identical draw sequence.
type PoissonProcess struct {
	rng  *rand48.Source
	rate float64
	t    float64
}

// NewPoissonProcess returns a process with the given mean rate
// (events per second), starting at time zero. It panics on a
// non-positive rate; use PoissonArrivals for an error-returning
// construction.
func NewPoissonProcess(ratePerSec float64, seed int64) *PoissonProcess {
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("workload: Poisson rate must be positive, got %g", ratePerSec))
	}
	return &PoissonProcess{rng: rand48.New(seed), rate: ratePerSec}
}

// Rate returns the mean event rate per second.
func (p *PoissonProcess) Rate() float64 { return p.rate }

// Next returns the next arrival time in seconds. Times are strictly
// ascending.
func (p *PoissonProcess) Next() float64 {
	u := p.rng.Drand48()
	for u == 0 {
		u = p.rng.Drand48()
	}
	p.t += -math.Log(u) / p.rate
	return p.t
}

// PoissonArrivals returns n arrival times (seconds, ascending) of a
// Poisson process with the given mean rate (events per second),
// generated from the same lrand48 stream as everything else:
// exponential inter-arrival gaps by inversion. Online tertiary
// storage studies need an arrival process — batching trades response
// time against throughput, and that trade only exists under arrivals
// spread over time.
func PoissonArrivals(ratePerSec float64, n int, seed int64) ([]float64, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: Poisson rate must be positive, got %g", ratePerSec)
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative event count %d", n)
	}
	p := NewPoissonProcess(ratePerSec, seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out, nil
}
