package workload

import (
	"fmt"
	"math"

	"serpentine/internal/rand48"
)

// PoissonArrivals returns n arrival times (seconds, ascending) of a
// Poisson process with the given mean rate (events per second),
// generated from the same lrand48 stream as everything else:
// exponential inter-arrival gaps by inversion. Online tertiary
// storage studies need an arrival process — batching trades response
// time against throughput, and that trade only exists under arrivals
// spread over time.
func PoissonArrivals(ratePerSec float64, n int, seed int64) ([]float64, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: Poisson rate must be positive, got %g", ratePerSec)
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative event count %d", n)
	}
	rng := rand48.New(seed)
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		u := rng.Drand48()
		for u == 0 {
			u = rng.Drand48()
		}
		t += -math.Log(u) / ratePerSec
		out[i] = t
	}
	return out, nil
}
