package workload

import (
	"testing"
	"testing/quick"
)

func checkBatch(t *testing.T, g Generator, n int) []int {
	t.Helper()
	b := g.Batch(n)
	if len(b) != n {
		t.Fatalf("%s: batch of %d has %d entries", g.Name(), n, len(b))
	}
	seen := make(map[int]bool, n)
	for _, v := range b {
		if v < 0 || v >= g.Segments() {
			t.Fatalf("%s: segment %d out of [0,%d)", g.Name(), v, g.Segments())
		}
		if seen[v] {
			t.Fatalf("%s: duplicate segment %d in batch", g.Name(), v)
		}
		seen[v] = true
	}
	return b
}

func TestUniformBatchProperties(t *testing.T) {
	g := NewUniform(622058, 1)
	for _, n := range []int{1, 2, 10, 2048} {
		checkBatch(t, g, n)
	}
}

func TestUniformDeterministicBySeed(t *testing.T) {
	a := NewUniform(1000, 7).Batch(100)
	b := NewUniform(1000, 7).Batch(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different batches")
		}
	}
	c := NewUniform(1000, 8).Batch(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 20 {
		t.Fatal("different seeds produced nearly identical batches")
	}
}

func TestUniformCoversSpace(t *testing.T) {
	g := NewUniform(100, 3)
	b := checkBatch(t, g, 100)
	_ = b // 100 distinct values in [0,100) is the full space
}

func TestUniformNext(t *testing.T) {
	g := NewUniform(500, 2)
	for i := 0; i < 100; i++ {
		if v := g.Next(); v < 0 || v >= 500 {
			t.Fatalf("Next() = %d", v)
		}
	}
}

func TestBatchPanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniform(10, 1).Batch(11)
}

func TestZipfSkewsPopularity(t *testing.T) {
	const total = 1 << 20
	const extent = 4096
	g := NewZipf(total, 5, 1.0, extent)
	counts := make(map[int]int)
	for i := 0; i < 200; i++ {
		for _, v := range g.Batch(64) {
			counts[v/extent]++
		}
	}
	// The hottest extent should hold far more than a uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := 200 * 64 / (total / extent)
	if max < 10*uniformShare {
		t.Fatalf("hottest extent drew %d, uniform share %d: not skewed", max, uniformShare)
	}
	checkBatch(t, g, 256)
}

func TestZipfExtentDefaultsAndClamps(t *testing.T) {
	g := NewZipf(1000, 1, 0.9, 0) // extent defaults, then clamps to total
	checkBatch(t, g, 50)
	g2 := NewZipf(100000, 2, 0.5, 1<<20)
	checkBatch(t, g2, 50)
}

func TestClusteredBatchesAreClumped(t *testing.T) {
	const total = 1 << 20
	g := NewClustered(total, 9, 8, 2048)
	b := checkBatch(t, g, 64)
	// Count pairs closer than the spread: a uniform batch of 64 over
	// a million segments would have nearly none.
	close := 0
	for i := range b {
		for j := i + 1; j < len(b); j++ {
			d := b[i] - b[j]
			if d < 0 {
				d = -d
			}
			if d < 2048 {
				close++
			}
		}
	}
	if close < 50 {
		t.Fatalf("only %d close pairs in a clustered batch", close)
	}
}

func TestClusteredStaysInRange(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		g := NewClustered(5000, seed, 4, 3000)
		n := int(rawN)%100 + 1
		for _, v := range g.Batch(n) {
			if v < 0 || v >= 5000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceReplaysInOrder(t *testing.T) {
	tr, err := NewTrace(100, []int{5, 9, 2, 9, 7, 1})
	if err != nil {
		t.Fatal(err)
	}
	b := tr.Batch(3)
	want := []int{5, 9, 2}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("trace batch = %v", b)
		}
	}
	// The duplicate 9 is skipped within a batch.
	b2 := tr.Batch(2)
	if b2[0] != 9 || b2[1] != 7 {
		t.Fatalf("second batch = %v", b2)
	}
	if tr.Remaining() != 1 {
		t.Fatalf("remaining = %d", tr.Remaining())
	}
}

func TestTraceValidatesEntries(t *testing.T) {
	if _, err := NewTrace(10, []int{3, 11}); err == nil {
		t.Fatal("out-of-range trace entry accepted")
	}
}

func TestTraceExhaustionPanics(t *testing.T) {
	tr, err := NewTrace(10, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	tr.Batch(2)
}

func TestGeneratorNames(t *testing.T) {
	if NewUniform(10, 1).Name() != "uniform" ||
		NewZipf(10, 1, 1, 2).Name() != "zipf" ||
		NewClustered(10, 1, 2, 2).Name() != "clustered" {
		t.Fatal("names wrong")
	}
	tr, _ := NewTrace(10, nil)
	if tr.Name() != "trace" || tr.Segments() != 10 {
		t.Fatal("trace accessors wrong")
	}
}
