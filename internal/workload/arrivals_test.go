package workload

import (
	"math"
	"testing"
)

func TestPoissonArrivalsStatistics(t *testing.T) {
	const rate = 0.05 // one request every 20 s on average
	const n = 20000
	arr, err := PoissonArrivals(rate, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != n {
		t.Fatalf("got %d arrivals", len(arr))
	}
	prev := 0.0
	var sum, sumSq float64
	for _, a := range arr {
		if a <= prev {
			t.Fatal("arrivals must be strictly increasing")
		}
		gap := a - prev
		sum += gap
		sumSq += gap * gap
		prev = a
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.03/rate {
		t.Fatalf("mean gap %.2f s, want ~%.2f", mean, 1/rate)
	}
	// Exponential gaps: stddev equals the mean.
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(sd-mean) > 0.05*mean {
		t.Fatalf("gap stddev %.2f, want ~mean %.2f (exponential)", sd, mean)
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a, err := PoissonArrivals(1, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonArrivals(1, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestPoissonArrivalsValidation(t *testing.T) {
	if _, err := PoissonArrivals(0, 5, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := PoissonArrivals(1, -1, 1); err == nil {
		t.Fatal("negative count accepted")
	}
	empty, err := PoissonArrivals(1, 0, 1)
	if err != nil || len(empty) != 0 {
		t.Fatal("zero count should yield an empty slice")
	}
}

func TestPoissonProcessMatchesBatch(t *testing.T) {
	batch, err := PoissonArrivals(0.02, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPoissonProcess(0.02, 9)
	for i, want := range batch {
		if got := p.Next(); got != want {
			t.Fatalf("event %d: stream %g, batch %g — draw sequences diverged", i, got, want)
		}
	}
	prev := 0.0
	for _, v := range batch {
		if v <= prev {
			t.Fatalf("arrival times not strictly ascending: %g after %g", v, prev)
		}
		prev = v
	}
}

func TestPoissonProcessRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoissonProcess accepted rate 0")
		}
	}()
	NewPoissonProcess(0, 1)
}
