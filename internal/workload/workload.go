// Package workload generates the request sets the experiments
// schedule. The paper's simulation study (Section 5) draws uniformly
// distributed segment numbers from lrand48; the uniform generator
// reproduces that exactly. Zipf and clustered generators extend the
// study to the skewed reference patterns real database workloads
// exhibit, where structure-aware schedulers behave differently.
package workload

import (
	"fmt"
	"math"
	"sort"

	"serpentine/internal/rand48"
)

// Generator produces batches of distinct segment numbers in
// [0, Segments).
type Generator interface {
	// Name identifies the distribution in experiment output.
	Name() string
	// Batch returns n distinct segment numbers. It panics if n
	// exceeds the tape's segment count.
	Batch(n int) []int
	// Segments returns the address-space size.
	Segments() int
}

// distinct draws values from pick() until n distinct ones have been
// collected.
func distinct(n, total int, pick func() int) []int {
	if n > total {
		panic(fmt.Sprintf("workload: batch of %d exceeds %d segments", n, total))
	}
	seen := make(map[int]struct{}, n)
	out := make([]int, 0, n)
	for len(out) < n {
		v := pick()
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Uniform draws segments uniformly at random, the paper's workload:
// "pseudorandomly generated segment numbers range from 0 to 622057".
type Uniform struct {
	rng   *rand48.Source
	total int
}

// NewUniform returns a uniform generator over total segments, seeded
// exactly as the paper seeds lrand48.
func NewUniform(total int, seed int64) *Uniform {
	return &Uniform{rng: rand48.New(seed), total: total}
}

// Name returns "uniform".
func (u *Uniform) Name() string { return "uniform" }

// Segments returns the address-space size.
func (u *Uniform) Segments() int { return u.total }

// Batch returns n distinct uniform segment numbers.
func (u *Uniform) Batch(n int) []int {
	return distinct(n, u.total, func() int { return u.rng.Intn(u.total) })
}

// Next returns one segment number, for callers that also need the
// initial head position (the paper's sets are 1+N numbers, the first
// being the head position).
func (u *Uniform) Next() int { return u.rng.Intn(u.total) }

// Zipf draws segments with a Zipf-distributed popularity over
// scattered fixed-size extents, modeling a database where some
// relations are much hotter than others. Skew 0 degenerates to
// uniform; the classic "80/20" shape is near skew 0.86.
type Zipf struct {
	rng    *rand48.Source
	total  int
	extent int
	cum    []float64 // cumulative extent probabilities
	perm   []int     // extent placement on tape
}

// NewZipf returns a Zipf generator with the given skew (s > 0) over
// extents of the given size in segments (0 selects 4096). Extent
// popularity ranks are scattered across the tape so that hot data is
// not all physically adjacent.
func NewZipf(total int, seed int64, skew float64, extent int) *Zipf {
	if extent <= 0 {
		extent = 4096
	}
	if extent > total {
		extent = total
	}
	rng := rand48.New(seed)
	n := (total + extent - 1) / extent
	cum := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &Zipf{rng: rng, total: total, extent: extent, cum: cum, perm: rng.Perm(n)}
}

// Name returns "zipf".
func (z *Zipf) Name() string { return "zipf" }

// Segments returns the address-space size.
func (z *Zipf) Segments() int { return z.total }

// Batch returns n distinct Zipf-popular segment numbers.
func (z *Zipf) Batch(n int) []int {
	return distinct(n, z.total, func() int {
		u := z.rng.Drand48()
		rank := sort.SearchFloat64s(z.cum, u)
		if rank >= len(z.perm) {
			rank = len(z.perm) - 1
		}
		ext := z.perm[rank]
		lo := ext * z.extent
		width := z.extent
		if lo+width > z.total {
			width = z.total - lo
		}
		return lo + z.rng.Intn(width)
	})
}

// Clustered draws segments in bursts around random cluster centers,
// modeling correlated retrievals (a query touching one relation pulls
// many nearby chunks).
type Clustered struct {
	rng      *rand48.Source
	total    int
	perBurst int
	spread   int
}

// NewClustered returns a clustered generator: batches are built from
// bursts of perBurst requests (0 selects 8) spread across a window of
// spread segments (0 selects 2048) around each uniformly chosen
// center.
func NewClustered(total int, seed int64, perBurst, spread int) *Clustered {
	if perBurst <= 0 {
		perBurst = 8
	}
	if spread <= 0 {
		spread = 2048
	}
	return &Clustered{rng: rand48.New(seed), total: total, perBurst: perBurst, spread: spread}
}

// Name returns "clustered".
func (c *Clustered) Name() string { return "clustered" }

// Segments returns the address-space size.
func (c *Clustered) Segments() int { return c.total }

// Batch returns n distinct clustered segment numbers.
func (c *Clustered) Batch(n int) []int {
	center := c.rng.Intn(c.total)
	left := 0
	return distinct(n, c.total, func() int {
		if left == 0 {
			center = c.rng.Intn(c.total)
			left = c.perBurst
		}
		left--
		v := center + c.rng.Intn(c.spread) - c.spread/2
		if v < 0 {
			v = -v
		}
		if v >= c.total {
			v = 2*c.total - 2 - v
		}
		if v < 0 || v >= c.total {
			v = c.rng.Intn(c.total)
		}
		return v
	})
}

// Trace replays a fixed request list in batches, for reproducing
// recorded workloads.
type Trace struct {
	total int
	segs  []int
	pos   int
}

// NewTrace returns a generator that serves successive windows of the
// given request list. Requests must lie in [0, total).
func NewTrace(total int, segs []int) (*Trace, error) {
	for i, s := range segs {
		if s < 0 || s >= total {
			return nil, fmt.Errorf("workload: trace entry %d (segment %d) out of range [0,%d)", i, s, total)
		}
	}
	return &Trace{total: total, segs: segs}, nil
}

// Name returns "trace".
func (t *Trace) Name() string { return "trace" }

// Segments returns the address-space size.
func (t *Trace) Segments() int { return t.total }

// Remaining returns the number of unserved trace entries.
func (t *Trace) Remaining() int { return len(t.segs) - t.pos }

// Batch returns the next n trace entries (deduplicated within the
// batch; duplicates are skipped). It panics when the trace is
// exhausted before n entries are found.
func (t *Trace) Batch(n int) []int {
	seen := make(map[int]struct{}, n)
	out := make([]int, 0, n)
	for len(out) < n {
		if t.pos >= len(t.segs) {
			panic("workload: trace exhausted")
		}
		v := t.segs[t.pos]
		t.pos++
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
