package locate

import (
	"fmt"

	"serpentine/internal/geometry"
)

// Explanation is a human-readable decomposition of one locate
// estimate: which of the paper's cases applies and how the time
// breaks down into track switch, reversals, scan and read-approach
// components. The tapesched -explain flag prints these.
type Explanation struct {
	Src, Dst geometry.Placement
	Maneuver Maneuver

	// Component times in seconds; Total is their sum and equals
	// LocateTime(src, dst).
	SwitchSec   float64
	ReverseSec  float64
	OverheadSec float64
	ScanSec     float64
	ReadSec     float64
	Total       float64
}

// Explain decomposes the locate from src to dst.
func (m *Model) Explain(src, dst int) Explanation {
	e := Explanation{
		Src:      m.view.Place(src),
		Dst:      m.view.Place(dst),
		Maneuver: m.Maneuver(src, dst),
	}
	mo := e.Maneuver
	switch mo.Case {
	case CaseNone:
	case Case1:
		e.ReadSec = m.p.ReadSecPerSection * mo.ReadSections
	default:
		e.OverheadSec = m.p.OverheadSec
		e.ReverseSec = float64(mo.Reversals) * m.p.ReverseSec
		e.ScanSec = m.p.ScanSecPerSection * mo.ScanSections
		e.ReadSec = m.p.ReadSecPerSection * mo.ReadSections
		if mo.TrackSwap {
			e.SwitchSec = m.p.TrackSwitchSec
		}
	}
	e.Total = e.SwitchSec + e.ReverseSec + e.OverheadSec + e.ScanSec + e.ReadSec
	return e
}

// String renders the explanation on one line, in the vocabulary of
// the paper's Section 3.
func (e Explanation) String() string {
	if e.Maneuver.Case == CaseNone {
		return fmt.Sprintf("segment %d: head already positioned", e.Dst.LBN)
	}
	if e.Maneuver.Case == Case1 {
		return fmt.Sprintf(
			"%d->%d [case1]: read forward %.2f sections on track %d: %.1fs",
			e.Src.LBN, e.Dst.LBN, e.Maneuver.ReadSections, e.Dst.Track, e.Total)
	}
	swap := "same track"
	if e.Maneuver.TrackSwap {
		swap = fmt.Sprintf("switch track %d->%d (%.1fs)", e.Src.Track, e.Dst.Track, e.SwitchSec)
	}
	return fmt.Sprintf(
		"%d->%d [%s]: %s, %d reversal(s) (%.1fs), scan %.2f sections (%.1fs), read %.2f sections (%.1fs), overhead %.1fs: %.1fs",
		e.Src.LBN, e.Dst.LBN, e.Maneuver.Case, swap,
		e.Maneuver.Reversals, e.ReverseSec,
		e.Maneuver.ScanSections, e.ScanSec,
		e.Maneuver.ReadSections, e.ReadSec,
		e.OverheadSec, e.Total)
}
