package locate

import (
	"math"
	"strings"
	"testing"

	"serpentine/internal/rand48"
)

// Explanations must account for exactly the estimated time, over the
// whole input space.
func TestExplainSumsToLocateTime(t *testing.T) {
	_, m := dltModel(t, 1)
	rng := rand48.New(17)
	for i := 0; i < 2000; i++ {
		src := rng.Intn(m.Segments())
		dst := rng.Intn(m.Segments())
		e := m.Explain(src, dst)
		if math.Abs(e.Total-m.LocateTime(src, dst)) > 1e-9 {
			t.Fatalf("Explain(%d,%d) total %.6f != LocateTime %.6f", src, dst, e.Total, m.LocateTime(src, dst))
		}
		if e.Maneuver.Case != m.Classify(src, dst) {
			t.Fatalf("Explain case %v != Classify %v", e.Maneuver.Case, m.Classify(src, dst))
		}
	}
}

func TestExplainStrings(t *testing.T) {
	tape, m := dltModel(t, 1)
	v := tape.View()

	same := m.Explain(100, 100)
	if !strings.Contains(same.String(), "already positioned") {
		t.Fatalf("same-segment explanation: %s", same)
	}

	fwd := m.Explain(100, 200)
	if !strings.Contains(fwd.String(), "case1") || !strings.Contains(fwd.String(), "read forward") {
		t.Fatalf("case-1 explanation: %s", fwd)
	}

	far := m.Explain(100, v.Track(40).StartLBN()+500)
	s := far.String()
	for _, want := range []string{"switch track", "scan", "reversal", "overhead"} {
		if !strings.Contains(s, want) {
			t.Fatalf("long-locate explanation missing %q: %s", want, s)
		}
	}
}
