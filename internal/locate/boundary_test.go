package locate

import (
	"testing"

	"serpentine/internal/geometry"
)

// Exhaustive sweep of every (src, dst) pair on the small geometry:
// the model must be a total, bounded, non-negative function with a
// valid case classification everywhere — including both tape ends,
// both directions, and the short final sections.
func TestExhaustiveTinyGeometry(t *testing.T) {
	tape := geometry.MustGenerate(geometry.Tiny(), 1)
	m, err := FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	n := m.Segments()
	p := tape.Params()
	// The Tiny tape is ~5 sections per track; an upper bound on any
	// locate is a full-length scan plus two sections of read plus
	// all the fixed costs.
	maxLocate := p.ScanSecPerSection*float64(p.SectionsPerTrack+2) +
		p.ReadSecPerSection*3 + p.TrackSwitchSec + 2*p.ReverseSec + p.OverheadSec
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			lt := m.LocateTime(src, dst)
			if lt < 0 || lt > maxLocate {
				t.Fatalf("LocateTime(%d,%d) = %g out of [0,%g]", src, dst, lt, maxLocate)
			}
			c := m.Classify(src, dst)
			if src == dst {
				if c != CaseNone || lt != 0 {
					t.Fatalf("(%d,%d): same segment misclassified (%v, %g)", src, dst, c, lt)
				}
				continue
			}
			if c < Case1 || c > Case7 {
				t.Fatalf("Classify(%d,%d) = %v", src, dst, c)
			}
		}
	}
}

// The extremes of the full DLT4000 layout: the four corners of the
// address space and the boundaries of every track must all be
// reachable from each other without panics or out-of-range times.
func TestDLTBoundarySegments(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 1)
	m, err := FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	v := tape.View()
	var extremes []int
	for tr := 0; tr < v.Tracks(); tr++ {
		tv := v.Track(tr)
		extremes = append(extremes, tv.StartLBN(), tv.EndLBN()-1)
	}
	extremes = append(extremes, 0, m.Segments()-1)
	for _, src := range extremes {
		for _, dst := range extremes {
			lt := m.LocateTime(src, dst)
			if lt < 0 || lt > 185 {
				t.Fatalf("LocateTime(%d,%d) = %g out of range", src, dst, lt)
			}
			if m.ReadTime(dst) <= 0 {
				t.Fatalf("ReadTime(%d) not positive", dst)
			}
			if m.RewindTime(src) < 0 {
				t.Fatalf("RewindTime(%d) negative", src)
			}
		}
	}
}

// The short final physical section (section 13) must behave like any
// other section: its segments are placeable, locatable, and its
// boundaries classify correctly.
func TestShortSectionBehaviour(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 1)
	m, err := FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	v := tape.View()
	p := tape.Params()
	for _, tr := range []int{0, 1, 63} {
		tv := v.Track(tr)
		// The short physical section is the last physical one: the
		// last logical section on forward tracks, the first on
		// reverse tracks.
		l := tv.Sections() - 1
		if tv.Dir == geometry.Reverse {
			l = 0
		}
		count := tv.SectionCount(l)
		if count >= p.SegmentsPerSection {
			t.Fatalf("track %d: short section has %d segments", tr, count)
		}
		start := tv.BoundLBN[l]
		end := tv.BoundLBN[l+1] - 1
		for _, lbn := range []int{start, (start + end) / 2, end} {
			pl := v.Place(lbn)
			if pl.PhysSection != p.SectionsPerTrack-1 {
				t.Fatalf("track %d segment %d: physical section %d, want %d",
					tr, lbn, pl.PhysSection, p.SectionsPerTrack-1)
			}
			if lt := m.LocateTime(0, lbn); lt < 0 || lt > 185 {
				t.Fatalf("locate to short section = %g", lt)
			}
		}
	}
}

// Track 63 (the final reverse track) reads toward the beginning of
// tape: its last segment is physically near BOT, so rewinding from it
// is nearly free — the structural fact that makes READ's trailing
// rewind cheap.
func TestFinalTrackEndsNearBOT(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 1)
	m, err := FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	last := m.Segments() - 1
	if pos := tape.View().Place(last).Pos; pos > 0.1 {
		t.Fatalf("last segment at physical position %.3f, want ~0", pos)
	}
	if rw := m.RewindTime(last); rw > 10 {
		t.Fatalf("rewind from last segment = %.1f s, want nearly free", rw)
	}
}
