package locate

import (
	"fmt"

	"serpentine/internal/geometry"
)

// Cost is the estimator interface the scheduling algorithms consume.
// *Model implements it; the Perturbed decorator implements it with
// injected error for the paper's sensitivity study (Figure 10).
type Cost interface {
	// LocateTime estimates the positioning time from the reading
	// start of src to the reading start of dst, in seconds.
	LocateTime(src, dst int) float64
	// ReadTime estimates the transfer time of one segment.
	ReadTime(lbn int) float64
	// FullReadTime estimates a sequential whole-tape pass plus the
	// trailing rewind.
	FullReadTime() float64
	// View exposes the geometry for structure-aware algorithms
	// (SLTF, SCAN, WEAVE bucket requests by section).
	View() *geometry.View
	// Segments returns the number of addressable segments.
	Segments() int
}

// Breakdown itemizes an estimated schedule execution.
type Breakdown struct {
	// Locate is the total positioning time.
	Locate float64
	// Read is the total transfer time.
	Read float64
	// MaxLocate is the longest single locate in the schedule.
	MaxLocate float64
	// Locates is the number of locate operations performed (one per
	// scheduled request).
	Locates int
}

// Total is the estimated schedule execution time.
func (b Breakdown) Total() float64 { return b.Locate + b.Read }

// PerLocate is the mean time per locate, the paper's Figure 4/5
// metric: total schedule execution time divided by the number of
// requests.
func (b Breakdown) PerLocate() float64 {
	if b.Locates == 0 {
		return 0
	}
	return b.Total() / float64(b.Locates)
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fs locate=%.1fs read=%.1fs n=%d per-locate=%.2fs",
		b.Total(), b.Locate, b.Read, b.Locates, b.PerLocate())
}

// HeadAfterRead returns the head position (as a segment number) after
// reading segment lbn: the reading start of the next segment, or lbn
// itself at the very end of the tape.
func HeadAfterRead(c Cost, lbn int) int {
	if lbn+1 < c.Segments() {
		return lbn + 1
	}
	return lbn
}

// EstimateSchedule evaluates the execution of a schedule: starting
// with the head at the reading start of segment start, locate to and
// read each segment of order in turn. This is the paper's essential
// scheduling ingredient: "numerous possible rearrangements of a list
// of desired segments can be evaluated to predict which ordering will
// execute most quickly."
func EstimateSchedule(c Cost, start int, order []int) Breakdown {
	var b Breakdown
	head := start
	for _, d := range order {
		lt := c.LocateTime(head, d)
		b.Locate += lt
		if lt > b.MaxLocate {
			b.MaxLocate = lt
		}
		b.Read += c.ReadTime(d)
		b.Locates++
		head = HeadAfterRead(c, d)
	}
	return b
}

// FinalHead returns the head position after executing a schedule, for
// chaining batches (the paper's random-starting-point scenario: "at
// the beginning of each schedule execution the tape head is in the
// position of the last read in the previous batch").
func FinalHead(c Cost, start int, order []int) int {
	if len(order) == 0 {
		return start
	}
	return HeadAfterRead(c, order[len(order)-1])
}

// Perturbed decorates a Cost with the systematic error of the paper's
// Figure 10 sensitivity experiment: locate times are returned E
// seconds high when the destination segment number is even and E
// seconds low when it is odd (never below zero). The average injected
// error is zero, but a greedy scheduler can be led astray edge by
// edge.
type Perturbed struct {
	// Base is the unperturbed estimator.
	Base Cost
	// E is the injected error magnitude in seconds.
	E float64
}

// LocateTime implements Cost with the alternating-sign error.
func (p *Perturbed) LocateTime(src, dst int) float64 {
	t := p.Base.LocateTime(src, dst)
	if dst%2 == 0 {
		t += p.E
	} else {
		t -= p.E
	}
	if t < 0 {
		t = 0
	}
	return t
}

// ReadTime delegates to the base estimator.
func (p *Perturbed) ReadTime(lbn int) float64 { return p.Base.ReadTime(lbn) }

// FullReadTime delegates to the base estimator.
func (p *Perturbed) FullReadTime() float64 { return p.Base.FullReadTime() }

// View delegates to the base estimator.
func (p *Perturbed) View() *geometry.View { return p.Base.View() }

// Segments delegates to the base estimator.
func (p *Perturbed) Segments() int { return p.Base.Segments() }
