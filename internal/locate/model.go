// Package locate implements the Hillyer-Silberschatz locate-time
// model for serpentine tape (SIGMOD 1996, Section 3; details in the
// companion Sigmetrics paper [HS96]).
//
// The model answers one question: starting with the head positioned
// at the reading start of segment src, how long does the drive take
// to position to the reading start of segment dst? The answer is a
// discontinuous, non-monotonic, piecewise-linear function of the two
// segments' physical placements, built from three motions:
//
//   - a track switch (head step) when src and dst are on different
//     tracks;
//   - a scan at the fast transport speed from the head's physical
//     position to the landing key point: the key point two before dst
//     in reading order (the beginning of the track when dst lies in
//     the first two reading-order sections), with a fixed penalty for
//     each time the transport must reverse its physical direction;
//   - a read-speed approach from the landing key point forward to
//     dst, covering between one and two sections.
//
// The single exception is short forward motion: when dst is on the
// same track, ahead of src, and within the same or the following two
// reading-order sections, the drive simply reads forward (case 1).
//
// This construction reproduces the paper's seven qualitative cases
// (see Case and Classify) and its aggregate statistics: a maximum
// locate of ~180 s, a mean of ~96.5 s from the beginning of tape to a
// random segment, ~72.4 s between two random segments, a ~25 s
// peak-to-dip drop at section boundaries of reverse tracks and ~5 s
// in forward tracks, and a ~14,000 s full-tape read.
package locate

import (
	"fmt"
	"math"

	"serpentine/internal/geometry"
)

// Model evaluates locate times over a reading-order geometry. Build
// it from a tape's true view (the emulated drive's ground truth) or
// from a characterized key-point table (the host's estimate).
//
// A Model is immutable and safe for concurrent use.
//
// Construction precomputes per-segment physical positions and
// per-section key-point data, so LocateTime and ReadTime are
// table-driven O(1) lookups with no placement searches or piecewise
// decomposition per call. The tables cost about 10 bytes per segment
// (~7 MB for a DLT4000 cartridge). The original decomposition is
// retained for Classify, Maneuver and the Reference estimator the
// equivalence tests compare against.
type Model struct {
	view *geometry.View
	p    geometry.Params

	// pos[lbn] is the physical tape position of segment lbn, exactly
	// as View.Place computes it.
	pos []float64
	// secOf[lbn] indexes secs: track*SectionsPerTrack + logical
	// section.
	secOf []int32
	// secs holds the per-(track, logical section) constants of the
	// locate decomposition.
	secs []secInfo
}

// secInfo is the per-section data the fast path needs: everything in
// the piecewise decomposition that does not depend on the exact
// segment within the section.
type secInfo struct {
	track   int32
	section int32
	// dir is +1 for forward tracks, -1 for reverse, matching dirSign.
	dir float64
	// landing is the physical position of the landing key point for
	// destinations in this section: two section boundaries before the
	// destination in reading order, or the beginning of the track for
	// the first two reading-order sections.
	landing float64
	// readTime is the transfer time of any segment in this section.
	readTime float64
}

// NewModel returns a model over the given geometry.
func NewModel(view *geometry.View) *Model {
	m := &Model{view: view, p: view.Params()}
	m.buildTables()
	return m
}

// buildTables precomputes the fast-path lookup tables. Every float is
// produced by the same expression the reference path evaluates, so
// the fast path is bit-for-bit identical to it.
func (m *Model) buildTables() {
	spt := m.p.SectionsPerTrack
	m.pos = make([]float64, m.view.Segments())
	m.secOf = make([]int32, m.view.Segments())
	m.secs = make([]secInfo, m.view.Tracks()*spt)
	for t := 0; t < m.view.Tracks(); t++ {
		tv := m.view.Track(t)
		for l := 0; l < tv.Sections(); l++ {
			idx := t*spt + l
			si := &m.secs[idx]
			si.track = int32(t)
			si.section = int32(l)
			si.dir = dirSign(tv.Dir)
			if l <= 1 {
				si.landing = tv.BoundPos[0]
			} else {
				si.landing = tv.BoundPos[l-1]
			}
			count := tv.SectionCount(l)
			span := math.Abs(tv.BoundPos[l+1] - tv.BoundPos[l])
			si.readTime = m.p.ReadSecPerSection * span / float64(count)
			for lbn := tv.BoundLBN[l]; lbn < tv.BoundLBN[l+1]; lbn++ {
				frac := (float64(lbn-tv.BoundLBN[l]) + 0.5) / float64(count)
				m.pos[lbn] = tv.BoundPos[l] + frac*(tv.BoundPos[l+1]-tv.BoundPos[l])
				m.secOf[lbn] = int32(idx)
			}
		}
	}
}

// FromKeyPoints builds the host-side model for a characterized tape.
func FromKeyPoints(kp *geometry.KeyPointTable) (*Model, error) {
	v, err := kp.View()
	if err != nil {
		return nil, err
	}
	return NewModel(v), nil
}

// View returns the geometry the model evaluates over.
func (m *Model) View() *geometry.View { return m.view }

// Segments returns the number of segments addressable on the tape.
func (m *Model) Segments() int { return m.view.Segments() }

// Case identifies which of the paper's locate-time cases applies to a
// (src, dst) pair. Cases 1-7 follow the numbering in Section 3 of the
// paper; CaseNone is src == dst.
type Case int

const (
	// CaseNone: destination equals source; no motion.
	CaseNone Case = iota
	// Case1: same track, same or one of the following two sections:
	// read forward.
	Case1
	// Case2: more than one section forward in the same or a
	// co-directional track: scan forward to the key point two before
	// the destination, then read forward.
	Case2
	// Case3: backwards in the same or a co-directional track (not
	// into the first two sections), or forwards up to one section in
	// a co-directional track: scan backward to the key point two
	// before the destination, then read forward.
	Case3
	// Case4: backwards in the same or a co-directional track into
	// the first or second section: scan backward to the beginning of
	// the track, then read forward.
	Case4
	// Case5: anti-directional track, landing reached by proceeding
	// forward (in the destination track's reading order) two or more
	// sections: scan forward to the key point two before the
	// destination, then read forward.
	Case5
	// Case6: anti-directional track, destination zero or one section
	// forward, or backward but not into the first two sections: scan
	// backward to the key point two before the destination, then
	// read forward.
	Case6
	// Case7: anti-directional track, destination in the first or
	// second section: scan backward to the beginning of the track,
	// then read forward.
	Case7
)

// String names the case as in the paper.
func (c Case) String() string {
	if c == CaseNone {
		return "none"
	}
	if c >= Case1 && c <= Case7 {
		return fmt.Sprintf("case%d", int(c))
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// motion is the decomposed locate maneuver shared by the estimator
// and the classifier.
type motion struct {
	c          Case
	trackSwap  bool
	reversals  int
	scanDist   float64 // section units at scan speed
	readDist   float64 // section units at read speed
	landingPos float64
}

func dirSign(d geometry.Direction) float64 {
	if d == geometry.Forward {
		return 1
	}
	return -1
}

// decompose computes the maneuver from src to dst. Callers guarantee
// src != dst.
func (m *Model) decompose(sp, dp geometry.Placement) motion {
	tv := m.view.Track(dp.Track)

	// Case 1: read forward on the same track.
	if sp.Track == dp.Track && dp.LBN > sp.LBN && dp.Section <= sp.Section+2 {
		return motion{
			c:        Case1,
			readDist: math.Abs(dp.Pos - sp.Pos),
		}
	}

	// Landing key point: two before the destination in reading
	// order; the beginning of the track when the destination is in
	// the first two reading-order sections.
	var landing float64
	toTrackStart := dp.Section <= 1
	if toTrackStart {
		landing = tv.BoundPos[0]
	} else {
		landing = tv.BoundPos[dp.Section-1]
	}

	mo := motion{
		trackSwap:  sp.Track != dp.Track,
		scanDist:   math.Abs(landing - sp.Pos),
		readDist:   math.Abs(dp.Pos - landing),
		landingPos: landing,
	}

	// Reversal accounting: the head was moving in the source
	// track's reading direction; it must end up moving in the
	// destination track's reading direction; in between it scans
	// toward the landing point.
	const eps = 1e-12
	scanDir := dirSign(sp.Dir)
	if mo.scanDist > eps {
		if landing > sp.Pos {
			scanDir = 1
		} else {
			scanDir = -1
		}
	}
	if scanDir != dirSign(sp.Dir) {
		mo.reversals++
	}
	if dirSign(dp.Dir) != scanDir {
		mo.reversals++
	}

	// Classification per the paper's wording: the scan direction is
	// named relative to the destination track's reading order.
	co := sp.Dir == dp.Dir
	scanForward := scanDir == dirSign(dp.Dir)
	switch {
	case toTrackStart && co:
		mo.c = Case4
	case toTrackStart:
		mo.c = Case7
	case scanForward && co:
		mo.c = Case2
	case scanForward:
		mo.c = Case5
	case co:
		mo.c = Case3
	default:
		mo.c = Case6
	}
	return mo
}

// Classify returns which of the paper's cases governs the locate from
// src to dst.
func (m *Model) Classify(src, dst int) Case {
	if src == dst {
		return CaseNone
	}
	return m.decompose(m.view.Place(src), m.view.Place(dst)).c
}

// Maneuver describes the decomposed motion of a locate: which case
// applies and how far the transport scans and reads. The drive
// emulator uses it to shape its deviations from the model.
type Maneuver struct {
	// Case is the paper's case number.
	Case Case
	// TrackSwap reports whether the head changes tracks.
	TrackSwap bool
	// Reversals counts physical direction changes.
	Reversals int
	// ScanSections and ReadSections are the distances covered at
	// each speed, in section units.
	ScanSections float64
	ReadSections float64
}

// Maneuver decomposes the locate from src to dst.
func (m *Model) Maneuver(src, dst int) Maneuver {
	if src == dst {
		return Maneuver{Case: CaseNone}
	}
	mo := m.decompose(m.view.Place(src), m.view.Place(dst))
	return Maneuver{
		Case:         mo.c,
		TrackSwap:    mo.trackSwap,
		Reversals:    mo.reversals,
		ScanSections: mo.scanDist,
		ReadSections: mo.readDist,
	}
}

// LocateTime returns the modeled time, in seconds, to position the
// head from the reading start of segment src to the reading start of
// segment dst. LocateTime(x, x) is 0: the head is already there.
//
// The function is asymmetric: LocateTime(x, y) typically differs from
// LocateTime(y, x) by tens of seconds, as the paper reports.
//
// This is the table-driven fast path; it evaluates the same piecewise
// expression as the decomposition (see referenceLocateTime) from the
// precomputed tables, bit-for-bit.
func (m *Model) LocateTime(src, dst int) float64 {
	if src == dst {
		return 0
	}
	ss := &m.secs[m.secOf[src]]
	ds := &m.secs[m.secOf[dst]]
	sp, dp := m.pos[src], m.pos[dst]

	// Case 1: read forward on the same track.
	if ss.track == ds.track && dst > src && ds.section <= ss.section+2 {
		return m.p.ReadSecPerSection * math.Abs(dp-sp)
	}

	landing := ds.landing
	scanDist := math.Abs(landing - sp)
	readDist := math.Abs(dp - landing)

	const eps = 1e-12
	scanDir := ss.dir
	if scanDist > eps {
		if landing > sp {
			scanDir = 1
		} else {
			scanDir = -1
		}
	}
	var reversals float64
	if scanDir != ss.dir {
		reversals++
	}
	if ds.dir != scanDir {
		reversals++
	}
	t := m.p.OverheadSec +
		reversals*m.p.ReverseSec +
		m.p.ScanSecPerSection*scanDist +
		m.p.ReadSecPerSection*readDist
	if ss.track != ds.track {
		t += m.p.TrackSwitchSec
	}
	return t
}

// referenceLocateTime evaluates the locate time through the original
// piecewise decomposition. The equivalence tests assert it agrees
// bit-for-bit with the table-driven LocateTime on every pair they
// probe.
func (m *Model) referenceLocateTime(src, dst int) float64 {
	if src == dst {
		return 0
	}
	mo := m.decompose(m.view.Place(src), m.view.Place(dst))
	if mo.c == Case1 {
		return m.p.ReadSecPerSection * mo.readDist
	}
	t := m.p.OverheadSec +
		float64(mo.reversals)*m.p.ReverseSec +
		m.p.ScanSecPerSection*mo.scanDist +
		m.p.ReadSecPerSection*mo.readDist
	if mo.trackSwap {
		t += m.p.TrackSwitchSec
	}
	return t
}

// ReadTime returns the time, in seconds, to read segment lbn once the
// head is positioned at its reading start (the physical span of the
// segment at read speed; ~22 ms for a 32 KB DLT4000 segment,
// equivalent to the 1.5 MB/s sustained rate).
func (m *Model) ReadTime(lbn int) float64 {
	return m.secs[m.secOf[lbn]].readTime
}

// referenceReadTime recomputes ReadTime from the geometry.
func (m *Model) referenceReadTime(lbn int) float64 {
	p := m.view.Place(lbn)
	tv := m.view.Track(p.Track)
	span := math.Abs(tv.BoundPos[p.Section+1] - tv.BoundPos[p.Section])
	count := tv.SectionCount(p.Section)
	return m.p.ReadSecPerSection * span / float64(count)
}

// RewindTime returns the time to rewind from the reading start of
// segment lbn to the physical beginning of tape. Single-reel
// cartridges must rewind to eject, so batch executions on a robot end
// with one of these.
func (m *Model) RewindTime(lbn int) float64 {
	t := m.p.OverheadSec + m.p.ScanSecPerSection*m.pos[lbn]
	if m.secs[m.secOf[lbn]].dir > 0 {
		// The head was moving away from the beginning of tape.
		t += m.p.ReverseSec
	}
	return t
}

// FullReadTime returns the time to read the entire tape sequentially
// from the beginning: every track at read speed plus the track
// switches. The head finishes at the reading end of the last track
// (the physical beginning of tape when the track count is even, so
// the trailing rewind is nearly free).
func (m *Model) FullReadTime() float64 {
	total := 0.0
	for t := 0; t < m.view.Tracks(); t++ {
		tv := m.view.Track(t)
		s := tv.Sections()
		total += math.Abs(tv.BoundPos[s]-tv.BoundPos[0]) * m.p.ReadSecPerSection
		if t > 0 {
			total += m.p.TrackSwitchSec
		}
	}
	// Rewind from wherever the last track ends.
	last := m.view.Track(m.view.Tracks() - 1)
	endPos := last.BoundPos[last.Sections()]
	total += m.p.OverheadSec + m.p.ScanSecPerSection*endPos
	return total
}
