package locate

import (
	"testing"

	"serpentine/internal/geometry"
	"serpentine/internal/rand48"
)

// benchTapes builds the two cartridges the repo's benchmarks use: the
// model-development tape (serial 1, no personality) and a second
// cartridge (serial 2).
func benchTapes(t testing.TB) []*Model {
	t.Helper()
	pa := geometry.DLT4000()
	pa.PersonalityFrac = 0
	tapeA := geometry.MustGenerate(pa, 1)
	tapeB := geometry.MustGenerate(geometry.DLT4000(), 2)
	var models []*Model
	for _, tape := range []*geometry.Tape{tapeA, tapeB} {
		m, err := FromKeyPoints(tape.KeyPoints())
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	return models
}

// probeSegments returns a deterministic segment sample that hits every
// discontinuity of the locate function: each section boundary and its
// neighbors, plus a pseudorandom scattering.
func probeSegments(m *Model, extra int, seed int64) []int {
	seen := make(map[int]bool)
	var probes []int
	add := func(lbn int) {
		if lbn >= 0 && lbn < m.Segments() && !seen[lbn] {
			seen[lbn] = true
			probes = append(probes, lbn)
		}
	}
	v := m.View()
	for t := 0; t < v.Tracks(); t++ {
		tv := v.Track(t)
		for _, b := range tv.BoundLBN {
			add(b - 1)
			add(b)
			add(b + 1)
		}
	}
	rng := rand48.New(seed)
	for i := 0; i < extra; i++ {
		add(rng.Intn(m.Segments()))
	}
	return probes
}

// TestFastPathEquivalence proves the table-driven LocateTime, ReadTime
// and RewindTime agree bit-for-bit with the original piecewise
// decomposition on both bench tapes: exhaustively over all pairs of
// boundary-adjacent segments, and on a random sample.
func TestFastPathEquivalence(t *testing.T) {
	for ti, m := range benchTapes(t) {
		probes := probeSegments(m, 500, int64(ti)+3)
		t.Logf("tape %d: %d probe segments, %d pairs", ti, len(probes), len(probes)*len(probes))
		for _, src := range probes {
			for _, dst := range probes {
				got := m.LocateTime(src, dst)
				want := m.referenceLocateTime(src, dst)
				if got != want {
					t.Fatalf("tape %d: LocateTime(%d, %d) = %v, reference %v", ti, src, dst, got, want)
				}
			}
		}
		for _, lbn := range probes {
			if got, want := m.ReadTime(lbn), m.referenceReadTime(lbn); got != want {
				t.Fatalf("tape %d: ReadTime(%d) = %v, reference %v", ti, lbn, got, want)
			}
			p := m.View().Place(lbn)
			want := m.p.OverheadSec + m.p.ScanSecPerSection*p.Pos
			if p.Dir == geometry.Forward {
				want += m.p.ReverseSec
			}
			if got := m.RewindTime(lbn); got != want {
				t.Fatalf("tape %d: RewindTime(%d) = %v, reference %v", ti, lbn, got, want)
			}
		}
	}
}

// TestCostMatrixEquivalence proves the batched fill produces exactly
// LocateTime for every (src, dst) pair, including duplicates and the
// diagonal, on both bench tapes.
func TestCostMatrixEquivalence(t *testing.T) {
	for ti, m := range benchTapes(t) {
		rng := rand48.New(int64(ti) + 11)
		srcs := make([]int, 64)
		dsts := make([]int, 128)
		for i := range srcs {
			srcs[i] = rng.Intn(m.Segments())
		}
		for j := range dsts {
			dsts[j] = rng.Intn(m.Segments())
		}
		dsts[0] = srcs[0] // force a diagonal hit
		dsts[1] = dsts[2] // and a duplicate destination
		buf := make([]float64, len(srcs)*len(dsts))
		m.CostMatrix(buf, srcs, dsts)
		for i, s := range srcs {
			for j, d := range dsts {
				if got, want := buf[i*len(dsts)+j], m.LocateTime(s, d); got != want {
					t.Fatalf("tape %d: CostMatrix[%d,%d] = %v, LocateTime(%d,%d) = %v", ti, i, j, got, s, d, want)
				}
			}
		}
		// The generic fallback must agree as well.
		ref := make([]float64, len(buf))
		FillCostMatrix(m.Reference(), ref, srcs, dsts)
		for i := range buf {
			if buf[i] != ref[i] {
				t.Fatalf("tape %d: CostMatrix and reference fill disagree at %d: %v vs %v", ti, i, buf[i], ref[i])
			}
		}
	}
}

// TestPerturbedCostMatrix checks the batched perturbed fill against
// the per-call decorator, diagonal included.
func TestPerturbedCostMatrix(t *testing.T) {
	m := benchTapes(t)[0]
	pc := &Perturbed{Base: m, E: 10}
	rng := rand48.New(17)
	srcs := make([]int, 16)
	dsts := make([]int, 32)
	for i := range srcs {
		srcs[i] = rng.Intn(m.Segments())
	}
	for j := range dsts {
		dsts[j] = rng.Intn(m.Segments())
	}
	dsts[0] = srcs[0]
	buf := make([]float64, len(srcs)*len(dsts))
	pc.CostMatrix(buf, srcs, dsts)
	for i, s := range srcs {
		for j, d := range dsts {
			if got, want := buf[i*len(dsts)+j], pc.LocateTime(s, d); got != want {
				t.Fatalf("Perturbed CostMatrix[%d,%d] = %v, LocateTime(%d,%d) = %v", i, j, got, s, d, want)
			}
		}
	}
}

// BenchmarkCostMatrix measures the batched fill at the LOSS n=1024
// matrix shape.
func BenchmarkCostMatrix(b *testing.B) {
	m := benchTapes(b)[0]
	rng := rand48.New(5)
	n := 1025
	srcs := make([]int, n)
	dsts := make([]int, n)
	for i := 0; i < n; i++ {
		srcs[i] = rng.Intn(m.Segments())
		dsts[i] = rng.Intn(m.Segments())
	}
	buf := make([]float64, n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CostMatrix(buf, srcs, dsts)
	}
	b.ReportMetric(float64(n*n), "cells")
}
