package locate

import (
	"math"

	"serpentine/internal/geometry"
)

// MatrixCost is implemented by cost models that can fill a dense
// src × dst locate-time matrix faster than repeated LocateTime calls.
// Schedulers that build cost matrices (LOSS, SLTF) type-assert for it
// and fall back to per-call evaluation otherwise.
type MatrixCost interface {
	Cost
	// CostMatrix fills buf[i*len(dsts)+j] = LocateTime(srcs[i],
	// dsts[j]) for every pair. buf must hold at least
	// len(srcs)*len(dsts) entries; the fill touches nothing beyond
	// that prefix.
	CostMatrix(buf []float64, srcs, dsts []int)
}

// FillCostMatrix fills buf[i*len(dsts)+j] = c.LocateTime(srcs[i],
// dsts[j]), using the batched fast path when c provides one.
func FillCostMatrix(c Cost, buf []float64, srcs, dsts []int) {
	if mc, ok := c.(MatrixCost); ok {
		mc.CostMatrix(buf, srcs, dsts)
		return
	}
	k := len(dsts)
	for i, s := range srcs {
		row := buf[i*k : (i+1)*k]
		for j, d := range dsts {
			row[j] = c.LocateTime(s, d)
		}
	}
}

// CostMatrix implements MatrixCost: one row per source, with the
// source's placement hoisted out of the inner loop.
func (m *Model) CostMatrix(buf []float64, srcs, dsts []int) {
	k := len(dsts)
	for i, s := range srcs {
		m.locateRow(buf[i*k:(i+1)*k], s, dsts)
	}
}

// locateRow fills row[j] = LocateTime(src, dsts[j]). It is the fast
// path of LocateTime with the src-side lookups done once.
func (m *Model) locateRow(row []float64, src int, dsts []int) {
	ss := &m.secs[m.secOf[src]]
	sp := m.pos[src]
	const eps = 1e-12
	for j, dst := range dsts {
		if src == dst {
			row[j] = 0
			continue
		}
		ds := &m.secs[m.secOf[dst]]
		dp := m.pos[dst]
		if ss.track == ds.track && dst > src && ds.section <= ss.section+2 {
			row[j] = m.p.ReadSecPerSection * math.Abs(dp-sp)
			continue
		}
		landing := ds.landing
		scanDist := math.Abs(landing - sp)
		readDist := math.Abs(dp - landing)
		scanDir := ss.dir
		if scanDist > eps {
			if landing > sp {
				scanDir = 1
			} else {
				scanDir = -1
			}
		}
		var reversals float64
		if scanDir != ss.dir {
			reversals++
		}
		if ds.dir != scanDir {
			reversals++
		}
		t := m.p.OverheadSec +
			reversals*m.p.ReverseSec +
			m.p.ScanSecPerSection*scanDist +
			m.p.ReadSecPerSection*readDist
		if ss.track != ds.track {
			t += m.p.TrackSwitchSec
		}
		row[j] = t
	}
}

// CostMatrix implements MatrixCost for the perturbed decorator: the
// base matrix is filled batched, then the Figure 10 alternating-sign
// error is applied per destination.
func (p *Perturbed) CostMatrix(buf []float64, srcs, dsts []int) {
	FillCostMatrix(p.Base, buf, srcs, dsts)
	k := len(dsts)
	for i := range srcs {
		row := buf[i*k : (i+1)*k]
		for j, d := range dsts {
			// Note: LocateTime(x, x) is perturbed too, matching the
			// per-call decorator exactly.
			t := row[j]
			if d%2 == 0 {
				t += p.E
			} else {
				t -= p.E
			}
			if t < 0 {
				t = 0
			}
			row[j] = t
		}
	}
}

// referenceCost evaluates every estimate through the original
// piecewise decomposition, bypassing the fast-path tables and the
// batched matrix fill. It deliberately does not implement MatrixCost,
// so schedulers handed one exercise their per-call fallback paths.
// Equivalence tests compare plans and times produced against it
// bit-for-bit with the fast path.
type referenceCost struct {
	m *Model
}

// Reference returns a Cost that evaluates estimates through the
// original piecewise decomposition rather than the precomputed
// tables. It exists for the fast-path equivalence tests.
func (m *Model) Reference() Cost { return referenceCost{m} }

func (r referenceCost) LocateTime(src, dst int) float64 { return r.m.referenceLocateTime(src, dst) }
func (r referenceCost) ReadTime(lbn int) float64        { return r.m.referenceReadTime(lbn) }
func (r referenceCost) FullReadTime() float64           { return r.m.FullReadTime() }
func (r referenceCost) View() *geometry.View            { return r.m.View() }
func (r referenceCost) Segments() int                   { return r.m.Segments() }
