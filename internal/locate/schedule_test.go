package locate

import (
	"math"
	"testing"

	"serpentine/internal/geometry"
	"serpentine/internal/rand48"
)

func TestEstimateScheduleAccumulates(t *testing.T) {
	_, m := dltModel(t, 1)
	order := []int{100000, 200000, 50000}
	b := EstimateSchedule(m, 0, order)
	if b.Locates != 3 {
		t.Fatalf("Locates = %d, want 3", b.Locates)
	}
	want := m.LocateTime(0, 100000) + m.LocateTime(100001, 200000) + m.LocateTime(200001, 50000)
	if math.Abs(b.Locate-want) > 1e-9 {
		t.Fatalf("Locate = %g, want %g", b.Locate, want)
	}
	wantRead := m.ReadTime(100000) + m.ReadTime(200000) + m.ReadTime(50000)
	if math.Abs(b.Read-wantRead) > 1e-9 {
		t.Fatalf("Read = %g, want %g", b.Read, wantRead)
	}
	if b.Total() != b.Locate+b.Read {
		t.Fatal("Total != Locate+Read")
	}
	if b.MaxLocate <= 0 || b.MaxLocate > b.Locate {
		t.Fatalf("MaxLocate = %g out of range", b.MaxLocate)
	}
	if got := b.PerLocate(); math.Abs(got-b.Total()/3) > 1e-12 {
		t.Fatalf("PerLocate = %g", got)
	}
}

func TestEstimateScheduleEmpty(t *testing.T) {
	_, m := dltModel(t, 1)
	b := EstimateSchedule(m, 0, nil)
	if b.Total() != 0 || b.PerLocate() != 0 || b.Locates != 0 {
		t.Fatal("empty schedule should be free")
	}
	if b.String() == "" {
		t.Fatal("Breakdown.String empty")
	}
}

// A perfectly sequential schedule costs pure reading: consecutive
// segments have zero locate cost.
func TestSequentialScheduleHasNoLocateCost(t *testing.T) {
	_, m := dltModel(t, 1)
	order := make([]int, 100)
	for i := range order {
		order[i] = 5000 + i
	}
	b := EstimateSchedule(m, 5000, order)
	if b.Locate != 0 {
		t.Fatalf("sequential schedule locate cost = %g, want 0", b.Locate)
	}
}

func TestHeadAfterReadClampsAtEnd(t *testing.T) {
	_, m := dltModel(t, 1)
	last := m.Segments() - 1
	if got := HeadAfterRead(m, last); got != last {
		t.Fatalf("HeadAfterRead(last) = %d, want %d", got, last)
	}
	if got := HeadAfterRead(m, 10); got != 11 {
		t.Fatalf("HeadAfterRead(10) = %d, want 11", got)
	}
}

func TestFinalHead(t *testing.T) {
	_, m := dltModel(t, 1)
	if got := FinalHead(m, 123, nil); got != 123 {
		t.Fatalf("FinalHead(empty) = %d, want start", got)
	}
	if got := FinalHead(m, 0, []int{5, 900}); got != 901 {
		t.Fatalf("FinalHead = %d, want 901", got)
	}
}

func TestPerturbedAltersByParity(t *testing.T) {
	_, m := dltModel(t, 1)
	p := &Perturbed{Base: m, E: 5}
	rng := rand48.New(3)
	for i := 0; i < 500; i++ {
		src := rng.Intn(m.Segments())
		dst := rng.Intn(m.Segments())
		if src == dst {
			continue
		}
		base := m.LocateTime(src, dst)
		got := p.LocateTime(src, dst)
		want := base + 5
		if dst%2 == 1 {
			want = base - 5
		}
		if want < 0 {
			want = 0
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Perturbed(%d,%d) = %g, want %g", src, dst, got, want)
		}
	}
}

func TestPerturbedNeverNegative(t *testing.T) {
	_, m := dltModel(t, 1)
	p := &Perturbed{Base: m, E: 1e6}
	if got := p.LocateTime(0, 1); got < 0 {
		t.Fatalf("perturbed locate negative: %g", got)
	}
}

func TestPerturbedDelegates(t *testing.T) {
	tape, m := dltModel(t, 1)
	p := &Perturbed{Base: m, E: 2}
	if p.Segments() != m.Segments() || p.View() != m.View() {
		t.Fatal("Perturbed must delegate View/Segments")
	}
	if p.ReadTime(100) != m.ReadTime(100) {
		t.Fatal("Perturbed must delegate ReadTime")
	}
	if p.FullReadTime() != m.FullReadTime() {
		t.Fatal("Perturbed must delegate FullReadTime")
	}
	_ = tape
}

// The truth-geometry model and the key-point model must agree
// closely on the same tape: this is the foundation of Figure 8.
func TestExactVsKeyPointModelAgreement(t *testing.T) {
	tape := geometry.MustGenerate(geometry.DLT4000(), 5)
	exact := NewModel(tape.View())
	kp, err := FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand48.New(77)
	const trials = 2000
	var worst, sum float64
	over2 := 0
	for i := 0; i < trials; i++ {
		src := rng.Intn(exact.Segments())
		dst := rng.Intn(exact.Segments())
		d := math.Abs(exact.LocateTime(src, dst) - kp.LocateTime(src, dst))
		sum += d
		worst = math.Max(worst, d)
		if d > 2 {
			over2++
		}
	}
	// The paper's Section 3 quality bar: errors over 2 s are rare
	// (7 in 3000 on the model-development tape); the mean error is
	// well under a second. The worst case can reach a few seconds
	// when a near-boundary position estimate flips a scan direction.
	if mean := sum / trials; mean > 0.5 {
		t.Fatalf("mean exact-vs-keypoint disagreement %.3f s, want < 0.5", mean)
	}
	if over2 > trials/100 {
		t.Fatalf("%d/%d disagreements over 2 s, want < 1%%", over2, trials)
	}
	if worst > 8 {
		t.Fatalf("worst disagreement %.2f s, want < 8", worst)
	}
}
