package locate

import (
	"math"
	"testing"
	"testing/quick"

	"serpentine/internal/geometry"
	"serpentine/internal/rand48"
)

func dltModel(t *testing.T, serial int64) (*geometry.Tape, *Model) {
	t.Helper()
	tape := geometry.MustGenerate(geometry.DLT4000(), serial)
	m, err := FromKeyPoints(tape.KeyPoints())
	if err != nil {
		t.Fatal(err)
	}
	return tape, m
}

func TestLocateSameSegmentIsFree(t *testing.T) {
	_, m := dltModel(t, 1)
	for _, lbn := range []int{0, 100, 311027, m.Segments() - 1} {
		if got := m.LocateTime(lbn, lbn); got != 0 {
			t.Fatalf("LocateTime(%d,%d) = %g, want 0", lbn, lbn, got)
		}
		if c := m.Classify(lbn, lbn); c != CaseNone {
			t.Fatalf("Classify(x,x) = %v, want none", c)
		}
	}
}

// Property: locate times are non-negative and bounded by the paper's
// observed maximum (~180 s).
func TestLocateTimeBounds(t *testing.T) {
	_, m := dltModel(t, 1)
	f := func(a, b uint32) bool {
		src := int(a) % m.Segments()
		dst := int(b) % m.Segments()
		lt := m.LocateTime(src, dst)
		return lt >= 0 && lt <= 185
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// The paper's aggregate statistics for the DLT4000 (Section 3): the
// expected locate from the beginning of tape to a random segment is
// 96.5 s, between two random segments 72.4 s, and the maximum is
// about 180 s.
func TestPaperAggregateStatistics(t *testing.T) {
	_, m := dltModel(t, 1)
	rng := rand48.New(42)
	const trials = 50000
	var sumBOT, sumRR, max float64
	for i := 0; i < trials; i++ {
		d := rng.Intn(m.Segments())
		s := rng.Intn(m.Segments())
		bot := m.LocateTime(0, d)
		rr := m.LocateTime(s, d)
		sumBOT += bot
		sumRR += rr
		max = math.Max(max, math.Max(bot, rr))
	}
	if mean := sumBOT / trials; math.Abs(mean-96.5) > 4 {
		t.Errorf("mean locate from BOT = %.2f s, paper 96.5", mean)
	}
	if mean := sumRR / trials; math.Abs(mean-72.4) > 4 {
		t.Errorf("mean random locate = %.2f s, paper 72.4", mean)
	}
	if max < 160 || max > 185 {
		t.Errorf("max locate = %.2f s, paper ~180", max)
	}
}

// "a typical time to read an entire tape and rewind is 14,000
// seconds (just under 4 hours)".
func TestFullReadTimeNearPaper(t *testing.T) {
	_, m := dltModel(t, 1)
	if s := m.FullReadTime(); s < 13500 || s > 14500 {
		t.Errorf("full read = %.0f s, paper ~14,000", s)
	}
}

// "locate_time(x,y) typically differs from locate_time(y,x) by tens
// of seconds, so the asymmetric version of the traveling salesman
// problem applies."
func TestLocateTimeIsAsymmetric(t *testing.T) {
	_, m := dltModel(t, 1)
	rng := rand48.New(7)
	var diff float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		x := rng.Intn(m.Segments())
		y := rng.Intn(m.Segments())
		diff += math.Abs(m.LocateTime(x, y) - m.LocateTime(y, x))
	}
	if mean := diff / trials; mean < 10 {
		t.Errorf("mean |t(x,y)-t(y,x)| = %.1f s, want tens of seconds", mean)
	}
}

// The sawtooth structure of Figure 1: each dip is exactly one segment
// beyond a peak, the drop is abrupt, and its size is ~25 s in reverse
// tracks and ~5 s in forward tracks (Section 7).
func TestSectionBoundaryDips(t *testing.T) {
	tape, m := dltModel(t, 1)
	v := tape.View()
	check := func(track int, wantDrop, tol float64) {
		tv := v.Track(track)
		for l := 3; l <= 6; l++ {
			y := tv.BoundLBN[l]
			drop := m.LocateTime(0, y-1) - m.LocateTime(0, y)
			if math.Abs(drop-wantDrop) > tol {
				t.Errorf("track %d boundary %d: drop %.1f s, want ~%.0f", track, l, drop, wantDrop)
			}
		}
	}
	check(4, 5.5, 1.5)  // forward track: read-scan difference over one section
	check(5, 25.5, 3.0) // reverse track: read+scan over one section
}

// "for most source segments x, there exist approximately 300
// destination segments y such that locate_time(x,y-1) exceeds
// locate_time(x,y) by about 25 seconds": the dips of all 32 reverse
// tracks (13 interior boundaries each) plus reverse track starts.
func TestBigDipPopulation(t *testing.T) {
	tape, m := dltModel(t, 1)
	v := tape.View()
	p := tape.Params()
	count := 0
	for tr := 0; tr < p.Tracks; tr++ {
		tv := v.Track(tr)
		for l := 1; l < tv.Sections(); l++ {
			y := tv.BoundLBN[l]
			if m.LocateTime(0, y-1)-m.LocateTime(0, y) > 20 {
				count++
			}
		}
	}
	// 32 reverse tracks x (sections 2..13 have the 25 s signature
	// from BOT) ~ 384; the paper eyeballed "approximately 300".
	if count < 250 || count > 500 {
		t.Errorf("found %d ~25s dips, paper says approximately 300", count)
	}
}

// Case classification must follow the paper's Section 3 wording. The
// scenarios construct (src, dst) pairs in known geometric relations.
func TestClassifyPaperCases(t *testing.T) {
	tape, m := dltModel(t, 1)
	v := tape.View()

	// Work on forward track 10 and its neighbors; logical == physical
	// sections on forward tracks.
	fwd := v.Track(10)  // forward
	fwd2 := v.Track(12) // co-directional with 10
	rev := v.Track(11)  // anti-directional with 10
	mid := func(tv *geometry.TrackView, l int) int {
		return (tv.BoundLBN[l] + tv.BoundLBN[l+1]) / 2
	}

	cases := []struct {
		name     string
		src, dst int
		want     Case
	}{
		{"same section forward", mid(fwd, 5), mid(fwd, 5) + 10, Case1},
		{"next section", mid(fwd, 5), mid(fwd, 6), Case1},
		{"two sections ahead", mid(fwd, 5), mid(fwd, 7), Case1},
		{"three sections ahead same track", mid(fwd, 5), mid(fwd, 8), Case2},
		{"far ahead co-directional", mid(fwd, 5), mid(fwd2, 9), Case2},
		{"backward same track", mid(fwd, 8), mid(fwd, 5), Case3},
		{"one ahead co-directional", mid(fwd, 5), mid(fwd2, 6), Case3},
		{"back to second section", mid(fwd, 8), mid(fwd, 1), Case4},
		{"back to first section co-directional", mid(fwd, 8), mid(fwd2, 0), Case4},
		{"anti-directional far forward", mid(fwd, 10), mid(rev, 8), Case5},
		{"anti-directional nearby", mid(fwd, 5), mid(rev, 13-5), Case6},
		{"anti-directional first section", mid(fwd, 5), mid(rev, 0), Case7},
	}
	for _, c := range cases {
		if got := m.Classify(c.src, c.dst); got != c.want {
			t.Errorf("%s: Classify(%d,%d) = %v, want %v", c.name, c.src, c.dst, got, c.want)
		}
	}
}

// Property: the classifier and the estimator agree — case 1 times
// are pure read motion (cheap for short hops), and every non-case-1
// locate includes the fixed overhead.
func TestClassifierEstimatorConsistency(t *testing.T) {
	tape, m := dltModel(t, 2)
	p := tape.Params()
	f := func(a, b uint32) bool {
		src := int(a) % m.Segments()
		dst := int(b) % m.Segments()
		if src == dst {
			return m.LocateTime(src, dst) == 0
		}
		lt := m.LocateTime(src, dst)
		switch m.Classify(src, dst) {
		case Case1:
			// Bounded by reading three sections.
			return lt <= 3*p.ReadSecPerSection+0.1
		case CaseNone:
			return false
		default:
			return lt >= p.OverheadSec
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Maneuver must agree with Classify and LocateTime.
func TestManeuverConsistent(t *testing.T) {
	tape, m := dltModel(t, 1)
	p := tape.Params()
	rng := rand48.New(9)
	for i := 0; i < 2000; i++ {
		src := rng.Intn(m.Segments())
		dst := rng.Intn(m.Segments())
		mo := m.Maneuver(src, dst)
		if mo.Case != m.Classify(src, dst) {
			t.Fatalf("Maneuver case %v != Classify %v", mo.Case, m.Classify(src, dst))
		}
		if src == dst {
			continue
		}
		want := m.LocateTime(src, dst)
		var got float64
		if mo.Case == Case1 {
			got = p.ReadSecPerSection * mo.ReadSections
		} else {
			got = p.OverheadSec + float64(mo.Reversals)*p.ReverseSec +
				p.ScanSecPerSection*mo.ScanSections + p.ReadSecPerSection*mo.ReadSections
			if mo.TrackSwap {
				got += p.TrackSwitchSec
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("maneuver arithmetic %.6f != locate time %.6f", got, want)
		}
	}
}

func TestReadTimeMatchesTransferRate(t *testing.T) {
	tape, m := dltModel(t, 1)
	p := tape.Params()
	// One 32 KB segment at 1.5 MB/s is ~22 ms.
	want := float64(p.SegmentBytes) / p.TransferRateBytesPerSec()
	rng := rand48.New(4)
	for i := 0; i < 200; i++ {
		lbn := rng.Intn(m.Segments())
		got := m.ReadTime(lbn)
		if got < want*0.7 || got > want*1.4 {
			t.Fatalf("ReadTime(%d) = %.4f s, want ~%.4f", lbn, got, want)
		}
	}
}

func TestRewindTime(t *testing.T) {
	tape, m := dltModel(t, 1)
	v := tape.View()
	// Rewinding from the beginning of tape is nearly free; from the
	// far end it costs a full-length scan (~140 s).
	if early := m.RewindTime(5); early > 10 {
		t.Errorf("rewind from segment 5 = %.1f s, want small", early)
	}
	farEnd := v.Track(0).EndLBN() - 1 // physical end of tape
	if far := m.RewindTime(farEnd); far < 120 || far > 160 {
		t.Errorf("rewind from physical end = %.1f s, want ~140", far)
	}
	// Monotone-ish: rewind from farther out costs at least as much.
	if m.RewindTime(farEnd) <= m.RewindTime(farEnd/2) {
		t.Error("rewind time should grow with physical position")
	}
}

// Fact 1 behind SLTF (Section 4): within a section, reading ahead
// beats any locate out of the section.
func TestInSectionReadAheadIsNearest(t *testing.T) {
	tape, m := dltModel(t, 1)
	v := tape.View()
	rng := rand48.New(11)
	for i := 0; i < 300; i++ {
		x := rng.Intn(m.Segments() - 10)
		pl := v.Place(x)
		tv := v.Track(pl.Track)
		sectionEnd := tv.BoundLBN[pl.Section+1]
		if x+1 >= sectionEnd {
			continue
		}
		inSection := m.LocateTime(x, x+1+rng.Intn(sectionEnd-x-1))
		y := rng.Intn(m.Segments())
		if v.Place(y).Track == pl.Track && v.Place(y).Section == pl.Section {
			continue
		}
		outOfSection := m.LocateTime(x, y)
		if inSection >= outOfSection {
			t.Fatalf("in-section read-ahead (%.2f) not cheaper than leaving (%.2f)", inSection, outOfSection)
		}
	}
}

// Fact 2 behind SLTF: the cheapest entry into another section is its
// lowest-numbered segment.
func TestSectionEntryAtLowestSegment(t *testing.T) {
	tape, m := dltModel(t, 1)
	v := tape.View()
	rng := rand48.New(13)
	for i := 0; i < 300; i++ {
		x := rng.Intn(m.Segments())
		tr := rng.Intn(v.Tracks())
		l := rng.Intn(tape.Params().SectionsPerTrack)
		if pl := v.Place(x); pl.Track == tr && pl.Section == l {
			continue
		}
		first := v.SectionStartLBN(tr, l)
		entry := m.LocateTime(x, first)
		tv := v.Track(tr)
		for k := 0; k < 5; k++ {
			other := first + 1 + rng.Intn(tv.BoundLBN[l+1]-first-1)
			if m.LocateTime(x, other) < entry-1e-9 {
				t.Fatalf("segment %d cheaper to reach than section start %d", other, first)
			}
		}
	}
}

func TestCaseString(t *testing.T) {
	if CaseNone.String() != "none" || Case1.String() != "case1" || Case7.String() != "case7" {
		t.Fatal("Case.String wrong")
	}
	if Case(99).String() == "" {
		t.Fatal("unknown case should still print")
	}
}
