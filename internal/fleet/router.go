package fleet

import "math"

// Candidate is one shard holding a live copy of a request's object,
// with the probes the routing tier reads off the shard's event loop
// at decision time.
type Candidate struct {
	// Shard is the shard index.
	Shard int
	// QueueDepth is the shard's pending backlog (offered or admitted,
	// not yet dispatched).
	QueueDepth int
	// Headroom is the shard's live capacity fraction — its brownout
	// breaker's view, 1 when every drive is up, 0 when all are down.
	Headroom float64
	// Mounted reports that one of the object's cartridges on this
	// shard is currently loaded in a drive.
	Mounted bool
	// Cached reports that the shard's staging cache holds the object
	// resident right now — the request would complete at disk cost
	// without touching the tape path at all. Always false when the
	// fleet runs without a cache.
	Cached bool
	// Primary marks the shard holding the object's copy 0.
	Primary bool
	// Health is the shard's observed health score in [0,1]: the worst
	// good-fraction across the fleet health tracker's rolling windows
	// as of decision time, 1 when no tracker is armed or the shard
	// has no scored history yet. Observational for now — no built-in
	// router reads it; a health-aware router is the follow-on.
	Health float64
}

// Router scores routing candidates. Score fills scores[i] with
// cands[i]'s desirability; the fleet dispatches to the highest score
// and breaks exact ties by a seeded hash of the request ordinal, so a
// routing decision is a pure function of (router, probes, seed,
// ordinal) — never of map order, wall time or worker count.
// Implementations must be stateless: one Router value is shared by
// every concurrent sweep cell.
type Router interface {
	// Name labels the policy in tables and metric labels.
	Name() string
	// Score scores the candidates. ordinal is the request's index in
	// the fleet's arrival stream; shards is the cluster size (shard
	// IDs range over [0, shards)). len(scores) == len(cands) >= 1.
	Score(ordinal, shards int, cands []Candidate, scores []float64)
}

// PassThrough always routes to the primary shard — the shard a
// standalone library would be. A one-shard fleet under PassThrough
// reproduces tertiary.Sweep bit for bit, which
// TestSingleShardFleetEquivalence pins.
type PassThrough struct{}

// Name returns "pass-through".
func (PassThrough) Name() string { return "pass-through" }

// Score prefers the primary copy's shard.
func (PassThrough) Score(_, _ int, cands []Candidate, scores []float64) {
	for i, c := range cands {
		if c.Primary {
			scores[i] = 1
		}
	}
}

// RoundRobin deals requests across shards by ordinal, skipping
// cyclically to the next candidate shard when the dealt shard holds no
// live copy.
type RoundRobin struct{}

// Name returns "round-robin".
func (RoundRobin) Name() string { return "round-robin" }

// Score ranks candidates by cyclic distance from the dealt shard
// (ordinal mod shards): the dealt shard itself scores highest, the
// next candidate after it second, and so on.
func (RoundRobin) Score(ordinal, shards int, cands []Candidate, scores []float64) {
	target := ordinal % shards
	for i, c := range cands {
		scores[i] = -float64((c.Shard - target + shards) % shards)
	}
}

// LeastLoaded routes to the shard with the smallest effective load:
// queue depth scaled by the inverse of the shard's brownout headroom,
// so a shard serving on half its drives looks twice as loaded and a
// shard with no live drives is never chosen while an alternative
// exists. This is router-aware admission: the routing tier acts on
// the same capacity picture the shard's own breaker sheds by.
type LeastLoaded struct{}

// Name returns "least-loaded".
func (LeastLoaded) Name() string { return "least-loaded" }

// Score assigns -(depth+1)/headroom.
func (LeastLoaded) Score(_, _ int, cands []Candidate, scores []float64) {
	for i, c := range cands {
		scores[i] = loadScore(c)
	}
}

// loadScore is the shared load term: -(depth+1)/headroom, -Inf at
// zero headroom (all drives down).
func loadScore(c Candidate) float64 {
	if c.Headroom <= 0 {
		return math.Inf(-1)
	}
	return -float64(c.QueueDepth+1) / c.Headroom
}

// affinityBonus dominates any realistic load score (queue depths are
// bounded by the offered stream, headroom by 1/drives), so a mounted
// candidate always beats an unmounted one and load only breaks the
// tie within each class.
const affinityBonus = 1e12

// Affinity routes to a shard that already has the request's object in
// its staging cache (a disk-cost hit, no tape motion at all), then to
// one that has the cartridge in a drive — the request joins that
// cartridge's next batch without paying an exchange — falling back to
// least-loaded when no candidate has either.
type Affinity struct{}

// Name returns "affinity".
func (Affinity) Name() string { return "affinity" }

// Score is loadScore plus a dominating bonus for mounted candidates
// and a doubly dominating one for cached candidates: cache beats
// mount beats load. A dead shard (zero headroom) stays -Inf whatever
// it has mounted or cached — a bonus on top of -Inf is still -Inf —
// so affinity never routes into a shard with no live drives.
func (Affinity) Score(_, _ int, cands []Candidate, scores []float64) {
	for i, c := range cands {
		scores[i] = loadScore(c)
		if c.Mounted {
			scores[i] += affinityBonus
		}
		if c.Cached {
			scores[i] += 2 * affinityBonus
		}
	}
}

// tieBreak picks among k equally scored candidates as a pure function
// of (seed, ordinal): a splitmix64 finisher over the pair. Purity is
// what keeps routing — and therefore the whole fleet run —
// byte-identical at any worker count; TestTieBreakPure pins the
// function's values.
func tieBreak(seed int64, ordinal, k int) int {
	if k <= 1 {
		return 0
	}
	x := uint64(seed) + uint64(ordinal+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(k))
}
