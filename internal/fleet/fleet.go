// Package fleet scales the tertiary library horizontally: a cluster
// of shard libraries behind a deterministic routing tier. Placement
// deals cartridges round-robin across shards at build time and spreads
// each object's replicas onto consecutive cartridges — and therefore
// across shards — so a shard that loses its copy of an object degrades
// reads to a sister shard instead of failing them. Routing policies
// are pluggable Routers scored per request over the shards holding a
// live copy, with probes (queue depth, mounted cartridges, brownout
// headroom) supplied by each shard's incremental run loop
// (tertiary.Runner).
//
// Everything is driven by one virtual clock and contains no
// randomness beyond the seeded workload and the seeded routing
// tie-break, so a fleet run — like a single-library run — is a pure
// function of its configuration. Sweep exploits that the same way
// tertiary.Sweep does: per-cell derived seeds make the output
// byte-identical at any worker count.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/hsm"
	"serpentine/internal/obs"
	"serpentine/internal/server"
	"serpentine/internal/sim"
	"serpentine/internal/tertiary"
)

// StoreConfig describes the cluster-wide store the fleet is built
// over. Cartridge t (serial 3000+t, the single-library sweeps'
// numbering) lives on shard t mod Shards; copy k of object (t, o)
// lives on cartridge (t+k) mod TapeCount at the same catalog slot,
// offset k extents in — every copy on a distinct cartridge, and with
// Replicas > 1 usually on a distinct shard.
type StoreConfig struct {
	// Profile is the drive/cartridge format; zero value selects the
	// DLT4000.
	Profile geometry.Params
	// Shards is the library count; 0 selects 1. Must not exceed
	// TapeCount (every shard owns at least one cartridge).
	Shards int
	// TapeCount and Objects shape the store: cartridges across the
	// whole fleet and objects per cartridge; 0 select 8 and 256.
	// ObjectSegments is the extent length per object; 0 selects 32.
	TapeCount      int
	Objects        int
	ObjectSegments int
	// Replicas is the copy count per object; 0 and 1 mean no
	// replication. Must not exceed TapeCount, and the catalog stride
	// must fit Replicas copies.
	Replicas int
}

// copyGroup is one shard's copies of an object: the shard index and
// the cartridge serials holding the copies there, in copy order. The
// first group of an object's directory entry is the shard holding
// copy 0 — the primary shard.
type copyGroup struct {
	shard   int
	serials []int64
}

// Fleet is a built cluster: per-shard base libraries sharing their
// read-only stores, per-shard replica placements, and the routing
// directory mapping every object to the shards holding its copies. A
// Fleet is immutable after New; Run clones per-shard libraries for
// each run, so one Fleet serves concurrent runs (the sweep's cells).
type Fleet struct {
	cfg        StoreConfig
	bases      []*tertiary.Library
	placements []*tertiary.Placement
	tapes      [][]int64
	dir        map[string][]copyGroup
}

// New builds the fleet store: generates every cartridge, deals them
// across shards, builds each shard's catalog and same-shard replica
// placement, and indexes every object's copies for the routing tier.
func New(cfg StoreConfig) (*Fleet, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.TapeCount <= 0 {
		cfg.TapeCount = 8
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 256
	}
	if cfg.ObjectSegments <= 0 {
		cfg.ObjectSegments = 32
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Profile.Tracks == 0 {
		cfg.Profile = geometry.DLT4000()
	}
	if cfg.Shards > cfg.TapeCount {
		return nil, fmt.Errorf("fleet: %d shards need at least as many cartridges, have %d", cfg.Shards, cfg.TapeCount)
	}
	if cfg.Replicas > cfg.TapeCount {
		return nil, fmt.Errorf("fleet: replication factor %d exceeds %d cartridges", cfg.Replicas, cfg.TapeCount)
	}

	// Strides are per cartridge: each generated tape has its own
	// segment count (serial-seeded manufacturing variation), exactly
	// as the single-library sweeps lay their stores out. Copy k of an
	// object sits at slot k inside the holding tape's own stride, so
	// every copy fits whatever that tape's length turned out to be.
	strides := make([]int, cfg.TapeCount)
	for t := 0; t < cfg.TapeCount; t++ {
		tape, err := geometry.Generate(cfg.Profile, int64(3000+t))
		if err != nil {
			return nil, fmt.Errorf("fleet: tape %d: %w", 3000+t, err)
		}
		strides[t] = tape.Segments() / cfg.Objects
		if strides[t] < cfg.Replicas*cfg.ObjectSegments {
			return nil, fmt.Errorf("fleet: %d objects × %d copies of %d segments overflow tape %d",
				cfg.Objects, cfg.Replicas, cfg.ObjectSegments, 3000+t)
		}
	}

	f := &Fleet{
		cfg:        cfg,
		bases:      make([]*tertiary.Library, cfg.Shards),
		placements: make([]*tertiary.Placement, cfg.Shards),
		tapes:      make([][]int64, cfg.Shards),
		dir:        make(map[string][]copyGroup, cfg.TapeCount*cfg.Objects),
	}
	serial := func(t int) int64 { return int64(3000 + t) }
	for t := 0; t < cfg.TapeCount; t++ {
		s := t % cfg.Shards
		f.tapes[s] = append(f.tapes[s], serial(t))
	}

	catalogs := make([]*tertiary.Catalog, cfg.Shards)
	for s := range catalogs {
		catalogs[s] = tertiary.NewCatalog()
	}
	for t := 0; t < cfg.TapeCount; t++ {
		for o := 0; o < cfg.Objects; o++ {
			id := objectID(t, o)
			var groups []copyGroup
			// reps collects, per shard, the same-shard replica extents
			// behind the shard's catalog copy.
			var reps map[int][]tertiary.Object
			for k := 0; k < cfg.Replicas; k++ {
				tk := (t + k) % cfg.TapeCount
				sk := tk % cfg.Shards
				obj := tertiary.Object{
					ID:       id,
					Tape:     serial(tk),
					Start:    o*strides[tk] + k*cfg.ObjectSegments,
					Segments: cfg.ObjectSegments,
				}
				gi := -1
				for j := range groups {
					if groups[j].shard == sk {
						gi = j
						break
					}
				}
				if gi < 0 {
					// First copy on this shard: the shard's catalog
					// entry.
					groups = append(groups, copyGroup{shard: sk, serials: []int64{obj.Tape}})
					if err := catalogs[sk].Put(obj); err != nil {
						return nil, err
					}
					continue
				}
				// A later copy landing on a shard that already has
				// one: a same-shard replica behind its catalog entry.
				groups[gi].serials = append(groups[gi].serials, obj.Tape)
				if reps == nil {
					reps = make(map[int][]tertiary.Object, 1)
				}
				reps[sk] = append(reps[sk], tertiary.Object{
					Tape: obj.Tape, Start: obj.Start, Segments: obj.Segments,
				})
			}
			for _, g := range groups {
				if rs := reps[g.shard]; len(rs) > 0 {
					if f.placements[g.shard] == nil {
						f.placements[g.shard] = tertiary.NewPlacement()
					}
					if err := f.placements[g.shard].Put(id, rs...); err != nil {
						return nil, err
					}
				}
			}
			f.dir[id] = groups
		}
	}

	for s := 0; s < cfg.Shards; s++ {
		base, err := tertiary.New(tertiary.Config{
			Profile:   cfg.Profile,
			Tapes:     f.tapes[s],
			Placement: f.placements[s],
		}, catalogs[s])
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d store: %w", s, err)
		}
		f.bases[s] = base
	}
	return f, nil
}

// Shards returns the cluster size.
func (f *Fleet) Shards() int { return len(f.bases) }

// objectID matches the single-library sweeps' naming, so a one-shard
// fleet's catalog is identical to tertiary.Sweep's.
func objectID(tape, obj int) string {
	return "t" + strconv.Itoa(tape) + "/o" + strconv.Itoa(obj)
}

// RunConfig describes one fleet run: the per-shard serving
// configuration plus the routing tier's policy and seed. Schedulers
// are not pluggable here — every shard runs the paper's Auto policy
// (use tertiary.Sweep for the scheduler axis).
type RunConfig struct {
	// Drives is the transport count per shard; 0 selects 1. MountSec
	// and UnmountSec default to 30 and 15 as in tertiary.Config.
	Drives     int
	MountSec   float64
	UnmountSec float64
	// BatchLimit, Policy, WindowSec, QueueCap, Retry and DeadlineSec
	// pass through to every shard's Config.
	BatchLimit  int
	Policy      server.BatchPolicy
	WindowSec   float64
	QueueCap    int
	Retry       sim.RetryPolicy
	DeadlineSec float64
	// Lifecycle arms component lifecycle faults on every shard; shard
	// s derives its seed as Lifecycle.Seed + 97·s so shards fail
	// independently but reproducibly.
	Lifecycle fault.LifecycleConfig
	// Cache puts an hsm staging tier in front of every shard: hits
	// complete at disk cost without consuming the shard's queue
	// capacity, misses fall through to the shard's tape path, and the
	// router sees residency via Candidate.Cached. The zero value (no
	// capacity) changes nothing: a run without a cache is bit-identical
	// to one before the field existed.
	Cache hsm.Config
	// Router picks a shard per request; nil selects LeastLoaded.
	Router Router
	// Seed drives the routing tie-break (see tieBreak); it does not
	// reseed the shards or the workload.
	Seed int64
	// Reg, when non-nil, receives every shard's metrics re-keyed
	// under shard="N" (Registry.MergeLabeled) plus the fleet's own
	// routing counters, after the run completes.
	Reg *obs.Registry
	// Labels are added to the fleet-level series and passed to every
	// shard; the sweep passes the cell coordinates here.
	Labels []obs.Label
	// Spans, when non-nil, records the run as a fleet root span with
	// every shard's run span nested under it, each shard on its own
	// lane block (shard s starts at lane 1 + s·(1+Drives)).
	Spans *obs.Tracer
	// Events, when non-nil, receives one wide event per request after
	// the run: each shard collects its own (stamped with shard, route
	// and the attribution vector) into a private ring, and the fold
	// merges them in (DoneSec, Shard, Seq) order with Labels attached
	// — the same spec-order folding the registries get, so the merged
	// log is identical at any worker count.
	Events *obs.EventRing
	// Health, when non-nil, consumes the event stream live: as the
	// arrival clock advances, every event whose terminal time has
	// passed scores its shard (key "shard=N") and serving drive (key
	// "shard=N/drive=D") in the tracker, and the router sees the
	// shard's current score as Candidate.Health at each decision.
	// Observational this PR: no built-in router reads the score.
	Health *obs.HealthTracker
}

// Metrics summarizes a fleet run across its shards.
type Metrics struct {
	// Offered is the request count; Served + Failed + Rejected + Shed
	// (summed over shards) partitions it — the conservation invariant
	// FuzzFleetRouting checks.
	Offered  int
	Served   int
	Failed   int
	Rejected int
	Shed     int
	// AffinityHits counts requests routed to a shard that already had
	// one of the object's cartridges in a drive at decision time.
	AffinityHits int
	// CrossShardReads counts requests routed off their primary shard
	// because every primary-shard copy was lost — the replica axis
	// paying off across the cluster.
	CrossShardReads int
	// Unroutable counts requests the routing tier could not place on
	// policy grounds: every copy lost, or every candidate shard scored
	// -Inf (zero headroom everywhere — the whole cluster's drives
	// down). Either way the request is still dispatched to the primary
	// shard so its accounting (a failure, a shed, or — after a repair —
	// a serve) keeps the partition exact.
	Unroutable int
	// CacheHits and CacheMisses count staging-cache lookups across the
	// fleet; both stay 0 when RunConfig.Cache is disabled. Hits are
	// included in Served.
	CacheHits   int
	CacheMisses int
	// Makespan is the latest shard makespan; MeanLatency the
	// served-weighted mean across shards; MaxLatency the cluster-wide
	// worst case.
	Makespan    float64
	MeanLatency float64
	MaxLatency  float64
}

// ShardResult is one shard's share of a fleet run.
type ShardResult struct {
	// Routed is how many requests the routing tier sent here.
	Routed int
	// Metrics and Completions are the shard's own run outcome,
	// bit-identical to what a standalone Library.Run over the same
	// request subsequence would produce. With a cache enabled,
	// Completions also holds the shard's cache hits (DriveID
	// hsm.CacheDriveID) merged in completion order, while Metrics stays
	// the tape path's view alone.
	Metrics     tertiary.Metrics
	Completions []tertiary.Completion
	// CacheHits and CacheMisses are this shard's staging-cache lookup
	// outcomes; both 0 when the fleet runs without a cache.
	CacheHits   int
	CacheMisses int
}

// decision is one routing outcome.
type decision struct {
	shard      int
	affinity   bool
	cross      bool
	unroutable bool
}

// routeName renders the decision for the request's wide event.
func (d decision) routeName() string {
	switch {
	case d.unroutable:
		return "unroutable"
	case d.cross:
		return "cross-shard"
	case d.affinity:
		return "affinity"
	}
	return "routed"
}

// eventRingAt indexes a possibly-nil ring slice: a fleet run without
// events or health hands every shard a nil (no-op) ring.
func eventRingAt(rings []*obs.EventRing, s int) *obs.EventRing {
	if rings == nil {
		return nil
	}
	return rings[s]
}

// healthFeed streams the per-shard wide-event rings into a
// HealthTracker in global virtual-time order. Shards emit events in
// their own order, and served events carry Done timestamps priced
// ahead of the clock at dispatch — so the feed buffers harvested
// events in a min-heap on (DoneSec, Shard, Seq) and releases only
// those whose terminal time the arrival clock has passed. Every event
// harvested later is emitted later and terminates no earlier, so the
// released sequence is nondecreasing in time — exactly what the
// tracker's rolling windows require.
type healthFeed struct {
	tracker   *obs.HealthTracker
	rings     []*obs.EventRing
	harvested []int64
	heap      []obs.Event
	shardKeys []string
	driveKeys map[int]string
}

func newHealthFeed(tracker *obs.HealthTracker, rings []*obs.EventRing) *healthFeed {
	hf := &healthFeed{
		tracker:   tracker,
		rings:     rings,
		harvested: make([]int64, len(rings)),
		shardKeys: make([]string, len(rings)),
		driveKeys: make(map[int]string),
	}
	for s := range rings {
		hf.shardKeys[s] = "shard=" + strconv.Itoa(s)
	}
	return hf
}

// score is the shard's current health for Candidate.Health.
func (hf *healthFeed) score(shard int) float64 {
	if hf == nil {
		return 1
	}
	return hf.tracker.Score(hf.shardKeys[shard])
}

func (hf *healthFeed) driveKey(shard, drive int) string {
	id := shard<<16 | drive
	k, ok := hf.driveKeys[id]
	if !ok {
		k = hf.shardKeys[shard] + "/drive=" + strconv.Itoa(drive)
		hf.driveKeys[id] = k
	}
	return k
}

// pump harvests each ring's new tail and scores every buffered event
// whose terminal time is at or before now.
func (hf *healthFeed) pump(now float64) {
	if hf == nil {
		return
	}
	for s, r := range hf.rings {
		tail := r.Tail(hf.harvested[s])
		hf.harvested[s] += int64(len(tail))
		for _, ev := range tail {
			hf.push(ev)
		}
	}
	for len(hf.heap) > 0 && hf.heap[0].DoneSec <= now {
		ev := hf.pop()
		good := ev.Outcome == obs.OutcomeServed
		hf.tracker.Observe(hf.shardKeys[ev.Shard], ev.DoneSec, good)
		if ev.Drive >= 0 {
			hf.tracker.Observe(hf.driveKey(ev.Shard, ev.Drive), ev.DoneSec, good)
		}
	}
}

func eventBefore(a, b obs.Event) bool {
	if a.DoneSec != b.DoneSec {
		return a.DoneSec < b.DoneSec
	}
	if a.Shard != b.Shard {
		return a.Shard < b.Shard
	}
	return a.Seq < b.Seq
}

func (hf *healthFeed) push(ev obs.Event) {
	hf.heap = append(hf.heap, ev)
	i := len(hf.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(hf.heap[i], hf.heap[parent]) {
			break
		}
		hf.heap[i], hf.heap[parent] = hf.heap[parent], hf.heap[i]
		i = parent
	}
}

func (hf *healthFeed) pop() obs.Event {
	top := hf.heap[0]
	n := len(hf.heap) - 1
	hf.heap[0] = hf.heap[n]
	hf.heap[n] = obs.Event{} // clear the vacated tail slot
	hf.heap = hf.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventBefore(hf.heap[l], hf.heap[small]) {
			small = l
		}
		if r < n && eventBefore(hf.heap[r], hf.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		hf.heap[i], hf.heap[small] = hf.heap[small], hf.heap[i]
		i = small
	}
	return top
}

// Run serves the stream through the routing tier: every shard's event
// loop advances in lockstep with the arrival clock, the router scores
// the shards holding a live copy of each request's object, and the
// request joins the winner's arrival stream. Requests must be sorted
// by arrival time. The run is fully deterministic: same fleet, config
// and stream — same result, bit for bit.
func (f *Fleet) Run(cfg RunConfig, stream []tertiary.Request) ([]ShardResult, Metrics, error) {
	router := cfg.Router
	if router == nil {
		router = LeastLoaded{}
	}
	drives := cfg.Drives
	if drives <= 0 {
		drives = 1
	}
	for i, r := range stream {
		if math.IsNaN(r.Arrival) {
			return nil, Metrics{}, fmt.Errorf("fleet: request %d arrives at NaN", i)
		}
	}

	var trace *obs.TraceHandle
	var root *obs.SpanHandle
	if cfg.Spans != nil {
		trace = cfg.Spans.StartTrace()
		root = trace.Start("fleet", nil, 0).
			Attr("router", router.Name()).
			AttrInt("shards", len(f.bases)).
			AttrInt("drives", drives)
	}
	var regs []*obs.Registry
	if cfg.Reg != nil {
		regs = make([]*obs.Registry, len(f.bases))
		for s := range regs {
			regs[s] = obs.NewRegistry()
		}
	}
	// Wide events feed two consumers: the caller's merged ring (the
	// post-run fold) and the live health plane. Either one arms the
	// per-shard rings; each ring is big enough that nothing drops, so
	// the fold and the feed both see every terminal outcome.
	var rings []*obs.EventRing
	if cfg.Events != nil || cfg.Health != nil {
		rings = make([]*obs.EventRing, len(f.bases))
		cap := len(stream)
		if cap < 1 {
			cap = 1
		}
		for s := range rings {
			rings[s] = obs.NewEventRing(cap)
		}
	}
	var hf *healthFeed
	if cfg.Health != nil {
		hf = newHealthFeed(cfg.Health, rings)
	}

	// Every shard library is wrapped in an hsm staging tier. With
	// cfg.Cache disabled the tier is a strict pass-through — no cache,
	// no extra metrics, every call delegated to the shard's Runner —
	// so the no-cache fleet path is bit-identical to the pre-cache one.
	tiers := make([]*hsm.Tier, len(f.bases))
	runners := make([]*tertiary.Runner, len(f.bases))
	for s := range runners {
		lc := cfg.Lifecycle
		if lc.Enabled() {
			lc.Seed += int64(s) * 97
		}
		var reg *obs.Registry
		if regs != nil {
			reg = regs[s]
		}
		lib := f.bases[s].Clone(tertiary.Config{
			Profile:     f.cfg.Profile,
			Tapes:       f.tapes[s],
			Drives:      drives,
			MountSec:    cfg.MountSec,
			UnmountSec:  cfg.UnmountSec,
			BatchLimit:  cfg.BatchLimit,
			Policy:      cfg.Policy,
			WindowSec:   cfg.WindowSec,
			QueueCap:    cfg.QueueCap,
			Retry:       cfg.Retry,
			Lifecycle:   lc,
			Placement:   f.placements[s],
			DeadlineSec: cfg.DeadlineSec,
			Reg:         reg,
			Labels:      cfg.Labels,
			SpanTrace:   trace,
			SpanParent:  root,
			Lane:        1 + s*(1+drives),
			Events:      eventRingAt(rings, s),
			Shard:       s,
		})
		tier, err := hsm.NewTier(lib, cfg.Cache)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("fleet: shard %d: %w", s, err)
		}
		tiers[s] = tier
		runners[s] = tier.Runner()
	}

	res := make([]ShardResult, len(f.bases))
	m := Metrics{Offered: len(stream)}
	for i := 0; i < len(stream); {
		at := stream[i].Arrival
		for s := range tiers {
			if err := tiers[s].AdvanceTo(at); err != nil {
				return nil, Metrics{}, fmt.Errorf("fleet: shard %d: %w", s, err)
			}
		}
		// Score every event whose terminal time the clock has now
		// passed, so the router's Candidate.Health reflects outcomes up
		// to — and only up to — this instant.
		hf.pump(at)
		// Route every request carrying this timestamp before advancing
		// again: a shard's event loop must see all of an instant's
		// arrivals before it dispatches at that instant, exactly as a
		// monolithic Run would.
		for ; i < len(stream) && stream[i].Arrival == at; i++ {
			d, err := f.route(router, cfg.Seed, i, stream[i], runners, tiers, hf)
			if err != nil {
				return nil, Metrics{}, err
			}
			if d.affinity {
				m.AffinityHits++
			}
			if d.cross {
				m.CrossShardReads++
			}
			if d.unroutable {
				m.Unroutable++
			}
			if err := tiers[d.shard].OfferRouted(stream[i], d.routeName()); err != nil {
				return nil, Metrics{}, fmt.Errorf("fleet: shard %d: %w", d.shard, err)
			}
			res[d.shard].Routed++
		}
	}

	var latSum float64
	for s := range tiers {
		comps, tm, err := tiers[s].Finish()
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("fleet: shard %d: %w", s, err)
		}
		sm := tm.Lib
		res[s].Metrics = sm
		res[s].Completions = comps
		res[s].CacheHits = tm.Hits
		res[s].CacheMisses = tm.Misses
		m.Served += tm.Served()
		m.Failed += sm.Failed
		m.Rejected += sm.Rejected
		m.Shed += sm.Shed
		m.CacheHits += tm.Hits
		m.CacheMisses += tm.Misses
		if tm.Makespan > m.Makespan {
			m.Makespan = tm.Makespan
		}
		if sm.MaxLatency > m.MaxLatency {
			m.MaxLatency = sm.MaxLatency
		}
		if tm.MaxHitSojourn > m.MaxLatency {
			m.MaxLatency = tm.MaxHitSojourn
		}
		// Hits contribute their (disk-cost) sojourns to the fleet mean;
		// with the cache disabled both terms past the tape path's are 0
		// and the sum is the pre-cache expression exactly.
		latSum += sm.MeanLatency*float64(sm.Served) + tm.HitSojournSec
	}
	if m.Served > 0 {
		m.MeanLatency = latSum / float64(m.Served)
	}
	if root != nil {
		root.AttrInt("served", m.Served)
		root.End(m.Makespan)
	}
	// Drain the health feed: the arrival clock stopped at the last
	// arrival, but served events terminate after it.
	hf.pump(math.Inf(1))
	if cfg.Events != nil {
		// Fold the per-shard logs into one stream ordered by terminal
		// time, exactly as the registries fold in spec order: the merged
		// log is a pure function of the run, identical at any worker
		// count. Per-shard Seqs survive the fold (the caller's ring only
		// stamps zero Seqs), so (Shard, Seq) still names the source slot.
		var all []obs.Event
		for _, r := range rings {
			all = append(all, r.Events()...)
		}
		sort.Slice(all, func(i, j int) bool { return eventBefore(all[i], all[j]) })
		for _, ev := range all {
			if len(cfg.Labels) > 0 {
				ev.Labels = append([]obs.Label(nil), cfg.Labels...)
			}
			cfg.Events.Add(ev)
		}
	}
	if cfg.Reg != nil {
		for s, reg := range regs {
			cfg.Reg.MergeLabeled(reg, obs.L("shard", strconv.Itoa(s)))
		}
		cfg.Reg.Counter("fleet_offered_total", cfg.Labels...).Add(int64(m.Offered))
		cfg.Reg.Counter("fleet_affinity_hits_total", cfg.Labels...).Add(int64(m.AffinityHits))
		cfg.Reg.Counter("fleet_cross_shard_reads_total", cfg.Labels...).Add(int64(m.CrossShardReads))
		cfg.Reg.Counter("fleet_unroutable_total", cfg.Labels...).Add(int64(m.Unroutable))
		if cfg.Cache.Enabled() {
			cfg.Reg.Counter("fleet_cache_hits_total", cfg.Labels...).Add(int64(m.CacheHits))
			cfg.Reg.Counter("fleet_cache_misses_total", cfg.Labels...).Add(int64(m.CacheMisses))
		}
		for s := range res {
			labels := append(append([]obs.Label(nil), cfg.Labels...), obs.L("shard", strconv.Itoa(s)))
			cfg.Reg.Counter("fleet_routed_total", labels...).Add(int64(res[s].Routed))
		}
	}
	return res, m, nil
}

// route scores the shards holding a live copy of the request's object
// and picks the best, breaking score ties by a pure function of
// (seed, request ordinal).
func (f *Fleet) route(router Router, seed int64, ordinal int, req tertiary.Request, runners []*tertiary.Runner, tiers []*hsm.Tier, hf *healthFeed) (decision, error) {
	groups := f.dir[req.ObjectID]
	if len(groups) == 0 {
		return decision{}, fmt.Errorf("fleet: request for unknown object %q", req.ObjectID)
	}
	cands := make([]Candidate, 0, len(groups))
	primaryAlive := false
	for gi, g := range groups {
		r := runners[g.shard]
		alive, mounted := false, false
		for _, serial := range g.serials {
			if r.CartridgeLost(serial) {
				continue
			}
			alive = true
			if r.Mounted(serial) {
				mounted = true
			}
		}
		if !alive {
			continue
		}
		if gi == 0 {
			primaryAlive = true
		}
		cands = append(cands, Candidate{
			Shard:      g.shard,
			QueueDepth: r.QueueDepth(),
			Headroom:   r.Headroom(),
			Mounted:    mounted,
			Cached:     tiers[g.shard].Cached(req.ObjectID),
			Primary:    gi == 0,
			Health:     hf.score(g.shard),
		})
	}
	if len(cands) == 0 {
		// Every copy is lost. Dispatch to the primary shard anyway:
		// the shard fails the request in its own accounting, so
		// Served+Failed+Rejected+Shed still partitions the offered
		// stream.
		return decision{shard: groups[0].shard, unroutable: true}, nil
	}
	scores := make([]float64, len(cands))
	router.Score(ordinal, len(runners), cands, scores)
	idx, ok := pickBest(scores, seed, ordinal)
	if !ok {
		// Every candidate shard scored -Inf: all of them have zero
		// headroom (every drive down). Routing "arbitrarily" here would
		// mean the tie-break, not the policy, picked the shard — so
		// treat it like the all-copies-lost case instead: dispatch to
		// the primary shard, whose own breaker sheds or serves it, and
		// the partition stays exact.
		return decision{shard: groups[0].shard, unroutable: true}, nil
	}
	pick := cands[idx]
	return decision{
		shard:    pick.Shard,
		affinity: pick.Mounted,
		cross:    !pick.Primary && !primaryAlive,
	}, nil
}

// pickBest selects the index of the best-scored candidate, resolving
// exact score ties by tieBreak(seed, ordinal). ok is false when even
// the best score is -Inf — every candidate shard has zero live
// capacity — and the caller must fall back to the unroutable path
// rather than let the tie-break choose among equally dead shards.
func pickBest(scores []float64, seed int64, ordinal int) (int, bool) {
	ties := []int{0}
	best := scores[0]
	for j := 1; j < len(scores); j++ {
		switch {
		case scores[j] > best:
			best = scores[j]
			ties = ties[:1]
			ties[0] = j
		case scores[j] == best:
			ties = append(ties, j)
		}
	}
	if math.IsInf(best, -1) {
		return 0, false
	}
	return ties[tieBreak(seed, ordinal, len(ties))], true
}
