package fleet

import (
	"math"
	"reflect"
	"strconv"
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/hsm"
	"serpentine/internal/obs"
)

// eventsSweepCfg is a small faulted, cached fleet sweep that drives
// the event plane through its full surface.
func eventsSweepCfg(workers int, eventCap int) SweepConfig {
	return SweepConfig{
		TapeCount:    8,
		Objects:      32,
		Replicas:     2,
		RatesPerHour: []float64{240},
		ShardCounts:  []int{2},
		Routers:      []Router{Affinity{}},
		Drives:       1,
		BatchLimit:   4,
		Requests:     120,
		Lifecycle:    fault.LifecycleConfig{CartridgeLossRate: 0.05},
		Cache:        hsm.Config{CapacityBytes: 64 << 20},
		Seed:         1,
		Workers:      workers,
		EventCap:     eventCap,
	}
}

// TestFleetEventsTimingNeutral pins that arming the event ring and the
// health tracker changes nothing the simulation computes: per-shard
// completions and metrics stay deeply equal, because events are pure
// accounting and the health score is observational (no built-in router
// reads Candidate.Health).
func TestFleetEventsTimingNeutral(t *testing.T) {
	fl, err := New(StoreConfig{Shards: 2, TapeCount: 8, Objects: 32, ObjectSegments: 8, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 100, 7, 8, 32, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ring *obs.EventRing, health *obs.HealthTracker) ([]ShardResult, Metrics) {
		res, m, err := fl.Run(RunConfig{
			Drives:     1,
			BatchLimit: 4,
			Lifecycle:  fault.LifecycleConfig{CartridgeLossRate: 0.05, Seed: 5},
			Cache:      hsm.Config{CapacityBytes: 64 << 20},
			Router:     Affinity{},
			Seed:       3,
			Events:     ring,
			Health:     health,
		}, stream)
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	r0, m0 := run(nil, nil)
	ring := obs.NewEventRing(len(stream))
	health := obs.NewHealthTracker()
	r1, m1 := run(ring, health)
	if !reflect.DeepEqual(m0, m1) {
		t.Fatalf("arming events+health changed fleet metrics:\n%+v\n%+v", m0, m1)
	}
	if !reflect.DeepEqual(r0, r1) {
		t.Fatal("arming events+health changed shard results")
	}
	if ring.Total() != int64(len(stream)) {
		t.Fatalf("%d events for %d requests", ring.Total(), len(stream))
	}
	if len(health.Keys()) == 0 {
		t.Fatal("health tracker scored no keys")
	}
}

// TestFleetEventFold checks the merged log: one event per request in
// nondecreasing terminal-time order, every event stamped with its
// shard and a route, counts reconciling with the fleet partition, and
// attribution telescoping on every event.
func TestFleetEventFold(t *testing.T) {
	fl, err := New(StoreConfig{Shards: 2, TapeCount: 8, Objects: 32, ObjectSegments: 8, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 120, 7, 8, 32, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewEventRing(len(stream))
	res, m, err := fl.Run(RunConfig{
		Drives:     1,
		BatchLimit: 4,
		QueueCap:   8,
		Lifecycle:  fault.LifecycleConfig{CartridgeLossRate: 0.05, Seed: 5},
		Cache:      hsm.Config{CapacityBytes: 64 << 20},
		Router:     Affinity{},
		Seed:       3,
		Events:     ring,
	}, stream)
	if err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	if len(events) != len(stream) {
		t.Fatalf("%d events for %d requests", len(events), len(stream))
	}
	counts := map[string]int{}
	perShard := map[int]int{}
	cacheHits := 0
	for i, ev := range events {
		counts[ev.Outcome]++
		perShard[ev.Shard]++
		if ev.Cache {
			cacheHits++
		}
		if ev.Route == "" {
			t.Fatalf("fleet event %d carries no route", i)
		}
		if ev.Shard < 0 || ev.Shard >= fl.Shards() {
			t.Fatalf("event %d stamped shard %d of %d", i, ev.Shard, fl.Shards())
		}
		if i > 0 && events[i].DoneSec < events[i-1].DoneSec {
			t.Fatalf("fold out of order: event %d at %.3f after %.3f", i, events[i].DoneSec, events[i-1].DoneSec)
		}
		if e := math.Abs(ev.SojournSec() - ev.AttributionSum()); e > 1e-9 {
			t.Fatalf("event %d (%s %s) attribution off by %g", i, ev.Outcome, ev.Object, e)
		}
	}
	if counts[obs.OutcomeServed] != m.Served || counts[obs.OutcomeFailed] != m.Failed ||
		counts[obs.OutcomeRejected] != m.Rejected || counts[obs.OutcomeShed] != m.Shed {
		t.Fatalf("event counts %v != fleet partition served %d failed %d rejected %d shed %d",
			counts, m.Served, m.Failed, m.Rejected, m.Shed)
	}
	if cacheHits != m.CacheHits {
		t.Fatalf("%d cache-hit events, metrics say %d", cacheHits, m.CacheHits)
	}
	for s, sr := range res {
		if perShard[s] != sr.Routed {
			t.Fatalf("shard %d has %d events for %d routed requests", s, perShard[s], sr.Routed)
		}
	}
}

// TestFleetEventsSweepDeterministic pins the satellite promise: the
// sweep's per-cell event logs are byte-equal at any worker count, and
// every event carries the cell's coordinate labels.
func TestFleetEventsSweepDeterministic(t *testing.T) {
	run := func(workers int) [][]obs.Event {
		cells, err := Sweep(eventsSweepCfg(workers, 200))
		if err != nil {
			t.Fatal(err)
		}
		var out [][]obs.Event
		for _, c := range cells {
			out = append(out, c.Events)
		}
		return out
	}
	e1, e2 := run(1), run(2)
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("sweep event logs differ between 1 and 2 workers")
	}
	if len(e1) == 0 || len(e1[0]) == 0 {
		t.Fatal("sweep produced no events")
	}
	for _, ev := range e1[0] {
		labels := map[string]string{}
		for _, l := range ev.Labels {
			labels[l.Key] = l.Value
		}
		if labels["rate"] != "240" || labels["shards"] != "2" || labels["router"] != "affinity" {
			t.Fatalf("event labels %v missing cell coordinates", ev.Labels)
		}
	}
}

// TestCandidateHealthPopulated drives a health-armed run through a
// router that records the Health probes it is scored with: every probe
// must be in [0,1], start at 1 (no history), and — with cartridge loss
// failing requests — eventually drop below 1 for some shard.
func TestCandidateHealthPopulated(t *testing.T) {
	fl, err := New(StoreConfig{Shards: 2, TapeCount: 8, Objects: 32, ObjectSegments: 8, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 150, 7, 8, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &healthRecorder{}
	_, _, err = fl.Run(RunConfig{
		Drives:     1,
		BatchLimit: 4,
		Lifecycle:  fault.LifecycleConfig{CartridgeLossRate: 0.2, Seed: 42},
		Router:     rec,
		Seed:       3,
		Health:     obs.NewHealthTracker(),
	}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.probes) == 0 {
		t.Fatal("router saw no candidates")
	}
	sawDegraded := false
	for i, h := range rec.probes {
		if h < 0 || h > 1 || h != h {
			t.Fatalf("probe %d health %g outside [0,1]", i, h)
		}
		if h < 1 {
			sawDegraded = true
		}
	}
	if rec.probes[0] != 1 {
		t.Fatalf("first probe health %g, want 1 (no history yet)", rec.probes[0])
	}
	if !sawDegraded {
		t.Fatal("cartridge loss never degraded any shard's health score")
	}

	// Without a tracker every probe is exactly 1.
	rec2 := &healthRecorder{}
	_, _, err = fl.Run(RunConfig{
		Drives: 1, BatchLimit: 4,
		Lifecycle: fault.LifecycleConfig{CartridgeLossRate: 0.2, Seed: 42},
		Router:    rec2, Seed: 3,
	}, stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range rec2.probes {
		if h != 1 {
			t.Fatalf("trackerless probe %d health %g, want 1", i, h)
		}
	}
}

// healthRecorder is a LeastLoaded router that also records every
// Candidate.Health probe it is given.
type healthRecorder struct {
	probes []float64
}

func (r *healthRecorder) Name() string { return "health-recorder" }

func (r *healthRecorder) Score(ordinal, shards int, cands []Candidate, scores []float64) {
	for _, c := range cands {
		r.probes = append(r.probes, c.Health)
	}
	LeastLoaded{}.Score(ordinal, shards, cands, scores)
}

// TestHealthFeedHeapOrder pins the min-heap the feed releases events
// through: pops come out in (DoneSec, Shard, Seq) order and the
// vacated tail slot is cleared.
func TestHealthFeedHeapOrder(t *testing.T) {
	hf := &healthFeed{}
	in := []obs.Event{
		{DoneSec: 5, Shard: 1, Seq: 1, Object: "a"},
		{DoneSec: 3, Shard: 0, Seq: 2, Object: "b"},
		{DoneSec: 5, Shard: 0, Seq: 9, Object: "c"},
		{DoneSec: 3, Shard: 0, Seq: 1, Object: "d"},
		{DoneSec: 5, Shard: 0, Seq: 2, Object: "e"},
	}
	for _, ev := range in {
		hf.push(ev)
	}
	want := []string{"d", "b", "e", "c", "a"}
	for i, name := range want {
		ev := hf.pop()
		if ev.Object != name {
			t.Fatalf("pop %d = %q, want %q", i, ev.Object, name)
		}
		tail := hf.heap[len(hf.heap):cap(hf.heap)]
		for j, s := range tail {
			if s.Object != "" {
				t.Fatalf("after pop %d, vacated slot %d still pins %q", i, j, s.Object)
			}
		}
	}
}

// TestFleetEventSeqStampsSourceSlot checks the fold preserves per-
// shard sequence numbers: (Shard, Seq) in the merged log names the
// source shard's emission slot, dense from 1 per shard.
func TestFleetEventSeqStampsSourceSlot(t *testing.T) {
	fl, err := New(StoreConfig{Shards: 2, TapeCount: 8, Objects: 32, ObjectSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 60, 7, 8, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewEventRing(len(stream))
	_, _, err = fl.Run(RunConfig{Drives: 1, BatchLimit: 4, Events: ring}, stream)
	if err != nil {
		t.Fatal(err)
	}
	next := map[int]int64{}
	seen := map[string]bool{}
	for _, ev := range ring.Events() {
		key := strconv.Itoa(ev.Shard) + "/" + strconv.FormatInt(ev.Seq, 10)
		if seen[key] {
			t.Fatalf("duplicate (shard, seq) %s in merged log", key)
		}
		seen[key] = true
		next[ev.Shard]++
	}
	for s, n := range next {
		for want := int64(1); want <= n; want++ {
			if !seen[strconv.Itoa(s)+"/"+strconv.FormatInt(want, 10)] {
				t.Fatalf("shard %d seq %d missing: per-shard seqs not dense", s, want)
			}
		}
	}
}

// TestSingleShardEventParity pins that a one-shard fleet's events are
// the standalone library's events with the fleet's route stamped on:
// same outcomes, same times, same attribution.
func TestSingleShardEventParity(t *testing.T) {
	fl, err := New(StoreConfig{Shards: 1, TapeCount: 4, Objects: 16, ObjectSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 60, 7, 4, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewEventRing(len(stream))
	_, _, err = fl.Run(RunConfig{Drives: 1, BatchLimit: 4, Events: ring}, stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range ring.Events() {
		if ev.Shard != 0 {
			t.Fatalf("event %d on shard %d in a 1-shard fleet", i, ev.Shard)
		}
		if ev.Route != "routed" && ev.Route != "affinity" {
			t.Fatalf("event %d route %q, want routed/affinity (pass-through of the only shard)", i, ev.Route)
		}
	}
}
