package fleet

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/obs"
	"serpentine/internal/tertiary"
)

// TestSingleShardFleetEquivalence pins the fleet's foundation: a
// one-shard fleet under the pass-through router reproduces
// tertiary.Sweep cells bit for bit. The grids are aligned — same
// store shape, same single-element inner axes so the per-cell seed
// derivations coincide — so any divergence is a real behavior change
// in the routing tier or the incremental run loop.
func TestSingleShardFleetEquivalence(t *testing.T) {
	const (
		tapeCount = 4
		objects   = 128
		requests  = 200
		seed      = 42
	)
	rates := []float64{60, 240}
	cases := []struct {
		name      string
		lifecycle fault.LifecycleConfig
	}{
		{"fault-free", fault.LifecycleConfig{}},
		{"lifecycle", fault.LifecycleConfig{
			DriveMTTFSec:      3600,
			DriveMTTRSec:      600,
			CartridgeLossRate: 0.02,
			RobotStallRate:    0.05,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tertiary.Sweep(tertiary.SweepConfig{
				TapeCount:    tapeCount,
				Objects:      objects,
				RatesPerHour: rates,
				DriveCounts:  []int{2},
				BatchLimits:  []int{8},
				Requests:     requests,
				Lifecycle:    tc.lifecycle,
				Seed:         seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Sweep(SweepConfig{
				TapeCount:    tapeCount,
				Objects:      objects,
				RatesPerHour: rates,
				ShardCounts:  []int{1},
				Routers:      []Router{PassThrough{}},
				Drives:       2,
				BatchLimit:   8,
				Requests:     requests,
				Lifecycle:    tc.lifecycle,
				Seed:         seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("cell counts: fleet %d, tertiary %d", len(got), len(want))
			}
			for i := range got {
				if got[i].RatePerHour != want[i].RatePerHour {
					t.Fatalf("cell %d rate %g vs %g", i, got[i].RatePerHour, want[i].RatePerHour)
				}
				if len(got[i].PerShard) != 1 {
					t.Fatalf("cell %d has %d shards", i, len(got[i].PerShard))
				}
				if got[i].PerShard[0] != want[i].Metrics {
					t.Errorf("cell %g/h diverges:\nfleet:    %+v\ntertiary: %+v",
						got[i].RatePerHour, got[i].PerShard[0], want[i].Metrics)
				}
				if got[i].Routed[0] != requests {
					t.Errorf("cell %g/h routed %d of %d to the only shard",
						got[i].RatePerHour, got[i].Routed[0], requests)
				}
			}
		})
	}
}

// TestFleetConservation checks the partition invariant across shard
// counts and routers: Served+Failed+Rejected+Shed summed over shards
// equals the offered stream, and each shard's partition equals what
// was routed to it.
func TestFleetConservation(t *testing.T) {
	cells, err := Sweep(SweepConfig{
		TapeCount:    8,
		Objects:      64,
		Replicas:     2,
		RatesPerHour: []float64{240},
		ShardCounts:  []int{1, 2, 4},
		Requests:     150,
		QueueCap:     8,
		DeadlineSec:  3000,
		Lifecycle: fault.LifecycleConfig{
			DriveMTTFSec:      2400,
			DriveMTTRSec:      900,
			CartridgeLossRate: 0.05,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		m := c.Metrics
		if got := m.Served + m.Failed + m.Rejected + m.Shed; got != m.Offered {
			t.Errorf("%d shards %s: served %d + failed %d + rejected %d + shed %d = %d, offered %d",
				c.Shards, c.Router, m.Served, m.Failed, m.Rejected, m.Shed, got, m.Offered)
		}
		routedSum := 0
		for s, sm := range c.PerShard {
			routedSum += c.Routed[s]
			if part := sm.Served + sm.Failed + sm.Rejected + sm.Shed; part != c.Routed[s] {
				t.Errorf("%d shards %s shard %d: partition %d != routed %d",
					c.Shards, c.Router, s, part, c.Routed[s])
			}
		}
		if routedSum != m.Offered {
			t.Errorf("%d shards %s: routed %d != offered %d", c.Shards, c.Router, routedSum, m.Offered)
		}
	}
}

// TestRoundRobinDeal pins the deal on a fully replicated store: with
// every object on every shard, round-robin's per-shard counts differ
// by at most one.
func TestRoundRobinDeal(t *testing.T) {
	f, err := New(StoreConfig{Shards: 4, TapeCount: 4, Objects: 32, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 101, 3, 4, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := f.Run(RunConfig{Drives: 1, BatchLimit: 8, Router: RoundRobin{}, Seed: 3}, stream)
	if err != nil {
		t.Fatal(err)
	}
	minR, maxR := res[0].Routed, res[0].Routed
	for _, r := range res[1:] {
		if r.Routed < minR {
			minR = r.Routed
		}
		if r.Routed > maxR {
			maxR = r.Routed
		}
	}
	if maxR-minR > 1 {
		t.Errorf("round-robin deal spread %d..%d over %d requests", minR, maxR, m.Offered)
	}
}

// TestAffinityBeatsLeastLoadedOnHits replays one high-locality stream
// under both routers: the affinity router must land at least as many
// requests on shards already holding the cartridge.
func TestAffinityBeatsLeastLoadedOnHits(t *testing.T) {
	f, err := New(StoreConfig{Shards: 2, TapeCount: 4, Objects: 32, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 200, 11, 4, 32, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	_, affinity, err := f.Run(RunConfig{Drives: 2, BatchLimit: 8, Router: Affinity{}, Seed: 11}, stream)
	if err != nil {
		t.Fatal(err)
	}
	_, least, err := f.Run(RunConfig{Drives: 2, BatchLimit: 8, Router: LeastLoaded{}, Seed: 11}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if affinity.AffinityHits < least.AffinityHits {
		t.Errorf("affinity router hit %d mounted shards, least-loaded %d",
			affinity.AffinityHits, least.AffinityHits)
	}
	if affinity.AffinityHits == 0 {
		t.Error("affinity router never hit a mounted cartridge on a 0.8-locality stream")
	}
}

// TestCrossShardReplicaReads arms cartridge loss on a replicated
// 2-shard fleet and checks that requests whose primary shard lost its
// copy are rerouted to the sister shard — and still conserved.
func TestCrossShardReplicaReads(t *testing.T) {
	f, err := New(StoreConfig{Shards: 2, TapeCount: 4, Objects: 32, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 300, 5, 4, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := f.Run(RunConfig{
		Drives:     2,
		BatchLimit: 8,
		Router:     LeastLoaded{},
		Seed:       5,
		Lifecycle:  fault.LifecycleConfig{CartridgeLossRate: 0.2, Seed: 5},
	}, stream)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, r := range res {
		lost += r.Metrics.LostCartridges
	}
	if lost == 0 {
		t.Skip("no cartridge was lost under this seed; cross-shard path not reachable")
	}
	if m.CrossShardReads == 0 {
		t.Errorf("%d cartridges lost but no cross-shard replica reads", lost)
	}
	if got := m.Served + m.Failed + m.Rejected + m.Shed; got != m.Offered {
		t.Errorf("partition %d != offered %d under cartridge loss", got, m.Offered)
	}
}

// TestFleetSpans checks the span nesting: one fleet root per run,
// every shard's run span a child of it, each on its own lane block.
func TestFleetSpans(t *testing.T) {
	const shards, drives = 2, 2
	f, err := New(StoreConfig{Shards: shards, TapeCount: 4, Objects: 32})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 50, 9, 4, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(1 << 14)
	if _, _, err := f.Run(RunConfig{Drives: drives, BatchLimit: 8, Router: RoundRobin{}, Seed: 9, Spans: tracer}, stream); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Spans()
	var rootID uint64
	for _, s := range spans {
		if s.Name == "fleet" {
			if rootID != 0 {
				t.Fatal("more than one fleet root span")
			}
			rootID = s.ID
			if s.Parent != 0 || s.Lane != 0 {
				t.Errorf("fleet root parent %d lane %d", s.Parent, s.Lane)
			}
		}
	}
	if rootID == 0 {
		t.Fatal("no fleet root span recorded")
	}
	lanes := map[int]bool{}
	runs := 0
	for _, s := range spans {
		if s.Name != "run" {
			continue
		}
		runs++
		if s.Parent != rootID {
			t.Errorf("shard run span parent %d, want fleet root %d", s.Parent, rootID)
		}
		if (s.Lane-1)%(1+drives) != 0 || lanes[s.Lane] {
			t.Errorf("shard run span on unexpected or reused lane %d", s.Lane)
		}
		lanes[s.Lane] = true
	}
	if runs != shards {
		t.Errorf("%d shard run spans, want %d", runs, shards)
	}
}

// TestFleetRegistryMerge checks the shard fold: per-shard series land
// under shard="N", and the fleet's routing counters account for every
// request.
func TestFleetRegistryMerge(t *testing.T) {
	const shards = 2
	f, err := New(StoreConfig{Shards: shards, TapeCount: 4, Objects: 32})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Stream(240, 80, 13, 4, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, m, err := f.Run(RunConfig{Drives: 1, BatchLimit: 8, Router: RoundRobin{}, Seed: 13, Reg: reg}, stream)
	if err != nil {
		t.Fatal(err)
	}
	var routed, served int64
	for s := 0; s < shards; s++ {
		label := obs.L("shard", strconv.Itoa(s))
		got := reg.Counter("fleet_routed_total", label).Value()
		if got != int64(res[s].Routed) {
			t.Errorf("shard %d fleet_routed_total = %d, want %d", s, got, res[s].Routed)
		}
		routed += got
		served += reg.Counter("served_total", label).Value()
	}
	if routed != int64(m.Offered) {
		t.Errorf("routed counters sum to %d, offered %d", routed, m.Offered)
	}
	if served != int64(m.Served) {
		t.Errorf("shard served_total counters sum to %d, fleet served %d", served, m.Served)
	}
	if got := reg.Counter("fleet_offered_total").Value(); got != int64(m.Offered) {
		t.Errorf("fleet_offered_total = %d, want %d", got, m.Offered)
	}
}

// TestFleetRejectsBadShapes pins the store validation.
func TestFleetRejectsBadShapes(t *testing.T) {
	if _, err := New(StoreConfig{Shards: 5, TapeCount: 4}); err == nil ||
		!strings.Contains(err.Error(), "shards") {
		t.Errorf("shards > tapes accepted: %v", err)
	}
	if _, err := New(StoreConfig{Shards: 2, TapeCount: 4, Replicas: 5}); err == nil ||
		!strings.Contains(err.Error(), "replication") {
		t.Errorf("replicas > tapes accepted: %v", err)
	}
	if _, err := Stream(240, 10, 1, 4, 32, 1.5); err == nil {
		t.Error("locality 1.5 accepted")
	}
}

// TestSweepWorkerCountInvariance pins satellite determinism: the
// entire sweep — cell metrics, per-shard routing assignments (which
// embed every tie-break decision, so equal-scoring shards resolve as
// a pure function of seed and request ordinal), and the merged
// registry dump — is identical at 1 and 8 workers. Least-loaded over
// a replicated store produces plenty of exact score ties (equal
// depth, equal headroom), which is where a scheduling-order leak
// would surface first.
func TestSweepWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]Cell, string) {
		reg := obs.NewRegistry()
		cells, err := Sweep(SweepConfig{
			TapeCount:    8,
			Objects:      64,
			Replicas:     2,
			RatesPerHour: []float64{120, 480},
			ShardCounts:  []int{2, 4},
			Routers:      []Router{RoundRobin{}, LeastLoaded{}, Affinity{}},
			Requests:     150,
			Locality:     0.5,
			Lifecycle:    fault.LifecycleConfig{CartridgeLossRate: 0.05},
			Seed:         9,
			Workers:      workers,
			Reg:          reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		var dump strings.Builder
		if err := reg.WriteProm(&dump); err != nil {
			t.Fatal(err)
		}
		return cells, dump.String()
	}
	cells1, dump1 := run(1)
	cells8, dump8 := run(8)
	if !reflect.DeepEqual(cells1, cells8) {
		t.Errorf("cells differ between 1 and 8 workers")
		for i := range cells1 {
			if !reflect.DeepEqual(cells1[i], cells8[i]) {
				t.Errorf("first divergence at cell %d (%g/h, %d shards, %s):\nw1: %+v\nw8: %+v",
					i, cells1[i].RatePerHour, cells1[i].Shards, cells1[i].Router, cells1[i], cells8[i])
				break
			}
		}
	}
	if dump1 != dump8 {
		t.Error("metrics dumps differ between 1 and 8 workers")
	}
}
