package fleet

import (
	"testing"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/tertiary"
)

// fuzzFleets builds one small cluster store per shard count, shared
// read-only across fuzz iterations the way Sweep shares them across
// cells. Tiny-profile tapes keep each iteration cheap.
func fuzzFleets(f *testing.F) map[int]*Fleet {
	fleets := make(map[int]*Fleet, 4)
	for s := 1; s <= 4; s++ {
		fl, err := New(StoreConfig{
			Profile:        geometry.Tiny(),
			Shards:         s,
			TapeCount:      4,
			Objects:        16,
			ObjectSegments: 2,
			Replicas:       2,
		})
		if err != nil {
			f.Fatal(err)
		}
		fleets[s] = fl
	}
	return fleets
}

// FuzzFleetRouting drives the routing tier with arbitrary (seed, rate,
// shard count, policy, locality, loss) combinations and checks the
// cluster-wide conservation law: every offered request is routed to
// exactly one shard and lands in exactly one of served, failed,
// rejected or shed — per shard and in the fleet aggregate — even when
// cartridge loss forces cross-shard replica reads or leaves an object
// with no live copy at all. Each cell also runs twice to pin that
// routing is a pure function of its inputs.
func FuzzFleetRouting(f *testing.F) {
	fleets := fuzzFleets(f)

	f.Add(int64(42), byte(10), byte(2), byte(3), byte(0), byte(30), byte(0))
	f.Add(int64(7), byte(40), byte(4), byte(2), byte(80), byte(50), byte(20))
	f.Add(int64(-3), byte(1), byte(1), byte(0), byte(0), byte(1), byte(0))
	f.Add(int64(99), byte(200), byte(3), byte(1), byte(50), byte(60), byte(29))

	routers := []Router{PassThrough{}, RoundRobin{}, LeastLoaded{}, Affinity{}}
	f.Fuzz(func(t *testing.T, seed int64, rateCode, shardCode, routerCode, locCode, nCode, lossCode byte) {
		rate := 30 + float64(rateCode)*8
		shards := 1 + int(shardCode)%4
		router := routers[int(routerCode)%len(routers)]
		locality := float64(int(locCode)%100) / 100
		n := 1 + int(nCode)%60
		loss := float64(int(lossCode)%30) / 100

		stream, err := Stream(rate, n, seed, 4, 16, locality)
		if err != nil {
			t.Fatal(err)
		}
		cfg := RunConfig{
			Drives:      2,
			BatchLimit:  8,
			QueueCap:    6,
			DeadlineSec: 2500,
			Router:      router,
			Seed:        seed,
		}
		if loss > 0 {
			cfg.Lifecycle = fault.LifecycleConfig{CartridgeLossRate: loss, Seed: seed + 5}
		}
		res, m, err := fleets[shards].Run(cfg, stream)
		if err != nil {
			t.Fatal(err)
		}

		if m.Offered != n {
			t.Fatalf("offered %d of %d requests", m.Offered, n)
		}
		if got := m.Served + m.Failed + m.Rejected + m.Shed; got != n {
			t.Fatalf("fleet conservation broken: served %d + failed %d + rejected %d + shed %d = %d != %d offered",
				m.Served, m.Failed, m.Rejected, m.Shed, got, n)
		}
		var routed, served, failed, rejected, shed int
		for s, sr := range res {
			routed += sr.Routed
			served += sr.Metrics.Served
			failed += sr.Metrics.Failed
			rejected += sr.Metrics.Rejected
			shed += sr.Metrics.Shed
			if got := sr.Metrics.Served + sr.Metrics.Failed + sr.Metrics.Rejected + sr.Metrics.Shed; got != sr.Routed {
				t.Fatalf("shard %d conservation broken: outcomes %d != routed %d", s, got, sr.Routed)
			}
		}
		if routed != n {
			t.Fatalf("routed %d of %d requests", routed, n)
		}
		if served != m.Served || failed != m.Failed || rejected != m.Rejected || shed != m.Shed {
			t.Fatalf("shard sums (%d %d %d %d) disagree with fleet (%d %d %d %d)",
				served, failed, rejected, shed, m.Served, m.Failed, m.Rejected, m.Shed)
		}
		if m.AffinityHits > n || m.CrossShardReads > n || m.Unroutable > n {
			t.Fatalf("routing counters exceed offered: affinity %d xshard %d unroutable %d > %d",
				m.AffinityHits, m.CrossShardReads, m.Unroutable, n)
		}
		if m.Makespan < 0 {
			t.Fatalf("negative makespan %g", m.Makespan)
		}

		// Routing is a pure function of (store, config, stream): the
		// same cell replayed is bit-identical, shard by shard.
		res2, m2, err := fleets[shards].Run(cfg, stream)
		if err != nil {
			t.Fatal(err)
		}
		if m2 != m {
			t.Fatalf("replay diverged: %+v then %+v", m, m2)
		}
		for s := range res {
			if res2[s].Routed != res[s].Routed || res2[s].Metrics != res[s].Metrics {
				t.Fatalf("shard %d replay diverged: routed %d/%d", s, res[s].Routed, res2[s].Routed)
			}
		}
	})
}

// TestAllDrivesDeadRoutesToPrimary pins the router's dead-cluster
// fallback: when every candidate shard has zero headroom, every score
// is -Inf, and the request must go to its primary shard as an
// unroutable dispatch — not to whichever dead shard the tie-break
// lands on — where the shard's open breaker sheds it and conservation
// holds.
func TestAllDrivesDeadRoutesToPrimary(t *testing.T) {
	fl, err := New(StoreConfig{
		Profile:        geometry.Tiny(),
		Shards:         2,
		TapeCount:      4,
		Objects:        16,
		ObjectSegments: 2,
		Replicas:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Short-lived drives, effectively never repaired: by the arrival
	// time every drive in the cluster is down.
	cfg := RunConfig{
		Drives: 2,
		Lifecycle: fault.LifecycleConfig{
			DriveMTTFSec: 60,
			DriveMTTRSec: 1e12,
		},
		Router: LeastLoaded{},
		Seed:   1,
	}
	// Headroom is a probe of each shard's event loop, updated as the
	// loop processes offers — an idle loop reports its last observed
	// state. By 100000s every drive is dead (mean life 60s, repair
	// effectively never), so each warm-up opens the breaker of
	// whichever shard it lands on: the first goes to either shard
	// (both still look closed) and opens it, which forces the second
	// to the other shard and opens that one too. The probed arrivals
	// then see zero headroom everywhere — every score -Inf.
	warmups := 2
	stream := []tertiary.Request{
		{ObjectID: "t0/o0", Arrival: 100000}, // warm-up: opens one shard's breaker
		{ObjectID: "t1/o0", Arrival: 100001}, // warm-up: opens the other's
		{ObjectID: "t0/o1", Arrival: 200000}, // primary copy on tape 0 → shard 0
		{ObjectID: "t1/o3", Arrival: 200000}, // primary copy on tape 1 → shard 1
		{ObjectID: "t2/o5", Arrival: 200001}, // tape 2 → shard 0
	}
	res, m, err := fl.Run(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	probed := len(stream) - warmups
	if m.Unroutable != probed {
		t.Fatalf("unroutable=%d, want %d (all drives down)", m.Unroutable, probed)
	}
	if res[0].Routed < 2 || res[1].Routed < 1 {
		t.Fatalf("routed %d/%d across shards: probed requests missing from their primary shards",
			res[0].Routed, res[1].Routed)
	}
	if got := m.Served + m.Failed + m.Rejected + m.Shed; got != len(stream) {
		t.Fatalf("conservation broken on a dead cluster: outcomes %d != offered %d", got, len(stream))
	}
	if m.Shed < probed {
		t.Fatalf("shed=%d, want at least %d (open breakers shed everything probed)", m.Shed, probed)
	}
}
