package fleet

import (
	"fmt"
	"io"
)

// WriteFleet renders the fleet sweep: one block per arrival rate, one
// row per (shards, router), with the partition counters, delivered
// throughput, latency, the routing-quality counters, and the load
// imbalance (the busiest shard's share of the stream relative to a
// perfectly even deal; 1.00 is perfect balance). Fixed formatting
// keeps the table byte-deterministic.
func WriteFleet(w io.Writer, cells []Cell) error {
	var rates []float64
	seen := make(map[float64]bool)
	for _, c := range cells {
		if !seen[c.RatePerHour] {
			seen[c.RatePerHour] = true
			rates = append(rates, c.RatePerHour)
		}
	}
	for _, rate := range rates {
		if _, err := fmt.Fprintf(w, "# arrival rate %g/h\n%6s %-13s %6s %6s %6s %6s %8s %12s %11s %9s %6s %9s\n",
			rate, "shards", "router", "served", "failed", "reject", "shed", "IO/h",
			"mean lat (s)", "max lat (s)", "affinity%", "xshard", "imbalance"); err != nil {
			return err
		}
		for _, c := range cells {
			if c.RatePerHour != rate {
				continue
			}
			m := c.Metrics
			ioPerHour := 0.0
			if m.Makespan > 0 {
				ioPerHour = float64(m.Served) / m.Makespan * 3600
			}
			affinity := 0.0
			if m.Offered > 0 {
				affinity = float64(m.AffinityHits) / float64(m.Offered) * 100
			}
			imbalance := 0.0
			if m.Offered > 0 && c.Shards > 0 {
				maxRouted := 0
				for _, r := range c.Routed {
					if r > maxRouted {
						maxRouted = r
					}
				}
				imbalance = float64(maxRouted) * float64(c.Shards) / float64(m.Offered)
			}
			if _, err := fmt.Fprintf(w, "%6d %-13s %6d %6d %6d %6d %8.1f %12.0f %11.0f %9.1f %6d %9.2f\n",
				c.Shards, c.Router, m.Served, m.Failed, m.Rejected, m.Shed, ioPerHour,
				m.MeanLatency, m.MaxLatency, affinity, m.CrossShardReads, imbalance); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
