package fleet

import (
	"math"
	"reflect"
	"testing"
)

// TestTieBreakPure pins the tie-break as a pure function of
// (seed, ordinal): golden values, range validity, and sensitivity to
// both inputs. The fleet-determinism CI job covers the same property
// end to end at 1 and 8 workers; this pins the function itself.
func TestTieBreakPure(t *testing.T) {
	golden := map[int64][]int{
		0:  {1, 0, 1, 1, 1, 0, 2, 2},
		42: {1, 1, 0, 0, 1, 0, 1, 2},
	}
	for seed, want := range golden {
		got := make([]int, len(want))
		for o := range got {
			got[o] = tieBreak(seed, o, 3)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("tieBreak(%d, 0..%d, 3) = %v, want %v", seed, len(want)-1, got, want)
		}
	}
	if got := tieBreak(42, 100, 5); got != 1 {
		t.Errorf("tieBreak(42, 100, 5) = %d, want 1", got)
	}
	for o := 0; o < 1000; o++ {
		for _, k := range []int{1, 2, 3, 7} {
			if pick := tieBreak(99, o, k); pick < 0 || pick >= k {
				t.Fatalf("tieBreak(99, %d, %d) = %d out of range", o, k, pick)
			}
		}
	}
	// Repeated calls agree (no hidden state), and both seed and
	// ordinal move the pick somewhere in a small window.
	seedMoved, ordinalMoved := false, false
	for o := 0; o < 64; o++ {
		a, b := tieBreak(1, o, 4), tieBreak(1, o, 4)
		if a != b {
			t.Fatalf("tieBreak(1, %d, 4) unstable: %d then %d", o, a, b)
		}
		if a != tieBreak(2, o, 4) {
			seedMoved = true
		}
		if a != tieBreak(1, o+1, 4) {
			ordinalMoved = true
		}
	}
	if !seedMoved {
		t.Error("seed never changes the pick")
	}
	if !ordinalMoved {
		t.Error("ordinal never changes the pick")
	}
}

func scoreOf(r Router, ordinal, shards int, cands []Candidate) []float64 {
	scores := make([]float64, len(cands))
	r.Score(ordinal, shards, cands, scores)
	return scores
}

func argmax(scores []float64) int {
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return best
}

func TestPassThroughPrefersPrimary(t *testing.T) {
	cands := []Candidate{
		{Shard: 1, QueueDepth: 0, Headroom: 1},
		{Shard: 3, QueueDepth: 9, Headroom: 0.5, Primary: true},
	}
	if got := argmax(scoreOf(PassThrough{}, 0, 4, cands)); got != 1 {
		t.Errorf("pass-through picked candidate %d, want the primary", got)
	}
}

func TestRoundRobinCyclicFallback(t *testing.T) {
	// Shards 0..3; candidates on 1 and 3 only. Ordinal 2 deals shard
	// 2, which holds no copy; the next candidate cyclically is 3.
	cands := []Candidate{{Shard: 1, Headroom: 1}, {Shard: 3, Headroom: 1}}
	if got := argmax(scoreOf(RoundRobin{}, 2, 4, cands)); got != 1 {
		t.Errorf("round-robin ordinal 2 picked shard %d, want 3", cands[got].Shard)
	}
	if got := argmax(scoreOf(RoundRobin{}, 1, 4, cands)); got != 0 {
		t.Errorf("round-robin ordinal 1 picked shard %d, want 1", cands[got].Shard)
	}
	// The dealt shard itself wins when it is a candidate.
	if got := argmax(scoreOf(RoundRobin{}, 3, 4, cands)); got != 1 {
		t.Errorf("round-robin ordinal 3 picked shard %d, want 3", cands[got].Shard)
	}
}

func TestLeastLoadedScaledByHeadroom(t *testing.T) {
	// Same queue depth, but shard 0 is browning out: its effective
	// load doubles and shard 1 wins.
	cands := []Candidate{
		{Shard: 0, QueueDepth: 4, Headroom: 0.5},
		{Shard: 1, QueueDepth: 4, Headroom: 1},
	}
	if got := argmax(scoreOf(LeastLoaded{}, 0, 2, cands)); got != 1 {
		t.Errorf("least-loaded picked the degraded shard")
	}
	// A shard with zero headroom scores -Inf: never chosen while an
	// alternative exists.
	cands[0].Headroom = 0
	scores := scoreOf(LeastLoaded{}, 0, 2, cands)
	if !math.IsInf(scores[0], -1) {
		t.Errorf("zero-headroom score = %g, want -Inf", scores[0])
	}
	// Deeper queue loses at equal headroom.
	cands = []Candidate{
		{Shard: 0, QueueDepth: 1, Headroom: 1},
		{Shard: 1, QueueDepth: 0, Headroom: 1},
	}
	if got := argmax(scoreOf(LeastLoaded{}, 0, 2, cands)); got != 1 {
		t.Errorf("least-loaded picked the deeper queue")
	}
}

func TestAffinityPrefersMountedThenLoad(t *testing.T) {
	cands := []Candidate{
		{Shard: 0, QueueDepth: 0, Headroom: 1},
		{Shard: 1, QueueDepth: 50, Headroom: 1, Mounted: true},
	}
	if got := argmax(scoreOf(Affinity{}, 0, 2, cands)); got != 1 {
		t.Errorf("affinity ignored the mounted shard")
	}
	// No mounted candidate: falls back to least-loaded ordering.
	cands[1].Mounted = false
	if got := argmax(scoreOf(Affinity{}, 0, 2, cands)); got != 0 {
		t.Errorf("affinity fallback picked the deeper queue")
	}
	// Two mounted candidates: load breaks the tie within the class.
	cands = []Candidate{
		{Shard: 0, QueueDepth: 9, Headroom: 1, Mounted: true},
		{Shard: 1, QueueDepth: 2, Headroom: 1, Mounted: true},
	}
	if got := argmax(scoreOf(Affinity{}, 0, 2, cands)); got != 1 {
		t.Errorf("affinity ignored load among mounted shards")
	}
	// A mounted shard with no live drives must not absorb traffic.
	cands = []Candidate{
		{Shard: 0, QueueDepth: 3, Headroom: 1},
		{Shard: 1, QueueDepth: 0, Headroom: 0, Mounted: true},
	}
	if got := argmax(scoreOf(Affinity{}, 0, 2, cands)); got != 0 {
		t.Errorf("affinity routed to a shard with zero headroom")
	}
}

// TestRouterNames pins the labels the tables and metrics key on.
func TestRouterNames(t *testing.T) {
	want := map[string]Router{
		"pass-through": PassThrough{},
		"round-robin":  RoundRobin{},
		"least-loaded": LeastLoaded{},
		"affinity":     Affinity{},
	}
	for name, r := range want {
		if r.Name() != name {
			t.Errorf("%T.Name() = %q, want %q", r, r.Name(), name)
		}
	}
}

func TestPickBestAllDead(t *testing.T) {
	inf := math.Inf(-1)
	if _, ok := pickBest([]float64{inf, inf, inf}, 1, 0); ok {
		t.Error("pickBest accepted a slate of -Inf scores")
	}
	if _, ok := pickBest([]float64{inf}, 1, 0); ok {
		t.Error("pickBest accepted a single -Inf score")
	}
	if idx, ok := pickBest([]float64{inf, -3, inf}, 1, 0); !ok || idx != 1 {
		t.Errorf("pickBest over {-Inf, -3, -Inf} = (%d, %v), want (1, true)", idx, ok)
	}
	// Ties among finite scores still resolve by the seeded hash.
	for ordinal := 0; ordinal < 32; ordinal++ {
		idx, ok := pickBest([]float64{-2, -2, -9}, 7, ordinal)
		if !ok || idx == 2 {
			t.Fatalf("ordinal %d: pickBest = (%d, %v)", ordinal, idx, ok)
		}
		if want := tieBreak(7, ordinal, 2); idx != want {
			t.Fatalf("ordinal %d: tie resolved to %d, want tieBreak's %d", ordinal, idx, want)
		}
	}
}
