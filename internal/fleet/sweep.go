package fleet

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"serpentine/internal/fault"
	"serpentine/internal/geometry"
	"serpentine/internal/hsm"
	"serpentine/internal/obs"
	"serpentine/internal/rand48"
	"serpentine/internal/server"
	"serpentine/internal/sim"
	"serpentine/internal/tertiary"
	"serpentine/internal/workload"
)

// Stream builds one cell's request stream: Poisson arrivals, Zipf
// object popularity, and a mount-locality knob — with probability
// locality a request re-targets the previous request's cartridge
// (keeping its Zipf-drawn object ordinal), modeling runs of requests
// against the working set already mounted. At locality 0 the
// re-target coin is never drawn and the stream is byte-identical to
// the single-library sweeps' for the same seed and store shape, which
// is what lets a one-shard fleet cell reproduce a tertiary.Sweep cell
// exactly.
func Stream(ratePerHour float64, n int, seed int64, tapeCount, objects int, locality float64) ([]tertiary.Request, error) {
	if locality < 0 || locality >= 1 || math.IsNaN(locality) {
		return nil, fmt.Errorf("fleet: locality %g outside [0,1)", locality)
	}
	arrivals, err := workload.PoissonArrivals(ratePerHour/3600, n, seed)
	if err != nil {
		return nil, err
	}
	pick := workload.NewZipf(tapeCount*objects, seed+1, 0.8, 1)
	var coin *rand48.Source
	if locality > 0 {
		coin = rand48.New(seed + 2)
	}
	prevTape := -1
	stream := make([]tertiary.Request, n)
	for i := range stream {
		flat := pick.Batch(1)[0]
		tape, obj := flat/objects, flat%objects
		if coin != nil && prevTape >= 0 && coin.Drand48() < locality {
			tape = prevTape
		}
		prevTape = tape
		stream[i] = tertiary.Request{ObjectID: objectID(tape, obj), Arrival: arrivals[i]}
	}
	return stream, nil
}

// SweepConfig describes the fleet experiment: one cluster-wide store
// served at every (arrival rate, shard count, routing policy) cell.
// The axes expose the routing trade-off: more shards buy parallel
// robots and drives at the price of a thinner per-shard view of the
// workload, and the policies disagree exactly when mount locality
// makes a shard's working set worth returning to.
type SweepConfig struct {
	// Profile is the drive/cartridge format; zero value selects the
	// DLT4000.
	Profile geometry.Params
	// TapeCount, Objects, ObjectSegments and Replicas shape the
	// cluster store exactly as in StoreConfig (defaults 8, 256, 32,
	// 1). Every shard count in the sweep shares the same cartridges
	// and object layout.
	TapeCount      int
	Objects        int
	ObjectSegments int
	Replicas       int
	// RatesPerHour are the Poisson arrival rates to sweep; nil
	// selects {60, 120, 240}.
	RatesPerHour []float64
	// ShardCounts are the cluster sizes; nil selects {1, 2, 4}.
	ShardCounts []int
	// Routers are the routing policies; nil selects round-robin,
	// least-loaded and affinity.
	Routers []Router
	// Drives is the transport count per shard; 0 selects 2.
	// BatchLimit caps requests served per mount; 0 selects 16 (the
	// fleet sweep has no unlimited-batch axis — use tertiary.Sweep
	// for that).
	Drives     int
	BatchLimit int
	// MountSec, UnmountSec, Policy, WindowSec, QueueCap, Retry and
	// DeadlineSec pass through to every shard.
	MountSec    float64
	UnmountSec  float64
	Policy      server.BatchPolicy
	WindowSec   float64
	QueueCap    int
	Retry       sim.RetryPolicy
	DeadlineSec float64
	// Locality is the stream's mount-locality knob (see Stream).
	Locality float64
	// Lifecycle arms component lifecycle faults on every shard; its
	// Seed is ignored — each cell derives one from Seed and the cell
	// coordinates, and each shard offsets it further.
	Lifecycle fault.LifecycleConfig
	// Cache puts an hsm staging tier in front of every shard of every
	// cell; the zero value disables it (see RunConfig.Cache).
	Cache hsm.Config
	// Requests is the stream length per cell; 0 selects 400.
	Requests int
	// Seed seeds each cell's arrival stream, object picks and routing
	// tie-break, derived per (rate, shards) coordinate so results do
	// not depend on sweep order or worker count and every router at
	// one coordinate replays the same workload. The derivation
	// matches tertiary.Sweep's index positions, so aligned
	// single-shard grids share streams.
	Seed int64
	// Workers bounds concurrent cells; 0 selects GOMAXPROCS.
	Workers int
	// Reg, when non-nil, receives every cell's metrics — per-shard
	// series under shard="N" plus the fleet routing counters — merged
	// in spec order after the parallel phase.
	Reg *obs.Registry
	// SpanCap, when positive, gives every cell its own span tracer of
	// that capacity and returns the recorded spans on the Cell.
	SpanCap int
	// EventCap, when positive, gives every cell its own wide-event ring
	// of that capacity and returns the collected events on the Cell,
	// each stamped with the cell's coordinate labels.
	EventCap int
}

// Cell is one (rate, shards, router) outcome.
type Cell struct {
	RatePerHour float64
	Shards      int
	Router      string
	// Metrics is the fleet-level outcome; PerShard and Routed break
	// it down by shard (completions are not retained).
	Metrics  Metrics
	PerShard []tertiary.Metrics
	Routed   []int
	// Spans holds the cell's recorded spans when SweepConfig.SpanCap
	// was set.
	Spans []obs.Span
	// Events holds the cell's wide-event log — one event per request,
	// ordered by terminal time — when SweepConfig.EventCap was set.
	Events []obs.Event
}

// Sweep runs every cell of the fleet experiment. Cells run
// concurrently up to cfg.Workers — cluster stores are shared
// read-only per shard count — but each cell is fully deterministic,
// so the sweep's output is identical at any worker count.
func Sweep(cfg SweepConfig) ([]Cell, error) {
	rates := cfg.RatesPerHour
	if rates == nil {
		rates = []float64{60, 120, 240}
	}
	shardCounts := cfg.ShardCounts
	if shardCounts == nil {
		shardCounts = []int{1, 2, 4}
	}
	routers := cfg.Routers
	if routers == nil {
		routers = []Router{RoundRobin{}, LeastLoaded{}, Affinity{}}
	}
	drives := cfg.Drives
	if drives <= 0 {
		drives = 2
	}
	limit := cfg.BatchLimit
	if limit == 0 {
		limit = 16
	}
	n := cfg.Requests
	if n <= 0 {
		n = 400
	}
	tapeCount := cfg.TapeCount
	if tapeCount <= 0 {
		tapeCount = 8
	}
	objects := cfg.Objects
	if objects <= 0 {
		objects = 256
	}

	// One cluster store per distinct shard count, shared read-only by
	// that count's cells.
	fleets := make(map[int]*Fleet, len(shardCounts))
	for _, s := range shardCounts {
		if fleets[s] != nil {
			continue
		}
		f, err := New(StoreConfig{
			Profile:        cfg.Profile,
			Shards:         s,
			TapeCount:      tapeCount,
			Objects:        objects,
			ObjectSegments: cfg.ObjectSegments,
			Replicas:       cfg.Replicas,
		})
		if err != nil {
			return nil, err
		}
		fleets[s] = f
	}

	type cellSpec struct {
		rateIdx, shardIdx, routerIdx int
	}
	var specs []cellSpec
	for ri := range rates {
		for si := range shardCounts {
			for pi := range routers {
				specs = append(specs, cellSpec{ri, si, pi})
			}
		}
	}
	cells := make([]Cell, len(specs))
	regs := make([]*obs.Registry, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				rate := rates[sp.rateIdx]
				shards := shardCounts[sp.shardIdx]
				router := routers[sp.routerIdx]
				// One seed per (rate, shards) coordinate, in
				// tertiary.Sweep's index positions: stable under
				// sweep-order and worker-count changes, and aligned
				// with the single-library sweep for equivalence
				// tests. The router index is deliberately excluded —
				// every policy at one coordinate replays the same
				// stream, tie-break draws and failure history, so the
				// router column isolates what the policy buys.
				seed := cfg.Seed*1000003 + int64(sp.rateIdx)*8191 + int64(sp.shardIdx)*521 + 7
				stream, err := Stream(rate, n, seed, tapeCount, objects, cfg.Locality)
				if err != nil {
					reportErr(errs, fmt.Errorf("fleet: sweep arrivals %g/h: %w", rate, err))
					return
				}
				lifecycle := cfg.Lifecycle
				if lifecycle.Enabled() {
					lifecycle.Seed = seed + 5
				}
				var reg *obs.Registry
				if cfg.Reg != nil {
					reg = obs.NewRegistry()
				}
				var spans *obs.Tracer
				if cfg.SpanCap > 0 {
					spans = obs.NewTracer(cfg.SpanCap)
				}
				var events *obs.EventRing
				if cfg.EventCap > 0 {
					events = obs.NewEventRing(cfg.EventCap)
				}
				res, fm, err := fleets[shards].Run(RunConfig{
					Drives:      drives,
					MountSec:    cfg.MountSec,
					UnmountSec:  cfg.UnmountSec,
					BatchLimit:  limit,
					Policy:      cfg.Policy,
					WindowSec:   cfg.WindowSec,
					QueueCap:    cfg.QueueCap,
					Retry:       cfg.Retry,
					DeadlineSec: cfg.DeadlineSec,
					Lifecycle:   lifecycle,
					Cache:       cfg.Cache,
					Router:      router,
					Seed:        seed,
					Reg:         reg,
					Labels: []obs.Label{
						obs.L("rate", fmt.Sprintf("%g", rate)),
						obs.L("shards", strconv.Itoa(shards)),
						obs.L("router", router.Name()),
					},
					Spans:  spans,
					Events: events,
				}, stream)
				if err != nil {
					reportErr(errs, fmt.Errorf("fleet: sweep cell %g/h %d shards %s: %w", rate, shards, router.Name(), err))
					return
				}
				cell := Cell{RatePerHour: rate, Shards: shards, Router: router.Name(), Metrics: fm}
				for s := range res {
					cell.PerShard = append(cell.PerShard, res[s].Metrics)
					cell.Routed = append(cell.Routed, res[s].Routed)
				}
				if spans != nil {
					cell.Spans = spans.Spans()
				}
				if events != nil {
					cell.Events = events.Events()
				}
				cells[i] = cell
				regs[i] = reg
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if cfg.Reg != nil {
		// Merge in spec order so the aggregated dump is independent
		// of which worker ran which cell.
		for _, r := range regs {
			cfg.Reg.Merge(r)
		}
	}
	return cells, nil
}

func reportErr(errs chan<- error, err error) {
	select {
	case errs <- err:
	default:
	}
}
