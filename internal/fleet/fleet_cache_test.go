package fleet

import (
	"reflect"
	"testing"

	"serpentine/internal/hsm"
	"serpentine/internal/obs"
	"serpentine/internal/tertiary"
)

// TestFleetCacheServesRepeats pins the staging-tier wiring: repeats
// of a fetched object hit the shard's cache, hits count into Served,
// conservation holds per shard and fleet-wide with hits included, and
// the run stays deterministic.
func TestFleetCacheServesRepeats(t *testing.T) {
	fl, err := New(StoreConfig{
		Shards:         2,
		TapeCount:      4,
		Objects:        64,
		ObjectSegments: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Drives:     1,
		BatchLimit: 4,
		Cache:      hsm.Config{CapacityBytes: 64 << 20},
		Seed:       9,
	}
	// Replicas 1: each object has one candidate shard, so the repeats
	// land where the first fetch installed it.
	stream := []tertiary.Request{
		{ObjectID: "t0/o1", Arrival: 0},
		{ObjectID: "t1/o2", Arrival: 0},
		{ObjectID: "t0/o1", Arrival: 50000},
		{ObjectID: "t1/o2", Arrival: 50000},
		{ObjectID: "t0/o1", Arrival: 50001},
	}
	res, m, err := fl.Run(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 3 || m.CacheMisses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 3/2", m.CacheHits, m.CacheMisses)
	}
	if m.Served != len(stream) {
		t.Fatalf("served=%d, want %d (hits included)", m.Served, len(stream))
	}
	if got := m.Served + m.Failed + m.Rejected + m.Shed; got != m.Offered {
		t.Fatalf("conservation broken with cache: outcomes %d != offered %d", got, m.Offered)
	}
	var hits, cacheComps int
	for s, sr := range res {
		hits += sr.CacheHits
		outcomes := sr.Metrics.Served + sr.CacheHits + sr.Metrics.Failed + sr.Metrics.Rejected + sr.Metrics.Shed
		if outcomes != sr.Routed {
			t.Fatalf("shard %d conservation broken: outcomes %d != routed %d", s, outcomes, sr.Routed)
		}
		for _, c := range sr.Completions {
			if c.DriveID == hsm.CacheDriveID {
				cacheComps++
			}
		}
	}
	if hits != m.CacheHits {
		t.Fatalf("shard hit sum %d != fleet %d", hits, m.CacheHits)
	}
	if cacheComps != m.CacheHits {
		t.Fatalf("%d cache-hit completions, want %d", cacheComps, m.CacheHits)
	}
	if m.MeanLatency <= 0 || m.MaxLatency < m.MeanLatency {
		t.Fatalf("latency summary: mean %g max %g", m.MeanLatency, m.MaxLatency)
	}

	// Same run again: bit-identical.
	res2, m2, err := fl.Run(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m || !reflect.DeepEqual(res2, res) {
		t.Fatal("cache-backed fleet run is not deterministic")
	}

	// Cache off: no hits, no cache completions, and the same stream
	// serves entirely off tape.
	cfg.Cache = hsm.Config{}
	_, m0, err := fl.Run(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if m0.CacheHits != 0 || m0.CacheMisses != 0 {
		t.Fatalf("disabled cache counted %d/%d hits/misses", m0.CacheHits, m0.CacheMisses)
	}
	if m0.Served != len(stream) {
		t.Fatalf("no-cache served=%d, want %d", m0.Served, len(stream))
	}
}

// TestAffinityRoutesToCachedShard pins the router probe: with two
// replica shards, a repeat of a fetched object routes to the shard
// whose cache holds it — the Cached signal dominating mount affinity
// and load.
func TestAffinityRoutesToCachedShard(t *testing.T) {
	fl, err := New(StoreConfig{
		Shards:         2,
		TapeCount:      4,
		Objects:        64,
		ObjectSegments: 8,
		Replicas:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Drives:     1,
		BatchLimit: 4,
		Cache:      hsm.Config{CapacityBytes: 64 << 20},
		Router:     Affinity{},
		Seed:       5,
	}
	stream := []tertiary.Request{
		{ObjectID: "t0/o3", Arrival: 0},
		{ObjectID: "t0/o3", Arrival: 50000},
	}
	res, m, err := fl.Run(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cache hits=%d, want 1: the repeat did not follow the resident copy", m.CacheHits)
	}
	for s, sr := range res {
		if sr.CacheHits == 1 && sr.Routed != 2 {
			t.Fatalf("shard %d holds the object but routed %d requests, want both", s, sr.Routed)
		}
	}

	// The fleet-level counters appear only when the cache is on.
	reg := obs.NewRegistry()
	cfg.Reg = reg
	if _, _, err := fl.Run(cfg, stream); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fleet_cache_hits_total").Value(); got != 1 {
		t.Fatalf("fleet_cache_hits_total = %d, want 1", got)
	}
	if got := reg.Counter("fleet_cache_misses_total").Value(); got != 1 {
		t.Fatalf("fleet_cache_misses_total = %d, want 1", got)
	}
}
