package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// naive computes mean and unbiased stddev directly for cross-checks.
func naive(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

func TestAccumulatorMatchesNaive(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2.5, -6, 5.25, 3}
	var a Accumulator
	a.AddN(xs)
	wantMean, wantSD := naive(xs)
	if !almost(a.Mean(), wantMean, 1e-12) {
		t.Fatalf("Mean = %g, want %g", a.Mean(), wantMean)
	}
	if !almost(a.StdDev(), wantSD, 1e-12) {
		t.Fatalf("StdDev = %g, want %g", a.StdDev(), wantSD)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d, want %d", a.N(), len(xs))
	}
	if a.Min() != -6 || a.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g, want -6/9", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.StdDev() != 0 || a.N() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	a.Add(7)
	if a.Mean() != 7 || a.StdDev() != 0 || a.Min() != 7 || a.Max() != 7 {
		t.Fatalf("single-sample accumulator wrong: %v", a.String())
	}
}

// Property: merging two accumulators equals accumulating the
// concatenation. This is what makes parallel trial runners safe.
func TestMergeEqualsConcatenation(t *testing.T) {
	f := func(raw1, raw2 []int8) bool {
		xs := make([]float64, len(raw1))
		ys := make([]float64, len(raw2))
		for i, v := range raw1 {
			xs[i] = float64(v) / 3
		}
		for i, v := range raw2 {
			ys[i] = float64(v) * 1.5
		}
		var a, b, both Accumulator
		a.AddN(xs)
		b.AddN(ys)
		a.Merge(&b)
		both.AddN(append(append([]float64{}, xs...), ys...))
		if a.N() != both.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return almost(a.Mean(), both.Mean(), 1e-9) &&
			almost(a.Variance(), both.Variance(), 1e-9) &&
			a.Min() == both.Min() && a.Max() == both.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Accumulator
	b.AddN([]float64{1, 2, 3})
	a.Merge(&b)
	if a.N() != 3 || a.Mean() != 2 {
		t.Fatalf("merge into empty: %s", a.String())
	}
	var c Accumulator
	b.Merge(&c) // merging an empty accumulator is a no-op
	if b.N() != 3 {
		t.Fatal("merging empty changed the accumulator")
	}
}

func TestNumericalStabilityLargeOffset(t *testing.T) {
	// Welford must survive samples with a huge common offset.
	var a Accumulator
	const offset = 1e9
	for _, x := range []float64{4, 7, 13, 16} {
		a.Add(offset + x)
	}
	if !almost(a.StdDev(), 5.477225575, 1e-6) {
		t.Fatalf("StdDev with offset = %g, want ~5.477", a.StdDev())
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); !almost(got, 2.13809, 1e-4) {
		t.Fatalf("StdDev = %g, want ~2.138", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate helper inputs should return 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40}, {40, 29},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Fatalf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile([]float64{42}, 73) != 42 {
		t.Fatal("single-element percentile should be that element")
	}
	// The input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccumulatorRejectsNonFinite(t *testing.T) {
	var a Accumulator
	a.Add(10)
	a.Add(math.NaN())
	a.Add(math.Inf(1))
	a.Add(math.Inf(-1))
	a.Add(20)
	if a.N() != 2 || a.Dropped() != 3 {
		t.Fatalf("n=%d dropped=%d, want 2 kept and 3 dropped", a.N(), a.Dropped())
	}
	if a.Mean() != 15 {
		t.Fatalf("mean %g poisoned by non-finite samples", a.Mean())
	}
	if math.IsNaN(a.StdDev()) || math.IsNaN(a.Min()) || math.IsNaN(a.Max()) {
		t.Fatal("summary statistics went NaN")
	}
}

func TestMergeCombinesDroppedCounts(t *testing.T) {
	var a, b, empty Accumulator
	a.Add(math.NaN())
	b.Add(1)
	b.Add(math.Inf(1))
	// Merge into an accumulator with no samples: the dropped count
	// must survive the wholesale copy.
	empty.Add(math.NaN())
	empty.Merge(&b)
	if empty.N() != 1 || empty.Dropped() != 2 {
		t.Fatalf("empty-merge n=%d dropped=%d, want 1/2", empty.N(), empty.Dropped())
	}
	a.Merge(&b)
	if a.N() != 1 || a.Dropped() != 2 {
		t.Fatalf("merge n=%d dropped=%d, want 1/2", a.N(), a.Dropped())
	}
	// Merging an all-dropped accumulator keeps the count too.
	var c Accumulator
	c.Add(math.NaN())
	b.Merge(&c)
	if b.Dropped() != 2 {
		t.Fatalf("all-dropped merge lost the count: %d", b.Dropped())
	}
}

func TestPercentileOrZero(t *testing.T) {
	if got := PercentileOrZero(nil, 99); got != 0 {
		t.Fatalf("PercentileOrZero(nil) = %g, want 0", got)
	}
	if got := PercentileOrZero([]float64{}, 50); got != 0 {
		t.Fatalf("PercentileOrZero(empty) = %g, want 0", got)
	}
	if got := PercentileOrZero([]float64{3, 1, 2}, 50); got != 2 {
		t.Fatalf("PercentileOrZero = %g, want 2", got)
	}
	if math.IsNaN(PercentileOrZero(nil, 99)) {
		t.Fatal("PercentileOrZero went NaN")
	}
}

// TestIdleWindowSummaryNaNFree is the regression test for the online
// server's idle measurement windows: a window in which every sample
// was dropped (or none arrived at all) must summarize — including
// after a Merge — as NaN-free zeros, never panic.
func TestIdleWindowSummaryNaNFree(t *testing.T) {
	var idle Accumulator
	idle.Add(math.NaN())
	idle.Add(math.Inf(1))
	for name, v := range map[string]float64{
		"mean": idle.Mean(), "sd": idle.StdDev(),
		"min": idle.Min(), "max": idle.Max(),
	} {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("all-dropped accumulator %s = %g, want 0", name, v)
		}
	}
	// p99 of the idle window's (empty) completion set.
	if got := PercentileOrZero(nil, 99); got != 0 || math.IsNaN(got) {
		t.Fatalf("idle-window p99 = %g, want 0", got)
	}
	// Merging idle windows in either direction stays NaN-free.
	var busy Accumulator
	busy.Add(2)
	idle.Merge(&busy)
	if idle.N() != 1 || idle.Dropped() != 2 || math.IsNaN(idle.Mean()) {
		t.Fatalf("idle<-busy merge: n=%d dropped=%d mean=%g", idle.N(), idle.Dropped(), idle.Mean())
	}
	var idle2, total Accumulator
	idle2.Add(math.NaN())
	total.Merge(&idle2)
	if total.N() != 0 || total.Dropped() != 1 || math.IsNaN(total.Mean()) || math.IsNaN(total.StdDev()) {
		t.Fatalf("busy<-idle merge: n=%d dropped=%d mean=%g", total.N(), total.Dropped(), total.Mean())
	}
}
