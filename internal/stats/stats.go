// Package stats provides the small set of statistical accumulators the
// simulation experiments need: streaming mean/variance (Welford),
// min/max, and batch helpers for percentiles. The paper reports the
// mean and standard deviation of schedule execution times over many
// trials (Section 5), so numerical stability over 100,000 samples
// matters more than exotic estimators.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator collects samples and reports summary statistics using
// Welford's online algorithm. The zero value is an empty accumulator
// ready for use.
//
// Non-finite samples (NaN, ±Inf) are rejected rather than absorbed: a
// single NaN would otherwise poison the running mean and variance of
// a 100,000-trial experiment. Rejections are counted in Dropped so a
// producer bug stays visible.
type Accumulator struct {
	n       int
	dropped int
	mean    float64
	m2      float64
	min     float64
	max     float64
}

// Add incorporates one sample. Non-finite samples are dropped (and
// counted); see the type comment.
func (a *Accumulator) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		a.dropped++
		return
	}
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN incorporates every sample in xs.
func (a *Accumulator) AddN(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of samples seen.
func (a *Accumulator) N() int { return a.n }

// Dropped returns the number of non-finite samples rejected by Add.
func (a *Accumulator) Dropped() int { return a.dropped }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (n-1 denominator), or
// 0 when fewer than two samples have been added.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample, or 0 for an empty accumulator.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 for an empty accumulator.
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds the samples summarized by b into a, as if every sample
// added to b had been added to a. This implements Chan et al.'s
// parallel variance combination and lets trial batches run on
// separate goroutines.
func (a *Accumulator) Merge(b *Accumulator) {
	dropped := a.dropped + b.dropped
	a.dropped = dropped
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		a.dropped = dropped
		return
	}
	delta := b.mean - a.mean
	total := float64(a.n + b.n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/total
	a.mean += delta * float64(b.n) / total
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n += b.n
}

// String summarizes the accumulator for log output.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		a.n, a.Mean(), a.StdDev(), a.Min(), a.Max())
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs, or 0
// when xs has fewer than two elements.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var a Accumulator
	a.AddN(xs)
	return a.StdDev()
}

// PercentileOrZero returns Percentile(xs, p), or 0 for an empty xs.
// Online serving emits idle measurement windows — a batching window
// in which nothing completed — and a summary of such a window must
// report a NaN-free zero rather than panic.
func PercentileOrZero(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Percentile(xs, p)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or out-of-range p. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile p out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
