package obs

import (
	"sync"

	"serpentine/internal/stats"
)

// histBounds are the histogram bucket upper bounds in seconds. Tape
// latencies span three orders of magnitude — a same-track locate is a
// few seconds, a sojourn behind a long batch can be hours — so the
// buckets are powers of two from a quarter second to ~18 hours.
var histBounds = func() []float64 {
	var b []float64
	for v := 0.25; v <= 1<<16; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// maxExactSamples bounds the per-histogram sample retention backing
// exact quantiles. Past the cap the histogram keeps counting into its
// buckets and moments but stops retaining samples, and quantiles fall
// back to bucket interpolation; SaturatedQuantiles reports it.
const maxExactSamples = 1 << 20

// Histogram is a latency histogram: exponential buckets for the text
// dump plus retained samples for exact p50/p95/p99 and streaming
// moments via stats.Accumulator. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []int64 // counts per histBounds entry; overflow in acc
	acc     stats.Accumulator
	sum     float64
	samples []float64
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]int64, len(histBounds)+1)}
}

// Observe records one value in seconds. Non-finite values are dropped
// (and counted) by the embedded accumulator, exactly as stats does.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	before := h.acc.N()
	h.acc.Add(v)
	if h.acc.N() == before { // dropped as non-finite
		return
	}
	h.sum += v
	h.buckets[bucketOf(v)]++
	if len(h.samples) < maxExactSamples {
		h.samples = append(h.samples, v)
	}
}

// bucketOf returns the index of the first bound >= v, or the overflow
// bucket.
func bucketOf(v float64) int {
	for i, b := range histBounds {
		if v <= b {
			return i
		}
	}
	return len(histBounds)
}

// Count returns the number of observed (finite) values.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acc.N()
}

// Dropped returns the number of non-finite observations rejected.
func (h *Histogram) Dropped() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acc.Dropped()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observed value, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acc.Mean()
}

// Quantile returns the p-th percentile (0-100) of the observations:
// exact (interpolated between closest ranks) while the sample
// retention holds, bucket-interpolated past it, and 0 when the
// histogram is empty — an idle window dumps as zeros, never NaN.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.acc.N() == 0 {
		return 0
	}
	if len(h.samples) == h.acc.N() {
		return stats.PercentileOrZero(h.samples, p)
	}
	// Saturated: interpolate within the bucket containing the rank.
	rank := p / 100 * float64(h.acc.N()-1)
	seen := int64(0)
	lo := 0.0
	for i, c := range h.buckets {
		hi := h.acc.Max()
		if i < len(histBounds) {
			hi = histBounds[i]
		}
		if float64(seen+c) > rank && c > 0 {
			frac := (rank - float64(seen)) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += c
		lo = hi
	}
	return h.acc.Max()
}

// SaturatedQuantiles reports whether quantiles are bucket-estimated
// because the exact-sample retention overflowed.
func (h *Histogram) SaturatedQuantiles() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples) != h.acc.N()
}

// merge folds b's observations into h.
func (h *Histogram) merge(b *Histogram) {
	if b == nil || b == h {
		return
	}
	b.mu.Lock()
	buckets := make([]int64, len(b.buckets))
	copy(buckets, b.buckets)
	acc := b.acc
	sum := b.sum
	samples := make([]float64, len(b.samples))
	copy(samples, b.samples)
	b.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range buckets {
		h.buckets[i] += c
	}
	h.acc.Merge(&acc)
	h.sum += sum
	room := maxExactSamples - len(h.samples)
	if room > len(samples) {
		room = len(samples)
	}
	if room > 0 {
		h.samples = append(h.samples, samples[:room]...)
	}
}
