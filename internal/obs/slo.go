package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// The SLO engine turns the wide-event stream into service-level
// indicators: rolling virtual-time windows of good/bad request
// outcomes per objective, cumulative error-budget accounting, and
// multi-window burn-rate alert rules in the Google SRE style (a page
// fires only when both a short and a long window burn budget faster
// than the threshold — the short window for responsiveness, the long
// one to suppress blips). Everything runs on the virtual clock, so
// the alert log is a pure function of the run and can be committed as
// evidence like every other table.

// Objective is one service-level objective: a target fraction of good
// requests, where "good" means served (and, when LatencySec > 0,
// served within the latency threshold).
type Objective struct {
	// Name identifies the objective in reports and alerts.
	Name string
	// Class restricts the objective to one request class ("standard",
	// "best-effort"); "" matches every class.
	Class string
	// Target is the objective's good fraction in (0, 1), e.g. 0.999.
	Target float64
	// LatencySec, when positive, makes this a latency SLI: a served
	// request is good only if its sojourn is at most LatencySec.
	// 0 makes it a pure availability SLI.
	LatencySec float64
}

// BurnRule is one multi-window burn-rate alert: it fires when the
// error budget burns at least Burn times faster than sustainable in
// BOTH the short and the long window, and resolves when either drops
// back below.
type BurnRule struct {
	// Name labels the rule ("page", "ticket").
	Name string
	// ShortSec and LongSec are the two window lengths in virtual
	// seconds; both are added to the engine's window set.
	ShortSec float64
	LongSec  float64
	// Burn is the rate multiplier: 1.0 means exactly exhausting the
	// budget over the SLO period, 14.4 the classic 5m/1h page.
	Burn float64
}

// Alert is one transition in the deterministic alert log.
type Alert struct {
	// AtSec is the virtual time of the transition.
	AtSec float64 `json:"at_sec"`
	// Objective and Rule name what fired or resolved.
	Objective string `json:"objective"`
	Rule      string `json:"rule"`
	// State is "fire" or "resolve".
	State string `json:"state"`
	// ShortBurn and LongBurn are the burn rates at transition time.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
}

// DefaultSLOWindows are the rolling window lengths when none are
// configured: 5 minutes, 1 hour, 6 hours of virtual time.
var DefaultSLOWindows = []float64{300, 3600, 21600}

// DefaultBurnRules are the classic two-rule ladder: a page at 14.4×
// over 5m/1h, a ticket at 6× over 1h/6h.
var DefaultBurnRules = []BurnRule{
	{Name: "page", ShortSec: 300, LongSec: 3600, Burn: 14.4},
	{Name: "ticket", ShortSec: 3600, LongSec: 21600, Burn: 6},
}

// SLOConfig configures an engine. Zero-value fields take the
// defaults above.
type SLOConfig struct {
	Objectives []Objective
	WindowsSec []float64
	Rules      []BurnRule
}

// sloSample is one outcome on the virtual timeline.
type sloSample struct {
	at  float64
	bad bool
}

// slidingWindow counts good/bad outcomes inside a rolling
// virtual-time window. Samples append in nondecreasing time order and
// evict from the head as the window advances; compaction clears the
// vacated prefix so the backing array never pins evicted samples
// (the stale-tail retention class the admission queue once had).
type slidingWindow struct {
	lenSec  float64
	samples []sloSample
	head    int
	total   int64
	bad     int64
}

func (w *slidingWindow) add(at float64, bad bool) {
	w.samples = append(w.samples, sloSample{at: at, bad: bad})
	w.total++
	if bad {
		w.bad++
	}
}

// advance evicts samples that fell out of the (now-lenSec, now]
// window.
func (w *slidingWindow) advance(now float64) {
	cut := now - w.lenSec
	for w.head < len(w.samples) && w.samples[w.head].at <= cut {
		if w.samples[w.head].bad {
			w.bad--
		}
		w.total--
		w.head++
	}
	if w.head > len(w.samples)/2 && w.head > 16 {
		n := copy(w.samples, w.samples[w.head:])
		clear(w.samples[n:len(w.samples)])
		w.samples = w.samples[:n]
		w.head = 0
	}
}

// sli is the window's good fraction; an empty window reports 1 (no
// evidence of badness is budget intact, never NaN).
func (w *slidingWindow) sli() float64 {
	if w.total == 0 {
		return 1
	}
	return 1 - float64(w.bad)/float64(w.total)
}

// objState is one objective's rolling state.
type objState struct {
	obj      Objective
	windows  []*slidingWindow
	cumTotal int64
	cumBad   int64
	firing   []bool // parallel to the engine's rules
}

// SLOEngine evaluates objectives over the wide-event stream. It is
// safe for concurrent use; a nil engine no-ops on every method, so
// emission points need no enabled/disabled branches.
type SLOEngine struct {
	mu      sync.Mutex
	windows []float64
	rules   []BurnRule
	objs    []*objState
	now     float64
	alerts  []Alert
}

// NewSLOEngine builds an engine from cfg, applying defaults for
// unset windows and rules and validating objectives (targets must be
// in (0,1)). Rule windows are added to the window set automatically.
func NewSLOEngine(cfg SLOConfig) (*SLOEngine, error) {
	windows := cfg.WindowsSec
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	rules := cfg.Rules
	if cfg.Rules == nil {
		rules = DefaultBurnRules
	}
	have := make(map[float64]bool, len(windows))
	ws := make([]float64, 0, len(windows)+2*len(rules))
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("obs: SLO window %g must be positive", w)
		}
		if !have[w] {
			have[w] = true
			ws = append(ws, w)
		}
	}
	for _, r := range rules {
		if r.ShortSec <= 0 || r.LongSec < r.ShortSec {
			return nil, fmt.Errorf("obs: burn rule %q windows %g/%g invalid", r.Name, r.ShortSec, r.LongSec)
		}
		if r.Burn <= 0 {
			return nil, fmt.Errorf("obs: burn rule %q burn %g must be positive", r.Name, r.Burn)
		}
		for _, w := range []float64{r.ShortSec, r.LongSec} {
			if !have[w] {
				have[w] = true
				ws = append(ws, w)
			}
		}
	}
	sort.Float64s(ws)
	e := &SLOEngine{windows: ws, rules: rules}
	for _, o := range cfg.Objectives {
		if o.Name == "" {
			return nil, fmt.Errorf("obs: objective with empty name")
		}
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("obs: objective %q target %g must be in (0,1)", o.Name, o.Target)
		}
		st := &objState{obj: o, firing: make([]bool, len(rules))}
		for _, w := range ws {
			st.windows = append(st.windows, &slidingWindow{lenSec: w})
		}
		e.objs = append(e.objs, st)
	}
	return e, nil
}

// window returns the objective's window of the given length.
func (st *objState) window(lenSec float64) *slidingWindow {
	for _, w := range st.windows {
		if w.lenSec == lenSec {
			return w
		}
	}
	return nil
}

// burn is the window's budget burn rate relative to the objective's
// target: bad fraction over the sustainable bad fraction. An empty
// window burns nothing.
func burn(w *slidingWindow, target float64) float64 {
	if w == nil || w.total == 0 {
		return 0
	}
	return (float64(w.bad) / float64(w.total)) / (1 - target)
}

// ObserveEvent records one terminal wide event against every matching
// objective and advances the clock to the event time. Events must
// arrive in nondecreasing DoneSec order (the export paths sort).
func (e *SLOEngine) ObserveEvent(ev Event) {
	if e == nil {
		return
	}
	good := ev.Outcome == OutcomeServed
	e.Record(ev.Class, ev.DoneSec, good, ev.SojournSec())
}

// Record scores one outcome at virtual time at: good says whether the
// request was served, sojournSec its latency (ignored for pure
// availability objectives). Class filters objectives.
func (e *SLOEngine) Record(class string, at float64, good bool, sojournSec float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if at > e.now {
		e.now = at
	}
	for _, st := range e.objs {
		if st.obj.Class != "" && st.obj.Class != class {
			continue
		}
		bad := !good || (st.obj.LatencySec > 0 && sojournSec > st.obj.LatencySec)
		st.cumTotal++
		if bad {
			st.cumBad++
		}
		for _, w := range st.windows {
			w.add(at, bad)
			w.advance(e.now)
		}
	}
	e.evaluateLocked()
}

// Advance moves the virtual clock forward, evicting expired samples
// and re-evaluating alert rules (an alert can resolve purely through
// time passing).
func (e *SLOEngine) Advance(now float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if now <= e.now {
		return
	}
	e.now = now
	for _, st := range e.objs {
		for _, w := range st.windows {
			w.advance(now)
		}
	}
	e.evaluateLocked()
}

// evaluateLocked checks every (objective, rule) pair for a firing
// transition and appends it to the alert log.
func (e *SLOEngine) evaluateLocked() {
	for _, st := range e.objs {
		for ri, r := range e.rules {
			short := burn(st.window(r.ShortSec), st.obj.Target)
			long := burn(st.window(r.LongSec), st.obj.Target)
			firing := short >= r.Burn && long >= r.Burn
			if firing == st.firing[ri] {
				continue
			}
			st.firing[ri] = firing
			state := "resolve"
			if firing {
				state = "fire"
			}
			e.alerts = append(e.alerts, Alert{
				AtSec: e.now, Objective: st.obj.Name, Rule: r.Name,
				State: state, ShortBurn: short, LongBurn: long,
			})
		}
	}
}

// Alerts returns the transition log in firing order.
func (e *SLOEngine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.alerts...)
}

// WindowStatus is one rolling window's live state.
type WindowStatus struct {
	WindowSec float64 `json:"window_sec"`
	Total     int64   `json:"total"`
	Bad       int64   `json:"bad"`
	SLI       float64 `json:"sli"`
	Burn      float64 `json:"burn"`
}

// RuleStatus is one burn rule's live state for an objective.
type RuleStatus struct {
	Rule      string  `json:"rule"`
	Threshold float64 `json:"threshold"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Firing    bool    `json:"firing"`
}

// ObjectiveStatus is one objective's full live state.
type ObjectiveStatus struct {
	Name       string  `json:"name"`
	Class      string  `json:"class,omitempty"`
	Target     float64 `json:"target"`
	LatencySec float64 `json:"latency_sec,omitempty"`
	// Cumulative error-budget accounting since the run began:
	// BudgetConsumed is the fraction of the total budget spent (>1
	// means overspent), BudgetRemaining its clamped complement.
	Total           int64          `json:"total"`
	Bad             int64          `json:"bad"`
	BudgetConsumed  float64        `json:"budget_consumed"`
	BudgetRemaining float64        `json:"budget_remaining"`
	Windows         []WindowStatus `json:"windows"`
	Rules           []RuleStatus   `json:"rules"`
}

// Status snapshots every objective in configuration order.
func (e *SLOEngine) Status() []ObjectiveStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(e.objs))
	for _, st := range e.objs {
		os := ObjectiveStatus{
			Name: st.obj.Name, Class: st.obj.Class,
			Target: st.obj.Target, LatencySec: st.obj.LatencySec,
			Total: st.cumTotal, Bad: st.cumBad,
		}
		if st.cumTotal > 0 {
			os.BudgetConsumed = (float64(st.cumBad) / float64(st.cumTotal)) / (1 - st.obj.Target)
		}
		os.BudgetRemaining = 1 - os.BudgetConsumed
		if os.BudgetRemaining < 0 {
			os.BudgetRemaining = 0
		}
		for _, w := range st.windows {
			os.Windows = append(os.Windows, WindowStatus{
				WindowSec: w.lenSec, Total: w.total, Bad: w.bad,
				SLI: w.sli(), Burn: burn(w, st.obj.Target),
			})
		}
		for ri, r := range e.rules {
			os.Rules = append(os.Rules, RuleStatus{
				Rule: r.Name, Threshold: r.Burn,
				ShortBurn: burn(st.window(r.ShortSec), st.obj.Target),
				LongBurn:  burn(st.window(r.LongSec), st.obj.Target),
				Firing:    st.firing[ri],
			})
		}
		out = append(out, os)
	}
	return out
}

// Now returns the engine's virtual clock.
func (e *SLOEngine) Now() float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// WriteReport renders the live state as a deterministic text table:
// one block per objective with its windows, budget, burn rules, then
// the alert transition log.
func (e *SLOEngine) WriteReport(w io.Writer) error {
	if e == nil {
		return nil
	}
	statuses := e.Status()
	alerts := e.Alerts()
	now := e.Now()
	if _, err := fmt.Fprintf(w, "# slo report at t=%.3fs\n", now); err != nil {
		return err
	}
	for _, os := range statuses {
		kind := "availability"
		if os.LatencySec > 0 {
			kind = fmt.Sprintf("latency<=%gs", os.LatencySec)
		}
		class := os.Class
		if class == "" {
			class = "*"
		}
		if _, err := fmt.Fprintf(w, "\nobjective %-24s class %-12s %s target %.4f%%\n",
			os.Name, class, kind, os.Target*100); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %10s %8s %8s %10s %8s\n", "window", "total", "bad", "sli", "burn"); err != nil {
			return err
		}
		for _, ws := range os.Windows {
			if _, err := fmt.Fprintf(w, "  %9gs %8d %8d %9.4f%% %8.2f\n",
				ws.WindowSec, ws.Total, ws.Bad, ws.SLI*100, ws.Burn); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  budget: %d/%d bad, consumed %.2f%%, remaining %.2f%%\n",
			os.Bad, os.Total, os.BudgetConsumed*100, os.BudgetRemaining*100); err != nil {
			return err
		}
		for _, rs := range os.Rules {
			state := "ok"
			if rs.Firing {
				state = "FIRING"
			}
			if _, err := fmt.Fprintf(w, "  rule %-8s burn %5.2f/%5.2f (threshold %.1f) %s\n",
				rs.Rule, rs.ShortBurn, rs.LongBurn, rs.Threshold, state); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "\n# alerts (%d transitions)\n", len(alerts)); err != nil {
		return err
	}
	for _, a := range alerts {
		if _, err := fmt.Fprintf(w, "t=%12.3fs %-7s %-24s %-8s short %5.2f long %5.2f\n",
			a.AtSec, a.State, a.Objective, a.Rule, a.ShortBurn, a.LongBurn); err != nil {
			return err
		}
	}
	return nil
}

// WriteHealthJSON renders the live state for /healthz: the virtual
// clock, every objective's status, and the alert log.
func (e *SLOEngine) WriteHealthJSON(w io.Writer) error {
	if e == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := struct {
		NowSec     float64           `json:"now_sec"`
		Objectives []ObjectiveStatus `json:"objectives"`
		Alerts     []Alert           `json:"alerts"`
	}{e.Now(), e.Status(), e.Alerts()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// HealthTracker derives per-entity health scores (shards, drives)
// from the same good/bad stream the SLO engine consumes: per key, the
// worst good-fraction across its rolling windows. Scores live in
// [0,1]; an unseen or empty key scores 1 (healthy until proven
// otherwise). A nil tracker no-ops.
type HealthTracker struct {
	mu      sync.Mutex
	windows []float64
	now     float64
	keys    map[string][]*slidingWindow
}

// NewHealthTracker builds a tracker over the given window lengths
// (DefaultSLOWindows' first two when empty).
func NewHealthTracker(windowsSec ...float64) *HealthTracker {
	if len(windowsSec) == 0 {
		windowsSec = []float64{DefaultSLOWindows[0], DefaultSLOWindows[1]}
	}
	return &HealthTracker{windows: windowsSec, keys: make(map[string][]*slidingWindow)}
}

// Observe scores one outcome for key at virtual time at.
func (h *HealthTracker) Observe(key string, at float64, good bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if at > h.now {
		h.now = at
	}
	ws := h.keys[key]
	if ws == nil {
		ws = make([]*slidingWindow, len(h.windows))
		for i, l := range h.windows {
			ws[i] = &slidingWindow{lenSec: l}
		}
		h.keys[key] = ws
	}
	for _, w := range ws {
		w.add(at, !good)
		w.advance(h.now)
	}
}

// Advance moves the tracker's clock forward, expiring old samples.
func (h *HealthTracker) Advance(now float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if now <= h.now {
		return
	}
	h.now = now
	for _, ws := range h.keys {
		for _, w := range ws {
			w.advance(now)
		}
	}
}

// Score returns the key's health: the minimum good-fraction across
// its windows, 1 for an unseen key.
func (h *HealthTracker) Score(key string) float64 {
	if h == nil {
		return 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ws := h.keys[key]
	if ws == nil {
		return 1
	}
	score := 1.0
	for _, w := range ws {
		w.advance(h.now)
		if s := w.sli(); s < score {
			score = s
		}
	}
	return score
}

// Keys returns the tracked keys, sorted.
func (h *HealthTracker) Keys() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.keys))
	for k := range h.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Scores snapshots every key's score, sorted by key.
func (h *HealthTracker) Scores() map[string]float64 {
	if h == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, k := range h.Keys() {
		out[k] = h.Score(k)
	}
	return out
}
