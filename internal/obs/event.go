package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// The wide-event layer is the per-request half of the observability
// subsystem: where counters aggregate and spans explain intervals, a
// wide event is the one canonical record of a request's whole life —
// identity, routing, placement, outcome, and the full latency
// attribution vector — emitted exactly once when the request reaches
// a terminal state (served, failed, rejected, or shed). Like the rest
// of the package it never reads wall time: every stamp is a
// virtual-clock reading supplied by the emitter, so a deterministic
// run produces a byte-identical event log at any worker count and
// results/events.jsonl can be committed and diffed like the numeric
// tables.

// Outcome values: every offered request ends in exactly one of these,
// so summing event counts by outcome reconciles with the metrics
// partition Served+Failed+Rejected+Shed.
const (
	OutcomeServed   = "served"
	OutcomeFailed   = "failed"
	OutcomeRejected = "rejected"
	OutcomeShed     = "shed"
)

// EventNoDrive marks an event that never reached a drive (rejected at
// admission, shed, or failed before dispatch). Cache hits carry the
// staging tier's pseudo-drive (-1, hsm.CacheDriveID); real serves
// carry the drive index.
const EventNoDrive = -2

// Event is one wide request record. Field order is the JSONL column
// order; encoding/json emits struct fields in declaration order and
// floats in shortest-round-trip form, so marshaling is deterministic.
type Event struct {
	// Seq orders events within one emitter: assigned by the ring at
	// Add time (1-based, dense) unless the event already carries one
	// (the fleet fold preserves per-shard sequence numbers).
	Seq int64 `json:"seq"`
	// Shard is the serving library's fleet shard, 0 outside a fleet.
	Shard int `json:"shard"`
	// Object names the requested object; Tape is the cartridge serial
	// the catalog placed it on (the primary copy's, for replicated
	// placements), -1 when the request never resolved.
	Object string `json:"object"`
	Tape   int64  `json:"tape"`
	// Drive is the serving drive index, hsm's CacheDriveID (-1) for a
	// staging-cache hit, or EventNoDrive (-2) when no drive was ever
	// involved.
	Drive int `json:"drive"`
	// Class is the request's service class ("standard" or
	// "best-effort").
	Class string `json:"class"`
	// Outcome is the terminal state: one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Cache reports whether the staging tier served the request.
	Cache bool `json:"cache"`
	// Route is the routing tier's decision for the request
	// ("affinity", "cross-shard", "unroutable", "routed"), "" outside
	// a fleet.
	Route string `json:"route,omitempty"`
	// Replica is the cartridge copy that finally served the request
	// (0 = primary).
	Replica int `json:"replica"`
	// ArrivalSec and DoneSec bound the request on the virtual clock;
	// DoneSec is the terminal instant (completion, failure, or the
	// shed/reject decision).
	ArrivalSec float64 `json:"arrival_sec"`
	DoneSec    float64 `json:"done_sec"`
	// The attribution vector decomposes DoneSec-ArrivalSec into the
	// phases of the request's journey; the components telescope to
	// the sojourn within 1e-9 for every outcome (non-served requests
	// book their whole wait as queue + rescue time).
	QueueSec    float64 `json:"queue_sec"`
	RobotSec    float64 `json:"robot_sec"`
	MountSec    float64 `json:"mount_sec"`
	LocateSec   float64 `json:"locate_sec"`
	TransferSec float64 `json:"transfer_sec"`
	RetrySec    float64 `json:"retry_sec"`
	RescueSec   float64 `json:"rescue_sec"`
	// Labels carry the emitting cell's coordinates (rate, shards,
	// router, ...) in recording order, attached when sweep cells fold
	// their events into a shared ring.
	Labels []Label `json:"labels,omitempty"`
}

// SojournSec is the request's terminal latency on the virtual clock.
func (e Event) SojournSec() float64 { return e.DoneSec - e.ArrivalSec }

// AttributionSum returns the total of the attribution components —
// the reconstructed sojourn.
func (e Event) AttributionSum() float64 {
	return e.QueueSec + e.RobotSec + e.MountSec + e.LocateSec + e.TransferSec + e.RetrySec + e.RescueSec
}

// EventRing is a bounded, deterministic store of wide events: a ring
// retaining the most recent cap events in emission order. It is safe
// for concurrent use; within one single-threaded simulation the store
// content is a pure function of the run. A nil *EventRing is a valid
// no-op sink — every method no-ops — so emission points never branch
// on whether wide events are enabled, and an un-instrumented run pays
// nothing.
type EventRing struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	total   int64
	dropped int64
}

// NewEventRing returns a ring retaining the most recent cap events
// (minimum 1).
func NewEventRing(cap int) *EventRing {
	if cap < 1 {
		cap = 1
	}
	return &EventRing{ring: make([]Event, 0, cap)}
}

// Add records one event, evicting the oldest when full. If the event
// carries no sequence number the ring assigns the next one (1-based,
// dense in emission order).
func (r *EventRing) Add(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if ev.Seq == 0 {
		ev.Seq = r.total
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
		return
	}
	r.dropped++
	r.ring[r.next] = ev
	r.next = (r.next + 1) % len(r.ring)
}

// Events returns the retained events, oldest first.
func (r *EventRing) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Tail returns the retained events whose emission index (0-based
// position in the total stream) is at least from, oldest first. It
// lets an incremental consumer harvest only what arrived since its
// last call; events evicted before the consumer caught up are simply
// gone (check Dropped).
func (r *EventRing) Tail(from int64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	first := r.total - int64(len(r.ring)) // emission index of the oldest retained event
	skip := from - first
	if skip < 0 {
		skip = 0
	}
	if skip >= int64(len(r.ring)) {
		return nil
	}
	out := make([]Event, 0, int64(len(r.ring))-skip)
	for i := skip; i < int64(len(r.ring)); i++ {
		out = append(out, r.ring[(r.next+int(i))%len(r.ring)])
	}
	return out
}

// Total returns how many events were ever added; Dropped how many of
// those were evicted from the bounded store.
func (r *EventRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns the number of evicted events.
func (r *EventRing) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset empties the ring and clears the vacated backing array so the
// ring does not pin evicted events' strings and label slices — the
// same stale-tail retention class the admission queue's compaction
// once had. Counters reset too.
func (r *EventRing) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.ring[:cap(r.ring)])
	r.ring = r.ring[:0]
	r.next = 0
	r.total = 0
	r.dropped = 0
}

// WriteEventsJSONL renders events one JSON object per line. Field
// order follows the Event struct and floats use encoding/json's
// shortest-round-trip formatting, so the output is byte-deterministic
// for a deterministic event sequence. head <= 0 writes every event;
// otherwise only the first head.
func WriteEventsJSONL(w io.Writer, events []Event, head int) error {
	if head <= 0 || head > len(events) {
		head = len(events)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events[:head] {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEventsJSONL parses a JSONL event log (blank lines skipped).
func ReadEventsJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
