package obs

import "testing"

// FuzzSpanStore drives the bounded span store with an arbitrary
// op-sequence and checks its invariants: the ring never exceeds its
// cap, total always equals kept plus dropped, eviction is strictly
// oldest-first, and per-trace span IDs stay dense and increasing.
func FuzzSpanStore(f *testing.F) {
	f.Add(1, []byte{0})
	f.Add(3, []byte{0, 1, 2, 3, 4, 5, 255, 0})
	f.Add(16, []byte{9, 9, 9, 128, 7, 7, 200, 1})
	f.Fuzz(func(t *testing.T, capSpans int, ops []byte) {
		if capSpans < -1024 || capSpans > 1<<12 {
			return
		}
		tr := NewTracer(capSpans)
		effCap := capSpans
		if effCap < 1 {
			effCap = 1
		}
		h := tr.StartTrace()
		var lastID uint64
		var recorded []Span
		for i, op := range ops {
			switch {
			case op >= 224: // open a fresh trace
				h = tr.StartTrace()
				lastID = 0
			case op >= 192: // replay an external span
				s := Span{Trace: 999, ID: uint64(i) + 1, Name: "ext", StartSec: float64(i)}
				tr.Record(s)
				recorded = append(recorded, s)
			default: // regular start/end cycle with op%3 attrs
				sp := h.Start("op", nil, float64(i))
				for a := byte(0); a < op%3; a++ {
					sp.AttrInt("k", int(a))
				}
				sp.End(float64(i) + 0.5)
				if got := sp.SpanID(); got != lastID+1 {
					t.Fatalf("span ID %d after %d: not a dense counter", got, lastID)
				}
				lastID++
				recorded = append(recorded, Span{Trace: h.ID(), ID: lastID})
			}

			kept := tr.Spans()
			if len(kept) > effCap {
				t.Fatalf("store holds %d spans, cap %d", len(kept), effCap)
			}
			if tr.Total() != len(recorded) {
				t.Fatalf("total %d, recorded %d", tr.Total(), len(recorded))
			}
			if tr.Total() != len(kept)+tr.Dropped() {
				t.Fatalf("total %d != kept %d + dropped %d", tr.Total(), len(kept), tr.Dropped())
			}
			// Eviction is oldest-first: the retained spans must be
			// exactly the tail of the record sequence, in order.
			tail := recorded[len(recorded)-len(kept):]
			for j, s := range kept {
				if s.Trace != tail[j].Trace || s.ID != tail[j].ID {
					t.Fatalf("kept[%d] = trace %d span %d, want trace %d span %d",
						j, s.Trace, s.ID, tail[j].Trace, tail[j].ID)
				}
			}
		}
	})
}
