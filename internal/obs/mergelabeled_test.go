package obs

import (
	"reflect"
	"testing"
)

// TestParseLabelBlockRoundTrip pins parseLabelBlock as the exact
// inverse of the block metricKey renders, including every escape
// promEscape emits.
func TestParseLabelBlockRoundTrip(t *testing.T) {
	cases := [][]Label{
		nil,
		{L("shard", "0")},
		{L("rate", "120"), L("drives", "2")},
		{L("q", `say "hi"`)},
		{L("path", `a\b`)},
		{L("multi", "line\nbreak")},
		{L("mix", "\\\"\n"), L("tab", "a\tb")}, // tab passes through raw
	}
	for _, labels := range cases {
		key := metricKey("m", labels)
		name, block := splitKey(key)
		if name != "m" {
			t.Fatalf("splitKey(%q) name = %q", key, name)
		}
		got, ok := parseLabelBlock(block)
		if !ok {
			t.Fatalf("parseLabelBlock(%q) failed", block)
		}
		// metricKey sorts labels, so compare by re-rendering.
		if rekeyed := metricKey("m", got); rekeyed != key {
			t.Fatalf("round trip %q -> %v -> %q", key, got, rekeyed)
		}
	}
}

func TestParseLabelBlockRejectsMalformed(t *testing.T) {
	for _, block := range []string{
		"{", "}", "{}", `{k}`, `{k=}`, `{k="v}`, `{k="v",}`,
		`{="v"}`, `{k="a\x"}`, `{k="v"x}`, `{k="\"}`,
	} {
		if labels, ok := parseLabelBlock(block); ok {
			t.Errorf("parseLabelBlock(%q) accepted: %v", block, labels)
		}
	}
}

// TestMergeLabeled pins the fleet's shard fold: identical shard-local
// series land on distinct cluster series keyed by the extra label,
// and the extra label composes with existing labels in sorted order.
func TestMergeLabeled(t *testing.T) {
	agg := NewRegistry()
	for shard := 0; shard < 2; shard++ {
		r := NewRegistry()
		r.Counter("served_total").Add(int64(10 + shard))
		r.Counter("served_total", L("alg", "LOSS")).Add(int64(100 + shard))
		r.Gauge("clock_seconds").Set(float64(5 * (shard + 1)))
		r.Histogram("latency_seconds").Observe(float64(shard + 1))
		label := L("shard", string(rune('0'+shard)))
		agg.MergeLabeled(r, label)
	}

	if v := agg.Counter("served_total", L("shard", "0")).Value(); v != 10 {
		t.Errorf("shard 0 served = %d, want 10", v)
	}
	if v := agg.Counter("served_total", L("shard", "1")).Value(); v != 11 {
		t.Errorf("shard 1 served = %d, want 11", v)
	}
	if v := agg.Counter("served_total", L("alg", "LOSS"), L("shard", "1")).Value(); v != 101 {
		t.Errorf("labeled shard 1 served = %d, want 101", v)
	}
	if v := agg.Gauge("clock_seconds", L("shard", "1")).Value(); v != 10 {
		t.Errorf("shard 1 clock = %g, want 10", v)
	}
	h := agg.Histogram("latency_seconds", L("shard", "0"))
	if n := h.Count(); n != 1 {
		t.Errorf("shard 0 histogram count = %d, want 1", n)
	}
	// No unlabeled residue: everything was re-keyed.
	if v := agg.Counter("served_total").Value(); v != 0 {
		t.Errorf("unlabeled served = %d, want 0", v)
	}
}

// TestMergeLabeledNoExtras degenerates to Merge.
func TestMergeLabeledNoExtras(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	b.Counter("x", L("k", "v")).Add(3)
	a.MergeLabeled(b)
	if v := a.Counter("x", L("k", "v")).Value(); v != 3 {
		t.Fatalf("merged counter = %d, want 3", v)
	}
}

func TestRelabelKeyEscapedValues(t *testing.T) {
	key := metricKey("m", []Label{L("q", `a"b\c`)})
	got := relabelKey(key, []Label{L("shard", "2")})
	want := metricKey("m", []Label{L("q", `a"b\c`), L("shard", "2")})
	if got != want {
		t.Fatalf("relabelKey = %q, want %q", got, want)
	}
	if !reflect.DeepEqual(relabelKey("plain", nil), "plain") {
		t.Fatalf("relabelKey(plain) changed the key")
	}
}
