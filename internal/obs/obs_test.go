package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("served_total", L("alg", "LOSS"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("served_total", L("alg", "LOSS")) != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	if r.Counter("served_total", L("alg", "SLTF")) == c {
		t.Fatal("different labels returned the same counter")
	}

	g := r.Gauge("queue_depth")
	g.Set(4)
	g.Add(-1)
	g.Max(2) // below current: no-op
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %g, want 3", got)
	}
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge high-water = %g, want 9", got)
	}
}

func TestMetricKeyLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("b", "2"), L("a", "1"))
	b := r.Counter("x", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order changed the series identity")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sojourn_seconds")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	h.Observe(math.NaN()) // dropped, not absorbed
	if h.Count() != 100 || h.Dropped() != 1 {
		t.Fatalf("count=%d dropped=%d, want 100/1", h.Count(), h.Dropped())
	}
	if got := h.Quantile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %g, want 50.5", got)
	}
	if got := h.Quantile(99); math.Abs(got-99.01) > 1e-9 {
		t.Fatalf("p99 = %g, want 99.01", got)
	}
	if h.SaturatedQuantiles() {
		t.Fatal("tiny histogram claims saturation")
	}
	// Idle histogram: NaN-free zeros.
	idle := r.Histogram("idle_seconds")
	if q := idle.Quantile(99); q != 0 || math.IsNaN(q) {
		t.Fatalf("empty histogram p99 = %g, want 0", q)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n").Add(2)
	b.Counter("n").Add(3)
	b.Counter("only_b").Inc()
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(2)
	a.Histogram("h").Observe(1)
	b.Histogram("h").Observe(3)

	a.Merge(b)
	if got := a.Counter("n").Value(); got != 5 {
		t.Fatalf("merged counter = %d, want 5", got)
	}
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Fatalf("merged new counter = %d, want 1", got)
	}
	if got := a.Gauge("g").Value(); got != 3 {
		t.Fatalf("merged gauge = %g, want 3", got)
	}
	h := a.Histogram("h")
	if h.Count() != 2 || h.Sum() != 4 {
		t.Fatalf("merged histogram count=%d sum=%g, want 2/4", h.Count(), h.Sum())
	}
	a.Merge(a) // self-merge must be a no-op
	if got := a.Counter("n").Value(); got != 5 {
		t.Fatalf("self-merge changed counter to %d", got)
	}
}

func TestWritePromDeterministicAndWellFormed(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("served_total", L("policy", "fixed-window"), L("alg", "LOSS")).Add(7)
		r.Gauge("clock_seconds").Set(123.5)
		h := r.Histogram("sojourn_seconds", L("alg", "LOSS"))
		h.Observe(0.1)
		h.Observe(3)
		h.Observe(40000)
		return r
	}
	var s1, s2 strings.Builder
	if err := build().WriteProm(&s1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteProm(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("WriteProm is not deterministic")
	}
	out := s1.String()
	for _, want := range []string{
		"# TYPE served_total counter",
		`served_total{alg="LOSS",policy="fixed-window"} 7`,
		"# TYPE clock_seconds gauge",
		"clock_seconds 123.5",
		"# TYPE sojourn_seconds histogram",
		`sojourn_seconds_bucket{alg="LOSS",le="0.25"} 1`,
		`sojourn_seconds_bucket{alg="LOSS",le="+Inf"} 3`,
		`sojourn_seconds_count{alg="LOSS"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and end at count.
	if strings.Index(out, `le="0.25"`) > strings.Index(out, `le="+Inf"`) {
		t.Fatal("bucket order is not ascending")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(2)
	r.Histogram("svc_seconds").Observe(1.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"served_total": 2`, `"count":1`, `"p99":1.5`} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteJSON missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Add(TraceEvent{ClockSec: float64(i), Op: "locate", Segment: i})
	}
	evs := tr.Events()
	if len(evs) != 3 || tr.Total() != 5 || tr.Dropped() != 2 {
		t.Fatalf("ring len=%d total=%d dropped=%d, want 3/5/2", len(evs), tr.Total(), tr.Dropped())
	}
	for i, ev := range evs {
		if ev.Segment != i+2 {
			t.Fatalf("event %d is segment %d, want %d (oldest-first)", i, ev.Segment, i+2)
		}
	}
}

func TestWritePromEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", L("path", `C:\tapes\"vault"`+"\nline2")).Inc()
	r.Histogram("lat_seconds", L("note", "a\\b")).Observe(1)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The exposition format escapes exactly backslash, quote and
	// newline inside label values; the raw forms must not survive.
	want := `events_total{path="C:\\tapes\\\"vault\"\nline2"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("WriteProm missing escaped series %q:\n%s", want, out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{note="a\\b",le="1"} 1`) {
		t.Fatalf("histogram label block not escaped:\n%s", out)
	}
	// A raw newline in a label value would split the series across two
	// physical lines; every line must stay a comment or a full sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.ContainsRune(line, ' ') {
			t.Fatalf("raw newline leaked into exposition output: %q", line)
		}
	}
	// Escaping is injective: these two values must stay distinct series.
	r2 := NewRegistry()
	r2.Counter("x", L("v", `a\nb`)).Inc()
	r2.Counter("x", L("v", "a\nb")).Inc()
	var sb2 strings.Builder
	if err := r2.WriteProm(&sb2); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb2.String(), "x{"); got != 2 {
		t.Fatalf("escaping collided two distinct label values into %d series:\n%s", got, sb2.String())
	}
}

func TestMergeConcurrent(t *testing.T) {
	const workers, perWorker = 8, 50
	dst := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src := NewRegistry()
				src.Counter("served_total").Add(1)
				src.Gauge("clock_seconds").Set(1)
				src.Histogram("sojourn_seconds").Observe(float64(w*perWorker + i))
				dst.Merge(src)
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := dst.Counter("served_total").Value(); got != total {
		t.Fatalf("concurrent merge counter = %d, want %d", got, total)
	}
	if got := dst.Gauge("clock_seconds").Value(); got != total {
		t.Fatalf("concurrent merge gauge = %g, want %d", got, total)
	}
	if got := dst.Histogram("sojourn_seconds").Count(); got != total {
		t.Fatalf("concurrent merge histogram count = %d, want %d", got, total)
	}
}

func TestHistogramExactToBucketedBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("fills the 1<<20 exact-sample retention")
	}
	h := newHistogram()
	// Uniform values over [0, 16): the true median sits at ~8, inside
	// the (4, 8] / (8, 16] bucket pair, giving the bucketed estimate a
	// tight target.
	for i := 0; i < maxExactSamples; i++ {
		h.Observe(float64(i) / float64(maxExactSamples) * 16)
	}
	if h.SaturatedQuantiles() {
		t.Fatal("histogram saturated at exactly maxExactSamples")
	}
	exactP50 := h.Quantile(50)
	if math.Abs(exactP50-8) > 1e-3 {
		t.Fatalf("exact p50 = %g, want ~8", exactP50)
	}

	// One more observation crosses the boundary: retention stops,
	// quantiles switch to bucket interpolation.
	h.Observe(12)
	if !h.SaturatedQuantiles() {
		t.Fatal("histogram not saturated one past maxExactSamples")
	}
	if h.Count() != maxExactSamples+1 {
		t.Fatalf("count = %d, want %d", h.Count(), maxExactSamples+1)
	}
	p50, p95, p99 := h.Quantile(50), h.Quantile(95), h.Quantile(99)
	if p50 < 4 || p50 > 16 {
		t.Fatalf("bucketed p50 = %g, outside the plausible [4,16] range", p50)
	}
	if p50 > p95 || p95 > p99 {
		t.Fatalf("bucketed quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	if max := h.Quantile(100); p99 > max || max > 16 {
		t.Fatalf("p99=%g max=%g, want p99 <= max <= 16", p99, max)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("ops_total").Inc()
				r.Histogram("lat").Observe(float64(i))
				r.Gauge("depth").Max(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat").Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}
