package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func introspectionFixture() (*Registry, *Tracer) {
	reg := NewRegistry()
	reg.Counter("served_total", L("alg", "LOSS")).Add(3)
	reg.Gauge("clock_seconds").Set(12.5)
	reg.Histogram("sojourn_seconds").Observe(1.25)
	tr := NewTracer(16)
	h := tr.StartTrace()
	root := h.Start("run", nil, 0)
	h.Start("locate", root, 1).End(2)
	root.End(3)
	return reg, tr
}

func TestIntrospectionEndpoints(t *testing.T) {
	reg, tr := introspectionFixture()
	srv := httptest.NewServer(NewMux(MuxConfig{Reg: reg, Tracer: tr}))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE served_total counter",
		`served_total{alg="LOSS"} 3`,
		"sojourn_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	statusz := get("/statusz")
	var parsed map[string]any
	if err := json.Unmarshal([]byte(statusz), &parsed); err != nil {
		t.Fatalf("/statusz is not valid JSON: %v\n%s", err, statusz)
	}
	spans, ok := parsed["spans"].(map[string]any)
	if !ok || spans["total"] != 2.0 {
		t.Fatalf("/statusz spans block = %v", parsed["spans"])
	}
	if _, ok := parsed["metrics"].(map[string]any); !ok {
		t.Fatalf("/statusz metrics block missing:\n%s", statusz)
	}

	tracez := get("/tracez")
	if !strings.Contains(tracez, "# spans: 2 kept, 2 recorded, 0 dropped") ||
		!strings.Contains(tracez, "locate") {
		t.Fatalf("/tracez malformed:\n%s", tracez)
	}

	if pprofIdx := get("/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Fatal("/debug/pprof/ not mounted")
	}
}

func TestIntrospectionToleratesNils(t *testing.T) {
	srv := httptest.NewServer(NewMux(MuxConfig{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/statusz", "/tracez", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with nil state: %s", path, resp.Status)
		}
		if path == "/statusz" {
			var parsed map[string]any
			if err := json.Unmarshal(body, &parsed); err != nil {
				t.Fatalf("nil /statusz invalid JSON: %v\n%s", err, body)
			}
		}
	}
}

func TestServeBindsAndServes(t *testing.T) {
	reg, tr := introspectionFixture()
	addr, err := Serve("127.0.0.1:0", MuxConfig{Reg: reg, Tracer: tr})
	if err != nil {
		t.Skipf("cannot bind a local listener: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics via Serve: %s", resp.Status)
	}
}
