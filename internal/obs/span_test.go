package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSpanIDsAreDeterministicCounters(t *testing.T) {
	build := func() []Span {
		tr := NewTracer(64)
		h := tr.StartTrace()
		root := h.Start("run", nil, 0)
		a := h.Start("batch", root, 1.5, L("tape", "7"))
		b := h.Start("serve", a, 2)
		b.End(3)
		a.End(4)
		root.End(5)
		h2 := tr.StartTrace()
		r2 := h2.Start("run", nil, 0)
		r2.End(1)
		return tr.Spans()
	}
	first, second := build(), build()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two identical recordings diverged:\n%v\n%v", first, second)
	}
	// Storage is End order; IDs are per-trace counters starting at 1.
	if len(first) != 4 {
		t.Fatalf("got %d spans, want 4", len(first))
	}
	if first[0].Name != "serve" || first[0].Trace != 1 || first[0].ID != 3 || first[0].Parent != 2 {
		t.Fatalf("first stored span = %+v", first[0])
	}
	if first[3].Name != "run" || first[3].Trace != 2 || first[3].ID != 1 || first[3].Parent != 0 {
		t.Fatalf("last stored span = %+v", first[3])
	}
}

func TestSpanLaneInheritance(t *testing.T) {
	tr := NewTracer(8)
	h := tr.StartTrace()
	batch := h.Start("batch", nil, 0).Lane(3)
	child := h.Start("serve", batch, 1)
	child.End(2)
	batch.End(3)
	spans := tr.Spans()
	if spans[0].Lane != 3 || spans[1].Lane != 3 {
		t.Fatalf("lanes = %d, %d, want 3, 3", spans[0].Lane, spans[1].Lane)
	}
}

func TestTracerBoundsAndEviction(t *testing.T) {
	tr := NewTracer(3)
	h := tr.StartTrace()
	for i := 0; i < 5; i++ {
		h.Start("op", nil, float64(i)).End(float64(i) + 1)
	}
	spans := tr.Spans()
	if len(spans) != 3 || tr.Total() != 5 || tr.Dropped() != 2 {
		t.Fatalf("kept %d, total %d, dropped %d; want 3/5/2", len(spans), tr.Total(), tr.Dropped())
	}
	// Most recent retained, oldest first.
	for i, s := range spans {
		if s.ID != uint64(i+3) {
			t.Fatalf("span %d has ID %d, want %d", i, s.ID, i+3)
		}
	}
}

func TestNilTracerAndHandlesNoOp(t *testing.T) {
	var tr *Tracer
	h := tr.StartTrace()
	if h != nil {
		t.Fatal("nil tracer returned a non-nil handle")
	}
	sp := h.Start("x", nil, 0, L("k", "v"))
	if sp != nil {
		t.Fatal("nil handle returned a non-nil span")
	}
	// Every method must be callable on the nils.
	sp.Attr("a", "b").AttrFloat("f", 1.5).AttrInt("i", 2).Lane(1)
	sp.End(1)
	if sp.SpanID() != 0 || h.ID() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil no-ops leaked state")
	}
	tr.Record(Span{})
}

func TestSpanEndIsIdempotent(t *testing.T) {
	tr := NewTracer(8)
	h := tr.StartTrace()
	sp := h.Start("op", nil, 0)
	sp.End(1)
	sp.End(2)
	sp.Attr("late", "ignored")
	if got := tr.Spans(); len(got) != 1 || got[0].EndSec != 1 || len(got[0].Attrs) != 0 {
		t.Fatalf("double End corrupted the span: %+v", got)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewTracer(8)
	h := tr.StartTrace()
	root := h.Start("run", nil, 0)
	h.Start("locate", root, 0.5, L("segment", "42")).Lane(1).End(2.5)
	root.End(3)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []TraceSet{{Name: "cell 0", Spans: tr.Spans()}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"displayTimeUnit":"ms"`,
		`"name":"process_name"`,
		`"name":"locate"`,
		`"ph":"X"`,
		`"dur":2000000`,
		`"segment":"42"`,
		`"parent":"1"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, out)
		}
	}
	// Byte determinism.
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, []TraceSet{{Name: "cell 0", Spans: tr.Spans()}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome trace export is not byte-deterministic")
	}
}

func TestWriteTimelineIndentsChildren(t *testing.T) {
	tr := NewTracer(8)
	h := tr.StartTrace()
	root := h.Start("run", nil, 0)
	batch := h.Start("batch", root, 1, L("tape", "9"))
	h.Start("serve", batch, 1).End(2)
	batch.End(2)
	root.End(3)

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	// The format is "...end  <indent>name": two-space separator, then
	// two more spaces per depth level.
	if !strings.Contains(lines[0], "  run") || strings.Contains(lines[0], "   run") {
		t.Fatalf("root line malformed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "    batch tape=9") {
		t.Fatalf("child line not indented once: %q", lines[1])
	}
	if !strings.Contains(lines[2], "      serve") {
		t.Fatalf("grandchild line not indented twice: %q", lines[2])
	}
}
