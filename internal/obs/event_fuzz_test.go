package obs

import "testing"

// FuzzWideEventRing drives the bounded event ring with an arbitrary
// op-sequence and checks conservation: events in == retained +
// evicted, retention never exceeds the cap, eviction is strictly
// oldest-first, and Tail is consistent with Events.
func FuzzWideEventRing(f *testing.F) {
	f.Add(1, []byte{0})
	f.Add(4, []byte{0, 1, 2, 3, 4, 250, 0, 7})
	f.Add(16, []byte{9, 200, 9, 128, 7, 255, 1})
	f.Fuzz(func(t *testing.T, capEvents int, ops []byte) {
		if capEvents < -16 || capEvents > 1<<10 {
			return
		}
		r := NewEventRing(capEvents)
		effCap := capEvents
		if effCap < 1 {
			effCap = 1
		}
		var added int64
		for i, op := range ops {
			switch {
			case op >= 250: // reset
				r.Reset()
				added = 0
			default:
				r.Add(Event{DoneSec: float64(i), Object: "o"})
				added++
			}
			kept := r.Events()
			if len(kept) > effCap {
				t.Fatalf("ring holds %d events, cap %d", len(kept), effCap)
			}
			if r.Total() != added {
				t.Fatalf("total %d, added %d", r.Total(), added)
			}
			if r.Total() != int64(len(kept))+r.Dropped() {
				t.Fatalf("conservation: total %d != kept %d + dropped %d",
					r.Total(), len(kept), r.Dropped())
			}
			// Seqs are dense and increasing: eviction is oldest-first.
			for j := 1; j < len(kept); j++ {
				if kept[j].Seq != kept[j-1].Seq+1 {
					t.Fatalf("kept seqs %d then %d: not oldest-first", kept[j-1].Seq, kept[j].Seq)
				}
			}
			// Tail(0) must return exactly the retained events.
			tail := r.Tail(0)
			if len(tail) != len(kept) {
				t.Fatalf("Tail(0) %d events, Events %d", len(tail), len(kept))
			}
		}
	})
}

// FuzzSLOWindow drives one objective's engine with an arbitrary
// outcome sequence on a nondecreasing clock and checks: window totals
// never exceed what was recorded, the SLI stays in [0,1] (1 on empty,
// never NaN), the budget is never negative, and burn rates are
// non-negative.
func FuzzSLOWindow(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{255, 0, 255, 0, 10, 20})
	f.Add([]byte{128})
	f.Fuzz(func(t *testing.T, ops []byte) {
		e, err := NewSLOEngine(SLOConfig{
			Objectives: []Objective{{Name: "avail", Target: 0.99}},
			WindowsSec: []float64{10, 100},
		})
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		var recorded int64
		for _, op := range ops {
			now += float64(op % 16)
			if op%5 == 0 {
				e.Advance(now)
			} else {
				e.Record("standard", now, op%3 != 0, float64(op))
				recorded++
			}
			for _, os := range e.Status() {
				if os.Total != recorded {
					t.Fatalf("cumulative total %d, recorded %d", os.Total, recorded)
				}
				if os.BudgetRemaining < 0 {
					t.Fatalf("budget remaining %g < 0", os.BudgetRemaining)
				}
				for _, ws := range os.Windows {
					if ws.Total > recorded || ws.Total < 0 {
						t.Fatalf("window %gs holds %d of %d recorded", ws.WindowSec, ws.Total, recorded)
					}
					if ws.Bad < 0 || ws.Bad > ws.Total {
						t.Fatalf("window %gs bad %d of total %d", ws.WindowSec, ws.Bad, ws.Total)
					}
					if ws.SLI < 0 || ws.SLI > 1 || ws.SLI != ws.SLI {
						t.Fatalf("window %gs SLI %g outside [0,1]", ws.WindowSec, ws.SLI)
					}
					if ws.Total == 0 && ws.SLI != 1 {
						t.Fatalf("empty window SLI %g, want 1", ws.SLI)
					}
					if ws.Burn < 0 {
						t.Fatalf("burn %g < 0", ws.Burn)
					}
				}
			}
		}
	})
}
