package obs

import (
	"bytes"
	"strings"
	"testing"
)

func newTestEngine(t *testing.T, cfg SLOConfig) *SLOEngine {
	t.Helper()
	e, err := NewSLOEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSLOEmptyWindow pins the idle-system contract: no observations
// means SLI 1, zero burn, and a fully intact budget — never NaN.
func TestSLOEmptyWindow(t *testing.T) {
	e := newTestEngine(t, SLOConfig{Objectives: []Objective{{Name: "avail", Target: 0.999}}})
	e.Advance(1e6)
	for _, os := range e.Status() {
		if os.BudgetConsumed != 0 || os.BudgetRemaining != 1 {
			t.Fatalf("empty budget consumed %g remaining %g", os.BudgetConsumed, os.BudgetRemaining)
		}
		for _, ws := range os.Windows {
			if ws.SLI != 1 || ws.Burn != 0 {
				t.Fatalf("empty window %gs SLI %g burn %g, want 1/0", ws.WindowSec, ws.SLI, ws.Burn)
			}
		}
	}
	if alerts := e.Alerts(); len(alerts) != 0 {
		t.Fatalf("empty engine produced %d alerts", len(alerts))
	}
}

func TestSLOWindowEviction(t *testing.T) {
	e := newTestEngine(t, SLOConfig{
		Objectives: []Objective{{Name: "avail", Target: 0.9}},
		WindowsSec: []float64{100},
		Rules:      []BurnRule{}, // no rules: isolate the window math
	})
	e.Record("standard", 10, false, 0) // bad at t=10
	e.Record("standard", 50, true, 0)
	st := e.Status()[0]
	if st.Windows[0].Total != 2 || st.Windows[0].Bad != 1 {
		t.Fatalf("window %d/%d, want 2 total 1 bad", st.Windows[0].Total, st.Windows[0].Bad)
	}
	// t=110: the bad sample at t=10 falls out (cut is at <= now-100).
	e.Advance(110)
	st = e.Status()[0]
	if st.Windows[0].Total != 1 || st.Windows[0].Bad != 0 {
		t.Fatalf("after eviction window %d/%d, want 1/0", st.Windows[0].Total, st.Windows[0].Bad)
	}
	if st.Windows[0].SLI != 1 {
		t.Fatalf("after eviction SLI %g, want 1", st.Windows[0].SLI)
	}
	// The cumulative budget is not a window: it still remembers the bad.
	if st.Total != 2 || st.Bad != 1 {
		t.Fatalf("cumulative %d/%d, want 2/1", st.Total, st.Bad)
	}
}

// TestSLOWindowCompactionClearsPrefix exercises the head compaction
// path (head > len/2 and > 16) and checks the vacated prefix holds no
// stale samples.
func TestSLOWindowCompactionClearsPrefix(t *testing.T) {
	w := &slidingWindow{lenSec: 10}
	for i := 0; i < 64; i++ {
		w.add(float64(i), i%2 == 0)
	}
	w.advance(60) // evicts at <= 50: 51 samples, well past the compaction threshold
	if w.head != 0 {
		t.Fatalf("head %d after compaction, want 0", w.head)
	}
	if w.total != 13 {
		t.Fatalf("window holds %d samples, want 13 (t=51..63)", w.total)
	}
	tail := w.samples[len(w.samples):cap(w.samples)]
	for i, s := range tail {
		if s != (sloSample{}) {
			t.Fatalf("vacated slot %d still holds %+v", i, s)
		}
	}
}

func TestSLOBurnAlertFireResolve(t *testing.T) {
	e := newTestEngine(t, SLOConfig{
		Objectives: []Objective{{Name: "avail", Target: 0.9}},
		Rules:      []BurnRule{{Name: "page", ShortSec: 10, LongSec: 100, Burn: 2}},
	})
	// Burn threshold 2 at target 0.9 means bad fraction >= 0.2 in both
	// windows. Three bads in a row: short 3/3, long 3/3 — fires.
	for i := 0; i < 3; i++ {
		e.Record("standard", float64(i), false, 0)
	}
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != "fire" || alerts[0].Rule != "page" {
		t.Fatalf("after 3 bads alerts = %+v, want one fire", alerts)
	}
	// Time passes: the short window empties (burn 0) while the long
	// still holds the bads — the alert resolves on the short leg.
	e.Advance(50)
	alerts = e.Alerts()
	if len(alerts) != 2 || alerts[1].State != "resolve" {
		t.Fatalf("after advance alerts = %+v, want fire then resolve", alerts)
	}
	if alerts[1].ShortBurn != 0 {
		t.Fatalf("resolve short burn %g, want 0", alerts[1].ShortBurn)
	}
}

func TestSLOClassFilter(t *testing.T) {
	e := newTestEngine(t, SLOConfig{
		Objectives: []Objective{{Name: "std", Class: "standard", Target: 0.9}},
		Rules:      []BurnRule{},
	})
	e.Record("standard", 1, true, 0)
	e.Record("best-effort", 2, false, 0)
	st := e.Status()[0]
	if st.Total != 1 || st.Bad != 0 {
		t.Fatalf("class filter let %d/%d through, want 1/0", st.Total, st.Bad)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	e := newTestEngine(t, SLOConfig{
		Objectives: []Objective{{Name: "lat", Target: 0.9, LatencySec: 100}},
		Rules:      []BurnRule{},
	})
	e.ObserveEvent(Event{Class: "standard", Outcome: OutcomeServed, ArrivalSec: 0, DoneSec: 50})
	e.ObserveEvent(Event{Class: "standard", Outcome: OutcomeServed, ArrivalSec: 100, DoneSec: 250})
	st := e.Status()[0]
	if st.Total != 2 || st.Bad != 1 {
		t.Fatalf("latency objective scored %d/%d, want 2 total 1 bad (150s > 100s)", st.Total, st.Bad)
	}
}

func TestSLOBudgetNeverNegative(t *testing.T) {
	e := newTestEngine(t, SLOConfig{
		Objectives: []Objective{{Name: "avail", Target: 0.99}},
		Rules:      []BurnRule{},
	})
	for i := 0; i < 10; i++ {
		e.Record("standard", float64(i), false, 0)
	}
	st := e.Status()[0]
	if st.BudgetRemaining != 0 {
		t.Fatalf("overspent budget remaining %g, want clamped 0", st.BudgetRemaining)
	}
	if st.BudgetConsumed <= 1 {
		t.Fatalf("overspent budget consumed %g, want > 1", st.BudgetConsumed)
	}
}

func TestSLOConfigValidation(t *testing.T) {
	bad := []SLOConfig{
		{Objectives: []Objective{{Name: "", Target: 0.9}}},
		{Objectives: []Objective{{Name: "x", Target: 0}}},
		{Objectives: []Objective{{Name: "x", Target: 1}}},
		{WindowsSec: []float64{-1}},
		{Rules: []BurnRule{{Name: "r", ShortSec: 100, LongSec: 10, Burn: 1}}},
		{Rules: []BurnRule{{Name: "r", ShortSec: 10, LongSec: 100, Burn: 0}}},
	}
	for i, cfg := range bad {
		if _, err := NewSLOEngine(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSLOWriteReportDeterministic(t *testing.T) {
	run := func() string {
		e := newTestEngine(t, SLOConfig{Objectives: []Objective{
			{Name: "avail", Target: 0.995},
			{Name: "lat", Target: 0.95, LatencySec: 10},
		}})
		for i := 0; i < 200; i++ {
			e.Record("standard", float64(i)*7, i%17 != 0, float64(i%30))
		}
		var buf bytes.Buffer
		if err := e.WriteReport(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("identical replays rendered different reports")
	}
	if !strings.Contains(a, "# slo report") || !strings.Contains(a, "# alerts") {
		t.Fatalf("report missing sections:\n%s", a)
	}
}

func TestHealthTrackerScore(t *testing.T) {
	h := NewHealthTracker(100)
	if h.Score("shard=0") != 1 {
		t.Fatal("unseen key must score 1")
	}
	h.Observe("shard=0", 1, true)
	h.Observe("shard=0", 2, false)
	if got := h.Score("shard=0"); got != 0.5 {
		t.Fatalf("score %g, want 0.5", got)
	}
	// The bad sample expires; the good one (t=150 keeps at > 50) would
	// too, so re-observe a good and check recovery.
	h.Observe("shard=0", 150, true)
	if got := h.Score("shard=0"); got != 1 {
		t.Fatalf("score after recovery %g, want 1", got)
	}
	if keys := h.Keys(); len(keys) != 1 || keys[0] != "shard=0" {
		t.Fatalf("keys %v", keys)
	}
	var nilTracker *HealthTracker
	nilTracker.Observe("x", 0, true)
	nilTracker.Advance(1)
	if nilTracker.Score("x") != 1 || nilTracker.Keys() != nil {
		t.Fatal("nil tracker is not a no-op")
	}
}

// TestHistogramQuantileSaturation pins the exact-to-bucketed
// transition: past maxExactSamples retained samples the histogram
// keeps counting and falls back to bucket interpolation, and its
// estimates stay inside the observed range.
func TestHistogramQuantileSaturation(t *testing.T) {
	h := newHistogram()
	n := maxExactSamples + 3
	for i := 0; i < n; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
	if !h.SaturatedQuantiles() {
		t.Fatalf("%d observations did not saturate the %d-sample retention", n, maxExactSamples)
	}
	if h.Count() != n {
		t.Fatalf("count %d, want %d (counting must survive saturation)", h.Count(), n)
	}
	// Bucket interpolation can overshoot the observed max up to the
	// containing bucket's upper bound (1024 here), never past it.
	for _, p := range []float64{0, 50, 95, 99, 100} {
		q := h.Quantile(p)
		if q < 0 || q > 1024 || q != q {
			t.Fatalf("saturated p%g = %g outside [0, 1024]", p, q)
		}
	}
	if p50, p99 := h.Quantile(50), h.Quantile(99); p50 > p99 {
		t.Fatalf("quantiles not monotone: p50 %g > p99 %g", p50, p99)
	}

	// Just under the cap stays exact.
	exact := newHistogram()
	exact.Observe(1)
	exact.Observe(3)
	if exact.SaturatedQuantiles() {
		t.Fatal("2 observations reported saturated")
	}
	if got := exact.Quantile(50); got != 2 {
		t.Fatalf("exact p50 = %g, want 2 (rank interpolation)", got)
	}

	// Empty histogram: zeros, never NaN.
	empty := newHistogram()
	if got := empty.Quantile(99); got != 0 {
		t.Fatalf("empty p99 = %g, want 0", got)
	}
}
