package obs

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func evAt(seq int64, done float64) Event {
	return Event{Seq: seq, Object: "t0/o" + strconv.FormatInt(seq, 10),
		Tape: 3000, Drive: 0, Class: "standard", Outcome: OutcomeServed,
		ArrivalSec: done - 1, DoneSec: done}
}

func TestEventRingAddEvict(t *testing.T) {
	r := NewEventRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(Event{DoneSec: float64(i)})
	}
	if r.Total() != 5 || r.Dropped() != 2 {
		t.Fatalf("total %d dropped %d, want 5/2", r.Total(), r.Dropped())
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("kept %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.DoneSec != float64(i+3) {
			t.Fatalf("kept[%d].DoneSec = %g, want %g (oldest-first tail)", i, ev.DoneSec, float64(i+3))
		}
		if ev.Seq != int64(i+3) {
			t.Fatalf("kept[%d].Seq = %d, want %d (dense 1-based)", i, ev.Seq, i+3)
		}
	}
}

func TestEventRingPreservesNonzeroSeq(t *testing.T) {
	r := NewEventRing(4)
	r.Add(Event{Seq: 42})
	r.Add(Event{})
	evs := r.Events()
	if evs[0].Seq != 42 {
		t.Fatalf("pre-stamped Seq rewritten to %d", evs[0].Seq)
	}
	if evs[1].Seq != 2 {
		t.Fatalf("auto Seq = %d, want 2 (total-based)", evs[1].Seq)
	}
}

func TestEventRingTail(t *testing.T) {
	r := NewEventRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(Event{DoneSec: float64(i)})
	}
	// Emission indices 0..5; retained are 2..5.
	if got := r.Tail(6); len(got) != 0 {
		t.Fatalf("tail past the end returned %d events", len(got))
	}
	got := r.Tail(4)
	if len(got) != 2 || got[0].DoneSec != 5 || got[1].DoneSec != 6 {
		t.Fatalf("Tail(4) = %+v, want events at t=5,6", got)
	}
	// Asking for more than is retained yields only what remains.
	got = r.Tail(0)
	if len(got) != 4 || got[0].DoneSec != 3 {
		t.Fatalf("Tail(0) = %d events starting %g, want 4 starting t=3", len(got), got[0].DoneSec)
	}
}

// TestEventRingResetClearsBacking pins the stale-tail retention fix:
// after Reset the backing array must hold no event strings or label
// slices from before.
func TestEventRingResetClearsBacking(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 4; i++ {
		r.Add(Event{Object: "big", Labels: []Label{L("k", "v")}})
	}
	r.Reset()
	if r.Total() != 0 || r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Fatalf("reset ring not empty: total %d dropped %d kept %d", r.Total(), r.Dropped(), len(r.Events()))
	}
	backing := r.ring[:cap(r.ring)]
	for i, ev := range backing {
		if ev.Object != "" || ev.Labels != nil {
			t.Fatalf("backing[%d] still pins %+v after Reset", i, ev)
		}
	}
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	in := []Event{
		evAt(1, 10.5),
		{Seq: 2, Shard: 1, Object: "t1/o0", Tape: 3001, Drive: EventNoDrive,
			Class: "best-effort", Outcome: OutcomeRejected, ArrivalSec: 3, DoneSec: 3,
			Labels: []Label{L("rate", "120")}},
		{Seq: 3, Object: "t0/o1", Tape: 3000, Drive: -1, Class: "standard",
			Outcome: OutcomeServed, Cache: true, Route: "affinity",
			ArrivalSec: 5, DoneSec: 5.1, LocateSec: 0.05, TransferSec: 0.05},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, in, 0); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func TestEventsJSONLHead(t *testing.T) {
	in := []Event{evAt(1, 1), evAt(2, 2), evAt(3, 3)}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, in, 2); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("head 2 wrote %d lines", n)
	}
}

func TestEventsJSONLDeterministic(t *testing.T) {
	in := []Event{evAt(1, 10.5), evAt(2, 1.0/3.0)}
	var a, b bytes.Buffer
	if err := WriteEventsJSONL(&a, in, 0); err != nil {
		t.Fatal(err)
	}
	if err := WriteEventsJSONL(&b, in, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical events marshaled to different bytes")
	}
}

func TestEventAttributionSum(t *testing.T) {
	ev := Event{ArrivalSec: 1, DoneSec: 10,
		QueueSec: 2, RobotSec: 1, MountSec: 2, LocateSec: 1.5, TransferSec: 0.5, RetrySec: 1, RescueSec: 1}
	if ev.AttributionSum() != 9 || ev.SojournSec() != 9 {
		t.Fatalf("sum %g sojourn %g, want 9/9", ev.AttributionSum(), ev.SojournSec())
	}
}

func TestNilEventRingNoOps(t *testing.T) {
	var r *EventRing
	r.Add(Event{})
	r.Reset()
	if r.Events() != nil || r.Tail(0) != nil || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil ring is not a no-op")
	}
}
