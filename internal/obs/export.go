package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TraceSet names one group of spans for export — typically one
// simulation run or one sweep cell. Exports render each set as a
// separate Chrome "process", so parallel cells load side by side in
// Perfetto.
type TraceSet struct {
	Name  string
	Spans []Span
}

// chromeEvent is one Chrome trace-event object. Field order is fixed
// by the struct and map keys are marshalled sorted, so the rendered
// bytes are a pure function of the spans.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace dumps the sets in the Chrome trace-event JSON
// format (the "JSON Object Format" with a traceEvents array), which
// chrome://tracing and Perfetto load directly. Every span renders as
// one complete ("X") event: ts and dur are virtual microseconds, pid
// is the set index, tid the span's lane. Trace, span and parent IDs
// travel in args so the causal chain survives the viewer round trip.
// One event per line, deterministic bytes for identical spans.
func WriteChromeTrace(w io.Writer, sets []TraceSet) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}
	for pid, set := range sets {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": set.Name},
		}); err != nil {
			return err
		}
		for _, s := range set.Spans {
			args := make(map[string]string, len(s.Attrs)+3)
			args["trace"] = strconv.FormatUint(s.Trace, 10)
			args["span"] = strconv.FormatUint(s.ID, 10)
			if s.Parent != 0 {
				args["parent"] = strconv.FormatUint(s.Parent, 10)
			}
			for _, a := range s.Attrs {
				// Attribute keys must not mask the identity keys; a
				// colliding key gets an attr. prefix instead.
				k := a.Key
				if k == "trace" || k == "span" || k == "parent" {
					k = "attr." + k
				}
				args[k] = a.Value
			}
			dur := s.DurationSec() * 1e6
			if err := emit(chromeEvent{
				Name: s.Name, Ph: "X", Pid: pid, Tid: s.Lane,
				Ts: s.StartSec * 1e6, Dur: &dur, Args: args,
			}); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// WriteTimeline dumps the spans as a compact indented text timeline,
// sorted by start time (parents tie-break ahead of their children by
// span ID). Times are fixed-point virtual seconds, so the output is
// byte-deterministic.
func WriteTimeline(w io.Writer, spans []Span) error {
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.StartSec != b.StartSec {
			return a.StartSec < b.StartSec
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.ID < b.ID
	})

	// Depth via the parent chain; a span whose parent was evicted from
	// the bounded store renders as a root.
	type key struct{ trace, id uint64 }
	depths := make(map[key]int, len(ordered))
	depthOf := func(s Span) int {
		if s.Parent == 0 {
			return 0
		}
		if d, ok := depths[key{s.Trace, s.Parent}]; ok {
			return d + 1
		}
		return 0
	}
	for _, s := range ordered {
		d := depthOf(s)
		depths[key{s.Trace, s.ID}] = d
		indent := strings.Repeat("  ", d)
		var attrs strings.Builder
		for _, a := range s.Attrs {
			fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "%14.6f %14.6f  %s%s%s  [trace %d span %d]\n",
			s.StartSec, s.EndSec, indent, s.Name, attrs.String(), s.Trace, s.ID); err != nil {
			return err
		}
	}
	return nil
}
