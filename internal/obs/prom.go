package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm dumps the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, then the
// series in sorted order. Counters dump as `<name> <value>`, gauges
// likewise, histograms as the conventional cumulative `_bucket{le=}`
// series plus `_sum` and `_count`. Output is deterministic: families
// and series render in lexical order and values use strconv's
// shortest-round-trip formatting.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	type series struct{ key, val string }
	fams := make(map[string]string) // family name -> type
	bySeries := make(map[string][]series)
	for k, c := range r.counts {
		name, _ := splitKey(k)
		fams[name] = "counter"
		bySeries[name] = append(bySeries[name], series{k, strconv.FormatInt(c.Value(), 10)})
	}
	for k, g := range r.gauges {
		name, _ := splitKey(k)
		fams[name] = "gauge"
		bySeries[name] = append(bySeries[name], series{k, formatFloat(g.Value())})
	}
	type histSnap struct {
		key     string
		buckets []int64
		count   int
		sum     float64
	}
	histFams := make(map[string][]histSnap)
	for k, h := range r.hists {
		name, _ := splitKey(k)
		fams[name] = "histogram"
		h.mu.Lock()
		buckets := make([]int64, len(h.buckets))
		copy(buckets, h.buckets)
		snap := histSnap{key: k, buckets: buckets, count: h.acc.N(), sum: h.sum}
		h.mu.Unlock()
		histFams[name] = append(histFams[name], snap)
	}
	r.mu.Unlock()

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fams[name]); err != nil {
			return err
		}
		if fams[name] == "histogram" {
			snaps := histFams[name]
			sort.Slice(snaps, func(i, j int) bool { return snaps[i].key < snaps[j].key })
			for _, s := range snaps {
				if err := writePromHist(w, s.key, s.buckets, s.count, s.sum); err != nil {
					return err
				}
			}
			continue
		}
		ss := bySeries[name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		for _, s := range ss {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.key, s.val); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist renders one histogram series under its labeled key.
func writePromHist(w io.Writer, key string, buckets []int64, count int, sum float64) error {
	name, labels := splitKey(key)
	cum := int64(0)
	for i, c := range buckets {
		cum += c
		le := "+Inf"
		if i < len(histBounds) {
			le = formatFloat(histBounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	return err
}

// withLabel splices one more label into an already-rendered label
// block ("" means no existing labels), escaping the value per the
// Prometheus text format like metricKey does.
func withLabel(block, key, value string) string {
	extra := key + `="` + promEscape(value) + `"`
	if block == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(block, "}") + "," + extra + "}"
}

// formatFloat renders a value the same way on every run: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON dumps the registry as a flat expvar-style JSON object:
// every counter and gauge keyed by its series identity, and per
// histogram the count, sum, mean and exact p50/p95/p99. Keys render
// in sorted order so the dump is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	entries := make(map[string]string)
	for k, c := range r.counts {
		entries[k] = strconv.FormatInt(c.Value(), 10)
	}
	for k, g := range r.gauges {
		entries[k] = formatFloat(g.Value())
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()
	for k, h := range hists {
		entries[k] = fmt.Sprintf(`{"count":%d,"sum":%s,"mean":%s,"p50":%s,"p95":%s,"p99":%s}`,
			h.Count(), formatFloat(h.Sum()), formatFloat(h.Mean()),
			formatFloat(h.Quantile(50)), formatFloat(h.Quantile(95)), formatFloat(h.Quantile(99)))
	}

	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, k := range keys {
		sep := ","
		if i == len(keys)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %q: %s%s\n", k, entries[k], sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
