package obs

import (
	"strconv"
	"sync"
)

// The span layer is the causal half of the observability subsystem:
// where counters say *how often* and histograms say *how long*, spans
// say *why* — every span covers one interval of the virtual timeline,
// names the operation that filled it, and points at the span that
// caused it. Like the rest of the package, spans never read wall
// time: start and end stamps are virtual-clock seconds supplied by
// the caller, and IDs come from per-trace counters, never from rand.
// A single-threaded simulation therefore produces the exact same span
// sequence on every run, which is what lets results/trace.json be
// committed and diffed like the numeric tables.

// Span is one completed operation on the virtual timeline.
type Span struct {
	// Trace groups the spans of one simulation run (or one request
	// lifecycle, at the recorder's discretion). IDs start at 1.
	Trace uint64
	// ID identifies the span within its trace, from a per-trace
	// counter starting at 1 — deterministic by construction.
	ID uint64
	// Parent is the causing span's ID within the same trace, 0 for a
	// root.
	Parent uint64
	// Name labels the operation ("batch", "serve", "locate", ...).
	Name string
	// StartSec and EndSec bound the span on the virtual clock.
	StartSec float64
	EndSec   float64
	// Lane is the export lane (Chrome "tid"): 0 for run-level spans,
	// 1+driveID for per-drive work, so parallel drives render as
	// parallel rows.
	Lane int
	// Attrs are key-value annotations, in recording order.
	Attrs []Label
}

// DurationSec is the span's virtual duration.
func (s Span) DurationSec() float64 { return s.EndSec - s.StartSec }

// Tracer is a bounded, deterministic store of completed spans: a ring
// retaining the most recent cap spans, in End order. It is safe for
// concurrent use; within one single-threaded simulation the store
// order (and every ID) is a pure function of the run. A nil *Tracer
// is a valid no-op recorder: StartTrace on it returns a nil handle
// whose methods all no-op, so instrumentation points never branch on
// whether tracing is enabled.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	total   int
	dropped int
	traces  uint64
}

// NewTracer returns a tracer retaining the most recent capSpans
// completed spans (minimum 1).
func NewTracer(capSpans int) *Tracer {
	if capSpans < 1 {
		capSpans = 1
	}
	return &Tracer{ring: make([]Span, 0, capSpans)}
}

// StartTrace opens a new trace and returns its handle. Trace IDs are
// allocated from the tracer's counter, starting at 1. On a nil tracer
// it returns nil, which is itself a valid no-op handle.
func (t *Tracer) StartTrace() *TraceHandle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traces++
	return &TraceHandle{t: t, id: t.traces}
}

// Record stores one externally-built completed span, evicting the
// oldest when full. Normal instrumentation goes through StartTrace /
// Start / End; Record exists for replaying spans collected elsewhere
// (the sweep cells) into a live tracer, and for tests.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.dropped++
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many spans were ever recorded; Dropped how many
// of those were evicted from the bounded store.
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns the number of evicted spans.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset empties the ring and clears the whole backing array, so the
// store does not pin evicted spans' names and attribute slices (the
// stale-tail retention class the admission queue's compaction once
// had). Span and trace counters reset too.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.ring[:cap(t.ring)])
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.dropped = 0
	t.traces = 0
}

// TraceHandle allocates span IDs for one trace. It is safe for
// concurrent use, though deterministic ID assignment of course
// requires deterministic call order. A nil handle no-ops.
type TraceHandle struct {
	t    *Tracer
	id   uint64
	mu   sync.Mutex
	next uint64
}

// ID returns the trace ID (0 on a nil handle).
func (h *TraceHandle) ID() uint64 {
	if h == nil {
		return 0
	}
	return h.id
}

// spanPool recycles SpanHandle structs between Start and End. The
// handles are pure scratch — Record copies the completed Span value
// (the ring takes ownership of the Attrs backing, which is why reuse
// resets Attrs to nil instead of truncating) — so pooling them makes
// an instrumented run's span overhead one allocation per span with
// attributes and zero without, instead of one per Start.
var spanPool = sync.Pool{New: func() any { return new(SpanHandle) }}

// Start opens a span at startSec. parent may be nil (a root span);
// a child inherits its parent's lane until Lane overrides it. The
// span is not stored until End is called.
//
// The returned handle is only valid until its End: handles are pooled
// and reused by later Starts, so holding one past End (for a late
// Attr, a second End, or as a parent of a later span) corrupts an
// unrelated span. Every parent must outlive its children's Starts.
func (h *TraceHandle) Start(name string, parent *SpanHandle, startSec float64, attrs ...Label) *SpanHandle {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	h.next++
	id := h.next
	h.mu.Unlock()
	sp := spanPool.Get().(*SpanHandle)
	sp.t = h.t
	sp.done = false
	sp.s = Span{Trace: h.id, ID: id, Name: name, StartSec: startSec}
	if parent != nil {
		sp.s.Parent = parent.s.ID
		sp.s.Lane = parent.s.Lane
	}
	if len(attrs) > 0 {
		sp.s.Attrs = append([]Label(nil), attrs...)
	}
	return sp
}

// SpanHandle is a span under construction. All methods are nil-safe
// no-ops so instrumentation points need no enabled/disabled branches.
type SpanHandle struct {
	t    *Tracer
	s    Span
	done bool
}

// Attr appends one key-value annotation and returns the handle for
// chaining. Keys may repeat; attributes keep recording order.
func (sp *SpanHandle) Attr(key, value string) *SpanHandle {
	if sp == nil || sp.done {
		return sp
	}
	sp.s.Attrs = append(sp.s.Attrs, Label{Key: key, Value: value})
	return sp
}

// AttrFloat records a float attribute with deterministic formatting.
func (sp *SpanHandle) AttrFloat(key string, v float64) *SpanHandle {
	return sp.Attr(key, formatFloat(v))
}

// AttrInt records an integer attribute.
func (sp *SpanHandle) AttrInt(key string, v int) *SpanHandle {
	if sp == nil || sp.done {
		return sp
	}
	return sp.Attr(key, strconv.Itoa(v))
}

// Lane assigns the span's export lane (children started afterwards
// inherit it).
func (sp *SpanHandle) Lane(n int) *SpanHandle {
	if sp == nil || sp.done {
		return sp
	}
	sp.s.Lane = n
	return sp
}

// SpanID returns the span's ID within its trace (0 on nil).
func (sp *SpanHandle) SpanID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.s.ID
}

// End closes the span at endSec, commits it to the tracer's store,
// and returns the handle to the pool — the handle must not be used
// afterwards (see Start). A second End before the handle is reissued
// is still a no-op, as is End on a nil handle.
func (sp *SpanHandle) End(endSec float64) {
	if sp == nil || sp.done {
		return
	}
	sp.done = true
	sp.s.EndSec = endSec
	t := sp.t
	s := sp.s
	sp.t = nil
	sp.s.Attrs = nil // the ring owns the backing now
	spanPool.Put(sp)
	t.Record(s)
}
