package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Live introspection: the same deterministic dumps the experiment
// commands commit as evidence, served over HTTP so a running (or just
// finished) process can be inspected with curl or a Prometheus
// scrape. The handlers only read registry and tracer state under
// their own locks — attaching them changes nothing about a run.

// NewMux returns a mux exposing the registry and tracer:
//
//	/metrics      Prometheus text exposition (WriteProm)
//	/statusz      JSON snapshot: span store stats + every metric
//	/tracez       recent spans as the text timeline (WriteTimeline)
//	/debug/pprof  the standard pprof handlers
//
// reg and tr may each be nil; the endpoints then render empty.
func NewMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WriteProm(w)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\n\"spans\": {\"kept\": %d, \"total\": %d, \"dropped\": %d},\n\"metrics\": ",
			len(tr.Spans()), tr.Total(), tr.Dropped())
		if reg != nil {
			_ = reg.WriteJSON(w)
		} else {
			fmt.Fprintln(w, "{}")
		}
		fmt.Fprintln(w, "}")
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# spans: %d kept, %d recorded, %d dropped\n", len(tr.Spans()), tr.Total(), tr.Dropped())
		_ = WriteTimeline(w, tr.Spans())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (host:port; ":0" picks a free port), serves NewMux
// on it in a background goroutine for the life of the process, and
// returns the bound address. The experiment commands call this behind
// their -listen flag.
func Serve(addr string, reg *Registry, tr *Tracer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		srv := &http.Server{Handler: NewMux(reg, tr)}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
