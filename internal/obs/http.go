package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// Live introspection: the same deterministic dumps the experiment
// commands commit as evidence, served over HTTP so a running (or just
// finished) process can be inspected with curl or a Prometheus
// scrape. The handlers only read registry, tracer, and SLO state
// under their own locks — attaching them changes nothing about a run.

// MuxConfig names the observability surfaces a mux exposes. Every
// field may be nil; the corresponding endpoints then render empty.
type MuxConfig struct {
	// Reg feeds /metrics and /statusz.
	Reg *Registry
	// Tracer feeds /tracez and the span stats in /statusz.
	Tracer *Tracer
	// SLO feeds /healthz (objective state, budgets, alerts).
	SLO *SLOEngine
	// Health adds per-entity health scores to /healthz.
	Health *HealthTracker
	// Events adds wide-event ring stats to /statusz.
	Events *EventRing
}

// NewMux returns a mux exposing the configured surfaces:
//
//	/metrics      Prometheus text exposition (WriteProm)
//	/statusz      JSON snapshot: span/event store stats, per-shard
//	              counters, every metric
//	/healthz      JSON SLO state: objectives, budgets, burn rules,
//	              alert log, health scores
//	/tracez       recent spans as the text timeline (WriteTimeline)
//	/debug/pprof  the standard pprof handlers
func NewMux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Reg != nil {
			_ = cfg.Reg.WriteProm(w)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr := cfg.Tracer
		fmt.Fprintf(w, "{\n\"spans\": {\"kept\": %d, \"total\": %d, \"dropped\": %d},\n",
			len(tr.Spans()), tr.Total(), tr.Dropped())
		fmt.Fprintf(w, "\"events\": {\"kept\": %d, \"total\": %d, \"dropped\": %d},\n",
			len(cfg.Events.Events()), cfg.Events.Total(), cfg.Events.Dropped())
		fmt.Fprint(w, "\"shards\": ")
		if cfg.Reg != nil {
			_ = cfg.Reg.WriteShardsJSON(w)
		} else {
			fmt.Fprintln(w, "{}")
		}
		fmt.Fprint(w, ",\n\"metrics\": ")
		if cfg.Reg != nil {
			_ = cfg.Reg.WriteJSON(w)
		} else {
			fmt.Fprintln(w, "{}")
		}
		fmt.Fprintln(w, "}")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if cfg.SLO == nil && cfg.Health == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		fmt.Fprint(w, "{\n\"slo\": ")
		if cfg.SLO != nil {
			_ = cfg.SLO.WriteHealthJSON(w)
		} else {
			fmt.Fprintln(w, "{}")
		}
		fmt.Fprint(w, ",\n\"health\": {")
		keys := cfg.Health.Keys()
		for i, k := range keys {
			sep := ","
			if i == len(keys)-1 {
				sep = ""
			}
			fmt.Fprintf(w, "\n  %q: %s%s", k, formatFloat(cfg.Health.Score(k)), sep)
		}
		fmt.Fprintln(w, "}\n}")
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr := cfg.Tracer
		fmt.Fprintf(w, "# spans: %d kept, %d recorded, %d dropped\n", len(tr.Spans()), tr.Total(), tr.Dropped())
		_ = WriteTimeline(w, tr.Spans())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WriteShardsJSON renders the registry's shard-labeled series grouped
// by shard: {"0": {"fleet_offered": 12, ...}, ...}, keys sorted
// numerically then lexically, series re-keyed without their shard
// label. Fleet runs fold per-shard registries in under a shard label
// (MergeLabeled), and this is the inverse view: one object per shard
// so a live -listen fleet run shows per-shard state at a glance.
func (r *Registry) WriteShardsJSON(w io.Writer) error {
	r.mu.Lock()
	vals := make(map[string]string, len(r.counts)+len(r.gauges))
	for k, c := range r.counts {
		vals[k] = strconv.FormatInt(c.Value(), 10)
	}
	for k, g := range r.gauges {
		vals[k] = formatFloat(g.Value())
	}
	r.mu.Unlock()

	shards := make(map[string]map[string]string)
	for k, v := range vals {
		name, block := splitKey(k)
		labels, ok := parseLabelBlock(block)
		if !ok {
			continue
		}
		shard := ""
		rest := make([]Label, 0, len(labels))
		for _, l := range labels {
			if l.Key == "shard" {
				shard = l.Value
				continue
			}
			rest = append(rest, l)
		}
		if shard == "" {
			continue
		}
		m := shards[shard]
		if m == nil {
			m = make(map[string]string)
			shards[shard] = m
		}
		m[metricKey(name, rest)] = v
	}

	ids := make([]string, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, erra := strconv.Atoi(ids[i])
		b, errb := strconv.Atoi(ids[j])
		if erra == nil && errb == nil {
			return a < b
		}
		return ids[i] < ids[j]
	})
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, id := range ids {
		sep := ","
		if i == len(ids)-1 {
			sep = ""
		}
		keys := make([]string, 0, len(shards[id]))
		for k := range shards[id] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if _, err := fmt.Fprintf(w, "\n  %q: {", id); err != nil {
			return err
		}
		for j, k := range keys {
			ks := ","
			if j == len(keys)-1 {
				ks = ""
			}
			if _, err := fmt.Fprintf(w, "\n    %q: %s%s", k, shards[id][k], ks); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "}%s", sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// Serve binds addr (host:port; ":0" picks a free port), serves NewMux
// on it in a background goroutine for the life of the process, and
// returns the bound address. The experiment commands call this behind
// their -listen flag.
func Serve(addr string, cfg MuxConfig) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		srv := &http.Server{Handler: NewMux(cfg)}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
