// Package obs is the observability subsystem of the online serving
// layer: counters, gauges and latency histograms keyed by metric name
// plus labels, a bounded trace of drive operations, a hierarchical
// virtual-time span tracer (span.go) with Chrome-trace and text
// timeline exports (export.go), live introspection endpoints
// (http.go), and deterministic text dumps in Prometheus exposition
// format and expvar-style JSON.
//
// Everything here is driven by the simulator's *virtual* clock — the
// package never reads wall time, so a metrics dump is a pure function
// of the experiment that produced it and can be committed as evidence
// the way the results/ tables are. Dumps render metrics in sorted
// order for the same reason.
//
// A Registry is safe for concurrent use; the parallel sweeps give
// every cell its own registry and Merge them afterwards in spec order,
// which keeps the merged dump independent of the worker count.
package obs

import (
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKey renders name plus sorted labels into the canonical series
// identity, e.g. `served_total{alg="LOSS",policy="fixed-window"}`.
// Label values are escaped per the Prometheus text exposition format,
// so the identity doubles as the spec-valid rendering WriteProm emits.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the Prometheus text exposition
// format: exactly backslash, double quote and newline are escaped
// (`\\`, `\"`, `\n`); every other byte — tabs, other control bytes,
// multi-byte UTF-8 — passes through raw, as the spec requires. The
// escaping is injective, so distinct values never collide into one
// series identity.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// splitKey separates a canonical series identity back into the bare
// metric name and the rendered label block ("" when unlabeled).
func splitKey(key string) (name, labelBlock string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// parseLabelBlock parses a rendered label block back into labels: the
// inverse of the block metricKey emits, honoring exactly the escapes
// promEscape produces (`\\`, `\"`, `\n`). An empty block parses to
// nil. It reports false on anything metricKey could not have written.
func parseLabelBlock(block string) ([]Label, bool) {
	if block == "" {
		return nil, true
	}
	if len(block) < 2 || block[0] != '{' || block[len(block)-1] != '}' {
		return nil, false
	}
	body := block[1 : len(block)-1]
	if body == "" {
		return nil, false // metricKey renders no block for zero labels
	}
	var labels []Label
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq <= 0 {
			return nil, false
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return nil, false // unterminated value
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, false
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, false
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		body = rest[i+1:]
		if len(body) > 0 {
			if body[0] != ',' || len(body) == 1 {
				return nil, false
			}
			body = body[1:]
		}
	}
	return labels, true
}

// relabelKey returns the series identity with the extra labels added
// to its label set. Keys that fail to parse (never produced by
// metricKey) are returned unchanged.
func relabelKey(key string, extra []Label) string {
	name, block := splitKey(key)
	labels, ok := parseLabelBlock(block)
	if !ok {
		return key
	}
	return metricKey(name, append(labels, extra...))
}

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n; negative n is ignored (counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous value (queue depth, clock seconds).
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Max raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) Max(v float64) {
	g.mu.Lock()
	if v > g.v {
		g.v = v
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Registry holds a process's metrics by canonical series identity.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	trace  *Trace
}

// NewRegistry returns an empty registry with no trace attached.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[key]
	if c == nil {
		c = &Counter{}
		r.counts[key] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		h = newHistogram()
		r.hists[key] = h
	}
	return h
}

// AttachTrace gives the registry a bounded trace of the most recent
// cap events (cap <= 0 removes the trace). Trace returns it.
func (r *Registry) AttachTrace(cap int) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cap <= 0 {
		r.trace = nil
		return nil
	}
	r.trace = NewTrace(cap)
	return r.trace
}

// Trace returns the attached trace, or nil.
func (r *Registry) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// Merge folds every metric of b into r: counters and histograms
// accumulate, gauges sum. The sweeps label each cell's series with the
// cell coordinates, so in practice gauge series never collide and
// "sum" degenerates to "copy"; summing keeps Merge total and
// deterministic for the series that do. b's trace is not merged
// (traces are per-run diagnostics, not aggregates).
func (r *Registry) Merge(b *Registry) {
	r.mergeKeyed(b, nil)
}

// MergeLabeled folds b into r like Merge, but re-keys every series
// with the extra labels added first — the fleet folds each shard's
// registry into the cell registry under shard="N", so identically
// named shard series land on distinct cluster series instead of
// summing into mush. The extra keys should be new dimensions: adding
// a key a series already carries produces a duplicate-key label block.
// With no extra labels it is exactly Merge.
func (r *Registry) MergeLabeled(b *Registry, extra ...Label) {
	r.mergeKeyed(b, extra)
}

func (r *Registry) mergeKeyed(b *Registry, extra []Label) {
	if b == nil || b == r {
		return
	}
	rekey := func(k string) string { return k }
	if len(extra) > 0 {
		rekey = func(k string) string { return relabelKey(k, extra) }
	}
	b.mu.Lock()
	type hsnap struct {
		key string
		h   *Histogram
	}
	counts := make(map[string]int64, len(b.counts))
	for k, c := range b.counts {
		counts[k] = c.Value()
	}
	gauges := make(map[string]float64, len(b.gauges))
	for k, g := range b.gauges {
		gauges[k] = g.Value()
	}
	hists := make([]hsnap, 0, len(b.hists))
	for k, h := range b.hists {
		hists = append(hists, hsnap{k, h})
	}
	b.mu.Unlock()

	for k, v := range counts {
		r.counterByKey(rekey(k)).Add(v)
	}
	for k, v := range gauges {
		r.gaugeByKey(rekey(k)).Add(v)
	}
	for _, hs := range hists {
		r.histogramByKey(rekey(hs.key)).merge(hs.h)
	}
}

func (r *Registry) counterByKey(key string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[key]
	if c == nil {
		c = &Counter{}
		r.counts[key] = c
	}
	return c
}

func (r *Registry) gaugeByKey(key string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

func (r *Registry) histogramByKey(key string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		h = newHistogram()
		r.hists[key] = h
	}
	return h
}

// TraceEvent is one recorded operation: what ran, where, when on the
// virtual clock, for how long, and how it ended.
type TraceEvent struct {
	// ClockSec is the virtual-clock time at which the operation
	// started.
	ClockSec float64
	// Op names the operation ("locate", "read", "rewind", ...).
	Op string
	// Segment is the operation's target segment, or -1.
	Segment int
	// ElapsedSec is the operation's virtual duration.
	ElapsedSec float64
	// Err classifies a failed operation ("" on success).
	Err string
}

// Trace is a bounded ring of the most recent events. It is safe for
// concurrent use.
type Trace struct {
	mu      sync.Mutex
	ring    []TraceEvent
	next    int
	total   int
	dropped int
}

// NewTrace returns a trace retaining the most recent cap events.
func NewTrace(cap int) *Trace {
	if cap < 1 {
		cap = 1
	}
	return &Trace{ring: make([]TraceEvent, 0, cap)}
}

// Add records one event, evicting the oldest when full.
func (t *Trace) Add(ev TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.dropped++
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many events were ever added; Dropped how many of
// those were evicted.
func (t *Trace) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns the number of evicted events.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset empties the ring and clears the whole backing array, so the
// store does not pin evicted events' strings after the consumer is
// done with them (the stale-tail retention class the admission
// queue's compaction once had). Counters reset too.
func (t *Trace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.ring[:cap(t.ring)])
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.dropped = 0
}
