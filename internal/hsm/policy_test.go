package hsm

import "testing"

// fill builds a cache under the named policy and installs the ids in
// order. Each entry costs its index in seconds unless costs are
// supplied.
func fill(t *testing.T, policy string, capacity int64, ids []string, bytes int64, costs ...float64) *Cache {
	t.Helper()
	p, err := NewPolicy(policy)
	if err != nil {
		t.Fatalf("NewPolicy(%q): %v", policy, err)
	}
	c := NewCache(capacity, p)
	for i, id := range ids {
		cost := float64(i)
		if i < len(costs) {
			cost = costs[i]
		}
		if !c.Install(id, bytes, cost) {
			t.Fatalf("install %q rejected", id)
		}
	}
	return c
}

func TestNewPolicy(t *testing.T) {
	for name, want := range map[string]string{"": "lru", "lru": "lru", "clock": "clock", "cost": "cost"} {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("NewPolicy(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := NewPolicy("fifo"); err == nil {
		t.Error("NewPolicy(\"fifo\") accepted an unknown policy")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	// Capacity 3; a, b, c resident. Touch a (oldest), then install d:
	// b is now least recent and must be the victim.
	c := fill(t, "lru", 3, []string{"a", "b", "c"}, 1)
	if !c.Touch("a") {
		t.Fatal("touch a: not resident")
	}
	if !c.Install("d", 1, 0) {
		t.Fatal("install d rejected")
	}
	if c.Contains("b") {
		t.Error("lru evicted something other than the least recently used: b survived")
	}
	for _, id := range []string{"a", "c", "d"} {
		if !c.Contains(id) {
			t.Errorf("lru evicted %q, which was more recent than b", id)
		}
	}
}

func TestClockSecondChance(t *testing.T) {
	// Capacity 3; a, b, c installed in order, hand at a. Touch a: the
	// sweep for d's slot clears a's bit, passes it over, and takes b —
	// the second chance in action.
	c := fill(t, "clock", 3, []string{"a", "b", "c"}, 1)
	if !c.Touch("a") {
		t.Fatal("touch a: not resident")
	}
	if !c.Install("d", 1, 0) {
		t.Fatal("install d rejected")
	}
	if c.Contains("b") {
		t.Error("clock victim was not b: the touched head was not given its second chance")
	}
	if !c.Contains("a") {
		t.Error("clock evicted a despite its reference bit")
	}

	// The hand now rests on b's successor c with a clear bit: the next
	// pressure install takes it.
	if !c.Install("e", 1, 0) {
		t.Fatal("install e rejected")
	}
	if c.Contains("c") {
		t.Error("clock second victim was not c")
	}
}

func TestCostAwareEvictsCheapest(t *testing.T) {
	// Costs: a=5, b=1, c=3. The cheapest re-fetch (b) pays first,
	// regardless of recency.
	c := fill(t, "cost", 3, []string{"a", "b", "c"}, 1, 5, 1, 3)
	c.Touch("b") // recency must not save a cheap entry
	if !c.Install("d", 1, 7) {
		t.Fatal("install d rejected")
	}
	if c.Contains("b") {
		t.Error("cost-aware kept the cheapest entry b")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Error("cost-aware evicted an expensive entry while a cheaper one was resident")
	}
}

func TestCostAwareTieBreaksByInstallOrder(t *testing.T) {
	// a and b share the cheapest cost; the earlier install (a) pays.
	c := fill(t, "cost", 3, []string{"a", "b", "c"}, 1, 2, 2, 5)
	if !c.Install("d", 1, 9) {
		t.Fatal("install d rejected")
	}
	if c.Contains("a") {
		t.Error("cost tie not broken by install order: a (earlier Seq) survived")
	}
	if !c.Contains("b") {
		t.Error("cost tie evicted the later-installed b instead of a")
	}
}

func TestInstallRefreshesResident(t *testing.T) {
	c := fill(t, "lru", 3, []string{"a", "b", "c"}, 1)
	// Re-installing a is a touch, not a new entry.
	if c.Install("a", 1, 0) {
		t.Error("re-install of a resident entry reported a new install")
	}
	if c.Len() != 3 || c.Resident() != 3 {
		t.Fatalf("resident after re-install: %d entries / %d bytes, want 3/3", c.Len(), c.Resident())
	}
	if !c.Install("d", 1, 0) {
		t.Fatal("install d rejected")
	}
	if !c.Contains("a") {
		t.Error("re-install did not refresh a's recency")
	}
	if c.Contains("b") {
		t.Error("victim after a's refresh should have been b")
	}
}

func TestInstallRejectsOversized(t *testing.T) {
	c := fill(t, "lru", 4, []string{"a"}, 2)
	if c.Install("huge", 5, 0) {
		t.Error("object larger than the cache was admitted")
	}
	if c.Contains("huge") || !c.Contains("a") {
		t.Error("oversized install disturbed residency")
	}
	if c.InstallIfRoom("big", 3, 0) {
		t.Error("InstallIfRoom evicted or overcommitted for a 3-byte object with 2 bytes free")
	}
	if c.Evictions() != 0 {
		t.Errorf("prefetch-path install evicted %d entries", c.Evictions())
	}
}
