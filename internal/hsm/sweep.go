package hsm

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"serpentine/internal/geometry"
	"serpentine/internal/obs"
	"serpentine/internal/server"
	"serpentine/internal/sim"
	"serpentine/internal/stats"
	"serpentine/internal/tertiary"
)

// SweepConfig describes the staging-tier experiment: the library
// sweeps' synthetic store served through a disk cache at every
// (arrival rate, cache size, eviction policy) cell. The axes expose
// the hierarchy's trade-off directly — hit rate bought per cache byte,
// against the sojourn time the tape path charges for every miss.
type SweepConfig struct {
	// Profile is the drive/cartridge format; zero value selects the
	// DLT4000.
	Profile geometry.Params
	// TapeCount, Objects and ObjectSegments shape the store exactly as
	// in tertiary.SweepConfig (defaults 4, 512, 32).
	TapeCount      int
	Objects        int
	ObjectSegments int
	// RatesPerHour are the Poisson arrival rates to sweep; nil
	// selects {60, 120, 240}.
	RatesPerHour []float64
	// CacheBytes are the staging capacities to sweep; nil selects
	// {0, 64 MiB, 256 MiB}. Size 0 is the no-cache baseline — one cell
	// per rate, bit-identical to the bare library sweep.
	CacheBytes []int64
	// Policies are the eviction policies (NewPolicy names) applied to
	// every non-zero cache size; nil selects {"lru"}.
	Policies []string
	// Drives is the transport pool size; 0 selects 2. BatchLimit caps
	// requests served per mount; 0 selects 16.
	Drives     int
	BatchLimit int
	// MountSec, UnmountSec, Policy, WindowSec, QueueCap and Retry pass
	// through to every cell's library Config (Policy is the batching
	// policy; eviction policies are the Policies axis above).
	MountSec   float64
	UnmountSec float64
	Policy     server.BatchPolicy
	WindowSec  float64
	QueueCap   int
	Retry      sim.RetryPolicy
	// Disk prices the hit path; Prefetch extends each miss's fetch
	// into its coalesced run (see Config).
	Disk     DiskModel
	Prefetch bool
	// Requests is the stream length per cell; 0 selects 400.
	Requests int
	// Seed seeds each cell's arrival stream and object picks. The
	// per-cell derivation depends only on the rate index — matching
	// tertiary.Sweep's positions with single-element inner axes — so
	// every cache size and policy at one rate replays the same
	// workload, and the size-0 cells align with the bare library
	// sweep's for the equivalence tests.
	Seed int64
	// Workers bounds concurrent cells; 0 selects GOMAXPROCS.
	Workers int
	// Reg, when non-nil, receives every cell's metrics, merged in spec
	// order after the parallel phase.
	Reg *obs.Registry
	// SpanCap, when positive, gives every cell its own span tracer of
	// that capacity and returns the recorded spans and completions on
	// the Cell.
	SpanCap int
}

// Cell is one (rate, cache size, policy) outcome.
type Cell struct {
	RatePerHour float64
	CacheBytes  int64
	// Policy is the eviction policy name, "off" for the size-0
	// baseline.
	Policy  string
	Metrics Metrics
	// MeanSojourn, P99Sojourn and MaxSojourn summarize response times
	// over all completions — cache hits and tape fetches together.
	MeanSojourn float64
	P99Sojourn  float64
	MaxSojourn  float64
	// Spans holds the cell's recorded spans when SweepConfig.SpanCap
	// was set; Completions the merged served requests in completion
	// order.
	Spans       []obs.Span
	Completions []tertiary.Completion
}

// Sweep runs every cell of the staging-tier experiment. Cells run
// concurrently up to cfg.Workers, sharing the read-only store, but
// each cell is fully deterministic — its stream and seeds depend only
// on the config and the cell coordinates — so the sweep's output is
// identical at any worker count.
func Sweep(cfg SweepConfig) ([]Cell, error) {
	tapeCount := cfg.TapeCount
	if tapeCount <= 0 {
		tapeCount = 4
	}
	objects := cfg.Objects
	if objects <= 0 {
		objects = 512
	}
	objSegs := cfg.ObjectSegments
	if objSegs <= 0 {
		objSegs = 32
	}
	rates := cfg.RatesPerHour
	if rates == nil {
		rates = []float64{60, 120, 240}
	}
	sizes := cfg.CacheBytes
	if sizes == nil {
		sizes = []int64{0, 64 << 20, 256 << 20}
	}
	policies := cfg.Policies
	if policies == nil {
		policies = []string{"lru"}
	}
	for _, p := range policies {
		if _, err := NewPolicy(p); err != nil {
			return nil, err
		}
	}
	drives := cfg.Drives
	if drives <= 0 {
		drives = 2
	}
	limit := cfg.BatchLimit
	if limit == 0 {
		limit = 16
	}
	n := cfg.Requests
	if n <= 0 {
		n = 400
	}
	profile := cfg.Profile
	if profile.Tracks == 0 {
		profile = geometry.DLT4000()
	}
	base, err := tertiary.SweepStore(profile, tapeCount, objects, objSegs, cfg.MountSec, cfg.UnmountSec)
	if err != nil {
		return nil, err
	}
	serials := base.Tapes()

	// The size-0 baseline is policy-independent: one spec per rate,
	// not one per policy.
	type cellSpec struct {
		rateIdx int
		size    int64
		policy  string
	}
	var specs []cellSpec
	for ri := range rates {
		for _, size := range sizes {
			if size == 0 {
				specs = append(specs, cellSpec{ri, 0, "off"})
				continue
			}
			for _, pol := range policies {
				specs = append(specs, cellSpec{ri, size, pol})
			}
		}
	}
	cells := make([]Cell, len(specs))
	regs := make([]*obs.Registry, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				rate := rates[sp.rateIdx]
				// One seed per rate, in tertiary.Sweep's index
				// positions with single-element inner axes: every
				// cache size and policy replays the same workload, and
				// the size-0 cells share streams with the bare library
				// sweep.
				seed := cfg.Seed*1000003 + int64(sp.rateIdx)*8191 + 7
				stream, err := tertiary.SweepStream(rate, n, seed, tapeCount, objects)
				if err != nil {
					reportErr(errs, fmt.Errorf("hsm: sweep arrivals %g/h: %w", rate, err))
					return
				}
				reg := obs.NewRegistry()
				var spans *obs.Tracer
				if cfg.SpanCap > 0 {
					spans = obs.NewTracer(cfg.SpanCap)
				}
				labels := []obs.Label{
					obs.L("rate", fmt.Sprintf("%g", rate)),
					obs.L("drives", strconv.Itoa(drives)),
					obs.L("batch", strconv.Itoa(limit)),
				}
				if sp.size > 0 {
					labels = append(labels,
						obs.L("cache", strconv.FormatInt(sp.size, 10)),
						obs.L("policy", sp.policy))
				}
				lib := base.Clone(tertiary.Config{
					Profile:    profile,
					Tapes:      serials,
					Drives:     drives,
					MountSec:   cfg.MountSec,
					UnmountSec: cfg.UnmountSec,
					BatchLimit: limit,
					Scheduler:  nil,
					Policy:     cfg.Policy,
					WindowSec:  cfg.WindowSec,
					QueueCap:   cfg.QueueCap,
					Retry:      cfg.Retry,
					Reg:        reg,
					Spans:      spans,
					Labels:     labels,
				})
				var tierCfg Config
				if sp.size > 0 {
					tierCfg = Config{
						CapacityBytes: sp.size,
						Policy:        sp.policy,
						Disk:          cfg.Disk,
						Prefetch:      cfg.Prefetch,
					}
				}
				tier, err := NewTier(lib, tierCfg)
				if err != nil {
					reportErr(errs, fmt.Errorf("hsm: sweep cell %g/h %s %s: %w", rate, sizeLabel(sp.size), sp.policy, err))
					return
				}
				comps, m, err := tier.Run(stream)
				if err != nil {
					reportErr(errs, fmt.Errorf("hsm: sweep cell %g/h %s %s: %w", rate, sizeLabel(sp.size), sp.policy, err))
					return
				}
				cell := Cell{RatePerHour: rate, CacheBytes: sp.size, Policy: sp.policy, Metrics: m}
				lats := make([]float64, len(comps))
				var sum float64
				for j, c := range comps {
					lats[j] = c.Latency()
					sum += lats[j]
					if lats[j] > cell.MaxSojourn {
						cell.MaxSojourn = lats[j]
					}
				}
				if len(lats) > 0 {
					cell.MeanSojourn = sum / float64(len(lats))
				}
				cell.P99Sojourn = stats.PercentileOrZero(lats, 99)
				if spans != nil {
					cell.Spans = spans.Spans()
					cell.Completions = comps
				}
				cells[i] = cell
				regs[i] = reg
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if cfg.Reg != nil {
		// Merge in spec order so the aggregated dump is independent of
		// which worker ran which cell.
		for _, r := range regs {
			cfg.Reg.Merge(r)
		}
	}
	return cells, nil
}

func reportErr(errs chan<- error, err error) {
	select {
	case errs <- err:
	default:
	}
}

// sizeLabel renders a cache capacity for tables: "off" for 0,
// mebibytes otherwise.
func sizeLabel(bytes int64) string {
	if bytes == 0 {
		return "off"
	}
	return fmt.Sprintf("%gMB", float64(bytes)/(1<<20))
}

// WriteCache prints the sweep: one block per arrival rate, one row
// per (cache size, policy), with hit rate, sojourn percentiles,
// delivered throughput and the tape path's exchange work.
func WriteCache(w io.Writer, cells []Cell) error {
	var rates []float64
	seen := make(map[float64]bool)
	for _, c := range cells {
		if !seen[c.RatePerHour] {
			seen[c.RatePerHour] = true
			rates = append(rates, c.RatePerHour)
		}
	}
	for _, rate := range rates {
		if _, err := fmt.Fprintf(w, "# arrival rate %g/h\n%8s %-6s %6s %6s %8s %12s %11s %11s %8s %7s\n",
			rate, "cache", "policy", "served", "hit%", "IO/h", "mean soj (s)", "p99 soj (s)", "max soj (s)", "mounts", "evicts"); err != nil {
			return err
		}
		for _, c := range cells {
			if c.RatePerHour != rate {
				continue
			}
			m := c.Metrics
			ioPerHour := 0.0
			if m.Makespan > 0 {
				ioPerHour = float64(m.Served()) / m.Makespan * 3600
			}
			if _, err := fmt.Fprintf(w, "%8s %-6s %6d %6.1f %8.1f %12.1f %11.1f %11.1f %8d %7d\n",
				sizeLabel(c.CacheBytes), c.Policy, m.Served(), m.HitRate()*100, ioPerHour,
				c.MeanSojourn, c.P99Sojourn, c.MaxSojourn, m.Lib.Mounts, m.Evictions); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
