// Package hsm adds the storage hierarchy's missing middle: a
// bounded-bytes disk staging cache between admission and the tape
// library. Hits are served at disk cost — a fixed latency plus a
// bandwidth-priced transfer, no mount, no locate — and misses fall
// through to the library's own event loop (tertiary.Runner); when a
// miss's fetch completes, the extent is installed in the cache, with
// an optional prefetch of the rest of its coalesced segment run (the
// paper's T=1410 coalescing threshold reused as the prefetch unit).
// Eviction is pluggable (LRU, clock, cost-aware on the twin's modeled
// re-fetch price), write-back is optional, and everything is pure
// virtual-time bookkeeping: a tier run is a deterministic function of
// its configuration.
//
// The spine of the package is the disabled case: a Tier with
// CapacityBytes 0 is a transparent pass-through, creating no cache
// state, no metric series and no spans, so its output is bit-identical
// to the bare library path — TestZeroCacheTierEquivalence and
// TestZeroCacheSweepEquivalence pin exactly this.
package hsm

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"serpentine/internal/core"
	"serpentine/internal/obs"
	"serpentine/internal/tertiary"
)

// CacheDriveID is the DriveID a cache-hit completion carries: the
// staging disk is not one of the library's transports.
const CacheDriveID = -1

// DiskModel prices the staging disk's hit path.
type DiskModel struct {
	// LatencySec is the fixed per-access overhead (seek plus request
	// handling); 0 selects 5 ms.
	LatencySec float64
	// BytesPerSec is the staging disk's streaming rate; 0 selects
	// 8 MB/s, a mid-90s RAID stripe to match the DLT4000 era.
	BytesPerSec float64
}

func (d DiskModel) withDefaults() DiskModel {
	if d.LatencySec == 0 {
		d.LatencySec = 0.005
	}
	if d.BytesPerSec == 0 {
		d.BytesPerSec = 8 << 20
	}
	return d
}

// Config describes the staging tier.
type Config struct {
	// CapacityBytes bounds the cache. 0 disables the tier entirely:
	// every request passes straight to the library, and the tier's
	// output is bit-identical to the bare library path.
	CapacityBytes int64
	// Policy names the eviction policy: "lru" (default), "clock" or
	// "cost" (see NewPolicy).
	Policy string
	// Disk prices the hit path.
	Disk DiskModel
	// Prefetch, on a miss's fetch return, also installs the objects
	// ahead of it on the same cartridge while successive extents start
	// within PrefetchThreshold segments of the run's end — the whole
	// coalesced segment run the library would have read in one motion.
	// Prefetch installs are opportunistic: they fill free capacity but
	// never evict demand-resident data.
	Prefetch bool
	// PrefetchThreshold is the coalescing gap in segments; 0 selects
	// core.DefaultCoalesceThreshold (the paper's T=1410).
	PrefetchThreshold int
	// WriteBack enables Write: staged writes complete at disk cost,
	// are marked dirty, and pay their modeled tape-write time when
	// evicted or at the end-of-run flush.
	WriteBack bool
}

// Enabled reports whether the tier caches at all.
func (c Config) Enabled() bool { return c.CapacityBytes > 0 }

// Metrics summarizes a tier run: the cache's own accounting plus the
// wrapped library's metrics. For a disabled tier only Lib is set.
type Metrics struct {
	// Hits and Misses partition the offered lookups; HitSojournSec
	// sums the hit completions' sojourn times (each latency + transfer)
	// and MaxHitSojourn is their maximum.
	Hits          int
	Misses        int
	HitSojournSec float64
	MaxHitSojourn float64
	// Installs counts demand installs (fetch returns admitted);
	// PrefetchInstalls the run-extension installs behind them.
	Installs         int
	PrefetchInstalls int
	// Evictions and BytesEvicted account capacity pressure;
	// BytesResident is the end-of-run residency.
	Evictions     int
	BytesEvicted  int64
	BytesResident int64
	// Writes counts staged writes; Writebacks the dirty entries
	// written back to tape (on eviction or final flush) and FlushSec
	// their summed modeled tape-write time.
	Writes     int
	Writebacks int
	FlushSec   float64
	// Makespan is the run's end: the later of the library's makespan
	// and the last hit completion.
	Makespan float64
	// Lib is the wrapped library run's own metrics. With a cache,
	// Lib.Served counts only misses; Served() adds the hits back.
	Lib tertiary.Metrics
}

// Served is the total requests completed: library-served misses plus
// cache hits.
func (m Metrics) Served() int { return m.Lib.Served + m.Hits }

// HitRate is hits over lookups, 0 when nothing was offered.
func (m Metrics) HitRate() float64 {
	if m.Hits+m.Misses == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Hits+m.Misses)
}

// install is one pending cache fill: a fetch completion whose data
// lands in the cache at its Done time.
type install struct {
	at  float64
	seq int64
	id  string
	obj tertiary.Object
}

// installHeap orders pending installs by (at, seq): arrival of the
// data, record order breaking ties — fully deterministic.
type installHeap []install

func (h installHeap) Len() int { return len(h) }
func (h installHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h installHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *installHeap) Push(x any)   { *h = append(*h, x.(install)) }

// Pop clears the vacated tail slot before shrinking: the backing
// array would otherwise pin the popped install's id string and object
// until overwritten — the same stale-tail retention class the
// admission queue's compaction once had.
func (h *installHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = install{}
	*h = old[:n-1]
	return x
}

// Tier is a staging cache wrapped around one library's incremental
// run loop, speaking the same Advance/Offer/Finish contract so both a
// standalone Run and the fleet's per-shard lockstep driving work
// unchanged. Like the Runner it wraps, a Tier belongs to one
// goroutine.
type Tier struct {
	runner *tertiary.Runner
	lib    *tertiary.Library
	cfg    Config
	disk   DiskModel
	thresh int

	cache    *Cache
	segBytes int64
	byID     map[string]tertiary.Object
	byTape   map[int64][]tertiary.Object // layout order per cartridge

	installs  installHeap
	harvested int
	seq       int64
	last      float64 // latest offered arrival
	lastDone  float64 // latest hit completion

	// Write-through accounting lives outside the cache (the object
	// never staged), summed into Metrics next to the cache's own;
	// cacheWB tracks how many of the cache's writebacks the registry
	// counter has already seen.
	wtWritebacks int
	wtFlushSec   float64
	cacheWB      int

	hits []tertiary.Completion
	m    Metrics

	// events and shard mirror the library config's wide-event wiring:
	// cache hits complete outside the library loop, so the tier emits
	// their wide events itself.
	events *obs.EventRing
	shard  int

	trace *obs.TraceHandle
	root  *obs.SpanHandle

	hitC, missC, installC, prefetchC, evictC, writebackC *obs.Counter
	residentG                                            *obs.Gauge
	hitHist                                              *obs.Histogram

	finished bool
}

// NewTier opens the library's run loop behind a staging cache. With
// CapacityBytes 0 the tier is a transparent pass-through: the library
// is opened as-is and no cache state, metric series or spans exist.
// With a cache, the tier inherits the library's registry, labels and
// span wiring (Library.Config), nesting a "cache" span above the
// library's run span when tracing is on.
func NewTier(lib *tertiary.Library, cfg Config) (*Tier, error) {
	if cfg.CapacityBytes < 0 {
		return nil, fmt.Errorf("hsm: cache capacity %d bytes", cfg.CapacityBytes)
	}
	t := &Tier{lib: lib, cfg: cfg}
	if !cfg.Enabled() {
		r, err := lib.StartRun()
		if err != nil {
			return nil, err
		}
		t.runner = r
		return t, nil
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	t.disk = cfg.Disk.withDefaults()
	if t.disk.LatencySec < 0 || t.disk.BytesPerSec <= 0 ||
		math.IsNaN(t.disk.LatencySec) || math.IsNaN(t.disk.BytesPerSec) {
		return nil, fmt.Errorf("hsm: disk model %+v", cfg.Disk)
	}
	t.thresh = cfg.PrefetchThreshold
	if t.thresh <= 0 {
		t.thresh = core.DefaultCoalesceThreshold
	}
	t.cache = NewCache(cfg.CapacityBytes, pol)

	lc := lib.Config()
	t.segBytes = lc.Profile.SegmentBytes
	t.events, t.shard = lc.Events, lc.Shard
	if lc.Spans != nil || lc.SpanTrace != nil {
		trace := lc.SpanTrace
		if trace == nil {
			trace = lc.Spans.StartTrace()
		}
		root := trace.Start("cache", lc.SpanParent, 0).
			Attr("policy", pol.Name()).
			AttrInt("capacity_mb", int(cfg.CapacityBytes>>20)).
			Lane(lc.Lane)
		lc.SpanTrace, lc.SpanParent = trace, root
		t.trace, t.root = trace, root
		lib = lib.Clone(lc)
		t.lib = lib
	}
	reg := lc.Reg
	if reg == nil {
		// A throwaway registry keeps the hit path branch-free when the
		// library run has no registry of its own.
		reg = obs.NewRegistry()
	}
	t.hitC = reg.Counter("cache_hits_total", lc.Labels...)
	t.missC = reg.Counter("cache_misses_total", lc.Labels...)
	t.installC = reg.Counter("cache_installs_total", lc.Labels...)
	t.prefetchC = reg.Counter("cache_prefetch_installs_total", lc.Labels...)
	t.evictC = reg.Counter("cache_evictions_total", lc.Labels...)
	t.writebackC = reg.Counter("cache_writebacks_total", lc.Labels...)
	t.residentG = reg.Gauge("cache_bytes_resident", lc.Labels...)
	t.hitHist = reg.Histogram("cache_hit_seconds", lc.Labels...)

	objs := lib.Objects()
	t.byID = make(map[string]tertiary.Object, len(objs))
	t.byTape = make(map[int64][]tertiary.Object)
	for _, o := range objs {
		t.byID[o.ID] = o
		t.byTape[o.Tape] = append(t.byTape[o.Tape], o)
	}

	r, err := lib.StartRun()
	if err != nil {
		return nil, err
	}
	t.runner = r
	return t, nil
}

// Runner exposes the wrapped library loop for probes (queue depth,
// mounted cartridges, headroom) — the routing tier reads them off the
// same runner the tier drives.
func (t *Tier) Runner() *tertiary.Runner { return t.runner }

// Cached reports residency as of the tier's last advance, without
// touching recency state — the router's hit/miss probe. Always false
// for a disabled tier.
func (t *Tier) Cached(id string) bool {
	return t.cache != nil && t.cache.Contains(id)
}

// objBytes is the extent's size under the library's profile.
func (t *Tier) objBytes(o tertiary.Object) int64 {
	segs := o.Segments
	if segs <= 0 {
		segs = 1
	}
	return int64(segs) * t.segBytes
}

// AdvanceTo advances the wrapped loop to t, then harvests fetch
// returns and applies every install due by then, so Cached answers as
// of ts.
func (t *Tier) AdvanceTo(ts float64) error {
	if err := t.runner.AdvanceTo(ts); err != nil {
		return err
	}
	if t.cache != nil {
		t.absorb(ts)
	}
	return nil
}

// absorb harvests the library's newly recorded completions into the
// install heap and applies the installs due by now. Completions are
// recorded at batch dispatch time with Done timestamps that may lie
// ahead; after AdvanceTo(now) every completion with Done <= now has
// been recorded, so the applied set is exact.
func (t *Tier) absorb(now float64) {
	done := t.runner.Completed()
	for _, c := range done[t.harvested:] {
		t.seq++
		heap.Push(&t.installs, install{at: c.Done, seq: t.seq, id: c.ObjectID, obj: c.Object})
	}
	t.harvested = len(done)
	for len(t.installs) > 0 && t.installs[0].at <= now {
		in := heap.Pop(&t.installs).(install)
		t.apply(in)
	}
}

// apply lands one fetched extent in the cache and, when configured,
// prefetches the rest of its coalesced run.
func (t *Tier) apply(in install) {
	cost := t.lib.RefetchSec(in.obj)
	if t.cache.Install(in.id, t.objBytes(in.obj), cost) {
		t.m.Installs++
		t.installC.Inc()
	}
	t.syncCacheCounters()
	if t.cfg.Prefetch {
		t.prefetch(in.obj)
	}
}

// prefetch extends the fetched extent into its coalesced segment run:
// walking the cartridge's layout order forward from the extent, every
// object whose start lies within the coalescing threshold of the
// run's end joins the run and is installed if free capacity holds it.
// This is the paper's coalescing analysis inverted — the segments the
// library would have merged into one motion are the segments worth
// keeping once the motion was paid for.
func (t *Tier) prefetch(o tertiary.Object) {
	objs := t.byTape[o.Tape]
	idx := sort.Search(len(objs), func(i int) bool {
		if objs[i].Start != o.Start {
			return objs[i].Start >= o.Start
		}
		return objs[i].ID >= o.ID
	})
	if idx >= len(objs) || objs[idx].ID != o.ID {
		return // a replica extent not in this catalog's layout
	}
	segs := o.Segments
	if segs <= 0 {
		segs = 1
	}
	runEnd := o.Start + segs
	for j := idx + 1; j < len(objs); j++ {
		next := objs[j]
		if next.Start-runEnd >= t.thresh {
			return
		}
		if t.cache.InstallIfRoom(next.ID, t.objBytes(next), t.lib.RefetchSec(next)) {
			t.m.PrefetchInstalls++
			t.prefetchC.Inc()
		}
		if end := next.Start + max(next.Segments, 1); end > runEnd {
			runEnd = end
		}
	}
}

// syncCacheCounters folds the cache's eviction/write-back counters
// into the tier metrics and the registry.
func (t *Tier) syncCacheCounters() {
	if d := t.cache.Evictions() - t.m.Evictions; d > 0 {
		t.m.Evictions += d
		t.evictC.Add(int64(d))
	}
	if d := t.cache.Writebacks() - t.cacheWB; d > 0 {
		t.cacheWB += d
		t.writebackC.Add(int64(d))
	}
	t.m.Writebacks = t.cacheWB + t.wtWritebacks
	t.m.BytesEvicted = t.cache.BytesEvicted()
	t.m.FlushSec = t.cache.FlushSec() + t.wtFlushSec
	t.m.BytesResident = t.cache.Resident()
	t.residentG.Set(float64(t.cache.Resident()))
}

// Offer routes one request: a resident object completes at disk cost,
// anything else falls through to the library's admission — so only
// misses consume the library's queue capacity. Offers must be
// nondecreasing in arrival time, like the Runner's.
func (t *Tier) Offer(req tertiary.Request) error {
	return t.OfferRouted(req, "")
}

// OfferRouted is Offer carrying the routing tier's decision for the
// request: pure annotation, stamped onto the request's wide event
// (by the tier for a hit, by the library for a miss) and nothing
// else.
func (t *Tier) OfferRouted(req tertiary.Request, route string) error {
	if t.cache == nil {
		return t.runner.OfferRouted(req, route)
	}
	if t.finished {
		return fmt.Errorf("hsm: offer after Finish")
	}
	if math.IsNaN(req.Arrival) || math.IsInf(req.Arrival, 0) {
		return fmt.Errorf("hsm: request arrives at %g", req.Arrival)
	}
	if req.Arrival < t.last {
		return fmt.Errorf("hsm: request offered at %g behind the clock (last offer %g)", req.Arrival, t.last)
	}
	t.last = req.Arrival
	t.absorb(req.Arrival)
	if t.cache.Touch(req.ObjectID) {
		t.hit(req, route)
		return nil
	}
	t.m.Misses++
	t.missC.Inc()
	return t.runner.OfferRouted(req, route)
}

// hit completes the request off the staging disk.
func (t *Tier) hit(req tertiary.Request, route string) {
	obj := t.byID[req.ObjectID]
	transfer := float64(t.objBytes(obj)) / t.disk.BytesPerSec
	svc := t.disk.LatencySec + transfer
	done := req.Arrival + svc
	t.hits = append(t.hits, tertiary.Completion{
		Request: req,
		Object:  obj,
		Done:    done,
		DriveID: CacheDriveID,
		Attribution: tertiary.Attribution{
			LocateSec:   t.disk.LatencySec,
			TransferSec: transfer,
		},
	})
	t.m.Hits++
	t.m.HitSojournSec += svc
	if svc > t.m.MaxHitSojourn {
		t.m.MaxHitSojourn = svc
	}
	if done > t.lastDone {
		t.lastDone = done
	}
	t.hitC.Inc()
	t.hitHist.Observe(svc)
	if t.events != nil {
		t.events.Add(obs.Event{
			Shard:       t.shard,
			Object:      req.ObjectID,
			Tape:        obj.Tape,
			Drive:       CacheDriveID,
			Class:       req.Class(),
			Outcome:     obs.OutcomeServed,
			Cache:       true,
			Route:       route,
			ArrivalSec:  req.Arrival,
			DoneSec:     done,
			LocateSec:   t.disk.LatencySec,
			TransferSec: transfer,
		})
	}
	if t.trace != nil {
		t.trace.Start("hit", t.root, req.Arrival).
			Attr("object", req.ObjectID).
			End(done)
	}
}

// Write stages a write-back write: the object lands in the cache
// dirty, completing at disk cost, and pays its modeled tape-write
// time when evicted or at the final flush. An object too large for
// the cache writes through (an immediate writeback). Requires an
// enabled cache with Config.WriteBack.
func (t *Tier) Write(id string, at float64) (float64, error) {
	if t.cache == nil || !t.cfg.WriteBack {
		return 0, fmt.Errorf("hsm: Write requires an enabled write-back cache")
	}
	if t.finished {
		return 0, fmt.Errorf("hsm: write after Finish")
	}
	obj, ok := t.byID[id]
	if !ok {
		return 0, fmt.Errorf("hsm: write of unknown object %q", id)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) || at < t.last {
		return 0, fmt.Errorf("hsm: write at %g behind the clock (last offer %g)", at, t.last)
	}
	t.last = at
	t.absorb(at)
	t.m.Writes++
	cost := t.lib.RefetchSec(obj)
	t.cache.Install(id, t.objBytes(obj), cost)
	if !t.cache.MarkDirty(id) {
		// Too large to stage: write through to tape immediately.
		t.wtWritebacks++
		t.wtFlushSec += cost
		t.writebackC.Inc()
	}
	t.syncCacheCounters()
	return at + t.disk.LatencySec + float64(t.objBytes(obj))/t.disk.BytesPerSec, nil
}

// Finish drains the wrapped loop, applies every remaining install,
// flushes dirty entries, and returns the merged completions — library
// fetches and cache hits together, stably sorted by completion time —
// with the tier metrics. For a disabled tier this is exactly the
// Runner's Finish.
func (t *Tier) Finish() ([]tertiary.Completion, Metrics, error) {
	if t.cache == nil {
		comps, lm, err := t.runner.Finish()
		return comps, Metrics{Lib: lm, Makespan: lm.Makespan}, err
	}
	if t.finished {
		return nil, Metrics{}, fmt.Errorf("hsm: double Finish")
	}
	t.finished = true
	// Drain the loop before Finish sorts the completion record: the
	// harvest index is only valid against record order.
	if err := t.runner.AdvanceTo(math.Inf(1)); err != nil {
		return nil, Metrics{}, err
	}
	t.absorb(math.Inf(1))
	comps, lm, err := t.runner.Finish()
	if err != nil {
		return nil, Metrics{}, err
	}
	if t.cfg.WriteBack {
		t.cache.FlushDirty()
	}
	t.syncCacheCounters()
	t.m.Lib = lm
	t.m.Makespan = lm.Makespan
	if t.lastDone > t.m.Makespan {
		t.m.Makespan = t.lastDone
	}
	all := make([]tertiary.Completion, 0, len(t.hits)+len(comps))
	all = append(all, t.hits...)
	all = append(all, comps...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Done < all[j].Done })
	if t.root != nil {
		t.root.AttrInt("hits", t.m.Hits).
			AttrInt("misses", t.m.Misses).
			AttrInt("evictions", t.m.Evictions).
			End(t.m.Makespan)
	}
	return all, t.m, nil
}

// Run serves a whole stream through the tier, the way Library.Run
// serves one without it: requests are stably sorted by arrival, the
// loop advances to each instant, every request at that instant is
// offered, and Finish folds up the run.
func (t *Tier) Run(stream []tertiary.Request) ([]tertiary.Completion, Metrics, error) {
	reqs := append([]tertiary.Request(nil), stream...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	for i := 0; i < len(reqs); {
		at := reqs[i].Arrival
		if err := t.AdvanceTo(at); err != nil {
			return nil, Metrics{}, err
		}
		for ; i < len(reqs) && reqs[i].Arrival == at; i++ {
			if err := t.Offer(reqs[i]); err != nil {
				return nil, Metrics{}, err
			}
		}
	}
	return t.Finish()
}
