package hsm

import (
	"container/heap"
	"math"
	"testing"

	"serpentine/internal/obs"
	"serpentine/internal/tertiary"
)

// TestInstallHeapPopClearsTail pins the stale-tail retention fix:
// popping an install must zero the vacated backing slot so the heap
// never pins popped id strings.
func TestInstallHeapPopClearsTail(t *testing.T) {
	h := &installHeap{}
	for i, id := range []string{"a", "b", "c", "d"} {
		heap.Push(h, install{at: float64(i), seq: int64(i), id: id})
	}
	for range 4 {
		heap.Pop(h)
		tail := (*h)[len(*h):cap(*h)]
		for j, s := range tail {
			if s.id != "" {
				t.Fatalf("vacated slot %d still pins install %q", j, s.id)
			}
		}
	}
}

// TestTierHitEvents checks the cache-hit emission path: a hit emits a
// served wide event at disk cost with the cache pseudo-drive, the
// configured shard and the offered route, and its attribution
// telescopes (locate = disk latency, transfer = disk read, no queue).
func TestTierHitEvents(t *testing.T) {
	base := testStore(t)
	ring := obs.NewEventRing(16)
	tier, err := NewTier(cloneFor(base, tertiary.Config{
		Drives: 1, Events: ring, Shard: 2,
	}), Config{CapacityBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	stream := []tertiary.Request{
		{ObjectID: "t0/o1", Arrival: 0},
		{ObjectID: "t0/o1", Arrival: 50000},
	}
	if err := tier.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	if err := tier.OfferRouted(stream[0], "routed"); err != nil {
		t.Fatal(err)
	}
	if err := tier.AdvanceTo(50000); err != nil {
		t.Fatal(err)
	}
	if err := tier.OfferRouted(stream[1], "affinity"); err != nil {
		t.Fatal(err)
	}
	if _, m, err := tier.Finish(); err != nil {
		t.Fatal(err)
	} else if m.Hits != 1 || m.Misses != 1 {
		t.Fatalf("hits/misses %d/%d, want 1/1", m.Hits, m.Misses)
	}
	events := ring.Events()
	if len(events) != 2 {
		t.Fatalf("%d events for 2 requests", len(events))
	}
	var hit *obs.Event
	for i := range events {
		if events[i].Cache {
			hit = &events[i]
		}
	}
	if hit == nil {
		t.Fatal("no cache-hit event emitted")
	}
	if hit.Outcome != obs.OutcomeServed || hit.Drive != CacheDriveID || hit.Shard != 2 {
		t.Fatalf("hit event outcome %q drive %d shard %d, want served/%d/2",
			hit.Outcome, hit.Drive, hit.Shard, CacheDriveID)
	}
	if hit.Route != "affinity" {
		t.Fatalf("hit event route %q, want the offered route", hit.Route)
	}
	if hit.QueueSec != 0 || hit.MountSec != 0 || hit.RobotSec != 0 {
		t.Fatalf("hit event pays tape-path time: %+v", hit)
	}
	if got, want := hit.SojournSec(), hit.AttributionSum(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("hit attribution %g != sojourn %g", want, got)
	}
	if hit.SojournSec() <= 0 {
		t.Fatal("hit completed instantaneously — disk model not priced in")
	}
}
