package hsm

import "sort"

// Cache is the bounded-bytes staging store: a map of resident object
// extents with one eviction policy deciding who pays when capacity
// runs out. It is pure bookkeeping — no clocks, no I/O — so the tier
// above can price hits and evictions however its transfer model says.
// Like the rest of the serving layer it belongs to one goroutine.
type Cache struct {
	capacity int64
	resident int64
	entries  map[string]*Entry
	policy   Policy
	seq      int64

	evictions    int
	bytesEvicted int64
	writebacks   int
	flushSec     float64
}

// NewCache returns an empty cache of the given byte capacity;
// capacity must be positive (a size-0 cache is "no cache" — the tier
// never constructs one).
func NewCache(capacityBytes int64, policy Policy) *Cache {
	return &Cache{
		capacity: capacityBytes,
		entries:  make(map[string]*Entry),
		policy:   policy,
	}
}

// Resident returns the bytes currently cached.
func (c *Cache) Resident() int64 { return c.resident }

// Len returns the resident entry count.
func (c *Cache) Len() int { return len(c.entries) }

// Capacity returns the byte bound.
func (c *Cache) Capacity() int64 { return c.capacity }

// Contains reports residency without touching recency state — the
// routing tier's probe.
func (c *Cache) Contains(id string) bool {
	_, ok := c.entries[id]
	return ok
}

// Touch records a hit: returns whether the entry is resident, and if
// so refreshes the policy's recency state.
func (c *Cache) Touch(id string) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.policy.Touch(e)
	return true
}

// Install admits the object, evicting per policy until it fits. An
// already-resident object is touched instead (the install refreshes
// it). Objects larger than the whole cache are not admitted. Returns
// whether a new entry was installed.
func (c *Cache) Install(id string, bytes int64, cost float64) bool {
	if c.Touch(id) {
		return false
	}
	if bytes > c.capacity {
		return false
	}
	for c.resident+bytes > c.capacity {
		c.evictOne()
	}
	c.add(id, bytes, cost)
	return true
}

// InstallIfRoom admits the object only when free capacity already
// holds it — the prefetch path: opportunistic installs never evict
// demand-resident data. Returns whether a new entry was installed.
func (c *Cache) InstallIfRoom(id string, bytes int64, cost float64) bool {
	if c.Contains(id) || c.resident+bytes > c.capacity {
		return false
	}
	c.add(id, bytes, cost)
	return true
}

func (c *Cache) add(id string, bytes int64, cost float64) {
	c.seq++
	e := &Entry{ID: id, Bytes: bytes, Cost: cost, Seq: c.seq}
	c.entries[id] = e
	c.resident += bytes
	c.policy.Install(e)
}

// MarkDirty flags a resident entry as write-back data; evicting it —
// or flushing at end of run — will cost a writeback of the entry's
// modeled tape-write time (its Cost). Returns whether the entry was
// resident.
func (c *Cache) MarkDirty(id string) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	e.Dirty = true
	return true
}

// evictOne removes the policy's victim, charging a writeback first
// when it is dirty.
func (c *Cache) evictOne() {
	e := c.policy.Victim()
	if e.Dirty {
		c.writebacks++
		c.flushSec += e.Cost
	}
	c.policy.Remove(e)
	delete(c.entries, e.ID)
	c.resident -= e.Bytes
	c.evictions++
	c.bytesEvicted += e.Bytes
}

// FlushDirty writes every dirty resident entry back — the end-of-run
// flush — returning the number flushed. Entries stay resident, now
// clean. Dirty entries flush in install order so the float summation
// of their modeled write costs is deterministic.
func (c *Cache) FlushDirty() int {
	var dirty []*Entry
	for _, e := range c.entries {
		if e.Dirty {
			dirty = append(dirty, e)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].Seq < dirty[j].Seq })
	for _, e := range dirty {
		e.Dirty = false
		c.flushSec += e.Cost
	}
	c.writebacks += len(dirty)
	return len(dirty)
}

// Evictions, BytesEvicted, Writebacks and FlushSec report the cache's
// lifetime eviction and write-back accounting.
func (c *Cache) Evictions() int      { return c.evictions }
func (c *Cache) BytesEvicted() int64 { return c.bytesEvicted }
func (c *Cache) Writebacks() int     { return c.writebacks }
func (c *Cache) FlushSec() float64   { return c.flushSec }
