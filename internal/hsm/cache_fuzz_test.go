package hsm

import (
	"fmt"
	"testing"
)

// FuzzCacheEviction drives a cache under every eviction policy with an
// arbitrary op sequence and checks the structural invariants that hold
// whatever the policy chooses: residency never exceeds capacity, the
// byte ledger matches the entries actually resident, installs and
// evictions balance, and hit+miss partitions the lookups. Each byte is
// one op over a 16-object universe: op%4 selects install / touch /
// install-if-room / mark-dirty, op/4 selects the object.
func FuzzCacheEviction(f *testing.F) {
	f.Add(uint16(64), []byte{0, 4, 8, 12, 1, 5, 0, 16, 20, 24, 28, 32, 2, 3})
	f.Add(uint16(1), []byte{0, 0, 4, 8})
	f.Add(uint16(300), []byte{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 1, 2, 3})
	f.Fuzz(func(t *testing.T, capacity uint16, ops []byte) {
		if capacity == 0 {
			capacity = 1
		}
		for _, name := range []string{"lru", "clock", "cost"} {
			pol, err := NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			c := NewCache(int64(capacity), pol)
			installed := 0
			lookups, hits := 0, 0
			for _, op := range ops {
				obj := int(op) / 4 % 16
				id := fmt.Sprintf("o%d", obj)
				// Sizes and costs vary by object but are stable across
				// ops, as a real extent's are.
				bytes := int64(obj%7 + 1)
				cost := float64(obj%5) + 0.5
				switch op % 4 {
				case 0:
					if c.Install(id, bytes, cost) {
						installed++
					}
				case 1:
					lookups++
					if c.Touch(id) {
						hits++
					}
				case 2:
					if c.InstallIfRoom(id, bytes, cost) {
						installed++
					}
				case 3:
					c.MarkDirty(id)
				}
				if c.Resident() > c.Capacity() {
					t.Fatalf("%s: resident %d bytes exceeds capacity %d", name, c.Resident(), c.Capacity())
				}
				if c.Resident() < 0 {
					t.Fatalf("%s: resident %d bytes negative", name, c.Resident())
				}
				var sum int64
				for i := 0; i < 16; i++ {
					if c.Contains(fmt.Sprintf("o%d", i)) {
						sum += int64(i%7 + 1)
					}
				}
				if sum != c.Resident() {
					t.Fatalf("%s: resident ledger %d != entry sum %d", name, c.Resident(), sum)
				}
			}
			if installed != c.Len()+c.Evictions() {
				t.Fatalf("%s: %d installs != %d resident + %d evicted", name, installed, c.Len(), c.Evictions())
			}
			if misses := lookups - hits; hits < 0 || misses < 0 || hits+misses != lookups {
				t.Fatalf("%s: hits %d + misses %d != lookups %d", name, hits, misses, lookups)
			}
			flushed := c.FlushDirty()
			if c.Writebacks() < flushed {
				t.Fatalf("%s: %d writebacks < %d flushed", name, c.Writebacks(), flushed)
			}
			if c.FlushDirty() != 0 {
				t.Fatalf("%s: second flush found dirty entries", name)
			}
		}
	})
}
