package hsm

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"serpentine/internal/geometry"
	"serpentine/internal/obs"
	"serpentine/internal/tertiary"
)

// testStore builds the library sweeps' synthetic store: 4 cartridges,
// 128 objects each, 16-segment extents.
func testStore(t *testing.T) *tertiary.Library {
	t.Helper()
	base, err := tertiary.SweepStore(geometry.DLT4000(), 4, 128, 16, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func cloneFor(base *tertiary.Library, cfg tertiary.Config) *tertiary.Library {
	cfg.Profile = geometry.DLT4000()
	cfg.Tapes = base.Tapes()
	return base.Clone(cfg)
}

// TestZeroCacheTierEquivalence is the spine: a size-0 tier must be a
// bit-identical pass-through — same completions, same metrics, same
// metric dump, same spans as the bare library over the same stream.
func TestZeroCacheTierEquivalence(t *testing.T) {
	base := testStore(t)
	stream, err := tertiary.SweepStream(120, 200, 42, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	configs := []tertiary.Config{
		{Drives: 1, BatchLimit: 1},
		{Drives: 2, BatchLimit: 8, QueueCap: 8, WindowSec: 600},
	}
	for _, cfg := range configs {
		regA, regB := obs.NewRegistry(), obs.NewRegistry()
		trA, trB := obs.NewTracer(1<<14), obs.NewTracer(1<<14)
		bare := cfg
		bare.Reg, bare.Spans = regA, trA
		wrapped := cfg
		wrapped.Reg, wrapped.Spans = regB, trB

		wantComps, wantM, err := cloneFor(base, bare).Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		tier, err := NewTier(cloneFor(base, wrapped), Config{})
		if err != nil {
			t.Fatal(err)
		}
		gotComps, gotM, err := tier.Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotComps, wantComps) {
			t.Fatalf("drives=%d: size-0 tier completions differ from bare library", cfg.Drives)
		}
		if want := (Metrics{Lib: wantM, Makespan: wantM.Makespan}); gotM != want {
			t.Fatalf("drives=%d: size-0 tier metrics = %+v, want %+v", cfg.Drives, gotM, want)
		}
		var dumpA, dumpB bytes.Buffer
		if err := regA.WriteProm(&dumpA); err != nil {
			t.Fatal(err)
		}
		if err := regB.WriteProm(&dumpB); err != nil {
			t.Fatal(err)
		}
		if dumpA.String() != dumpB.String() {
			t.Fatalf("drives=%d: size-0 tier metric dump differs from bare library", cfg.Drives)
		}
		if !reflect.DeepEqual(trA.Spans(), trB.Spans()) {
			t.Fatalf("drives=%d: size-0 tier spans differ from bare library", cfg.Drives)
		}
	}
}

// TestZeroCacheSweepEquivalence pins the sweep-level spine: hsm.Sweep
// at cache size 0 reproduces tertiary.Sweep's cells — metrics, spans,
// completions and merged registry dump — when the inner axes collapse
// to single elements.
func TestZeroCacheSweepEquivalence(t *testing.T) {
	rates := []float64{60, 120}
	regH, regT := obs.NewRegistry(), obs.NewRegistry()
	hsmCells, err := Sweep(SweepConfig{
		TapeCount: 4, Objects: 128, ObjectSegments: 16,
		RatesPerHour: rates,
		CacheBytes:   []int64{0},
		Drives:       2, BatchLimit: 16,
		Requests: 120, Seed: 3, Workers: 2,
		Reg: regH, SpanCap: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	tertCells, err := tertiary.Sweep(tertiary.SweepConfig{
		TapeCount: 4, Objects: 128, ObjectSegments: 16,
		RatesPerHour: rates,
		DriveCounts:  []int{2},
		BatchLimits:  []int{16},
		Requests:     120, Seed: 3, Workers: 2,
		Reg: regT, SpanCap: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hsmCells) != len(tertCells) {
		t.Fatalf("cell counts differ: hsm %d, tertiary %d", len(hsmCells), len(tertCells))
	}
	for i := range hsmCells {
		h, lib := hsmCells[i], tertCells[i]
		if h.Policy != "off" || h.CacheBytes != 0 {
			t.Fatalf("cell %d: not a baseline cell: %+v", i, h)
		}
		if h.Metrics.Lib != lib.Metrics {
			t.Errorf("cell %d: library metrics differ:\nhsm  %+v\ntert %+v", i, h.Metrics.Lib, lib.Metrics)
		}
		if !reflect.DeepEqual(h.Completions, lib.Completions) {
			t.Errorf("cell %d: completions differ", i)
		}
		if !reflect.DeepEqual(h.Spans, lib.Spans) {
			t.Errorf("cell %d: spans differ", i)
		}
	}
	var dumpH, dumpT bytes.Buffer
	if err := regH.WriteProm(&dumpH); err != nil {
		t.Fatal(err)
	}
	if err := regT.WriteProm(&dumpT); err != nil {
		t.Fatal(err)
	}
	if dumpH.String() != dumpT.String() {
		t.Error("merged registry dumps differ between hsm.Sweep(size 0) and tertiary.Sweep")
	}
}

// TestTierHitPath re-requests a fetched object long after its fetch
// completed: the second access must be a cache hit at disk cost, with
// a CacheDriveID completion whose attribution telescopes to its
// sojourn.
func TestTierHitPath(t *testing.T) {
	base := testStore(t)
	lib := cloneFor(base, tertiary.Config{Drives: 1, BatchLimit: 4})
	tier, err := NewTier(lib, Config{CapacityBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	stream := []tertiary.Request{
		{ObjectID: "t0/o5", Arrival: 0},
		{ObjectID: "t0/o5", Arrival: 20000},
	}
	comps, m, err := tier.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hits != 1 || m.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", m.Hits, m.Misses)
	}
	if m.Served() != 2 || m.Lib.Served != 1 {
		t.Fatalf("served=%d (lib %d), want 2 (lib 1)", m.Served(), m.Lib.Served)
	}
	if len(comps) != 2 {
		t.Fatalf("%d completions, want 2", len(comps))
	}
	hit := comps[len(comps)-1]
	if hit.DriveID != CacheDriveID {
		t.Fatalf("hit completion DriveID = %d, want %d", hit.DriveID, CacheDriveID)
	}
	// 16 segments × 32 KiB at 8 MiB/s + 5 ms seek. The sojourn is
	// recovered by subtracting a ~2e4 arrival, so compare at the
	// telescoping tolerance, not exactly.
	wantSvc := 0.005 + float64(16*32768)/float64(8<<20)
	if got := hit.Done - hit.Request.Arrival; math.Abs(got-wantSvc) > 1e-9 {
		t.Errorf("hit sojourn = %g, want %g", got, wantSvc)
	}
	if sum := hit.Attribution.LocateSec + hit.Attribution.TransferSec; math.Abs(sum-(hit.Done-hit.Request.Arrival)) > 1e-9 {
		t.Errorf("hit attribution %g does not telescope to sojourn %g", sum, hit.Done-hit.Request.Arrival)
	}
	if m.HitSojournSec != m.MaxHitSojourn || math.Abs(m.HitSojournSec-wantSvc) > 1e-12 {
		t.Errorf("hit sojourn accounting: sum %g max %g, want %g", m.HitSojournSec, m.MaxHitSojourn, wantSvc)
	}
	if m.Makespan < m.Lib.Makespan {
		t.Errorf("makespan %g below library makespan %g", m.Makespan, m.Lib.Makespan)
	}
}

// TestTierHitsBypassQueueCap pins the wiring point: resident objects
// complete without touching the library's admission, so a queue sized
// for one request still serves a burst of hits without rejecting.
func TestTierHitsBypassQueueCap(t *testing.T) {
	base := testStore(t)
	stream := []tertiary.Request{
		{ObjectID: "t0/o0", Arrival: 0},
		{ObjectID: "t0/o0", Arrival: 20000},
		{ObjectID: "t0/o0", Arrival: 20000},
		{ObjectID: "t0/o0", Arrival: 20000},
		{ObjectID: "t1/o9", Arrival: 20000},
	}
	tier, err := NewTier(cloneFor(base, tertiary.Config{Drives: 1, QueueCap: 1}), Config{CapacityBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := tier.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hits != 3 {
		t.Fatalf("hits=%d, want 3", m.Hits)
	}
	if m.Lib.Rejected != 0 {
		t.Fatalf("cache-backed run rejected %d requests at QueueCap 1", m.Lib.Rejected)
	}
	if m.Served() != 5 {
		t.Fatalf("served=%d, want 5", m.Served())
	}

	// The bare library under the same stream overflows the
	// one-request queue — the capacity the hits did not consume.
	_, bm, err := cloneFor(base, tertiary.Config{Drives: 1, QueueCap: 1}).Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Rejected == 0 {
		t.Fatal("bare library rejected nothing: the stream does not pressure QueueCap 1")
	}
}

// TestTierPrefetch pins the coalesced-run prefetch: one miss on a
// cartridge pulls the objects ahead of it within the threshold into
// free capacity, forward only, never evicting.
func TestTierPrefetch(t *testing.T) {
	base := testStore(t)
	// This store's catalog stride is ~5.1k segments — wider than the
	// default T=1410 — so the test raises the threshold to make every
	// consecutive pair one run.
	tier, err := NewTier(cloneFor(base, tertiary.Config{Drives: 1}), Config{
		CapacityBytes:     1 << 30,
		Prefetch:          true,
		PrefetchThreshold: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := tier.Run([]tertiary.Request{{ObjectID: "t0/o100", Arrival: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Installs != 1 {
		t.Fatalf("demand installs=%d, want 1", m.Installs)
	}
	if m.PrefetchInstalls == 0 {
		t.Fatal("no prefetch installs despite free capacity and a coalesced run ahead")
	}
	if !tier.Cached("t0/o100") || !tier.Cached("t0/o101") {
		t.Error("fetched extent or its successor not resident after prefetch")
	}
	if tier.Cached("t0/o99") {
		t.Error("prefetch ran backwards: t0/o99 resident")
	}
	if tier.Cached("t1/o100") {
		t.Error("prefetch crossed cartridges: t1/o100 resident")
	}
	if m.Evictions != 0 {
		t.Errorf("prefetch evicted %d entries", m.Evictions)
	}

	// Under a tight capacity prefetch fills the room it finds and
	// stops: still no evictions.
	tight, err := NewTier(cloneFor(base, tertiary.Config{Drives: 1}), Config{
		CapacityBytes:     3 * 16 * 32768, // three extents
		Prefetch:          true,
		PrefetchThreshold: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, tm, err := tight.Run([]tertiary.Request{{ObjectID: "t0/o100", Arrival: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if tm.PrefetchInstalls != 2 {
		t.Errorf("tight prefetch installs=%d, want 2 (capacity minus the demand extent)", tm.PrefetchInstalls)
	}
	if tm.Evictions != 0 {
		t.Errorf("tight prefetch evicted %d entries", tm.Evictions)
	}
}

// TestTierWriteBack pins the write path: staged writes complete at
// disk cost, dirty data pays its modeled tape-write time exactly once
// (at eviction or final flush), and an oversized write writes through.
func TestTierWriteBack(t *testing.T) {
	base := testStore(t)
	tier, err := NewTier(cloneFor(base, tertiary.Config{Drives: 1}), Config{
		CapacityBytes: 64 << 20,
		WriteBack:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := tier.Write("t0/o1", 10)
	if err != nil {
		t.Fatal(err)
	}
	wantDone := 10 + 0.005 + float64(16*32768)/float64(8<<20)
	if math.Abs(done-wantDone) > 1e-12 {
		t.Errorf("write completed at %g, want %g", done, wantDone)
	}
	if !tier.Cached("t0/o1") {
		t.Fatal("written object not resident")
	}
	_, m, err := tier.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if m.Writes != 1 || m.Writebacks != 1 {
		t.Fatalf("writes=%d writebacks=%d, want 1/1 (final flush)", m.Writes, m.Writebacks)
	}
	if m.FlushSec <= 0 {
		t.Errorf("flush accounted %g seconds of tape writing", m.FlushSec)
	}

	// An object larger than the whole cache cannot stage: it writes
	// through immediately.
	small, err := NewTier(cloneFor(base, tertiary.Config{Drives: 1}), Config{
		CapacityBytes: 16 * 32768 / 2,
		WriteBack:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Write("t0/o1", 0); err != nil {
		t.Fatal(err)
	}
	if small.Cached("t0/o1") {
		t.Error("oversized write staged instead of writing through")
	}
	_, sm, err := small.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if sm.Writebacks != 1 || sm.FlushSec <= 0 {
		t.Errorf("write-through accounting: writebacks=%d flushSec=%g", sm.Writebacks, sm.FlushSec)
	}

	// Write requires the write-back config.
	ro, err := NewTier(cloneFor(base, tertiary.Config{Drives: 1}), Config{CapacityBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Write("t0/o1", 0); err == nil {
		t.Error("Write accepted on a read-only tier")
	}
}

// TestSweepWorkerDeterminism pins the cache sweep's parallel phase:
// cells and the merged registry dump are identical at 1 and 8 workers.
func TestSweepWorkerDeterminism(t *testing.T) {
	run := func(workers int) ([]Cell, string) {
		reg := obs.NewRegistry()
		cells, err := Sweep(SweepConfig{
			TapeCount: 4, Objects: 128, ObjectSegments: 16,
			RatesPerHour: []float64{60, 240},
			CacheBytes:   []int64{0, 8 << 20, 64 << 20},
			Policies:     []string{"lru", "clock", "cost"},
			Prefetch:     true,
			Requests:     100, Seed: 7, Workers: workers,
			Reg: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		var dump bytes.Buffer
		if err := reg.WriteProm(&dump); err != nil {
			t.Fatal(err)
		}
		return cells, dump.String()
	}
	cells1, dump1 := run(1)
	cells8, dump8 := run(8)
	if !reflect.DeepEqual(cells1, cells8) {
		t.Error("sweep cells differ between 1 and 8 workers")
	}
	if dump1 != dump8 {
		t.Error("merged registry dump differs between 1 and 8 workers")
	}
	// 2 rates × (1 baseline + 2 sizes × 3 policies) = 14 cells.
	if len(cells1) != 14 {
		t.Fatalf("%d cells, want 14", len(cells1))
	}
	var anyHit bool
	for _, c := range cells1 {
		if c.CacheBytes > 0 && c.Metrics.Hits > 0 {
			anyHit = true
		}
	}
	if !anyHit {
		t.Error("no cached cell recorded a single hit — the experiment exercises nothing")
	}
}
