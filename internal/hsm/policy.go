package hsm

import (
	"container/list"
	"fmt"
)

// Entry is one cached object as the eviction policies see it. The
// cache owns the entry; policies read the fields and keep their own
// bookkeeping keyed by ID.
type Entry struct {
	// ID names the cached object (the catalog object ID).
	ID string
	// Bytes is the entry's resident size.
	Bytes int64
	// Cost is the modeled re-fetch cost in virtual seconds — the
	// library twin's locate+transfer price for reading the object off
	// tape again (tertiary.Library.RefetchSec). The cost-aware policy
	// evicts the cheapest-to-refetch entry first.
	Cost float64
	// Seq is the entry's install sequence number, the deterministic
	// tie-break every policy falls back to.
	Seq int64
	// Dirty marks write-back data not yet flushed to tape; evicting a
	// dirty entry costs a writeback.
	Dirty bool
}

// Policy decides which resident entry an over-capacity cache evicts
// next. Implementations are stateful (they track recency or scan
// position), belong to one cache, and must be fully deterministic: a
// victim is a pure function of the install/touch/remove history, never
// of map iteration order or wall time.
type Policy interface {
	// Name labels the policy in tables and metric labels.
	Name() string
	// Install records a newly admitted entry.
	Install(e *Entry)
	// Touch records a hit on a resident entry.
	Touch(e *Entry)
	// Victim returns the entry to evict next. The cache guarantees at
	// least one entry is resident.
	Victim() *Entry
	// Remove records that the entry left the cache.
	Remove(e *Entry)
}

// NewPolicy resolves a policy name: "lru" (and "", the default),
// "clock", or "cost".
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", "lru":
		return newLRU(), nil
	case "clock":
		return newClock(), nil
	case "cost":
		return newCostAware(), nil
	}
	return nil, fmt.Errorf("hsm: unknown eviction policy %q", name)
}

// lru evicts the least recently used entry: a doubly-linked recency
// list with the most recent entry at the front.
type lru struct {
	order *list.List // of *Entry, front = most recent
	nodes map[string]*list.Element
}

func newLRU() *lru {
	return &lru{order: list.New(), nodes: make(map[string]*list.Element)}
}

func (p *lru) Name() string { return "lru" }

func (p *lru) Install(e *Entry) { p.nodes[e.ID] = p.order.PushFront(e) }

func (p *lru) Touch(e *Entry) { p.order.MoveToFront(p.nodes[e.ID]) }

func (p *lru) Victim() *Entry { return p.order.Back().Value.(*Entry) }

func (p *lru) Remove(e *Entry) {
	p.order.Remove(p.nodes[e.ID])
	delete(p.nodes, e.ID)
}

// clockNode is one page frame on the clock's circular list.
type clockNode struct {
	e          *Entry
	ref        bool
	next, prev *clockNode
}

// clock is the classic second-chance ring: entries sit on a circle, a
// hand sweeps it clearing reference bits, and the first entry found
// with its bit already clear is the victim. A touched entry survives
// one extra sweep — the "second chance".
type clock struct {
	hand  *clockNode
	nodes map[string]*clockNode
}

func newClock() *clock { return &clock{nodes: make(map[string]*clockNode)} }

func (p *clock) Name() string { return "clock" }

// Install places the entry immediately behind the hand — the last
// frame the current sweep will examine — with its bit clear.
func (p *clock) Install(e *Entry) {
	n := &clockNode{e: e}
	if p.hand == nil {
		n.next, n.prev = n, n
		p.hand = n
	} else {
		prev := p.hand.prev
		prev.next, n.prev = n, prev
		n.next, p.hand.prev = p.hand, n
	}
	p.nodes[e.ID] = n
}

func (p *clock) Touch(e *Entry) { p.nodes[e.ID].ref = true }

func (p *clock) Victim() *Entry {
	for p.hand.ref {
		p.hand.ref = false
		p.hand = p.hand.next
	}
	return p.hand.e
}

func (p *clock) Remove(e *Entry) {
	n := p.nodes[e.ID]
	delete(p.nodes, e.ID)
	if n.next == n {
		p.hand = nil
		return
	}
	if p.hand == n {
		p.hand = n.next
	}
	n.prev.next, n.next.prev = n.next, n.prev
}

// costAware evicts the entry that is cheapest to fetch back from tape
// (smallest Entry.Cost, install order breaking exact ties): the cache
// keeps the objects whose loss would cost the most re-fetch seconds.
// Victim selection is a linear scan over an install-ordered list —
// caches hold at most a few thousand extents, and determinism beats
// heap bookkeeping here.
type costAware struct {
	order *list.List // of *Entry, install order
	nodes map[string]*list.Element
}

func newCostAware() *costAware {
	return &costAware{order: list.New(), nodes: make(map[string]*list.Element)}
}

func (p *costAware) Name() string { return "cost" }

func (p *costAware) Install(e *Entry) { p.nodes[e.ID] = p.order.PushBack(e) }

func (p *costAware) Touch(*Entry) {}

func (p *costAware) Victim() *Entry {
	var best *Entry
	for el := p.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		if best == nil || e.Cost < best.Cost || (e.Cost == best.Cost && e.Seq < best.Seq) {
			best = e
		}
	}
	return best
}

func (p *costAware) Remove(e *Entry) {
	p.order.Remove(p.nodes[e.ID])
	delete(p.nodes, e.ID)
}
