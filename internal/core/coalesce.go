package core

import (
	"sort"

	"serpentine/internal/geometry"
)

// DefaultCoalesceThreshold is the paper's recommended coalescing
// distance: 1410 segments, the size of two sections on the DLT4000.
// "Experiments show that 1410 is a good choice for T, and that the
// quality of the schedule is not highly sensitive to T."
const DefaultCoalesceThreshold = 1410

// A group is a run of requested segments that a scheduler treats as
// one representative city: the drive locates to the first segment and
// then consumes the rest by reading (mostly) forward. The internal
// traversal cost of a group is incurred exactly once no matter where
// the group lands in the schedule, so ordering decisions only need
// the group's entry point (first segment) and exit point (after the
// last segment).
type group struct {
	segs []int // ascending
}

func (g group) first() int { return g.segs[0] }
func (g group) last() int  { return g.segs[len(g.segs)-1] }

// coalesceByThreshold implements the paper's coalescing rule: sort
// the requested segments; the first segment starts the first group;
// each subsequent segment joins the current group when its distance
// from the previous segment is below threshold, otherwise it starts a
// new group. Groups are returned in ascending order of first segment.
//
// The paper's rule also refuses to coalesce the initial head position
// I into a group; callers here keep the start position out of the
// request list entirely, which has the same effect.
func coalesceByThreshold(requests []int, threshold int) []group {
	if len(requests) == 0 {
		return nil
	}
	s := sortedCopy(requests)
	groups := []group{{segs: []int{s[0]}}}
	for _, seg := range s[1:] {
		cur := &groups[len(groups)-1]
		if seg-cur.last() < threshold {
			cur.segs = append(cur.segs, seg)
		} else {
			groups = append(groups, group{segs: []int{seg}})
		}
	}
	return groups
}

// coalesceBySection buckets requests into one group per non-empty
// (track, logical section) cell, each sorted ascending. This is the
// milder grouping SLTF's complexity argument relies on: within one
// section, reading ahead in segment order is always the nearest move,
// so a section's requests are always consumed together.
func coalesceBySection(view *geometry.View, requests []int) []group {
	buckets := make(map[int][]int)
	for _, r := range requests {
		idx := view.SectionIndex(r)
		buckets[idx] = append(buckets[idx], r)
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	groups := make([]group, 0, len(keys))
	for _, k := range keys {
		segs := buckets[k]
		sort.Ints(segs)
		groups = append(groups, group{segs: segs})
	}
	return groups
}

// expandGroups flattens an ordering of groups back into a segment
// schedule.
func expandGroups(order []group, n int) []int {
	out := make([]int, 0, n)
	for _, g := range order {
		out = append(out, g.segs...)
	}
	return out
}
