package core

import (
	"serpentine/internal/geometry"
)

// DefaultCoalesceThreshold is the paper's recommended coalescing
// distance: 1410 segments, the size of two sections on the DLT4000.
// "Experiments show that 1410 is a good choice for T, and that the
// quality of the schedule is not highly sensitive to T."
const DefaultCoalesceThreshold = 1410

// A group is a run of requested segments that a scheduler treats as
// one representative city: the drive locates to the first segment and
// then consumes the rest by reading (mostly) forward. The internal
// traversal cost of a group is incurred exactly once no matter where
// the group lands in the schedule, so ordering decisions only need
// the group's entry point (first segment) and exit point (after the
// last segment).
type group struct {
	segs []int // ascending
}

func (g group) first() int { return g.segs[0] }
func (g group) last() int  { return g.segs[len(g.segs)-1] }

// coalesceByThreshold implements the paper's coalescing rule: sort
// the requested segments; the first segment starts the first group;
// each subsequent segment joins the current group when its distance
// from the previous segment is below threshold, otherwise it starts a
// new group. Groups are returned in ascending order of first segment.
//
// The paper's rule also refuses to coalesce the initial head position
// I into a group; callers here keep the start position out of the
// request list entirely, which has the same effect.
func coalesceByThreshold(requests []int, threshold int) []group {
	if len(requests) == 0 {
		return nil
	}
	return coalesceSortedRuns(sortedCopy(requests), threshold, nil)
}

// coalesceSortedRuns is the allocation-free core of
// coalesceByThreshold: sorted is already ascending and each group is
// a subslice of it, appended to out. The sorted backing must stay
// alive (and unmodified) as long as the groups are used.
func coalesceSortedRuns(sorted []int, threshold int, out []group) []group {
	start := 0
	for i := 1; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] >= threshold {
			out = append(out, group{segs: sorted[start:i]})
			start = i
		}
	}
	if len(sorted) > 0 {
		out = append(out, group{segs: sorted[start:]})
	}
	return out
}

// coalesceBySection buckets requests into one group per non-empty
// (track, logical section) cell, each sorted ascending. This is the
// milder grouping SLTF's complexity argument relies on: within one
// section, reading ahead in segment order is always the nearest move,
// so a section's requests are always consumed together.
func coalesceBySection(view *geometry.View, requests []int) []group {
	return coalesceSectionRuns(view, sortedCopy(requests), nil)
}

// coalesceSectionRuns is the allocation-free core of
// coalesceBySection. The section index is nondecreasing in segment
// number (sections are contiguous segment ranges in track order), so
// each section's requests are one contiguous run of the sorted slice
// and the runs emerge already ordered by section index.
func coalesceSectionRuns(view *geometry.View, sorted []int, out []group) []group {
	start, cur := 0, -1
	for i, seg := range sorted {
		idx := view.SectionIndex(seg)
		if idx != cur {
			if i > start {
				out = append(out, group{segs: sorted[start:i]})
			}
			start, cur = i, idx
		}
	}
	if len(sorted) > start {
		out = append(out, group{segs: sorted[start:]})
	}
	return out
}

// expandGroups flattens an ordering of groups back into a segment
// schedule.
func expandGroups(order []group, n int) []int {
	out := make([]int, 0, n)
	for _, g := range order {
		out = append(out, g.segs...)
	}
	return out
}
