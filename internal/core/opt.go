package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// OPT computes a provably minimal schedule. The paper models the
// problem as an asymmetric traveling salesman path with a fixed
// start and free end (Section 4) and solves it by exhaustive
// permutation search, which limits it to about 12 requests (936 CPU
// seconds on the paper's SparcStation). This implementation uses the
// Held-Karp dynamic program instead — O(2^n * n^2) time, O(2^n * n)
// space — which finds the identical optimum (cross-checked against
// permutation search in tests) while extending the practical range to
// n ~ 20. The paper's recommendation stands: use OPT for small
// batches (up to ~10), LOSS beyond.
type OPT struct {
	limit int
}

// ErrTooLarge is returned (wrapped) when a problem exceeds an OPT
// scheduler's request limit.
var ErrTooLarge = fmt.Errorf("core: problem too large for OPT")

// NewOPT returns an exact scheduler that accepts up to limit
// requests; limit is capped at 24 to bound the 2^n memory.
func NewOPT(limit int) OPT {
	if limit > 24 {
		limit = 24
	}
	if limit < 1 {
		limit = 1
	}
	return OPT{limit: limit}
}

// Name returns "OPT".
func (OPT) Name() string { return "OPT" }

// Limit returns the maximum accepted request count.
func (o OPT) Limit() int { return o.limit }

// optArena holds the Held-Karp working state — edge weights and the
// 2^n * n dynamic-programming tables — so repeated small-batch calls
// (the Auto policy's common case) allocate only the returned order.
// Stale parent entries are never read: the backtrack only follows
// states whose dp entry was written this call, and dp is
// re-initialized to +Inf on every call.
type optArena struct {
	start  []float64
	w      []float64 // flat n*n edge matrix
	dp     []float64
	parent []int8
}

var optPool = sync.Pool{New: func() any { return new(optArena) }}

// Schedule solves the instance exactly.
func (o OPT) Schedule(p *Problem) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	n := len(p.Requests)
	if n > o.limit {
		return Plan{}, fmt.Errorf("%w: %d requests exceeds limit %d", ErrTooLarge, n, o.limit)
	}
	if n == 0 {
		return Plan{}, nil
	}

	a := optPool.Get().(*optArena)
	defer optPool.Put(a)

	// Edge weights. Read times are order-independent and excluded.
	start := grown(a.start, n) // start[j]: head start -> request j
	w := grown(a.w, n*n)       // w[i*n+j]: after reading i -> request j
	for i, ri := range p.Requests {
		start[i] = p.Cost.LocateTime(p.Start, ri)
		out := p.headAfter(ri)
		for j, rj := range p.Requests {
			if i == j {
				w[i*n+j] = 0
				continue
			}
			w[i*n+j] = p.Cost.LocateTime(out, rj)
		}
	}

	// Held-Karp over subsets: dp[mask][j] is the minimal locate time
	// of a path that starts at the head position, visits exactly the
	// requests in mask, and ends having just read request j.
	size := 1 << n
	dp := grown(a.dp, size*n)
	parent := grown(a.parent, size*n)
	inf := math.Inf(1)
	for i := range dp {
		dp[i] = inf
	}
	for j := 0; j < n; j++ {
		dp[(1<<j)*n+j] = start[j]
		parent[(1<<j)*n+j] = -1
	}
	full := size - 1
	for mask := 1; mask < size; mask++ {
		base := mask * n
		// Iterating set bits (j) and unset bits (k) ascending visits
		// exactly the pairs the dense loops did, in the same order, so
		// the strict-improvement tie-break — and hence the chosen
		// schedule — is unchanged.
		for set := mask; set != 0; set &= set - 1 {
			j := bits.TrailingZeros64(uint64(set))
			cur := dp[base+j]
			if cur == inf {
				continue
			}
			wj := w[j*n : j*n+n]
			for rest := full &^ mask; rest != 0; rest &= rest - 1 {
				k := bits.TrailingZeros64(uint64(rest))
				next := (mask | 1<<k) * n
				if c := cur + wj[k]; c < dp[next+k] {
					dp[next+k] = c
					parent[next+k] = int8(j)
				}
			}
		}
	}

	a.start, a.w, a.dp, a.parent = start, w, dp, parent

	// The end city is unconstrained: take the best final request.
	bestJ, bestC := 0, math.Inf(1)
	for j := 0; j < n; j++ {
		if c := dp[full*n+j]; c < bestC {
			bestJ, bestC = j, c
		}
	}

	order := make([]int, n)
	mask, j := full, bestJ
	for i := n - 1; i >= 0; i-- {
		order[i] = p.Requests[j]
		pj := parent[mask*n+j]
		mask &^= 1 << j
		if pj < 0 {
			break
		}
		j = int(pj)
	}
	return Plan{Order: order}, nil
}

// bruteForce finds the optimum by trying every permutation, exactly
// as the paper's OPT implementation did. It exists to cross-check
// Held-Karp in tests and to reproduce the paper's Figure 6 CPU-cost
// curve for OPT.
func bruteForce(p *Problem) (Plan, float64) {
	n := len(p.Requests)
	order := make([]int, n)
	copy(order, p.Requests)
	best := make([]int, n)
	copy(best, order)
	bestCost := math.Inf(1)

	var permute func(k int)
	permute = func(k int) {
		if k == n {
			if c := estimateSized(p, order).Locate; c < bestCost {
				bestCost = c
				copy(best, order)
			}
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			permute(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	permute(0)
	return Plan{Order: best}, bestCost
}
