package core

import (
	"fmt"
	"math"
)

// OPT computes a provably minimal schedule. The paper models the
// problem as an asymmetric traveling salesman path with a fixed
// start and free end (Section 4) and solves it by exhaustive
// permutation search, which limits it to about 12 requests (936 CPU
// seconds on the paper's SparcStation). This implementation uses the
// Held-Karp dynamic program instead — O(2^n * n^2) time, O(2^n * n)
// space — which finds the identical optimum (cross-checked against
// permutation search in tests) while extending the practical range to
// n ~ 20. The paper's recommendation stands: use OPT for small
// batches (up to ~10), LOSS beyond.
type OPT struct {
	limit int
}

// ErrTooLarge is returned (wrapped) when a problem exceeds an OPT
// scheduler's request limit.
var ErrTooLarge = fmt.Errorf("core: problem too large for OPT")

// NewOPT returns an exact scheduler that accepts up to limit
// requests; limit is capped at 24 to bound the 2^n memory.
func NewOPT(limit int) OPT {
	if limit > 24 {
		limit = 24
	}
	if limit < 1 {
		limit = 1
	}
	return OPT{limit: limit}
}

// Name returns "OPT".
func (OPT) Name() string { return "OPT" }

// Limit returns the maximum accepted request count.
func (o OPT) Limit() int { return o.limit }

// Schedule solves the instance exactly.
func (o OPT) Schedule(p *Problem) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	n := len(p.Requests)
	if n > o.limit {
		return Plan{}, fmt.Errorf("%w: %d requests exceeds limit %d", ErrTooLarge, n, o.limit)
	}
	if n == 0 {
		return Plan{}, nil
	}

	// Edge weights. Read times are order-independent and excluded.
	start := make([]float64, n) // start[j]: head start -> request j
	w := make([][]float64, n)   // w[i][j]: after reading i -> request j
	for i, ri := range p.Requests {
		start[i] = p.Cost.LocateTime(p.Start, ri)
		w[i] = make([]float64, n)
		out := p.headAfter(ri)
		for j, rj := range p.Requests {
			if i == j {
				continue
			}
			w[i][j] = p.Cost.LocateTime(out, rj)
		}
	}

	// Held-Karp over subsets: dp[mask][j] is the minimal locate time
	// of a path that starts at the head position, visits exactly the
	// requests in mask, and ends having just read request j.
	size := 1 << n
	dp := make([]float64, size*n)
	parent := make([]int8, size*n)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	for j := 0; j < n; j++ {
		dp[(1<<j)*n+j] = start[j]
		parent[(1<<j)*n+j] = -1
	}
	for mask := 1; mask < size; mask++ {
		base := mask * n
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			cur := dp[base+j]
			if math.IsInf(cur, 1) {
				continue
			}
			for k := 0; k < n; k++ {
				if mask&(1<<k) != 0 {
					continue
				}
				next := (mask | 1<<k) * n
				if c := cur + w[j][k]; c < dp[next+k] {
					dp[next+k] = c
					parent[next+k] = int8(j)
				}
			}
		}
	}

	// The end city is unconstrained: take the best final request.
	full := size - 1
	bestJ, bestC := 0, math.Inf(1)
	for j := 0; j < n; j++ {
		if c := dp[full*n+j]; c < bestC {
			bestJ, bestC = j, c
		}
	}

	order := make([]int, n)
	mask, j := full, bestJ
	for i := n - 1; i >= 0; i-- {
		order[i] = p.Requests[j]
		pj := parent[mask*n+j]
		mask &^= 1 << j
		if pj < 0 {
			break
		}
		j = int(pj)
	}
	return Plan{Order: order}, nil
}

// bruteForce finds the optimum by trying every permutation, exactly
// as the paper's OPT implementation did. It exists to cross-check
// Held-Karp in tests and to reproduce the paper's Figure 6 CPU-cost
// curve for OPT.
func bruteForce(p *Problem) (Plan, float64) {
	n := len(p.Requests)
	order := make([]int, n)
	copy(order, p.Requests)
	best := make([]int, n)
	copy(best, order)
	bestCost := math.Inf(1)

	var permute func(k int)
	permute = func(k int) {
		if k == n {
			if c := estimateSized(p, order).Locate; c < bestCost {
				bestCost = c
				copy(best, order)
			}
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			permute(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	permute(0)
	return Plan{Order: best}, bestCost
}
