package core

// SLTF is the paper's shortest-locate-time-first algorithm: the
// serpentine analogue of a disk's shortest-seek-time-first. Starting
// from the initial head position, it repeatedly locates to the
// not-yet-read request with the smallest estimated locate time.
//
// Two facts about the locate model keep this from being quadratic in
// the request count (Section 4): reading ahead within the current
// section always beats leaving the section, and the cheapest entry
// into another section is its lowest-numbered request. SLTF therefore
// only ever compares one representative per non-empty section — the
// section's smallest unread request — giving O(n log n + k²) where k
// is the number of non-empty sections (at most 896 on a DLT4000).
//
// With a positive coalescing threshold the grouping is the paper's
// more aggressive variant: requests closer than the threshold are
// fused into one representative regardless of section boundaries.
type SLTF struct {
	// threshold is the coalescing distance in segments; 0 selects
	// per-section grouping.
	threshold int
}

// NewSLTF returns the per-section SLTF scheduler the paper's figures
// evaluate.
func NewSLTF() SLTF { return SLTF{} }

// NewSLTFCoalesced returns SLTF with the aggressive distance-based
// coalescing; the paper recommends DefaultCoalesceThreshold.
func NewSLTFCoalesced(threshold int) SLTF { return SLTF{threshold: threshold} }

// Name returns "SLTF" or "SLTF-C".
func (s SLTF) Name() string {
	if s.threshold > 0 {
		return "SLTF-C"
	}
	return "SLTF"
}

// splitAtStart splits any group containing segments on both sides of
// the start position into its before-start and from-start parts. The
// paper excludes the initial position from coalescing for the same
// reason: the from-start part is nearly free to consume immediately,
// while the before-start part costs a backward locate and may belong
// later in the schedule.
func splitAtStart(groups []group, start int) []group {
	out := make([]group, 0, len(groups)+1)
	for _, g := range groups {
		if g.first() >= start || g.last() < start {
			out = append(out, g)
			continue
		}
		cut := 0
		for cut < len(g.segs) && g.segs[cut] < start {
			cut++
		}
		out = append(out, group{segs: g.segs[:cut]}, group{segs: g.segs[cut:]})
	}
	return out
}

// Schedule runs the greedy nearest-group selection.
func (s SLTF) Schedule(p *Problem) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if len(p.Requests) == 0 {
		return Plan{}, nil
	}
	var groups []group
	if s.threshold > 0 {
		groups = coalesceByThreshold(p.Requests, s.threshold)
	} else {
		groups = coalesceBySection(p.Cost.View(), p.Requests)
	}
	groups = splitAtStart(groups, p.Start)

	order := greedyNearest(p, groups)
	return Plan{Order: expandGroups(order, len(p.Requests))}, nil
}

// greedyNearest consumes groups in shortest-locate-time-first order:
// from the current head position, enter the group whose first segment
// has the smallest estimated locate time, read it through, and
// repeat.
func greedyNearest(p *Problem, groups []group) []group {
	remaining := make([]group, len(groups))
	copy(remaining, groups)
	order := make([]group, 0, len(groups))
	head := p.Start
	for len(remaining) > 0 {
		best, bestTime := 0, p.Cost.LocateTime(head, remaining[0].first())
		for i := 1; i < len(remaining); i++ {
			if t := p.Cost.LocateTime(head, remaining[i].first()); t < bestTime {
				best, bestTime = i, t
			}
		}
		g := remaining[best]
		order = append(order, g)
		head = p.headAfter(g.last())
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return order
}
