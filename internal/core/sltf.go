package core

import (
	"sync"

	"serpentine/internal/locate"
)

// SLTF is the paper's shortest-locate-time-first algorithm: the
// serpentine analogue of a disk's shortest-seek-time-first. Starting
// from the initial head position, it repeatedly locates to the
// not-yet-read request with the smallest estimated locate time.
//
// Two facts about the locate model keep this from being quadratic in
// the request count (Section 4): reading ahead within the current
// section always beats leaving the section, and the cheapest entry
// into another section is its lowest-numbered request. SLTF therefore
// only ever compares one representative per non-empty section — the
// section's smallest unread request — giving O(n log n + k²) where k
// is the number of non-empty sections (at most 896 on a DLT4000).
//
// With a positive coalescing threshold the grouping is the paper's
// more aggressive variant: requests closer than the threshold are
// fused into one representative regardless of section boundaries.
type SLTF struct {
	// threshold is the coalescing distance in segments; 0 selects
	// per-section grouping.
	threshold int
}

// NewSLTF returns the per-section SLTF scheduler the paper's figures
// evaluate.
func NewSLTF() SLTF { return SLTF{} }

// NewSLTFCoalesced returns SLTF with the aggressive distance-based
// coalescing; the paper recommends DefaultCoalesceThreshold.
func NewSLTFCoalesced(threshold int) SLTF { return SLTF{threshold: threshold} }

// Name returns "SLTF" or "SLTF-C".
func (s SLTF) Name() string {
	if s.threshold > 0 {
		return "SLTF-C"
	}
	return "SLTF"
}

// splitAtStart splits any group containing segments on both sides of
// the start position into its before-start and from-start parts. The
// paper excludes the initial position from coalescing for the same
// reason: the from-start part is nearly free to consume immediately,
// while the before-start part costs a backward locate and may belong
// later in the schedule.
func splitAtStart(groups []group, start int) []group {
	return splitAtStartInto(groups, start, make([]group, 0, len(groups)+1))
}

// splitAtStartInto is splitAtStart appending into a caller-provided
// slice; the produced groups share the input groups' backing.
func splitAtStartInto(groups []group, start int, out []group) []group {
	for _, g := range groups {
		if g.first() >= start || g.last() < start {
			out = append(out, g)
			continue
		}
		cut := 0
		for cut < len(g.segs) && g.segs[cut] < start {
			cut++
		}
		out = append(out, group{segs: g.segs[:cut]}, group{segs: g.segs[cut:]})
	}
	return out
}

// sltfArena is the reusable working state of one SLTF run.
type sltfArena struct {
	segs  []int // request copy backing the group subslices
	grp   []group
	split []group
	order []group
	srcs  []int
	dsts  []int
	w     []float64
	rem   []int32
}

var sltfPool = sync.Pool{New: func() any { return new(sltfArena) }}

// sltfMatrixLimit caps the dense (k+1)×k cost matrix of the batched
// greedy at 32 MB; batches coalescing to more groups than that fall
// back to the per-call greedy, which is time-quadratic but
// memory-linear. On the DLT geometries every realistic batch fits.
const sltfMatrixLimit = 4 << 20

// Schedule runs the greedy nearest-group selection.
func (s SLTF) Schedule(p *Problem) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if len(p.Requests) == 0 {
		return Plan{}, nil
	}
	a := sltfPool.Get().(*sltfArena)
	a.segs = append(a.segs[:0], p.Requests...)
	sortInts(a.segs)
	if s.threshold > 0 {
		a.grp = coalesceSortedRuns(a.segs, s.threshold, a.grp[:0])
	} else {
		a.grp = coalesceSectionRuns(p.Cost.View(), a.segs, a.grp[:0])
	}
	a.split = splitAtStartInto(a.grp, p.Start, a.split[:0])

	var order []group
	if k := len(a.split); (k+1)*k <= sltfMatrixLimit {
		order = greedyNearestMatrix(p, a.split, a)
	} else {
		order = greedyNearest(p, a.split)
	}
	out := make([]int, 0, len(p.Requests))
	for _, g := range order {
		out = append(out, g.segs...)
	}
	sltfPool.Put(a)
	return Plan{Order: out}, nil
}

// greedyNearestMatrix is greedyNearest over a batch-filled cost
// matrix: w[c*k+g] is the locate time from exit point c (0 = the
// start position, c = group c-1's exit otherwise) to group g's entry
// point. It makes the same sequence of comparisons as greedyNearest —
// strict-minimum selection scanning remaining groups in order, with
// swap-with-last removal — so the schedule is identical.
func greedyNearestMatrix(p *Problem, groups []group, a *sltfArena) []group {
	k := len(groups)
	a.srcs = grown(a.srcs, k+1)
	a.dsts = grown(a.dsts, k)
	a.srcs[0] = p.Start
	for g := 0; g < k; g++ {
		a.srcs[g+1] = p.headAfter(groups[g].last())
		a.dsts[g] = groups[g].first()
	}
	a.w = grown(a.w, (k+1)*k)
	locate.FillCostMatrix(p.Cost, a.w, a.srcs, a.dsts)

	a.rem = grown(a.rem, k)
	for g := range a.rem {
		a.rem[g] = int32(g)
	}
	rem := a.rem
	a.order = a.order[:0]
	row := a.w[:k] // start position's row
	for len(rem) > 0 {
		best, bestTime := 0, row[rem[0]]
		for i := 1; i < len(rem); i++ {
			if t := row[rem[i]]; t < bestTime {
				best, bestTime = i, t
			}
		}
		g := rem[best]
		a.order = append(a.order, groups[g])
		row = a.w[(int(g)+1)*k : (int(g)+2)*k]
		rem[best] = rem[len(rem)-1]
		rem = rem[:len(rem)-1]
	}
	return a.order
}

// greedyNearest consumes groups in shortest-locate-time-first order:
// from the current head position, enter the group whose first segment
// has the smallest estimated locate time, read it through, and
// repeat. It is the per-call fallback for batches too large for the
// dense matrix.
func greedyNearest(p *Problem, groups []group) []group {
	remaining := make([]group, len(groups))
	copy(remaining, groups)
	order := make([]group, 0, len(groups))
	head := p.Start
	for len(remaining) > 0 {
		best, bestTime := 0, p.Cost.LocateTime(head, remaining[0].first())
		for i := 1; i < len(remaining); i++ {
			if t := p.Cost.LocateTime(head, remaining[i].first()); t < bestTime {
				best, bestTime = i, t
			}
		}
		g := remaining[best]
		order = append(order, g)
		head = p.headAfter(g.last())
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return order
}
