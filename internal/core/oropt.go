package core

// Improved wraps any scheduler with an or-opt local improvement pass,
// an extension beyond the paper (which lists evaluating stronger TSP
// heuristics as future work). Or-opt relocates runs of one to three
// consecutive schedule entries to a better position; unlike classic
// 2-opt it never reverses a subpath, which matters on an asymmetric
// cost function where reversal would change every interior edge.
type Improved struct {
	// Base produces the schedule to improve.
	Base Scheduler
	// MaxPasses bounds the improvement sweeps; 4 when zero.
	MaxPasses int
}

// Name returns the base name with a "+OROPT" suffix.
func (im Improved) Name() string { return im.Base.Name() + "+OROPT" }

// Schedule runs the base scheduler and then improves its plan.
func (im Improved) Schedule(p *Problem) (Plan, error) {
	plan, err := im.Base.Schedule(p)
	if err != nil || plan.WholeTape || len(plan.Order) < 3 {
		return plan, err
	}
	passes := im.MaxPasses
	if passes <= 0 {
		passes = 4
	}
	order := plan.Order
	for pass := 0; pass < passes; pass++ {
		if !orOptPass(p, order) {
			break
		}
	}
	return Plan{Order: order}, nil
}

// orOptPass sweeps every run of 1..3 consecutive entries over every
// insertion point, applying improving moves until a full sweep finds
// none (with a move budget as a safety bound). It reports whether any
// move was applied. order is modified in place.
func orOptPass(p *Problem, order []int) bool {
	n := len(order)
	headBefore := func(i int) int {
		if i == 0 {
			return p.Start
		}
		return p.headAfter(order[i-1])
	}
	lt := p.Cost.LocateTime
	improved := false
	budget := 4 * n
	for changed := true; changed && budget > 0; {
		changed = false
	sweep:
		for runLen := 1; runLen <= 3 && runLen < n; runLen++ {
			for i := 0; i+runLen <= n; i++ {
				j := i + runLen // run is order[i:j]
				// Cost removed by excising the run: the edge into
				// the run and the edge out of it, minus the new edge
				// joining the neighbors. Excision only affects these
				// edges: each locate depends only on the previous
				// request and the current one.
				var after float64
				if j < n {
					after = lt(p.headAfter(order[j-1]), order[j])
				}
				removed := lt(headBefore(i), order[i]) + after
				var joined float64
				if j < n {
					joined = lt(headBefore(i), order[j])
				}
				gainBase := removed - joined
				if gainBase <= 1e-9 {
					continue
				}
				for k := 0; k <= n; k++ {
					if k >= i && k <= j {
						continue
					}
					// Insertion before original index k; order[k-1]
					// and order[k] are outside the excised run, so
					// their positions are unaffected.
					var prevHead int
					if k == 0 {
						prevHead = p.Start
					} else {
						prevHead = p.headAfter(order[k-1])
					}
					addIn := lt(prevHead, order[i])
					var addOut, oldEdge float64
					if k < n {
						addOut = lt(p.headAfter(order[j-1]), order[k])
						oldEdge = lt(prevHead, order[k])
					}
					if gain := gainBase - (addIn + addOut - oldEdge); gain > 1e-9 {
						relocate(order, i, j, k)
						improved = true
						changed = true
						budget--
						break sweep
					}
				}
			}
		}
	}
	return improved
}

// relocate moves order[i:j] so that it begins at original index k
// (k < i or k > j), shifting the remainder.
func relocate(order []int, i, j, k int) {
	run := make([]int, j-i)
	copy(run, order[i:j])
	if k > j {
		copy(order[i:], order[j:k])
		copy(order[i+(k-j):], run)
	} else { // k < i
		copy(order[k+len(run):], order[k:i])
		copy(order[k:], run)
	}
}
