package core

import (
	"testing"

	"serpentine/internal/geometry"
)

// The paper's worked example for SCAN: "given 3 requests having
// (track, section) coordinates (16,2), (17,12), and (18,3), ... the
// SCAN schedule is (16,2), (18,3), (17,12), which traverses the
// length of the tape only once."
func TestScanPaperExample(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()
	seg := func(track, physSection int) int {
		l := physSection
		if v.Track(track).Dir == geometry.Reverse {
			l = v.Track(track).Sections() - 1 - physSection
		}
		return v.SectionStartLBN(track, l) + 5
	}
	a := seg(16, 2)  // forward track
	b := seg(17, 12) // reverse track
	c := seg(18, 3)  // forward track
	p := &Problem{Start: 0, Requests: []int{a, b, c}, Cost: m}
	plan, err := Scan{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{a, c, b}
	for i := range want {
		if plan.Order[i] != want[i] {
			t.Fatalf("SCAN order = %v, want %v", plan.Order, want)
		}
	}
	// And SORT takes the worse order (16,2), (17,12), (18,3): two
	// long passes over the tape instead of one.
	sp, err := Sort{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Estimate(p).Total() <= plan.Estimate(p).Total() {
		t.Fatalf("SORT (%.1f) should lose to SCAN (%.1f) on the paper's example",
			sp.Estimate(p).Total(), plan.Estimate(p).Total())
	}
}

// Elevator structure: the schedule decomposes into alternating up
// passes (physical section numbers non-decreasing, forward tracks
// only) and down passes (non-increasing, reverse tracks only).
func TestScanElevatorStructure(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()
	p := randomProblem(t, m, 300, 8)
	plan, err := Scan{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}

	type cell struct {
		forward bool
		section int
	}
	var cells []cell
	var last cell
	for _, r := range plan.Order {
		pl := v.Place(r)
		c := cell{pl.Dir == geometry.Forward, pl.PhysSection}
		if len(cells) == 0 || c != last {
			cells = append(cells, c)
			last = c
		}
	}
	// Split into passes: a pass switches when direction flips.
	passes := 0
	i := 0
	for i < len(cells) {
		passes++
		forward := cells[i].forward
		prev := -1
		if !forward {
			prev = 1 << 30
		}
		for i < len(cells) && cells[i].forward == forward {
			if forward && cells[i].section < prev {
				break // new up pass begins (wrapped)
			}
			if !forward && cells[i].section > prev {
				break // new down pass begins
			}
			prev = cells[i].section
			i++
		}
	}
	// 300 random requests over 64x14 sections: nearly one request
	// per 3 sections; SCAN should need only a handful of shuttles.
	if passes > 40 {
		t.Fatalf("SCAN used %d passes for 300 requests", passes)
	}
}

// One track per (pass, section): within a single pass, each physical
// section is served from exactly one track.
func TestScanOneTrackPerSectionPerPass(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()
	// Construct requests in the same physical section of two forward
	// tracks: they must be served on different passes, lowest track
	// first.
	s1 := v.SectionStartLBN(10, 6) + 3 // forward track 10, phys section 6
	s2 := v.SectionStartLBN(20, 6) + 3 // forward track 20, phys section 6
	p := &Problem{Start: 0, Requests: []int{s2, s1}, Cost: m}
	plan, err := Scan{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Order[0] != s1 || plan.Order[1] != s2 {
		t.Fatalf("lowest track should be served first: %v", plan.Order)
	}
}

// Within a served section, requests come in ascending segment order.
func TestScanSectionsSorted(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()
	p := randomProblem(t, m, 400, 12)
	plan, err := Scan{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plan.Order); i++ {
		a, b := plan.Order[i-1], plan.Order[i]
		if v.SectionIndex(a) == v.SectionIndex(b) && b < a {
			t.Fatalf("requests within a section out of order: %d before %d", a, b)
		}
	}
}
