package core

// Plan-identity harness: dumps an FNV-64a hash of every scheduler's
// plan over a grid of problem sizes and seeds, so two revisions can be
// diffed for byte-identical plans. Run with PLANSNAP=<outfile> on each
// revision and diff the files; skipped in normal test runs.

import (
	"fmt"
	"hash/fnv"
	"os"
	"testing"
)

func TestDumpPlanHashes(t *testing.T) {
	if os.Getenv("PLANSNAP") == "" {
		t.Skip("set PLANSNAP=1 to dump plan hashes")
	}
	m := testModel(t, 1)
	algs := []Scheduler{
		NewLOSS(), NewSLTF(), Scan{}, Weave{},
		NewLOSSCoalesced(DefaultCoalesceThreshold),
		NewSLTFCoalesced(DefaultCoalesceThreshold),
		NewSparseLOSS(), NewAuto(), Sort{}, FIFO{},
	}
	f, err := os.Create(os.Getenv("PLANSNAP"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, n := range []int{1, 2, 3, 8, 16, 96, 128, 256, 1024} {
		for seed := int64(1); seed <= 3; seed++ {
			p := randomProblem(t, m, n, seed*7919+int64(n))
			for _, alg := range algs {
				plan, err := alg.Schedule(p)
				if err != nil {
					t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
				}
				h := fnv.New64a()
				for _, v := range plan.Order {
					fmt.Fprintf(h, "%d,", v)
				}
				fmt.Fprintf(f, "%s n=%d seed=%d %x\n", alg.Name(), n, seed, h.Sum64())
			}
		}
	}
}
