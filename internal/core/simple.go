package core

// This file holds the three schedulers that need no optimization
// machinery: READ, FIFO and SORT.

// Read is the paper's READ algorithm: ignore the request order
// entirely and read the whole tape sequentially, then rewind. It
// needs no locate operations and no scheduling, and it wins once a
// batch is dense enough (more than ~1536 uniformly random requests on
// a DLT4000).
type Read struct{}

// Name returns "READ".
func (Read) Name() string { return "READ" }

// Schedule returns a whole-tape plan; the pass encounters the
// requests in ascending segment order.
func (Read) Schedule(p *Problem) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return Plan{Order: sortedCopy(p.Requests), WholeTape: true}, nil
}

// FIFO is the paper's FIFO algorithm: perform the locates and reads
// in the order the requests were presented, with no reordering. It is
// the "no scheduling" baseline: about 50 random I/Os per hour on a
// DLT4000.
type FIFO struct{}

// Name returns "FIFO".
func (FIFO) Name() string { return "FIFO" }

// Schedule returns the requests unchanged.
func (FIFO) Schedule(p *Problem) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	order := make([]int, len(p.Requests))
	copy(order, p.Requests)
	return Plan{Order: order}, nil
}

// Sort is the paper's SORT algorithm: retrieve in ascending segment
// number order. It is optimal for helical-scan tape, where block
// numbers follow physical position, but poor on serpentine tape for
// small batches: consecutive segment numbers can be far apart
// physically, and the schedule makes a full length-of-tape pass per
// track. It becomes reasonable only when nearly every section holds a
// request.
type Sort struct{}

// Name returns "SORT".
func (Sort) Name() string { return "SORT" }

// Schedule returns the requests in ascending segment order.
func (Sort) Schedule(p *Problem) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return Plan{Order: sortedCopy(p.Requests)}, nil
}
