package core

import (
	"testing"

	"serpentine/internal/geometry"
)

// Degenerate request patterns every scheduler must survive with a
// valid permutation and a sane cost.
func TestAdversarialPatterns(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()

	patterns := map[string][]int{
		"all identical":        {5000, 5000, 5000, 5000, 5000},
		"consecutive run":      {9000, 9001, 9002, 9003, 9004, 9005, 9006, 9007},
		"single section":       sectionFill(v.SectionStartLBN(20, 4), 12),
		"section starts only":  sectionStarts(v, 40),
		"two far clusters":     append(sectionFill(100, 6), sectionFill(600000, 6)...),
		"reverse LBN order":    {500000, 400000, 300000, 200000, 100000},
		"tape ends only":       {0, 1, m.Segments() - 2, m.Segments() - 1},
		"around the start pos": {99998, 99999, 100001, 100002},
	}
	scheds := []Scheduler{
		FIFO{}, Sort{}, NewSLTF(), NewSLTFCoalesced(DefaultCoalesceThreshold),
		Scan{}, Weave{}, NewLOSS(), NewLOSSCoalesced(DefaultCoalesceThreshold),
		NewSparseLOSS(), NewOPT(16), NewAuto(), Improved{Base: NewLOSS()},
	}
	for name, reqs := range patterns {
		p := &Problem{Start: 100000, Requests: reqs, Cost: m}
		for _, s := range scheds {
			if o, ok := s.(OPT); ok && len(reqs) > o.Limit() {
				continue
			}
			plan, err := s.Schedule(p)
			if err != nil {
				t.Fatalf("%s on %q: %v", s.Name(), name, err)
			}
			if err := CheckPermutation(reqs, plan.Order); err != nil {
				t.Fatalf("%s on %q: %v", s.Name(), name, err)
			}
			if est := plan.Estimate(p); est.Total() < 0 || est.Total() > 20000 {
				t.Fatalf("%s on %q: estimate %.0f s out of range", s.Name(), name, est.Total())
			}
		}
	}
}

// sectionFill returns n consecutive segments starting at lbn.
func sectionFill(lbn, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lbn + i*3
	}
	return out
}

// sectionStarts returns the first segments of n sections spread over
// the tape.
func sectionStarts(v *geometry.View, n int) []int {
	out := make([]int, 0, n)
	s := v.Params().SectionsPerTrack
	for i := 0; len(out) < n; i++ {
		tr := (i * 7) % v.Tracks()
		out = append(out, v.SectionStartLBN(tr, i%s))
	}
	return out
}
