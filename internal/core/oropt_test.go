package core

import "testing"

// The improver must never make a schedule worse and must usually make
// greedy schedules better.
func TestOrOptNeverWorse(t *testing.T) {
	m := testModel(t, 1)
	improvedSum, baseSum := 0.0, 0.0
	for seed := int64(0); seed < 10; seed++ {
		p := randomProblem(t, m, 48, seed*3+1)
		base, err := NewSLTF().Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		imp, err := Improved{Base: NewSLTF()}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckPermutation(p.Requests, imp.Order); err != nil {
			t.Fatal(err)
		}
		b := base.Estimate(p).Total()
		i := imp.Estimate(p).Total()
		if i > b+1e-6 {
			t.Fatalf("seed %d: or-opt made it worse: %.2f -> %.2f", seed, b, i)
		}
		baseSum += b
		improvedSum += i
	}
	if improvedSum >= baseSum {
		t.Fatalf("or-opt never improved anything over 10 seeds (%.0f vs %.0f)", improvedSum, baseSum)
	}
}

// Improving OPT's output must be a no-op: there is nothing to gain.
func TestOrOptCannotImproveOPT(t *testing.T) {
	m := testModel(t, 1)
	for seed := int64(0); seed < 6; seed++ {
		p := randomProblem(t, m, 7, seed+50)
		opt, err := NewOPT(10).Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		imp, err := Improved{Base: NewOPT(10)}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		o := opt.Estimate(p).Total()
		i := imp.Estimate(p).Total()
		if i < o-1e-6 {
			t.Fatalf("seed %d: or-opt 'improved' the optimum: %.4f -> %.4f", seed, o, i)
		}
	}
}

func TestRelocate(t *testing.T) {
	// Move [2,3) to position 0: 0 1 2 3 -> 2 0 1 3.
	order := []int{0, 1, 2, 3}
	relocate(order, 2, 3, 0)
	want := []int{2, 0, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("relocate backward: %v", order)
		}
	}
	// Move [0,2) to position 4 (end): 2 0 1 3 -> 1 3 2 0.
	relocate(order, 0, 2, 4)
	want = []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("relocate forward: %v", order)
		}
	}
}

func TestImprovedPassesThroughWholeTape(t *testing.T) {
	m := testModel(t, 1)
	p := randomProblem(t, m, 5, 1)
	plan, err := Improved{Base: Read{}}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.WholeTape {
		t.Fatal("whole-tape plans must pass through untouched")
	}
}

func TestImprovedName(t *testing.T) {
	if (Improved{Base: NewSLTF()}).Name() != "SLTF+OROPT" {
		t.Fatal("name wrong")
	}
}
