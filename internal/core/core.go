// Package core implements the paper's contribution: static scheduling
// algorithms for batches of random I/O requests on serpentine tape
// (Hillyer & Silberschatz, SIGMOD 1996, Section 4).
//
// Eight algorithms from the paper are provided — READ, FIFO, OPT,
// SORT, SLTF, SCAN, WEAVE and LOSS — plus the segment-coalescing
// preprocessing both SLTF and LOSS can use, the sparse-graph LOSS
// variant the paper sketches as future work, an or-opt local
// improvement pass, and the Auto policy that encodes the paper's
// bottom-line recommendation (OPT for up to 10 requests, LOSS up to
// ~1536, READ beyond).
//
// Every scheduler consumes a Problem (initial head position, request
// list, cost model) and produces a Plan whose Order is a permutation
// of the requests.
package core

import (
	"errors"
	"fmt"
	"sort"

	"serpentine/internal/locate"
)

// Problem is one scheduling instance: the head starts at the reading
// start of segment Start, and every segment in Requests must be
// retrieved. Cost supplies the locate-time estimates the scheduler
// optimizes against (the paper's "essential ingredient").
type Problem struct {
	// Start is the initial head position as a segment number. The
	// paper's two scenarios are a random segment (batches executed
	// back to back) and 0 (a freshly loaded cartridge).
	Start int

	// Requests lists the segments to retrieve. Order carries no
	// meaning except to FIFO. Duplicates are tolerated but not
	// optimized.
	Requests []int

	// ReadLen is the number of consecutive segments transferred per
	// request; 0 means 1 (the paper's simplifying assumption). The
	// utilization study (Figure 7) uses multi-segment requests.
	ReadLen int

	// Cost estimates locate times.
	Cost locate.Cost
}

// readLen returns the effective per-request transfer length.
func (p *Problem) readLen() int {
	if p.ReadLen <= 0 {
		return 1
	}
	return p.ReadLen
}

// headAfter returns the head position after transferring a request
// that starts at lbn.
func (p *Problem) headAfter(lbn int) int {
	h := lbn + p.readLen()
	if max := p.Cost.Segments() - 1; h > max {
		h = max
	}
	return h
}

// Validate checks that the problem is well formed.
func (p *Problem) Validate() error {
	if p.Cost == nil {
		return errors.New("core: Problem.Cost is nil")
	}
	n := p.Cost.Segments()
	if p.Start < 0 || p.Start >= n {
		return fmt.Errorf("core: start position %d out of range [0,%d)", p.Start, n)
	}
	last := n - p.readLen()
	for i, r := range p.Requests {
		if r < 0 || r > last {
			return fmt.Errorf("core: request %d (segment %d) out of range [0,%d]", i, r, last)
		}
	}
	return nil
}

// Plan is a scheduler's output.
type Plan struct {
	// Order is the retrieval order: a permutation of the problem's
	// Requests.
	Order []int

	// WholeTape marks a READ plan: execution is one sequential pass
	// over the entire tape (collecting the requests on the way)
	// rather than a sequence of locates. Order is then the requests
	// in LBN order, which is the order the pass encounters them.
	WholeTape bool
}

// Estimate evaluates the plan against a cost model: the estimated
// execution time breakdown for the whole batch.
func (pl *Plan) Estimate(p *Problem) locate.Breakdown {
	if pl.WholeTape {
		return locate.Breakdown{
			Locate:  p.Cost.FullReadTime(),
			Locates: len(pl.Order),
		}
	}
	return estimateSized(p, pl.Order)
}

// estimateSized is locate.EstimateSchedule generalized to
// multi-segment requests.
func estimateSized(p *Problem, order []int) locate.Breakdown {
	var b locate.Breakdown
	head := p.Start
	rl := p.readLen()
	for _, d := range order {
		lt := p.Cost.LocateTime(head, d)
		b.Locate += lt
		if lt > b.MaxLocate {
			b.MaxLocate = lt
		}
		for k := 0; k < rl; k++ {
			b.Read += p.Cost.ReadTime(d + k)
		}
		b.Locates++
		head = p.headAfter(d)
	}
	return b
}

// FinalHead returns the head position after executing the plan, for
// chaining batches.
func (pl *Plan) FinalHead(p *Problem) int {
	if len(pl.Order) == 0 {
		return p.Start
	}
	if pl.WholeTape {
		// A full pass ends at the reading end of the last track and
		// rewinds; the next batch starts from the beginning of tape.
		return 0
	}
	return p.headAfter(pl.Order[len(pl.Order)-1])
}

// Scheduler produces retrieval plans.
type Scheduler interface {
	// Name identifies the algorithm in experiment output ("LOSS",
	// "SLTF", ...).
	Name() string
	// Schedule orders the problem's requests. Implementations must
	// return a permutation of p.Requests.
	Schedule(p *Problem) (Plan, error)
}

// CheckPermutation verifies that order is a permutation of requests;
// every scheduler test and the simulator's paranoid mode use it.
func CheckPermutation(requests, order []int) error {
	if len(requests) != len(order) {
		return fmt.Errorf("core: schedule has %d entries, want %d", len(order), len(requests))
	}
	want := make(map[int]int, len(requests))
	for _, r := range requests {
		want[r]++
	}
	for _, o := range order {
		want[o]--
		if want[o] < 0 {
			return fmt.Errorf("core: schedule contains segment %d more often than requested", o)
		}
	}
	return nil
}

// sortedCopy returns the requests in ascending segment order.
func sortedCopy(requests []int) []int {
	out := make([]int, len(requests))
	copy(out, requests)
	sort.Ints(out)
	return out
}

// All returns one instance of every scheduler the paper evaluates, in
// the order the paper lists them. OPT is limited to optLimit requests
// (it degrades to returning an error above that, as in the paper,
// which only runs it to 12).
func All(optLimit int) []Scheduler {
	return []Scheduler{
		Read{},
		FIFO{},
		NewOPT(optLimit),
		Sort{},
		NewSLTF(),
		Scan{},
		Weave{},
		NewLOSS(),
	}
}

// ByName returns the named scheduler with default construction, or an
// error listing the valid names. Recognized names (case-sensitive):
// READ, FIFO, OPT, SORT, SLTF, SLTF-C, SCAN, WEAVE, LOSS, LOSS-C,
// LOSS-SPARSE, AUTO.
func ByName(name string) (Scheduler, error) {
	switch name {
	case "READ":
		return Read{}, nil
	case "FIFO":
		return FIFO{}, nil
	case "OPT":
		return NewOPT(16), nil
	case "SORT":
		return Sort{}, nil
	case "SLTF":
		return NewSLTF(), nil
	case "SLTF-C":
		return NewSLTFCoalesced(DefaultCoalesceThreshold), nil
	case "SCAN":
		return Scan{}, nil
	case "WEAVE":
		return Weave{}, nil
	case "LOSS":
		return NewLOSS(), nil
	case "LOSS-C":
		return NewLOSSCoalesced(DefaultCoalesceThreshold), nil
	case "LOSS-SPARSE":
		return NewSparseLOSS(), nil
	case "AUTO":
		return NewAuto(), nil
	}
	return nil, fmt.Errorf("core: unknown scheduler %q (want READ, FIFO, OPT, SORT, SLTF, SLTF-C, SCAN, WEAVE, LOSS, LOSS-C, LOSS-SPARSE or AUTO)", name)
}
