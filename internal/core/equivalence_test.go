package core

import (
	"testing"

	"serpentine/internal/locate"
)

// equivalenceSchedulers are the schedulers whose plans must be
// unaffected by the locate model's fast path and the batched matrix
// fill: everything except OPT (exponential) and the trivial orders.
func equivalenceSchedulers() []Scheduler {
	return []Scheduler{
		NewLOSS(),
		NewLOSSCoalesced(DefaultCoalesceThreshold),
		NewSLTF(),
		NewSLTFCoalesced(DefaultCoalesceThreshold),
		Scan{},
		Weave{},
		NewSparseLOSS(),
	}
}

// TestSchedulerFastPathEquivalence proves that every scheduler emits
// a byte-identical plan whether its cost model is the table-driven
// fast path (with the batched CostMatrix) or the original piecewise
// decomposition evaluated call by call: the fast path changes how
// estimates are computed, never their values, so plans cannot move.
func TestSchedulerFastPathEquivalence(t *testing.T) {
	for _, serial := range []int64{1, 2} {
		m := testModel(t, serial)
		ref := m.Reference()
		for _, n := range []int{1, 2, 3, 8, 96, 256} {
			p := randomProblem(t, m, n, 1000*serial+int64(n))
			for _, s := range equivalenceSchedulers() {
				fast, err := s.Schedule(p)
				if err != nil {
					t.Fatalf("tape %d %s n=%d (fast): %v", serial, s.Name(), n, err)
				}
				rp := &Problem{Start: p.Start, Requests: p.Requests, Cost: ref}
				slow, err := s.Schedule(rp)
				if err != nil {
					t.Fatalf("tape %d %s n=%d (reference): %v", serial, s.Name(), n, err)
				}
				if !slicesEqual(fast.Order, slow.Order) {
					t.Fatalf("tape %d %s n=%d: fast-path plan differs from reference plan", serial, s.Name(), n)
				}
				if err := CheckPermutation(p.Requests, fast.Order); err != nil {
					t.Fatalf("tape %d %s n=%d: %v", serial, s.Name(), n, err)
				}
			}
		}
	}
}

// TestSchedulerRerunDeterminism schedules every instance twice
// through the pooled arenas: a dirty arena must never leak state into
// the next plan (same problem in, same plan out).
func TestSchedulerRerunDeterminism(t *testing.T) {
	m := testModel(t, 1)
	for _, n := range []int{1, 8, 96, 256} {
		// Two different instances back to back dirty the arenas with
		// unrelated state between the paired runs.
		pa := randomProblem(t, m, n, int64(n))
		pb := randomProblem(t, m, n/2+1, int64(n)+7)
		for _, s := range equivalenceSchedulers() {
			first, err := s.Schedule(pa)
			if err != nil {
				t.Fatalf("%s n=%d: %v", s.Name(), n, err)
			}
			if _, err := s.Schedule(pb); err != nil {
				t.Fatalf("%s n=%d (interleaved): %v", s.Name(), n, err)
			}
			again, err := s.Schedule(pa)
			if err != nil {
				t.Fatalf("%s n=%d (rerun): %v", s.Name(), n, err)
			}
			if !slicesEqual(first.Order, again.Order) {
				t.Fatalf("%s n=%d: rerun produced a different plan", s.Name(), n)
			}
		}
	}
}

// TestPerturbedSchedulerEquivalence runs the matrix-consuming
// schedulers under the Figure 10 perturbed-cost decorator, whose
// batched fill must match its per-call behavior through whole plans.
func TestPerturbedSchedulerEquivalence(t *testing.T) {
	m := testModel(t, 1)
	base := randomProblem(t, m, 96, 42)
	pert := &locate.Perturbed{Base: m, E: 5}
	p := &Problem{Start: base.Start, Requests: base.Requests, Cost: pert}
	// The same perturbed cost over the reference decomposition: its
	// batched fill degrades to per-call evaluation underneath.
	slowPert := &locate.Perturbed{Base: m.Reference(), E: 5}
	rp := &Problem{Start: base.Start, Requests: base.Requests, Cost: slowPert}
	for _, s := range []Scheduler{NewLOSS(), NewSLTF()} {
		fast, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		slow, err := s.Schedule(rp)
		if err != nil {
			t.Fatalf("%s (per-call): %v", s.Name(), err)
		}
		if !slicesEqual(fast.Order, slow.Order) {
			t.Fatalf("%s: batched perturbed plan differs from per-call perturbed plan", s.Name())
		}
	}
}
