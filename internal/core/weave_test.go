package core

import (
	"testing"

	"serpentine/internal/geometry"
)

// The weave pattern must cover every (track-group, section) pair for
// the DLT geometry without needing the defensive completion sweep, so
// a schedule is always completable by pattern alone.
func TestWeavePatternCoversEverything(t *testing.T) {
	params := geometry.DLT4000()
	s := params.SectionsPerTrack
	for _, tr := range []int{0, 1, 31, 62, 63} {
		for start := 0; start < s; start++ {
			items := weavePattern(params, tr, start)
			// The pattern enumerator appends a defensive sweep; the
			// test asserts the sweep adds nothing: the first 3*s
			// distinct items must already cover all pairs... which
			// is equivalent to the full list containing exactly 3*s
			// items (duplicates are suppressed at emit time).
			if len(items) != 3*s {
				t.Fatalf("track %d start %d: %d items, want %d", tr, start, len(items), 3*s)
			}
			seen := make(map[weaveItem]bool)
			for _, it := range items {
				if it.sect < 0 || it.sect >= s {
					t.Fatalf("item out of range: %+v", it)
				}
				if seen[it] {
					t.Fatalf("duplicate item %+v", it)
				}
				seen[it] = true
			}
		}
	}
}

// The pattern opens with the current section of the current track,
// then its next two sections: the cheapest possible continuations.
func TestWeavePatternOpening(t *testing.T) {
	params := geometry.DLT4000()
	items := weavePattern(params, 10, 5) // forward track
	want := []weaveItem{{kindOwn, 5}, {kindOwn, 6}, {kindOwn, 7}, {kindCo, 7}}
	for i, w := range want {
		if items[i] != w {
			t.Fatalf("item %d = %+v, want %+v", i, items[i], w)
		}
	}
	// Reverse track: forward means decreasing physical sections.
	items = weavePattern(params, 11, 5)
	want = []weaveItem{{kindOwn, 5}, {kindOwn, 4}, {kindOwn, 3}, {kindCo, 3}}
	for i, w := range want {
		if items[i] != w {
			t.Fatalf("reverse item %d = %+v, want %+v", i, items[i], w)
		}
	}
}

// flip() swaps the preference order at the two sections of each tape
// end (the paper's mapping 0,1,...,12,13 -> 1,0,...,13,12): walking
// down toward the beginning of tape, the natural order ...,1,0
// becomes ...,0,1 — section 0 is considered first because both
// sections are reached by scanning to the track start, and 0 is
// closer to it; symmetrically the sweep up considers 13 before 12.
func TestWeaveFlipAtEnds(t *testing.T) {
	params := geometry.DLT4000()
	items := weavePattern(params, 10, 7)
	posOf := func(k weaveKind, sect int) int {
		for i, it := range items {
			if it.kind == k && it.sect == sect {
				return i
			}
		}
		t.Fatalf("(%v,%d) not found", k, sect)
		return -1
	}
	if posOf(kindOwn, 0) > posOf(kindOwn, 1) {
		t.Error("flip should order section 0 before section 1 on the downward sweep")
	}
	if posOf(kindAnti, 13) > posOf(kindAnti, 12) {
		t.Error("flip should order section 13 before section 12 on the upward sweep")
	}
}

// WEAVE consumes the head's own section first when it has requests.
func TestWeaveStartsAtOwnSection(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()
	start := v.SectionStartLBN(30, 4) + 10
	own := start + 50
	far := v.SectionStartLBN(50, 9)
	p := &Problem{Start: start, Requests: []int{far, own}, Cost: m}
	plan, err := Weave{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Order[0] != own {
		t.Fatalf("WEAVE should serve the head's section first: %v", plan.Order)
	}
}

// WEAVE approximates SLTF without any locate-time calls; its
// schedules should land within a modest factor of SLTF's.
func TestWeaveQualityNearSLTF(t *testing.T) {
	m := testModel(t, 1)
	var weaveTotal, sltfTotal float64
	for seed := int64(0); seed < 8; seed++ {
		p := randomProblem(t, m, 64, seed*3+2)
		wp, err := Weave{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSLTF().Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		weaveTotal += wp.Estimate(p).Total()
		sltfTotal += sp.Estimate(p).Total()
	}
	if weaveTotal > 1.4*sltfTotal {
		t.Fatalf("WEAVE (%.0f) too far behind SLTF (%.0f)", weaveTotal, sltfTotal)
	}
	if weaveTotal < sltfTotal*0.95 {
		t.Fatalf("WEAVE (%.0f) should not beat SLTF (%.0f) materially: it is the approximation", weaveTotal, sltfTotal)
	}
}

// Within a served section, ascending order.
func TestWeaveSectionsSorted(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()
	p := randomProblem(t, m, 250, 21)
	plan, err := Weave{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plan.Order); i++ {
		a, b := plan.Order[i-1], plan.Order[i]
		if v.SectionIndex(a) == v.SectionIndex(b) && b < a {
			t.Fatalf("requests within a section out of order: %d before %d", a, b)
		}
	}
}
