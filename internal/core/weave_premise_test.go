package core

import (
	"testing"

	"serpentine/internal/geometry"
	"serpentine/internal/rand48"
	"serpentine/internal/stats"
)

// WEAVE's design premise (Section 4): the weave pattern orders
// sections by expected locate time — "nearby sections are considered
// before far-away sections", with overlapping ranges making it "only
// an approximation to SLTF". The paper quotes the first steps'
// expected locates as ~15.5 s, ~31 s, ~40.5 s. This test measures the
// expected locate cost of each early pattern position under our model
// and asserts the premise: the opening positions are cheap, and the
// trend over the early pattern is upward.
func TestWeavePatternOrdersByExpectedCost(t *testing.T) {
	m := testModel(t, 1)
	v := m.View()
	params := v.Params()
	rng := rand48.New(33)

	const positions = 7 // the pattern's opening, before the sweep
	accs := make([]stats.Accumulator, positions)

	for trial := 0; trial < 400; trial++ {
		// A random head position, as if a request was just read.
		src := rng.Intn(m.Segments())
		pl := v.Place(src)
		items := weavePattern(params, pl.Track, pl.PhysSection)
		for i := 0; i < positions && i < len(items); i++ {
			it := items[i]
			var dst int
			var ok bool
			if i == 0 {
				// The opening item is the head's own section; its
				// meaning in the pattern is "keep reading forward".
				tv := v.Track(pl.Track)
				end := tv.BoundLBN[pl.Section+1]
				if src+1 >= end {
					continue
				}
				dst, ok = src+1+rng.Intn(end-src-1), true
			} else {
				// Resolve the item to a concrete destination: a
				// random segment in the named section of the nearest
				// matching track.
				dst, ok = resolveForTest(v, params, pl.Track, it, rng)
			}
			if !ok {
				continue
			}
			accs[i].Add(m.LocateTime(src, dst))
		}
	}

	// Opening step: continuing in the head's own section is the
	// cheapest possible move (well under one section of reading;
	// the paper quotes ~15.5 s expected with range 0-31 for the
	// first move).
	if mean := accs[0].Mean(); mean > params.ReadSecPerSection {
		t.Errorf("pattern step 0 mean %.1f s, want under one section's read (%.1f)", mean, params.ReadSecPerSection)
	}
	// The paper's quoted expectations rise over the first distinct
	// moves (~15.5 -> ~31 -> ~40.5); ours must rise too.
	if accs[1].Mean() <= accs[0].Mean() {
		t.Errorf("step 1 (%.1f) not costlier than step 0 (%.1f)", accs[1].Mean(), accs[0].Mean())
	}
	if accs[3].Mean() <= accs[1].Mean() {
		t.Errorf("step 3 (%.1f) not costlier than step 1 (%.1f)", accs[3].Mean(), accs[1].Mean())
	}
	// And the whole opening stays far below a random locate (72 s):
	// that is why following the pattern beats FIFO.
	for i := 0; i < positions; i++ {
		if accs[i].N() > 50 && accs[i].Mean() > 60 {
			t.Errorf("pattern step %d mean %.1f s: opening should stay well under the 72 s random mean", i, accs[i].Mean())
		}
	}
}

// resolveForTest picks a concrete segment for a weave pattern item,
// mirroring the scheduler's nearest-track preference.
func resolveForTest(v *geometry.View, params geometry.Params, cur int, it weaveItem, rng *rand48.Source) (int, bool) {
	wantDir := params.TrackDirection(cur)
	if it.kind == kindAnti {
		if wantDir == geometry.Forward {
			wantDir = geometry.Reverse
		} else {
			wantDir = geometry.Forward
		}
	}
	track := -1
	if it.kind == kindOwn {
		track = cur
	} else {
		best := 1 << 30
		for tr := 0; tr < params.Tracks; tr++ {
			if tr == cur || params.TrackDirection(tr) != wantDir {
				continue
			}
			d := tr - cur
			if d < 0 {
				d = -d
			}
			if d < best {
				best, track = d, tr
			}
		}
	}
	if track < 0 {
		return 0, false
	}
	tv := v.Track(track)
	l := it.sect
	if tv.Dir == geometry.Reverse {
		l = tv.Sections() - 1 - it.sect
	}
	lo, hi := tv.BoundLBN[l], tv.BoundLBN[l+1]
	return lo + rng.Intn(hi-lo), true
}
